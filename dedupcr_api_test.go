package dedupcr_test

import (
	"bytes"
	"fmt"
	"testing"

	"dedupcr"
)

// TestPublicAPIRoundTrip exercises the library exactly as a downstream
// user would: through the root package only.
func TestPublicAPIRoundTrip(t *testing.T) {
	const n, k = 6, 3
	cluster := dedupcr.NewCluster(n)
	err := dedupcr.Run(n, func(c dedupcr.Comm) error {
		shared := bytes.Repeat([]byte("shared-config "), 512)
		private := bytes.Repeat([]byte(fmt.Sprintf("rank%d ", c.Rank())), 1024)
		buf := append(append([]byte{}, shared...), private...)

		res, err := dedupcr.DumpOutput(c, cluster.Node(c.Rank()), buf, dedupcr.Options{
			K: k, Approach: dedupcr.CollDedup, Name: "api",
		})
		if err != nil {
			return err
		}
		if res.Metrics.DatasetBytes != int64(len(buf)) {
			return fmt.Errorf("metrics wrong")
		}
		got, err := dedupcr.Restore(c, cluster.Node(c.Rank()), "api")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, buf) {
			return fmt.Errorf("rank %d restore mismatch", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Forget via the facade.
	for r := 0; r < n; r++ {
		if err := dedupcr.Forget(cluster.Node(r), "api", r); err != nil {
			t.Fatal(err)
		}
	}
	if b, c := cluster.TotalUsage(); b != 0 || c != 0 {
		t.Fatalf("storage not reclaimed: %d bytes / %d chunks", b, c)
	}
}

// TestPublicAPIRuntime drives the checkpoint-restart runtime through the
// facade.
func TestPublicAPIRuntime(t *testing.T) {
	const n = 4
	cluster := dedupcr.NewCluster(n)
	err := dedupcr.Run(n, func(c dedupcr.Comm) error {
		rt := dedupcr.NewRuntime(c, cluster.Node(c.Rank()), dedupcr.Options{
			K: 2, Approach: dedupcr.CollDedup, ChunkSize: 256,
		})
		state := rt.Register("state", 1024)
		for i := range state {
			state[i] = byte(i + c.Rank())
		}
		if _, err := rt.Checkpoint(); err != nil {
			return err
		}
		for i := range state {
			state[i] = 0
		}
		if _, err := rt.Restart(); err != nil {
			return err
		}
		if state[5] != byte(5+c.Rank()) {
			return fmt.Errorf("rank %d state not restored", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
