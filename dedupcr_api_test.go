package dedupcr_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"slices"
	"strings"
	"testing"

	"dedupcr"
)

// Compile-time lock on the public API surface: the legacy
// background-context entry points and their context-first counterparts
// must keep these exact signatures. A change here is an API break and
// should be a conscious decision, not a drive-by.
var (
	_ func(int, func(dedupcr.Comm) error) error                                                            = dedupcr.Run
	_ func(context.Context, int, func(context.Context, dedupcr.Comm) error) error                          = dedupcr.RunCtx
	_ func(dedupcr.Comm, dedupcr.Store, []byte, dedupcr.Options) (*dedupcr.Result, error)                  = dedupcr.DumpOutput
	_ func(context.Context, dedupcr.Comm, dedupcr.Store, []byte, dedupcr.Options) (*dedupcr.Result, error) = dedupcr.DumpOutputCtx
	_ func(dedupcr.Comm, dedupcr.Store, string) ([]byte, error)                                            = dedupcr.Restore
	_ func(context.Context, dedupcr.Comm, dedupcr.Store, string) ([]byte, error)                           = dedupcr.RestoreCtx
	_ func(dedupcr.Comm, error)                                                                            = dedupcr.Abort
	_ func(dedupcr.Comm, error)                                                                            = dedupcr.Kill
	_ func(dedupcr.Comm, dedupcr.FaultPlan) dedupcr.Comm                                                   = dedupcr.InjectFaults
	_ func(error) []int                                                                                    = dedupcr.FailedRanks

	_ func(*dedupcr.Runtime) (*dedupcr.Result, error)                  = (*dedupcr.Runtime).Checkpoint
	_ func(*dedupcr.Runtime, context.Context) (*dedupcr.Result, error) = (*dedupcr.Runtime).CheckpointCtx
	_ func(*dedupcr.Runtime) (int, error)                              = (*dedupcr.Runtime).Restart
	_ func(*dedupcr.Runtime, context.Context) (int, error)             = (*dedupcr.Runtime).RestartCtx

	// Chunker-spec API: Options selects chunking through a first-class
	// spec (algo + size); the three algorithm constants and the CLI
	// parser are part of the locked surface. The deprecated
	// Options.ContentDefined bool must also keep compiling until its
	// removal is a conscious break.
	_ dedupcr.ChunkerSpec                       = dedupcr.ChunkerSpec{Algo: dedupcr.ChunkerGear, Size: 4096}
	_ []dedupcr.ChunkerAlgo                     = []dedupcr.ChunkerAlgo{dedupcr.ChunkerFixed, dedupcr.ChunkerCDC, dedupcr.ChunkerGear}
	_ func(string) (dedupcr.ChunkerAlgo, error) = dedupcr.ParseChunker
	_ dedupcr.Options                           = dedupcr.Options{Chunker: dedupcr.ChunkerSpec{Algo: dedupcr.ChunkerCDC}, ContentDefined: false}
)

// TestCollectiveErrorTaxonomy pins the errors.Is/As contract of the
// failure model as seen through the facade.
func TestCollectiveErrorTaxonomy(t *testing.T) {
	cause := errors.New("disk on fire")
	ce := &dedupcr.CollectiveError{Ranks: []int{2, 5}, Phase: "put", Cause: cause}
	wrapped := fmt.Errorf("checkpoint 7: %w", ce)

	if !errors.Is(wrapped, dedupcr.ErrAborted) {
		t.Error("CollectiveError does not match ErrAborted")
	}
	if !errors.Is(wrapped, dedupcr.ErrRankFailed) {
		t.Error("CollectiveError with ranks does not match ErrRankFailed")
	}
	if !errors.Is(wrapped, cause) {
		t.Error("root cause unreachable through the chain")
	}
	var got *dedupcr.CollectiveError
	if !errors.As(wrapped, &got) || got.Phase != "put" {
		t.Errorf("errors.As lost the CollectiveError: %+v", got)
	}
	if ranks := dedupcr.FailedRanks(wrapped); !slices.Equal(ranks, []int{2, 5}) {
		t.Errorf("FailedRanks = %v, want [2 5]", ranks)
	}

	// An unattributed abort (context deadline, explicit Abort) is
	// ErrAborted but not ErrRankFailed.
	plain := &dedupcr.CollectiveError{Cause: cause}
	if !errors.Is(plain, dedupcr.ErrAborted) {
		t.Error("unattributed abort does not match ErrAborted")
	}
	if errors.Is(plain, dedupcr.ErrRankFailed) {
		t.Error("unattributed abort matches ErrRankFailed")
	}
	if dedupcr.FailedRanks(errors.New("unrelated")) != nil {
		t.Error("FailedRanks invented ranks for an unrelated error")
	}
}

// TestPublicAPICancellation checks that an already-cancelled context
// surfaces promptly through the context-first entry points.
func TestPublicAPICancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cluster := dedupcr.NewCluster(2)
	err := dedupcr.RunCtx(ctx, 2, func(ctx context.Context, c dedupcr.Comm) error {
		_, err := dedupcr.DumpOutputCtx(ctx, c, cluster.Node(c.Rank()), make([]byte, 4096), dedupcr.Options{K: 1})
		return err
	})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation cause lost: %v", err)
	}
}

// TestPublicAPIRoundTrip exercises the library exactly as a downstream
// user would: through the root package only.
func TestPublicAPIRoundTrip(t *testing.T) {
	const n, k = 6, 3
	cluster := dedupcr.NewCluster(n)
	err := dedupcr.Run(n, func(c dedupcr.Comm) error {
		shared := bytes.Repeat([]byte("shared-config "), 512)
		private := bytes.Repeat([]byte(fmt.Sprintf("rank%d ", c.Rank())), 1024)
		buf := append(append([]byte{}, shared...), private...)

		res, err := dedupcr.DumpOutput(c, cluster.Node(c.Rank()), buf, dedupcr.Options{
			K: k, Approach: dedupcr.CollDedup, Name: "api",
		})
		if err != nil {
			return err
		}
		if res.Metrics.DatasetBytes != int64(len(buf)) {
			return fmt.Errorf("metrics wrong")
		}
		got, err := dedupcr.Restore(c, cluster.Node(c.Rank()), "api")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, buf) {
			return fmt.Errorf("rank %d restore mismatch", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Forget via the facade.
	for r := 0; r < n; r++ {
		if err := dedupcr.Forget(cluster.Node(r), "api", r); err != nil {
			t.Fatal(err)
		}
	}
	if b, c := cluster.TotalUsage(); b != 0 || c != 0 {
		t.Fatalf("storage not reclaimed: %d bytes / %d chunks", b, c)
	}
}

// TestPublicAPIChunkerSpec dumps and restores through every chunking
// algorithm the spec API can name, exactly as a downstream user would,
// and pins the deprecated-alias contract: ContentDefined still selects
// CDC chunking, and combining it with a non-fixed Chunker is an error,
// not a silent preference.
func TestPublicAPIChunkerSpec(t *testing.T) {
	const n, k = 4, 2
	for _, algo := range []dedupcr.ChunkerAlgo{dedupcr.ChunkerFixed, dedupcr.ChunkerCDC, dedupcr.ChunkerGear} {
		cluster := dedupcr.NewCluster(n)
		err := dedupcr.Run(n, func(c dedupcr.Comm) error {
			buf := bytes.Repeat([]byte(fmt.Sprintf("rank%d chunker %s ", c.Rank()%2, algo)), 2048)
			_, err := dedupcr.DumpOutput(c, cluster.Node(c.Rank()), buf, dedupcr.Options{
				K: k, Approach: dedupcr.CollDedup, Name: "spec",
				Chunker: dedupcr.ChunkerSpec{Algo: algo, Size: 256},
			})
			if err != nil {
				return err
			}
			got, err := dedupcr.Restore(c, cluster.Node(c.Rank()), "spec")
			if err != nil {
				return err
			}
			if !bytes.Equal(got, buf) {
				return fmt.Errorf("rank %d: %s restore mismatch", c.Rank(), algo)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("chunker %s: %v", algo, err)
		}
	}

	// Deprecated alias still works...
	cluster := dedupcr.NewCluster(1)
	err := dedupcr.Run(1, func(c dedupcr.Comm) error {
		_, err := dedupcr.DumpOutput(c, cluster.Node(0), bytes.Repeat([]byte("x"), 8192), dedupcr.Options{
			K: 1, Name: "legacy", ContentDefined: true, ChunkSize: 256,
		})
		return err
	})
	if err != nil {
		t.Fatalf("deprecated ContentDefined alias broke: %v", err)
	}
	// ...and conflicts loudly with the spec.
	err = dedupcr.Run(1, func(c dedupcr.Comm) error {
		_, err := dedupcr.DumpOutput(c, cluster.Node(0), make([]byte, 4096), dedupcr.Options{
			K: 1, ContentDefined: true,
			Chunker: dedupcr.ChunkerSpec{Algo: dedupcr.ChunkerGear},
		})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("ContentDefined+Chunker conflict not rejected: %v", err)
	}
}

// TestPublicAPIRuntime drives the checkpoint-restart runtime through the
// facade.
func TestPublicAPIRuntime(t *testing.T) {
	const n = 4
	cluster := dedupcr.NewCluster(n)
	err := dedupcr.Run(n, func(c dedupcr.Comm) error {
		rt := dedupcr.NewRuntime(c, cluster.Node(c.Rank()), dedupcr.Options{
			K: 2, Approach: dedupcr.CollDedup, ChunkSize: 256,
		})
		state := rt.Register("state", 1024)
		for i := range state {
			state[i] = byte(i + c.Rank())
		}
		if _, err := rt.Checkpoint(); err != nil {
			return err
		}
		for i := range state {
			state[i] = 0
		}
		if _, err := rt.Restart(); err != nil {
			return err
		}
		if state[5] != byte(5+c.Rank()) {
			return fmt.Errorf("rank %d state not restored", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
