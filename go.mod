module dedupcr

go 1.22
