// Sockets demo: the same collective dump, but over the real TCP
// transport with disk-backed node stores — each rank listens on its own
// loopback port and all collectives (fingerprint allreduce, load
// allgather, one-sided window puts) travel through actual sockets, the
// deployment shape of cmd/replicad.
//
//	go run ./examples/sockets
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dedupcr/internal/apps/cm1"
	"dedupcr/internal/collectives"
	"dedupcr/internal/core"
	"dedupcr/internal/metrics"
	"dedupcr/internal/storage"
)

func main() {
	timeout := flag.Duration("timeout", time.Minute, "abort the collective dump/restore after this long")
	flag.Parse()

	const nRanks, k = 6, 3

	tmp, err := os.MkdirTemp("", "dedupcr-sockets-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	comms, err := collectives.StartLocalTCP(nRanks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("started %d TCP ranks:", nRanks)
	for _, c := range comms {
		fmt.Printf(" %s", c.LocalAddr())
	}
	fmt.Println()

	// One deadline for all ranks: a cancelled or expired context aborts
	// the TCP collectives on every rank instead of hanging the group.
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var wg sync.WaitGroup
	errs := make([]error, nRanks)
	for r := 0; r < nRanks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = runRank(ctx, comms[rank], filepath.Join(tmp, fmt.Sprintf("node%d", rank)))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", r, err)
		}
	}
	for _, c := range comms {
		c.Close()
	}
	fmt.Println("sockets OK: dump and restore ran over real TCP with disk-backed stores")
}

func runRank(ctx context.Context, c collectives.Comm, dir string) error {
	store, err := storage.NewDisk(dir)
	if err != nil {
		return err
	}
	// A CM1 storm checkpoint as the dataset.
	app := cm1.New(c.Rank(), c.Size(), cm1.Config{NX: 96, NY: 96})
	for i := 0; i < 4; i++ {
		app.Step()
	}
	buf := app.CheckpointImage()

	res, err := core.DumpOutputCtx(ctx, c, store, buf, core.Options{
		K:         3,
		Approach:  core.CollDedup,
		ChunkSize: 256,
		Name:      "cm1-demo",
	})
	if err != nil {
		return err
	}
	if c.Rank() == 0 {
		m := res.Metrics
		s := c.Stats()
		fmt.Printf("rank 0: dumped %s; socket traffic: %s sent / %s received in %d messages\n",
			metrics.Bytes(m.DatasetBytes), metrics.Bytes(s.BytesSent),
			metrics.Bytes(s.BytesRecv), s.MsgsSent)
	}

	got, err := core.RestoreCtx(ctx, c, store, "cm1-demo")
	if err != nil {
		return err
	}
	if !bytes.Equal(got, buf) {
		return fmt.Errorf("restore mismatch")
	}
	return nil
}
