// Quickstart: the smallest complete use of the library. Eight simulated
// ranks each dump a buffer with DUMP_OUTPUT using collective
// deduplication and a replication factor of 3, then restore it and
// verify the bytes. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"dedupcr/internal/collectives"
	"dedupcr/internal/core"
	"dedupcr/internal/metrics"
	"dedupcr/internal/storage"
)

func main() {
	timeout := flag.Duration("timeout", time.Minute, "abort the collective run after this long")
	flag.Parse()

	const (
		nRanks = 8
		k      = 3 // one local copy + two partner replicas
	)
	cluster := storage.NewCluster(nRanks)

	// The context bounds the whole collective run: if any rank stalls,
	// the deadline aborts the group instead of deadlocking it.
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	err := collectives.RunCtx(ctx, nRanks, func(ctx context.Context, c collectives.Comm) error {
		// Build a dataset with natural redundancy: a header every rank
		// shares, plus a rank-private body.
		shared := bytes.Repeat([]byte("common-configuration-block. "), 1024)
		private := bytes.Repeat([]byte(fmt.Sprintf("rank-%d-data. ", c.Rank())), 2048)
		buf := append(append([]byte{}, shared...), private...)

		res, err := core.DumpOutputCtx(ctx, c, cluster.Node(c.Rank()), buf, core.Options{
			K:        k,
			Approach: core.CollDedup,
			Name:     "quickstart",
		})
		if err != nil {
			return err
		}
		m := res.Metrics
		if c.Rank() == 0 {
			fmt.Printf("rank 0: dumped %s in %d chunks (%d locally unique)\n",
				metrics.Bytes(m.DatasetBytes), m.TotalChunks, m.LocalUniqueChunks)
			fmt.Printf("rank 0: stored %s locally, sent %s to partners, received %s\n",
				metrics.Bytes(m.StoredBytes), metrics.Bytes(m.SentBytes), metrics.Bytes(m.RecvBytes))
		}

		// Restore and verify.
		got, err := core.RestoreCtx(ctx, c, cluster.Node(c.Rank()), "quickstart")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, buf) {
			return fmt.Errorf("rank %d: restore mismatch", c.Rank())
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	total, chunks := cluster.TotalUsage()
	fmt.Printf("cluster: %s in %d unique chunks across %d nodes (K=%d protection)\n",
		metrics.Bytes(total), chunks, nRanks, k)
	fmt.Println("quickstart OK: all ranks restored their data byte-exactly")
}
