// Checkpoint-restart demo: the paper's headline use case. Sixteen ranks
// run the HPCCG mini-app under the ftrun fault-tolerance runtime, take
// periodic collective checkpoints with coll-dedup (K=3), lose two nodes,
// and restart the whole computation from the newest surviving checkpoint.
//
//	go run ./examples/checkpoint
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"dedupcr/internal/apps/hpccg"
	"dedupcr/internal/collectives"
	"dedupcr/internal/core"
	"dedupcr/internal/ftrun"
	"dedupcr/internal/metrics"
	"dedupcr/internal/storage"
)

const (
	nRanks     = 16
	k          = 3
	iterations = 12
	ckptEvery  = 4
)

func opts() core.Options {
	return core.Options{K: k, Approach: core.CollDedup, ChunkSize: 256, Name: "hpccg"}
}

func main() {
	timeout := flag.Duration("timeout", 2*time.Minute, "abort either collective phase after this long")
	flag.Parse()

	cluster := storage.NewCluster(nRanks)
	preFailure := make([][]byte, nRanks)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Phase 1: run the solver with periodic checkpoints.
	err := collectives.RunCtx(ctx, nRanks, func(ctx context.Context, c collectives.Comm) error {
		rt := ftrun.New(c, cluster.Node(c.Rank()), opts())
		app := hpccg.New(c.Rank(), nRanks, hpccg.Config{NX: 12, NY: 12, NZ: 12})
		for it := 1; it <= iterations; it++ {
			res, err := app.StepCollective(c)
			if err != nil {
				return err
			}
			if it%ckptEvery == 0 {
				if _, err := rt.CheckpointAppCtx(ctx, app); err != nil {
					return err
				}
				if c.Rank() == 0 {
					m := rt.LastDump
					fmt.Printf("iter %2d: checkpoint %d taken  (residual %.3e, rank 0 stored %s, sent %s)\n",
						it, rt.Epoch(), res, metrics.Bytes(m.StoredBytes), metrics.Bytes(m.SentBytes))
				}
			}
		}
		preFailure[c.Rank()] = app.CheckpointImage()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 2: two nodes die (K=3 was chosen to survive exactly this).
	fmt.Println("\n*** nodes 3 and 11 fail; replacing them with blank storage ***")
	cluster.FailNodes(3, 11)
	cluster.Replace(3)
	cluster.Replace(11)

	// Phase 3: restart everywhere from the newest surviving checkpoint.
	err = collectives.RunCtx(ctx, nRanks, func(ctx context.Context, c collectives.Comm) error {
		rt := ftrun.New(c, cluster.Node(c.Rank()), opts())
		app := hpccg.New(c.Rank(), nRanks, hpccg.Config{NX: 12, NY: 12, NZ: 12})
		epoch, err := rt.RestartAppCtx(ctx, app)
		if err != nil {
			return err
		}
		// The restart state must match what was checkpointed at that
		// epoch: iterations - iterations%ckptEvery steps in.
		if !bytes.Equal(app.CheckpointImage(), preFailure[c.Rank()]) {
			// preFailure was taken at the final iteration == the last
			// checkpoint in this configuration.
			return fmt.Errorf("rank %d: restarted state differs from last checkpoint", c.Rank())
		}
		if c.Rank() == 0 {
			fmt.Printf("restarted all %d ranks from checkpoint epoch %d (iteration %d)\n",
				nRanks, epoch, (epoch+1)*ckptEvery)
		}
		// Resume the computation to show the run continues.
		for it := 0; it < 2; it++ {
			if _, err := app.StepCollective(c); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoint-restart OK: computation resumed after losing K-1 nodes")
}
