// Erasure-coding demo: the hybrid protection scheme the paper's
// conclusion proposes as future work. Chunks that coll-dedup finds
// naturally duplicated keep relying on their natural replicas; chunks
// that are NOT sufficiently duplicated are protected with Reed-Solomon
// parity spread over partner nodes instead of full copies — same failure
// tolerance, a fraction of the bandwidth and storage.
//
//	go run ./examples/erasure
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"dedupcr/internal/chunk"
	"dedupcr/internal/erasure"
	"dedupcr/internal/metrics"
)

func main() {
	const (
		k           = 3 // tolerate k-1 = 2 lost nodes
		dataShards  = 4
		parityCount = k - 1 // RS(4,2): any 4 of 6 shards recover
		chunkSize   = 4096
	)

	// A dataset: half shared content (would be naturally duplicated on
	// other ranks), half private.
	rng := rand.New(rand.NewSource(7))
	private := make([]byte, 64*chunkSize)
	rng.Read(private)
	buf := append(bytes.Repeat([]byte{0xAB}, 64*chunkSize), private...)
	chunks := chunk.NewFixed(chunkSize).Split(buf)

	coder, err := erasure.New(dataShards, parityCount)
	if err != nil {
		log.Fatal(err)
	}

	// Cost accounting: full replication vs hybrid.
	var replBytes, hybridBytes int64
	type protectedChunk struct {
		shards [][]byte // data + parity, stored on distinct nodes
		size   int
	}
	var protected []protectedChunk

	seen := make(map[string]bool)
	for _, ch := range chunks {
		key := string(ch.FP[:])
		if seen[key] {
			continue // deduplicated: natural replica elsewhere
		}
		seen[key] = true
		replBytes += int64(len(ch.Data)) * (k - 1) // classic partner copies

		data := erasure.SplitShards(ch.Data, dataShards)
		parity, err := coder.Encode(data)
		if err != nil {
			log.Fatal(err)
		}
		shards := append(append([][]byte{}, data...), parity...)
		for _, p := range parity {
			hybridBytes += int64(len(p)) // only parity leaves the node
		}
		protected = append(protected, protectedChunk{shards: shards, size: len(ch.Data)})
	}

	fmt.Printf("unique chunks: %d of %d\n", len(seen), len(chunks))
	fmt.Printf("replication traffic (K=%d):    %s\n", k, metrics.Bytes(replBytes))
	fmt.Printf("erasure traffic (RS %d+%d):     %s (%.1fx less)\n",
		dataShards, parityCount, metrics.Bytes(hybridBytes),
		float64(replBytes)/float64(hybridBytes))

	// Failure drill: lose 2 of the 6 shard locations of every chunk and
	// reconstruct everything.
	for i := range protected {
		pc := &protected[i]
		lost1 := rng.Intn(len(pc.shards))
		lost2 := (lost1 + 1 + rng.Intn(len(pc.shards)-1)) % len(pc.shards)
		pc.shards[lost1], pc.shards[lost2] = nil, nil
		if err := coder.Reconstruct(pc.shards); err != nil {
			log.Fatalf("chunk %d: %v", i, err)
		}
	}
	// Verify the dataset reassembles byte-exactly.
	var rebuilt []byte
	idx := 0
	seen2 := make(map[string][]byte)
	for _, ch := range chunks {
		key := string(ch.FP[:])
		if cached, ok := seen2[key]; ok {
			rebuilt = append(rebuilt, cached...)
			continue
		}
		pc := protected[idx]
		idx++
		data := erasure.Join(pc.shards[:dataShards], pc.size)
		seen2[key] = data
		rebuilt = append(rebuilt, data...)
	}
	if !bytes.Equal(rebuilt, buf) {
		log.Fatal("dataset mismatch after reconstruction")
	}
	fmt.Println("erasure OK: every chunk survived the loss of 2 shard locations")
}
