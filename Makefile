# Developer entry points; CI runs the same commands (see
# .github/workflows/ci.yml and README "CI quality gate").

GO ?= go

.PHONY: all build test race vet dedupvet lint fmt fuzz-smoke bench crash-consistency

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet = stock go vet + the repo's own invariant analyzers.
vet: dedupvet
	$(GO) vet ./...

# Run the full suite, or a subset: make dedupvet ANALYZERS=lockorder,wiresym
ANALYZERS ?=
dedupvet:
	$(GO) run ./cmd/dedupvet $(if $(ANALYZERS),-analyzers $(ANALYZERS)) ./...

fmt:
	gofmt -l -w .

lint: vet
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "files need gofmt:"; echo "$$out"; exit 1; fi

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzCDCChunker -fuzztime 30s ./internal/chunk
	$(GO) test -run '^$$' -fuzz FuzzGearChunker -fuzztime 30s ./internal/chunk/gear
	$(GO) test -run '^$$' -fuzz FuzzBatchOf -fuzztime 30s ./internal/fingerprint
	$(GO) test -run '^$$' -fuzz FuzzFrameRoundTrip -fuzztime 30s ./internal/collectives
	$(GO) test -run '^$$' -fuzz FuzzAbortMessage -fuzztime 30s ./internal/collectives
	$(GO) test -run '^$$' -fuzz FuzzFrameTraceContextDecode -fuzztime 30s ./internal/collectives
	$(GO) test -run '^$$' -fuzz FuzzTableUnmarshal -fuzztime 30s ./internal/fingerprint
	$(GO) test -run '^$$' -fuzz FuzzRestoreMetaUnmarshal -fuzztime 30s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzDecodeDump -fuzztime 30s ./internal/telemetry
	$(GO) test -run '^$$' -fuzz FuzzRestoreMetricsDecode -fuzztime 30s ./internal/telemetry
	$(GO) test -run '^$$' -fuzz FuzzHybridMetaUnmarshal -fuzztime 30s ./internal/hybrid
	$(GO) test -run '^$$' -fuzz FuzzSegmentIndexDecode -fuzztime 30s ./internal/storage
	$(GO) test -run '^$$' -fuzz FuzzManifestDecode -fuzztime 30s ./internal/storage

bench:
	DEDUPCR_QUICK=1 $(GO) test -bench . -benchtime 1x -run '^$$'

# Kill-and-recover matrix for the segment engine: a helper process is
# killed at every fault-injection point and the store must reopen to the
# last committed checkpoint byte-identically.
crash-consistency:
	$(GO) test ./internal/storage/ -run 'TestCrashMatrix' -count=1 -v
