package fetch

import (
	"bytes"
	"fmt"
	"testing"

	"dedupcr/internal/collectives"
	"dedupcr/internal/fingerprint"
	"dedupcr/internal/storage"
)

func TestBlobAndChunkFetch(t *testing.T) {
	const n = 4
	cluster := storage.NewCluster(n)
	data := []byte("remote chunk")
	fp := fingerprint.Of(data)
	if err := cluster.Node(2).PutChunk(fp, data); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Node(2).PutBlob("meta/x", []byte("blob!")); err != nil {
		t.Fatal(err)
	}
	err := collectives.Run(n, func(c collectives.Comm) error {
		srv := Serve(c, cluster.Node(c.Rank()), 0)
		if c.Rank() == 0 {
			got, ok, err := Chunk(c, 0, 2, fp)
			if err != nil || !ok || !bytes.Equal(got, data) {
				return fmt.Errorf("chunk fetch: %v %v %q", err, ok, got)
			}
			blob, ok, err := Blob(c, 0, 2, "meta/x")
			if err != nil || !ok || string(blob) != "blob!" {
				return fmt.Errorf("blob fetch: %v %v %q", err, ok, blob)
			}
			// Misses are reported, not errors.
			if _, ok, err := Blob(c, 0, 1, "absent"); err != nil || ok {
				return fmt.Errorf("absent blob: %v %v", err, ok)
			}
			if _, ok, err := Chunk(c, 0, 3, fingerprint.Of([]byte("nope"))); err != nil || ok {
				return fmt.Errorf("absent chunk: %v %v", err, ok)
			}
		}
		if err := collectives.Barrier(c); err != nil {
			return err
		}
		srv.Stop()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFailedStoreReportsNotFound(t *testing.T) {
	const n = 2
	cluster := storage.NewCluster(n)
	cluster.FailNodes(1)
	err := collectives.Run(n, func(c collectives.Comm) error {
		srv := Serve(c, cluster.Node(c.Rank()), 0)
		if c.Rank() == 0 {
			_, ok, err := Blob(c, 0, 1, "anything")
			if err != nil || ok {
				return fmt.Errorf("failed node fetch: %v %v", err, ok)
			}
		}
		if err := collectives.Barrier(c); err != nil {
			return err
		}
		srv.Stop()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClassesAreIsolated(t *testing.T) {
	// Two fetch services with different classes on the same comm must
	// not steal each other's traffic.
	const n = 2
	storeA, storeB := storage.NewMem(), storage.NewMem()
	if err := storeA.PutBlob("x", []byte("A")); err != nil {
		t.Fatal(err)
	}
	if err := storeB.PutBlob("x", []byte("B")); err != nil {
		t.Fatal(err)
	}
	err := collectives.Run(n, func(c collectives.Comm) error {
		var a, b *Server
		if c.Rank() == 1 {
			a = Serve(c, storeA, 0)
			b = Serve(c, storeB, 1)
		}
		if c.Rank() == 0 {
			got, ok, err := Blob(c, 0, 1, "x")
			if err != nil || !ok || string(got) != "A" {
				return fmt.Errorf("class 0 got %q (%v, %v)", got, ok, err)
			}
			got, ok, err = Blob(c, 1, 1, "x")
			if err != nil || !ok || string(got) != "B" {
				return fmt.Errorf("class 1 got %q (%v, %v)", got, ok, err)
			}
		}
		if err := collectives.Barrier(c); err != nil {
			return err
		}
		if c.Rank() == 1 {
			a.Stop()
			b.Stop()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStopIsIdempotentAfterClose(t *testing.T) {
	g, err := collectives.NewGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := g.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(c, storage.NewMem(), 0)
	g.Close()
	srv.Stop() // must not hang or panic on a closed communicator
}
