// Package fetch is the peer fetch service used during restores: while a
// collective restore runs, every rank serves chunk and blob requests so
// peers can pull data their own (possibly replaced) local store no longer
// holds. Multiple protocols can coexist by using distinct classes (the
// plain restore and the hybrid erasure restore use different ones).
package fetch

import (
	"encoding/binary"
	"fmt"

	"dedupcr/internal/collectives"
	"dedupcr/internal/fingerprint"
	"dedupcr/internal/storage"
)

// Request frame:  u8 op | u32 requester | payload
// Reply frame:    u8 found | payload
const (
	opStop  = 0
	opBlob  = 1
	opChunk = 2
)

// Class separates independent fetch protocols' tag spaces.
type Class uint32

// Tags: requests of a class share one wildcard tag; replies are
// per-requester.
func (cl Class) reqTag() collectives.Tag {
	return collectives.WildcardTag(uint32(cl) << 19)
}

func (cl Class) replyTag(rank int) collectives.Tag {
	return collectives.WildcardTag(uint32(cl)<<19 + 1 + uint32(rank))
}

// Server answers fetch requests from the local store until stopped.
type Server struct {
	comm  collectives.Comm
	class Class
	done  chan struct{}
}

// Serve starts answering chunk/blob requests against store. Failures of
// the local store are reported to requesters as "not found", so they move
// on to the next replica.
func Serve(c collectives.Comm, store storage.Store, class Class) *Server {
	s := &Server{comm: c, class: class, done: make(chan struct{})}
	go s.loop(store)
	return s
}

// Stop shuts the server down. It must be called only after all peers have
// stopped issuing requests (a barrier), and blocks until the serving
// goroutine exits.
func (s *Server) Stop() {
	poison := []byte{opStop, 0, 0, 0, 0}
	if err := s.comm.Send(s.comm.Rank(), s.class.reqTag(), poison); err != nil {
		return // communicator closed; loop already exited
	}
	<-s.done
}

func (s *Server) loop(store storage.Store) {
	defer close(s.done)
	for {
		req, err := s.comm.Recv(collectives.AnyRank, s.class.reqTag())
		if err != nil {
			return // communicator closed
		}
		if len(req) < 5 {
			continue
		}
		op := req[0]
		requester := int(binary.BigEndian.Uint32(req[1:]))
		payload := req[5:]
		if op == opStop {
			return
		}
		var (
			data  []byte
			found bool
		)
		switch op {
		case opBlob:
			if b, err := store.GetBlob(string(payload)); err == nil {
				data, found = b, true
			}
		case opChunk:
			var fp fingerprint.FP
			if len(payload) == fingerprint.Size {
				copy(fp[:], payload)
				if b, err := store.GetChunk(fp); err == nil {
					data, found = b, true
				}
			}
		}
		reply := make([]byte, 1+len(data))
		if found {
			reply[0] = 1
		}
		copy(reply[1:], data)
		if requester >= 0 && requester < s.comm.Size() {
			if err := s.comm.Send(requester, s.class.replyTag(requester), reply); err != nil {
				return
			}
		}
	}
}

// call performs one synchronous request to peer.
func call(c collectives.Comm, class Class, peer int, op byte, payload []byte) ([]byte, bool, error) {
	req := make([]byte, 5+len(payload))
	req[0] = op
	binary.BigEndian.PutUint32(req[1:], uint32(c.Rank()))
	copy(req[5:], payload)
	if err := c.Send(peer, class.reqTag(), req); err != nil {
		return nil, false, fmt.Errorf("fetch: request to rank %d: %w", peer, err)
	}
	reply, err := c.Recv(collectives.AnyRank, class.replyTag(c.Rank()))
	if err != nil {
		return nil, false, fmt.Errorf("fetch: reply from rank %d: %w", peer, err)
	}
	if len(reply) < 1 {
		return nil, false, fmt.Errorf("fetch: malformed reply from rank %d", peer)
	}
	return reply[1:], reply[0] == 1, nil
}

// Blob fetches a named blob from peer. The bool reports whether the peer
// had it.
func Blob(c collectives.Comm, class Class, peer int, name string) ([]byte, bool, error) {
	return call(c, class, peer, opBlob, []byte(name))
}

// Chunk fetches a chunk by fingerprint from peer.
func Chunk(c collectives.Comm, class Class, peer int, fp fingerprint.FP) ([]byte, bool, error) {
	return call(c, class, peer, opChunk, fp[:])
}
