package fetch

import (
	"sync"
	"time"

	"dedupcr/internal/collectives"
	"dedupcr/internal/fingerprint"
	"dedupcr/internal/metrics"
)

// Stats is an instrumented fetch client: it wraps the package-level Blob
// and Chunk calls and records per-RPC latency, per-peer traffic and
// miss counts — the raw material of restore read-amplification and
// fetch-imbalance reporting. A nil *Stats is valid and records nothing,
// so instrumented call sites never branch on "is instrumentation on".
//
// All methods are safe for concurrent use; the fetch protocol itself is
// one-outstanding-request-per-rank, but hybrid shard recovery may fetch
// from a helper goroutine while counters are read.
type Stats struct {
	mu         sync.Mutex
	latency    *metrics.Histogram
	peerChunks []int64 // indexed by peer rank
	peerBytes  []int64
	requests   int64
	misses     int64
}

// NewStats creates an instrumented fetch client for a communicator of n
// ranks.
func NewStats(n int) *Stats {
	return &Stats{
		latency:    metrics.NewHistogram(),
		peerChunks: make([]int64, n),
		peerBytes:  make([]int64, n),
	}
}

func (s *Stats) record(peer int, data []byte, found bool, elapsed time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	s.latency.Record(int64(elapsed))
	if !found {
		s.misses++
		return
	}
	if peer >= 0 && peer < len(s.peerChunks) {
		s.peerChunks[peer]++
		s.peerBytes[peer] += int64(len(data))
	}
}

// Chunk fetches a chunk by fingerprint from peer, recording the RPC.
func (s *Stats) Chunk(c collectives.Comm, class Class, peer int, fp fingerprint.FP) ([]byte, bool, error) {
	start := time.Now()
	data, found, err := Chunk(c, class, peer, fp)
	if err == nil {
		s.record(peer, data, found, time.Since(start))
	}
	return data, found, err
}

// Blob fetches a named blob from peer, recording the RPC. Blob payloads
// count toward per-peer traffic like chunks do (the restore-metadata
// sweep is real network load).
func (s *Stats) Blob(c collectives.Comm, class Class, peer int, name string) ([]byte, bool, error) {
	start := time.Now()
	data, found, err := Blob(c, class, peer, name)
	if err == nil {
		s.record(peer, data, found, time.Since(start))
	}
	return data, found, err
}

// Requests returns how many fetch RPCs were issued (misses included).
func (s *Stats) Requests() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

// Misses returns how many RPCs came back not-found.
func (s *Stats) Misses() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.misses
}

// Latency returns the per-RPC latency histogram (nanoseconds), or nil if
// nothing was recorded.
func (s *Stats) Latency() *metrics.Histogram {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.latency.Count() == 0 {
		return nil
	}
	return s.latency
}

// PeerChunks returns a copy of the per-peer served-chunk counts (indexed
// by peer rank).
func (s *Stats) PeerChunks() []int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.peerChunks...)
}

// PeerBytes returns a copy of the per-peer fetched-byte counts.
func (s *Stats) PeerBytes() []int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int64(nil), s.peerBytes...)
}

// SourceRanks returns how many distinct peers served at least one chunk
// or blob.
func (s *Stats) SourceRanks() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.peerChunks {
		if c > 0 {
			n++
		}
	}
	return n
}
