package chunk

import (
	"bytes"
	"math/rand"
	"testing"
)

// randBuf builds a deterministic pseudo-random buffer with some repeated
// regions so both chunkers see duplicate content.
func randBuf(seed int64, n int) []byte {
	buf := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(buf)
	// Repeat a block to create duplicate chunks under fixed-size cuts.
	if n >= 4096 {
		copy(buf[n/2:], buf[:2048])
	}
	return buf
}

// TestFromCutsParallelMatchesSerial verifies the tentpole determinism
// guarantee: for both chunkers and any worker count, the parallel hash
// produces exactly the chunks FromCuts produces, in the same order.
func TestFromCutsParallelMatchesSerial(t *testing.T) {
	for _, size := range []int{0, 1, 100, 4096, 1 << 16, 1<<17 + 333} {
		buf := randBuf(int64(size)+7, size)
		for _, chunker := range []CutChunker{NewFixed(256), NewContentDefined(256)} {
			cuts := chunker.Cuts(buf)
			want := FromCuts(buf, cuts)
			for _, workers := range []int{0, 1, 2, 3, 8, 64} {
				got := FromCutsParallel(buf, cuts, workers)
				if len(got) != len(want) {
					t.Fatalf("size=%d workers=%d: %d chunks, want %d", size, workers, len(got), len(want))
				}
				for i := range want {
					if got[i].FP != want[i].FP || !bytes.Equal(got[i].Data, want[i].Data) {
						t.Fatalf("size=%d workers=%d: chunk %d differs", size, workers, i)
					}
				}
			}
		}
	}
}

// TestFromCutsStreamOrder verifies that emit receives consecutive spans
// covering every chunk in dataset order, so a streaming consumer (the
// dump's local-dedup) sees exactly the serial first-occurrence order.
func TestFromCutsStreamOrder(t *testing.T) {
	buf := randBuf(42, 1<<17)
	cuts := NewFixed(128).Cuts(buf)
	var streamed []Chunk
	got, busy := FromCutsStream(buf, cuts, 4, func(span []Chunk) {
		streamed = append(streamed, span...)
	})
	want := FromCuts(buf, cuts)
	if len(streamed) != len(want) || len(got) != len(want) {
		t.Fatalf("streamed %d, returned %d chunks, want %d", len(streamed), len(got), len(want))
	}
	for i := range want {
		if streamed[i].FP != want[i].FP {
			t.Fatalf("streamed chunk %d out of order", i)
		}
		if got[i].FP != want[i].FP {
			t.Fatalf("returned chunk %d differs", i)
		}
	}
	if len(busy) == 0 {
		t.Fatalf("expected per-worker busy times for a parallel run")
	}
	for w, d := range busy {
		if d < 0 {
			t.Fatalf("worker %d negative busy time %v", w, d)
		}
	}
}

// TestWorkersNormalization pins the worker-count defaulting rule.
func TestWorkersNormalization(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatalf("Workers(3) = %d", Workers(3))
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Fatalf("Workers must normalize non-positive counts to >= 1")
	}
}
