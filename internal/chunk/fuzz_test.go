package chunk

import (
	"bytes"
	"testing"
)

// FuzzCDCChunker fuzzes the content-defined chunker's structural
// invariants and its split-stability: because the rolling-hash scan
// restarts at every cut point, chunking the stream suffix after any cut
// must reproduce the remaining cuts exactly — the property that makes
// all ranks agree on boundaries without sharing state, and the property
// the parallel hash pool relies on when it hands shard boundaries out by
// index.
func FuzzCDCChunker(f *testing.F) {
	f.Add([]byte("hello, collective dump"), byte(0))
	f.Add(bytes.Repeat([]byte("abcdef0123456789"), 64), byte(1))
	f.Add(make([]byte, 4096), byte(2))
	f.Add([]byte{}, byte(3))
	f.Fuzz(func(t *testing.T, data []byte, avgSel byte) {
		avgs := []int{64, 128, 256, 1024}
		c := NewContentDefined(avgs[int(avgSel)%len(avgs)])
		cuts := c.Cuts(data)

		if len(data) == 0 {
			if len(cuts) != 0 {
				t.Fatalf("empty buffer produced %d cuts", len(cuts))
			}
			return
		}
		// Cuts are strictly ascending and tile the buffer exactly.
		prev := 0
		for i, end := range cuts {
			if end <= prev {
				t.Fatalf("cut %d not ascending: %d after %d", i, end, prev)
			}
			size := end - prev
			if size > c.Max {
				t.Fatalf("chunk %d of %d bytes exceeds Max %d", i, size, c.Max)
			}
			if i < len(cuts)-1 && size <= c.Min {
				t.Fatalf("non-final chunk %d of %d bytes not above Min %d", i, size, c.Min)
			}
			prev = end
		}
		if cuts[len(cuts)-1] != len(data) {
			t.Fatalf("last cut %d != len %d", cuts[len(cuts)-1], len(data))
		}

		// Split-stability: re-chunking the suffix after a cut reproduces
		// the remaining boundaries (checked at the first and middle cut).
		for _, i := range []int{0, len(cuts) / 2} {
			if i >= len(cuts)-1 {
				continue
			}
			base := cuts[i]
			suffix := c.Cuts(data[base:])
			rest := cuts[i+1:]
			if len(suffix) != len(rest) {
				t.Fatalf("suffix after cut %d: %d cuts, want %d", i, len(suffix), len(rest))
			}
			for j := range rest {
				if suffix[j] != rest[j]-base {
					t.Fatalf("suffix cut %d = %d, want %d", j, suffix[j], rest[j]-base)
				}
			}
		}

		// The parallel hash pool must agree with the serial reference.
		want := FromCuts(data, cuts)
		got := FromCutsParallel(data, cuts, 4)
		if len(got) != len(want) {
			t.Fatalf("parallel produced %d chunks, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].FP != want[i].FP || !bytes.Equal(got[i].Data, want[i].Data) {
				t.Fatalf("parallel chunk %d differs from serial", i)
			}
		}
	})
}
