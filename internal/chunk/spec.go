package chunk

import "fmt"

// Algo names a chunking algorithm. The zero value is fixed-size chunking,
// the paper's page-matched default, so the zero Spec keeps the historical
// behavior of Options that never mention a chunker.
type Algo uint8

const (
	// AlgoFixed is fixed-size chunking (the paper's memory-page model).
	AlgoFixed Algo = iota
	// AlgoRabin is the rolling Rabin-style content-defined chunker — the
	// related-work alternative, shift-resistant but slower per byte.
	AlgoRabin
	// AlgoGear is the gear-hash content-defined chunker: one table lookup
	// and one shift-add per byte, with an arch-selected unrolled fast path
	// (see internal/chunk/gear). Shift-resistant like AlgoRabin and
	// several times faster per core.
	AlgoGear

	// numAlgos bounds the registry; new algorithms extend it.
	numAlgos
)

// String returns the canonical CLI spelling: the same names the
// `-chunker fixed|cdc|gear` flags accept.
func (a Algo) String() string {
	switch a {
	case AlgoFixed:
		return "fixed"
	case AlgoRabin:
		return "cdc"
	case AlgoGear:
		return "gear"
	default:
		return fmt.Sprintf("Algo(%d)", uint8(a))
	}
}

// ParseAlgo parses a CLI chunker name. "rabin" is accepted as a synonym
// of "cdc" (they name the same algorithm).
func ParseAlgo(s string) (Algo, error) {
	switch s {
	case "fixed", "":
		return AlgoFixed, nil
	case "cdc", "rabin":
		return AlgoRabin, nil
	case "gear":
		return AlgoGear, nil
	default:
		return 0, fmt.Errorf("chunk: unknown chunker %q (want fixed, cdc or gear)", s)
	}
}

// Spec selects a chunking algorithm and its size parameter. The zero
// value means fixed-size chunking at DefaultSize (4 KiB), so existing
// call sites that never set a chunker keep their exact behavior.
//
// Size is the fixed chunk size for AlgoFixed and the expected (average)
// chunk size for the content-defined algorithms; 0 selects DefaultSize.
// All ranks of a collective dump must agree on the Spec — boundaries are
// collective decision state.
type Spec struct {
	Algo Algo
	Size int
}

// String renders the spec as "algo/size" for cache keys and logs.
func (s Spec) String() string {
	return fmt.Sprintf("%s/%d", s.Algo, s.normalized().Size)
}

// normalized resolves the spec's size default.
func (s Spec) normalized() Spec {
	if s.Size <= 0 {
		s.Size = DefaultSize
	}
	return s
}

// minCDCSize is the smallest expected chunk size the content-defined
// algorithms accept: below it the min bound (size/4, clamped to the
// rolling window) collides with the max bound and the cut discipline
// degenerates.
const minCDCSize = 64

// Validate checks the spec's per-algorithm constraints after defaulting.
func (s Spec) Validate() error {
	s = s.normalized()
	switch s.Algo {
	case AlgoFixed:
		// Any positive size chunks correctly.
	case AlgoRabin, AlgoGear:
		if s.Size < minCDCSize {
			return fmt.Errorf("chunk: %s chunker needs Size >= %d, got %d", s.Algo, minCDCSize, s.Size)
		}
	default:
		return fmt.Errorf("chunk: unknown chunker algo %d", uint8(s.Algo))
	}
	if registry[s.Algo] == nil {
		return fmt.Errorf("chunk: chunker %s is not registered (missing import of its package?)", s.Algo)
	}
	return nil
}

// registry maps each algorithm to its constructor. Fixed and Rabin live
// in this package and register below; out-of-package algorithms (gear)
// register themselves from their own init, so callers that can name them
// via a Spec have necessarily linked their implementation in.
var registry [numAlgos]func(size int) CutChunker

// Register installs the constructor for an algorithm. It is called from
// package init functions only and panics on duplicates — a duplicate is
// a programming error, not a runtime condition.
func Register(a Algo, ctor func(size int) CutChunker) {
	if a >= numAlgos {
		panic(fmt.Sprintf("chunk: Register(%d) out of range", uint8(a)))
	}
	if registry[a] != nil {
		panic(fmt.Sprintf("chunk: duplicate Register(%s)", a))
	}
	registry[a] = ctor
}

// New builds the chunker a spec describes. Every registered chunker
// separates its boundary scan from hashing (CutChunker), so callers can
// attribute the two phases independently.
func New(s Spec) (CutChunker, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s = s.normalized()
	return registry[s.Algo](s.Size), nil
}

func init() {
	Register(AlgoFixed, func(size int) CutChunker { return NewFixed(size) })
	Register(AlgoRabin, func(size int) CutChunker { return NewContentDefined(size) })
}
