package chunk

import (
	"encoding/binary"
	"fmt"

	"dedupcr/internal/fingerprint"
)

// Wire format of a Recipe (big endian):
//
//	u32 nChunks | nChunks × (20-byte FP | u32 size)

// MarshalBinary encodes the recipe for persistence or transmission.
func (r Recipe) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 4+r.Len()*(fingerprint.Size+4))
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.Len()))
	if len(r.Sizes) != len(r.FPs) {
		return nil, fmt.Errorf("chunk: recipe has %d fingerprints but %d sizes", len(r.FPs), len(r.Sizes))
	}
	for i, fp := range r.FPs {
		buf = append(buf, fp[:]...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(r.Sizes[i]))
	}
	return buf, nil
}

// UnmarshalBinary decodes a recipe encoded by MarshalBinary. It also
// returns how many bytes it consumed, so recipes can be embedded in
// larger blobs.
func (r *Recipe) UnmarshalBinary(data []byte) error {
	_, err := r.decode(data)
	return err
}

// decode parses a recipe from the front of data, returning the remainder.
func (r *Recipe) decode(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("chunk: recipe header truncated (%d bytes)", len(data))
	}
	n := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	if need := n * (fingerprint.Size + 4); len(data) < need {
		return nil, fmt.Errorf("chunk: recipe body truncated: need %d bytes, have %d", need, len(data))
	}
	r.FPs = make([]fingerprint.FP, n)
	r.Sizes = make([]int32, n)
	for i := 0; i < n; i++ {
		copy(r.FPs[i][:], data[:fingerprint.Size])
		r.Sizes[i] = int32(binary.BigEndian.Uint32(data[fingerprint.Size:]))
		data = data[fingerprint.Size+4:]
	}
	return data, nil
}

// DecodeRecipe parses a recipe from the front of data, returning it and
// the unconsumed remainder.
func DecodeRecipe(data []byte) (Recipe, []byte, error) {
	var r Recipe
	rest, err := r.decode(data)
	return r, rest, err
}
