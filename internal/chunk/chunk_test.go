package chunk

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dedupcr/internal/fingerprint"
)

func TestFixedSplitCoversBuffer(t *testing.T) {
	check := func(seed int64, sz uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, int(sz))
		rng.Read(buf)
		chunks := NewFixed(64).Split(buf)
		var joined []byte
		for _, c := range chunks {
			joined = append(joined, c.Data...)
			if fingerprint.Of(c.Data) != c.FP {
				return false
			}
		}
		return bytes.Equal(joined, buf)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedSplitSizes(t *testing.T) {
	buf := make([]byte, 1000)
	chunks := NewFixed(256).Split(buf)
	if len(chunks) != 4 {
		t.Fatalf("got %d chunks, want 4", len(chunks))
	}
	for i := 0; i < 3; i++ {
		if len(chunks[i].Data) != 256 {
			t.Errorf("chunk %d size = %d, want 256", i, len(chunks[i].Data))
		}
	}
	if len(chunks[3].Data) != 232 {
		t.Errorf("tail chunk size = %d, want 232", len(chunks[3].Data))
	}
}

func TestFixedDefaultSize(t *testing.T) {
	buf := make([]byte, 3*DefaultSize)
	if got := len(NewFixed(0).Split(buf)); got != 3 {
		t.Fatalf("default chunker made %d chunks, want 3", got)
	}
}

func TestFixedSplitEmpty(t *testing.T) {
	if got := NewFixed(64).Split(nil); len(got) != 0 {
		t.Fatalf("empty buffer produced %d chunks", len(got))
	}
}

func TestRecipeRoundTrip(t *testing.T) {
	buf := []byte("aaaa" + "bbbb" + "aaaa" + "cc")
	chunks := NewFixed(4).Split(buf)
	r := BuildRecipe(chunks)
	if r.Len() != 4 {
		t.Fatalf("recipe length = %d, want 4", r.Len())
	}
	if r.TotalBytes() != int64(len(buf)) {
		t.Fatalf("TotalBytes = %d, want %d", r.TotalBytes(), len(buf))
	}
	if got := len(r.Unique()); got != 3 {
		t.Fatalf("unique fingerprints = %d, want 3 (aaaa duplicated)", got)
	}

	index := make(map[fingerprint.FP][]byte)
	for _, c := range chunks {
		index[c.FP] = c.Data
	}
	out, err := r.Assemble(func(fp fingerprint.FP) ([]byte, error) {
		data, ok := index[fp]
		if !ok {
			return nil, fmt.Errorf("missing")
		}
		return data, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, buf) {
		t.Fatal("assembled buffer differs from original")
	}
}

func TestAssembleDetectsCorruption(t *testing.T) {
	buf := []byte("aaaabbbb")
	chunks := NewFixed(4).Split(buf)
	r := BuildRecipe(chunks)
	_, err := r.Assemble(func(fp fingerprint.FP) ([]byte, error) {
		return []byte("XXXX"), nil // wrong content, right length
	})
	if err == nil {
		t.Fatal("Assemble accepted corrupt chunk content")
	}
	_, err = r.Assemble(func(fp fingerprint.FP) ([]byte, error) {
		return []byte("toolongforachunk"), nil
	})
	if err == nil {
		t.Fatal("Assemble accepted wrong-size chunk")
	}
}

func TestRecipeWireRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, rng.Intn(5000))
		rng.Read(buf)
		r := BuildRecipe(NewFixed(128).Split(buf))
		blob, err := r.MarshalBinary()
		if err != nil {
			return false
		}
		var back Recipe
		if err := back.UnmarshalBinary(blob); err != nil {
			return false
		}
		if back.Len() != r.Len() || back.TotalBytes() != r.TotalBytes() {
			return false
		}
		for i := range r.FPs {
			if back.FPs[i] != r.FPs[i] || back.Sizes[i] != r.Sizes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRecipeRejectsTruncation(t *testing.T) {
	r := BuildRecipe(NewFixed(4).Split([]byte("aaaabbbbcccc")))
	blob, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 2, len(blob) - 1} {
		var back Recipe
		if err := back.UnmarshalBinary(blob[:cut]); err == nil {
			t.Errorf("cut at %d: expected error", cut)
		}
	}
}

func TestContentDefinedCoversBuffer(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, 10000+rng.Intn(10000))
		rng.Read(buf)
		c := NewContentDefined(512)
		var joined []byte
		for _, ch := range c.Split(buf) {
			if len(ch.Data) > c.Max {
				return false
			}
			joined = append(joined, ch.Data...)
		}
		return bytes.Equal(joined, buf)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestContentDefinedShiftResistance(t *testing.T) {
	// Insert bytes at the front; most chunk boundaries (hence
	// fingerprints) must survive — the property fixed-size chunking
	// lacks and CDC exists to provide.
	rng := rand.New(rand.NewSource(99))
	base := make([]byte, 64*1024)
	rng.Read(base)
	shifted := append([]byte("INSERTED PREFIX!"), base...)

	c := NewContentDefined(1024)
	fps := make(map[fingerprint.FP]bool)
	for _, ch := range c.Split(base) {
		fps[ch.FP] = true
	}
	var common, total int
	for _, ch := range c.Split(shifted) {
		total++
		if fps[ch.FP] {
			common++
		}
	}
	if common*2 < total {
		t.Fatalf("only %d/%d chunks survived a prefix shift; CDC is not shift resistant", common, total)
	}
}

// TestContentDefinedBoundsFromRoundedAvg is the regression test for the
// Min/Max derivation bug: a non-power-of-two request must derive Min and
// Max from the ROUNDED average, not the raw one, so the 1:4:16 ratio
// always holds and Max is never less than 4× the effective average.
func TestContentDefinedBoundsFromRoundedAvg(t *testing.T) {
	cases := []struct {
		avg, wantMin, wantAvg, wantMax int
	}{
		{512, 128, 512, 2048},
		{500, 128, 512, 2048}, // rounds up to 512; bounds follow the rounded value
		{4097, 2048, 8192, 32768},
		{100, 48, 128, 512}, // Min clamped to the 48-byte window
		{0, 1024, 4096, 16384},
	}
	for _, tc := range cases {
		c := NewContentDefined(tc.avg)
		if c.Min != tc.wantMin || c.Avg != tc.wantAvg || c.Max != tc.wantMax {
			t.Errorf("NewContentDefined(%d) = min/avg/max %d/%d/%d, want %d/%d/%d",
				tc.avg, c.Min, c.Avg, c.Max, tc.wantMin, tc.wantAvg, tc.wantMax)
		}
		if c.Max < 4*c.Avg {
			t.Errorf("NewContentDefined(%d): Max %d < 4×Avg %d", tc.avg, c.Max, c.Avg)
		}
	}
	if cuts := NewContentDefined(512).Cuts(nil); cuts != nil {
		t.Errorf("empty buffer produced cuts %v", cuts)
	}
}

func TestContentDefinedDeterministic(t *testing.T) {
	buf := make([]byte, 32*1024)
	rand.New(rand.NewSource(5)).Read(buf)
	a := NewContentDefined(512).Split(buf)
	b := NewContentDefined(512).Split(buf)
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].FP != b[i].FP {
			t.Fatalf("chunk %d differs between runs", i)
		}
	}
}

// TestCutsMatchSplit pins the CutChunker contract: Cuts + FromCuts must
// produce exactly what Split produces, for both chunkers, so the
// instrumented dump path (which times the two halves separately) cannot
// drift from the plain one.
func TestCutsMatchSplit(t *testing.T) {
	buf := make([]byte, 40*1024+123)
	rand.New(rand.NewSource(7)).Read(buf)
	chunkers := map[string]CutChunker{
		"fixed": NewFixed(4096),
		"cdc":   NewContentDefined(1024),
	}
	for name, c := range chunkers {
		cuts := c.Cuts(buf)
		if len(cuts) == 0 || cuts[len(cuts)-1] != len(buf) {
			t.Fatalf("%s: cuts do not cover buf: %v", name, cuts)
		}
		prev := 0
		for i, end := range cuts {
			if end <= prev {
				t.Fatalf("%s: cut %d (%d) not ascending from %d", name, i, end, prev)
			}
			prev = end
		}
		got := FromCuts(buf, cuts)
		want := c.Split(buf)
		if len(got) != len(want) {
			t.Fatalf("%s: %d chunks via cuts, %d via Split", name, len(got), len(want))
		}
		for i := range got {
			if got[i].FP != want[i].FP || len(got[i].Data) != len(want[i].Data) {
				t.Fatalf("%s: chunk %d differs", name, i)
			}
		}
	}
	if cuts := NewFixed(512).Cuts(nil); len(cuts) != 0 {
		t.Errorf("empty buf produced cuts %v", cuts)
	}
}
