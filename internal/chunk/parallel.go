package chunk

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dedupcr/internal/fingerprint"
)

// hashShardChunks is how many consecutive chunks one worker hashes per
// shard claim. Large enough that the per-shard bookkeeping (one atomic
// add, one channel send) vanishes against the SHA cost of the shard,
// small enough that a dump's chunks spread over all workers and the
// in-order consumer never starves behind one giant shard.
const hashShardChunks = 64

// Workers normalizes a worker-count option: values <= 0 select
// GOMAXPROCS (use every core the runtime will schedule on).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// FromCutsParallel is FromCuts with the hashing fanned out over up to
// `workers` goroutines. The result is byte-identical to FromCuts: chunk
// boundaries come from cuts unchanged and every output index is computed
// from the same input span, so the slice is deterministic regardless of
// worker interleaving. workers <= 1 falls back to the serial FromCuts.
func FromCutsParallel(buf []byte, cuts []int, workers int) []Chunk {
	out, _ := FromCutsStream(buf, cuts, workers, nil)
	return out
}

// FromCutsStream hashes the chunks delimited by cuts with up to `workers`
// goroutines and, when emit is non-nil, delivers the finished chunks to
// it as consecutive in-dataset-order spans on the caller's goroutine —
// while later spans are still being hashed. This is what lets a consumer
// (the dump's local-dedup table build) overlap with hashing instead of
// waiting for the full slice.
//
// It returns the complete chunk slice (identical to FromCuts) and the
// per-worker busy durations (index = worker id, length = workers actually
// started), which instrumented callers attribute to worker spans.
func FromCutsStream(buf []byte, cuts []int, workers int, emit func(span []Chunk)) ([]Chunk, []time.Duration) {
	workers = Workers(workers)
	if workers <= 1 || len(cuts) <= hashShardChunks {
		out := FromCuts(buf, cuts)
		if emit != nil && len(out) > 0 {
			emit(out)
		}
		return out, nil
	}

	out := make([]Chunk, len(cuts))
	nShards := (len(cuts) + hashShardChunks - 1) / hashShardChunks
	if workers > nShards {
		workers = nShards
	}
	var next atomic.Int64
	completed := make(chan int, nShards)
	busy := make([]time.Duration, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := time.Now()
			// Per-worker batch scratch: one shard is at most one
			// fingerprint batch, hashed with a single reused digest
			// while the spans are cache-resident from the claim.
			var fps [hashShardChunks]fingerprint.FP
			var spans [hashShardChunks][]byte
			for {
				s := int(next.Add(1) - 1)
				if s >= nShards {
					break
				}
				lo := s * hashShardChunks
				hi := lo + hashShardChunks
				if hi > len(cuts) {
					hi = len(cuts)
				}
				prev := 0
				if lo > 0 {
					prev = cuts[lo-1]
				}
				for i := lo; i < hi; i++ {
					spans[i-lo] = buf[prev:cuts[i]]
					prev = cuts[i]
				}
				fingerprint.BatchOf(fps[:hi-lo], spans[:hi-lo]...)
				for i := lo; i < hi; i++ {
					out[i] = Chunk{FP: fps[i-lo], Data: spans[i-lo]}
				}
				completed <- s
			}
			busy[w] = time.Since(start)
		}(w)
	}

	// Drain completions in shard order so emit sees the dataset
	// front-to-back, exactly as the serial path would produce it.
	ready := make([]bool, nShards)
	nextEmit := 0
	for done := 0; done < nShards; done++ {
		s := <-completed
		ready[s] = true
		for nextEmit < nShards && ready[nextEmit] {
			lo := nextEmit * hashShardChunks
			hi := lo + hashShardChunks
			if hi > len(cuts) {
				hi = len(cuts)
			}
			if emit != nil {
				emit(out[lo:hi])
			}
			nextEmit++
		}
	}
	wg.Wait()
	return out, busy
}
