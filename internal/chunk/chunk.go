// Package chunk splits datasets into chunks and builds the recipes
// (ordered fingerprint manifests) that let a deduplicated dataset be
// reassembled byte-exactly.
//
// The paper matches chunks with memory pages, so the default chunker is
// fixed-size with a 4 KiB chunk (the system page size). A content-defined
// (Rabin) chunker is provided as the related-work alternative and for
// ablation experiments.
package chunk

import (
	"fmt"

	"dedupcr/internal/fingerprint"
)

// DefaultSize is the default chunk size: one memory page.
const DefaultSize = 4096

// Chunk is one piece of a dataset: its content and fingerprint.
type Chunk struct {
	FP   fingerprint.FP
	Data []byte
}

// Chunker splits a buffer into chunks.
type Chunker interface {
	// Split cuts buf into consecutive chunks covering it entirely.
	// The returned chunks alias buf; callers must not mutate buf while
	// the chunks are in use.
	Split(buf []byte) []Chunk
}

// CutChunker is a Chunker whose boundary scan is separable from
// fingerprinting, letting instrumented callers time the two phases
// independently (the paper's evaluation attributes them separately).
// Both chunkers in this package implement it.
type CutChunker interface {
	Chunker
	// Cuts returns the end offset of every chunk of buf, ascending, the
	// last one len(buf). An empty buf yields no cuts.
	Cuts(buf []byte) []int
}

// fpBatchSize is how many consecutive chunks are fingerprinted per
// fingerprint.BatchOf call: large enough to amortize the batch setup,
// small enough that the spans are still cache-resident from the
// boundary scan. It matches hashShardChunks so a parallel shard is
// exactly one batch.
const fpBatchSize = 64

// FromCuts fingerprints the chunks delimited by the given end offsets
// (as returned by Cuts) into Chunk values aliasing buf. Hashing runs in
// cache-friendly batches through fingerprint.BatchOf; the result is
// identical to fingerprinting each chunk individually.
func FromCuts(buf []byte, cuts []int) []Chunk {
	out := make([]Chunk, len(cuts))
	var fps [fpBatchSize]fingerprint.FP
	var spans [fpBatchSize][]byte
	prev := 0
	for base := 0; base < len(cuts); base += fpBatchSize {
		n := len(cuts) - base
		if n > fpBatchSize {
			n = fpBatchSize
		}
		for j := 0; j < n; j++ {
			spans[j] = buf[prev:cuts[base+j]]
			prev = cuts[base+j]
		}
		fingerprint.BatchOf(fps[:n], spans[:n]...)
		for j := 0; j < n; j++ {
			out[base+j] = Chunk{FP: fps[j], Data: spans[j]}
		}
	}
	return out
}

// Fixed is a fixed-size chunker. A trailing partial chunk is kept as-is
// (shorter than Size), mirroring how a final partial page is dumped.
type Fixed struct {
	Size int
}

// NewFixed returns a fixed-size chunker; size <= 0 selects DefaultSize.
func NewFixed(size int) Fixed {
	if size <= 0 {
		size = DefaultSize
	}
	return Fixed{Size: size}
}

// Split implements Chunker.
func (c Fixed) Split(buf []byte) []Chunk {
	return FromCuts(buf, c.Cuts(buf))
}

// Cuts implements CutChunker.
func (c Fixed) Cuts(buf []byte) []int {
	size := c.Size
	if size <= 0 {
		size = DefaultSize
	}
	n := (len(buf) + size - 1) / size
	out := make([]int, 0, n)
	for off := 0; off < len(buf); off += size {
		end := off + size
		if end > len(buf) {
			end = len(buf)
		}
		out = append(out, end)
	}
	return out
}

// Recipe is the ordered list of fingerprints making up a dataset, plus the
// chunk sizes needed to reassemble buffers whose length is not a multiple
// of the chunk size. It is what a rank persists alongside its chunks so a
// restart can reconstruct the original buffer.
type Recipe struct {
	// FPs lists the fingerprint of every chunk in dataset order
	// (duplicates included: the recipe preserves positions).
	FPs []fingerprint.FP
	// Sizes holds the byte length of each chunk, parallel to FPs.
	Sizes []int32
}

// BuildRecipe creates the recipe for a chunked dataset.
func BuildRecipe(chunks []Chunk) Recipe {
	r := Recipe{
		FPs:   make([]fingerprint.FP, len(chunks)),
		Sizes: make([]int32, len(chunks)),
	}
	for i, c := range chunks {
		r.FPs[i] = c.FP
		r.Sizes[i] = int32(len(c.Data))
	}
	return r
}

// TotalBytes returns the byte length of the dataset the recipe describes.
func (r Recipe) TotalBytes() int64 {
	var n int64
	for _, s := range r.Sizes {
		n += int64(s)
	}
	return n
}

// Len returns the number of chunks in the recipe.
func (r Recipe) Len() int { return len(r.FPs) }

// Unique returns the deduplicated fingerprints of the recipe, in first-
// occurrence order, i.e. the result of the paper's local deduplication
// phase.
func (r Recipe) Unique() []fingerprint.FP {
	seen := make(map[fingerprint.FP]struct{}, len(r.FPs))
	out := make([]fingerprint.FP, 0, len(r.FPs))
	for _, fp := range r.FPs {
		if _, ok := seen[fp]; ok {
			continue
		}
		seen[fp] = struct{}{}
		out = append(out, fp)
	}
	return out
}

// Assemble reconstructs the dataset from a lookup function resolving each
// fingerprint to its content. It verifies lengths and fingerprints.
func (r Recipe) Assemble(lookup func(fingerprint.FP) ([]byte, error)) ([]byte, error) {
	buf := make([]byte, 0, r.TotalBytes())
	for i, fp := range r.FPs {
		data, err := lookup(fp)
		if err != nil {
			return nil, fmt.Errorf("chunk %d (%s): %w", i, fp.Short(), err)
		}
		if int32(len(data)) != r.Sizes[i] {
			return nil, fmt.Errorf("chunk %d (%s): got %d bytes, recipe says %d",
				i, fp.Short(), len(data), r.Sizes[i])
		}
		if fingerprint.Of(data) != fp {
			return nil, fmt.Errorf("chunk %d: content does not match fingerprint %s", i, fp.Short())
		}
		buf = append(buf, data...)
	}
	return buf, nil
}
