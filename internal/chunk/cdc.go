package chunk

// ContentDefined is a content-defined chunker using a rolling Rabin-style
// fingerprint over a sliding window, the scheme of LBFS-like systems cited
// as related work. Cut points are positions where the rolling hash matches
// a mask, bounded by Min/Max chunk sizes.
//
// The paper's system uses fixed-size chunks (memory pages); this chunker
// exists for the chunking ablation and for deduplicating arbitrary file
// data in cmd/dedupstat.
type ContentDefined struct {
	// Min and Max bound the chunk size; Avg sets the expected size.
	Min, Avg, Max int

	mask uint64
	tbl  [256]uint64
}

const cdcWindow = 48

// NewContentDefined builds a content-defined chunker with an expected
// chunk size of avg bytes (rounded up to a power of two), Min = Avg/4
// and Max = Avg*4 — all three derived from the rounded value, so the
// Min:Avg:Max ratio holds for non-power-of-two requests too. avg <= 0
// selects DefaultSize.
func NewContentDefined(avg int) *ContentDefined {
	if avg <= 0 {
		avg = DefaultSize
	}
	bits := 1
	for 1<<bits < avg {
		bits++
	}
	rounded := 1 << bits
	c := &ContentDefined{
		Min:  rounded / 4,
		Avg:  rounded,
		Max:  rounded * 4,
		mask: 1<<bits - 1,
	}
	if c.Min < cdcWindow {
		c.Min = cdcWindow
	}
	// Deterministic pseudo-random byte table (xorshift64*), so all ranks
	// cut at identical boundaries without sharing any state.
	x := uint64(0x9E3779B97F4A7C15)
	for i := range c.tbl {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		c.tbl[i] = x * 0x2545F4914F6CDD1D
	}
	return c
}

// Split implements Chunker.
func (c *ContentDefined) Split(buf []byte) []Chunk {
	return FromCuts(buf, c.Cuts(buf))
}

// Cuts implements CutChunker.
func (c *ContentDefined) Cuts(buf []byte) []int {
	if len(buf) == 0 {
		return nil
	}
	out := make([]int, 0, len(buf)/c.Avg+1)
	off := 0
	for off < len(buf) {
		off += c.cutPoint(buf[off:])
		out = append(out, off)
	}
	return out
}

// cutPoint returns the length of the next chunk of buf.
func (c *ContentDefined) cutPoint(buf []byte) int {
	if len(buf) <= c.Min {
		return len(buf)
	}
	limit := len(buf)
	if limit > c.Max {
		limit = c.Max
	}
	var h uint64
	// Prime the window ending at position Min.
	start := c.Min - cdcWindow
	for i := start; i < c.Min; i++ {
		h = h<<1 ^ c.tbl[buf[i]]
	}
	for i := c.Min; i < limit; i++ {
		h = h<<1 ^ c.tbl[buf[i]]
		// Remove the byte leaving the window: its table value was shifted
		// left cdcWindow times since insertion; shifts past 63 vanish, so
		// for windows <= 64 we subtract explicitly.
		h ^= c.tbl[buf[i-cdcWindow]] << cdcWindow
		if h&c.mask == c.mask {
			return i + 1
		}
	}
	return limit
}
