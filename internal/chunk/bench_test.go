package chunk

import (
	"math/rand"
	"testing"

	"dedupcr/internal/fingerprint"
)

func benchBuf(n int) []byte {
	buf := make([]byte, n)
	rand.New(rand.NewSource(1)).Read(buf)
	return buf
}

// BenchmarkFixedSplit4K measures fixed-size chunking + fingerprinting at
// the paper's page size — the dominant CPU cost of every dump.
func BenchmarkFixedSplit4K(b *testing.B) {
	buf := benchBuf(1 << 22)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewFixed(4096).Split(buf)
	}
}

// BenchmarkFixedSplit256 measures the scaled chunk size the experiments
// use.
func BenchmarkFixedSplit256(b *testing.B) {
	buf := benchBuf(1 << 20)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewFixed(256).Split(buf)
	}
}

// BenchmarkContentDefinedSplit measures the Rabin-style chunker, the
// related-work alternative (slower per byte, shift resistant).
func BenchmarkContentDefinedSplit(b *testing.B) {
	buf := benchBuf(1 << 22)
	c := NewContentDefined(4096)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Split(buf)
	}
}

// BenchmarkContentDefinedCuts isolates the Rabin boundary scan (no
// fingerprinting) — the number the gear chunker's scan is measured
// against.
func BenchmarkContentDefinedCuts(b *testing.B) {
	buf := benchBuf(1 << 22)
	c := NewContentDefined(4096)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Cuts(buf)
	}
}

// BenchmarkRecipeAssemble measures dataset reconstruction from a chunk
// index — the restore hot path.
func BenchmarkRecipeAssemble(b *testing.B) {
	buf := benchBuf(1 << 20)
	chunks := NewFixed(4096).Split(buf)
	r := BuildRecipe(chunks)
	index := make(map[fingerprint.FP][]byte, len(chunks))
	for _, c := range chunks {
		index[c.FP] = c.Data
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := r.Assemble(func(fp fingerprint.FP) ([]byte, error) {
			return index[fp], nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
