package gear

// cutGeneric is the reference boundary scan: the simplest loop that is
// obviously correct. It is compiled on every architecture — the selected
// fast path must match it cut for cut (see the differential fuzzer) —
// and is the implementation the purego build tag forces.
//
// buf is already clamped to Max by the caller; minSize > 0 and
// minSize < len(buf) hold (cutPoint handles the short-buffer case), and
// minSize >= Window by construction of the chunker.
func cutGeneric(buf []byte, minSize int, mask uint64) int {
	var h uint64
	// Skip-scan: the accumulator at position p depends only on bytes
	// (p-Window, p], so priming can start Window bytes before the first
	// position the cut condition may fire at. Bytes before that would
	// have shifted entirely out of the 64-bit state.
	for i := minSize - Window; i < minSize; i++ {
		h = h<<1 + table[buf[i]]
	}
	for i := minSize; i < len(buf); i++ {
		h = h<<1 + table[buf[i]]
		if h&mask == 0 {
			return i + 1
		}
	}
	return len(buf)
}
