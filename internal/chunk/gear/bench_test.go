package gear

import (
	"testing"

	"dedupcr/internal/chunk"
)

// BenchmarkGearCuts measures the selected boundary scan (unrolled on
// amd64/arm64, generic under purego) — compare against
// BenchmarkGenericCuts and internal/chunk's BenchmarkContentDefinedSplit
// to see the fast path's margin.
func BenchmarkGearCuts(b *testing.B) {
	buf := testBuf(1, 1<<22)
	c := New(4096)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Cuts(buf)
	}
}

// BenchmarkGenericCuts measures the reference scan regardless of the
// build's selection, via the test-only scan harness.
func BenchmarkGenericCuts(b *testing.B) {
	buf := testBuf(1, 1<<22)
	c := New(4096)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cutsWith(cutGeneric, c, buf)
	}
}

// BenchmarkGearSplit measures boundary scan + batched fingerprinting,
// the full serial hot path a Parallelism=1 dump runs per rank.
func BenchmarkGearSplit(b *testing.B) {
	buf := testBuf(1, 1<<22)
	c := New(4096)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunk.FromCuts(buf, c.Cuts(buf))
	}
}
