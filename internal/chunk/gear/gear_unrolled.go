package gear

// cutUnrolled is the fast boundary scan selected on amd64 and arm64: the
// same recurrence as cutGeneric, eight positions per loop iteration over
// a re-sliced 8-byte block. The full-slice re-slice (b := buf[i:i+8:i+8])
// lets the compiler prove every inner index in-bounds, so the hot loop
// compiles to straight shift-add-lookup chains with no bounds checks and
// no per-byte loop overhead — the compiler-friendly shape of the SIMD
// skip-scanning kernels in the vector-chunking literature, without hand
// assembly. It is compiled (and differentially tested) on every
// architecture; init only selects it where it has been benchmarked to
// win.
func cutUnrolled(buf []byte, minSize int, mask uint64) int {
	var h uint64
	// Same skip-scan priming as the reference: only the trailing Window
	// bytes before minSize can still influence the accumulator.
	for i := minSize - Window; i < minSize; i++ {
		h = h<<1 + table[buf[i]]
	}
	n := len(buf)
	i := minSize
	for ; i+8 <= n; i += 8 {
		b := buf[i : i+8 : i+8]
		h = h<<1 + table[b[0]]
		if h&mask == 0 {
			return i + 1
		}
		h = h<<1 + table[b[1]]
		if h&mask == 0 {
			return i + 2
		}
		h = h<<1 + table[b[2]]
		if h&mask == 0 {
			return i + 3
		}
		h = h<<1 + table[b[3]]
		if h&mask == 0 {
			return i + 4
		}
		h = h<<1 + table[b[4]]
		if h&mask == 0 {
			return i + 5
		}
		h = h<<1 + table[b[5]]
		if h&mask == 0 {
			return i + 6
		}
		h = h<<1 + table[b[6]]
		if h&mask == 0 {
			return i + 7
		}
		h = h<<1 + table[b[7]]
		if h&mask == 0 {
			return i + 8
		}
	}
	for ; i < n; i++ {
		h = h<<1 + table[buf[i]]
		if h&mask == 0 {
			return i + 1
		}
	}
	return n
}
