//go:build amd64 && !purego

package gear

// On amd64 the unrolled scan is selected unconditionally: SSE2 is part
// of the architecture baseline, every 64-bit x86 core has the superscalar
// shift-add-load pipeline the unrolled kernel is shaped for, and the Go
// compiler needs no feature detection to emit it. The purego tag forces
// the generic reference instead (CI runs the chunk tests that way to
// exercise the fallback on amd64).
func init() {
	cut = cutUnrolled
	implName = "unrolled-amd64"
}
