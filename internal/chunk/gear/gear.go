// Package gear is a gear-hash content-defined chunker, the vectorizable
// CDC variant of the dedup literature ("Accelerating Data Chunking in
// Deduplication Systems using Vector Instructions"; Ddelta/FastCDC).
//
// Unlike the Rabin-style chunker in internal/chunk, the gear hash keeps
// no explicit sliding window: each step is one shift-add plus a single
// 256-entry table lookup,
//
//	h = h<<1 + table[b]
//
// and bytes age out of the state by overflow — after 64 shifts a byte's
// entire contribution has left the 64-bit accumulator, carries included
// (the hash is a sum of table[bᵢ]<<dᵢ mod 2^64, and any term shifted by
// ≥64 is exactly 0 mod 2^64). That gives the two properties the hot path
// wants:
//
//   - half the per-byte work of the Rabin loop (no second lookup, no
//     outgoing-byte subtraction), in a dependency chain short enough for
//     wide out-of-order cores to sustain ~1 byte/cycle;
//   - skip-scanning: the hash at any position depends only on the last
//     64 bytes, so the scan can jump straight to Min-64 instead of
//     hashing the whole minimum-size prefix.
//
// The cut condition tests the accumulator's HIGH bits (h & mask == 0
// with mask occupying the top log2(avg) bits): high bits mix the full
// 64-byte window, while low bits would depend on only the last few
// bytes. Min/Avg/Max bounds follow the same normalized discipline as
// chunk.ContentDefined: Avg rounds up to a power of two, Min = Avg/4
// (clamped to the 64-byte window), Max = Avg*4, all derived from the
// rounded value.
//
// Two boundary-identical implementations exist: a plain reference loop
// (cutGeneric) and an 8-way unrolled scan (cutUnrolled) that the
// compiler keeps free of bounds checks. Package init selects the
// unrolled path on amd64 and arm64 and the reference elsewhere — or
// everywhere under the `purego` build tag, which CI uses to exercise
// the fallback on amd64. The differential fuzzer, the golden cut-point
// vectors under internal/chunk/testdata and the 100-run determinism
// test all pin the two paths (and every architecture) to identical
// boundaries.
package gear

import (
	"dedupcr/internal/chunk"
)

// Window is the gear hash's effective window: the number of trailing
// bytes that can still influence the accumulator (the width of uint64).
const Window = 64

// table maps each byte value to a pseudo-random 64-bit gear. It is
// computed once at init by a fixed-seed xorshift64* generator — byte
// tables must be bit-identical on every rank, architecture and run,
// because chunk boundaries are collective decision state.
var table [256]uint64

// initTable fills the gear table deterministically. The seed differs
// from the Rabin chunker's so the two algorithms cut independently.
func initTable() {
	x := uint64(0xA5A3_5730_0596_9F8B)
	for i := range table {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		table[i] = x * 0x2545F4914F6CDD1D
	}
}

func init() {
	initTable()
	chunk.Register(chunk.AlgoGear, func(size int) chunk.CutChunker { return New(size) })
}

// cut is the implementation the build selected at init: cutUnrolled on
// amd64/arm64, cutGeneric elsewhere or under the purego tag. Both return
// identical cut points on identical input.
var cut func(buf []byte, minSize int, mask uint64) int

// Impl names the selected scan implementation, for logs and tests.
func Impl() string { return implName }

var implName string

// Chunker is a gear-hash content-defined chunker. It implements
// chunk.CutChunker: the boundary scan (Cuts) is separable from
// fingerprinting so the dump pipeline attributes the two phases
// independently.
type Chunker struct {
	// Min and Max bound the chunk size; Avg is the expected size
	// (a power of two).
	Min, Avg, Max int

	mask uint64
}

// New builds a gear chunker with an expected chunk size of avg bytes
// (rounded up to a power of two), Min = Avg/4 (clamped to the 64-byte
// gear window) and Max = Avg*4, all derived from the rounded value.
// avg <= 0 selects chunk.DefaultSize.
func New(avg int) *Chunker {
	if avg <= 0 {
		avg = chunk.DefaultSize
	}
	bits := 1
	for 1<<bits < avg {
		bits++
	}
	rounded := 1 << bits
	c := &Chunker{
		Min: rounded / 4,
		Avg: rounded,
		Max: rounded * 4,
		// The top `bits` bits of the accumulator: a cut fires when all
		// of them are zero, once per 2^bits positions in expectation.
		mask: (uint64(1)<<bits - 1) << (64 - bits),
	}
	if c.Min < Window {
		c.Min = Window
	}
	return c
}

// Split implements chunk.Chunker.
func (c *Chunker) Split(buf []byte) []chunk.Chunk {
	return chunk.FromCuts(buf, c.Cuts(buf))
}

// Cuts implements chunk.CutChunker.
func (c *Chunker) Cuts(buf []byte) []int {
	if len(buf) == 0 {
		return nil
	}
	out := make([]int, 0, len(buf)/c.Avg+1)
	off := 0
	for off < len(buf) {
		off += c.cutPoint(buf[off:])
		out = append(out, off)
	}
	return out
}

// cutPoint returns the length of the next chunk of buf. The accumulator
// restarts at zero on every chunk, so chunking any suffix that starts at
// a cut reproduces the remaining cuts exactly — the split-stability
// property all ranks rely on to agree on boundaries without shared
// state.
func (c *Chunker) cutPoint(buf []byte) int {
	if len(buf) <= c.Min {
		return len(buf)
	}
	limit := len(buf)
	if limit > c.Max {
		limit = c.Max
	}
	return cut(buf[:limit], c.Min, c.mask)
}
