//go:build arm64 && !purego

package gear

// On arm64 the unrolled scan is selected unconditionally: NEON and the
// wide integer pipeline are architecture baseline, so no runtime feature
// detection is needed. The purego tag forces the generic reference.
func init() {
	cut = cutUnrolled
	implName = "unrolled-arm64"
}
