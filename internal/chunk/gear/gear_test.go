package gear

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"testing"

	"dedupcr/internal/chunk"
	"dedupcr/internal/fingerprint"
)

// update regenerates the golden cut-point vectors:
//
//	go test ./internal/chunk/gear -run TestGoldenCuts -update
var update = flag.Bool("update", false, "rewrite the golden cut-point vectors")

const goldenPath = "../testdata/gear_golden.json"

// testBuf builds a deterministic pseudo-random buffer from its own
// xorshift64* stream — not math/rand, so the golden vectors cannot move
// with a Go release.
func testBuf(seed uint64, n int) []byte {
	buf := make([]byte, n)
	x := seed
	for i := range buf {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		buf[i] = byte((x * 0x2545F4914F6CDD1D) >> 56)
	}
	return buf
}

// cutsWith replicates Chunker.Cuts with an explicit scan function, so
// both implementations can be driven through the full chunking loop.
func cutsWith(fn func([]byte, int, uint64) int, c *Chunker, buf []byte) []int {
	if len(buf) == 0 {
		return nil
	}
	var out []int
	off := 0
	for off < len(buf) {
		rest := buf[off:]
		n := len(rest)
		if n > c.Min {
			limit := n
			if limit > c.Max {
				limit = c.Max
			}
			n = fn(rest[:limit], c.Min, c.mask)
		}
		off += n
		out = append(out, off)
	}
	return out
}

func TestNewBounds(t *testing.T) {
	cases := []struct {
		avg, wantMin, wantAvg, wantMax int
	}{
		{4096, 1024, 4096, 16384},
		{4000, 1024, 4096, 16384}, // rounds up, bounds derive from rounded
		{256, 64, 256, 1024},
		{100, 64, 128, 512}, // Min clamped to the 64-byte window
		{0, 1024, 4096, 16384},
	}
	for _, tc := range cases {
		c := New(tc.avg)
		if c.Min != tc.wantMin || c.Avg != tc.wantAvg || c.Max != tc.wantMax {
			t.Errorf("New(%d) = min/avg/max %d/%d/%d, want %d/%d/%d",
				tc.avg, c.Min, c.Avg, c.Max, tc.wantMin, tc.wantAvg, tc.wantMax)
		}
	}
}

func TestImplSelected(t *testing.T) {
	if Impl() == "" {
		t.Fatal("no scan implementation selected at init")
	}
	t.Logf("gear scan implementation: %s", Impl())
}

func TestCutsInvariants(t *testing.T) {
	c := New(256)
	buf := testBuf(1, 64*1024+37)
	cuts := c.Cuts(buf)
	if len(cuts) == 0 || cuts[len(cuts)-1] != len(buf) {
		t.Fatalf("cuts do not tile the buffer: %v", cuts)
	}
	prev := 0
	for i, end := range cuts {
		size := end - prev
		if end <= prev {
			t.Fatalf("cut %d not ascending: %d after %d", i, end, prev)
		}
		if size > c.Max {
			t.Fatalf("chunk %d of %d bytes exceeds Max %d", i, size, c.Max)
		}
		if i < len(cuts)-1 && size <= c.Min {
			t.Fatalf("non-final chunk %d of %d bytes not above Min %d", i, size, c.Min)
		}
		prev = end
	}
	if got := c.Cuts(nil); got != nil {
		t.Fatalf("empty buffer produced cuts %v", got)
	}
	if got := c.Cuts(buf[:c.Min]); len(got) != 1 || got[0] != c.Min {
		t.Fatalf("sub-Min buffer cuts = %v, want [%d]", got, c.Min)
	}
}

// TestUnrolledMatchesGeneric pins the tentpole's core contract: the
// 8-way unrolled scan and the reference loop return identical cut points
// on identical input, across sizes that exercise the prime loop, the
// unrolled body and the tail.
func TestUnrolledMatchesGeneric(t *testing.T) {
	for _, avg := range []int{256, 1024, 4096} {
		c := New(avg)
		for seed := uint64(1); seed <= 20; seed++ {
			n := int(seed)*977 + c.Min - 3 // straddles Min, odd tails
			buf := testBuf(seed, n)
			g := cutsWith(cutGeneric, c, buf)
			u := cutsWith(cutUnrolled, c, buf)
			if len(g) != len(u) {
				t.Fatalf("avg=%d seed=%d: %d generic cuts vs %d unrolled", avg, seed, len(g), len(u))
			}
			for i := range g {
				if g[i] != u[i] {
					t.Fatalf("avg=%d seed=%d: cut %d differs: generic %d, unrolled %d", avg, seed, i, g[i], u[i])
				}
			}
		}
	}
}

// TestDeterminism re-runs the full chunk+fingerprint pipeline 100 times:
// boundaries and fingerprints are collective decision state and must be
// bit-identical on every run.
func TestDeterminism(t *testing.T) {
	c := New(512)
	buf := testBuf(42, 48*1024)
	ref := c.Split(buf)
	for run := 0; run < 100; run++ {
		got := New(512).Split(buf)
		if len(got) != len(ref) {
			t.Fatalf("run %d: %d chunks, want %d", run, len(got), len(ref))
		}
		for i := range ref {
			if got[i].FP != ref[i].FP || !bytes.Equal(got[i].Data, ref[i].Data) {
				t.Fatalf("run %d: chunk %d differs", run, i)
			}
		}
	}
}

func TestSplitMatchesCutsPlusFromCuts(t *testing.T) {
	c := New(256)
	buf := testBuf(7, 20*1024)
	want := chunk.FromCuts(buf, c.Cuts(buf))
	got := c.Split(buf)
	if len(got) != len(want) {
		t.Fatalf("%d chunks via Split, %d via Cuts+FromCuts", len(got), len(want))
	}
	for i := range want {
		if got[i].FP != want[i].FP {
			t.Fatalf("chunk %d differs", i)
		}
	}
}

func TestShiftResistance(t *testing.T) {
	base := testBuf(99, 64*1024)
	shifted := append([]byte("INSERTED PREFIX!"), base...)
	c := New(1024)
	fps := make(map[fingerprint.FP]bool)
	for _, ch := range c.Split(base) {
		fps[ch.FP] = true
	}
	var common, total int
	for _, ch := range c.Split(shifted) {
		total++
		if fps[ch.FP] {
			common++
		}
	}
	if common*2 < total {
		t.Fatalf("only %d/%d chunks survived a prefix shift; gear CDC is not shift resistant", common, total)
	}
}

func TestRegisteredWithSpec(t *testing.T) {
	cc, err := chunk.New(chunk.Spec{Algo: chunk.AlgoGear, Size: 256})
	if err != nil {
		t.Fatal(err)
	}
	g, ok := cc.(*Chunker)
	if !ok {
		t.Fatalf("spec constructor returned %T, want *gear.Chunker", cc)
	}
	if g.Avg != 256 {
		t.Fatalf("spec size not honored: Avg = %d", g.Avg)
	}
}

// goldenCase is one golden cut-point vector: a deterministic buffer
// (regenerable from Seed/Len) and the boundaries the reference
// implementation produced when the vector was recorded. Any drift — a
// table change, a mask change, a scan bug on one architecture — breaks
// cross-version restores, so the vectors are committed and checked
// against BOTH implementations.
type goldenCase struct {
	Name string `json:"name"`
	Avg  int    `json:"avg"`
	Seed uint64 `json:"seed"`
	Len  int    `json:"len"`
	Cuts []int  `json:"cuts"`
}

func goldenInputs() []goldenCase {
	return []goldenCase{
		{Name: "small-256", Avg: 256, Seed: 11, Len: 8 * 1024},
		{Name: "medium-1k", Avg: 1024, Seed: 12, Len: 64 * 1024},
		{Name: "large-4k", Avg: 4096, Seed: 13, Len: 256 * 1024},
		{Name: "sub-min", Avg: 4096, Seed: 14, Len: 700},
		{Name: "zeros", Avg: 256, Seed: 0, Len: 16 * 1024}, // seed 0 xorshift degenerates to all-zero bytes
	}
}

func TestGoldenCuts(t *testing.T) {
	if *update {
		cases := goldenInputs()
		for i := range cases {
			buf := testBuf(cases[i].Seed, cases[i].Len)
			cases[i].Cuts = cutsWith(cutGeneric, New(cases[i].Avg), buf)
		}
		data, err := json.MarshalIndent(cases, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden vectors (regenerate with -update): %v", err)
	}
	var cases []goldenCase
	if err := json.Unmarshal(data, &cases); err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("golden file holds no cases")
	}
	for _, tc := range cases {
		buf := testBuf(tc.Seed, tc.Len)
		for _, impl := range []struct {
			name string
			fn   func([]byte, int, uint64) int
		}{{"generic", cutGeneric}, {"unrolled", cutUnrolled}} {
			got := cutsWith(impl.fn, New(tc.Avg), buf)
			if len(got) != len(tc.Cuts) {
				t.Fatalf("%s/%s: %d cuts, want %d", tc.Name, impl.name, len(got), len(tc.Cuts))
			}
			for i := range got {
				if got[i] != tc.Cuts[i] {
					t.Fatalf("%s/%s: cut %d = %d, want %d", tc.Name, impl.name, i, got[i], tc.Cuts[i])
				}
			}
		}
	}
}
