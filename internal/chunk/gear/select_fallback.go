//go:build purego || (!amd64 && !arm64)

package gear

// Generic fallback: architectures without a benchmarked fast path, and
// every architecture under the purego build tag (CI forces it on amd64
// so the fallback stays boundary-identical to the selected path).
func init() {
	cut = cutGeneric
	implName = "generic"
}
