package gear

import (
	"bytes"
	"testing"
)

// FuzzGearChunker is the differential fuzzer of the tentpole: on every
// input, the unrolled fast path and the generic reference must return
// identical cut points (the boundary-identity contract that lets ranks
// on different architectures agree on chunk boundaries), and the cuts
// must satisfy the structural invariants — strictly ascending, tiling
// the buffer, bounded by Min/Max — plus split-stability: re-chunking the
// suffix after any cut reproduces the remaining cuts.
func FuzzGearChunker(f *testing.F) {
	f.Add([]byte("hello, collective dump"), byte(0))
	f.Add(bytes.Repeat([]byte("abcdef0123456789"), 64), byte(1))
	f.Add(make([]byte, 4096), byte(2))
	f.Add([]byte{}, byte(3))
	f.Fuzz(func(t *testing.T, data []byte, avgSel byte) {
		avgs := []int{64, 128, 256, 1024}
		c := New(avgs[int(avgSel)%len(avgs)])

		cuts := cutsWith(cutGeneric, c, data)
		fast := cutsWith(cutUnrolled, c, data)
		if len(cuts) != len(fast) {
			t.Fatalf("generic %d cuts, unrolled %d", len(cuts), len(fast))
		}
		for i := range cuts {
			if cuts[i] != fast[i] {
				t.Fatalf("cut %d: generic %d, unrolled %d", i, cuts[i], fast[i])
			}
		}

		if len(data) == 0 {
			if len(cuts) != 0 {
				t.Fatalf("empty buffer produced %d cuts", len(cuts))
			}
			return
		}
		prev := 0
		for i, end := range cuts {
			if end <= prev {
				t.Fatalf("cut %d not ascending: %d after %d", i, end, prev)
			}
			size := end - prev
			if size > c.Max {
				t.Fatalf("chunk %d of %d bytes exceeds Max %d", i, size, c.Max)
			}
			if i < len(cuts)-1 && size <= c.Min {
				t.Fatalf("non-final chunk %d of %d bytes not above Min %d", i, size, c.Min)
			}
			prev = end
		}
		if cuts[len(cuts)-1] != len(data) {
			t.Fatalf("last cut %d != len %d", cuts[len(cuts)-1], len(data))
		}

		// Split-stability at the first and middle cut.
		for _, i := range []int{0, len(cuts) / 2} {
			if i >= len(cuts)-1 {
				continue
			}
			base := cuts[i]
			suffix := c.Cuts(data[base:])
			rest := cuts[i+1:]
			if len(suffix) != len(rest) {
				t.Fatalf("suffix after cut %d: %d cuts, want %d", i, len(suffix), len(rest))
			}
			for j := range rest {
				if suffix[j] != rest[j]-base {
					t.Fatalf("suffix cut %d = %d, want %d", j, suffix[j], rest[j]-base)
				}
			}
		}

		// The selected implementation (whatever this build picked) agrees
		// with the reference through the public entry point.
		pub := c.Cuts(data)
		if len(pub) != len(cuts) {
			t.Fatalf("Cuts %d cuts, reference %d", len(pub), len(cuts))
		}
		for i := range pub {
			if pub[i] != cuts[i] {
				t.Fatalf("Cuts[%d] = %d, reference %d", i, pub[i], cuts[i])
			}
		}
	})
}
