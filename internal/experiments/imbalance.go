package experiments

import (
	"fmt"
	"sync"

	"dedupcr/internal/collectives"
	"dedupcr/internal/core"
	"dedupcr/internal/metrics"
	"dedupcr/internal/obs"
	"dedupcr/internal/storage"
	"dedupcr/internal/telemetry"
	"dedupcr/internal/trace"
)

// Imbalance exercises the cluster telemetry plane on a live multi-rank
// run: for each approach it checkpoints the HPCCG workload, gathers
// every rank's metrics to rank 0 in-band (telemetry.GatherCluster over
// the group's own collectives) and reports the cluster-level view — the
// designation- and send-load-imbalance coefficients the paper's
// load-balanced designation targets, the cross-rank put spread and any
// flagged stragglers.
func Imbalance(cfg Config) (*Table, error) {
	w := HPCCG()
	n := 32
	if cfg.Quick {
		n = 8
	}
	const k = 3

	tab := &Table{
		ID:    "imbalance",
		Title: "Cluster telemetry: load imbalance and phase spread across ranks",
		Header: []string{"approach", "desig imb", "send imb", "put median",
			"put max", "slowest", "clock spread", "stragglers"},
		Notes: []string{
			fmt.Sprintf("HPCCG N=%d K=%d; imbalance = max/mean over ranks (1.0 = perfectly balanced)", n, k),
			"coll-dedup's load-balanced designation should show the lowest send imbalance",
			fmt.Sprintf("stragglers: phase > %.1fx cluster median with >= %s excess",
				telemetry.DefaultStragglerFactor, telemetry.DefaultMinExcess),
		},
	}
	for _, approach := range []core.Approach{core.NoDedup, core.LocalDedup, core.CollDedup} {
		cd, ranks, err := runClusterScenario(cfg, w, n, k, approach)
		if err != nil {
			return nil, err
		}
		if cfg.OnCluster != nil {
			cfg.OnCluster(fmt.Sprintf("imbalance/%s", approach), cd, ranks)
		}
		put := cd.Phase("put")
		tab.Rows = append(tab.Rows, []string{
			approach.String(),
			fmt.Sprintf("%.3f", cd.DesignationImbalance),
			fmt.Sprintf("%.3f", cd.SendImbalance),
			metrics.Duration(put.Median),
			metrics.Duration(put.Max),
			fmt.Sprintf("rank %d", put.SlowestRank),
			metrics.Duration(cd.ClockSpread),
			fmt.Sprint(len(cd.Stragglers)),
		})
	}
	return tab, nil
}

// runClusterScenario runs one traced, checkpointed workload and returns
// rank 0's in-band ClusterDump plus the per-rank trace slices (for the
// merged cross-rank trace). It always records spans — into cfg.Trace
// when set, else into a private trace — so the merged trace is available
// regardless of the -trace flag.
func runClusterScenario(cfg Config, w Workload, n, k int, approach core.Approach) (*telemetry.ClusterDump, []telemetry.RankTrace, error) {
	tr := cfg.Trace
	if tr == nil {
		tr = trace.New()
	}
	pid := tr.NextPid()
	label := fmt.Sprintf("imbalance %s N=%d K=%d %v", w.Name, n, k, approach)
	tr.NamePid(pid, label)
	if cfg.Verbose {
		obs.Logger().Info("[experiments] " + label)
	}

	cluster := storage.NewCluster(n)
	var cd *telemetry.ClusterDump
	var mu sync.Mutex
	err := collectives.Run(n, func(c collectives.Comm) error {
		rank := c.Rank()
		rec := tr.Recorder(pid, rank, fmt.Sprintf("rank %d", rank))
		app := w.New(rank, n)
		sp := rec.Begin("compute").Arg("steps", fmt.Sprint(w.StepsPerPhase))
		for s := 0; s < w.StepsPerPhase; s++ {
			app.Step()
		}
		sp.End()
		o := core.Options{
			K: k, Approach: approach, F: w.F, ChunkSize: w.ChunkSize,
			Name: fmt.Sprintf("%s-imb", w.Name), Trace: rec,
			Parallelism: cfg.Parallelism,
		}
		res, err := core.DumpOutput(c, cluster.Node(rank), app.CheckpointImage(), o)
		if err != nil {
			return err
		}
		got, err := telemetry.GatherCluster(c, res.Metrics, telemetry.Options{})
		if err != nil {
			return err
		}
		if rank == 0 {
			mu.Lock()
			cd = got
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("cluster scenario %s: %w", label, err)
	}

	// Slice this scenario's spans out of the (possibly shared) trace by
	// the pid reserved above; the tid of each span is its rank.
	var evs []trace.Event
	for _, e := range tr.Events() {
		if e.Pid == pid {
			evs = append(evs, e)
		}
	}
	return cd, telemetry.SplitByTid(evs), nil
}
