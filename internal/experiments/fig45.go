package experiments

import (
	"fmt"

	"dedupcr/internal/core"
	"dedupcr/internal/metrics"
)

// scaleN returns the experiment's process count: the paper's 408 (the
// full 34-node reservation) or a CI-friendly size in quick mode.
func scaleN(cfg Config) int {
	if cfg.Quick {
		return 16
	}
	return 408
}

// kRange returns the replication factors swept by Figures 4 and 5.
func kRange(cfg Config, from int) []int {
	ks := []int{1, 2, 3, 4, 5, 6}
	if cfg.Quick {
		ks = []int{1, 2, 3, 4}
	}
	out := ks[:0]
	for _, k := range ks {
		if k >= from {
			out = append(out, k)
		}
	}
	return out
}

// figTimeVsK renders Figure 4(a)/5(a): increase in execution time over
// the baseline for replication factors 1..6 under the three approaches.
func figTimeVsK(id string, w Workload, cfg Config) (*Table, error) {
	n := scaleN(cfg)
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("%s: increase in execution time vs replication factor, %d processes (baseline %.0fs)", w.Name, n, w.BaselineAt(n)),
		Header: []string{"replication factor", "no-dedup", "local-dedup", "coll-dedup"},
		Notes: []string{
			"paper: no-dedup degrades 3x (HPCCG) to 5x (CM1) from K=1 to K=6; coll-dedup stays nearly flat",
			"paper: at K=6, coll-dedup beats even a K=2 run of the other approaches",
		},
	}
	for _, k := range kRange(cfg, 1) {
		row := []string{fmt.Sprintf("%d", k)}
		for _, ap := range []core.Approach{core.NoDedup, core.LocalDedup, core.CollDedup} {
			res, err := RunScenario(cfg, w, n, k, ap, ap == core.CollDedup)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0fs", res.CheckpointTime()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// figSendVsK renders Figure 4(b)/5(b): average and maximal replicated
// data per process for replication factors 1..6.
func figSendVsK(id string, w Workload, cfg Config) (*Table, error) {
	n := scaleN(cfg)
	t := &Table{
		ID:    id,
		Title: fmt.Sprintf("%s: amount of replicated data per process, %d processes", w.Name, n),
		Header: []string{"replication factor",
			"no-dedup avg", "no-dedup max",
			"local avg", "local max",
			"coll avg", "coll max"},
		Notes: []string{
			"paper: coll-dedup's avg-to-max gap grows with K (load imbalance); for CM1 the coll max stays below the local avg",
		},
	}
	for _, k := range kRange(cfg, 1) {
		row := []string{fmt.Sprintf("%d", k)}
		for _, ap := range []core.Approach{core.NoDedup, core.LocalDedup, core.CollDedup} {
			res, err := RunScenario(cfg, w, n, k, ap, ap == core.CollDedup)
			if err != nil {
				return nil, err
			}
			sent := res.SentBytesPerRank()
			row = append(row,
				metrics.Bytes(int64(metrics.Avg(sent))),
				metrics.Bytes(metrics.Max(sent)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// figShuffle renders Figure 4(c)/5(c): maximal receive size of coll-dedup
// with and without rank shuffling, for replication factors 2..6.
func figShuffle(id string, w Workload, cfg Config) (*Table, error) {
	n := scaleN(cfg)
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("%s: impact of rank shuffling on maximal receive size, %d processes", w.Name, n),
		Header: []string{"replication factor", "coll-no-shuffle max", "coll-shuffle max", "reduction"},
		Notes: []string{
			"paper: no difference at K=2; ~8% (HPCCG) and up to ~30% (CM1) lower max receive size for K>=3",
			"average receive size equals average send size and is identical for both settings",
		},
	}
	for _, k := range kRange(cfg, 2) {
		var maxRecv [2]int64
		for i, shuffle := range []bool{false, true} {
			res, err := RunScenario(cfg, w, n, k, core.CollDedup, shuffle)
			if err != nil {
				return nil, err
			}
			maxRecv[i] = metrics.Max(res.RecvBytesPerRank())
		}
		red := "0.0%"
		if maxRecv[0] > 0 {
			red = fmt.Sprintf("%.1f%%", 100*float64(maxRecv[0]-maxRecv[1])/float64(maxRecv[0]))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			metrics.Bytes(maxRecv[0]),
			metrics.Bytes(maxRecv[1]),
			red,
		})
	}
	return t, nil
}

// Fig4a reproduces Figure 4(a) for HPCCG.
func Fig4a(cfg Config) (*Table, error) { return figTimeVsK("fig4a", HPCCG(), cfg) }

// Fig4b reproduces Figure 4(b) for HPCCG.
func Fig4b(cfg Config) (*Table, error) { return figSendVsK("fig4b", HPCCG(), cfg) }

// Fig4c reproduces Figure 4(c) for HPCCG.
func Fig4c(cfg Config) (*Table, error) { return figShuffle("fig4c", HPCCG(), cfg) }

// Fig5a reproduces Figure 5(a) for CM1.
func Fig5a(cfg Config) (*Table, error) { return figTimeVsK("fig5a", CM1(), cfg) }

// Fig5b reproduces Figure 5(b) for CM1.
func Fig5b(cfg Config) (*Table, error) { return figSendVsK("fig5b", CM1(), cfg) }

// Fig5c reproduces Figure 5(c) for CM1.
func Fig5c(cfg Config) (*Table, error) { return figShuffle("fig5c", CM1(), cfg) }
