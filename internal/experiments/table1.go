package experiments

import (
	"fmt"

	"dedupcr/internal/core"
)

// Table1 reproduces Table I: completion time of full application runs
// with a replication factor of 3 under the three approaches, against the
// no-checkpoint baseline, for the paper's process counts.
func Table1(cfg Config) (*Table, error) {
	type block struct {
		w  Workload
		ns []int
	}
	blocks := []block{
		{HPCCG(), []int{1, 64, 196, 408}},
		{CM1(), []int{12, 120, 264, 408}},
	}
	if cfg.Quick {
		blocks = []block{
			{HPCCG(), []int{1, 8, 16}},
			{CM1(), []int{4, 8, 16}},
		}
	}
	t := &Table{
		ID:     "table1",
		Title:  "Completion time using a replication factor of 3 (baseline = no checkpointing)",
		Header: []string{"workload", "# of processes", "no-dedup", "local-dedup", "coll-dedup", "baseline"},
		Notes: []string{
			"paper at 408: HPCCG 1188s / 547s / 375s / 279s; CM1 1687s / 828s / 558s / 382s",
			"expected shape: coll-dedup 2.5-2.8x faster than local-dedup, 7.4-9.8x faster than no-dedup (overheads over baseline)",
			"baseline times are the paper's measurements, used as the application-duration parameter",
		},
	}
	for _, bl := range blocks {
		for _, n := range bl.ns {
			k := 3
			if k > n {
				k = n
			}
			row := []string{bl.w.Name, fmt.Sprintf("%d", n)}
			for _, ap := range []core.Approach{core.NoDedup, core.LocalDedup, core.CollDedup} {
				res, err := RunScenario(cfg, bl.w, n, k, ap, ap == core.CollDedup)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.0fs", res.CompletionTime()))
			}
			row = append(row, fmt.Sprintf("%.0fs", bl.w.BaselineAt(n)))
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}
