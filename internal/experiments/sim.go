package experiments

import (
	"context"
	"fmt"
	"sync"

	"dedupcr/internal/apps/cm1"
	"dedupcr/internal/apps/hpccg"
	"dedupcr/internal/chunk"
	"dedupcr/internal/collectives"
	"dedupcr/internal/core"
	"dedupcr/internal/metrics"
	"dedupcr/internal/netsim"
	"dedupcr/internal/obs"
	"dedupcr/internal/storage"
	"dedupcr/internal/trace"
)

// stepper is the slice of an application the harness drives: advance and
// serialize.
type stepper interface {
	Step() float64
	CheckpointImage() []byte
}

// Workload describes one of the paper's two applications in scaled form.
type Workload struct {
	Name string
	// New builds one rank's application instance.
	New func(rank, nprocs int) stepper
	// StepsPerPhase is how many solver steps run before each checkpoint
	// (scaled from the paper's iteration counts; the checkpoint image's
	// redundancy is stationary after a few steps).
	StepsPerPhase int
	// Checkpoints is how many collective dumps one run takes (paper:
	// HPCCG one at iteration 100 of 127, CM1 one every 30 of 70 steps).
	Checkpoints int
	// ChunkSize is the scaled page size (see the app packages on why
	// pages scale with the sub-block).
	ChunkSize int
	// F is the scaled fingerprint threshold (paper: 2^17; scaled to keep
	// F / pages-per-rank at the paper's ratio ≈ 1/3).
	F int
	// Scale maps scaled bytes back to testbed bytes for netsim (paper
	// dataset size / mini-app dataset size).
	Scale float64
	// Baseline is the paper-reported completion time without
	// checkpointing, by process count; other counts are interpolated.
	// It parameterizes the application's compute duration, which our
	// model does not predict — the paper's claims are about the
	// checkpointing overhead on top of it.
	Baseline map[int]float64
}

// HPCCG is the paper's first workload: 150³ sub-blocks (~1.5 GB/rank),
// checkpoint at iteration 100 of 127, scaled to 16³ (~1.3 MB/rank).
func HPCCG() Workload {
	return Workload{
		Name: "HPCCG",
		New: func(rank, nprocs int) stepper {
			return hpccg.New(rank, nprocs, hpccg.Config{NX: 16, NY: 16, NZ: 16})
		},
		StepsPerPhase: 8,
		Checkpoints:   1,
		ChunkSize:     256,
		F:             1 << 11,
		Scale:         1170, // 1.5 GB / ~1.31 MB
		Baseline: map[int]float64{
			1: 82, 64: 152, 196: 186, 408: 279,
		},
	}
}

// CM1 is the paper's second workload: 200×200 columns (~800 MB/rank,
// checkpoint every 30 of 70 steps), scaled to 192×192 cells (~1.2 MB).
func CM1() Workload {
	return Workload{
		Name: "CM1",
		New: func(rank, nprocs int) stepper {
			return cm1.New(rank, nprocs, cm1.Config{NX: 192, NY: 192})
		},
		StepsPerPhase: 6,
		Checkpoints:   2,
		ChunkSize:     256,
		F:             1 << 11,
		Scale:         678, // 800 MB / ~1.18 MB
		Baseline: map[int]float64{
			12: 178, 120: 259, 264: 366, 408: 382,
		},
	}
}

// BaselineAt interpolates the no-checkpoint completion time at n ranks.
func (w Workload) BaselineAt(n int) float64 {
	if v, ok := w.Baseline[n]; ok {
		return v
	}
	var xs []int
	for k := range w.Baseline {
		xs = append(xs, k)
	}
	// Piecewise-linear in n over the sorted calibration points,
	// extrapolating flat at the ends.
	sortInts(xs)
	if n <= xs[0] {
		return w.Baseline[xs[0]]
	}
	for i := 1; i < len(xs); i++ {
		if n <= xs[i] {
			x0, x1 := xs[i-1], xs[i]
			y0, y1 := w.Baseline[x0], w.Baseline[x1]
			t := float64(n-x0) / float64(x1-x0)
			return y0 + t*(y1-y0)
		}
	}
	return w.Baseline[xs[len(xs)-1]]
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// ScenarioResult collects everything one simulated run produces.
type ScenarioResult struct {
	Workload Workload
	N, K     int
	Approach core.Approach
	Shuffle  bool
	// Dumps[c][r] is rank r's metrics for checkpoint c.
	Dumps [][]metrics.Dump
	// Plans[c] is the (rank-identical) plan of checkpoint c.
	Plans []*core.Plan
	// Model is the calibrated performance model (Scale applied).
	Model netsim.Model
}

// scenarioCache memoizes completed scenarios: several figures slice the
// same runs differently (e.g. Figure 4(a) and 4(b) both sweep K for all
// approaches), so each (workload, N, K, approach, shuffle) combination is
// simulated once per process.
var scenarioCache sync.Map

// RunScenario executes a full application run with checkpointing: N ranks
// step the workload, dump at each phase boundary, and report measured
// metrics. Results are memoized per parameter combination — unless the
// config carries a trace, in which case the scenario always runs live
// (cached results have no spans) and the result stays out of the cache.
func RunScenario(cfg Config, w Workload, n, k int, approach core.Approach, shuffle bool) (*ScenarioResult, error) {
	if cfg.Trace != nil {
		return runScenarioUncached(cfg, w, n, k, approach, shuffle)
	}
	key := fmt.Sprintf("%s/%d/%d/%d/%t/p%d/%s", w.Name, n, k, approach, shuffle, cfg.Parallelism, cfg.Chunker)
	if v, ok := scenarioCache.Load(key); ok {
		return v.(*ScenarioResult), nil
	}
	res, err := runScenarioUncached(cfg, w, n, k, approach, shuffle)
	if err != nil {
		return nil, err
	}
	scenarioCache.Store(key, res)
	return res, nil
}

func runScenarioUncached(cfg Config, w Workload, n, k int, approach core.Approach, shuffle bool) (*ScenarioResult, error) {
	if cfg.Verbose {
		obs.Logger().Info(fmt.Sprintf("[experiments] %s N=%d K=%d %v shuffle=%v", w.Name, n, k, approach, shuffle))
	}
	// One trace process per scenario, one thread per rank.
	var recs []*trace.Recorder
	if cfg.Trace != nil {
		pid := cfg.Trace.NextPid()
		cfg.Trace.NamePid(pid, fmt.Sprintf("%s N=%d K=%d %v shuffle=%v", w.Name, n, k, approach, shuffle))
		recs = make([]*trace.Recorder, n)
		for r := range recs {
			recs[r] = cfg.Trace.Recorder(pid, r, fmt.Sprintf("rank %d", r))
		}
	}
	cluster := storage.NewCluster(n)
	res := &ScenarioResult{
		Workload: w, N: n, K: k, Approach: approach, Shuffle: shuffle,
		Dumps: make([][]metrics.Dump, w.Checkpoints),
		Plans: make([]*core.Plan, w.Checkpoints),
	}
	for c := range res.Dumps {
		res.Dumps[c] = make([]metrics.Dump, n)
	}
	// A configured timeout turns a wedged scenario into a prompt
	// collective abort on every rank. The scenario runner is the root of
	// the call tree, so the background context originates here by design.
	//dedupvet:compat
	ctx := context.Background()
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	var mu sync.Mutex
	err := collectives.RunCtx(ctx, n, func(ctx context.Context, c collectives.Comm) error {
		var rec *trace.Recorder
		if recs != nil {
			rec = recs[c.Rank()]
		}
		app := w.New(c.Rank(), n)
		for ck := 0; ck < w.Checkpoints; ck++ {
			sp := rec.Begin("compute").Arg("steps", fmt.Sprint(w.StepsPerPhase))
			for s := 0; s < w.StepsPerPhase; s++ {
				app.Step()
			}
			sp.End()
			o := core.Options{
				K:           k,
				Approach:    approach,
				F:           w.F,
				Chunker:     chunk.Spec{Algo: cfg.Chunker, Size: w.ChunkSize},
				Shuffle:     core.Bool(shuffle),
				Name:        fmt.Sprintf("%s-ck%d", w.Name, ck),
				Trace:       rec,
				Parallelism: cfg.Parallelism,
			}
			r, err := core.DumpOutputCtx(ctx, c, cluster.Node(c.Rank()), app.CheckpointImage(), o)
			if err != nil {
				return err
			}
			mu.Lock()
			res.Dumps[ck][c.Rank()] = r.Metrics
			res.Plans[ck] = r.Plan
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s N=%d K=%d %v: %w", w.Name, n, k, approach, err)
	}
	res.Model = netsim.Shamrock()
	res.Model.Scale = w.Scale
	return res, nil
}

// CheckpointTime returns the simulated duration of all checkpoints of the
// run combined (what a full application run pays on top of the baseline).
func (r *ScenarioResult) CheckpointTime() float64 {
	var total float64
	for _, dumps := range r.Dumps {
		total += r.Model.DumpTime(dumps).Total()
	}
	return total
}

// CompletionTime returns baseline + checkpointing cost (Table I).
func (r *ScenarioResult) CompletionTime() float64 {
	return r.Workload.BaselineAt(r.N) + r.CheckpointTime()
}

// ReduceOverhead returns the simulated collective-hash-reduction overhead
// of the last checkpoint (Figure 3b/c).
func (r *ScenarioResult) ReduceOverhead() float64 {
	return r.Model.ReduceOverhead(r.Dumps[len(r.Dumps)-1])
}

// UniqueContentBytes sums the identified-unique-content metric over ranks
// and checkpoints, scaled to testbed bytes (Figure 3a).
func (r *ScenarioResult) UniqueContentBytes() int64 {
	var sum int64
	for _, dumps := range r.Dumps {
		for _, d := range dumps {
			sum += d.UniqueContentBytes
		}
	}
	return int64(float64(sum) * r.Workload.Scale)
}

// lastDumps returns the final checkpoint's per-rank metrics.
func (r *ScenarioResult) lastDumps() []metrics.Dump {
	return r.Dumps[len(r.Dumps)-1]
}

// SentBytesPerRank returns scaled per-rank replication send sizes of the
// final checkpoint (Figure 4b/5b).
func (r *ScenarioResult) SentBytesPerRank() []int64 {
	dumps := r.lastDumps()
	out := make([]int64, len(dumps))
	for i, d := range dumps {
		out[i] = int64(float64(d.SentBytes) * r.Workload.Scale)
	}
	return out
}

// RecvBytesPerRank returns scaled per-rank receive sizes of the final
// checkpoint (Figure 4c/5c).
func (r *ScenarioResult) RecvBytesPerRank() []int64 {
	dumps := r.lastDumps()
	out := make([]int64, len(dumps))
	for i, d := range dumps {
		out[i] = int64(float64(d.RecvBytes) * r.Workload.Scale)
	}
	return out
}
