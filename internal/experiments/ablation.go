package experiments

import (
	"bytes"
	"fmt"
	"sync"

	"dedupcr/internal/collectives"
	"dedupcr/internal/core"
	"dedupcr/internal/hybrid"
	"dedupcr/internal/metrics"
	"dedupcr/internal/netsim"
	"dedupcr/internal/storage"
)

// The ablation experiments go beyond the paper: they quantify the design
// choices DESIGN.md calls out (shuffle strategy, restore recovery cost,
// and the future-work dedup+erasure hybrid).

// AblationShuffle compares three partner-selection strategies on the same
// measured SendLoad matrices: none (identity order), the literal
// Algorithm 2 head/tail emission, and the default tier-striped
// interleave.
func AblationShuffle(cfg Config) (*Table, error) {
	n := scaleN(cfg)
	t := &Table{
		ID:     "ablation-shuffle",
		Title:  fmt.Sprintf("Shuffle strategies: maximal receive size, CM1, %d processes", n),
		Header: []string{"replication factor", "identity", "head-tail (Alg. 2)", "tier-striped"},
		Notes: []string{
			"same per-partner load matrices, three permutations; lower max receive = better balance",
			"head/tail degrades when heavy senders outnumber light ones (see DESIGN.md §5)",
		},
	}
	for _, k := range kRange(cfg, 3) {
		// One measured scenario provides the loads; strategies are then
		// evaluated offline on the identical matrix.
		res, err := RunScenario(cfg, CM1(), n, k, core.CollDedup, false)
		if err != nil {
			return nil, err
		}
		plan := res.Plans[len(res.Plans)-1]
		totals := make([]int64, n)
		for r := 0; r < n; r++ {
			totals[r] = plan.TotalSend(r)
		}
		row := []string{fmt.Sprintf("%d", k)}
		for _, shuffle := range [][]int{
			core.IdentityShuffle(n),
			core.RankShuffleHeadTail(totals, k),
			core.RankShuffle(totals, k),
		} {
			p, err := core.NewPlan(shuffle, plan.SendLoad, k)
			if err != nil {
				return nil, err
			}
			maxRecv := int64(float64(metrics.Max(p.RecvBytesByRank())) * res.Workload.Scale)
			row = append(row, metrics.Bytes(maxRecv))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationRestore measures the recovery cost of a collective restore as
// nodes fail: surviving data is read from local disks, lost chunks travel
// over the network.
func AblationRestore(cfg Config) (*Table, error) {
	n := 24
	if cfg.Quick {
		n = 8
	}
	const k = 3
	w := HPCCG()
	t := &Table{
		ID:     "ablation-restore",
		Title:  fmt.Sprintf("Restore cost vs node failures, HPCCG, %d processes, K=%d", n, k),
		Header: []string{"failed nodes", "network bytes (total)", "network bytes (max rank)", "simulated restore time"},
		Notes: []string{
			"failed nodes are replaced with blank storage before the restore",
			"K-1 failures are the design limit; every restore is verified byte-exact",
			"even the failure-free restore moves data: coll-dedup trades restore locality for dump speed, since deduplicated chunks live on their designated nodes",
		},
	}
	for failures := 0; failures < k; failures++ {
		cluster := storage.NewCluster(n)
		buffers := make([][]byte, n)
		var mu sync.Mutex
		err := collectives.Run(n, func(c collectives.Comm) error {
			app := w.New(c.Rank(), n)
			for s := 0; s < w.StepsPerPhase; s++ {
				app.Step()
			}
			buf := app.CheckpointImage()
			o := core.Options{K: k, Approach: core.CollDedup, F: w.F,
				ChunkSize: w.ChunkSize, Name: "abl"}
			if _, err := core.DumpOutput(c, cluster.Node(c.Rank()), buf, o); err != nil {
				return err
			}
			mu.Lock()
			buffers[c.Rank()] = buf
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		for f := 0; f < failures; f++ {
			victim := 1 + f*(n/k)
			cluster.FailNodes(victim)
			cluster.Replace(victim)
		}
		recvBytes := make([]int64, n)
		readBytes := make([]int64, n)
		err = collectives.Run(n, func(c collectives.Comm) error {
			pre := c.Stats()
			got, err := core.Restore(c, cluster.Node(c.Rank()), "abl")
			if err != nil {
				return err
			}
			if !bytes.Equal(got, buffers[c.Rank()]) {
				return fmt.Errorf("rank %d corrupt restore", c.Rank())
			}
			mu.Lock()
			recvBytes[c.Rank()] = c.Stats().BytesRecv - pre.BytesRecv
			readBytes[c.Rank()] = int64(len(got))
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		model := netsim.Shamrock()
		model.Scale = w.Scale
		simTime := model.RestoreTime(readBytes, recvBytes, n)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", failures),
			metrics.Bytes(int64(float64(metrics.Sum(recvBytes)) * w.Scale)),
			metrics.Bytes(int64(float64(metrics.Max(recvBytes)) * w.Scale)),
			fmt.Sprintf("%.1fs", simTime),
		})
	}
	return t, nil
}

// AblationPFS contrasts the architectures of the paper's introduction:
// dumping to the decoupled parallel file system versus coll-dedup onto
// node-local storage, at the full 408-process scale.
func AblationPFS(cfg Config) (*Table, error) {
	n := scaleN(cfg)
	const k = 3
	t := &Table{
		ID:     "ablation-pfs",
		Title:  fmt.Sprintf("Checkpoint architectures at %d processes, K=%d protection", n, k),
		Header: []string{"workload", "PFS dump (no local storage)", "no-dedup local", "coll-dedup local"},
		Notes: []string{
			"PFS modelled at 1 GB/s effective job bandwidth (decoupled, contended); local levels use per-node GbE + HDD",
			"the introduction's motivation: decoupled storage cannot absorb collective dumps at scale",
			"local storage wins only at scale — the shared PFS pipe is fixed while node-local bandwidth grows with the job (run without -quick to see the crossover)",
		},
	}
	for _, w := range []Workload{HPCCG(), CM1()} {
		res, err := RunScenario(cfg, w, n, k, core.CollDedup, true)
		if err != nil {
			return nil, err
		}
		resNo, err := RunScenario(cfg, w, n, k, core.NoDedup, false)
		if err != nil {
			return nil, err
		}
		var pfsTime float64
		for _, dumps := range res.Dumps {
			pfsTime += res.Model.PFSDumpTime(dumps)
		}
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprintf("%.0fs", pfsTime),
			fmt.Sprintf("%.0fs", resNo.CheckpointTime()),
			fmt.Sprintf("%.0fs", res.CheckpointTime()),
		})
	}
	return t, nil
}

// AblationHybrid compares the network volume of replication-based
// coll-dedup against the dedup+erasure hybrid at equal protection.
func AblationHybrid(cfg Config) (*Table, error) {
	n := 24
	if cfg.Quick {
		n = 8
	}
	const k = 3
	w := HPCCG()
	t := &Table{
		ID:     "ablation-hybrid",
		Title:  fmt.Sprintf("Replication vs dedup+erasure hybrid, HPCCG, %d processes, K=%d", n, k),
		Header: []string{"scheme", "network bytes (total)", "network bytes (max rank)"},
		Notes: []string{
			"both schemes survive any K-1 node losses; the hybrid trades bandwidth for reconstruction cost",
			"the paper's conclusion proposes exactly this combination as future work",
		},
	}

	mkBuf := func(rank int) []byte {
		app := w.New(rank, n)
		for s := 0; s < w.StepsPerPhase; s++ {
			app.Step()
		}
		return app.CheckpointImage()
	}

	// Replication (coll-dedup).
	{
		cluster := storage.NewCluster(n)
		sent := make([]int64, n)
		var mu sync.Mutex
		err := collectives.Run(n, func(c collectives.Comm) error {
			o := core.Options{K: k, Approach: core.CollDedup, F: w.F,
				ChunkSize: w.ChunkSize, Name: "abl"}
			res, err := core.DumpOutput(c, cluster.Node(c.Rank()), mkBuf(c.Rank()), o)
			if err != nil {
				return err
			}
			mu.Lock()
			sent[c.Rank()] = res.Metrics.SentBytes
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"coll-dedup replication",
			metrics.Bytes(int64(float64(metrics.Sum(sent)) * w.Scale)),
			metrics.Bytes(int64(float64(metrics.Max(sent)) * w.Scale))})
	}

	// Hybrid (dedup + Reed-Solomon groups).
	{
		cluster := storage.NewCluster(n)
		sent := make([]int64, n)
		var mu sync.Mutex
		err := collectives.Run(n, func(c collectives.Comm) error {
			o := hybrid.Options{K: k, Group: 4, F: w.F,
				ChunkSize: w.ChunkSize, Name: "abl"}
			rep, err := hybrid.Protect(c, cluster.Node(c.Rank()), mkBuf(c.Rank()), o)
			if err != nil {
				return err
			}
			mu.Lock()
			sent[c.Rank()] = rep.GatherBytesSent + rep.ParityBytesSent
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"dedup + RS(4,2) hybrid",
			metrics.Bytes(int64(float64(metrics.Sum(sent)) * w.Scale)),
			metrics.Bytes(int64(float64(metrics.Max(sent)) * w.Scale))})
	}
	return t, nil
}
