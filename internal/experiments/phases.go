package experiments

import (
	"fmt"
	"time"

	"dedupcr/internal/core"
	"dedupcr/internal/metrics"
)

// PhasesBreakdown is the observability experiment: it runs one HPCCG
// checkpoint under each approach and prints the measured per-phase wall
// time of the dump pipeline, averaged over ranks — the table the tracing
// work makes possible. The "sum of phases" row against "measured total"
// shows how much of the dump the instrumentation attributes (the
// remainder is bookkeeping between phases).
func PhasesBreakdown(cfg Config) (*Table, error) {
	n := 32
	if cfg.Quick {
		n = 8
	}
	w := HPCCG()
	approaches := []core.Approach{core.NoDedup, core.LocalDedup, core.CollDedup}

	t := &Table{
		ID:     "phases",
		Title:  "Per-phase wall time of one checkpoint (rank mean)",
		Header: []string{"phase"},
	}
	cols := make([]metrics.Phases, 0, len(approaches))
	var putQ [][3]int64
	for _, ap := range approaches {
		t.Header = append(t.Header, ap.String())
		res, err := RunScenario(cfg, w, n, 3, ap, ap == core.CollDedup)
		if err != nil {
			return nil, err
		}
		dumps := res.Dumps[len(res.Dumps)-1]
		var mean metrics.Phases
		var lat []int64
		for _, d := range dumps {
			mean.Add(d.Phases)
			if d.PutLatency != nil {
				lat = append(lat, d.PutLatency.Quantile(0.5), d.PutLatency.Quantile(0.99))
			}
		}
		mean = mean.Scale(1.0 / float64(len(dumps)))
		cols = append(cols, mean)
		var p50, p99 int64
		for i := 0; i < len(lat); i += 2 {
			p50 += lat[i]
			p99 += lat[i+1]
		}
		if k := int64(len(lat) / 2); k > 0 {
			p50 /= k
			p99 /= k
		}
		putQ = append(putQ, [3]int64{p50, p99, int64(len(lat) / 2)})
	}

	for _, name := range metrics.PhaseNames {
		row := []string{name}
		for _, p := range cols {
			row = append(row, metrics.Duration(p.ByName(name)))
		}
		t.Rows = append(t.Rows, row)
	}
	sumRow := []string{"sum of phases"}
	totalRow := []string{"measured total"}
	attrRow := []string{"attributed"}
	for _, p := range cols {
		sumRow = append(sumRow, metrics.Duration(p.Sum()))
		totalRow = append(totalRow, metrics.Duration(p.Total))
		attrRow = append(attrRow, fmt.Sprintf("%.1f%%", 100*float64(p.Sum())/float64(p.Total)))
	}
	t.Rows = append(t.Rows, sumRow, totalRow, attrRow)

	for i, ap := range approaches {
		if putQ[i][2] > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("%s put latency (rank mean): p50 %s, p99 %s",
				ap, metrics.Duration(time.Duration(putQ[i][0])), metrics.Duration(time.Duration(putQ[i][1]))))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("HPCCG, N=%d, K=3; wall time of the scaled mini-app run, not simulated Shamrock seconds", n),
		"capture a span-level view with `dumpbench -trace out.json` and open it in Perfetto")
	return t, nil
}
