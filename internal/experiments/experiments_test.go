package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"dedupcr/internal/core"
	"dedupcr/internal/metrics"
	"dedupcr/internal/telemetry"
	"dedupcr/internal/trace"
)

func quickCfg() Config { return Config{Quick: true} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig3a", "fig3b", "fig3c", "table1", "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "fig5c",
		"phases", "imbalance", "fragmentation", "parallel", "ablation-shuffle", "ablation-restore", "ablation-hybrid", "ablation-pfs"}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(Registry) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(Registry), len(want))
	}
	if got := len(IDs()); got != len(want) {
		t.Errorf("IDs() returned %d, want %d", got, len(want))
	}
}

func TestBaselineInterpolation(t *testing.T) {
	w := HPCCG()
	if got := w.BaselineAt(408); got != 279 {
		t.Errorf("BaselineAt(408) = %v, want exact 279", got)
	}
	mid := w.BaselineAt(130)
	if mid <= 152 || mid >= 186 {
		t.Errorf("BaselineAt(130) = %v, want within (152, 186)", mid)
	}
	if got := w.BaselineAt(1000); got != 279 {
		t.Errorf("BaselineAt beyond range = %v, want flat 279", got)
	}
	if got := w.BaselineAt(0); got != 82 {
		t.Errorf("BaselineAt below range = %v, want flat 82", got)
	}
}

// parseSeconds extracts a leading float from a "123s" cell.
func parseSeconds(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "s"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestFig3aShape(t *testing.T) {
	tab, err := Fig3a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("fig3a has %d rows, want 4", len(tab.Rows))
	}
	// The percentage columns must show coll < local strictly.
	for _, row := range tab.Rows {
		local := strings.TrimSuffix(row[4], "%")
		coll := strings.TrimSuffix(row[5], "%")
		lv, err1 := strconv.ParseFloat(local, 64)
		cv, err2 := strconv.ParseFloat(coll, 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("row %v: bad percentages", row)
		}
		if cv >= lv {
			t.Errorf("%s: coll-dedup %.1f%% not below local-dedup %.1f%%", row[0], cv, lv)
		}
		if lv >= 100 {
			t.Errorf("%s: local-dedup found no redundancy (%.1f%%)", row[0], lv)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	tab, err := Table1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		n, _ := strconv.Atoi(row[1])
		no := parseSeconds(t, row[2])
		local := parseSeconds(t, row[3])
		coll := parseSeconds(t, row[4])
		base := parseSeconds(t, row[5])
		if n < 4 {
			continue // degenerate group sizes carry no dedup signal
		}
		if !(coll <= local && local <= no) {
			t.Errorf("%s N=%d: ordering violated: no=%g local=%g coll=%g", row[0], n, no, local, coll)
		}
		if coll < base {
			t.Errorf("%s N=%d: coll-dedup %g below baseline %g", row[0], n, coll, base)
		}
	}
}

func TestFig3bShape(t *testing.T) {
	tab, err := Fig3b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatal("too few rows")
	}
	// Reduction overhead must grow with the process count and stay
	// nearly flat in K (within 2x across the K columns of one row).
	var prev float64
	for i, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		if i > 0 && v < prev {
			t.Errorf("overhead decreased with scale: %g after %g", v, prev)
		}
		prev = v
		var lo, hi float64
		for c := 1; c < len(row); c++ {
			if row[c] == "n/a" {
				continue
			}
			kv, err := strconv.ParseFloat(row[c], 64)
			if err != nil {
				t.Fatalf("row %v col %d: %v", row, c, err)
			}
			if lo == 0 || kv < lo {
				lo = kv
			}
			if kv > hi {
				hi = kv
			}
		}
		if hi > 2*lo {
			t.Errorf("N=%s: overhead varies %gx across K; paper says nearly flat", row[0], hi/lo)
		}
	}
}

func TestFig5cShuffleNeverHurts(t *testing.T) {
	tab, err := Fig5c(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		red, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
		if err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		if red < -1e-9 {
			t.Errorf("K=%s: shuffling worsened max receive size by %.1f%%", row[0], -red)
		}
	}
}

func TestFig4aShape(t *testing.T) {
	tab, err := Fig4a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// no-dedup must degrade with K; coll-dedup must grow much slower.
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	noGrowth := parseSeconds(t, last[1]) / parseSeconds(t, first[1])
	collGrowth := parseSeconds(t, last[3]) / parseSeconds(t, first[3])
	if noGrowth < 1.5 {
		t.Errorf("no-dedup grew only %.2fx from K=1 to K=max; expected strong degradation", noGrowth)
	}
	if collGrowth > noGrowth {
		t.Errorf("coll-dedup grew faster (%.2fx) than no-dedup (%.2fx)", collGrowth, noGrowth)
	}
	// At max K, coll-dedup must win.
	if parseSeconds(t, last[3]) >= parseSeconds(t, last[1]) {
		t.Errorf("coll-dedup (%s) not faster than no-dedup (%s) at max K", last[3], last[1])
	}
}

func TestFig4cShape(t *testing.T) {
	tab, err := Fig4c(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		red := strings.TrimSuffix(row[3], "%")
		v, err := strconv.ParseFloat(red, 64)
		if err != nil {
			t.Fatalf("row %v: bad reduction cell", row)
		}
		if v < -1e-9 {
			t.Errorf("K=%s: shuffling increased max receive size by %.1f%%", row[0], -v)
		}
	}
}

func TestFig5bShowsSkew(t *testing.T) {
	tab, err := Fig5b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	// coll-dedup's max must exceed its avg at the largest K (imbalance).
	last := tab.Rows[len(tab.Rows)-1]
	if last[5] == last[6] {
		t.Logf("warning: coll avg == coll max at K=%s (no visible imbalance at quick scale)", last[0])
	}
}

func TestRunScenarioConsistency(t *testing.T) {
	res, err := RunScenario(Config{}, CM1(), 8, 3, core.CollDedup, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dumps) != CM1().Checkpoints {
		t.Fatalf("got %d checkpoints, want %d", len(res.Dumps), CM1().Checkpoints)
	}
	if res.CheckpointTime() <= 0 {
		t.Error("checkpoint time must be positive")
	}
	if res.CompletionTime() <= res.Workload.BaselineAt(8) {
		t.Error("completion must exceed baseline")
	}
	if res.UniqueContentBytes() <= 0 {
		t.Error("unique content must be positive")
	}
	if got := len(res.SentBytesPerRank()); got != 8 {
		t.Errorf("SentBytesPerRank has %d entries, want 8", got)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"note"},
	}
	out := tab.Render()
	for _, want := range []string{"== x: t ==", "a", "bb", "# note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestPhasesBreakdown(t *testing.T) {
	tab, err := PhasesBreakdown(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// One row per phase plus sum / total / attributed.
	if want := len(metrics.PhaseNames) + 3; len(tab.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(tab.Rows), want)
	}
	// The attribution row must report >= 90% for every approach (the
	// acceptance bar: phase sums within 10% of the measured total).
	attr := tab.Rows[len(tab.Rows)-1]
	for col := 1; col < len(attr); col++ {
		var pct float64
		if _, err := fmt.Sscanf(attr[col], "%f%%", &pct); err != nil {
			t.Fatalf("unparsable attribution cell %q", attr[col])
		}
		if pct < 90 {
			t.Errorf("%s: phases cover %.1f%% of total, want >= 90%%", tab.Header[col], pct)
		}
		if pct > 100.5 {
			t.Errorf("%s: phases cover %.1f%% of total, impossible", tab.Header[col], pct)
		}
	}
}

func TestAblationParallel(t *testing.T) {
	tab, err := AblationParallel(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if want := 6; len(tab.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(tab.Rows), want)
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "DETERMINISM VIOLATION") {
			t.Errorf("ablation detected nondeterminism: %s", n)
		}
	}
	var confirmed bool
	for _, n := range tab.Notes {
		if strings.Contains(n, "byte-identical") {
			confirmed = true
		}
	}
	if !confirmed {
		t.Error("ablation did not confirm byte-identical outputs")
	}
}

func TestImbalanceExperiment(t *testing.T) {
	cfg := quickCfg()
	var labels []string
	var clusters []*telemetry.ClusterDump
	var rankSets [][]telemetry.RankTrace
	cfg.OnCluster = func(label string, cd *telemetry.ClusterDump, ranks []telemetry.RankTrace) {
		labels = append(labels, label)
		clusters = append(clusters, cd)
		rankSets = append(rankSets, ranks)
	}
	tab, err := Imbalance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("got %d rows, want one per approach", len(tab.Rows))
	}
	if len(labels) != 3 || labels[2] != "imbalance/coll-dedup" {
		t.Fatalf("OnCluster labels = %v", labels)
	}
	for i, cd := range clusters {
		if cd == nil || cd.Ranks != 8 {
			t.Fatalf("%s: cluster dump %+v", labels[i], cd)
		}
		if len(rankSets[i]) != cd.Ranks {
			t.Errorf("%s: %d rank traces for %d ranks", labels[i], len(rankSets[i]), cd.Ranks)
		}
		for r, rt := range rankSets[i] {
			if len(rt.Events) == 0 {
				t.Errorf("%s: rank %d trace slice empty", labels[i], r)
			}
		}
	}
	// The baselines replicate everything uniformly; their send load must
	// be perfectly balanced while coll-dedup's designation may skew.
	if tab.Rows[0][2] != "1.000" {
		t.Errorf("no-dedup send imbalance %q, want 1.000", tab.Rows[0][2])
	}
}

func TestRunScenarioTraceBypassesCache(t *testing.T) {
	cfg := Config{Quick: true}
	warm, err := RunScenario(cfg, HPCCG(), 4, 2, core.LocalDedup, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = trace.New()
	traced, err := RunScenario(cfg, HPCCG(), 4, 2, core.LocalDedup, false)
	if err != nil {
		t.Fatal(err)
	}
	if warm == traced {
		t.Fatal("traced run returned the cached result")
	}
	// 0.90 rather than the documented 0.95: race-detector instrumentation
	// inflates the untraced gaps between spans enough to dip below 0.95
	// on slow single-core machines.
	if cov := cfg.Trace.Coverage(); cov < 0.90 {
		t.Errorf("trace coverage %.3f, want >= 0.90", cov)
	}
	var haveCompute, haveDump bool
	for _, e := range cfg.Trace.Events() {
		switch e.Name {
		case "compute":
			haveCompute = true
		case "dump":
			haveDump = true
		}
	}
	if !haveCompute || !haveDump {
		t.Errorf("missing spans: compute=%v dump=%v", haveCompute, haveDump)
	}
}
