package experiments

import (
	"fmt"

	"dedupcr/internal/core"
	"dedupcr/internal/metrics"
)

// Fig3a reproduces Figure 3(a): total size of unique content identified
// by each approach, in the paper's four configurations (HPCCG-196,
// CM1-256, HPCCG-408, CM1-408), with K=3 as in Section V-C.
func Fig3a(cfg Config) (*Table, error) {
	type conf struct {
		w Workload
		n int
	}
	confs := []conf{
		{HPCCG(), 196}, {CM1(), 256}, {HPCCG(), 408}, {CM1(), 408},
	}
	if cfg.Quick {
		confs = []conf{{HPCCG(), 12}, {CM1(), 16}, {HPCCG(), 24}, {CM1(), 24}}
	}
	t := &Table{
		ID:     "fig3a",
		Title:  "Total size of unique content (lower is better)",
		Header: []string{"config", "no-dedup", "local-dedup", "coll-dedup", "local %", "coll %"},
		Notes: []string{
			"paper: local-dedup ~33% (HPCCG) / ~30% (CM1); coll-dedup ~6% / ~5% at 408 procs",
			"sizes scaled to testbed magnitudes via the workload Scale factor",
		},
	}
	for _, c := range confs {
		var raw int64
		row := []string{fmt.Sprintf("%s-%d", c.w.Name, c.n)}
		var cells []string
		var pct []string
		for _, ap := range []core.Approach{core.NoDedup, core.LocalDedup, core.CollDedup} {
			res, err := RunScenario(cfg, c.w, c.n, 3, ap, ap == core.CollDedup)
			if err != nil {
				return nil, err
			}
			u := res.UniqueContentBytes()
			if ap == core.NoDedup {
				raw = u
			}
			cells = append(cells, metrics.Bytes(u))
			if ap != core.NoDedup {
				pct = append(pct, metrics.Pct(u, raw))
			}
		}
		row = append(row, cells...)
		row = append(row, pct...)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// fig3Reduce renders Figure 3(b)/(c): the simulated overhead of the
// collective hash value reduction for a growing number of processes, one
// curve per replication factor, with the scaled F threshold. Local
// deduplication is the baseline and pays none of this cost.
func fig3Reduce(id string, w Workload, cfg Config) (*Table, error) {
	ns := []int{8, 16, 32, 64, 128, 256, 408}
	ks := []int{2, 4, 6}
	if cfg.Quick {
		ns = []int{4, 8, 16}
		ks = []int{2, 4}
	}
	header := []string{"# of processes"}
	for _, k := range ks {
		header = append(header, fmt.Sprintf("coll-dedup K=%d (s)", k))
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("%s: overhead of the collective hash value reduction, F=2^11 scaled from 2^17", w.Name),
		Header: header,
		Notes: []string{
			"paper: overhead grows ~logarithmically with processes and is nearly flat in K",
			"local-dedup baseline pays zero reduction cost by construction",
		},
	}
	for _, n := range ns {
		row := []string{fmt.Sprintf("%d", n)}
		for _, k := range ks {
			if k > n {
				row = append(row, "n/a")
				continue
			}
			res, err := RunScenario(cfg, w, n, k, core.CollDedup, true)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", res.ReduceOverhead()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig3b reproduces Figure 3(b) for HPCCG.
func Fig3b(cfg Config) (*Table, error) { return fig3Reduce("fig3b", HPCCG(), cfg) }

// Fig3c reproduces Figure 3(c) for CM1.
func Fig3c(cfg Config) (*Table, error) { return fig3Reduce("fig3c", CM1(), cfg) }
