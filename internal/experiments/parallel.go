package experiments

import (
	"fmt"
	"runtime"
	"time"

	"dedupcr/internal/core"
	"dedupcr/internal/metrics"
)

// AblationParallel is the hot-path parallelism ablation: the same HPCCG
// checkpoint dumped with Parallelism=1 (the serial reference) and with
// the full GOMAXPROCS worker budget, reporting the rank-mean wall time of
// the phases the worker pools accelerate — chunk hashing (with the
// local-dedup and leaf-table builds overlapped into it) and the partner
// puts — plus the speedup. It also verifies the determinism contract on
// every run: both settings must produce identical per-rank replication
// traffic and storage, or the table reports the violation instead of a
// speedup.
func AblationParallel(cfg Config) (*Table, error) {
	n := 16
	if cfg.Quick {
		n = 8
	}
	procs := runtime.GOMAXPROCS(0)
	w := HPCCG()

	serialCfg := cfg
	serialCfg.Parallelism = 1
	parCfg := cfg
	parCfg.Parallelism = procs

	serial, err := RunScenario(serialCfg, w, n, 3, core.CollDedup, true)
	if err != nil {
		return nil, err
	}
	parallel, err := RunScenario(parCfg, w, n, 3, core.CollDedup, true)
	if err != nil {
		return nil, err
	}

	mean := func(res *ScenarioResult) metrics.Phases {
		dumps := res.Dumps[len(res.Dumps)-1]
		var m metrics.Phases
		for _, d := range dumps {
			m.Add(d.Phases)
		}
		return m.Scale(1.0 / float64(len(dumps)))
	}
	sp, pp := mean(serial), mean(parallel)

	t := &Table{
		ID:     "parallel",
		Title:  fmt.Sprintf("Hot-path parallelism: serial vs %d workers (HPCCG, N=%d, K=3, chunker=%s, rank mean)", procs, n, cfg.Chunker),
		Header: []string{"phase", "parallelism=1", fmt.Sprintf("parallelism=%d", procs), "speedup"},
	}
	row := func(name string, s, p time.Duration) {
		speed := "n/a"
		if p > 0 {
			speed = fmt.Sprintf("%.2fx", float64(s)/float64(p))
		}
		t.Rows = append(t.Rows, []string{name, metrics.Duration(s), metrics.Duration(p), speed})
	}
	hashS := sp.Chunking + sp.Fingerprint + sp.LocalDedup
	hashP := pp.Chunking + pp.Fingerprint + pp.LocalDedup
	row("chunking", sp.Chunking, pp.Chunking)
	row("fingerprint", sp.Fingerprint, pp.Fingerprint)
	row("local-dedup", sp.LocalDedup, pp.LocalDedup)
	row("chunk+hash+dedup", hashS, hashP)
	row("put", sp.Put, pp.Put)
	row("total", sp.Total, pp.Total)

	// Determinism check: identical replication traffic and storage on
	// every rank, or the ablation is meaningless.
	identical := true
	sd, pd := serial.lastDumps(), parallel.lastDumps()
	for r := range sd {
		if sd[r].SentBytes != pd[r].SentBytes || sd[r].RecvBytes != pd[r].RecvBytes ||
			sd[r].StoredBytes != pd[r].StoredBytes || sd[r].UniqueContentBytes != pd[r].UniqueContentBytes {
			identical = false
			t.Notes = append(t.Notes, fmt.Sprintf(
				"DETERMINISM VIOLATION on rank %d: sent %d/%d recv %d/%d stored %d/%d (serial/parallel)",
				r, sd[r].SentBytes, pd[r].SentBytes, sd[r].RecvBytes, pd[r].RecvBytes,
				sd[r].StoredBytes, pd[r].StoredBytes))
		}
	}
	if identical {
		t.Notes = append(t.Notes, "outputs byte-identical across settings: same per-rank sent/recv/stored/unique bytes")
	}
	if procs == 1 {
		t.Notes = append(t.Notes, "GOMAXPROCS=1 on this host: both columns run serially; re-run on a multi-core node for the speedup")
	}
	t.Notes = append(t.Notes,
		"local-dedup and the reduction leaf-table build overlap the hash pool when parallel, so their cost folds into `fingerprint`",
		"wall time of the scaled mini-app run, not simulated Shamrock seconds")
	return t, nil
}
