// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section V): Figure 3(a)-(c), Table I, Figures
// 4(a)-(c) and 5(a)-(c). Each experiment runs the real pipeline — the
// mini-apps produce checkpoint images, DumpOutput moves real bytes
// through the collectives — and feeds the measured per-rank counters into
// the netsim performance model to obtain simulated Shamrock seconds.
//
// Scale: rank counts are the paper's; per-rank data is linearly scaled
// down ~1000× (see the app packages) and netsim's Scale factor maps the
// measured bytes back to testbed magnitudes.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dedupcr/internal/chunk"
	"dedupcr/internal/telemetry"
	"dedupcr/internal/trace"
)

// Table is a rendered experiment result: the same rows/series the paper
// reports, plus notes on scaling and expectations.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table for terminal output.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// Config tunes an experiment run.
type Config struct {
	// Quick shrinks rank counts (CI-friendly); the full settings use the
	// paper's process counts up to 408.
	Quick bool
	// Verbose prints progress to stderr.
	Verbose bool
	// Trace, when set, collects per-phase spans of every scenario the
	// experiment runs: one trace process per scenario, one thread per
	// rank. Tracing bypasses the scenario cache so the spans always
	// reflect a live run.
	Trace *trace.Trace
	// Parallelism sets core.Options.Parallelism for every dump the
	// experiments run: the per-rank worker budget of the hot path. 0
	// keeps the default (GOMAXPROCS); 1 forces the serial reference
	// path. Results are byte-identical either way (only timings move),
	// but scenarios are cached per setting so timing experiments can
	// compare them.
	Parallelism int
	// Chunker selects the chunking algorithm for every dump the
	// experiments run (core.Options.Chunker.Algo); the chunk size stays
	// each workload's scaled page size. The zero value keeps the paper's
	// fixed-size chunking. Scenarios are cached per algorithm, so the
	// parallel and fragmentation experiments can sweep chunkers across
	// dumpbench invocations (-chunker fixed|cdc|gear).
	Chunker chunk.Algo
	// Timeout bounds each collective scenario run: when it expires the
	// group aborts and the experiment fails with a collective error
	// instead of hanging. Zero means no deadline.
	Timeout time.Duration
	// OnCluster, when set, receives the ClusterDump and the per-rank
	// trace slices of every scenario an experiment aggregates through
	// the telemetry plane (currently the imbalance experiment; one call
	// per scenario, labelled "<experiment>/<approach>"). dumpbench uses
	// it to export cluster JSON and merged cross-rank traces.
	OnCluster func(label string, cd *telemetry.ClusterDump, ranks []telemetry.RankTrace)
	// OnClusterRestore is OnCluster's read-side twin: it receives the
	// ClusterRestore and the per-rank restore trace slices of every
	// scenario an experiment aggregates through the restore telemetry
	// plane (currently the fragmentation experiment). dumpbench uses it
	// for -restore-stats and the cluster JSON export.
	OnClusterRestore func(label string, cr *telemetry.ClusterRestore, ranks []telemetry.RankTrace)
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*Table, error)
}

// Registry lists every reproducible artifact by id.
var Registry = []Experiment{
	{"fig3a", "Total size of unique content (Figure 3a)", Fig3a},
	{"fig3b", "HPCCG: overhead of collective hash reduction (Figure 3b)", Fig3b},
	{"fig3c", "CM1: overhead of collective hash reduction (Figure 3c)", Fig3c},
	{"table1", "Completion time with replication factor 3 (Table I)", Table1},
	{"fig4a", "HPCCG: increase in execution time vs replication factor (Figure 4a)", Fig4a},
	{"fig4b", "HPCCG: replicated data per process vs replication factor (Figure 4b)", Fig4b},
	{"fig4c", "HPCCG: impact of rank shuffling (Figure 4c)", Fig4c},
	{"fig5a", "CM1: increase in execution time vs replication factor (Figure 5a)", Fig5a},
	{"fig5b", "CM1: replicated data per process vs replication factor (Figure 5b)", Fig5b},
	{"fig5c", "CM1: impact of rank shuffling (Figure 5c)", Fig5c},
	// Beyond the paper: observability and ablations of the design choices.
	{"phases", "Per-phase timing breakdown of the dump pipeline (observability)", PhasesBreakdown},
	{"imbalance", "Cluster telemetry: cross-rank load imbalance, phase spread, stragglers (observability)", Imbalance},
	{"fragmentation", "Restore fragmentation: read amplification and locality vs duplication degree (observability)", Fragmentation},
	{"parallel", "Ablation: hot-path parallelism, serial vs GOMAXPROCS workers (beyond paper)", AblationParallel},
	{"ablation-shuffle", "Ablation: partner-selection strategies (beyond paper)", AblationShuffle},
	{"ablation-restore", "Ablation: restore cost vs node failures (beyond paper)", AblationRestore},
	{"ablation-hybrid", "Ablation: replication vs dedup+erasure hybrid (beyond paper)", AblationHybrid},
	{"ablation-pfs", "Ablation: PFS vs local-storage checkpointing (beyond paper)", AblationPFS},
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	out := make([]string, len(Registry))
	for i, e := range Registry {
		out[i] = e.ID
	}
	sort.Strings(out)
	return out
}
