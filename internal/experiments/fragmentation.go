package experiments

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"

	"dedupcr/internal/chunk"
	"dedupcr/internal/collectives"
	"dedupcr/internal/core"
	"dedupcr/internal/metrics"
	"dedupcr/internal/obs"
	"dedupcr/internal/storage"
	"dedupcr/internal/telemetry"
	"dedupcr/internal/trace"
)

// Fragmentation measures the restore-side cost of collective dedup as
// the duplication degree D rises: blocks of D consecutive ranks carry
// identical checkpoint content, so coll-dedup designates each shared
// chunk to K holder ranks and the other D-K sharers discard their local
// copies — their restores must then chase every chunk across the
// network. The experiment dumps, restores in place (no failures), and
// reports the cluster restore telemetry: read amplification vs dedup
// ratio, fetch volume, distinct objects touched, source scatter and the
// sequential-run-length distribution, all of which degrade once D
// exceeds K.
func Fragmentation(cfg Config) (*Table, error) {
	n := 24
	chunksPerRank := 512
	if cfg.Quick {
		n = 8
		chunksPerRank = 256
	}
	const (
		k         = 3
		chunkSize = 256
	)

	tab := &Table{
		ID:    "fragmentation",
		Title: "Restore fragmentation: read amplification and locality vs duplication degree",
		Header: []string{"D", "dedup ratio", "read amp", "fetched", "objects",
			"max sources", "run p50", "run max", "fetch imb"},
		Notes: []string{
			fmt.Sprintf("N=%d K=%d, %d chunks x %dB per rank; blocks of D ranks share identical content; chunker=%s", n, k, chunksPerRank, chunkSize, cfg.Chunker),
			fmt.Sprintf("for D <= K every sharer is a designated holder and restores stay local; for D > K the surplus D-%d sharers fetch everything", k),
			"read amp = bytes fetched from peers / logical image bytes; runs are maximal same-source stretches of the recipe walk, in chunks",
		},
	}

	for _, d := range []int{1, 2, 4, 8} {
		if d > n {
			continue
		}
		cr, ranks, row, err := runFragmentationScenario(cfg, n, k, d, chunksPerRank, chunkSize)
		if err != nil {
			return nil, err
		}
		if cfg.OnClusterRestore != nil {
			cfg.OnClusterRestore(fmt.Sprintf("fragmentation/D=%d", d), cr, ranks)
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// fragBuffer builds rank r's synthetic checkpoint image for duplication
// degree d: ranks within one block of d share byte-identical content
// (seeded by the block index), so every chunk is duplicated exactly d
// times across the group. The filler is a fixed affine byte pattern —
// deterministic across runs and platforms.
func fragBuffer(rank, d, chunksPerRank, chunkSize int) []byte {
	block := rank / d
	buf := make([]byte, 0, chunksPerRank*chunkSize)
	for j := 0; j < chunksPerRank; j++ {
		chunk := make([]byte, chunkSize)
		binary.BigEndian.PutUint32(chunk[0:], uint32(block))
		binary.BigEndian.PutUint32(chunk[4:], uint32(j))
		for i := 8; i < chunkSize; i++ {
			chunk[i] = byte(block*131 + j*31 + i*7)
		}
		buf = append(buf, chunk...)
	}
	return buf
}

// runFragmentationScenario dumps and restores one duplication-degree
// setting, returning rank 0's ClusterRestore, the per-rank restore trace
// slices and the rendered table row.
func runFragmentationScenario(cfg Config, n, k, d, chunksPerRank, chunkSize int) (*telemetry.ClusterRestore, []telemetry.RankTrace, []string, error) {
	tr := cfg.Trace
	if tr == nil {
		tr = trace.New()
	}
	pid := tr.NextPid()
	label := fmt.Sprintf("fragmentation N=%d K=%d D=%d", n, k, d)
	tr.NamePid(pid, label)
	if cfg.Verbose {
		obs.Logger().Info("[experiments] " + label)
	}

	cluster := storage.NewCluster(n)
	var (
		mu           sync.Mutex
		cr           *telemetry.ClusterRestore
		datasetBytes int64
		uniqueBytes  int64
	)
	err := collectives.Run(n, func(c collectives.Comm) error {
		rank := c.Rank()
		rec := tr.Recorder(pid, rank, fmt.Sprintf("rank %d", rank))
		buf := fragBuffer(rank, d, chunksPerRank, chunkSize)
		o := core.Options{
			K: k, Approach: core.CollDedup, F: 1 << 11,
			Chunker: chunk.Spec{Algo: cfg.Chunker, Size: chunkSize},
			Name:    "frag", Trace: rec, Parallelism: cfg.Parallelism,
		}
		res, err := core.DumpOutput(c, cluster.Node(rank), buf, o)
		if err != nil {
			return err
		}
		mu.Lock()
		datasetBytes += res.Metrics.DatasetBytes
		uniqueBytes += res.Metrics.UniqueContentBytes
		mu.Unlock()

		// Restore in place: no failures, but coll-dedup already discarded
		// chunks designated to other holders, so D > K forces fetches.
		rres, err := core.RestoreOutput(c, cluster.Node(rank), "frag", rec)
		if err != nil {
			return err
		}
		if !bytes.Equal(rres.Data, buf) {
			return fmt.Errorf("rank %d corrupt restore", rank)
		}
		got, err := telemetry.GatherClusterRestore(c, rres.Metrics, telemetry.Options{})
		if err != nil {
			return err
		}
		if rank == 0 {
			mu.Lock()
			cr = got
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("fragmentation scenario %s: %w", label, err)
	}

	dedupRatio := 0.0
	if uniqueBytes > 0 {
		dedupRatio = float64(datasetBytes) / float64(uniqueBytes)
	}
	row := []string{
		fmt.Sprintf("%d", d),
		fmt.Sprintf("%.2fx", dedupRatio),
		fmt.Sprintf("%.3fx", cr.ReadAmplificationBytes),
		metrics.Bytes(cr.TotalFetchedBytes),
		fmt.Sprint(cr.TotalObjectsTouched),
		fmt.Sprint(cr.MaxSourceRanks),
		fmt.Sprint(cr.RunLengths.P50),
		fmt.Sprint(cr.RunLengths.Max),
		fmt.Sprintf("%.3f", cr.FetchImbalance),
	}

	var evs []trace.Event
	for _, e := range tr.Events() {
		if e.Pid == pid {
			evs = append(evs, e)
		}
	}
	return cr, telemetry.SplitByTid(evs), row, nil
}
