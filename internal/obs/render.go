package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// ReadBundleEvents parses a bundle's events.jsonl.
func ReadBundleEvents(dir string) ([]Event, error) {
	f, err := os.Open(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var events []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("events.jsonl: %w", err)
		}
		events = append(events, e)
	}
	return events, sc.Err()
}

// ReadBundleFailure parses a bundle's failure.json.
func ReadBundleFailure(dir string) (Failure, error) {
	var f Failure
	b, err := os.ReadFile(filepath.Join(dir, "failure.json"))
	if err != nil {
		return f, err
	}
	err = json.Unmarshal(b, &f)
	return f, err
}

// RenderBundle prints a human-readable account of a post-mortem bundle:
// the failure record, the event timeline, and the snapshot inventory.
// This is the engine behind `dedupstat -bundle`.
func RenderBundle(w io.Writer, dir string) error {
	f, err := ReadBundleFailure(dir)
	if err != nil {
		return fmt.Errorf("reading failure record: %w", err)
	}
	events, err := ReadBundleEvents(dir)
	if err != nil {
		return fmt.Errorf("reading event timeline: %w", err)
	}

	fmt.Fprintf(w, "post-mortem bundle %s\n", dir)
	fmt.Fprintf(w, "  failure:  %s\n", f.Kind)
	if f.Rank >= 0 {
		fmt.Fprintf(w, "  rank:     %d\n", f.Rank)
	}
	if len(f.Ranks) > 0 {
		parts := make([]string, len(f.Ranks))
		for i, r := range f.Ranks {
			parts[i] = fmt.Sprintf("%d", r)
		}
		fmt.Fprintf(w, "  ranks:    [%s]\n", strings.Join(parts, " "))
	}
	if f.Phase != "" {
		fmt.Fprintf(w, "  phase:    %s\n", f.Phase)
	}
	if f.Cause != "" {
		fmt.Fprintf(w, "  cause:    %s\n", f.Cause)
	}
	if f.Time != "" {
		fmt.Fprintf(w, "  time:     %s\n", f.Time)
	}

	var lastRound int64 = -1
	for _, e := range events {
		if e.Kind == KindColl && e.Round > lastRound {
			lastRound = e.Round
		}
	}
	if lastRound >= 0 {
		fmt.Fprintf(w, "  last collective round: %d\n", lastRound)
	}

	fmt.Fprintf(w, "\ntimeline (%d events):\n", len(events))
	for _, e := range events {
		var b strings.Builder
		fmt.Fprintf(&b, "  %8s %12s %-9s", fmt.Sprintf("#%d", e.Seq),
			time.Duration(e.TNs).Round(time.Microsecond), e.Kind)
		if e.Rank >= 0 {
			fmt.Fprintf(&b, " rank=%d", e.Rank)
		}
		if e.Phase != "" {
			fmt.Fprintf(&b, " phase=%s", e.Phase)
		}
		if e.Round != 0 {
			fmt.Fprintf(&b, " round=%d", e.Round)
		}
		if e.Msg != "" {
			fmt.Fprintf(&b, " %s", e.Msg)
		}
		fmt.Fprintln(w, b.String())
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var extras []string
	for _, ent := range entries {
		name := ent.Name()
		if name == "events.jsonl" || name == "failure.json" {
			continue
		}
		extras = append(extras, name)
	}
	sort.Strings(extras)
	if len(extras) > 0 {
		fmt.Fprintf(w, "\nattached files:\n")
		for _, name := range extras {
			fmt.Fprintf(w, "  %s\n", name)
		}
	}
	return nil
}

// FindBundles lists bundle directories under root, newest-named last.
func FindBundles(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, ent := range entries {
		if ent.IsDir() && strings.HasPrefix(ent.Name(), "bundle-") {
			dirs = append(dirs, filepath.Join(root, ent.Name()))
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
