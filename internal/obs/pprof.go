package obs

import (
	"context"
	"runtime/pprof"
)

// PhaseLabel tags the calling goroutine (and everything it spawns from
// here on) with a pprof "phase" label so CPU profiles attribute samples
// to chunk/hash/shuffle/put/barrier. Pair with ClearPhaseLabel.
//
// pprof labels are carried on a context, but the label set here is
// process-observability state, not a cancellation scope — a root context
// is the documented carrier, so this is a sanctioned Background() site.
//
//dedupvet:compat
func PhaseLabel(phase string) {
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(), pprof.Labels("phase", phase)))
}

// ClearPhaseLabel removes the calling goroutine's pprof labels.
//
//dedupvet:compat
func ClearPhaseLabel() {
	pprof.SetGoroutineLabels(context.Background())
}
