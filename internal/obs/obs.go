// Package obs is the always-on flight recorder: a bounded, lock-free ring
// of structured events that every layer of the pipeline records into
// unconditionally. It is the black box the post-mortem bundle (bundle.go)
// snapshots when a collective fails, a rank is killed, or crash recovery
// discards uncommitted state.
//
// The recorder is deliberately tiny: one atomic sequence counter and a
// power-of-two slice of atomic event pointers. Writers never block and
// never contend on a lock; when the ring wraps, the oldest events are
// overwritten and counted as dropped (exposed as
// dedupcr_obs_dropped_total). Readers snapshot the committed window
// without stopping writers.
package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Event kinds. Every event names its origin layer so a bundle timeline
// reads as a cross-layer narrative.
const (
	KindPhase     = "phase"     // pipeline phase transition (NotePhase)
	KindColl      = "coll"      // collective operation completed
	KindRetry     = "retry"     // transient put retried
	KindAbort     = "abort"     // abort noted (local failure or gossip receipt)
	KindKill      = "kill"      // comm killed (fault injection or fatal error)
	KindFault     = "fault"     // injected fault fired
	KindRollback  = "rollback"  // dump rolled back after failure
	KindSeal      = "seal"      // segment sealed
	KindCommit    = "commit"    // manifest checkpoint committed
	KindCompact   = "compact"   // segment compaction pass
	KindRecover   = "recover"   // crash recovery pass over the store
	KindStraggler = "straggler" // rank flagged as straggler by telemetry
	KindLog       = "log"       // leveled log line from the slog front-end
	KindError     = "error"     // failure taxonomy record
)

// Event is one flight-recorder entry. Field order is the JSONL column
// order in post-mortem bundles; keep it stable.
type Event struct {
	Seq   uint64 `json:"seq"`
	TNs   int64  `json:"t_ns"`
	Kind  string `json:"kind"`
	Rank  int    `json:"rank"`
	Phase string `json:"phase,omitempty"`
	Round int64  `json:"round,omitempty"`
	Msg   string `json:"msg,omitempty"`
}

// DefaultRingSize is the capacity of the process-wide default recorder.
// Events are low-rate (phase transitions, collectives, failures), so 4096
// covers minutes of history for a busy dump group.
const DefaultRingSize = 4096

// Recorder is a bounded lock-free ring of events. The zero value is not
// usable; construct with New or NewWithClock. A nil *Recorder is safe to
// record into (the event is discarded), mirroring internal/trace.
type Recorder struct {
	clock func() time.Duration
	start time.Time
	seq   atomic.Uint64
	mask  uint64
	slots []atomic.Pointer[Event]
}

// New returns a recorder holding the last `size` events (rounded up to a
// power of two, minimum 2). Timestamps are nanoseconds since the recorder
// was created.
func New(size int) *Recorder {
	r := newRing(size)
	r.start = time.Now()
	r.clock = func() time.Duration { return time.Since(r.start) }
	return r
}

// NewWithClock is New with an injectable clock, for deterministic tests
// (byte-identical bundle JSONL requires a fixed clock).
func NewWithClock(size int, clock func() time.Duration) *Recorder {
	r := newRing(size)
	r.clock = clock
	return r
}

func newRing(size int) *Recorder {
	n := 2
	for n < size {
		n <<= 1
	}
	return &Recorder{
		mask:  uint64(n - 1),
		slots: make([]atomic.Pointer[Event], n),
	}
}

// Record stamps e with the next sequence number and the recorder clock and
// stores it in the ring, overwriting the oldest event when full. Safe for
// concurrent use; never blocks.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	s := r.seq.Add(1)
	e.Seq = s
	e.TNs = int64(r.clock())
	r.slots[(s-1)&r.mask].Store(&e)
}

// Total returns the number of events ever recorded.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Dropped returns how many events have been overwritten by ring wrap.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	total := r.seq.Load()
	size := uint64(len(r.slots))
	if total <= size {
		return 0
	}
	return total - size
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Events snapshots the committed window, oldest first. Slots still being
// written by a concurrent Record (or already overwritten by a wrap that
// raced the snapshot) are skipped, so the result is always a consistent
// sub-sequence ordered by Seq.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	total := r.seq.Load()
	if total == 0 {
		return nil
	}
	size := uint64(len(r.slots))
	lo := uint64(1)
	if total > size {
		lo = total - size + 1
	}
	out := make([]Event, 0, total-lo+1)
	for s := lo; s <= total; s++ {
		p := r.slots[(s-1)&r.mask].Load()
		if p != nil && p.Seq == s {
			out = append(out, *p)
		}
	}
	return out
}

// Tail returns the newest n events, oldest first.
func (r *Recorder) Tail(n int) []Event {
	evs := r.Events()
	if n >= 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// defRec is the process-wide default recorder everything records into.
var defRec atomic.Pointer[Recorder]

func init() {
	defRec.Store(New(DefaultRingSize))
}

// Default returns the process-wide recorder.
func Default() *Recorder { return defRec.Load() }

// SetDefault swaps the process-wide recorder and returns the previous one
// (tests swap in a fixed-clock ring and restore the original after).
func SetDefault(r *Recorder) *Recorder {
	if r == nil {
		r = New(DefaultRingSize)
	}
	return defRec.Swap(r)
}

// Logf records a formatted event into the default recorder. It is the
// one-liner the rest of the tree calls; rank < 0 means "rank unknown".
func Logf(kind string, rank int, phase string, round int64, format string, args ...any) {
	msg := format
	if len(args) > 0 {
		msg = fmt.Sprintf(format, args...)
	}
	Default().Record(Event{Kind: kind, Rank: rank, Phase: phase, Round: round, Msg: msg})
}
