package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Failure is the taxonomy record written as failure.json in a bundle: who
// failed, where in the pipeline, and why.
type Failure struct {
	// Kind classifies the trigger: "collective-error", "rollback",
	// "kill", "crash-recovery", or "manual".
	Kind string `json:"kind"`
	// Rank is the local rank that observed the failure (-1 if unknown).
	Rank int `json:"rank"`
	// Ranks lists the ranks implicated in the failure, if attributed.
	Ranks []int `json:"ranks,omitempty"`
	// Phase is the pipeline phase at failure time.
	Phase string `json:"phase,omitempty"`
	// Cause is the error chain rendered as text.
	Cause string `json:"cause,omitempty"`
	// Time is the wall-clock trigger time (RFC3339Nano, UTC). Left
	// empty by deterministic tests that byte-compare bundles.
	Time string `json:"time,omitempty"`
}

var (
	bundleDirMu sync.Mutex
	bundleDir   string
	bundleSeq   atomic.Uint64
	lastTrigger atomic.Int64

	snapsMu sync.Mutex
	snaps   map[string]func() any
)

// suppressWindow collapses cascading triggers: a single failure typically
// fires failCollective, then rollback, then killComm within milliseconds —
// one bundle tells the whole story.
const suppressWindow = time.Second

// SetBundleDir sets the directory post-mortem bundles are written under
// ("" disables bundling) and resets the duplicate-trigger suppression
// window. It returns the previous directory.
func SetBundleDir(dir string) string {
	bundleDirMu.Lock()
	prev := bundleDir
	bundleDir = dir
	bundleDirMu.Unlock()
	lastTrigger.Store(0)
	return prev
}

// BundleDir returns the current bundle directory ("" when disabled).
func BundleDir() string {
	bundleDirMu.Lock()
	defer bundleDirMu.Unlock()
	return bundleDir
}

func init() {
	if dir := os.Getenv("DEDUPCR_BUNDLE_DIR"); dir != "" {
		bundleDir = dir
	}
}

// RegisterSnapshot registers a named state provider captured into every
// bundle as <name>.json (metrics.Dump, StoreStats, comm stats, ...).
// Registering the same name again replaces the provider; a nil fn removes
// it. Providers must be safe to call from any goroutine at failure time.
func RegisterSnapshot(name string, fn func() any) {
	snapsMu.Lock()
	defer snapsMu.Unlock()
	if snaps == nil {
		snaps = make(map[string]func() any)
	}
	if fn == nil {
		delete(snaps, name)
		return
	}
	snaps[name] = fn
}

func snapshotAll() map[string]any {
	snapsMu.Lock()
	fns := make(map[string]func() any, len(snaps))
	for name, fn := range snaps {
		fns[name] = fn
	}
	snapsMu.Unlock()
	out := make(map[string]any, len(fns))
	for name, fn := range fns {
		out[name] = fn()
	}
	return out
}

// Trigger writes a post-mortem bundle for f under the configured bundle
// directory: the flight-recorder tail, registered state snapshots, the
// failure record, and a goroutine dump. It returns the bundle path and
// whether one was written. Triggers inside the suppression window of a
// previous one are dropped (a failure cascade is one incident), as are
// triggers when no bundle directory is configured.
func Trigger(f Failure) (string, bool) {
	dir := BundleDir()
	if dir == "" {
		return "", false
	}
	now := time.Now().UnixNano()
	last := lastTrigger.Load()
	if last != 0 && now-last < int64(suppressWindow) {
		return "", false
	}
	if !lastTrigger.CompareAndSwap(last, now) {
		return "", false
	}
	if f.Time == "" {
		f.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	f.Kind = sanitizeKind(f.Kind)
	path := filepath.Join(dir, fmt.Sprintf("bundle-%06d-%s", bundleSeq.Add(1), f.Kind))
	events := Default().Events()
	Logf(KindError, f.Rank, f.Phase, 0, "post-mortem bundle: %s (%s)", f.Kind, f.Cause)
	if err := WriteBundle(path, f, snapshotAll(), events); err != nil {
		fmt.Fprintf(os.Stderr, "obs: writing bundle %s: %v\n", path, err)
		return "", false
	}
	return path, true
}

func sanitizeKind(kind string) string {
	if kind == "" {
		return "manual"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, kind)
}

// WriteBundle writes one bundle directory:
//
//	events.jsonl     flight-recorder window, one JSON event per line
//	failure.json     the failure taxonomy record
//	<name>.json      one file per state snapshot, sorted by name
//	goroutines.txt   full goroutine stack dump
//
// The events and failure files are deterministic given deterministic
// inputs (json.Marshal field order is fixed by the Event struct).
func WriteBundle(dir string, f Failure, snapshots map[string]any, events []Event) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var lines strings.Builder
	for i := range events {
		b, err := json.Marshal(&events[i])
		if err != nil {
			return fmt.Errorf("marshal event %d: %w", events[i].Seq, err)
		}
		lines.Write(b)
		lines.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, "events.jsonl"), []byte(lines.String()), 0o644); err != nil {
		return err
	}
	fb, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "failure.json"), append(fb, '\n'), 0o644); err != nil {
		return err
	}
	names := make([]string, 0, len(snapshots))
	for name := range snapshots {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sb, err := json.MarshalIndent(snapshots[name], "", "  ")
		if err != nil {
			sb = []byte(fmt.Sprintf("{\"error\": %q}", err.Error()))
		}
		file := sanitizeKind(name) + ".json"
		if err := os.WriteFile(filepath.Join(dir, file), append(sb, '\n'), 0o644); err != nil {
			return err
		}
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return os.WriteFile(filepath.Join(dir, "goroutines.txt"), buf[:n], 0o644)
}
