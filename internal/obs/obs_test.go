package obs_test

import (
	"bytes"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dedupcr/internal/metrics"
	"dedupcr/internal/obs"
)

// fixedClock returns a deterministic clock ticking 1ms per event.
func fixedClock() func() time.Duration {
	var mu sync.Mutex
	var n int64
	return func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		n++
		return time.Duration(n) * time.Millisecond
	}
}

func TestRecorderBasic(t *testing.T) {
	r := obs.NewWithClock(8, fixedClock())
	r.Record(obs.Event{Kind: obs.KindPhase, Rank: 0, Phase: "chunk"})
	r.Record(obs.Event{Kind: obs.KindColl, Rank: 1, Round: 3})
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("bad seqs: %+v", evs)
	}
	if evs[0].Phase != "chunk" || evs[1].Round != 3 {
		t.Fatalf("bad payloads: %+v", evs)
	}
	if evs[0].TNs != int64(time.Millisecond) {
		t.Fatalf("clock not applied: %+v", evs[0])
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", r.Dropped())
	}
}

func TestRecorderWraparound(t *testing.T) {
	const size = 8
	r := obs.NewWithClock(size, fixedClock())
	const total = 3*size + 5
	for i := 0; i < total; i++ {
		r.Record(obs.Event{Kind: obs.KindLog, Rank: i})
	}
	if got := r.Total(); got != total {
		t.Fatalf("total = %d, want %d", got, total)
	}
	if got := r.Dropped(); got != total-size {
		t.Fatalf("dropped = %d, want %d", got, total-size)
	}
	evs := r.Events()
	if len(evs) != size {
		t.Fatalf("got %d events after wrap, want %d", len(evs), size)
	}
	for i, e := range evs {
		wantSeq := uint64(total - size + 1 + i)
		if e.Seq != wantSeq {
			t.Fatalf("event %d: seq %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Rank != int(wantSeq)-1 {
			t.Fatalf("event %d: rank %d, want %d (overwritten slot leaked)", i, e.Rank, wantSeq-1)
		}
	}
	tail := r.Tail(3)
	if len(tail) != 3 || tail[2].Seq != total {
		t.Fatalf("bad tail: %+v", tail)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *obs.Recorder
	r.Record(obs.Event{Kind: obs.KindLog})
	if r.Events() != nil || r.Tail(5) != nil || r.Dropped() != 0 || r.Total() != 0 || r.Cap() != 0 {
		t.Fatal("nil recorder must be inert")
	}
}

// TestRecorderConcurrent hammers the ring from many writers under -race:
// the recorder must stay lock-free-safe and the snapshot must be a
// consistent, strictly-increasing sub-sequence.
func TestRecorderConcurrent(t *testing.T) {
	r := obs.New(64)
	const writers = 8
	const perWriter = 1000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := r.Events()
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq <= evs[i-1].Seq {
					t.Errorf("snapshot not strictly increasing: %d then %d", evs[i-1].Seq, evs[i].Seq)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(obs.Event{Kind: obs.KindColl, Rank: w, Round: int64(i)})
			}
		}(w)
	}
	time.Sleep(time.Millisecond)
	close(stop)
	wg.Wait()
	if got := r.Total(); got != writers*perWriter {
		t.Fatalf("total = %d, want %d", got, writers*perWriter)
	}
}

// TestBundleDeterministic drives the same event sequence through two
// fixed-clock recorders and byte-compares the bundle JSONL, mirroring how
// fault injection's deterministic seed yields reproducible timelines.
func TestBundleDeterministic(t *testing.T) {
	write := func(dir string) []byte {
		r := obs.NewWithClock(32, fixedClock())
		r.Record(obs.Event{Kind: obs.KindPhase, Rank: 0, Phase: "chunk"})
		r.Record(obs.Event{Kind: obs.KindColl, Rank: 0, Phase: "reduction", Round: 7})
		r.Record(obs.Event{Kind: obs.KindFault, Rank: 1, Phase: "reduction", Msg: "kill"})
		f := obs.Failure{Kind: "collective-error", Rank: 0, Ranks: []int{1}, Phase: "reduction", Cause: "rank 1 failed"}
		if err := obs.WriteBundle(dir, f, map[string]any{"store": map[string]int{"segments": 3}}, r.Events()); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "events.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := write(filepath.Join(t.TempDir(), "a"))
	b := write(filepath.Join(t.TempDir(), "b"))
	if !bytes.Equal(a, b) {
		t.Fatalf("bundle JSONL not byte-identical:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty events.jsonl")
	}
}

func TestTriggerAndRender(t *testing.T) {
	dir := t.TempDir()
	prevDir := obs.SetBundleDir(dir)
	defer obs.SetBundleDir(prevDir)
	prevRec := obs.SetDefault(obs.NewWithClock(32, fixedClock()))
	defer obs.SetDefault(prevRec)
	obs.RegisterSnapshot("teststats", func() any { return map[string]int{"puts": 42} })
	defer obs.RegisterSnapshot("teststats", nil)

	obs.Logf(obs.KindPhase, 2, "hmerge", 0, "")
	obs.Logf(obs.KindColl, 2, "hmerge", 9, "allreduce")
	path, ok := obs.Trigger(obs.Failure{Kind: "collective-error", Rank: 2, Ranks: []int{1}, Phase: "hmerge", Cause: "rank 1 failed: killed"})
	if !ok {
		t.Fatal("Trigger did not write a bundle")
	}
	for _, f := range []string{"events.jsonl", "failure.json", "teststats.json", "goroutines.txt"} {
		if _, err := os.Stat(filepath.Join(path, f)); err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
	}
	// Second trigger inside the suppression window is dropped.
	if _, ok := obs.Trigger(obs.Failure{Kind: "rollback", Rank: 2}); ok {
		t.Fatal("cascading trigger not suppressed")
	}

	var out strings.Builder
	if err := obs.RenderBundle(&out, path); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"collective-error", "rank:     2", "phase:    hmerge", "rank 1 failed", "last collective round: 9", "teststats.json"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered bundle missing %q:\n%s", want, s)
		}
	}

	bundles, err := obs.FindBundles(dir)
	if err != nil || len(bundles) != 1 || bundles[0] != path {
		t.Fatalf("FindBundles = %v, %v; want [%s]", bundles, err, path)
	}
}

func TestTriggerDisabled(t *testing.T) {
	prev := obs.SetBundleDir("")
	defer obs.SetBundleDir(prev)
	if _, ok := obs.Trigger(obs.Failure{Kind: "manual"}); ok {
		t.Fatal("Trigger wrote a bundle with no directory configured")
	}
}

func TestSlogFrontend(t *testing.T) {
	prevRec := obs.SetDefault(obs.NewWithClock(32, fixedClock()))
	defer obs.SetDefault(prevRec)
	var buf bytes.Buffer
	prevOut := obs.SetLogOutput(&buf)
	defer obs.SetLogOutput(prevOut)
	obs.SetLogLevel(slog.LevelInfo)
	defer obs.SetLogLevel(slog.LevelInfo)

	log := obs.Logger().With("rank", 3)
	log.Info("dump started", "name", "ckpt-1")
	log.Debug("noisy detail")

	evs := obs.Default().Events()
	if len(evs) != 2 {
		t.Fatalf("got %d ring events, want 2 (debug must still be recorded)", len(evs))
	}
	if evs[0].Kind != obs.KindLog || evs[0].Rank != 3 {
		t.Fatalf("bad log event: %+v", evs[0])
	}
	if !strings.Contains(evs[0].Msg, "dump started") || !strings.Contains(evs[0].Msg, "name=ckpt-1") {
		t.Fatalf("log message lost attrs: %q", evs[0].Msg)
	}
	out := buf.String()
	if !strings.Contains(out, "INFO dump started") {
		t.Fatalf("info line not printed: %q", out)
	}
	if strings.Contains(out, "noisy detail") {
		t.Fatalf("debug line printed at info level: %q", out)
	}
}

func TestObsPrometheusExposition(t *testing.T) {
	r := obs.NewWithClock(4, fixedClock())
	for i := 0; i < 10; i++ {
		r.Record(obs.Event{Kind: obs.KindLog})
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf, 2)
	if err := metrics.CheckExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, buf.String())
	}
	s := buf.String()
	if !strings.Contains(s, `dedupcr_obs_events_total{rank="2"} 10`) {
		t.Errorf("missing events counter:\n%s", s)
	}
	if !strings.Contains(s, `dedupcr_obs_dropped_total{rank="2"} 6`) {
		t.Errorf("missing dropped counter:\n%s", s)
	}
}

func TestPhaseLabel(t *testing.T) {
	obs.PhaseLabel("chunk")
	defer obs.ClearPhaseLabel()
	// Smoke: labels are observable via pprof.Do in the runtime; here we
	// just assert the calls don't panic and are idempotent.
	obs.PhaseLabel("hash")
	obs.ClearPhaseLabel()
}

func TestLogfFormats(t *testing.T) {
	prevRec := obs.SetDefault(obs.NewWithClock(8, fixedClock()))
	defer obs.SetDefault(prevRec)
	obs.Logf(obs.KindRetry, 1, "put", 0, "attempt %d of %d", 2, 5)
	evs := obs.Default().Events()
	if len(evs) != 1 || evs[0].Msg != "attempt 2 of 5" {
		t.Fatalf("bad formatted event: %+v", evs)
	}
	// No args: format string is taken verbatim (no Sprintf pass).
	verbatim := "100" + string('%')
	obs.Logf(obs.KindLog, 0, "", 0, verbatim)
	evs = obs.Default().Events()
	if evs[1].Msg != verbatim {
		t.Fatalf("verbatim message mangled: %q", evs[1].Msg)
	}
}

func BenchmarkRecord(b *testing.B) {
	r := obs.New(obs.DefaultRingSize)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		e := obs.Event{Kind: obs.KindColl, Rank: 1, Phase: "reduction"}
		for pb.Next() {
			r.Record(e)
		}
	})
	_ = fmt.Sprintf("%d", r.Total())
}
