package obs

import (
	"fmt"
	"io"
)

// WritePrometheus emits the flight-recorder counters for rank in
// Prometheus text exposition format (validated by metrics.CheckExposition
// in tests).
func (r *Recorder) WritePrometheus(w io.Writer, rank int) {
	fmt.Fprintf(w, "# HELP dedupcr_obs_events_total Flight-recorder events recorded since process start.\n")
	fmt.Fprintf(w, "# TYPE dedupcr_obs_events_total counter\n")
	fmt.Fprintf(w, "dedupcr_obs_events_total{rank=\"%d\"} %d\n", rank, r.Total())
	fmt.Fprintf(w, "# HELP dedupcr_obs_dropped_total Flight-recorder events overwritten by ring wrap.\n")
	fmt.Fprintf(w, "# TYPE dedupcr_obs_dropped_total counter\n")
	fmt.Fprintf(w, "dedupcr_obs_dropped_total{rank=\"%d\"} %d\n", rank, r.Dropped())
}
