package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
)

// The slog front-end: cmds log through obs.Logger(), every record lands in
// the flight recorder unconditionally, and records at or above the
// configured level are also printed to the log writer (stderr by default).
// The ring is the source of truth; the printed stream is a convenience.

var (
	logMu    sync.Mutex
	logOut   io.Writer = os.Stderr
	logLevel slog.LevelVar
)

// SetLogOutput redirects the printed log stream (the ring is unaffected)
// and returns the previous writer.
func SetLogOutput(w io.Writer) io.Writer {
	logMu.Lock()
	defer logMu.Unlock()
	prev := logOut
	logOut = w
	return prev
}

// SetLogLevel sets the minimum level printed to the log writer. Records
// below the level still land in the flight recorder.
func SetLogLevel(l slog.Level) { logLevel.Set(l) }

// Logger returns a *slog.Logger backed by the flight recorder.
func Logger() *slog.Logger { return slog.New(&ringHandler{}) }

type ringHandler struct {
	attrs []slog.Attr
	group string
}

// Enabled always reports true: every record is captured in the ring; the
// level only gates the printed stream.
func (h *ringHandler) Enabled(_ context.Context, _ slog.Level) bool { return true }

func (h *ringHandler) Handle(_ context.Context, rec slog.Record) error {
	rank := -1
	var b strings.Builder
	b.WriteString(rec.Message)
	emit := func(key string, v slog.Value) {
		if key == "rank" {
			if n, ok := attrInt(v); ok {
				rank = n
				return
			}
		}
		fmt.Fprintf(&b, " %s=%v", key, v.Any())
	}
	for _, a := range h.attrs {
		emit(a.Key, a.Value)
	}
	rec.Attrs(func(a slog.Attr) bool {
		key := a.Key
		if h.group != "" {
			key = h.group + "." + key
		}
		emit(key, a.Value)
		return true
	})
	msg := b.String()
	Default().Record(Event{Kind: KindLog, Rank: rank, Msg: rec.Level.String() + " " + msg})
	if rec.Level >= logLevel.Level() {
		logMu.Lock()
		fmt.Fprintf(logOut, "%s %s\n", rec.Level, msg)
		logMu.Unlock()
	}
	return nil
}

func attrInt(v slog.Value) (int, bool) {
	switch v.Kind() {
	case slog.KindInt64:
		return int(v.Int64()), true
	case slog.KindUint64:
		return int(v.Uint64()), true
	default:
		return 0, false
	}
}

func (h *ringHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := &ringHandler{group: h.group}
	nh.attrs = append(nh.attrs, h.attrs...)
	// Resolve the group prefix now so pre-group attrs keep their keys.
	for _, a := range attrs {
		if h.group != "" {
			a.Key = h.group + "." + a.Key
		}
		nh.attrs = append(nh.attrs, a)
	}
	return nh
}

func (h *ringHandler) WithGroup(name string) slog.Handler {
	nh := &ringHandler{attrs: h.attrs, group: name}
	if h.group != "" {
		nh.group = h.group + "." + name
	}
	return nh
}
