package erasure

import "fmt"

// Coder is a systematic Reed-Solomon coder with D data shards and P
// parity shards: any D of the D+P shards reconstruct the original data.
// The encoding matrix is a Vandermonde-derived systematic matrix, the
// standard construction for storage codes.
type Coder struct {
	D, P   int
	matrix [][]byte // (D+P) x D; top D rows form the identity
}

// New creates a coder for d data and p parity shards. d+p must not
// exceed 256 (the field size).
func New(d, p int) (*Coder, error) {
	if d < 1 || p < 0 || d+p > 256 {
		return nil, fmt.Errorf("erasure: invalid geometry d=%d p=%d", d, p)
	}
	// Build a (d+p) x d Vandermonde matrix and normalize its top d rows
	// to the identity by column operations, yielding a systematic code.
	v := make([][]byte, d+p)
	for r := range v {
		v[r] = make([]byte, d)
		for c := 0; c < d; c++ {
			// alpha^(r*c)
			if r == 0 || c == 0 {
				v[r][c] = 1
			} else {
				v[r][c] = gfExpPow(r * c)
			}
		}
	}
	// Gauss-Jordan on the top square: apply the same column operations
	// to the whole matrix.
	for col := 0; col < d; col++ {
		// Ensure pivot non-zero: Vandermonde top square is invertible,
		// but column swaps may still be needed after prior eliminations.
		if v[col][col] == 0 {
			for c2 := col + 1; c2 < d; c2++ {
				if v[col][c2] != 0 {
					for r := range v {
						v[r][col], v[r][c2] = v[r][c2], v[r][col]
					}
					break
				}
			}
		}
		piv := v[col][col]
		if piv == 0 {
			return nil, fmt.Errorf("erasure: singular Vandermonde (d=%d p=%d)", d, p)
		}
		inv := gfInv(piv)
		for r := range v {
			v[r][col] = gfMul(v[r][col], inv)
		}
		for c2 := 0; c2 < d; c2++ {
			if c2 == col || v[col][c2] == 0 {
				continue
			}
			f := v[col][c2]
			for r := range v {
				v[r][c2] ^= gfMul(f, v[r][col])
			}
		}
	}
	return &Coder{D: d, P: p, matrix: v}, nil
}

// Encode computes the p parity shards for d equal-length data shards.
func (c *Coder) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.D {
		return nil, fmt.Errorf("erasure: got %d data shards, want %d", len(data), c.D)
	}
	size := len(data[0])
	for i, s := range data {
		if len(s) != size {
			return nil, fmt.Errorf("erasure: shard %d has %d bytes, want %d", i, len(s), size)
		}
	}
	parity := make([][]byte, c.P)
	for p := 0; p < c.P; p++ {
		parity[p] = make([]byte, size)
		row := c.matrix[c.D+p]
		for dIdx := 0; dIdx < c.D; dIdx++ {
			mulSliceXor(row[dIdx], data[dIdx], parity[p])
		}
	}
	return parity, nil
}

// Reconstruct fills in the nil entries of shards (length D+P: data shards
// first, then parity) as long as at least D shards are present. Present
// shards must all have equal length.
func (c *Coder) Reconstruct(shards [][]byte) error {
	if len(shards) != c.D+c.P {
		return fmt.Errorf("erasure: got %d shards, want %d", len(shards), c.D+c.P)
	}
	var present []int
	size := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("erasure: shard %d has %d bytes, want %d", i, len(s), size)
		}
		present = append(present, i)
	}
	if len(present) < c.D {
		return fmt.Errorf("erasure: only %d shards present, need %d", len(present), c.D)
	}
	// Fast path: all data shards present — recompute parity only.
	missingData := false
	for i := 0; i < c.D; i++ {
		if shards[i] == nil {
			missingData = true
			break
		}
	}
	if !missingData {
		parity, err := c.Encode(shards[:c.D])
		if err != nil {
			return err
		}
		for p := 0; p < c.P; p++ {
			if shards[c.D+p] == nil {
				shards[c.D+p] = parity[p]
			}
		}
		return nil
	}
	// General path: pick D present shards, invert their sub-matrix, and
	// multiply to recover the data shards.
	sub := make([][]byte, c.D)
	src := make([][]byte, c.D)
	for i := 0; i < c.D; i++ {
		idx := present[i]
		sub[i] = append([]byte(nil), c.matrix[idx]...)
		src[i] = shards[idx]
	}
	inv, err := invertMatrix(sub)
	if err != nil {
		return err
	}
	for dIdx := 0; dIdx < c.D; dIdx++ {
		if shards[dIdx] != nil {
			continue
		}
		out := make([]byte, size)
		for j := 0; j < c.D; j++ {
			mulSliceXor(inv[dIdx][j], src[j], out)
		}
		shards[dIdx] = out
	}
	// Recompute any missing parity from the now-complete data.
	for p := 0; p < c.P; p++ {
		if shards[c.D+p] != nil {
			continue
		}
		out := make([]byte, size)
		row := c.matrix[c.D+p]
		for dIdx := 0; dIdx < c.D; dIdx++ {
			mulSliceXor(row[dIdx], shards[dIdx], out)
		}
		shards[c.D+p] = out
	}
	return nil
}

// invertMatrix inverts a square GF(256) matrix via Gauss-Jordan.
func invertMatrix(m [][]byte) ([][]byte, error) {
	n := len(m)
	// Augment with identity.
	aug := make([][]byte, n)
	for i := range aug {
		aug[i] = make([]byte, 2*n)
		copy(aug[i], m[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if aug[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("erasure: singular decode matrix")
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		inv := gfInv(aug[col][col])
		for c := 0; c < 2*n; c++ {
			aug[col][c] = gfMul(aug[col][c], inv)
		}
		for r := 0; r < n; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			f := aug[r][col]
			for c := 0; c < 2*n; c++ {
				aug[r][c] ^= gfMul(f, aug[col][c])
			}
		}
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = aug[i][n:]
	}
	return out, nil
}

// SplitShards cuts data into d equal shards (zero-padding the tail) for
// encoding; Join reverses it given the original length.
func SplitShards(data []byte, d int) [][]byte {
	shardLen := (len(data) + d - 1) / d
	if shardLen == 0 {
		shardLen = 1
	}
	shards := make([][]byte, d)
	for i := range shards {
		shards[i] = make([]byte, shardLen)
		start := i * shardLen
		if start < len(data) {
			copy(shards[i], data[start:])
		}
	}
	return shards
}

// Join reassembles data split by SplitShards.
func Join(shards [][]byte, originalLen int) []byte {
	var out []byte
	for _, s := range shards {
		out = append(out, s...)
	}
	if originalLen > len(out) {
		originalLen = len(out)
	}
	return out[:originalLen]
}
