// Package erasure implements Reed-Solomon erasure coding over GF(2^8).
// The paper's conclusion names erasure codes as the natural companion to
// its scheme: chunks that are not naturally duplicated to a sufficient
// degree can be protected by parity instead of full replicas, trading
// bandwidth for reconstruction cost. This package provides the encoder/
// decoder used by the hybrid-protection example and the ablation bench.
package erasure

// GF(2^8) arithmetic with the 0x11D (AES-unrelated, storage-standard)
// primitive polynomial, via log/exp tables.

const gfPoly = 0x11D

var (
	gfExp [512]byte // doubled to skip mod 255 in mul
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies in GF(2^8).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides in GF(2^8); b must be non-zero.
func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv inverts in GF(2^8); a must be non-zero.
func gfInv(a byte) byte {
	return gfExp[255-int(gfLog[a])]
}

// gfExpPow returns alpha^n.
func gfExpPow(n int) byte {
	return gfExp[n%255]
}

// mulSlice computes dst ^= c * src for whole slices.
func mulSliceXor(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[logC+int(gfLog[s])]
		}
	}
}

// mulSliceSet computes dst = c * src.
func mulSliceSet(c byte, src, dst []byte) {
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
		} else {
			dst[i] = gfExp[logC+int(gfLog[s])]
		}
	}
}
