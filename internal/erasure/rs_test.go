package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldAxioms(t *testing.T) {
	check := func(a, b, c byte) bool {
		// Commutativity and associativity of mul, distributivity over xor.
		if gfMul(a, b) != gfMul(b, a) {
			return false
		}
		if gfMul(gfMul(a, b), c) != gfMul(a, gfMul(b, c)) {
			return false
		}
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			return false
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a * a^-1 = %d for a=%d", got, a)
		}
		if got := gfDiv(gfMul(byte(a), 7), 7); got != byte(a) {
			t.Fatalf("div(mul(a,7),7) = %d for a=%d", got, a)
		}
	}
}

func TestEncodeReconstructAllErasurePatterns(t *testing.T) {
	const d, p, size = 4, 3, 128
	coder, err := New(d, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := make([][]byte, d)
	for i := range data {
		data[i] = make([]byte, size)
		rng.Read(data[i])
	}
	parity, err := coder.Encode(data)
	if err != nil {
		t.Fatal(err)
	}

	// Erase every subset of up to p shards and reconstruct.
	total := d + p
	for mask := 0; mask < 1<<total; mask++ {
		erased := 0
		for i := 0; i < total; i++ {
			if mask&(1<<i) != 0 {
				erased++
			}
		}
		if erased == 0 || erased > p {
			continue
		}
		shards := make([][]byte, total)
		for i := 0; i < d; i++ {
			if mask&(1<<i) == 0 {
				shards[i] = append([]byte(nil), data[i]...)
			}
		}
		for i := 0; i < p; i++ {
			if mask&(1<<(d+i)) == 0 {
				shards[d+i] = append([]byte(nil), parity[i]...)
			}
		}
		if err := coder.Reconstruct(shards); err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for i := 0; i < d; i++ {
			if !bytes.Equal(shards[i], data[i]) {
				t.Fatalf("mask %b: data shard %d wrong after reconstruction", mask, i)
			}
		}
		for i := 0; i < p; i++ {
			if !bytes.Equal(shards[d+i], parity[i]) {
				t.Fatalf("mask %b: parity shard %d wrong after reconstruction", mask, i)
			}
		}
	}
}

func TestReconstructFailsBeyondP(t *testing.T) {
	coder, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, 5)
	shards[0] = make([]byte, 8)
	shards[1] = make([]byte, 8)
	if err := coder.Reconstruct(shards); err == nil {
		t.Fatal("reconstructed from fewer than D shards")
	}
}

func TestGeometryValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("accepted d=0")
	}
	if _, err := New(200, 100); err == nil {
		t.Error("accepted d+p > 256")
	}
	if _, err := New(1, 0); err != nil {
		t.Errorf("rejected trivial geometry: %v", err)
	}
}

func TestEncodeValidatesShards(t *testing.T) {
	coder, _ := New(2, 1)
	if _, err := coder.Encode([][]byte{{1}}); err == nil {
		t.Error("accepted wrong shard count")
	}
	if _, err := coder.Encode([][]byte{{1, 2}, {3}}); err == nil {
		t.Error("accepted ragged shards")
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	check := func(seed int64, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := int(dRaw%8) + 1
		data := make([]byte, rng.Intn(1000))
		rng.Read(data)
		shards := SplitShards(data, d)
		if len(shards) != d {
			return false
		}
		return bytes.Equal(Join(shards, len(data)), data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndProtectChunk(t *testing.T) {
	// The hybrid-protection flow: split a 4 KiB chunk into 6+2, lose any
	// 2 shards, recover the chunk.
	coder, err := New(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	chunkData := make([]byte, 4096)
	rand.New(rand.NewSource(9)).Read(chunkData)
	data := SplitShards(chunkData, 6)
	parity, err := coder.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	shards := append(append([][]byte{}, data...), parity...)
	shards[1], shards[6] = nil, nil
	if err := coder.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(Join(shards[:6], 4096), chunkData) {
		t.Fatal("chunk not recovered")
	}
}

func BenchmarkEncode4KiB(b *testing.B) {
	coder, _ := New(6, 2)
	data := SplitShards(make([]byte, 4096), 6)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coder.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct4KiB(b *testing.B) {
	coder, _ := New(6, 2)
	chunkData := make([]byte, 4096)
	rand.New(rand.NewSource(3)).Read(chunkData)
	data := SplitShards(chunkData, 6)
	parity, _ := coder.Encode(data)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := append(append([][]byte{}, data...), parity...)
		shards[0], shards[3] = nil, nil
		if err := coder.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}
