package hybrid

import (
	"encoding/binary"
	"fmt"

	"dedupcr/internal/chunk"
	"dedupcr/internal/collectives"
	"dedupcr/internal/erasure"
	"dedupcr/internal/fingerprint"
	"dedupcr/internal/metrics"
	"dedupcr/internal/storage"
)

// Protect is the hybrid collective primitive: like core.DumpOutput it
// persists buf with K-level protection, but the chunks lacking K natural
// replicas are covered by group Reed-Solomon parity instead of K-1 full
// partner copies.
func Protect(c collectives.Comm, store storage.Store, buf []byte, o Options) (*Report, error) {
	o, err := o.normalized(c.Size())
	if err != nil {
		return nil, err
	}
	me, n := c.Rank(), c.Size()
	ge := geometry{n: n, g: o.Group}
	rep := &Report{DatasetBytes: int64(len(buf))}

	// Chunk, dedup locally, reduce globally — the coll-dedup front end.
	chunks := chunk.NewFixed(o.ChunkSize).Split(buf)
	recipe := chunk.BuildRecipe(chunks)
	uniq := localDedup(chunks)
	global, err := reduceGlobal(c, uniq, o)
	if err != nil {
		return nil, fmt.Errorf("rank %d: %w", me, err)
	}

	// Classify: keep (store locally), remainder (erasure-protect), or
	// discard (other designated holders cover it).
	var keep, remainder []chunk.Chunk
	hints := make(map[fingerprint.FP][]int32)
	for _, ch := range uniq {
		e := global.Lookup(ch.FP)
		if e == nil {
			keep = append(keep, ch)
			remainder = append(remainder, ch)
			continue
		}
		if e.RankIndex(int32(me)) < 0 {
			hints[ch.FP] = append([]int32(nil), e.Ranks...)
			continue
		}
		keep = append(keep, ch)
		if len(e.Ranks) >= o.K {
			rep.NaturalReplicas++
			continue
		}
		// Under-duplicated: every designated holder adds it to its
		// shard, so the chunk survives even if all D holders die (their
		// shards are reconstructable).
		remainder = append(remainder, ch)
	}

	// Build this rank's data shard: framed remainder chunks.
	var shard []byte
	shardFPs := make([]fingerprint.FP, 0, len(remainder))
	for _, ch := range remainder {
		shard = binary.BigEndian.AppendUint32(shard, uint32(len(ch.Data)))
		shard = append(shard, ch.Data...)
		shardFPs = append(shardFPs, ch.FP)
		rep.RemainderChunks++
		rep.RemainderBytes += int64(len(ch.Data))
	}

	// Everyone learns every shard size; groups pad to their maximum.
	sizes, err := collectives.AllgatherInt64(c, []int64{int64(len(shard))})
	if err != nil {
		return nil, fmt.Errorf("rank %d shard size allgather: %w", me, err)
	}
	padded := groupPaddedSize(ge, sizes, ge.groupOf(me))

	// Gather shards at the group leader, encode, distribute parity.
	myGroup := ge.groupOf(me)
	members := ge.members(myGroup)
	parity := o.K - 1
	// With no parity to compute (K=1) the gather is skipped entirely on
	// BOTH sides — an unmatched send would linger in the leader's
	// mailbox and corrupt a later Protect on the same communicator.
	if parity > 0 && me != ge.leader(myGroup) {
		if err := c.Send(ge.leader(myGroup), tagShardGather, pad(shard, padded)); err != nil {
			return nil, fmt.Errorf("rank %d shard gather send: %w", me, err)
		}
		rep.GatherBytesSent += padded
	} else if parity > 0 && len(members) > 0 {
		data := make([][]byte, len(members))
		for i, r := range members {
			if r == me {
				data[i] = pad(shard, padded)
				continue
			}
			blob, err := c.Recv(r, tagShardGather)
			if err != nil {
				return nil, fmt.Errorf("leader %d recv shard from %d: %w", me, r, err)
			}
			data[i] = blob
		}
		coder, err := erasure.New(len(members), parity)
		if err != nil {
			return nil, err
		}
		pshards, err := coder.Encode(data)
		if err != nil {
			return nil, fmt.Errorf("leader %d encode group %d: %w", me, myGroup, err)
		}
		for p, ps := range pshards {
			holder := ge.parityHolder(myGroup, p)
			frame := binary.BigEndian.AppendUint32(nil, uint32(myGroup))
			frame = binary.BigEndian.AppendUint32(frame, uint32(p))
			frame = append(frame, ps...)
			if err := c.Send(holder, tagShardGather, frame); err != nil {
				return nil, fmt.Errorf("leader %d parity to %d: %w", me, holder, err)
			}
			rep.ParityBytesSent += int64(len(ps))
		}
	}

	// Receive and store the parity shards this rank holds for other
	// groups. The set is globally computable, so no handshake is needed.
	if parity > 0 {
		for g := 0; g < ge.groups(); g++ {
			for p := 0; p < parity; p++ {
				if ge.parityHolder(g, p) != me {
					continue
				}
				frame, err := c.Recv(ge.leader(g), tagShardGather)
				if err != nil {
					return nil, fmt.Errorf("rank %d parity recv: %w", me, err)
				}
				if len(frame) < 8 {
					return nil, fmt.Errorf("rank %d malformed parity frame", me)
				}
				fg := int(binary.BigEndian.Uint32(frame))
				fp := int(binary.BigEndian.Uint32(frame[4:]))
				if err := store.PutBlob(parityBlob(o.Name, fg, fp), frame[8:]); err != nil {
					return nil, err
				}
				rep.StoredParityBytes += int64(len(frame) - 8)
			}
		}
	}

	// Commit: kept chunks, own data shard, metadata (replicated to the
	// K-1 naive neighbours, as in the plain scheme).
	for _, ch := range keep {
		if err := store.PutChunk(ch.FP, ch.Data); err != nil {
			return nil, err
		}
	}
	if err := store.PutBlob(shardBlob(o.Name, me), shard); err != nil {
		return nil, err
	}
	m := &meta{
		Rank: int32(me), K: int32(o.K), Group: int32(o.Group),
		Recipe: recipe, Hints: hints, ShardFPs: shardFPs,
		ShardLen: int64(len(shard)),
	}
	blob, err := m.marshal()
	if err != nil {
		return nil, err
	}
	if err := store.PutBlob(metaBlob(o.Name, me), blob); err != nil {
		return nil, err
	}
	for d := 1; d < o.K; d++ {
		if err := c.Send((me+d)%n, tagMetaXchg, blob); err != nil {
			return nil, err
		}
	}
	for d := 1; d < o.K; d++ {
		from := (me - d + n) % n
		peerBlob, err := c.Recv(from, tagMetaXchg)
		if err != nil {
			return nil, err
		}
		if err := store.PutBlob(metaBlob(o.Name, from), peerBlob); err != nil {
			return nil, err
		}
	}
	// Durability point before the completion barrier: once any rank exits
	// the barrier, every rank's checkpoint is already crash-safe.
	if err := storage.Commit(store); err != nil {
		return nil, fmt.Errorf("rank %d store commit: %w", me, err)
	}
	if err := collectives.Barrier(c); err != nil {
		return nil, fmt.Errorf("rank %d barrier: %w", me, err)
	}
	return rep, nil
}

// localDedup keeps first occurrences (shared with core's semantics).
func localDedup(chunks []chunk.Chunk) []chunk.Chunk {
	seen := make(map[fingerprint.FP]struct{}, len(chunks))
	out := make([]chunk.Chunk, 0, len(chunks))
	for _, ch := range chunks {
		if _, ok := seen[ch.FP]; ok {
			continue
		}
		seen[ch.FP] = struct{}{}
		out = append(out, ch)
	}
	return out
}

// reduceGlobal mirrors the coll-dedup fingerprint reduction.
func reduceGlobal(c collectives.Comm, uniq []chunk.Chunk, o Options) (*fingerprint.Table, error) {
	fps := make([]fingerprint.FP, len(uniq))
	for i, ch := range uniq {
		fps[i] = ch.FP
	}
	local := fingerprint.Local(fps, int32(c.Rank()), o.F, o.K)
	blob, err := local.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out, err := collectives.Allreduce(c, blob, func(acc, other []byte) ([]byte, error) {
		var a, b fingerprint.Table
		if err := a.UnmarshalBinary(acc); err != nil {
			return nil, err
		}
		if err := b.UnmarshalBinary(other); err != nil {
			return nil, err
		}
		a.Merge(&b)
		return a.MarshalBinary()
	})
	if err != nil {
		return nil, fmt.Errorf("fingerprint allreduce: %w", err)
	}
	global := new(fingerprint.Table)
	if err := global.UnmarshalBinary(out); err != nil {
		return nil, err
	}
	return global, nil
}

// groupPaddedSize returns the padded shard size of a group: its members'
// maximum.
func groupPaddedSize(ge geometry, sizes [][]int64, group int) int64 {
	var max int64
	for _, r := range ge.members(group) {
		if sizes[r][0] > max {
			max = sizes[r][0]
		}
	}
	if max == 0 {
		max = 1 // erasure shards must be non-empty
	}
	return max
}

// pad zero-extends b to size.
func pad(b []byte, size int64) []byte {
	out := make([]byte, size)
	copy(out, b)
	return out
}

// TrafficSummary aggregates reports for the ablation bench.
func TrafficSummary(reports []Report) (sent int64, maxSent int64) {
	vals := make([]int64, len(reports))
	for i, r := range reports {
		vals[i] = r.GatherBytesSent + r.ParityBytesSent
		sent += vals[i]
	}
	return sent, metrics.Max(vals)
}
