package hybrid

import (
	"encoding/binary"
	"testing"

	"dedupcr/internal/chunk"
	"dedupcr/internal/fingerprint"
)

// FuzzHybridMetaUnmarshal drives the hybrid metadata decoder with
// arbitrary bytes: its shard and hint counts are peer-controlled and the
// hint count must be bounded before it sizes the map allocation.
func FuzzHybridMetaUnmarshal(f *testing.F) {
	var fp1, fp2 fingerprint.FP
	fp1[0], fp2[0] = 7, 9
	m := &meta{
		Rank:     1,
		K:        2,
		Group:    4,
		ShardLen: 123,
		Recipe:   chunk.Recipe{FPs: []fingerprint.FP{fp1, fp2}, Sizes: []int32{64, 32}},
		ShardFPs: []fingerprint.FP{fp1},
		Hints:    map[fingerprint.FP][]int32{fp2: {3}},
	}
	valid, err := m.marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:12])
	f.Add(append(valid, 0))
	// Corrupt the hint count upward.
	hostile := append([]byte(nil), valid...)
	if i := len(hostile) - len(fp2) - 2 - 4 - 4; i >= 0 {
		binary.BigEndian.PutUint32(hostile[i:], 0x0FFFFFFF)
	}
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		m2 := new(meta)
		if err := m2.unmarshal(data); err != nil {
			return
		}
		enc, err := m2.marshal()
		if err != nil {
			t.Fatalf("re-encode of decoded meta failed: %v", err)
		}
		if err := new(meta).unmarshal(enc); err != nil {
			t.Fatalf("re-decode of re-encoded meta failed: %v", err)
		}
	})
}
