package hybrid

import (
	"bytes"
	"fmt"
	"testing"

	"dedupcr/internal/collectives"
	"dedupcr/internal/storage"
)

// TestConsecutiveProtectsMixedK guards the gather protocol: a K=1 Protect
// (no parity, no gather) followed by a K=3 Protect on the same
// communicator must not leave stale shard messages behind.
func TestConsecutiveProtectsMixedK(t *testing.T) {
	const n = 8
	cluster := storage.NewCluster(n)
	err := collectives.Run(n, func(c collectives.Comm) error {
		for step, k := range []int{1, 3, 1, 3} {
			name := fmt.Sprintf("mix-%d", step)
			buf := testBuffer(c.Rank()+step*10, 4, 2, 1, 2)
			o := Options{K: k, Group: 4, ChunkSize: testPage, Name: name}
			if _, err := Protect(c, cluster.Node(c.Rank()), buf, o); err != nil {
				return fmt.Errorf("step %d (K=%d): %w", step, k, err)
			}
			got, err := Restore(c, cluster.Node(c.Rank()), name)
			if err != nil {
				return fmt.Errorf("step %d restore: %w", step, err)
			}
			if !bytes.Equal(got, buf) {
				return fmt.Errorf("step %d (K=%d): corrupted round trip", step, k)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
