// Package hybrid combines the paper's collective deduplication with
// Reed-Solomon erasure coding, the complementary protection its
// conclusion proposes: chunks that are naturally duplicated on at least K
// nodes keep relying on those natural replicas, while the remainder —
// which coll-dedup would replicate K-1 extra times — is instead protected
// by parity.
//
// Scheme. Ranks are organized in groups of G consecutive ranks. Each
// rank's "remainder" (locally unique chunks without K natural replicas)
// is serialized into a data shard kept on its own node; the group leader
// gathers the group's G shards, computes P = K-1 Reed-Solomon parity
// shards, and places them on the first P members of the next group. Every
// group's G+P shards therefore live on G+P distinct nodes, so any K-1
// node losses leave at least G shards of every group — enough to rebuild
// every lost data shard. Traffic per group is (G-1+P)·S instead of
// replication's G·(K-1)·S, the bandwidth trade the paper anticipates.
package hybrid

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dedupcr/internal/chunk"
	"dedupcr/internal/collectives"
	"dedupcr/internal/fingerprint"
	"dedupcr/internal/storage"
)

// Options configures hybrid protection.
type Options struct {
	// K is the protection level: the dataset survives any K-1 node
	// losses, exactly like replication with factor K.
	K int
	// Group is the erasure group size G (data shards per group).
	// 0 selects 4.
	Group int
	// ChunkSize and F mirror core.Options. Zero selects 4096 and 2^17.
	ChunkSize int
	F         int
	// Name identifies the dataset.
	Name string
}

func (o Options) normalized(n int) (Options, error) {
	if o.K < 1 {
		return o, fmt.Errorf("hybrid: K=%d must be >= 1", o.K)
	}
	if o.Group <= 0 {
		o.Group = 4
	}
	if o.Group > n {
		o.Group = n
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = chunk.DefaultSize
	}
	if o.F == 0 {
		o.F = 1 << 17
	}
	if o.F < 0 {
		o.F = 0
	}
	if o.Name == "" {
		o.Name = "dataset"
	}
	// Parity shards of a group must fit on distinct members of the next
	// group.
	if o.K-1 > o.Group {
		return o, fmt.Errorf("hybrid: K-1=%d parity shards exceed group size %d", o.K-1, o.Group)
	}
	return o, nil
}

// Report summarizes one rank's Protect call for the ablation benches.
type Report struct {
	DatasetBytes      int64
	RemainderChunks   int
	RemainderBytes    int64
	NaturalReplicas   int   // chunks covered by >= K natural holders
	ParityBytesSent   int64 // erasure traffic this rank originated
	GatherBytesSent   int64 // shard bytes pushed to the group leader
	StoredParityBytes int64 // parity bytes this rank stores for others
}

// group geometry helpers.
type geometry struct {
	n, g int
}

func (ge geometry) groups() int { return (ge.n + ge.g - 1) / ge.g }

func (ge geometry) groupOf(rank int) int { return rank / ge.g }

// members returns the ranks of group idx.
func (ge geometry) members(idx int) []int {
	lo := idx * ge.g
	hi := lo + ge.g
	if hi > ge.n {
		hi = ge.n
	}
	out := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		out = append(out, r)
	}
	return out
}

// leader returns the first rank of the group.
func (ge geometry) leader(idx int) int { return idx * ge.g }

// parityHolder returns the rank storing parity shard p of group idx: the
// p-th member of the next group (wrapping).
func (ge geometry) parityHolder(idx, p int) int {
	next := (idx + 1) % ge.groups()
	m := ge.members(next)
	return m[p%len(m)]
}

// Blob names.
func shardBlob(name string, rank int) string {
	return fmt.Sprintf("%s/hybrid-shard-rank%06d", name, rank)
}

func parityBlob(name string, group, p int) string {
	return fmt.Sprintf("%s/hybrid-parity-g%06d-p%02d", name, group, p)
}

func metaBlob(name string, rank int) string {
	return fmt.Sprintf("%s/hybrid-meta-rank%06d", name, rank)
}

// Message tags (user tag space; hybrid protocols are collective and
// SPMD-ordered, so fixed tags suffice).
const (
	tagShardGather collectives.Tag = 101
	tagMetaXchg    collectives.Tag = 102
)

// meta is the per-rank restore metadata.
type meta struct {
	Rank   int32
	K      int32
	Group  int32
	Recipe chunk.Recipe
	// Hints maps chunks not stored locally to their designated holders.
	Hints map[fingerprint.FP][]int32
	// ShardFPs lists the remainder chunks in shard order.
	ShardFPs []fingerprint.FP
	// ShardLen is the unpadded byte length of this rank's data shard.
	ShardLen int64
}

func (m *meta) marshal() ([]byte, error) {
	rec, err := m.Recipe.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 24+len(rec))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Rank))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.K))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Group))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.ShardLen))
	buf = append(buf, rec...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.ShardFPs)))
	for _, fp := range m.ShardFPs {
		buf = append(buf, fp[:]...)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Hints)))
	for _, h := range sortedHints(m.Hints) {
		buf = append(buf, h.fp[:]...)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.ranks)))
		for _, r := range h.ranks {
			buf = binary.BigEndian.AppendUint32(buf, uint32(r))
		}
	}
	return buf, nil
}

type hintPair struct {
	fp    fingerprint.FP
	ranks []int32
}

func sortedHints(hints map[fingerprint.FP][]int32) []hintPair {
	out := make([]hintPair, 0, len(hints))
	for fp, ranks := range hints {
		out = append(out, hintPair{fp, ranks})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].fp.Less(out[j-1].fp); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (m *meta) unmarshal(data []byte) error {
	if len(data) < 20 {
		return errors.New("hybrid: meta truncated")
	}
	m.Rank = int32(binary.BigEndian.Uint32(data))
	m.K = int32(binary.BigEndian.Uint32(data[4:]))
	m.Group = int32(binary.BigEndian.Uint32(data[8:]))
	m.ShardLen = int64(binary.BigEndian.Uint64(data[12:]))
	rec, rest, err := chunk.DecodeRecipe(data[20:])
	if err != nil {
		return err
	}
	m.Recipe = rec
	if len(rest) < 4 {
		return errors.New("hybrid: meta shard list truncated")
	}
	nShard := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if len(rest) < nShard*fingerprint.Size {
		return errors.New("hybrid: meta shard fps truncated")
	}
	m.ShardFPs = make([]fingerprint.FP, nShard)
	for i := range m.ShardFPs {
		copy(m.ShardFPs[i][:], rest[:fingerprint.Size])
		rest = rest[fingerprint.Size:]
	}
	if len(rest) < 4 {
		return errors.New("hybrid: meta hints truncated")
	}
	nHints := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	// Every hint occupies at least Size+2 bytes; reject counts the
	// payload cannot hold before they size the map allocation.
	if nHints > len(rest)/(fingerprint.Size+2) {
		return fmt.Errorf("hybrid: meta claims %d hints in %d bytes", nHints, len(rest))
	}
	m.Hints = make(map[fingerprint.FP][]int32, nHints)
	for i := 0; i < nHints; i++ {
		if len(rest) < fingerprint.Size+2 {
			return errors.New("hybrid: meta hint truncated")
		}
		var fp fingerprint.FP
		copy(fp[:], rest[:fingerprint.Size])
		nr := int(binary.BigEndian.Uint16(rest[fingerprint.Size:]))
		rest = rest[fingerprint.Size+2:]
		if len(rest) < 4*nr {
			return errors.New("hybrid: meta hint ranks truncated")
		}
		ranks := make([]int32, nr)
		for j := range ranks {
			ranks[j] = int32(binary.BigEndian.Uint32(rest[4*j:]))
		}
		rest = rest[4*nr:]
		m.Hints[fp] = ranks
	}
	if len(rest) != 0 {
		return errors.New("hybrid: meta trailing bytes")
	}
	return nil
}

// storageErr reports storage failures that should abort (anything but a
// simulated node failure, which restores tolerate).
func storageErr(err error) bool {
	return err != nil && !errors.Is(err, storage.ErrFailed)
}
