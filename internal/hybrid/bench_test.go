package hybrid

import (
	"sync"
	"testing"

	"dedupcr/internal/collectives"
	"dedupcr/internal/core"
	"dedupcr/internal/storage"
)

// BenchmarkProtect measures the hybrid primitive end to end.
func BenchmarkProtect(b *testing.B) {
	const n, k = 16, 3
	var total int64
	for r := 0; r < n; r++ {
		total += int64(len(testBuffer(r, 24, 12, 8, 4)))
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster := storage.NewCluster(n)
		err := collectives.Run(n, func(c collectives.Comm) error {
			o := Options{K: k, Group: 4, ChunkSize: testPage, Name: "bench"}
			_, err := Protect(c, cluster.Node(c.Rank()), testBuffer(c.Rank(), 24, 12, 8, 4), o)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHybridVsReplicationTraffic is the ablation behind the paper's
// future-work claim: it reports replication and hybrid network volumes
// for the same workload and protection level.
func BenchmarkHybridVsReplicationTraffic(b *testing.B) {
	const n, k = 16, 3
	var hybridSent, replSent int64
	for i := 0; i < b.N; i++ {
		hybridSent, replSent = 0, 0
		// Hybrid.
		cluster := storage.NewCluster(n)
		reports := make([]Report, n)
		var mu sync.Mutex
		err := collectives.Run(n, func(c collectives.Comm) error {
			o := Options{K: k, Group: 4, ChunkSize: testPage, Name: "bench"}
			rep, err := Protect(c, cluster.Node(c.Rank()), testBuffer(c.Rank(), 24, 12, 8, 4), o)
			if err != nil {
				return err
			}
			mu.Lock()
			reports[c.Rank()] = *rep
			mu.Unlock()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		hybridSent, _ = TrafficSummary(reports)
		// Replication (coll-dedup).
		cluster2 := storage.NewCluster(n)
		err = collectives.Run(n, func(c collectives.Comm) error {
			res, err := core.DumpOutput(c, cluster2.Node(c.Rank()), testBuffer(c.Rank(), 24, 12, 8, 4), core.Options{
				K: k, Approach: core.CollDedup, ChunkSize: testPage, Name: "bench",
			})
			if err != nil {
				return err
			}
			mu.Lock()
			replSent += res.Metrics.SentBytes
			mu.Unlock()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(hybridSent), "hybrid-bytes")
	b.ReportMetric(float64(replSent), "replication-bytes")
}
