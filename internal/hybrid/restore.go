package hybrid

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"dedupcr/internal/collectives"
	"dedupcr/internal/erasure"
	"dedupcr/internal/fetch"
	"dedupcr/internal/fingerprint"
	"dedupcr/internal/metrics"
	"dedupcr/internal/storage"
)

// fetchClass is the fetch-service protocol class of hybrid restores
// (distinct from the plain restore's so both could even run in parallel).
const fetchClass fetch.Class = 1

// Restore is the collective inverse of Protect. Chunks missing locally
// are pulled from designated holders; if the rank's own data shard was
// lost with its node, it is rebuilt from the group's surviving data and
// parity shards via Reed-Solomon reconstruction. Tolerates any K-1 node
// losses.
func Restore(c collectives.Comm, store storage.Store, name string) ([]byte, error) {
	buf, _, err := RestoreOutput(c, store, name)
	return buf, err
}

// RestoreOutput is Restore returning the rank's restore instrumentation
// alongside the buffer: the same metrics.Restore the plain restore
// produces, with the erasure-reconstruction time under Phases.Recover and
// rebuilt chunks under RecoveredChunks.
func RestoreOutput(c collectives.Comm, store storage.Store, name string) ([]byte, metrics.Restore, error) {
	me, n := c.Rank(), c.Size()
	restoreStart := time.Now()
	rm := metrics.Restore{Rank: me, RunLengths: metrics.NewHistogram()}
	timed := storage.NewTimed(store)
	fs := fetch.NewStats(n)
	// Peer requests are served from the raw store so peer-serving reads
	// do not pollute this rank's local read-latency histogram.
	srv := fetch.Serve(c, store, fetchClass)
	defer srv.Stop()

	collectives.NotePhase(c, "restore-meta")
	phaseStart := time.Now()
	m, metaFetched, err := loadMeta(c, timed, fs, name)
	rm.Phases.Meta = time.Since(phaseStart)
	if err != nil {
		return nil, rm, fmt.Errorf("rank %d: %w", me, err)
	}
	localBlobReads := 0
	if metaFetched {
		rm.MetaFetches = 1
	} else {
		localBlobReads++
	}
	rm.TotalChunks = m.Recipe.Len()
	rm.UniqueChunks = len(m.Recipe.Unique())
	ge := geometry{n: n, g: int(m.Group)}

	// Eager shard recovery: a replaced node rebuilds its data shard and
	// re-provisions its chunks BEFORE anyone assembles, so that peers
	// whose discarded chunks lived only on now-dead designated holders
	// find them again after the barrier.
	collectives.NotePhase(c, "shard-recover")
	var shardChunks map[fingerprint.FP][]byte
	if _, berr := timed.GetBlob(shardBlob(name, me)); berr != nil && len(m.ShardFPs) > 0 {
		phaseStart = time.Now()
		shard, rerr := recoverShard(c, timed, fs, m, ge, name)
		if rerr != nil {
			return nil, rm, fmt.Errorf("rank %d: %w", me, rerr)
		}
		shardChunks, rerr = parseShard(shard, m.ShardFPs)
		rm.Phases.Recover = time.Since(phaseStart)
		if rerr != nil {
			return nil, rm, fmt.Errorf("rank %d: %w", me, rerr)
		}
		rm.RecoveredChunks += len(shardChunks)
		for fp, data := range shardChunks {
			cache(timed, fp, data)
		}
	} else if berr == nil {
		localBlobReads++
	}
	phaseStart = time.Now()
	err = collectives.Barrier(c)
	rm.Phases.Barrier += time.Since(phaseStart)
	if err != nil {
		return nil, rm, fmt.Errorf("rank %d recovery barrier: %w", me, err)
	}

	// Run-length tracking over the sequential recipe walk: the shard path
	// counts as its own source (id n — beyond any peer rank), so locality
	// runs distinguish local hits, each peer, and shard-rebuilt chunks.
	localFPs := make(map[fingerprint.FP]bool)
	const noSource = -2
	shardSource := n
	curSource, curRun := noSource, int64(0)
	endRun := func() {
		if curRun > 0 {
			rm.RunLengths.Record(curRun)
			if curRun > rm.LargestRun {
				rm.LargestRun = curRun
			}
		}
		curRun = 0
	}
	note := func(source int) {
		if source != curSource {
			endRun()
			curSource = source
		}
		curRun++
	}
	var lazyRecover time.Duration

	collectives.NotePhase(c, "assemble")
	phaseStart = time.Now()
	buf, err := m.Recipe.Assemble(func(fp fingerprint.FP) ([]byte, error) {
		if data, err := timed.GetChunk(fp); err == nil {
			rm.LocalChunks++
			rm.LocalBytes += int64(len(data))
			localFPs[fp] = true
			note(-1)
			return data, nil
		}
		// Designated holders first.
		for _, r := range m.Hints[fp] {
			if int(r) == me {
				continue
			}
			data, ok, err := fs.Chunk(c, fetchClass, int(r), fp)
			if err != nil {
				return nil, err
			}
			if ok {
				rm.FetchedChunks++
				rm.FetchedBytes += int64(len(data))
				note(int(r))
				cache(timed, fp, data)
				return data, nil
			}
		}
		// Shard path: rebuild this rank's data shard once.
		if shardChunks == nil {
			t0 := time.Now()
			shard, err := recoverShard(c, timed, fs, m, ge, name)
			if err != nil {
				return nil, err
			}
			shardChunks, err = parseShard(shard, m.ShardFPs)
			lazyRecover += time.Since(t0)
			if err != nil {
				return nil, err
			}
			rm.RecoveredChunks += len(shardChunks)
		}
		if data, ok := shardChunks[fp]; ok {
			note(shardSource)
			cache(timed, fp, data)
			return data, nil
		}
		// Last resort: sweep all ranks.
		for d := 1; d < n; d++ {
			peer := (me + d) % n
			data, ok, err := fs.Chunk(c, fetchClass, peer, fp)
			if err != nil {
				return nil, err
			}
			if ok {
				rm.FetchedChunks++
				rm.FetchedBytes += int64(len(data))
				note(peer)
				cache(timed, fp, data)
				return data, nil
			}
		}
		return nil, fmt.Errorf("chunk %s unrecoverable", fp.Short())
	})
	endRun()
	// Lazily-triggered reconstruction happened inside the assemble loop;
	// move it to Recover so the phase decomposition stays disjoint.
	rm.Phases.Assemble = time.Since(phaseStart) - lazyRecover
	rm.Phases.Recover += lazyRecover
	if err != nil {
		return nil, rm, fmt.Errorf("rank %d assemble %q: %w", me, name, err)
	}
	rm.LogicalBytes = int64(len(buf))

	collectives.NotePhase(c, "restore-barrier")
	phaseStart = time.Now()
	err = collectives.Barrier(c)
	rm.Phases.Barrier += time.Since(phaseStart)
	if err != nil {
		return nil, rm, fmt.Errorf("rank %d restore barrier: %w", me, err)
	}
	if st := c.Stats(); !st.LastBarrierExit.IsZero() {
		rm.BarrierExit = st.LastBarrierExit
	} else {
		rm.BarrierExit = time.Now()
	}
	rm.Phases.Total = time.Since(restoreStart)
	rm.ObjectsTouched = len(localFPs) + localBlobReads
	rm.FetchRequests = fs.Requests()
	rm.FetchMisses = fs.Misses()
	rm.PeerFetchChunks = fs.PeerChunks()
	rm.PeerFetchBytes = fs.PeerBytes()
	rm.SourceRanks = fs.SourceRanks()
	rm.FetchLatency = fs.Latency()
	rm.Phases.Fetch = time.Duration(rm.FetchLatency.Sum())
	if timed.ReadLatency().Count() > 0 {
		rm.StoreReadLatency = timed.ReadLatency()
	}
	return buf, rm, nil
}

// cache best-effort re-provisions a recovered chunk locally.
func cache(store storage.Store, fp fingerprint.FP, data []byte) {
	if err := store.PutChunk(fp, data); err != nil && !errors.Is(err, storage.ErrFailed) {
		// Non-failure storage errors surface on the next read; restores
		// must not abort over a cache write.
		return
	}
}

// loadMeta retrieves this rank's metadata locally or from the neighbour
// replicas. The bool reports whether the blob came from a peer.
func loadMeta(c collectives.Comm, store storage.Store, fs *fetch.Stats, name string) (*meta, bool, error) {
	me, n := c.Rank(), c.Size()
	blobName := metaBlob(name, me)
	fetched := false
	blob, err := store.GetBlob(blobName)
	if err != nil {
		for d := 1; d < n; d++ {
			data, ok, rerr := fs.Blob(c, fetchClass, (me+d)%n, blobName)
			if rerr != nil {
				return nil, false, rerr
			}
			if ok {
				blob, fetched = data, true
				break
			}
		}
		if blob == nil {
			return nil, false, fmt.Errorf("hybrid metadata %q unrecoverable", blobName)
		}
	}
	m := new(meta)
	if err := m.unmarshal(blob); err != nil {
		return nil, false, err
	}
	return m, fetched, nil
}

// recoverShard returns this rank's data shard: from the local store when
// it survived, otherwise by Reed-Solomon reconstruction from the group's
// surviving shards.
func recoverShard(c collectives.Comm, store storage.Store, fs *fetch.Stats, m *meta, ge geometry, name string) ([]byte, error) {
	me := c.Rank()
	if shard, err := store.GetBlob(shardBlob(name, me)); err == nil {
		return shard, nil
	}
	group := ge.groupOf(me)
	members := ge.members(group)
	parity := int(m.K) - 1

	// Collect surviving shards: data from members, parity from holders.
	shards := make([][]byte, len(members)+parity)
	var padded int64
	myIdx := -1
	for i, r := range members {
		if r == me {
			myIdx = i
			continue
		}
		data, ok, err := fs.Blob(c, fetchClass, r, shardBlob(name, r))
		if err != nil {
			return nil, err
		}
		if ok {
			shards[i] = data
		}
	}
	for p := 0; p < parity; p++ {
		holder := ge.parityHolder(group, p)
		blobName := parityBlob(name, group, p)
		var data []byte
		var ok bool
		if holder == me {
			if b, err := store.GetBlob(blobName); err == nil {
				data, ok = b, true
			}
		} else {
			var err error
			data, ok, err = fs.Blob(c, fetchClass, holder, blobName)
			if err != nil {
				return nil, err
			}
		}
		if ok {
			shards[len(members)+p] = data
			if int64(len(data)) > padded {
				padded = int64(len(data))
			}
		}
	}
	if padded == 0 {
		// No parity shard reachable: reconstruction needs all data
		// shards — ours is gone, so the shard is lost. (Cannot happen
		// within the K-1 failure budget.)
		return nil, fmt.Errorf("shard of rank %d unrecoverable: no parity shard reachable", me)
	}
	// Pad surviving data shards to the parity length.
	for i := range members {
		if shards[i] != nil {
			shards[i] = pad(shards[i], padded)
		}
	}
	coder, err := erasure.New(len(members), parity)
	if err != nil {
		return nil, err
	}
	if err := coder.Reconstruct(shards); err != nil {
		return nil, fmt.Errorf("rank %d group %d reconstruction: %w", me, group, err)
	}
	shard := shards[myIdx][:m.ShardLen]
	// Re-provision the rebuilt shard locally.
	if err := store.PutBlob(shardBlob(name, me), shard); err != nil && !errors.Is(err, storage.ErrFailed) {
		return nil, err
	}
	return shard, nil
}

// parseShard splits a framed shard back into chunks and verifies them
// against the expected fingerprints.
func parseShard(shard []byte, fps []fingerprint.FP) (map[fingerprint.FP][]byte, error) {
	out := make(map[fingerprint.FP][]byte, len(fps))
	cur := 0
	for i, fp := range fps {
		if cur+4 > len(shard) {
			return nil, fmt.Errorf("shard record %d header truncated", i)
		}
		size := int(binary.BigEndian.Uint32(shard[cur:]))
		cur += 4
		if cur+size > len(shard) {
			return nil, fmt.Errorf("shard record %d overruns shard", i)
		}
		data := shard[cur : cur+size]
		cur += size
		if fingerprint.Of(data) != fp {
			return nil, fmt.Errorf("shard record %d does not match fingerprint %s", i, fp.Short())
		}
		out[fp] = data
	}
	if cur != len(shard) {
		return nil, fmt.Errorf("%d trailing bytes in shard", len(shard)-cur)
	}
	return out, nil
}
