package hybrid

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dedupcr/internal/collectives"
	"dedupcr/internal/erasure"
	"dedupcr/internal/fetch"
	"dedupcr/internal/fingerprint"
	"dedupcr/internal/storage"
)

// fetchClass is the fetch-service protocol class of hybrid restores
// (distinct from the plain restore's so both could even run in parallel).
const fetchClass fetch.Class = 1

// Restore is the collective inverse of Protect. Chunks missing locally
// are pulled from designated holders; if the rank's own data shard was
// lost with its node, it is rebuilt from the group's surviving data and
// parity shards via Reed-Solomon reconstruction. Tolerates any K-1 node
// losses.
func Restore(c collectives.Comm, store storage.Store, name string) ([]byte, error) {
	me := c.Rank()
	srv := fetch.Serve(c, store, fetchClass)
	defer srv.Stop()

	m, err := loadMeta(c, store, name)
	if err != nil {
		return nil, fmt.Errorf("rank %d: %w", me, err)
	}
	ge := geometry{n: c.Size(), g: int(m.Group)}

	// Eager shard recovery: a replaced node rebuilds its data shard and
	// re-provisions its chunks BEFORE anyone assembles, so that peers
	// whose discarded chunks lived only on now-dead designated holders
	// find them again after the barrier.
	var shardChunks map[fingerprint.FP][]byte
	if _, berr := store.GetBlob(shardBlob(name, me)); berr != nil && len(m.ShardFPs) > 0 {
		shard, rerr := recoverShard(c, store, m, ge, name)
		if rerr != nil {
			return nil, fmt.Errorf("rank %d: %w", me, rerr)
		}
		shardChunks, rerr = parseShard(shard, m.ShardFPs)
		if rerr != nil {
			return nil, fmt.Errorf("rank %d: %w", me, rerr)
		}
		for fp, data := range shardChunks {
			cache(store, fp, data)
		}
	}
	if err := collectives.Barrier(c); err != nil {
		return nil, fmt.Errorf("rank %d recovery barrier: %w", me, err)
	}

	buf, err := m.Recipe.Assemble(func(fp fingerprint.FP) ([]byte, error) {
		if data, err := store.GetChunk(fp); err == nil {
			return data, nil
		}
		// Designated holders first.
		for _, r := range m.Hints[fp] {
			if int(r) == me {
				continue
			}
			data, ok, err := fetch.Chunk(c, fetchClass, int(r), fp)
			if err != nil {
				return nil, err
			}
			if ok {
				cache(store, fp, data)
				return data, nil
			}
		}
		// Shard path: rebuild this rank's data shard once.
		if shardChunks == nil {
			shard, err := recoverShard(c, store, m, ge, name)
			if err != nil {
				return nil, err
			}
			shardChunks, err = parseShard(shard, m.ShardFPs)
			if err != nil {
				return nil, err
			}
		}
		if data, ok := shardChunks[fp]; ok {
			cache(store, fp, data)
			return data, nil
		}
		// Last resort: sweep all ranks.
		for d := 1; d < c.Size(); d++ {
			data, ok, err := fetch.Chunk(c, fetchClass, (me+d)%c.Size(), fp)
			if err != nil {
				return nil, err
			}
			if ok {
				cache(store, fp, data)
				return data, nil
			}
		}
		return nil, fmt.Errorf("chunk %s unrecoverable", fp.Short())
	})
	if err != nil {
		return nil, fmt.Errorf("rank %d assemble %q: %w", me, name, err)
	}

	if err := collectives.Barrier(c); err != nil {
		return nil, fmt.Errorf("rank %d restore barrier: %w", me, err)
	}
	return buf, nil
}

// cache best-effort re-provisions a recovered chunk locally.
func cache(store storage.Store, fp fingerprint.FP, data []byte) {
	if err := store.PutChunk(fp, data); err != nil && !errors.Is(err, storage.ErrFailed) {
		// Non-failure storage errors surface on the next read; restores
		// must not abort over a cache write.
		return
	}
}

// loadMeta retrieves this rank's metadata locally or from the neighbour
// replicas.
func loadMeta(c collectives.Comm, store storage.Store, name string) (*meta, error) {
	me, n := c.Rank(), c.Size()
	blobName := metaBlob(name, me)
	blob, err := store.GetBlob(blobName)
	if err != nil {
		for d := 1; d < n; d++ {
			data, ok, rerr := fetch.Blob(c, fetchClass, (me+d)%n, blobName)
			if rerr != nil {
				return nil, rerr
			}
			if ok {
				blob = data
				break
			}
		}
		if blob == nil {
			return nil, fmt.Errorf("hybrid metadata %q unrecoverable", blobName)
		}
	}
	m := new(meta)
	if err := m.unmarshal(blob); err != nil {
		return nil, err
	}
	return m, nil
}

// recoverShard returns this rank's data shard: from the local store when
// it survived, otherwise by Reed-Solomon reconstruction from the group's
// surviving shards.
func recoverShard(c collectives.Comm, store storage.Store, m *meta, ge geometry, name string) ([]byte, error) {
	me := c.Rank()
	if shard, err := store.GetBlob(shardBlob(name, me)); err == nil {
		return shard, nil
	}
	group := ge.groupOf(me)
	members := ge.members(group)
	parity := int(m.K) - 1

	// Collect surviving shards: data from members, parity from holders.
	shards := make([][]byte, len(members)+parity)
	var padded int64
	myIdx := -1
	for i, r := range members {
		if r == me {
			myIdx = i
			continue
		}
		data, ok, err := fetch.Blob(c, fetchClass, r, shardBlob(name, r))
		if err != nil {
			return nil, err
		}
		if ok {
			shards[i] = data
		}
	}
	for p := 0; p < parity; p++ {
		holder := ge.parityHolder(group, p)
		blobName := parityBlob(name, group, p)
		var data []byte
		var ok bool
		if holder == me {
			if b, err := store.GetBlob(blobName); err == nil {
				data, ok = b, true
			}
		} else {
			var err error
			data, ok, err = fetch.Blob(c, fetchClass, holder, blobName)
			if err != nil {
				return nil, err
			}
		}
		if ok {
			shards[len(members)+p] = data
			if int64(len(data)) > padded {
				padded = int64(len(data))
			}
		}
	}
	if padded == 0 {
		// No parity shard reachable: reconstruction needs all data
		// shards — ours is gone, so the shard is lost. (Cannot happen
		// within the K-1 failure budget.)
		return nil, fmt.Errorf("shard of rank %d unrecoverable: no parity shard reachable", me)
	}
	// Pad surviving data shards to the parity length.
	for i := range members {
		if shards[i] != nil {
			shards[i] = pad(shards[i], padded)
		}
	}
	coder, err := erasure.New(len(members), parity)
	if err != nil {
		return nil, err
	}
	if err := coder.Reconstruct(shards); err != nil {
		return nil, fmt.Errorf("rank %d group %d reconstruction: %w", me, group, err)
	}
	shard := shards[myIdx][:m.ShardLen]
	// Re-provision the rebuilt shard locally.
	if err := store.PutBlob(shardBlob(name, me), shard); err != nil && !errors.Is(err, storage.ErrFailed) {
		return nil, err
	}
	return shard, nil
}

// parseShard splits a framed shard back into chunks and verifies them
// against the expected fingerprints.
func parseShard(shard []byte, fps []fingerprint.FP) (map[fingerprint.FP][]byte, error) {
	out := make(map[fingerprint.FP][]byte, len(fps))
	cur := 0
	for i, fp := range fps {
		if cur+4 > len(shard) {
			return nil, fmt.Errorf("shard record %d header truncated", i)
		}
		size := int(binary.BigEndian.Uint32(shard[cur:]))
		cur += 4
		if cur+size > len(shard) {
			return nil, fmt.Errorf("shard record %d overruns shard", i)
		}
		data := shard[cur : cur+size]
		cur += size
		if fingerprint.Of(data) != fp {
			return nil, fmt.Errorf("shard record %d does not match fingerprint %s", i, fp.Short())
		}
		out[fp] = data
	}
	if cur != len(shard) {
		return nil, fmt.Errorf("%d trailing bytes in shard", len(shard)-cur)
	}
	return out, nil
}
