package hybrid

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dedupcr/internal/collectives"
	"dedupcr/internal/core"
	"dedupcr/internal/fingerprint"
	"dedupcr/internal/storage"
)

const testPage = 256

func page(label string) []byte {
	seed := int64(0)
	for _, b := range []byte(label) {
		seed = seed*131 + int64(b)
	}
	buf := make([]byte, testPage)
	rand.New(rand.NewSource(seed)).Read(buf)
	return buf
}

// testBuffer mirrors the core test workload: cross-rank shared pages,
// group-shared pages, local duplicates and rank-private pages.
func testBuffer(rank, shared, group, localdup, unique int) []byte {
	var buf []byte
	for i := 0; i < shared; i++ {
		buf = append(buf, page(fmt.Sprintf("shared-%d", i))...)
	}
	for i := 0; i < group; i++ {
		buf = append(buf, page(fmt.Sprintf("group-%d-%d", rank/4, i))...)
	}
	for i := 0; i < localdup; i++ {
		p := page(fmt.Sprintf("ldup-%d-%d", rank, i))
		buf = append(buf, p...)
		buf = append(buf, p...)
	}
	for i := 0; i < unique; i++ {
		buf = append(buf, page(fmt.Sprintf("uniq-%d-%d", rank, i))...)
	}
	return buf
}

func runProtect(t *testing.T, n int, o Options) (*storage.Cluster, []Report, [][]byte) {
	t.Helper()
	cluster := storage.NewCluster(n)
	reports := make([]Report, n)
	buffers := make([][]byte, n)
	var mu sync.Mutex
	err := collectives.Run(n, func(c collectives.Comm) error {
		buf := testBuffer(c.Rank(), 6, 4, 3, 2+c.Rank()%3)
		rep, err := Protect(c, cluster.Node(c.Rank()), buf, o)
		if err != nil {
			return err
		}
		mu.Lock()
		reports[c.Rank()] = *rep
		buffers[c.Rank()] = buf
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster, reports, buffers
}

func restoreAll(t *testing.T, n int, cluster *storage.Cluster, buffers [][]byte, name string) {
	t.Helper()
	err := collectives.Run(n, func(c collectives.Comm) error {
		got, err := Restore(c, cluster.Node(c.Rank()), name)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, buffers[c.Rank()]) {
			return fmt.Errorf("rank %d restore mismatch", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProtectRestoreRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, k, g int }{
		{8, 3, 4}, {12, 2, 4}, {9, 3, 3}, {8, 1, 4}, {10, 3, 5},
	} {
		tc := tc
		t.Run(fmt.Sprintf("n=%d/k=%d/g=%d", tc.n, tc.k, tc.g), func(t *testing.T) {
			o := Options{K: tc.k, Group: tc.g, ChunkSize: testPage, Name: "hy"}
			cluster, _, buffers := runProtect(t, tc.n, o)
			restoreAll(t, tc.n, cluster, buffers, "hy")
		})
	}
}

func TestRestoreAfterDataNodeLoss(t *testing.T) {
	const n, k, g = 12, 3, 4
	o := Options{K: k, Group: g, ChunkSize: testPage, Name: "hy"}
	cluster, _, buffers := runProtect(t, n, o)
	// Lose K-1 = 2 nodes of the SAME group: both data shards must be
	// rebuilt from the remaining 2 data + 2 parity shards.
	cluster.FailNodes(4, 6)
	cluster.Replace(4)
	cluster.Replace(6)
	restoreAll(t, n, cluster, buffers, "hy")
	// The replaced nodes must have been re-provisioned.
	for _, r := range []int{4, 6} {
		if b, _ := cluster.Node(r).Usage(); b == 0 {
			t.Errorf("node %d not re-provisioned", r)
		}
	}
}

func TestRestoreAfterDataPlusParityLoss(t *testing.T) {
	const n, k, g = 12, 3, 4
	o := Options{K: k, Group: g, ChunkSize: testPage, Name: "hy"}
	cluster, _, buffers := runProtect(t, n, o)
	// Lose one data node of group 0 and one parity holder of group 0
	// (first member of group 1 holds parity 0 of group 0).
	cluster.FailNodes(1, 4)
	cluster.Replace(1)
	cluster.Replace(4)
	restoreAll(t, n, cluster, buffers, "hy")
}

func TestHybridSendsLessThanReplication(t *testing.T) {
	const n, k = 12, 3
	o := Options{K: k, Group: 4, ChunkSize: testPage, Name: "hy"}
	_, reports, buffers := runProtect(t, n, o)
	hybridSent, _ := TrafficSummary(reports)

	// Same workload through the replication-based coll-dedup.
	cluster := storage.NewCluster(n)
	var mu sync.Mutex
	var replSent int64
	err := collectives.Run(n, func(c collectives.Comm) error {
		res, err := core.DumpOutput(c, cluster.Node(c.Rank()), buffers[c.Rank()], core.Options{
			K: k, Approach: core.CollDedup, ChunkSize: testPage, Name: "repl",
		})
		if err != nil {
			return err
		}
		mu.Lock()
		replSent += res.Metrics.SentBytes
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("traffic: hybrid=%d bytes, coll-dedup replication=%d bytes", hybridSent, replSent)
	if hybridSent >= replSent {
		t.Errorf("hybrid erasure traffic %d not below replication traffic %d", hybridSent, replSent)
	}
}

func TestGeometry(t *testing.T) {
	ge := geometry{n: 10, g: 4}
	if ge.groups() != 3 {
		t.Fatalf("groups = %d", ge.groups())
	}
	if got := ge.members(2); len(got) != 2 || got[0] != 8 || got[1] != 9 {
		t.Fatalf("members(2) = %v", got)
	}
	if ge.groupOf(7) != 1 || ge.leader(1) != 4 {
		t.Fatal("groupOf/leader wrong")
	}
	// Parity holders of a group live in the next group, wrapping.
	if h := ge.parityHolder(2, 0); h != 0 {
		t.Fatalf("parityHolder(2,0) = %d", h)
	}
	if h := ge.parityHolder(0, 1); h != 5 {
		t.Fatalf("parityHolder(0,1) = %d", h)
	}
}

func TestMetaRoundTrip(t *testing.T) {
	m := &meta{
		Rank: 3, K: 3, Group: 4, ShardLen: 12345,
		ShardFPs: []fingerprint.FP{fingerprint.Of([]byte("a")), fingerprint.Of([]byte("b"))},
		Hints: map[fingerprint.FP][]int32{
			fingerprint.Of([]byte("c")): {1, 2},
			fingerprint.Of([]byte("d")): {7},
		},
	}
	m.Recipe.FPs = m.ShardFPs
	m.Recipe.Sizes = []int32{1, 1}
	blob, err := m.marshal()
	if err != nil {
		t.Fatal(err)
	}
	var back meta
	if err := back.unmarshal(blob); err != nil {
		t.Fatal(err)
	}
	if back.Rank != 3 || back.K != 3 || back.Group != 4 || back.ShardLen != 12345 {
		t.Fatalf("header fields wrong: %+v", back)
	}
	if len(back.ShardFPs) != 2 || back.ShardFPs[1] != m.ShardFPs[1] {
		t.Fatal("shard fps wrong")
	}
	if len(back.Hints) != 2 || back.Hints[fingerprint.Of([]byte("c"))][1] != 2 {
		t.Fatal("hints wrong")
	}
	// Truncations must be rejected.
	for _, cut := range []int{0, 10, len(blob) - 1} {
		var bad meta
		if err := bad.unmarshal(blob[:cut]); err == nil {
			t.Errorf("cut %d accepted", cut)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := (Options{K: 0}).normalized(8); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := (Options{K: 6, Group: 4}).normalized(8); err == nil {
		t.Error("K-1 > Group accepted")
	}
	o, err := (Options{K: 3}).normalized(8)
	if err != nil || o.Group != 4 || o.ChunkSize == 0 || o.Name == "" {
		t.Errorf("defaults not applied: %+v (%v)", o, err)
	}
}
