package hybrid

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dedupcr/internal/collectives"
	"dedupcr/internal/metrics"
	"dedupcr/internal/storage"
)

// restoreAllOutput is restoreAll through the instrumented entry point,
// returning every rank's metrics.
func restoreAllOutput(t *testing.T, n int, cluster *storage.Cluster, buffers [][]byte, name string) []metrics.Restore {
	t.Helper()
	ms := make([]metrics.Restore, n)
	var mu sync.Mutex
	err := collectives.Run(n, func(c collectives.Comm) error {
		got, m, err := RestoreOutput(c, cluster.Node(c.Rank()), name)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, buffers[c.Rank()]) {
			return fmt.Errorf("rank %d restore mismatch", c.Rank())
		}
		mu.Lock()
		ms[c.Rank()] = m
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

// TestHybridRestoreMetrics pins the hybrid restore instrumentation: on a
// healthy cluster the accounting reconciles with nothing rebuilt; after
// a data-node loss the replaced node reports recovered (erasure-rebuilt)
// chunks and shard-recovery time, disjoint from assembly.
func TestHybridRestoreMetrics(t *testing.T) {
	const n, k, g = 12, 3, 4
	o := Options{K: k, Group: g, ChunkSize: testPage, Name: "hy"}
	cluster, _, buffers := runProtect(t, n, o)

	for r, m := range restoreAllOutput(t, n, cluster, buffers, "hy") {
		if m.LogicalBytes != int64(len(buffers[r])) {
			t.Errorf("rank %d: logical bytes %d, want %d", r, m.LogicalBytes, len(buffers[r]))
		}
		if m.LocalChunks+m.FetchedChunks != m.TotalChunks {
			t.Errorf("rank %d: %d local + %d fetched != %d total chunks",
				r, m.LocalChunks, m.FetchedChunks, m.TotalChunks)
		}
		if m.RecoveredChunks != 0 || m.Phases.Recover != 0 {
			t.Errorf("rank %d: healthy restore rebuilt %d chunks (%v recover time)",
				r, m.RecoveredChunks, m.Phases.Recover)
		}
		if got := m.RunLengths.Sum(); got != int64(m.TotalChunks) {
			t.Errorf("rank %d: run lengths sum to %d, want %d", r, got, m.TotalChunks)
		}
	}

	cluster.FailNodes(4, 6)
	cluster.Replace(4)
	cluster.Replace(6)
	ms := restoreAllOutput(t, n, cluster, buffers, "hy")
	for _, r := range []int{4, 6} {
		m := ms[r]
		if m.RecoveredChunks == 0 {
			t.Errorf("replaced node %d: no erasure-rebuilt chunks recorded", r)
		}
		if m.Phases.Recover == 0 {
			t.Errorf("replaced node %d: no shard-recovery time attributed", r)
		}
		if m.MetaFetches != 1 {
			t.Errorf("replaced node %d: %d meta fetches, want 1", r, m.MetaFetches)
		}
		if m.SourceRanks == 0 || m.FetchedChunks == 0 {
			t.Errorf("replaced node %d: no peer traffic recorded (%d sources, %d fetched)",
				r, m.SourceRanks, m.FetchedChunks)
		}
	}
}
