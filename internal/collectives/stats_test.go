package collectives

import (
	"testing"
	"time"
)

// TestPerPeerStats verifies that the expanded Stats attribute traffic to
// the correct peers on the in-process transport and that totals stay
// consistent with the per-peer breakdown.
func TestPerPeerStats(t *testing.T) {
	const n = 4
	g, err := NewGroup(n)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	comms := make([]*InprocComm, n)
	for r := range comms {
		comms[r], err = g.Comm(r)
		if err != nil {
			t.Fatal(err)
		}
	}

	// Rank 0 sends distinct payloads to 1, 2, 2 (two messages to rank 2).
	payload := func(k int) []byte { return make([]byte, 100*k) }
	if err := comms[0].Send(1, 7, payload(1)); err != nil {
		t.Fatal(err)
	}
	if err := comms[0].Send(2, 7, payload(2)); err != nil {
		t.Fatal(err)
	}
	if err := comms[0].Send(2, 7, payload(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := comms[1].Recv(0, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := comms[2].Recv(0, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := comms[2].Recv(0, 7); err != nil {
		t.Fatal(err)
	}

	s0 := comms[0].Stats()
	if len(s0.Peers) != n {
		t.Fatalf("rank 0 Peers has %d entries, want %d", len(s0.Peers), n)
	}
	if s0.Peers[1].BytesSent != 100 || s0.Peers[1].MsgsSent != 1 {
		t.Errorf("peer 1 send stats = %+v", s0.Peers[1])
	}
	if s0.Peers[2].BytesSent != 500 || s0.Peers[2].MsgsSent != 2 {
		t.Errorf("peer 2 send stats = %+v", s0.Peers[2])
	}
	var perPeerSent int64
	for _, p := range s0.Peers {
		perPeerSent += p.BytesSent
	}
	if perPeerSent != s0.BytesSent {
		t.Errorf("per-peer sent %d != total sent %d", perPeerSent, s0.BytesSent)
	}
	s2 := comms[2].Stats()
	if s2.Peers[0].BytesRecv != 500 || s2.Peers[0].MsgsRecv != 2 {
		t.Errorf("rank 2 recv-from-0 stats = %+v", s2.Peers[0])
	}
}

// TestCollectiveTimings verifies that collective calls surface round
// counts and wall time through Stats, and that Reduce records per-round
// durations of the merge tree.
func TestCollectiveTimings(t *testing.T) {
	const n = 8
	type snap struct {
		rank  int
		stats Stats
	}
	results := make([]snap, n)
	err := Run(n, func(c Comm) error {
		if err := Barrier(c); err != nil {
			return err
		}
		concat := func(acc, other []byte) ([]byte, error) {
			return append(append([]byte(nil), acc...), other...), nil
		}
		if _, err := Allreduce(c, []byte{byte(c.Rank())}, concat); err != nil {
			return err
		}
		results[c.Rank()] = snap{c.Rank(), c.Stats()}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		s := r.stats
		// Barrier (3 rounds at n=8) + Reduce + Bcast from the Allreduce.
		if s.CollOps < 3 {
			t.Errorf("rank %d: CollOps = %d, want >= 3", r.rank, s.CollOps)
		}
		if s.CollRounds < 3 {
			t.Errorf("rank %d: CollRounds = %d, want >= 3 (barrier alone)", r.rank, s.CollRounds)
		}
		if s.CollTime <= 0 {
			t.Errorf("rank %d: CollTime = %v, want > 0", r.rank, s.CollTime)
		}
		if len(s.ReduceRounds) == 0 {
			t.Errorf("rank %d: no ReduceRounds recorded", r.rank)
		}
		// Rank 0 is the reduction root and runs every tree level.
		if r.rank == 0 && len(s.ReduceRounds) != 3 {
			t.Errorf("root: %d reduce rounds, want 3 (ceil log2 8)", len(s.ReduceRounds))
		}
		// Odd ranks leave after round one.
		if r.rank%2 == 1 && len(s.ReduceRounds) != 1 {
			t.Errorf("rank %d: %d reduce rounds, want 1", r.rank, len(s.ReduceRounds))
		}
	}
}

// TestWindowStats verifies put/wait accounting and the OnPut hook.
func TestWindowStats(t *testing.T) {
	const n = 2
	stats := make([]WindowStats, n)
	hooked := make([]int, n)
	err := Run(n, func(c Comm) error {
		me := c.Rank()
		peer := 1 - me
		win := OpenWindow(c, 12, c.NextSeq())
		win.OnPut = func(bytes int, d time.Duration) {
			hooked[me] += bytes
			if d < 0 {
				t.Errorf("negative put latency %v", d)
			}
		}
		if err := win.Put(peer, 0, []byte("abcd")); err != nil {
			return err
		}
		if err := win.Put(peer, 4, []byte("efgh")); err != nil {
			return err
		}
		if err := win.Put(me, 8, []byte("ijkl")); err != nil {
			return err
		}
		if _, err := win.Wait(); err != nil {
			return err
		}
		stats[me] = win.Stats()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range stats {
		if s.Puts != 3 || s.PutBytes != 12 {
			t.Errorf("rank %d: %+v, want 3 puts of 12 bytes", r, s)
		}
		if s.WaitTime < 0 {
			t.Errorf("rank %d: negative wait time", r)
		}
		if hooked[r] != 12 {
			t.Errorf("rank %d: OnPut saw %d bytes, want 12", r, hooked[r])
		}
	}
}
