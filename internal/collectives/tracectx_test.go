package collectives

import (
	"bytes"
	"testing"

	"dedupcr/internal/trace"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := &TraceContext{JobID: 0xDEADBEEFCAFE, DumpSeq: 7, Round: 42, Sender: 3, SpanID: 3<<40 | 99}
	dec, err := decodeTraceContext(encodeTraceContext(tc))
	if err != nil {
		t.Fatal(err)
	}
	if *dec != *tc {
		t.Fatalf("round trip: got %+v, want %+v", dec, tc)
	}
}

func TestTraceContextDecodeRejects(t *testing.T) {
	good := encodeTraceContext(&TraceContext{JobID: 1})
	if _, err := decodeTraceContext(good[:len(good)-1]); err == nil {
		t.Fatal("truncated context accepted")
	}
	if _, err := decodeTraceContext(append(good, 0)); err == nil {
		t.Fatal("oversized context accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 99
	if _, err := decodeTraceContext(bad); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestFrameTraceContextRoundTrip(t *testing.T) {
	tc := &TraceContext{JobID: 11, DumpSeq: 2, Round: 5, Sender: 1, SpanID: 1<<40 | 7}
	var buf bytes.Buffer
	if err := writeFrameTC(&buf, Tag(33), tc, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// A legacy frame on the same stream must interleave cleanly.
	if err := writeFrame(&buf, Tag(34), []byte("plain")); err != nil {
		t.Fatal(err)
	}
	tag, payload, gotTC, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tag != Tag(33) || string(payload) != "payload" {
		t.Fatalf("traced frame: tag %v payload %q", tag, payload)
	}
	if gotTC == nil || *gotTC != *tc {
		t.Fatalf("trace context: got %+v, want %+v", gotTC, tc)
	}
	tag, payload, gotTC, err = readFrame(&buf)
	if err != nil || tag != Tag(34) || string(payload) != "plain" || gotTC != nil {
		t.Fatalf("legacy frame after traced: tag %v payload %q tc %+v err %v", tag, payload, gotTC, err)
	}
}

func TestFrameTraceContextEmptyPayload(t *testing.T) {
	tc := &TraceContext{Sender: 2, SpanID: 5}
	var buf bytes.Buffer
	if err := writeFrameTC(&buf, Tag(1), tc, nil); err != nil {
		t.Fatal(err)
	}
	tag, payload, gotTC, err := readFrame(&buf)
	if err != nil || tag != Tag(1) || len(payload) != 0 {
		t.Fatalf("empty traced frame: tag %v payload %q err %v", tag, payload, err)
	}
	if gotTC == nil || gotTC.SpanID != 5 {
		t.Fatalf("trace context lost on empty payload: %+v", gotTC)
	}
}

// TestWireTraceEndToEnd sends over a live TCP pair with wire tracing
// enabled and asserts both flow anchors land in the tracers: a FlowStart
// on the sender and a FlowFinish with the same span id on the receiver.
func TestWireTraceEndToEnd(t *testing.T) {
	comms, err := StartLocalTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	tr := trace.New()
	recs := []*trace.Recorder{
		tr.Recorder(0, 0, "rank 0"),
		tr.Recorder(0, 1, "rank 1"),
	}
	comms[0].EnableWireTrace(77, 3, recs[0])
	comms[1].EnableWireTrace(77, 3, recs[1])

	if err := comms[0].Send(1, Tag(9), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := comms[1].Recv(0, Tag(9))
	if err != nil || string(got) != "hello" {
		t.Fatalf("recv: %q, %v", got, err)
	}

	// The receive-side flow anchor is recorded before the frame reaches
	// the mailbox, so once Recv returned both anchors are committed.
	var sendEv, recvEv *trace.Event
	for _, e := range tr.Events() {
		e := e
		switch e.FlowOp {
		case trace.FlowStart:
			sendEv = &e
		case trace.FlowFinish:
			recvEv = &e
		}
	}
	if sendEv == nil || recvEv == nil {
		t.Fatalf("flow anchors missing: send %+v recv %+v", sendEv, recvEv)
	}
	if sendEv.FlowID != recvEv.FlowID {
		t.Fatalf("flow ids differ: send %x recv %x", sendEv.FlowID, recvEv.FlowID)
	}
	if sendEv.Tid != 0 || recvEv.Tid != 1 {
		t.Fatalf("flow anchors on wrong tracks: send tid %d, recv tid %d", sendEv.Tid, recvEv.Tid)
	}
	if recvEv.Args["from"] != "0" || recvEv.Args["job"] != "77/3" {
		t.Fatalf("receive annotations wrong: %v", recvEv.Args)
	}

	// Self-sends and disabled tracing add no frames on the wire.
	comms[0].EnableWireTrace(0, 0, nil)
	if err := comms[0].Send(0, Tag(10), []byte("self")); err != nil {
		t.Fatal(err)
	}
	if _, err := comms[0].Recv(0, Tag(10)); err != nil {
		t.Fatal(err)
	}
}

// FuzzFrameTraceContextDecode locks in the compatibility argument of the
// extended frame header: legacy frames (bit 31 clear) must decode exactly
// as before with a nil trace context, traced frames must round-trip, and
// arbitrary header bytes must never panic or over-allocate.
func FuzzFrameTraceContextDecode(f *testing.F) {
	f.Add(uint32(17), []byte("payload"), true, uint64(1), uint32(2), uint32(3), uint64(4))
	f.Add(uint32(0), []byte{}, false, uint64(0), uint32(0), uint32(0), uint64(0))
	f.Add(uint32(1<<19), bytes.Repeat([]byte{0x5A}, 1000), true, ^uint64(0), ^uint32(0), ^uint32(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, tag uint32, payload []byte, traced bool, jobID uint64, dumpSeq uint32, round uint32, spanID uint64) {
		var tc *TraceContext
		if traced {
			tc = &TraceContext{JobID: jobID, DumpSeq: dumpSeq, Round: round, Sender: tag % 16, SpanID: spanID}
		}
		var buf bytes.Buffer
		if err := writeFrameTC(&buf, Tag(tag), tc, payload); err != nil {
			t.Fatalf("writeFrameTC: %v", err)
		}
		gotTag, gotPayload, gotTC, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if gotTag != Tag(tag) || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("frame mismatch: tag %v/%v, %d/%d bytes", gotTag, Tag(tag), len(gotPayload), len(payload))
		}
		if traced {
			if gotTC == nil || *gotTC != *tc {
				t.Fatalf("trace context mismatch: got %+v want %+v", gotTC, tc)
			}
		} else if gotTC != nil {
			t.Fatalf("legacy frame produced a trace context: %+v", gotTC)
		}

		// Arbitrary bytes as a stream: bounded, clean termination.
		r := bytes.NewReader(payload)
		for {
			_, p, _, err := readFrame(r)
			if err != nil {
				break
			}
			if len(p) > maxFrameSize {
				t.Fatalf("readFrame returned %d bytes above limit", len(p))
			}
		}
	})
}
