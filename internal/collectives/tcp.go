package collectives

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dedupcr/internal/obs"
	"dedupcr/internal/trace"
)

// TCPComm is a communicator over TCP sockets: the "fake MPI over sockets"
// transport. Each rank listens on one address; data connections are
// unidirectional and dialed lazily on first send, so a pair of ranks that
// exchange data in both directions holds two connections.
//
// Wire protocol, all integers big endian:
//
//	handshake (once per connection, dialer → accepter): u32 senderRank
//	frame: u32 payloadLen | u32 tag | payload
//
// Failure handling: a connection that dies mid-job marks its peer rank
// failed (drain-first: already-delivered frames stay consumable, only
// waits that would block on the dead peer error out), and a rank that
// aborts — context cancellation, local error, explicit Abort — pushes an
// abort frame (tagAbort) to every peer over short-lived dedicated
// connections, so the whole group unblocks within one collective step.
type TCPComm struct {
	rank  int
	addrs []string

	listener net.Listener
	box      *mailbox

	mu      sync.Mutex
	conns   map[int]*tcpSender // guarded by mu
	inbound []net.Conn         // guarded by mu

	seq    atomic.Uint32
	closed atomic.Bool
	// wtrace holds the causal wire-tracing configuration (nil = off);
	// spanSeq mints sender-unique flow ids.
	wtrace  atomic.Pointer[wireTraceState]
	spanSeq atomic.Uint64
	// aborted holds the abort/kill error once the communicator gave up;
	// every subsequent operation fails with it.
	aborted atomic.Pointer[CollectiveError]
	wg      sync.WaitGroup
	statsCounter
}

var _ Comm = (*TCPComm)(nil)
var _ aborter = (*TCPComm)(nil)
var _ killer = (*TCPComm)(nil)
var _ DeadlineSender = (*TCPComm)(nil)

// tcpSender is one outgoing connection with its write lock.
type tcpSender struct {
	mu   sync.Mutex
	conn net.Conn
}

// DialTCP creates the endpoint of rank within a group whose rank i listens
// on addrs[i]. It starts listening immediately; outgoing connections are
// established lazily. All ranks of the group must be constructed before
// any collective is attempted.
func DialTCP(rank int, addrs []string) (*TCPComm, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("collectives: rank %d out of range for %d addresses", rank, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("collectives: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	return newTCPComm(rank, addrs, ln), nil
}

// newTCPComm wires a communicator around an already-bound listener.
func newTCPComm(rank int, addrs []string, ln net.Listener) *TCPComm {
	c := &TCPComm{
		rank:     rank,
		addrs:    append([]string(nil), addrs...),
		listener: ln,
		box:      newMailbox(),
		conns:    make(map[int]*tcpSender),
	}
	c.initPeers(len(addrs))
	// Record the actual address in case addrs[rank] used port 0.
	c.addrs[rank] = ln.Addr().String()
	c.wg.Add(1)
	go c.acceptLoop()
	return c
}

// LocalAddr returns the address this rank is listening on.
func (c *TCPComm) LocalAddr() string { return c.addrs[c.rank] }

// Rank implements Comm.
func (c *TCPComm) Rank() int { return c.rank }

// Size implements Comm.
func (c *TCPComm) Size() int { return len(c.addrs) }

// NextSeq implements Comm.
func (c *TCPComm) NextSeq() uint32 { return c.seq.Add(1) }

// Stats implements Comm.
func (c *TCPComm) Stats() Stats { return c.snapshot() }

func (c *TCPComm) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.listener.Accept()
		if err != nil {
			return // listener closed
		}
		c.mu.Lock()
		if c.closed.Load() {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.inbound = append(c.inbound, conn)
		c.mu.Unlock()
		c.wg.Add(1)
		go c.readLoop(conn)
	}
}

// maxFrameSize bounds a single frame payload (1 GiB). The length prefix
// is attacker- (and bug-) controlled input on the accepting side; without
// a bound, a corrupt or malicious header makes the reader allocate up to
// 4 GiB before the stream is even validated. Window puts and reduction
// tables stay far below this in practice.
const maxFrameSize = 1 << 30

// writeFrame writes one frame to w: u32 payloadLen | u32 tag | payload.
// It performs two writes (header, payload) so large payloads are not
// copied; callers serialize writes per connection.
func writeFrame(w io.Writer, tag Tag, payload []byte) error {
	return writeFrameTC(w, tag, nil, payload)
}

// writeFrameTC is writeFrame with an optional trace-context header: when
// tc is non-nil, bit 31 of the length word is set and an u8-length-
// prefixed context block precedes the payload (see tracectx.go).
func writeFrameTC(w io.Writer, tag Tag, tc *TraceContext, payload []byte) error {
	if len(payload) > maxFrameSize {
		return fmt.Errorf("collectives: frame payload of %d bytes exceeds limit %d", len(payload), maxFrameSize)
	}
	var hdr [8]byte
	lenWord := uint32(len(payload))
	if tc != nil {
		lenWord |= flagTraceCtx
	}
	binary.BigEndian.PutUint32(hdr[:4], lenWord)
	binary.BigEndian.PutUint32(hdr[4:], uint32(tag))
	if tc != nil {
		enc := encodeTraceContext(tc)
		buf := make([]byte, 0, len(hdr)+1+len(enc))
		buf = append(buf, hdr[:]...)
		buf = append(buf, byte(len(enc)))
		buf = append(buf, enc...)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	} else if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// frameAllocChunk is the initial allocation for a frame payload. The
// buffer grows geometrically as bytes actually arrive, so a corrupt or
// hostile length prefix costs at most one chunk of memory before the
// short stream errors out — never the full declared size.
const frameAllocChunk = 1 << 20

// readFrame reads one frame from r, returning its tag, payload and
// optional trace context (nil on legacy frames without the bit-31 flag).
// It rejects frames whose declared payload exceeds maxFrameSize, and
// allocates progressively so the declared size is only ever backed by
// bytes that really arrived.
func readFrame(r io.Reader) (Tag, []byte, *TraceContext, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, nil, err
	}
	lenWord := binary.BigEndian.Uint32(hdr[:4])
	size := lenWord &^ flagTraceCtx
	tag := Tag(binary.BigEndian.Uint32(hdr[4:]))
	if size > maxFrameSize {
		return 0, nil, nil, fmt.Errorf("collectives: frame of %d bytes exceeds limit %d", size, maxFrameSize)
	}
	var tc *TraceContext
	if lenWord&flagTraceCtx != 0 {
		var tcLen [1]byte
		if _, err := io.ReadFull(r, tcLen[:]); err != nil {
			return 0, nil, nil, err
		}
		tcBuf := make([]byte, tcLen[0])
		if _, err := io.ReadFull(r, tcBuf); err != nil {
			return 0, nil, nil, err
		}
		var err error
		if tc, err = decodeTraceContext(tcBuf); err != nil {
			return 0, nil, nil, err
		}
	}
	total := int(size)
	step := total
	if step > frameAllocChunk {
		step = frameAllocChunk
	}
	payload := make([]byte, step)
	read := 0
	for {
		if _, err := io.ReadFull(r, payload[read:]); err != nil {
			return 0, nil, nil, err
		}
		read = len(payload)
		if read >= total {
			return tag, payload, tc, nil
		}
		next := read * 2
		if next > total {
			next = total
		}
		grown := make([]byte, next)
		copy(grown, payload)
		payload = grown
	}
}

// readLoop performs the handshake and pumps frames into the mailbox.
// A connection that errors mid-job marks its peer rank failed — unless
// the local communicator is already closed, killed or aborted, in which
// case the loss carries no information.
func (c *TCPComm) readLoop(conn net.Conn) {
	defer c.wg.Done()
	defer conn.Close()
	var hs [4]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		return
	}
	from := int(binary.BigEndian.Uint32(hs[:]))
	if from < 0 || from >= len(c.addrs) {
		return
	}
	// A fresh connection proves the peer alive: clear any stale death
	// mark (e.g. from a previous connection it dropped and redialed after
	// a per-put timeout).
	c.box.unfailPeer(from)
	for {
		tag, payload, tc, err := readFrame(conn)
		if err != nil {
			if c.closed.Load() || c.aborted.Load() != nil {
				return
			}
			c.box.failPeer(from, &CollectiveError{
				Ranks: []int{from},
				Cause: fmt.Errorf("%w: connection to rank %d lost: %v", ErrRankFailed, from, err),
			})
			return
		}
		if tag == tagAbort {
			// Failure dissemination from a peer: abort locally, but do
			// not re-gossip — the origin already notified everyone it
			// could reach, and the erroring layers above cascade anyway.
			if ranks, cause, derr := decodeAbortMsg(payload); derr == nil {
				obs.Logf(obs.KindAbort, c.rank, "", 0, "abort gossip from rank %d: ranks %v: %s", from, ranks, cause)
				c.noteAbort(&CollectiveError{
					Ranks: ranks,
					Cause: fmt.Errorf("rank %d reported: %s", from, cause),
				}, false)
			}
			continue
		}
		if tc != nil {
			// Receive-side flow anchor: links this rank's timeline back
			// to the sending rank's FlowStart with the same span id.
			if wt := c.wtrace.Load(); wt != nil {
				wt.tracer.FlowInstant("wire-recv", tc.SpanID, trace.FlowFinish, map[string]string{
					"from":  fmt.Sprintf("%d", tc.Sender),
					"round": fmt.Sprintf("%d", tc.Round),
					"job":   fmt.Sprintf("%d/%d", tc.JobID, tc.DumpSeq),
				})
			}
		}
		c.countRecv(from, len(payload))
		c.box.put(from, tag, payload)
	}
}

// dialTimeout bounds how long a rank waits for a peer process to start
// listening. Ranks of one job are launched together but not atomically,
// so the first send retries through the startup skew.
const dialTimeout = 30 * time.Second

// abortDialTimeout bounds the best-effort abort-frame delivery to one
// peer; a peer that cannot be reached that fast is likely dead anyway.
const abortDialTimeout = time.Second

// sender returns (dialing if needed) the outgoing connection to peer. A
// non-zero deadline additionally bounds the dial retry loop.
func (c *TCPComm) sender(peer int, deadline time.Time) (*tcpSender, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if s, ok := c.conns[peer]; ok {
		return s, nil
	}
	var conn net.Conn
	var err error
	limit := time.Now().Add(dialTimeout)
	if !deadline.IsZero() && deadline.Before(limit) {
		limit = deadline
	}
	for {
		if e := c.aborted.Load(); e != nil {
			return nil, e
		}
		if e := c.box.peerFailed(peer); e != nil {
			return nil, e
		}
		conn, err = net.Dial("tcp", c.addrs[peer])
		if err == nil {
			break
		}
		if c.closed.Load() || time.Now().After(limit) {
			return nil, fmt.Errorf("collectives: rank %d dial rank %d (%s): %w", c.rank, peer, c.addrs[peer], err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	var hs [4]byte
	binary.BigEndian.PutUint32(hs[:], uint32(c.rank))
	if _, err := conn.Write(hs[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("collectives: handshake with rank %d: %w", peer, err)
	}
	s := &tcpSender{conn: conn}
	c.conns[peer] = s
	return s, nil
}

// dropSender discards a connection after a write error, so the next send
// to that peer redials instead of reusing a stream with a partial frame.
func (c *TCPComm) dropSender(peer int, s *tcpSender) {
	c.mu.Lock()
	if c.conns[peer] == s {
		delete(c.conns, peer)
	}
	c.mu.Unlock()
	s.conn.Close()
}

// Send implements Comm.
func (c *TCPComm) Send(to int, tag Tag, data []byte) error {
	return c.SendDeadline(to, tag, data, time.Time{})
}

// SendDeadline implements DeadlineSender: like Send, but gives up once
// deadline passes (zero = no bound). A timed-out connection is dropped,
// so a retry redials a clean stream.
func (c *TCPComm) SendDeadline(to int, tag Tag, data []byte, deadline time.Time) error {
	if err := checkPeer(c, to); err != nil {
		return err
	}
	if e := c.aborted.Load(); e != nil {
		return e
	}
	if to == c.rank {
		// Self-send: deliver locally without touching the network.
		msg := make([]byte, len(data))
		copy(msg, data)
		c.box.put(c.rank, tag, msg)
		return nil
	}
	s, err := c.sender(to, deadline)
	if err != nil {
		return err
	}
	// Causal wire tracing: stamp the frame with this rank's context and
	// record the sending side of the flow arrow.
	var tc *TraceContext
	if wt := c.wtrace.Load(); wt != nil {
		tc = &TraceContext{
			JobID:   wt.jobID,
			DumpSeq: wt.dumpSeq,
			Round:   uint32(c.collRounds.Load()),
			Sender:  uint32(c.rank),
			SpanID:  c.nextSpanID(),
		}
		wt.tracer.FlowInstant("wire-send", tc.SpanID, trace.FlowStart, map[string]string{
			"to":    fmt.Sprintf("%d", to),
			"round": fmt.Sprintf("%d", tc.Round),
		})
	}
	s.mu.Lock()
	if !deadline.IsZero() {
		s.conn.SetWriteDeadline(deadline)
	}
	werr := writeFrameTC(s.conn, tag, tc, data)
	if werr == nil && !deadline.IsZero() {
		s.conn.SetWriteDeadline(time.Time{})
	}
	s.mu.Unlock()
	if werr != nil {
		c.dropSender(to, s)
		if e := c.aborted.Load(); e != nil {
			return e
		}
		return fmt.Errorf("collectives: send to rank %d: %w", to, werr)
	}
	c.countSend(to, len(data))
	return nil
}

// Recv implements Comm. The AnyRank wildcard is accepted for window tags.
func (c *TCPComm) Recv(from int, tag Tag) ([]byte, error) {
	if err := checkRecv(c, from, tag); err != nil {
		return nil, err
	}
	return c.box.get(from, tag)
}

// noteAbort records the first abort, fails every local wait, and poisons
// outgoing connections so writers blocked on slow peers unblock. When
// gossip is set (local aborts), the failure is additionally disseminated
// to all peers in the background.
func (c *TCPComm) noteAbort(e *CollectiveError, gossip bool) {
	if !c.aborted.CompareAndSwap(nil, e) {
		return
	}
	origin := "received"
	if gossip {
		origin = "local"
	}
	obs.Logf(obs.KindAbort, c.rank, e.Phase, 0, "abort (%s): %v", origin, e)
	c.box.abort(e)
	c.mu.Lock()
	for _, s := range c.conns {
		s.conn.SetDeadline(time.Now())
	}
	c.mu.Unlock()
	if gossip {
		c.gossipAbort(e)
	}
}

// gossipAbort pushes the abort frame to every peer over short-lived
// dedicated connections (the cached senders may be blocked or already
// poisoned). Strictly best effort: unreachable peers are skipped after
// abortDialTimeout, and the goroutines outlive neither their dials nor
// their single frame write.
func (c *TCPComm) gossipAbort(e *CollectiveError) {
	cause := ""
	if e.Cause != nil {
		cause = e.Cause.Error()
	}
	payload := encodeAbortMsg(e.Ranks, cause)
	for peer := range c.addrs {
		if peer == c.rank {
			continue
		}
		go func(addr string) {
			conn, err := net.DialTimeout("tcp", addr, abortDialTimeout)
			if err != nil {
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(abortDialTimeout))
			var hs [4]byte
			binary.BigEndian.PutUint32(hs[:], uint32(c.rank))
			if _, err := conn.Write(hs[:]); err != nil {
				return
			}
			writeFrame(conn, tagAbort, payload)
		}(c.addrs[peer])
	}
}

// abortComm implements the collective abort protocol: local failure plus
// best-effort dissemination.
func (c *TCPComm) abortComm(e *CollectiveError) { c.noteAbort(e, true) }

// killComm simulates this rank's crash: everything local fails and every
// connection drops abruptly, with no notification — peers detect the
// death through connection loss, exactly like a real process crash.
func (c *TCPComm) killComm(e *CollectiveError) {
	if !c.aborted.CompareAndSwap(nil, e) {
		return
	}
	obs.Logf(obs.KindKill, c.rank, e.Phase, 0, "comm killed: %v", e)
	obs.Trigger(obs.Failure{
		Kind: "kill", Rank: c.rank, Ranks: e.Ranks, Phase: e.Phase, Cause: e.Error(),
	})
	c.box.abort(e)
	c.listener.Close()
	c.mu.Lock()
	for _, s := range c.conns {
		s.conn.Close()
	}
	for _, conn := range c.inbound {
		conn.Close()
	}
	c.mu.Unlock()
}

// Close implements Comm. It closes the listener and all connections;
// blocked receivers fail with ErrClosed.
func (c *TCPComm) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	c.listener.Close()
	c.mu.Lock()
	for _, s := range c.conns {
		s.conn.Close()
	}
	for _, conn := range c.inbound {
		conn.Close()
	}
	c.mu.Unlock()
	c.box.close()
	c.wg.Wait()
	return nil
}

// StartLocalTCP creates a fully configured local TCP group of n ranks on
// loopback addresses with ephemeral ports, used by tests, examples and the
// sockets demo. The caller owns the returned comms and must Close all of
// them.
func StartLocalTCP(n int) ([]*TCPComm, error) {
	if n <= 0 {
		return nil, fmt.Errorf("collectives: group size %d must be positive", n)
	}
	// Reserve ports by listening first, then hand the concrete address
	// list to every rank.
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	comms := make([]*TCPComm, n)
	for i := range comms {
		comms[i] = newTCPComm(i, addrs, listeners[i])
	}
	return comms, nil
}
