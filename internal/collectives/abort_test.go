package collectives

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitRanks runs body once per rank of the given comms concurrently and
// collects the per-rank errors, failing the test if any rank is still
// blocked after the deadline — the anti-deadlock assertion of the abort
// protocol.
func waitRanks(t *testing.T, comms []Comm, deadline time.Duration, body func(c Comm) error) []error {
	t.Helper()
	errs := make([]error, len(comms))
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i, c := range comms {
		wg.Add(1)
		go func(i int, c Comm) {
			defer wg.Done()
			errs[i] = body(c)
		}(i, c)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(deadline):
		t.Fatalf("ranks still blocked after %v", deadline)
	}
	return errs
}

func inprocComms(t *testing.T, n int) (*Group, []Comm) {
	t.Helper()
	g, err := NewGroup(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	comms := make([]Comm, n)
	for i := range comms {
		c, err := g.Comm(i)
		if err != nil {
			t.Fatal(err)
		}
		comms[i] = c
	}
	return g, comms
}

func tcpComms(t *testing.T, n int) []Comm {
	t.Helper()
	tc, err := StartLocalTCP(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, c := range tc {
			c.Close()
		}
	})
	comms := make([]Comm, n)
	for i, c := range tc {
		comms[i] = c
	}
	return comms
}

// TestAbortUnblocksInproc: ranks 1..n-1 block in a barrier that can never
// complete (rank 0 never joins); rank 0's abort must unblock them all,
// promptly and with the typed error.
func TestAbortUnblocksInproc(t *testing.T) {
	const n = 4
	_, comms := inprocComms(t, n)
	cause := errors.New("operator gave up")
	errs := waitRanks(t, comms, 2*time.Second, func(c Comm) error {
		if c.Rank() == 0 {
			time.Sleep(50 * time.Millisecond)
			Abort(c, cause)
			return nil
		}
		return Barrier(c)
	})
	for r := 1; r < n; r++ {
		if !errors.Is(errs[r], ErrAborted) {
			t.Errorf("rank %d: %v, want ErrAborted", r, errs[r])
		}
		if !errors.Is(errs[r], cause) {
			t.Errorf("rank %d lost the abort cause: %v", r, errs[r])
		}
	}
}

// TestKillUnblocksInproc: killing one rank mid-collective must surface on
// every survivor as ErrRankFailed naming the dead rank.
func TestKillUnblocksInproc(t *testing.T) {
	const n, victim = 4, 2
	_, comms := inprocComms(t, n)
	errs := waitRanks(t, comms, 2*time.Second, func(c Comm) error {
		if c.Rank() == victim {
			time.Sleep(50 * time.Millisecond)
			Kill(c, errors.New("simulated crash"))
			return nil
		}
		// Cascade exactly like the dump pipeline: a rank that observes a
		// failure aborts, so peers blocked on *it* unblock too.
		if err := Barrier(c); err != nil {
			Abort(c, err)
			return err
		}
		return nil
	})
	for r := 0; r < n; r++ {
		if r == victim {
			continue
		}
		if !errors.Is(errs[r], ErrRankFailed) {
			t.Errorf("rank %d: %v, want ErrRankFailed", r, errs[r])
		}
		if ranks := FailedRanks(errs[r]); len(ranks) != 1 || ranks[0] != victim {
			t.Errorf("rank %d blames %v, want [%d]", r, ranks, victim)
		}
	}
}

// TestAbortUnblocksTCP is the socket-transport version of the abort
// dissemination: the aborting rank's gossip must reach peers that are
// blocked in a barrier, within the deadline.
func TestAbortUnblocksTCP(t *testing.T) {
	const n = 4
	comms := tcpComms(t, n)
	cause := errors.New("deadline policy")
	errs := waitRanks(t, comms, 2*time.Second, func(c Comm) error {
		if c.Rank() == 0 {
			time.Sleep(50 * time.Millisecond)
			Abort(c, cause)
			return nil
		}
		return Barrier(c)
	})
	for r := 1; r < n; r++ {
		if !errors.Is(errs[r], ErrAborted) {
			t.Errorf("rank %d: %v, want ErrAborted", r, errs[r])
		}
	}
}

// TestKillUnblocksTCP: a killed TCP rank drops its connections with no
// notification; the survivors must detect the death through connection
// loss and fail their pending receives rather than hang.
func TestKillUnblocksTCP(t *testing.T) {
	const n, victim = 4, 1
	comms := tcpComms(t, n)
	errs := waitRanks(t, comms, 4*time.Second, func(c Comm) error {
		// First barrier establishes the full connection mesh; connection
		// loss is only observable on connections that exist.
		if err := Barrier(c); err != nil {
			return fmt.Errorf("warm-up barrier: %w", err)
		}
		if c.Rank() == victim {
			Kill(c, errors.New("power loss"))
			return nil
		}
		if err := Barrier(c); err != nil {
			Abort(c, err)
			return err
		}
		return nil
	})
	for r := 0; r < n; r++ {
		if r == victim {
			continue
		}
		if errs[r] == nil {
			t.Errorf("rank %d completed a barrier with a dead participant", r)
		}
	}
}

// TestWatchContext: cancelling the watched context aborts the comm with
// the cancellation cause; the stop function is idempotent and a stopped
// watcher never aborts.
func TestWatchContext(t *testing.T) {
	_, comms := inprocComms(t, 2)
	cause := errors.New("user hit ctrl-c")
	ctx, cancel := context.WithCancelCause(context.Background())
	stop := WatchContext(ctx, comms[0])
	defer stop()
	cancel(cause)
	errs := waitRanks(t, comms, 2*time.Second, func(c Comm) error {
		return Barrier(c)
	})
	for r, err := range errs {
		if !errors.Is(err, ErrAborted) || !errors.Is(err, cause) {
			t.Errorf("rank %d: %v, want aborted with cause", r, err)
		}
	}

	// A stopped watcher must not abort on a later cancellation.
	_, comms2 := inprocComms(t, 2)
	ctx2, cancel2 := context.WithCancel(context.Background())
	stop2 := WatchContext(ctx2, comms2[0])
	stop2()
	stop2() // idempotent
	cancel2()
	time.Sleep(20 * time.Millisecond)
	if err := comms2[0].Send(1, 7, []byte("x")); err != nil {
		t.Errorf("send after released watcher: %v", err)
	}

	// nil contexts and contexts without Done are no-ops.
	WatchContext(nil, comms2[0])()
	WatchContext(context.Background(), comms2[0])()
}

// TestRunCtxCancelStorm hammers the context-cancellation path under the
// race detector: many short groups, each cancelled at a slightly
// different point of a barrier loop, must all terminate and leak no
// goroutines.
func TestRunCtxCancelStorm(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 30; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func(delay time.Duration) {
			time.Sleep(delay)
			cancel()
		}(time.Duration(i%7) * 100 * time.Microsecond)
		err := RunCtx(ctx, 4, func(ctx context.Context, c Comm) error {
			for {
				if err := Barrier(c); err != nil {
					return err
				}
			}
		})
		if err == nil {
			t.Fatalf("iteration %d: cancelled run reported success", i)
		}
		cancel()
	}
	// Give transient teardown goroutines a moment, then check for leaks.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+5 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before storm, %d after", before, runtime.NumGoroutine())
}

// TestFaultPlanDeterminism: the same plan, seed and serial operation
// order must fire the same faults. Self-sends on a 1-rank group make the
// drop pattern observable: a marker sent after the probes bounds the
// drain (per-stream FIFO order is guaranteed).
func TestFaultPlanDeterminism(t *testing.T) {
	const n = 64
	run := func() map[int]bool {
		g, err := NewGroup(1)
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		base, _ := g.Comm(0)
		c := InjectFaults(base, FaultPlan{Seed: 42, Faults: []Fault{
			{Kind: FaultDrop, Rank: AnyRank, Peer: AnyRank, Prob: 0.5},
		}})
		for i := 0; i < n; i++ {
			if err := c.Send(0, Tag(100), []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := base.Send(0, Tag(100), []byte{0xFF}); err != nil {
			t.Fatal(err)
		}
		got := make(map[int]bool)
		for {
			data, err := base.Recv(0, Tag(100))
			if err != nil {
				t.Fatal(err)
			}
			if data[0] == 0xFF {
				return got
			}
			got[int(data[0])] = true
		}
	}
	a, b := run(), run()
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			t.Fatalf("fault schedule diverged at op %d", i)
		}
	}
	if len(a) == 0 || len(a) == n {
		t.Errorf("Prob=0.5 delivered %d/%d sends; expected a mix", len(a), n)
	}
}

// TestFaultKindsThroughComm covers drop, delay and error end to end on a
// 2-rank group.
func TestFaultKindsThroughComm(t *testing.T) {
	_, comms := inprocComms(t, 2)

	// FaultError: the first send fails transiently, the second succeeds.
	c0 := InjectFaults(comms[0], FaultPlan{Faults: []Fault{
		{Kind: FaultError, Rank: AnyRank, Peer: AnyRank, Times: 1},
	}})
	err := c0.Send(1, 9, []byte("a"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error missing: %v", err)
	}
	if !IsTransient(err) {
		t.Error("injected transient error classified as final")
	}
	if err := c0.Send(1, 9, []byte("b")); err != nil {
		t.Fatalf("post-fault send: %v", err)
	}
	if data, err := comms[1].Recv(0, 9); err != nil || !bytes.Equal(data, []byte("b")) {
		t.Fatalf("recv got %q, %v", data, err)
	}

	// FaultDelay: the matched op takes at least the configured delay.
	c1 := InjectFaults(comms[0], FaultPlan{Faults: []Fault{
		{Kind: FaultDelay, Rank: AnyRank, Peer: AnyRank, Delay: 30 * time.Millisecond, Times: 1},
	}})
	start := time.Now()
	if err := c1.Send(1, 10, nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("delayed send returned in %v", d)
	}
	if _, err := comms[1].Recv(0, 10); err != nil {
		t.Fatal(err)
	}

	// Phase scoping: a fault bound to phase "put" stays dormant elsewhere.
	c2 := InjectFaults(comms[0], FaultPlan{Faults: []Fault{
		{Kind: FaultError, Rank: AnyRank, Peer: AnyRank, Phase: "put"},
	}})
	NotePhase(c2, "reduction")
	if err := c2.Send(1, 11, nil); err != nil {
		t.Fatalf("fault fired outside its phase: %v", err)
	}
	if _, err := comms[1].Recv(0, 11); err != nil {
		t.Fatal(err)
	}
	NotePhase(c2, "put")
	if err := c2.Send(1, 11, nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("fault did not fire in its phase: %v", err)
	}
}

// TestIsTransient pins the retryability classification.
func TestIsTransient(t *testing.T) {
	ce := &CollectiveError{Cause: errors.New("x")}
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("connection refused"), true},
		{fmt.Errorf("wrap: %w", ErrInjected), true},
		{ce, false},
		{fmt.Errorf("wrap: %w", ErrClosed), false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
	} {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("IsTransient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// FuzzAbortMessage fuzzes the failure-dissemination wire codec: encoded
// notifications must round-trip, and arbitrary peer-controlled bytes must
// decode cleanly or fail cleanly — never panic or over-allocate.
func FuzzAbortMessage(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeAbortMsg([]int{3, 1, 3}, "rank 3 died"))
	f.Add(encodeAbortMsg(nil, ""))
	f.Add([]byte{abortMsgVersion, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		ranks, cause, err := decodeAbortMsg(data)
		if err != nil {
			return
		}
		if len(cause) > maxAbortCause {
			t.Fatalf("decoded cause of %d bytes above limit", len(cause))
		}
		for i := 1; i < len(ranks); i++ {
			if ranks[i] <= ranks[i-1] {
				t.Fatalf("decoded ranks not strictly ascending: %v", ranks)
			}
		}
		// Re-encoding a decoded message must be stable.
		re := encodeAbortMsg(ranks, cause)
		ranks2, cause2, err := decodeAbortMsg(re)
		if err != nil {
			t.Fatalf("re-encoded message rejected: %v", err)
		}
		if cause2 != cause || len(ranks2) != len(ranks) {
			t.Fatalf("re-encode mismatch: %v/%q vs %v/%q", ranks2, cause2, ranks, cause)
		}
	})
}
