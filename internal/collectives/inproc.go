package collectives

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"dedupcr/internal/obs"
)

// Group is an in-process communicator group: Size ranks living in one OS
// process, each driven by its own goroutine, exchanging messages through
// shared mailboxes. It simulates the paper's MPI job (hundreds of ranks)
// on a single machine.
type Group struct {
	size   int
	boxes  []*mailbox
	closed atomic.Bool
}

// NewGroup creates an in-process group of n ranks.
func NewGroup(n int) (*Group, error) {
	if n <= 0 {
		return nil, fmt.Errorf("collectives: group size %d must be positive", n)
	}
	g := &Group{size: n, boxes: make([]*mailbox, n)}
	for i := range g.boxes {
		g.boxes[i] = newMailbox()
	}
	return g, nil
}

// Comm returns the communicator endpoint of the given rank.
func (g *Group) Comm(rank int) (*InprocComm, error) {
	if rank < 0 || rank >= g.size {
		return nil, fmt.Errorf("collectives: rank %d out of range [0,%d)", rank, g.size)
	}
	c := &InprocComm{group: g, rank: rank}
	c.initPeers(g.size)
	return c, nil
}

// Close shuts the group down; blocked receivers fail with ErrClosed.
func (g *Group) Close() error {
	if g.closed.CompareAndSwap(false, true) {
		for _, b := range g.boxes {
			b.close()
		}
	}
	return nil
}

// abortAll delivers the abort to every rank's mailbox: in process,
// failure dissemination is instantaneous.
func (g *Group) abortAll(e *CollectiveError) {
	for _, b := range g.boxes {
		b.abort(e)
	}
}

// failRank simulates the crash of one rank: its own mailbox aborts (the
// dead rank can do nothing anymore) and every peer marks it failed —
// queued messages from it stay deliverable, but any wait that depends on
// it errors out.
func (g *Group) failRank(rank int, e *CollectiveError) {
	for r, b := range g.boxes {
		if r == rank {
			b.abort(e)
		} else {
			b.failPeer(rank, e)
		}
	}
}

// InprocComm is one rank's endpoint into an in-process Group.
type InprocComm struct {
	group *Group
	rank  int
	seq   atomic.Uint32
	statsCounter
}

var _ Comm = (*InprocComm)(nil)
var _ aborter = (*InprocComm)(nil)
var _ killer = (*InprocComm)(nil)

// Rank implements Comm.
func (c *InprocComm) Rank() int { return c.rank }

// Size implements Comm.
func (c *InprocComm) Size() int { return c.group.size }

// NextSeq implements Comm.
func (c *InprocComm) NextSeq() uint32 { return c.seq.Add(1) }

// Stats implements Comm.
func (c *InprocComm) Stats() Stats { return c.snapshot() }

// abortComm implements the collective abort protocol for the in-process
// transport: every rank of the group observes the failure immediately.
func (c *InprocComm) abortComm(e *CollectiveError) {
	obs.Logf(obs.KindAbort, c.rank, e.Phase, 0, "abort (local): %v", e)
	c.group.abortAll(e)
}

// killComm simulates this rank's crash.
func (c *InprocComm) killComm(e *CollectiveError) {
	obs.Logf(obs.KindKill, c.rank, e.Phase, 0, "comm killed: %v", e)
	obs.Trigger(obs.Failure{
		Kind: "kill", Rank: c.rank, Ranks: e.Ranks, Phase: e.Phase, Cause: e.Error(),
	})
	c.group.failRank(c.rank, e)
}

// Send implements Comm. The payload is copied, so the caller may reuse
// data immediately (matching the TCP transport's semantics).
func (c *InprocComm) Send(to int, tag Tag, data []byte) error {
	if err := checkPeer(c, to); err != nil {
		return err
	}
	if c.group.closed.Load() {
		return ErrClosed
	}
	// A dead or aborted rank stops sending: its peers either already
	// observed the failure or will, and failing fast here unblocks
	// collectives at their next step instead of their next receive.
	if e := c.group.boxes[c.rank].abortErr(); e != nil {
		return e
	}
	msg := make([]byte, len(data))
	copy(msg, data)
	c.group.boxes[to].put(c.rank, tag, msg)
	if to != c.rank {
		c.countSend(to, len(data))
	}
	return nil
}

// Recv implements Comm. The AnyRank wildcard is accepted for window tags.
func (c *InprocComm) Recv(from int, tag Tag) ([]byte, error) {
	if err := checkRecv(c, from, tag); err != nil {
		return nil, err
	}
	data, err := c.group.boxes[c.rank].get(from, tag)
	if err != nil {
		return nil, err
	}
	if from != c.rank {
		c.countRecv(from, len(data))
	}
	return data, nil
}

// Close implements Comm. Closing any rank's endpoint closes the group.
func (c *InprocComm) Close() error { return c.group.Close() }

// Run executes body once per rank on a fresh in-process group of n ranks,
// one goroutine per rank, and waits for all of them. It returns the first
// non-nil error (by rank order). The group is closed before Run returns.
//
//dedupvet:compat context-less convenience wrapper over RunCtx
func Run(n int, body func(Comm) error) error {
	return RunCtx(context.Background(), n, func(_ context.Context, c Comm) error {
		return body(c)
	})
}

// RunCtx is Run with cancellation: when ctx is cancelled the whole group
// aborts, so every rank blocked in a collective unblocks promptly with a
// typed *CollectiveError instead of deadlocking. The context is also
// passed to each rank's body for its own use.
func RunCtx(ctx context.Context, n int, body func(context.Context, Comm) error) error {
	g, err := NewGroup(n)
	if err != nil {
		return err
	}
	defer g.Close()

	stop := func() {}
	if ctx != nil && ctx.Done() != nil {
		watch := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				g.abortAll(&CollectiveError{Cause: context.Cause(ctx)})
			case <-watch:
			}
		}()
		var once sync.Once
		stop = func() { once.Do(func() { close(watch) }) }
	}
	defer stop()

	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		comm, err := g.Comm(r)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(rank int, c Comm) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("rank %d panicked: %v", rank, p)
					// Unblock peers stuck in Recv so Run terminates.
					g.Close()
				}
			}()
			errs[rank] = body(ctx, c)
		}(r, comm)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return nil
}
