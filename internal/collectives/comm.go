// Package collectives is a small MPI-like runtime: ranks, tagged
// point-to-point messages, tree-based collective operations and one-sided
// windows, over two interchangeable transports — an in-process transport
// (goroutines and channels, used to simulate hundreds of ranks in one
// process) and a TCP transport (length-prefixed frames, used to run real
// multi-process collective dumps over sockets).
//
// The collective algorithms (Barrier, Bcast, Gather, Allgather, Allreduce)
// are written once against the Comm interface and shared by both
// transports.
package collectives

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Tag labels a message stream between two ranks. User tags must be below
// TagUserLimit; the runtime reserves the rest for collectives and windows.
type Tag uint32

// Reserved tag space.
const (
	// TagUserLimit is the first reserved tag; user code must stay below.
	TagUserLimit Tag = 1 << 24

	tagCollBase Tag = TagUserLimit      // collective ops (sequence-salted)
	tagWinBase  Tag = TagUserLimit << 1 // one-sided window traffic
)

// ErrClosed is returned by operations on a closed communicator.
var ErrClosed = errors.New("collectives: communicator closed")

// Comm is a communicator: a fixed group of ranks 0..Size()-1 that can
// exchange tagged messages. All collective operations in this package are
// built on this interface.
//
// A Comm value belongs to exactly one rank; every rank of the group holds
// its own Comm. Methods may be called from multiple goroutines of that
// rank, but matching (from, tag) streams must not be shared.
type Comm interface {
	// Rank returns this process's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the group.
	Size() int
	// Send delivers data to rank `to` under tag. It may block until the
	// transport accepts the message, but never until the receiver calls
	// Recv (buffered semantics). data is not retained after Send returns.
	Send(to int, tag Tag, data []byte) error
	// Recv blocks until a message from rank `from` with tag arrives and
	// returns its payload. Messages from one sender under one tag arrive
	// in send order.
	Recv(from int, tag Tag) ([]byte, error)
	// NextSeq returns a per-communicator sequence number used to salt
	// collective tags. All ranks must invoke collectives in the same
	// order (SPMD), so equal sequence numbers identify the same
	// collective call site.
	NextSeq() uint32
	// Stats returns a snapshot of this rank's transport counters.
	Stats() Stats
	// Close releases the communicator. Pending Recvs fail with ErrClosed.
	Close() error
}

// Stats counts transport traffic for one rank. The experiment harness
// feeds these into the performance model, so they must reflect every byte
// a rank pushes to or pulls from its peers (self-sends are free and not
// counted).
type Stats struct {
	BytesSent int64
	BytesRecv int64
	MsgsSent  int64
	MsgsRecv  int64
	// CollOps, CollRounds and CollTime aggregate the collective calls
	// this rank participated in: one op per Barrier/Bcast/Gather/
	// Allgather/Reduce entered, the rounds it personally ran, and the
	// wall time it spent inside them.
	CollOps    int64
	CollRounds int64
	CollTime   time.Duration
	// ReduceRounds holds the per-round durations of this rank's most
	// recent Reduce (or the reduction half of an Allreduce): the
	// per-round timing of the paper's HMERGE tree. A rank that leaves
	// the tree early reports only the rounds it ran.
	ReduceRounds []time.Duration
	// LastBarrierExit is the wall-clock instant this rank left its most
	// recent Barrier. Barriers are the tightest synchronization points
	// the runtime has — every rank exits within one dissemination sweep —
	// so the cluster telemetry plane compares these stamps across ranks
	// to estimate inter-node clock offsets. Zero before the first
	// barrier.
	LastBarrierExit time.Time
	// Peers breaks traffic down by peer rank (index = rank). Self
	// traffic stays uncounted, like the totals. Receives of wildcard
	// (window) traffic are attributed where the transport knows the
	// sender: TCP counts them on the delivering connection, while the
	// in-process transport files them under the wildcard and only the
	// totals see them — sender-side attribution is exact on both.
	Peers []PeerStats
}

// PeerStats is one peer's slice of a rank's transport traffic.
type PeerStats struct {
	BytesSent int64
	BytesRecv int64
	MsgsSent  int64
	MsgsRecv  int64
}

// statsCounter is embedded by transports to track Stats atomically.
// initPeers must be called once at construction with the group size.
type statsCounter struct {
	bytesSent atomic.Int64
	bytesRecv atomic.Int64
	msgsSent  atomic.Int64
	msgsRecv  atomic.Int64

	collOps    atomic.Int64
	collRounds atomic.Int64
	collNanos  atomic.Int64

	peers []peerCounter

	// barrierExit is the unix-nano wall stamp of the latest Barrier exit
	// (0 = none yet).
	barrierExit atomic.Int64

	reduceMu     sync.Mutex
	reduceRounds []time.Duration // guarded by reduceMu
}

// peerCounter is the per-peer slice of a statsCounter.
type peerCounter struct {
	bytesSent atomic.Int64
	bytesRecv atomic.Int64
	msgsSent  atomic.Int64
	msgsRecv  atomic.Int64
}

func (s *statsCounter) initPeers(n int) {
	s.peers = make([]peerCounter, n)
}

func (s *statsCounter) countSend(to, n int) {
	s.bytesSent.Add(int64(n))
	s.msgsSent.Add(1)
	if to >= 0 && to < len(s.peers) {
		s.peers[to].bytesSent.Add(int64(n))
		s.peers[to].msgsSent.Add(1)
	}
}

func (s *statsCounter) countRecv(from, n int) {
	s.bytesRecv.Add(int64(n))
	s.msgsRecv.Add(1)
	if from >= 0 && from < len(s.peers) {
		s.peers[from].bytesRecv.Add(int64(n))
		s.peers[from].msgsRecv.Add(1)
	}
}

// countColl records one finished collective op: how many rounds this rank
// ran and how long it spent inside the call.
func (s *statsCounter) countColl(rounds int, d time.Duration) {
	s.collOps.Add(1)
	s.collRounds.Add(int64(rounds))
	s.collNanos.Add(d.Nanoseconds())
}

// noteBarrierExit stamps the completion of one Barrier.
func (s *statsCounter) noteBarrierExit(t time.Time) {
	s.barrierExit.Store(t.UnixNano())
}

// setReduceRounds replaces the per-round timing record of the most recent
// reduction.
func (s *statsCounter) setReduceRounds(rounds []time.Duration) {
	s.reduceMu.Lock()
	s.reduceRounds = rounds
	s.reduceMu.Unlock()
}

func (s *statsCounter) snapshot() Stats {
	st := Stats{
		BytesSent:  s.bytesSent.Load(),
		BytesRecv:  s.bytesRecv.Load(),
		MsgsSent:   s.msgsSent.Load(),
		MsgsRecv:   s.msgsRecv.Load(),
		CollOps:    s.collOps.Load(),
		CollRounds: s.collRounds.Load(),
		CollTime:   time.Duration(s.collNanos.Load()),
	}
	if ns := s.barrierExit.Load(); ns != 0 {
		st.LastBarrierExit = time.Unix(0, ns)
	}
	s.reduceMu.Lock()
	st.ReduceRounds = append([]time.Duration(nil), s.reduceRounds...)
	s.reduceMu.Unlock()
	if len(s.peers) > 0 {
		st.Peers = make([]PeerStats, len(s.peers))
		for i := range s.peers {
			st.Peers[i] = PeerStats{
				BytesSent: s.peers[i].bytesSent.Load(),
				BytesRecv: s.peers[i].bytesRecv.Load(),
				MsgsSent:  s.peers[i].msgsSent.Load(),
				MsgsRecv:  s.peers[i].msgsRecv.Load(),
			}
		}
	}
	return st
}

// collRecorder is the internal hook the collective algorithms use to
// surface round timings through Stats. Both transports implement it by
// embedding statsCounter; third-party Comm implementations simply miss
// out on collective timing.
type collRecorder interface {
	countColl(rounds int, d time.Duration)
	setReduceRounds(rounds []time.Duration)
	noteBarrierExit(t time.Time)
}

// checkPeer validates a peer rank.
func checkPeer(c Comm, peer int) error {
	if peer < 0 || peer >= c.Size() {
		return fmt.Errorf("collectives: peer rank %d out of range [0,%d)", peer, c.Size())
	}
	return nil
}

// checkRecv validates a receive: the AnyRank wildcard is only meaningful
// for wildcard-delivery tags (transports file those under AnyRank), and a
// wildcard tag can ONLY be received with AnyRank — a specific-sender
// receive on it would block forever.
func checkRecv(c Comm, from int, tag Tag) error {
	wild := tag >= tagWinBase
	if from == AnyRank {
		if !wild {
			return fmt.Errorf("collectives: AnyRank receive on non-wildcard tag %#x", uint32(tag))
		}
		return nil
	}
	if wild {
		return fmt.Errorf("collectives: wildcard tag %#x must be received with AnyRank", uint32(tag))
	}
	return checkPeer(c, from)
}
