// Package collectives is a small MPI-like runtime: ranks, tagged
// point-to-point messages, tree-based collective operations and one-sided
// windows, over two interchangeable transports — an in-process transport
// (goroutines and channels, used to simulate hundreds of ranks in one
// process) and a TCP transport (length-prefixed frames, used to run real
// multi-process collective dumps over sockets).
//
// The collective algorithms (Barrier, Bcast, Gather, Allgather, Allreduce)
// are written once against the Comm interface and shared by both
// transports.
package collectives

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Tag labels a message stream between two ranks. User tags must be below
// TagUserLimit; the runtime reserves the rest for collectives and windows.
type Tag uint32

// Reserved tag space.
const (
	// TagUserLimit is the first reserved tag; user code must stay below.
	TagUserLimit Tag = 1 << 24

	tagCollBase Tag = TagUserLimit      // collective ops (sequence-salted)
	tagWinBase  Tag = TagUserLimit << 1 // one-sided window traffic
)

// ErrClosed is returned by operations on a closed communicator.
var ErrClosed = errors.New("collectives: communicator closed")

// Comm is a communicator: a fixed group of ranks 0..Size()-1 that can
// exchange tagged messages. All collective operations in this package are
// built on this interface.
//
// A Comm value belongs to exactly one rank; every rank of the group holds
// its own Comm. Methods may be called from multiple goroutines of that
// rank, but matching (from, tag) streams must not be shared.
type Comm interface {
	// Rank returns this process's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the group.
	Size() int
	// Send delivers data to rank `to` under tag. It may block until the
	// transport accepts the message, but never until the receiver calls
	// Recv (buffered semantics). data is not retained after Send returns.
	Send(to int, tag Tag, data []byte) error
	// Recv blocks until a message from rank `from` with tag arrives and
	// returns its payload. Messages from one sender under one tag arrive
	// in send order.
	Recv(from int, tag Tag) ([]byte, error)
	// NextSeq returns a per-communicator sequence number used to salt
	// collective tags. All ranks must invoke collectives in the same
	// order (SPMD), so equal sequence numbers identify the same
	// collective call site.
	NextSeq() uint32
	// Stats returns a snapshot of this rank's transport counters.
	Stats() Stats
	// Close releases the communicator. Pending Recvs fail with ErrClosed.
	Close() error
}

// Stats counts transport traffic for one rank. The experiment harness
// feeds these into the performance model, so they must reflect every byte
// a rank pushes to or pulls from its peers (self-sends are free and not
// counted).
type Stats struct {
	BytesSent int64
	BytesRecv int64
	MsgsSent  int64
	MsgsRecv  int64
}

// statsCounter is embedded by transports to track Stats atomically.
type statsCounter struct {
	bytesSent atomic.Int64
	bytesRecv atomic.Int64
	msgsSent  atomic.Int64
	msgsRecv  atomic.Int64
}

func (s *statsCounter) countSend(n int) {
	s.bytesSent.Add(int64(n))
	s.msgsSent.Add(1)
}

func (s *statsCounter) countRecv(n int) {
	s.bytesRecv.Add(int64(n))
	s.msgsRecv.Add(1)
}

func (s *statsCounter) snapshot() Stats {
	return Stats{
		BytesSent: s.bytesSent.Load(),
		BytesRecv: s.bytesRecv.Load(),
		MsgsSent:  s.msgsSent.Load(),
		MsgsRecv:  s.msgsRecv.Load(),
	}
}

// checkPeer validates a peer rank.
func checkPeer(c Comm, peer int) error {
	if peer < 0 || peer >= c.Size() {
		return fmt.Errorf("collectives: peer rank %d out of range [0,%d)", peer, c.Size())
	}
	return nil
}

// checkRecv validates a receive: the AnyRank wildcard is only meaningful
// for wildcard-delivery tags (transports file those under AnyRank), and a
// wildcard tag can ONLY be received with AnyRank — a specific-sender
// receive on it would block forever.
func checkRecv(c Comm, from int, tag Tag) error {
	wild := tag >= tagWinBase
	if from == AnyRank {
		if !wild {
			return fmt.Errorf("collectives: AnyRank receive on non-wildcard tag %#x", uint32(tag))
		}
		return nil
	}
	if wild {
		return fmt.Errorf("collectives: wildcard tag %#x must be received with AnyRank", uint32(tag))
	}
	return checkPeer(c, from)
}
