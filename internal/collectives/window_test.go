package collectives

import (
	"bytes"
	"fmt"
	"testing"
)

func TestWindowInprocExchange(t *testing.T) {
	// Three ranks fill rank 0's window at planned offsets.
	err := Run(3, func(c Comm) error {
		var size int64
		if c.Rank() == 0 {
			size = 12
		}
		win := OpenWindow(c, size, 1)
		switch c.Rank() {
		case 0:
			if err := win.Put(0, 8, []byte("self")); err != nil {
				return err
			}
			buf, err := win.Wait()
			if err != nil {
				return err
			}
			if string(buf) != "aaaabbbbself" {
				return fmt.Errorf("window = %q", buf)
			}
		case 1:
			if err := win.Put(0, 0, []byte("aaaa")); err != nil {
				return err
			}
			if _, err := win.Wait(); err != nil {
				return err
			}
		case 2:
			if err := win.Put(0, 4, []byte("bbbb")); err != nil {
				return err
			}
			if _, err := win.Wait(); err != nil {
				return err
			}
		}
		return Barrier(c)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowZeroSize(t *testing.T) {
	err := Run(2, func(c Comm) error {
		win := OpenWindow(c, 0, 1)
		buf, err := win.Wait() // must return immediately
		if err != nil {
			return err
		}
		if len(buf) != 0 {
			return fmt.Errorf("zero window returned %d bytes", len(buf))
		}
		return Barrier(c)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowRejectsOutOfBoundsPut(t *testing.T) {
	err := Run(1, func(c Comm) error {
		win := OpenWindow(c, 4, 1)
		if err := win.Put(0, 2, []byte("toolong")); err == nil {
			return fmt.Errorf("out-of-bounds self-put accepted")
		}
		if err := win.Put(0, -1, []byte("x")); err == nil {
			return fmt.Errorf("negative offset accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowRemoteOverrunDetected(t *testing.T) {
	err := Run(2, func(c Comm) error {
		var size int64
		if c.Rank() == 0 {
			size = 4
		}
		win := OpenWindow(c, size, 1)
		if c.Rank() == 1 {
			// Remote put that overruns the target window.
			return win.Put(0, 2, []byte("long"))
		}
		if _, err := win.Wait(); err == nil {
			return fmt.Errorf("overrunning remote put not detected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowLargePayloadRoundTrip(t *testing.T) {
	payload := make([]byte, 256<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	err := Run(2, func(c Comm) error {
		var size int64
		if c.Rank() == 0 {
			size = int64(len(payload))
		}
		win := OpenWindow(c, size, 1)
		if c.Rank() == 1 {
			// Split into many puts at computed offsets, out of order.
			const piece = 4096
			for off := len(payload) - piece; off >= 0; off -= piece {
				if err := win.Put(0, int64(off), payload[off:off+piece]); err != nil {
					return err
				}
			}
			return Barrier(c)
		}
		buf, err := win.Wait()
		if err != nil {
			return err
		}
		if !bytes.Equal(buf, payload) {
			return fmt.Errorf("window content corrupted")
		}
		return Barrier(c)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvWildcardValidation(t *testing.T) {
	err := Run(1, func(c Comm) error {
		if _, err := c.Recv(AnyRank, 5); err == nil {
			return fmt.Errorf("AnyRank receive on a user tag accepted")
		}
		if _, err := c.Recv(0, WildcardTag(3)); err == nil {
			return fmt.Errorf("specific-sender receive on a wildcard tag accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWildcardTagDisjointFromWindowEpochs(t *testing.T) {
	// The first million window epochs and the wildcard space must not
	// collide.
	seen := map[Tag]bool{}
	for e := uint32(0); e < 1<<20; e += 1 << 15 {
		seen[windowTag(e)] = true
	}
	for n := uint32(0); n < 1<<19; n += 1 << 14 {
		if seen[WildcardTag(n)] {
			t.Fatalf("WildcardTag(%d) collides with a window epoch tag", n)
		}
	}
}
