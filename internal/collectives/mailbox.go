package collectives

import "sync"

// msgKey identifies a (sender, tag) message stream.
type msgKey struct {
	from int
	tag  Tag
}

// mailbox is a matching receive queue: messages are enqueued by transport
// readers and dequeued by Recv calls matching on (from, tag). Per-stream
// FIFO order is preserved. It is shared by both transports.
//
// Failure semantics are drain-first: messages already queued stay
// deliverable after a failure mark, and only a receive that would
// otherwise wait observes the failure. This keeps benign end-of-job races
// (a peer closing its connection after sending everything it owed)
// harmless, while a receive that would genuinely deadlock on a dead peer
// errors out instead.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[msgKey][][]byte // guarded by mu
	closed bool                // guarded by mu
	// aborted, once set, fails every empty-queue wait: the whole group
	// gave up (collective abort, context cancellation, local kill).
	// guarded by mu
	aborted *CollectiveError
	// failed marks individual senders known dead; waits for their
	// messages — and wildcard waits, which any dead peer may starve —
	// fail with the recorded error. guarded by mu
	failed map[int]*CollectiveError
}

func newMailbox() *mailbox {
	m := &mailbox{queues: make(map[msgKey][][]byte)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put enqueues a message. The mailbox takes ownership of data.
// Window-tagged traffic is filed under the AnyRank wildcard, since window
// owners drain puts without caring about the sender.
func (m *mailbox) put(from int, tag Tag, data []byte) {
	if tag >= tagWinBase {
		from = AnyRank
	}
	m.mu.Lock()
	k := msgKey{from, tag}
	m.queues[k] = append(m.queues[k], data)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// get blocks until a message matching (from, tag) is available, or the
// mailbox is closed, aborted, or (for an empty queue) the sender is
// marked failed.
func (m *mailbox) get(from int, tag Tag) ([]byte, error) {
	k := msgKey{from, tag}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if q := m.queues[k]; len(q) > 0 {
			data := q[0]
			if len(q) == 1 {
				delete(m.queues, k)
			} else {
				// Avoid retaining the delivered element.
				q[0] = nil
				m.queues[k] = q[1:]
			}
			return data, nil
		}
		if m.closed {
			return nil, ErrClosed
		}
		if m.aborted != nil {
			return nil, m.aborted
		}
		if from == AnyRank {
			// Wildcard traffic loses sender identity, so any dead peer
			// may be the one whose contribution will never arrive.
			for _, e := range m.failed {
				return nil, e
			}
		} else if e := m.failed[from]; e != nil {
			return nil, e
		}
		m.cond.Wait()
	}
}

// abort fails every empty-queue wait, current and future, with e. The
// first abort wins; later ones are ignored.
func (m *mailbox) abort(e *CollectiveError) {
	m.mu.Lock()
	if m.aborted == nil {
		m.aborted = e
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// abortErr returns the abort error, or nil.
func (m *mailbox) abortErr() *CollectiveError {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.aborted
}

// failPeer marks one sender dead. Queued messages from it remain
// deliverable (drain-first); only waits that would block on it fail.
func (m *mailbox) failPeer(rank int, e *CollectiveError) {
	m.mu.Lock()
	if m.failed == nil {
		m.failed = make(map[int]*CollectiveError)
	}
	if _, ok := m.failed[rank]; !ok {
		m.failed[rank] = e
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// unfailPeer clears a sender's death mark: a fresh connection (redial
// after a timed-out send) proves the peer alive again.
func (m *mailbox) unfailPeer(rank int) {
	m.mu.Lock()
	delete(m.failed, rank)
	m.mu.Unlock()
}

// peerFailed returns the failure recorded for rank, or nil.
func (m *mailbox) peerFailed(rank int) *CollectiveError {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failed[rank]
}

// close wakes all blocked receivers with ErrClosed.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}
