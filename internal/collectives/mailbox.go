package collectives

import "sync"

// msgKey identifies a (sender, tag) message stream.
type msgKey struct {
	from int
	tag  Tag
}

// mailbox is a matching receive queue: messages are enqueued by transport
// readers and dequeued by Recv calls matching on (from, tag). Per-stream
// FIFO order is preserved. It is shared by both transports.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[msgKey][][]byte
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{queues: make(map[msgKey][][]byte)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put enqueues a message. The mailbox takes ownership of data.
// Window-tagged traffic is filed under the AnyRank wildcard, since window
// owners drain puts without caring about the sender.
func (m *mailbox) put(from int, tag Tag, data []byte) {
	if tag >= tagWinBase {
		from = AnyRank
	}
	m.mu.Lock()
	k := msgKey{from, tag}
	m.queues[k] = append(m.queues[k], data)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// get blocks until a message matching (from, tag) is available or the
// mailbox is closed.
func (m *mailbox) get(from int, tag Tag) ([]byte, error) {
	k := msgKey{from, tag}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if q := m.queues[k]; len(q) > 0 {
			data := q[0]
			if len(q) == 1 {
				delete(m.queues, k)
			} else {
				// Avoid retaining the delivered element.
				q[0] = nil
				m.queues[k] = q[1:]
			}
			return data, nil
		}
		if m.closed {
			return nil, ErrClosed
		}
		m.cond.Wait()
	}
}

// close wakes all blocked receivers with ErrClosed.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}
