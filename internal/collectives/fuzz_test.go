package collectives

import (
	"bytes"
	"testing"
)

// FuzzFrameRoundTrip fuzzes the TCP transport's wire framing: a frame
// written by writeFrame must read back identically through readFrame
// (including back-to-back frames on one stream), and readFrame on
// arbitrary bytes must fail cleanly — no panic, no unbounded allocation —
// since the length prefix arrives from the network.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint32(17), []byte("payload"))
	f.Add(uint32(0), []byte{})
	f.Add(uint32(1<<24), bytes.Repeat([]byte{0xAB}, 300))
	f.Add(uint32(0xFFFFFFFF), []byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, tag uint32, payload []byte) {
		var buf bytes.Buffer
		if err := writeFrame(&buf, Tag(tag), payload); err != nil {
			t.Fatalf("writeFrame(%d bytes): %v", len(payload), err)
		}
		// A second frame on the same stream must not disturb the first.
		if err := writeFrame(&buf, Tag(tag)+1, []byte("next")); err != nil {
			t.Fatalf("writeFrame second frame: %v", err)
		}
		gotTag, gotPayload, gotTC, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if gotTag != Tag(tag) || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("frame round-trip mismatch: tag %v/%v, %d/%d bytes",
				gotTag, Tag(tag), len(gotPayload), len(payload))
		}
		if gotTC != nil {
			t.Fatalf("legacy frame decoded with a trace context: %+v", gotTC)
		}
		gotTag, gotPayload, _, err = readFrame(&buf)
		if err != nil || gotTag != Tag(tag)+1 || string(gotPayload) != "next" {
			t.Fatalf("second frame corrupted: tag %v, %q, err %v", gotTag, gotPayload, err)
		}

		// Arbitrary bytes as a stream: must terminate with either a valid
		// bounded frame or an error, never a panic or an over-limit alloc.
		r := bytes.NewReader(payload)
		for {
			_, p, _, err := readFrame(r)
			if err != nil {
				break
			}
			if len(p) > maxFrameSize {
				t.Fatalf("readFrame returned %d bytes above limit", len(p))
			}
		}
	})
}
