package collectives

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"
)

// Window is a one-sided communication window: a byte region a rank exposes
// so that partners can Put data at offsets they computed independently
// (Algorithm 3 of the paper). Because the offset planning tells the owner
// exactly how many bytes will arrive, the window is opened with the exact
// expected size and completion needs no extra synchronization: the owner
// simply drains puts until the window is full.
//
// Usage (all ranks):
//
//	win := OpenWindow(comm, expectedBytes, epoch)
//	... win.Put(target, offset, data) for each partner ...
//	buf, err := win.Wait()   // blocks until the window is full
//
// Put and Wait may be interleaved freely; the wire protocol is symmetric
// across transports (a header frame with the destination offset followed
// by the payload in the same frame).
//
// Put is safe for concurrent use from multiple goroutines of the owning
// rank (the parallel dump pipeline drives one put stream per partner):
// the fill and instrumentation counters are atomic, and concurrent local
// deposits are race-free because the offset planning guarantees disjoint
// destination regions. Wait must be called from a single goroutine, after
// or concurrently with the puts.
type Window struct {
	comm   Comm
	tag    Tag
	buf    []byte
	filled atomic.Int64

	// OnPut, when set before the first Put, observes every put's payload
	// size and wall-clock latency (including transport blocking). The
	// dump pipeline points it at a latency histogram. It may be invoked
	// concurrently and must be safe for that.
	OnPut func(bytes int, d time.Duration)

	// PutTimeout, when positive, bounds each remote Put's transport time
	// on deadline-capable transports (TCP); a timed-out put fails with a
	// transient, retryable error. Other transports ignore it. Set it
	// before the first Put.
	PutTimeout time.Duration

	puts     atomic.Int64
	putBytes atomic.Int64
	waitTime time.Duration
}

// WindowStats reports what one window epoch did: outbound puts (remote
// and local) and the time spent draining the own window.
type WindowStats struct {
	// Puts and PutBytes count this rank's outgoing Put calls.
	Puts     int
	PutBytes int64
	// WaitTime is the wall time Wait spent until the window was full.
	WaitTime time.Duration
}

// Stats returns the window's instrumentation. Call it after Wait.
func (w *Window) Stats() WindowStats {
	return WindowStats{Puts: int(w.puts.Load()), PutBytes: w.putBytes.Load(), WaitTime: w.waitTime}
}

// windowTag derives the tag for a window epoch. Epochs must be issued in
// the same order on all ranks (one per collective dump).
func windowTag(epoch uint32) Tag {
	return tagWinBase + Tag(epoch%(1<<20))
}

// OpenWindow exposes a window of exactly size bytes for the given epoch.
// Every rank participating in the epoch must open a window (possibly of
// size zero) with the same epoch number.
func OpenWindow(c Comm, size int64, epoch uint32) *Window {
	return &Window{comm: c, tag: windowTag(epoch), buf: make([]byte, size)}
}

// Put writes data into the window of rank target at the given byte offset.
// The caller must have planned offsets so that puts never overlap and the
// target window is exactly filled; violations are detected by the target.
func (w *Window) Put(target int, offset int64, data []byte) error {
	if err := checkPeer(w.comm, target); err != nil {
		return err
	}
	start := time.Now()
	err := w.put(target, offset, data)
	if err == nil {
		w.puts.Add(1)
		w.putBytes.Add(int64(len(data)))
		if w.OnPut != nil {
			w.OnPut(len(data), time.Since(start))
		}
	}
	return err
}

func (w *Window) put(target int, offset int64, data []byte) error {
	if target == w.comm.Rank() {
		// Local put: write directly.
		return w.deposit(offset, data)
	}
	frame := make([]byte, 8+len(data))
	binary.BigEndian.PutUint64(frame, uint64(offset))
	copy(frame[8:], data)
	if w.PutTimeout > 0 {
		if ds, ok := w.comm.(DeadlineSender); ok {
			return ds.SendDeadline(target, w.tag, frame, time.Now().Add(w.PutTimeout))
		}
	}
	return w.comm.Send(target, w.tag, frame)
}

// deposit writes payload at offset into the local window buffer. Callers
// depositing concurrently must target disjoint regions (the planner
// guarantees it); the fill counter is atomic, so the completion check in
// Wait observes every deposit's copy through the counter's
// happens-before chain.
func (w *Window) deposit(offset int64, data []byte) error {
	if offset < 0 || offset+int64(len(data)) > int64(len(w.buf)) {
		return fmt.Errorf("collectives: put of %d bytes at offset %d exceeds window of %d bytes",
			len(data), offset, len(w.buf))
	}
	copy(w.buf[offset:], data)
	if f := w.filled.Add(int64(len(data))); f > int64(len(w.buf)) {
		return fmt.Errorf("collectives: window overfilled: %d bytes deposited into %d-byte window",
			f, len(w.buf))
	}
	return nil
}

// Wait blocks until the window is exactly full and returns its buffer.
// Senders are identified implicitly: any rank may contribute, and the
// exact-size property doubles as the completion fence.
//
// Wait assumes non-overlapping puts (guaranteed by the offset planning);
// it counts bytes, so overlapping puts would stall or overfill, both of
// which are reported as errors.
func (w *Window) Wait() ([]byte, error) {
	start := time.Now()
	defer func() { w.waitTime += time.Since(start) }()
	for w.filled.Load() < int64(len(w.buf)) {
		frame, err := w.recvAny()
		if err != nil {
			return nil, err
		}
		if len(frame) < 8 {
			return nil, fmt.Errorf("collectives: malformed window frame (%d bytes)", len(frame))
		}
		offset := int64(binary.BigEndian.Uint64(frame))
		if err := w.deposit(offset, frame[8:]); err != nil {
			return nil, err
		}
	}
	return w.buf, nil
}

// recvAny receives the next window frame from any peer. Transports
// deliver window traffic under the wildcard sender AnyRank.
func (w *Window) recvAny() ([]byte, error) {
	return w.comm.Recv(AnyRank, w.tag)
}

// AnyRank is the wildcard sender rank used for window traffic, where the
// receiver does not care who a put came from.
const AnyRank = -1

// WildcardTag returns a tag in the wildcard-delivery space: messages sent
// under it are received with Recv(AnyRank, tag) regardless of sender.
// Used by request/reply protocols (e.g. the restore chunk service) where
// the server cannot know who will call. The space is disjoint from window
// epoch tags for any n.
func WildcardTag(n uint32) Tag {
	return tagWinBase + Tag(1<<20) + Tag(n)
}
