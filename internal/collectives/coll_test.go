package collectives

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// groupSizes exercises power-of-two and awkward sizes.
var groupSizes = []int{1, 2, 3, 5, 8, 13, 32}

func TestSendRecvOrder(t *testing.T) {
	err := Run(2, func(c Comm) error {
		const n = 50
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 3, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			msg, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if len(msg) != 1 || msg[0] != byte(i) {
				return fmt.Errorf("message %d out of order: %v", i, msg)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendToInvalidRank(t *testing.T) {
	err := Run(2, func(c Comm) error {
		if err := c.Send(5, 1, nil); err == nil {
			return fmt.Errorf("send to rank 5 in a 2-rank group succeeded")
		}
		if err := c.Send(-1, 1, nil); err == nil {
			return fmt.Errorf("send to rank -1 succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSend(t *testing.T) {
	err := Run(1, func(c Comm) error {
		if err := c.Send(0, 9, []byte("hi")); err != nil {
			return err
		}
		msg, err := c.Recv(0, 9)
		if err != nil {
			return err
		}
		if string(msg) != "hi" {
			return fmt.Errorf("self-send delivered %q", msg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagIsolation(t *testing.T) {
	err := Run(2, func(c Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 2, []byte("two")); err != nil {
				return err
			}
			return c.Send(1, 1, []byte("one"))
		}
		one, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		two, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		if string(one) != "one" || string(two) != "two" {
			return fmt.Errorf("tag streams crossed: %q %q", one, two)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierAllSizes(t *testing.T) {
	for _, n := range groupSizes {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			// Each rank increments a counter before the barrier; after it
			// every rank must observe the full count.
			var mu sync.Mutex
			arrived := 0
			err := Run(n, func(c Comm) error {
				mu.Lock()
				arrived++
				mu.Unlock()
				if err := Barrier(c); err != nil {
					return err
				}
				mu.Lock()
				defer mu.Unlock()
				if arrived != n {
					return fmt.Errorf("rank %d passed barrier with %d/%d arrivals", c.Rank(), arrived, n)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, n := range groupSizes {
		for root := 0; root < n; root += max(1, n/3) {
			n, root := n, root
			t.Run(fmt.Sprintf("n=%d/root=%d", n, root), func(t *testing.T) {
				payload := []byte(fmt.Sprintf("payload-from-%d", root))
				err := Run(n, func(c Comm) error {
					var in []byte
					if c.Rank() == root {
						in = payload
					}
					out, err := Bcast(c, root, in)
					if err != nil {
						return err
					}
					if !bytes.Equal(out, payload) {
						return fmt.Errorf("rank %d got %q", c.Rank(), out)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestGather(t *testing.T) {
	for _, n := range groupSizes {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			root := n / 2
			err := Run(n, func(c Comm) error {
				mine := []byte{byte(c.Rank()), byte(c.Rank() * 2)}
				got, err := Gather(c, root, mine)
				if err != nil {
					return err
				}
				if c.Rank() != root {
					if got != nil {
						return fmt.Errorf("non-root rank %d got data", c.Rank())
					}
					return nil
				}
				for r, b := range got {
					want := []byte{byte(r), byte(r * 2)}
					if !bytes.Equal(b, want) {
						return fmt.Errorf("root: rank %d block = %v, want %v", r, b, want)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllgather(t *testing.T) {
	for _, n := range groupSizes {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			err := Run(n, func(c Comm) error {
				mine := []byte(fmt.Sprintf("block-%03d", c.Rank()))
				got, err := Allgather(c, mine)
				if err != nil {
					return err
				}
				if len(got) != n {
					return fmt.Errorf("got %d blocks, want %d", len(got), n)
				}
				for r, b := range got {
					if want := fmt.Sprintf("block-%03d", r); string(b) != want {
						return fmt.Errorf("block %d = %q, want %q", r, b, want)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllgatherInt64(t *testing.T) {
	err := Run(4, func(c Comm) error {
		mine := []int64{int64(c.Rank()), int64(c.Rank() * 10)}
		got, err := AllgatherInt64(c, mine)
		if err != nil {
			return err
		}
		for r, vec := range got {
			if vec[0] != int64(r) || vec[1] != int64(r*10) {
				return fmt.Errorf("rank %d vector = %v", r, vec)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// sumMerge folds big-endian u64 sums, an associative merge for testing.
func sumMerge(acc, other []byte) ([]byte, error) {
	a := binary.BigEndian.Uint64(acc)
	b := binary.BigEndian.Uint64(other)
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, a+b)
	return out, nil
}

func TestAllreduceSum(t *testing.T) {
	for _, n := range groupSizes {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			want := uint64(n * (n + 1) / 2)
			err := Run(n, func(c Comm) error {
				mine := make([]byte, 8)
				binary.BigEndian.PutUint64(mine, uint64(c.Rank()+1))
				out, err := Allreduce(c, mine, sumMerge)
				if err != nil {
					return err
				}
				if got := binary.BigEndian.Uint64(out); got != want {
					return fmt.Errorf("rank %d: sum = %d, want %d", c.Rank(), got, want)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReduceOnlyRootHasResult(t *testing.T) {
	err := Run(6, func(c Comm) error {
		mine := make([]byte, 8)
		binary.BigEndian.PutUint64(mine, 1)
		out, err := Reduce(c, 2, mine, sumMerge)
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			if out == nil || binary.BigEndian.Uint64(out) != 6 {
				return fmt.Errorf("root result = %v", out)
			}
		} else if out != nil {
			return fmt.Errorf("non-root rank %d has result", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesBackToBack(t *testing.T) {
	// Successive collectives must not cross-talk (sequence-salted tags).
	err := Run(5, func(c Comm) error {
		for i := 0; i < 10; i++ {
			payload := []byte{byte(i)}
			var in []byte
			if c.Rank() == i%5 {
				in = payload
			}
			out, err := Bcast(c, i%5, in)
			if err != nil {
				return err
			}
			if !bytes.Equal(out, payload) {
				return fmt.Errorf("iteration %d: got %v", i, out)
			}
			if err := Barrier(c); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsCountTraffic(t *testing.T) {
	err := Run(2, func(c Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, make([]byte, 100)); err != nil {
				return err
			}
			if c.Stats().BytesSent != 100 {
				return fmt.Errorf("BytesSent = %d, want 100", c.Stats().BytesSent)
			}
			return nil
		}
		if _, err := c.Recv(0, 1); err != nil {
			return err
		}
		if c.Stats().BytesRecv != 100 {
			return fmt.Errorf("BytesRecv = %d, want 100", c.Stats().BytesRecv)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	err := Run(3, func(c Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		// Other ranks block on a message that will never come; the
		// panic recovery must close the group and unblock them.
		_, err := c.Recv((c.Rank()+1)%3, 7)
		return err
	})
	if err == nil {
		t.Fatal("Run swallowed a rank panic")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
