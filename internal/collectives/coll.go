package collectives

import (
	"encoding/binary"
	"fmt"
	"time"

	"dedupcr/internal/obs"
)

// collTag derives the tag for one collective call: the op id and the
// per-communicator sequence number are folded into the reserved tag space.
// All ranks call collectives in the same order, so sequence numbers line
// up across the group.
func collTag(op uint32, seq uint32) Tag {
	return tagCollBase + Tag(op)<<20 + Tag(seq%(1<<20))
}

// Collective op ids.
const (
	opBarrier uint32 = iota + 1
	opBcast
	opGather
	opAllgather
	opReduce
)

// recordColl files one finished collective call's round count and wall
// time with the transport's statsCounter (when it has one) and stamps the
// completion in the flight recorder with the cumulative round counter —
// the "last collective round" a post-mortem bundle names.
func recordColl(c Comm, op string, rounds int, start time.Time) {
	if sc, ok := c.(collRecorder); ok {
		sc.countColl(rounds, time.Since(start))
	}
	noteCollEvent(c, op, rounds)
}

// noteCollEvent records one finished collective in the flight recorder.
func noteCollEvent(c Comm, op string, rounds int) {
	obs.Logf(obs.KindColl, c.Rank(), "", c.Stats().CollRounds, "%s (%d rounds)", op, rounds)
}

// Barrier blocks until every rank of c has entered it. It uses a
// dissemination barrier: ceil(log2 N) rounds of pairwise signals.
func Barrier(c Comm) error {
	tag := collTag(opBarrier, c.NextSeq())
	n, me := c.Size(), c.Rank()
	start := time.Now()
	rounds := 0
	for dist := 1; dist < n; dist *= 2 {
		to := (me + dist) % n
		from := (me - dist + n) % n
		if err := c.Send(to, tag, nil); err != nil {
			return fmt.Errorf("barrier send: %w", err)
		}
		if _, err := c.Recv(from, tag); err != nil {
			return fmt.Errorf("barrier recv: %w", err)
		}
		rounds++
	}
	if sc, ok := c.(collRecorder); ok {
		sc.countColl(rounds, time.Since(start))
		// Stamp the exit in wall time: barrier exits are near-simultaneous
		// across ranks, which makes these stamps the clock-offset probes
		// of the cluster telemetry plane.
		sc.noteBarrierExit(time.Now())
	}
	noteCollEvent(c, "barrier", rounds)
	return nil
}

// Bcast distributes root's buffer to every rank and returns it. Ranks
// other than root pass nil. A binomial tree gives ceil(log2 N) rounds.
func Bcast(c Comm, root int, data []byte) ([]byte, error) {
	if err := checkPeer(c, root); err != nil {
		return nil, err
	}
	tag := collTag(opBcast, c.NextSeq())
	n := c.Size()
	start := time.Now()
	rounds := 0
	// Work in a rotated space where root is rank 0.
	vrank := (c.Rank() - root + n) % n

	if vrank != 0 {
		// Receive from parent: clear the lowest set bit of vrank.
		parent := (clearLowestBit(vrank) + root) % n
		var err error
		data, err = c.Recv(parent, tag)
		if err != nil {
			return nil, fmt.Errorf("bcast recv: %w", err)
		}
		rounds++
	}
	// Forward to children: vrank + 2^k for every k above our lowest set
	// bit boundary.
	for mask := highestDoubling(vrank); mask >= 1; mask /= 2 {
		child := vrank + mask
		if child < n {
			if err := c.Send((child+root)%n, tag, data); err != nil {
				return nil, fmt.Errorf("bcast send: %w", err)
			}
			rounds++
		}
	}
	recordColl(c, "bcast", rounds, start)
	return data, nil
}

// clearLowestBit clears the lowest set bit of v (v > 0).
func clearLowestBit(v int) int { return v & (v - 1) }

// highestDoubling returns the largest power of two that, added to vrank,
// still addresses a child in the binomial tree rooted at 0: for vrank 0 it
// is the highest power of two below the group size bound handled by the
// caller; for others it is half the lowest set bit... 	Concretely: children
// of vrank are vrank+2^k for all 2^k below vrank's lowest set bit (or any
// k when vrank is 0, bounded by the caller's size check).
func highestDoubling(vrank int) int {
	if vrank == 0 {
		return 1 << 30
	}
	return lowestBit(vrank) / 2
}

func lowestBit(v int) int { return v & -v }

// Gather collects each rank's buffer at root. On root it returns a slice
// indexed by rank; elsewhere it returns nil. Direct sends are used: the
// collective-dump use cases gather small fixed-size vectors.
func Gather(c Comm, root int, mine []byte) ([][]byte, error) {
	if err := checkPeer(c, root); err != nil {
		return nil, err
	}
	tag := collTag(opGather, c.NextSeq())
	start := time.Now()
	if c.Rank() != root {
		if err := c.Send(root, tag, mine); err != nil {
			return nil, fmt.Errorf("gather send: %w", err)
		}
		recordColl(c, "gather", 1, start)
		return nil, nil
	}
	out := make([][]byte, c.Size())
	out[root] = append([]byte(nil), mine...)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		data, err := c.Recv(r, tag)
		if err != nil {
			return nil, fmt.Errorf("gather recv from %d: %w", r, err)
		}
		out[r] = data
	}
	recordColl(c, "gather", c.Size()-1, start)
	return out, nil
}

// Allgather distributes every rank's buffer to every rank; the result is
// indexed by rank. A ring algorithm is used: N-1 steps, each forwarding
// one block to the right neighbour, so every rank sends and receives
// exactly N-1 blocks — the pattern the paper assumes for load gathering.
func Allgather(c Comm, mine []byte) ([][]byte, error) {
	tag := collTag(opAllgather, c.NextSeq())
	n, me := c.Size(), c.Rank()
	start := time.Now()
	out := make([][]byte, n)
	out[me] = append([]byte(nil), mine...)
	if n == 1 {
		recordColl(c, "allgather", 0, start)
		return out, nil
	}
	right := (me + 1) % n
	left := (me - 1 + n) % n
	// At step s we forward the block that originated at rank me-s.
	for s := 0; s < n-1; s++ {
		sendIdx := (me - s + n) % n
		if err := c.Send(right, tag, out[sendIdx]); err != nil {
			return nil, fmt.Errorf("allgather send step %d: %w", s, err)
		}
		recvIdx := (me - s - 1 + n) % n
		data, err := c.Recv(left, tag)
		if err != nil {
			return nil, fmt.Errorf("allgather recv step %d: %w", s, err)
		}
		out[recvIdx] = data
	}
	recordColl(c, "allgather", n-1, start)
	return out, nil
}

// MergeFunc folds the payload other into acc and returns the new
// accumulator. Implementations must be associative and deterministic; the
// reduction applies them in a fixed tree order so every rank computes the
// same result.
type MergeFunc func(acc, other []byte) ([]byte, error)

// Allreduce folds every rank's buffer with merge and distributes the
// result: a binomial-tree reduction to rank 0 (ceil(log2 N) merge rounds,
// the paper's "hierarchic bottom-up" scheme) followed by a binomial-tree
// broadcast.
func Allreduce(c Comm, mine []byte, merge MergeFunc) ([]byte, error) {
	acc, err := Reduce(c, 0, mine, merge)
	if err != nil {
		return nil, err
	}
	return Bcast(c, 0, acc)
}

// Reduce folds every rank's buffer to root using merge over a binomial
// tree. Only root receives the final value; other ranks return nil.
func Reduce(c Comm, root int, mine []byte, merge MergeFunc) ([]byte, error) {
	if err := checkPeer(c, root); err != nil {
		return nil, err
	}
	tag := collTag(opReduce, c.NextSeq())
	n := c.Size()
	start := time.Now()
	vrank := (c.Rank() - root + n) % n
	acc := mine

	// Per-round durations of the HMERGE tree: the paper's Figure 3(b)/(c)
	// evaluation attributes reduction cost round by round, so each tree
	// level this rank participates in is timed individually and surfaced
	// via Stats.ReduceRounds.
	var roundTimes []time.Duration
	finish := func() {
		if sc, ok := c.(collRecorder); ok {
			sc.setReduceRounds(roundTimes)
			sc.countColl(len(roundTimes), time.Since(start))
		}
		noteCollEvent(c, "reduce", len(roundTimes))
	}
	for mask := 1; mask < n; mask *= 2 {
		roundStart := time.Now()
		if vrank&mask != 0 {
			// Send accumulator to the subtree parent and leave.
			parent := (vrank - mask + root) % n
			if err := c.Send(parent, tag, acc); err != nil {
				return nil, fmt.Errorf("reduce send: %w", err)
			}
			roundTimes = append(roundTimes, time.Since(roundStart))
			finish()
			return nil, nil
		}
		child := vrank + mask
		if child < n {
			data, err := c.Recv((child+root)%n, tag)
			if err != nil {
				return nil, fmt.Errorf("reduce recv: %w", err)
			}
			acc, err = merge(acc, data)
			if err != nil {
				return nil, fmt.Errorf("reduce merge: %w", err)
			}
		}
		roundTimes = append(roundTimes, time.Since(roundStart))
	}
	finish()
	return acc, nil
}

// AllgatherInt64 is a convenience wrapper gathering one int64 vector per
// rank. Every rank must contribute a vector of the same length.
func AllgatherInt64(c Comm, mine []int64) ([][]int64, error) {
	buf := make([]byte, 8*len(mine))
	for i, v := range mine {
		binary.BigEndian.PutUint64(buf[8*i:], uint64(v))
	}
	raw, err := Allgather(c, buf)
	if err != nil {
		return nil, err
	}
	out := make([][]int64, len(raw))
	for r, b := range raw {
		if len(b)%8 != 0 {
			return nil, fmt.Errorf("allgather: rank %d sent %d bytes, not a multiple of 8", r, len(b))
		}
		vec := make([]int64, len(b)/8)
		for i := range vec {
			vec[i] = int64(binary.BigEndian.Uint64(b[8*i:]))
		}
		out[r] = vec
	}
	return out, nil
}
