package collectives

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dedupcr/internal/obs"
)

// Typed failure taxonomy of the collective runtime. A collective job can
// fail in two shapes:
//
//   - a peer rank dies (process crash, connection loss, injected kill):
//     survivors observe ErrRankFailed with the dead ranks listed;
//   - the job is aborted (context cancellation, a rank hitting a local
//     error mid-collective, an explicit Abort): every rank observes
//     ErrAborted.
//
// Both surface as a *CollectiveError, which satisfies errors.Is for the
// matching sentinels and unwraps to the root cause.
var (
	// ErrRankFailed marks errors caused by the failure of one or more
	// peer ranks during a collective operation.
	ErrRankFailed = errors.New("collectives: peer rank failed")
	// ErrAborted marks errors caused by the collective abort protocol:
	// the group gave up on the current operation, on every rank.
	ErrAborted = errors.New("collectives: collective aborted")
)

// CollectiveError is the typed failure every surviving rank of an aborted
// collective returns: which ranks failed (empty when the abort had no
// specific dead rank, e.g. a context deadline), the pipeline phase the
// local rank was in when the failure surfaced (empty outside the dump/
// restore pipeline), and the root cause.
//
// errors.Is(err, ErrAborted) holds for every CollectiveError;
// errors.Is(err, ErrRankFailed) holds when Ranks is non-empty; the Cause
// chain is reachable through errors.As/Is as usual (so a context
// cancellation still matches context.Canceled).
type CollectiveError struct {
	// Ranks lists the failed ranks, ascending, deduplicated. Empty when
	// the abort was not attributed to specific ranks.
	Ranks []int
	// Phase names the dump/restore pipeline phase the local rank was
	// executing when the failure surfaced (e.g. "reduction", "put",
	// "commit"); empty outside the pipeline.
	Phase string
	// Cause is the root cause: the transport error, the injected fault,
	// or the context's cancellation cause.
	Cause error
}

// Error implements error.
func (e *CollectiveError) Error() string {
	var b strings.Builder
	b.WriteString("collective aborted")
	if len(e.Ranks) > 0 {
		fmt.Fprintf(&b, " (failed ranks %v)", e.Ranks)
	}
	if e.Phase != "" {
		fmt.Fprintf(&b, " in phase %q", e.Phase)
	}
	if e.Cause != nil {
		b.WriteString(": ")
		b.WriteString(e.Cause.Error())
	}
	return b.String()
}

// Unwrap exposes the root cause to errors.Is/As.
func (e *CollectiveError) Unwrap() error { return e.Cause }

// Is matches the package sentinels: every CollectiveError is ErrAborted,
// and one with failed ranks is also ErrRankFailed.
func (e *CollectiveError) Is(target error) bool {
	switch target {
	case ErrAborted:
		return true
	case ErrRankFailed:
		return len(e.Ranks) > 0
	}
	return false
}

// FailedRanks extracts the failed-rank list from an error chain, or nil.
func FailedRanks(err error) []int {
	var ce *CollectiveError
	if errors.As(err, &ce) {
		return append([]int(nil), ce.Ranks...)
	}
	return nil
}

// normRanks sorts and deduplicates a rank list.
func normRanks(ranks []int) []int {
	if len(ranks) == 0 {
		return nil
	}
	out := append([]int(nil), ranks...)
	sort.Ints(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// --- abort/failure wire message -------------------------------------------

// tagAbort is the reserved frame tag of the failure-dissemination protocol
// on the TCP transport. It sits at the very top of the tag space, above
// every collective, window and wildcard tag the runtime hands out.
const tagAbort Tag = ^Tag(0)

// abortMsgVersion tags the abort-notification layout so decoding fails
// loudly on mismatched runtimes.
const abortMsgVersion = 1

// maxAbortCause bounds the cause string carried by an abort message; a
// longer cause is truncated on encode and rejected on decode.
const maxAbortCause = 4096

// encodeAbortMsg serializes a failure notification:
//
//	u8 version | u16 nRanks | u32 rank... | cause (UTF-8, rest of payload)
func encodeAbortMsg(ranks []int, cause string) []byte {
	ranks = normRanks(ranks)
	if len(ranks) > 0xFFFF {
		ranks = ranks[:0xFFFF]
	}
	if len(cause) > maxAbortCause {
		cause = cause[:maxAbortCause]
	}
	buf := make([]byte, 0, 3+4*len(ranks)+len(cause))
	buf = append(buf, abortMsgVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(ranks)))
	for _, r := range ranks {
		buf = binary.BigEndian.AppendUint32(buf, uint32(r))
	}
	return append(buf, cause...)
}

// decodeAbortMsg reverses encodeAbortMsg. The payload is peer-controlled
// input, so every field is bounds-checked.
func decodeAbortMsg(data []byte) (ranks []int, cause string, err error) {
	if len(data) < 3 {
		return nil, "", fmt.Errorf("collectives: abort message truncated (%d bytes)", len(data))
	}
	if data[0] != abortMsgVersion {
		return nil, "", fmt.Errorf("collectives: abort message version %d, want %d", data[0], abortMsgVersion)
	}
	n := int(binary.BigEndian.Uint16(data[1:3]))
	data = data[3:]
	if len(data) < 4*n {
		return nil, "", fmt.Errorf("collectives: abort message lists %d ranks in %d bytes", n, len(data))
	}
	if n > 0 {
		ranks = make([]int, n)
		for i := range ranks {
			ranks[i] = int(binary.BigEndian.Uint32(data[4*i:]))
		}
	}
	data = data[4*n:]
	if len(data) > maxAbortCause {
		return nil, "", fmt.Errorf("collectives: abort cause of %d bytes exceeds limit %d", len(data), maxAbortCause)
	}
	return normRanks(ranks), string(data), nil
}

// --- abort / kill / context plumbing --------------------------------------

// aborter is implemented by transports that support the collective abort
// protocol: fail every local pending and future operation with e, and
// disseminate the failure to peers (best effort, never blocking the
// caller on slow peers).
type aborter interface {
	abortComm(e *CollectiveError)
}

// killer is implemented by transports that can simulate the crash of the
// local rank: local operations fail with e, nothing is disseminated —
// peers must detect the death through the transport (connection loss on
// TCP, per-peer failure marks in process).
type killer interface {
	killComm(e *CollectiveError)
}

// phaseNoter receives pipeline phase transitions; the fault-injection
// wrapper uses them to gate phase-scoped faults.
type phaseNoter interface {
	EnterPhase(phase string)
}

// commWrapper is implemented by communicators that decorate another one
// (e.g. the fault-injection wrapper); Base returns the wrapped Comm.
type commWrapper interface {
	Base() Comm
}

// unwrapComm peels decorating wrappers down to the transport.
func unwrapComm(c Comm) Comm {
	for {
		w, ok := c.(commWrapper)
		if !ok {
			return c
		}
		c = w.Base()
	}
}

// Abort aborts the collective group from this rank's side: every pending
// and future operation of the local communicator fails with a
// *CollectiveError, and the failure is disseminated to the peers (best
// effort, in the background) so their next collective step surfaces it
// too instead of deadlocking. Aborting an already-aborted or closed
// communicator is a no-op; transports without abort support ignore it.
//
// If cause already carries a *CollectiveError (the cascade case: this
// rank is aborting because it observed a peer failure) its rank
// attribution is preserved; otherwise the abort is attributed to the
// local rank, which is giving up from its peers' point of view.
func Abort(c Comm, cause error) {
	if c == nil {
		return
	}
	var ce *CollectiveError
	if !errors.As(cause, &ce) {
		ce = &CollectiveError{Ranks: []int{c.Rank()}, Cause: cause}
	}
	if a, ok := unwrapComm(c).(aborter); ok {
		a.abortComm(ce)
	}
}

// Kill simulates the crash of the local rank: local operations fail
// immediately, no notification is sent, and peers detect the death the
// way they would a real one (connection loss on TCP, failure marks in
// process). Used by the fault-injection layer; transports without kill
// support ignore it.
func Kill(c Comm, cause error) {
	if c == nil {
		return
	}
	ce := &CollectiveError{Ranks: []int{c.Rank()}, Cause: cause}
	if k, ok := unwrapComm(c).(killer); ok {
		k.killComm(ce)
	}
}

// NotePhase informs the communicator (when it cares — currently the
// fault-injection wrapper) that the caller entered the named pipeline
// phase, and records the transition in the flight recorder. The
// dump/restore pipeline calls it at every phase boundary.
func NotePhase(c Comm, phase string) {
	obs.Logf(obs.KindPhase, c.Rank(), phase, 0, "")
	// Tag the pipeline goroutine (and the workers it spawns) so CPU
	// profiles attribute samples phase by phase; the label is replaced at
	// the next boundary and cleared when the pipeline finishes.
	obs.PhaseLabel(phase)
	if pn, ok := c.(phaseNoter); ok {
		pn.EnterPhase(phase)
	}
}

// WatchContext aborts the communicator when ctx is cancelled, so every
// rank blocked in a collective unblocks promptly with a typed error. The
// returned stop function releases the watcher (idempotent); callers must
// invoke it when the watched operation completes.
func WatchContext(ctx context.Context, c Comm) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	var stopped atomic.Bool
	go func() {
		select {
		case <-ctx.Done():
			// A cancellation racing the stop call must not poison the
			// communicator after the watched operation already completed.
			if !stopped.Load() {
				Abort(c, context.Cause(ctx))
			}
		case <-done:
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			stopped.Store(true)
			close(done)
		})
	}
}

// IsTransient reports whether a transport error is worth retrying: plain
// connection-level failures are, collective aborts, rank failures, closed
// communicators and cancellations are not (the group has already given
// up, a retry cannot succeed).
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrAborted) || errors.Is(err, ErrClosed) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// DeadlineSender is implemented by transports whose sends can be bounded
// by a wall-clock deadline (the TCP transport). Window puts use it to
// enforce per-put timeouts from Options.Retry.
type DeadlineSender interface {
	// SendDeadline behaves like Comm.Send but gives up (with a transient,
	// retryable error) once deadline passes. A zero deadline means no
	// bound.
	SendDeadline(to int, tag Tag, data []byte, deadline time.Time) error
}
