package collectives

import (
	"fmt"
	"sync"
	"testing"
)

// benchGroup runs one benchmark body across n in-process ranks per
// iteration.
func benchGroup(b *testing.B, n int, body func(Comm) error) {
	b.Helper()
	g, err := NewGroup(n)
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	comms := make([]Comm, n)
	for r := range comms {
		if comms[r], err = g.Comm(r); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make([]error, n)
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				errs[rank] = body(comms[rank])
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBarrier measures the dissemination barrier.
func BenchmarkBarrier(b *testing.B) {
	for _, n := range []int{8, 64, 408} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchGroup(b, n, func(c Comm) error { return Barrier(c) })
		})
	}
}

// BenchmarkBcast measures the binomial broadcast of a 64 KiB payload.
func BenchmarkBcast(b *testing.B) {
	payload := make([]byte, 64<<10)
	for _, n := range []int{8, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchGroup(b, n, func(c Comm) error {
				var in []byte
				if c.Rank() == 0 {
					in = payload
				}
				_, err := Bcast(c, 0, in)
				return err
			})
		})
	}
}

// BenchmarkAllgather measures the ring allgather of small load vectors,
// the pattern of the paper's SendLoad exchange.
func BenchmarkAllgather(b *testing.B) {
	for _, n := range []int{8, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchGroup(b, n, func(c Comm) error {
				_, err := AllgatherInt64(c, []int64{1, 2, 3})
				return err
			})
		})
	}
}

// BenchmarkAllreduce measures the binomial reduction + broadcast with a
// cheap merge, isolating the tree traffic of the fingerprint reduction.
func BenchmarkAllreduce(b *testing.B) {
	payload := make([]byte, 32<<10)
	concat := func(acc, other []byte) ([]byte, error) { return acc, nil }
	for _, n := range []int{8, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchGroup(b, n, func(c Comm) error {
				_, err := Allreduce(c, payload, concat)
				return err
			})
		})
	}
}

// BenchmarkWindowExchange measures the one-sided put path: every rank
// fills its successor's exactly-sized window.
func BenchmarkWindowExchange(b *testing.B) {
	const n, chunkSize, chunks = 8, 4096, 64
	benchGroup(b, n, func(c Comm) error {
		// Per-rank sequence numbers advance in lockstep across SPMD
		// iterations, so they are a safe shared epoch.
		win := OpenWindow(c, chunkSize*chunks, c.NextSeq())
		target := (c.Rank() + 1) % n
		buf := make([]byte, chunkSize)
		for i := 0; i < chunks; i++ {
			if err := win.Put(target, int64(i*chunkSize), buf); err != nil {
				return err
			}
		}
		_, err := win.Wait()
		return err
	})
}

// BenchmarkTCPRoundTrip measures a request/reply over the socket
// transport.
func BenchmarkTCPRoundTrip(b *testing.B) {
	comms, err := StartLocalTCP(2)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			msg, err := comms[1].Recv(0, 1)
			if err != nil {
				return
			}
			if err := comms[1].Send(0, 2, msg); err != nil {
				return
			}
		}
	}()
	payload := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := comms[0].Send(1, 1, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := comms[0].Recv(1, 2); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	comms[1].Close()
	<-done
}
