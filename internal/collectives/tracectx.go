package collectives

import (
	"encoding/binary"
	"fmt"

	"dedupcr/internal/trace"
)

// Causal wire tracing: an optional trace-context header piggybacked on
// TCP frames so receive-side spans link back to the sending rank.
//
// Compatibility is carried by one bit. The frame header's length word is
// bounded by maxFrameSize (1 GiB, bit 30), so bit 31 is guaranteed free:
//
//	legacy frame:   u32 payloadLen           | u32 tag | payload
//	traced frame:   u32 payloadLen | 1<<31   | u32 tag | u8 tcLen | tc | payload
//
// A legacy receiver that meets a traced frame rejects it as oversized
// instead of misparsing the payload (fail-stop, not corruption), and a
// trace-aware receiver decodes legacy frames unchanged — the direction
// FuzzFrameTraceContextDecode locks in. Tracing is therefore only
// enabled job-wide (all ranks run the same binary), never negotiated.

// flagTraceCtx marks a frame carrying a trace-context header. It cannot
// collide with a payload length because maxFrameSize caps lengths at
// bit 30.
const flagTraceCtx = uint32(1) << 31

// traceCtxVersion tags the trace-context layout.
const traceCtxVersion = 1

// traceCtxSize is the encoded size: version u8 | jobID u64 | dumpSeq u32
// | round u32 | sender u32 | spanID u64.
const traceCtxSize = 1 + 8 + 4 + 4 + 4 + 8

// TraceContext is the causal metadata a traced frame carries: which job
// and dump the frame belongs to, the sender's collective-round counter at
// send time, and a sender-unique span id the receiver's flow event links
// back to.
type TraceContext struct {
	JobID   uint64
	DumpSeq uint32
	Round   uint32
	Sender  uint32
	SpanID  uint64
}

// encodeTraceContext serializes tc into a fixed-size header.
func encodeTraceContext(tc *TraceContext) []byte {
	buf := make([]byte, 0, traceCtxSize)
	buf = append(buf, traceCtxVersion)
	buf = binary.BigEndian.AppendUint64(buf, tc.JobID)
	buf = binary.BigEndian.AppendUint32(buf, tc.DumpSeq)
	buf = binary.BigEndian.AppendUint32(buf, tc.Round)
	buf = binary.BigEndian.AppendUint32(buf, tc.Sender)
	buf = binary.BigEndian.AppendUint64(buf, tc.SpanID)
	return buf
}

// decodeTraceContext reverses encodeTraceContext. The header is
// peer-controlled input: length and version are checked before any field
// is read.
func decodeTraceContext(data []byte) (*TraceContext, error) {
	if len(data) != traceCtxSize {
		return nil, fmt.Errorf("collectives: trace context of %d bytes, want %d", len(data), traceCtxSize)
	}
	if data[0] != traceCtxVersion {
		return nil, fmt.Errorf("collectives: trace context version %d, want %d", data[0], traceCtxVersion)
	}
	return &TraceContext{
		JobID:   binary.BigEndian.Uint64(data[1:]),
		DumpSeq: binary.BigEndian.Uint32(data[9:]),
		Round:   binary.BigEndian.Uint32(data[13:]),
		Sender:  binary.BigEndian.Uint32(data[17:]),
		SpanID:  binary.BigEndian.Uint64(data[21:]),
	}, nil
}

// wireTraceState is the per-communicator tracing configuration installed
// by EnableWireTrace, read lock-free on every send/receive.
type wireTraceState struct {
	jobID   uint64
	dumpSeq uint32
	tracer  *trace.Recorder
}

// EnableWireTrace turns on causal wire tracing for this communicator:
// every outgoing data frame carries a trace-context header, a FlowStart
// instant is recorded into tracer on send and a FlowFinish with the
// sender's span id on receive, so MergeTraces draws an arrow from the
// sending rank's timeline to the receiving rank's. jobID and dumpSeq
// identify the job in the receiver's flow annotations. A nil tracer
// disables tracing again. All ranks of a group must agree (see the
// compatibility note above).
func (c *TCPComm) EnableWireTrace(jobID uint64, dumpSeq uint32, tracer *trace.Recorder) {
	if tracer == nil {
		c.wtrace.Store(nil)
		return
	}
	c.wtrace.Store(&wireTraceState{jobID: jobID, dumpSeq: dumpSeq, tracer: tracer})
}

// nextSpanID mints a sender-unique flow id: rank in the top bits, a
// monotonic counter below, so ids never collide across ranks of a group.
func (c *TCPComm) nextSpanID() uint64 {
	return uint64(c.rank)<<40 | (c.spanSeq.Add(1) & (1<<40 - 1))
}
