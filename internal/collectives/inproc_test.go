package collectives

import (
	"errors"
	"fmt"
	"testing"
)

func TestNewGroupValidation(t *testing.T) {
	if _, err := NewGroup(0); err == nil {
		t.Error("NewGroup(0) accepted")
	}
	if _, err := NewGroup(-4); err == nil {
		t.Error("NewGroup(-4) accepted")
	}
}

func TestGroupCommValidation(t *testing.T) {
	g, err := NewGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Comm(3); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := g.Comm(-1); err == nil {
		t.Error("negative rank accepted")
	}
	c, err := g.Comm(2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rank() != 2 || c.Size() != 3 {
		t.Errorf("Rank/Size = %d/%d", c.Rank(), c.Size())
	}
}

func TestGroupCloseIdempotent(t *testing.T) {
	g, err := NewGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
}

func TestSendAfterGroupClose(t *testing.T) {
	g, err := NewGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := g.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	if err := c.Send(1, 1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
}

func TestNextSeqMonotonic(t *testing.T) {
	g, err := NewGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	c, err := g.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	prev := c.NextSeq()
	for i := 0; i < 100; i++ {
		next := c.NextSeq()
		if next <= prev {
			t.Fatalf("NextSeq not monotonic: %d after %d", next, prev)
		}
		prev = next
	}
}

func TestRunSurfacesFirstError(t *testing.T) {
	sentinel := fmt.Errorf("rank-specific failure")
	err := Run(4, func(c Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run returned %v, want wrapped sentinel", err)
	}
}

func TestRunRejectsBadSize(t *testing.T) {
	if err := Run(0, func(Comm) error { return nil }); err == nil {
		t.Fatal("Run(0) accepted")
	}
}
