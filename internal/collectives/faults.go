package collectives

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dedupcr/internal/obs"
)

// Fault injection for the communication plane, the counterpart of
// storage.Cluster's node-failure injection: wrap a rank's communicator
// with InjectFaults and the plan's faults fire deterministically (given a
// seed and a serial schedule) at a chosen pipeline phase — killing the
// rank, dropping or delaying its messages, or failing sends with a
// transient error that exercises the retry machinery.

// ErrInjected is the root cause of every failure produced by the fault
// injector; tests match it with errors.Is to tell injected faults from
// real ones.
var ErrInjected = errors.New("collectives: injected fault")

// FaultKind selects what a matched fault does.
type FaultKind int

const (
	// FaultKill simulates the crash of the rank at the trigger point:
	// every local operation fails from then on and peers detect the
	// death through the transport (see Kill).
	FaultKill FaultKind = iota + 1
	// FaultDrop silently discards the matched sends: the sender believes
	// they succeeded, the receiver never sees them — message loss the
	// way a network loses it.
	FaultDrop
	// FaultDelay sleeps for Delay before the matched operation proceeds,
	// simulating stragglers and slow links.
	FaultDelay
	// FaultError fails the matched sends with a transient error without
	// transmitting anything; a RetryPolicy recovers from it.
	FaultError
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultKill:
		return "kill"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultError:
		return "error"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one injected failure. A fault matches an operation when every
// set filter agrees; the first matching fault of the plan fires.
type Fault struct {
	// Kind selects the effect; required.
	Kind FaultKind
	// Rank restricts the fault to this rank's communicator; AnyRank (-1)
	// matches every rank. Plans are typically built once and shared by
	// all ranks of a test, so the filter keeps one plan expressive.
	Rank int
	// Phase restricts the fault to one dump/restore pipeline phase (the
	// names of metrics.PhaseNames, e.g. "reduction", "put", "commit"),
	// as reported through NotePhase. Empty matches every phase.
	Phase string
	// Peer restricts Drop/Delay/Error faults to operations with this
	// peer rank; AnyRank (-1) matches any peer. (The zero value matches
	// only rank 0 — set AnyRank explicitly for unfiltered faults.)
	Peer int
	// Prob fires the fault on each matched operation with this
	// probability, drawn from the plan's seeded generator; 0 and 1 both
	// mean "always" (the zero value stays useful).
	Prob float64
	// After skips the first After matched operations before firing.
	After int
	// Times bounds how often the fault fires; 0 means no bound.
	Times int
	// Delay is the sleep of FaultDelay.
	Delay time.Duration
}

// FaultPlan is a deterministic failure schedule: the same plan, seed and
// (serial) operation order produce the same faults. Probabilistic faults
// on concurrent send paths (Parallelism > 1) remain reproducible only in
// distribution, since the interleaving picks the draws.
type FaultPlan struct {
	Seed   int64
	Faults []Fault
}

// FaultyComm decorates a communicator with a FaultPlan. It forwards
// everything to the base transport — including the internal statistics
// and abort hooks, so metrics and the abort protocol work unchanged —
// and applies matching faults on the way.
type FaultyComm struct {
	base Comm
	plan FaultPlan

	mu      sync.Mutex
	rng     *rand.Rand // guarded by mu
	phase   string     // guarded by mu
	matched []int      // per-fault count of matched operations (drives After); guarded by mu
	fired   []int      // per-fault count of fired operations (drives Times); guarded by mu
}

var _ Comm = (*FaultyComm)(nil)

// InjectFaults wraps c with the plan. Each rank wraps its own endpoint;
// faults whose Rank filter names another rank never fire here.
func InjectFaults(c Comm, plan FaultPlan) *FaultyComm {
	return &FaultyComm{
		base:    c,
		plan:    plan,
		rng:     rand.New(rand.NewSource(plan.Seed ^ int64(c.Rank())<<32)),
		matched: make([]int, len(plan.Faults)),
		fired:   make([]int, len(plan.Faults)),
	}
}

// Base returns the wrapped communicator (commWrapper, for Abort/Kill).
func (f *FaultyComm) Base() Comm { return f.base }

// EnterPhase records the pipeline phase for phase-scoped faults.
func (f *FaultyComm) EnterPhase(phase string) {
	f.mu.Lock()
	f.phase = phase
	f.mu.Unlock()
}

// opClass distinguishes sends from receives for fault matching.
type opClass int

const (
	opSend opClass = iota
	opRecv
)

// match returns the first fault firing on this operation, or nil.
func (f *FaultyComm) match(op opClass, peer int) *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.plan.Faults {
		ft := &f.plan.Faults[i]
		switch ft.Kind {
		case FaultDrop, FaultError:
			if op != opSend {
				continue
			}
		case FaultKill, FaultDelay:
			// fire on any operation
		default:
			continue
		}
		if ft.Rank != AnyRank && ft.Rank != f.base.Rank() {
			continue
		}
		if ft.Phase != "" && ft.Phase != f.phase {
			continue
		}
		if op == opSend && ft.Peer != AnyRank && ft.Peer != peer {
			continue
		}
		if ft.Times > 0 && f.fired[i] >= ft.Times {
			continue
		}
		f.matched[i]++
		if f.matched[i] <= ft.After {
			continue
		}
		if ft.Prob > 0 && ft.Prob < 1 && f.rng.Float64() >= ft.Prob {
			continue
		}
		f.fired[i]++
		return ft
	}
	return nil
}

// apply runs a matched fault's effect. It returns (err, done): done means
// the operation must not reach the base transport.
func (f *FaultyComm) apply(ft *Fault, op opClass, peer int) (error, bool) {
	if ft == nil {
		return nil, false
	}
	f.mu.Lock()
	phase := f.phase
	f.mu.Unlock()
	obs.Logf(obs.KindFault, f.base.Rank(), phase, 0, "injected %s (peer %d)", ft.Kind, peer)
	switch ft.Kind {
	case FaultKill:
		// Trigger the post-mortem bundle here rather than leaving it to
		// killComm: the injection layer knows the pipeline phase the
		// victim was in, which the transport-level kill no longer sees.
		obs.Trigger(obs.Failure{
			Kind: "kill", Rank: f.base.Rank(), Ranks: []int{f.base.Rank()},
			Phase: phase,
			Cause: fmt.Sprintf("injected kill of rank %d (peer %d)", f.base.Rank(), peer),
		})
		Kill(f.base, fmt.Errorf("%w: rank %d killed", ErrInjected, f.base.Rank()))
		// Fall through to the base operation, which now fails with the
		// kill's CollectiveError — the rank dies mid-operation.
		return nil, false
	case FaultDrop:
		return nil, true // swallowed: sender sees success
	case FaultError:
		return fmt.Errorf("%w: send to rank %d failed", ErrInjected, peer), true
	case FaultDelay:
		time.Sleep(ft.Delay)
	}
	return nil, false
}

// Rank implements Comm.
func (f *FaultyComm) Rank() int { return f.base.Rank() }

// Size implements Comm.
func (f *FaultyComm) Size() int { return f.base.Size() }

// NextSeq implements Comm.
func (f *FaultyComm) NextSeq() uint32 { return f.base.NextSeq() }

// Stats implements Comm.
func (f *FaultyComm) Stats() Stats { return f.base.Stats() }

// Close implements Comm.
func (f *FaultyComm) Close() error { return f.base.Close() }

// Send implements Comm, applying matching send faults first.
func (f *FaultyComm) Send(to int, tag Tag, data []byte) error {
	if err, done := f.apply(f.match(opSend, to), opSend, to); done {
		return err
	}
	return f.base.Send(to, tag, data)
}

// SendDeadline implements DeadlineSender when the base transport does;
// otherwise the deadline is ignored and it behaves like Send.
func (f *FaultyComm) SendDeadline(to int, tag Tag, data []byte, deadline time.Time) error {
	if err, done := f.apply(f.match(opSend, to), opSend, to); done {
		return err
	}
	if ds, ok := f.base.(DeadlineSender); ok {
		return ds.SendDeadline(to, tag, data, deadline)
	}
	return f.base.Send(to, tag, data)
}

// Recv implements Comm, applying matching receive faults first.
func (f *FaultyComm) Recv(from int, tag Tag) ([]byte, error) {
	if err, done := f.apply(f.match(opRecv, from), opRecv, from); done {
		return nil, err
	}
	return f.base.Recv(from, tag)
}

// The collective algorithms surface round timings through the internal
// collRecorder hook; forward it so a fault-wrapped transport keeps its
// collective statistics.

func (f *FaultyComm) countColl(rounds int, d time.Duration) {
	if r, ok := f.base.(collRecorder); ok {
		r.countColl(rounds, d)
	}
}

func (f *FaultyComm) setReduceRounds(rounds []time.Duration) {
	if r, ok := f.base.(collRecorder); ok {
		r.setReduceRounds(rounds)
	}
}

func (f *FaultyComm) noteBarrierExit(t time.Time) {
	if r, ok := f.base.(collRecorder); ok {
		r.noteBarrierExit(t)
	}
}
