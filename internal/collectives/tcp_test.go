package collectives

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// runTCP executes body once per rank over a local TCP group, mirroring
// Run for the socket transport.
func runTCP(t *testing.T, n int, body func(Comm) error) {
	t.Helper()
	comms, err := StartLocalTCP(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = body(comms[rank])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestTCPSendRecv(t *testing.T) {
	runTCP(t, 2, func(c Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, []byte("over the wire"))
		}
		msg, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(msg) != "over the wire" {
			return fmt.Errorf("got %q", msg)
		}
		return nil
	})
}

func TestTCPLargeMessage(t *testing.T) {
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	runTCP(t, 2, func(c Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, payload)
		}
		msg, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if !bytes.Equal(msg, payload) {
			return fmt.Errorf("1 MiB payload corrupted in transit")
		}
		return nil
	})
}

func TestTCPMessageOrder(t *testing.T) {
	runTCP(t, 2, func(c Comm) error {
		const n = 200
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				buf := make([]byte, 4)
				binary.BigEndian.PutUint32(buf, uint32(i))
				if err := c.Send(1, 2, buf); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			msg, err := c.Recv(0, 2)
			if err != nil {
				return err
			}
			if got := binary.BigEndian.Uint32(msg); got != uint32(i) {
				return fmt.Errorf("message %d arrived as %d", i, got)
			}
		}
		return nil
	})
}

func TestTCPSelfSend(t *testing.T) {
	runTCP(t, 1, func(c Comm) error {
		if err := c.Send(0, 3, []byte("loop")); err != nil {
			return err
		}
		msg, err := c.Recv(0, 3)
		if err != nil {
			return err
		}
		if string(msg) != "loop" {
			return fmt.Errorf("self-send got %q", msg)
		}
		return nil
	})
}

func TestTCPCollectives(t *testing.T) {
	runTCP(t, 5, func(c Comm) error {
		// Barrier, broadcast, allgather and allreduce must all work over
		// sockets exactly as in process.
		if err := Barrier(c); err != nil {
			return err
		}
		var in []byte
		if c.Rank() == 2 {
			in = []byte("tcp-bcast")
		}
		out, err := Bcast(c, 2, in)
		if err != nil {
			return err
		}
		if string(out) != "tcp-bcast" {
			return fmt.Errorf("bcast got %q", out)
		}
		blocks, err := Allgather(c, []byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		for r, b := range blocks {
			if len(b) != 1 || b[0] != byte(r) {
				return fmt.Errorf("allgather block %d = %v", r, b)
			}
		}
		mine := make([]byte, 8)
		binary.BigEndian.PutUint64(mine, uint64(c.Rank()+1))
		sum, err := Allreduce(c, mine, sumMerge)
		if err != nil {
			return err
		}
		if got := binary.BigEndian.Uint64(sum); got != 15 {
			return fmt.Errorf("allreduce = %d, want 15", got)
		}
		return nil
	})
}

func TestTCPWindow(t *testing.T) {
	// Rank 1 and 2 put into rank 0's window at planned offsets.
	runTCP(t, 3, func(c Comm) error {
		var size int64
		if c.Rank() == 0 {
			size = 8
		}
		win := OpenWindow(c, size, 1)
		switch c.Rank() {
		case 0:
			buf, err := win.Wait()
			if err != nil {
				return err
			}
			if string(buf) != "abcdWXYZ" {
				return fmt.Errorf("window content %q", buf)
			}
		case 1:
			if err := win.Put(0, 0, []byte("abcd")); err != nil {
				return err
			}
			if _, err := win.Wait(); err != nil {
				return err
			}
		case 2:
			if err := win.Put(0, 4, []byte("WXYZ")); err != nil {
				return err
			}
			if _, err := win.Wait(); err != nil {
				return err
			}
		}
		return Barrier(c)
	})
}

func TestTCPStats(t *testing.T) {
	runTCP(t, 2, func(c Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, make([]byte, 64)); err != nil {
				return err
			}
			if got := c.Stats().BytesSent; got != 64 {
				return fmt.Errorf("BytesSent = %d, want 64", got)
			}
			return nil
		}
		if _, err := c.Recv(0, 1); err != nil {
			return err
		}
		if got := c.Stats().BytesRecv; got != 64 {
			return fmt.Errorf("BytesRecv = %d, want 64", got)
		}
		return nil
	})
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	comms, err := StartLocalTCP(2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := comms[0].Recv(1, 9)
		done <- err
	}()
	comms[0].Close()
	if err := <-done; err == nil {
		t.Fatal("Recv returned without error after Close")
	}
	comms[1].Close()
}
