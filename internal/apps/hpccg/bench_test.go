package hpccg

import "testing"

// BenchmarkStep measures one CG iteration at the experiment scale.
func BenchmarkStep(b *testing.B) {
	s := New(0, 1, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkCheckpointImage measures state serialization, the per-dump
// capture cost of the transparent checkpointing path.
func BenchmarkCheckpointImage(b *testing.B) {
	s := New(0, 1, Config{})
	s.Step()
	img := s.CheckpointImage()
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CheckpointImage()
	}
}

// BenchmarkRestoreImage measures state deserialization on restart.
func BenchmarkRestoreImage(b *testing.B) {
	s := New(0, 1, Config{})
	s.Step()
	img := s.CheckpointImage()
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RestoreImage(img); err != nil {
			b.Fatal(err)
		}
	}
}
