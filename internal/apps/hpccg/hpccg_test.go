package hpccg

import (
	"bytes"
	"testing"

	"dedupcr/internal/chunk"
	"dedupcr/internal/collectives"
	"dedupcr/internal/fingerprint"
)

func TestSolverConverges(t *testing.T) {
	s := New(0, 1, Config{NX: 8, NY: 8, NZ: 8})
	first := s.Residual()
	var last float64
	for i := 0; i < 25; i++ {
		last = s.Step()
	}
	if last >= first {
		t.Fatalf("CG residual did not decrease: %g -> %g", first, last)
	}
	if s.Iterations() != 25 {
		t.Fatalf("iterations = %d, want 25", s.Iterations())
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	s := New(3, 8, Config{NX: 8, NY: 8, NZ: 8})
	for i := 0; i < 5; i++ {
		s.Step()
	}
	img := s.CheckpointImage()
	resAt5 := s.Residual()

	// Run further, then roll back.
	for i := 0; i < 5; i++ {
		s.Step()
	}
	if err := s.RestoreImage(img); err != nil {
		t.Fatal(err)
	}
	if s.Residual() != resAt5 {
		t.Fatalf("restored residual %g != checkpointed %g", s.Residual(), resAt5)
	}
	// Recomputed trajectory must match.
	if !bytes.Equal(s.CheckpointImage(), img) {
		t.Fatal("restored image differs from checkpointed image")
	}
}

func TestRestoreRejectsWrongSize(t *testing.T) {
	s := New(0, 1, Config{NX: 4, NY: 4, NZ: 4})
	if err := s.RestoreImage(make([]byte, 10)); err == nil {
		t.Fatal("accepted wrong-size image")
	}
}

func TestImageDeterministicPerRank(t *testing.T) {
	a := New(2, 8, Config{NX: 8, NY: 8, NZ: 8})
	b := New(2, 8, Config{NX: 8, NY: 8, NZ: 8})
	a.Step()
	b.Step()
	if !bytes.Equal(a.CheckpointImage(), b.CheckpointImage()) {
		t.Fatal("same rank, same steps: images differ")
	}
}

func TestImagesDifferAcrossRanks(t *testing.T) {
	a := New(0, 8, Config{NX: 8, NY: 8, NZ: 8})
	b := New(1, 8, Config{NX: 8, NY: 8, NZ: 8})
	if bytes.Equal(a.CheckpointImage(), b.CheckpointImage()) {
		t.Fatal("different ranks produced identical images (no private data)")
	}
}

// measureRedundancy computes the local-unique and global-unique page
// fractions of a weak-scaled ensemble, i.e. the Figure 3(a) quantities.
func measureRedundancy(t *testing.T, nRanks, steps int, cfg Config) (localFrac, globalFrac float64) {
	t.Helper()
	// 256-byte chunks: the scaled-down page size. The paper pairs 150³
	// sub-blocks with 4 KiB pages (interior stencil runs of ~32 KiB, 8
	// pages per run); the 16³ mini-app pairs with 256 B chunks to keep
	// the same run-to-page ratio, which is what dedup behaviour depends
	// on. The experiment harness uses the same scaled chunk size.
	chunker := chunk.NewFixed(256)
	global := make(map[fingerprint.FP]bool)
	var totalPages, localUnique int
	for r := 0; r < nRanks; r++ {
		s := New(r, nRanks, cfg)
		for i := 0; i < steps; i++ {
			s.Step()
		}
		seen := make(map[fingerprint.FP]bool)
		for _, ch := range chunker.Split(s.CheckpointImage()) {
			totalPages++
			if !seen[ch.FP] {
				seen[ch.FP] = true
				localUnique++
			}
			global[ch.FP] = true
		}
	}
	return float64(localUnique) / float64(totalPages), float64(len(global)) / float64(totalPages)
}

func TestRedundancyMatchesPaper(t *testing.T) {
	// Paper, Figure 3(a): HPCCG local-dedup keeps ~33% of the raw data,
	// coll-dedup ~6% at 408 ranks. The mini-app must land in the same
	// regime (generous bands: the shape, not the digit, is the claim).
	local, global := measureRedundancy(t, 24, 10, Config{NX: 16, NY: 16, NZ: 16})
	t.Logf("hpccg redundancy: local-unique=%.1f%% global-unique=%.1f%%", 100*local, 100*global)
	if local < 0.20 || local > 0.50 {
		t.Errorf("local-unique fraction %.1f%% outside the paper's regime (~33%%)", 100*local)
	}
	if global < 0.03 || global > 0.15 {
		t.Errorf("global-unique fraction %.1f%% outside the paper's regime (~6%%)", 100*global)
	}
	if global >= local/2 {
		t.Errorf("collective dedup should at least halve local-dedup output: local=%.3f global=%.3f", local, global)
	}
}

func TestStepCollective(t *testing.T) {
	err := collectives.Run(4, func(c collectives.Comm) error {
		s := New(c.Rank(), c.Size(), Config{NX: 6, NY: 6, NZ: 6})
		prev := -1.0
		for i := 0; i < 3; i++ {
			res, err := s.StepCollective(c)
			if err != nil {
				return err
			}
			if res < 0 {
				return nil
			}
			prev = res
		}
		_ = prev
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
