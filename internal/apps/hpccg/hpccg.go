// Package hpccg is a reproduction of the HPCCG Mantevo mini-app used by
// the paper: a conjugate-gradient solver for a 27-point finite-difference
// operator on a 3-D chimney domain, weak-scaled (one fixed-size sub-block
// per rank).
//
// The solver is real — every Step performs a CG iteration (SpMV, dot
// products, AXPYs) over a CSR 27-point matrix — and its checkpoint image
// is the serialized solver memory. The image naturally reproduces the
// redundancy structure the paper measured on the original application:
//
//   - the CSR column-index arrays use local numbering, so under weak
//     scaling they are byte-identical across ranks while differing from
//     page to page → the cross-rank shared component that coll-dedup
//     turns into natural replicas;
//   - the coefficient array repeats the same 27 stencil values every
//     row, so its pages cycle through a handful of distinct contents →
//     the locally-duplicated component local dedup already removes;
//   - the CG vectors (x, b, r, p, Ap) evolve from a rank-seeded RHS and
//     are private to each rank → the truly unique component.
//
// Scale: the paper runs 150³ sub-blocks (~1.5 GB/rank); the default here
// is 16³ (~1.5 MB/rank), a 1000× linear scale-down with the same byte
// ratios. The netsim model's Scale factor maps measured bytes back.
package hpccg

import (
	"encoding/binary"
	"fmt"
	"math"

	"dedupcr/internal/collectives"
)

// Config sizes the per-rank sub-block (weak scaling keeps it constant as
// ranks are added).
type Config struct {
	// NX, NY, NZ are the local sub-block dimensions. Zero selects the
	// default 16 (the paper uses 150; see the package comment on scale).
	NX, NY, NZ int
}

func (c Config) withDefaults() Config {
	if c.NX <= 0 {
		c.NX = 16
	}
	if c.NY <= 0 {
		c.NY = 16
	}
	if c.NZ <= 0 {
		c.NZ = 16
	}
	return c
}

// Rows returns the number of matrix rows per rank.
func (c Config) Rows() int {
	c = c.withDefaults()
	return c.NX * c.NY * c.NZ
}

// Solver is one rank's CG state.
type Solver struct {
	cfg    Config
	rank   int
	nprocs int

	// CSR 27-point operator, local numbering.
	rowPtr []int32
	colIdx []int32
	vals   []float64

	// CG vectors (float32 keeps the private share of the image at the
	// ratio measured on the original app).
	x, b, r, p, ap []float32

	// halos holds one ghost-plane exchange buffer per neighbour in the
	// 3-D process grid. A rank's neighbour count depends on its position
	// (7 at global corners up to 26 in the interior), which is what
	// gives HPCCG its mild per-rank load variance (Figure 4(b)); the
	// buffer contents are identical on both sides of a pair, since a
	// halo holds the neighbour's boundary plane.
	halos [][]byte

	iter     int
	residual float64
}

// processGrid factors n into the near-cubic (px, py, pz) HPCCG uses to
// lay ranks out in 3-D.
func processGrid(n int) (px, py, pz int) {
	px, py, pz = 1, 1, n
	best := n * n
	for a := 1; a*a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		m := n / a
		for b := a; b*b <= m; b++ {
			if m%b != 0 {
				continue
			}
			c := m / b
			if spread := (c - a) * (c - a); spread < best {
				best = spread
				px, py, pz = a, b, c
			}
		}
	}
	return px, py, pz
}

// gridCoord returns the rank's coordinates in the process grid.
func gridCoord(rank, px, py int) (cx, cy, cz int) {
	return rank % px, (rank / px) % py, rank / (px * py)
}

// buildHalos allocates one pairwise-shared ghost buffer per existing
// neighbour of the rank. Both members of a pair generate identical
// bytes, exactly like exchanged boundary planes after a halo exchange.
func buildHalos(rank, nprocs int, planeBytes int) [][]byte {
	px, py, pz := processGrid(nprocs)
	cx, cy, cz := gridCoord(rank, px, py)
	var halos [][]byte
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				nx, ny, nz := cx+dx, cy+dy, cz+dz
				if nx < 0 || nx >= px || ny < 0 || ny >= py || nz < 0 || nz >= pz {
					continue // outside the global domain
				}
				nbr := (nz*py+ny)*px + nx
				lo, hi := rank, nbr
				if hi < lo {
					lo, hi = hi, lo
				}
				halos = append(halos, pairPlane(lo*nprocs+hi, planeBytes))
			}
		}
	}
	return halos
}

// pairPlane deterministically generates the shared ghost plane of a
// neighbour pair.
func pairPlane(pair, size int) []byte {
	buf := make([]byte, size)
	x := uint64(pair)*0x9E3779B97F4A7C15 + 0x1234567

	for i := 0; i+8 <= len(buf); i += 8 {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		binary.LittleEndian.PutUint64(buf[i:], x*0x2545F4914F6CDD1D)
	}
	return buf
}

// stencil offsets of the 27-point operator.
var stencilOff = func() [][3]int {
	var off [][3]int
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				off = append(off, [3]int{dx, dy, dz})
			}
		}
	}
	return off
}()

// New builds the rank's sub-problem: the standard HPCCG generator with 27
// on the diagonal and -1 off-diagonal, RHS = row sums perturbed by a
// rank-seeded boundary term (different ranks sit at different positions
// of the global chimney, so their solutions diverge).
func New(rank, nprocs int, cfg Config) *Solver {
	cfg = cfg.withDefaults()
	nx, ny, nz := cfg.NX, cfg.NY, cfg.NZ
	rows := cfg.Rows()
	s := &Solver{
		cfg:    cfg,
		rank:   rank,
		nprocs: nprocs,
		rowPtr: make([]int32, rows+1),
		colIdx: make([]int32, 0, rows*27),
		vals:   make([]float64, 0, rows*27),
		x:      make([]float32, rows),
		b:      make([]float32, rows),
		r:      make([]float32, rows),
		p:      make([]float32, rows),
		ap:     make([]float32, rows),
	}
	id := func(x, y, z int) int32 { return int32((z*ny+y)*nx + x) }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				row := id(x, y, z)
				var rowSum float64
				for _, o := range stencilOff {
					cx, cy, cz := x+o[0], y+o[1], z+o[2]
					if cx < 0 || cx >= nx || cy < 0 || cy >= ny || cz < 0 || cz >= nz {
						continue
					}
					v := -1.0
					if o == [3]int{0, 0, 0} {
						v = 27.0
					}
					s.colIdx = append(s.colIdx, id(cx, cy, cz))
					s.vals = append(s.vals, v)
					rowSum += v
				}
				s.rowPtr[row+1] = int32(len(s.colIdx))
				// Rank-seeded RHS: the weak-scaled sub-blocks solve the
				// same operator with different boundary forcing.
				seed := float32(1 + 0.25*math.Sin(float64(rank)*0.7+float64(row)*0.001))
				s.b[row] = float32(rowSum) * seed
			}
		}
	}
	// Ghost-plane buffers: two vectors (p and x) per face plane.
	s.halos = buildHalos(rank, nprocs, 2*4*nx*ny)
	// CG initialization: x = 0, r = b, p = r.
	copy(s.r, s.b)
	copy(s.p, s.r)
	s.residual = s.dot(s.r, s.r)
	return s
}

// Rank returns the solver's rank.
func (s *Solver) Rank() int { return s.rank }

// Iterations returns how many CG steps have run.
func (s *Solver) Iterations() int { return s.iter }

// Residual returns the current squared residual norm.
func (s *Solver) Residual() float64 { return s.residual }

func (s *Solver) dot(a, b []float32) float64 {
	var sum float64
	for i := range a {
		sum += float64(a[i]) * float64(b[i])
	}
	return sum
}

// spmv computes ap = A·p.
func (s *Solver) spmv() {
	for row := 0; row < len(s.ap); row++ {
		var sum float64
		for k := s.rowPtr[row]; k < s.rowPtr[row+1]; k++ {
			sum += s.vals[k] * float64(s.p[s.colIdx[k]])
		}
		s.ap[row] = float32(sum)
	}
}

// Step runs one local CG iteration and returns the new squared residual.
func (s *Solver) Step() float64 {
	s.spmv()
	pap := s.dot(s.p, s.ap)
	if pap == 0 {
		return s.residual
	}
	alpha := s.residual / pap
	for i := range s.x {
		s.x[i] += float32(alpha) * s.p[i]
		s.r[i] -= float32(alpha) * s.ap[i]
	}
	rNew := s.dot(s.r, s.r)
	beta := rNew / s.residual
	for i := range s.p {
		s.p[i] = s.r[i] + float32(beta)*s.p[i]
	}
	s.residual = rNew
	s.iter++
	return s.residual
}

// StepCollective runs one CG iteration and reduces the residual across
// all ranks, making the solver a genuine bulk-synchronous collective
// application (the pattern the paper's checkpoints interleave with).
func (s *Solver) StepCollective(c collectives.Comm) (float64, error) {
	local := s.Step()
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, math.Float64bits(local))
	out, err := collectives.Allreduce(c, buf, sumFloat64)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(out)), nil
}

func sumFloat64(acc, other []byte) ([]byte, error) {
	a := math.Float64frombits(binary.BigEndian.Uint64(acc))
	b := math.Float64frombits(binary.BigEndian.Uint64(other))
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, math.Float64bits(a+b))
	return out, nil
}

// CheckpointImage serializes the solver's dynamic memory — the dataset a
// transparent checkpointing library would capture — in a fixed layout:
// CSR structure, coefficients, the CG vectors (x, b, r, p; the SpMV
// scratch Ap is recomputed on the first post-restart iteration and not
// captured), then the halo buffers.
func (s *Solver) CheckpointImage() []byte {
	size := 4*len(s.rowPtr) + 4*len(s.colIdx) + 8*len(s.vals) + 4*4*len(s.x)
	for _, h := range s.halos {
		size += len(h)
	}
	buf := make([]byte, 0, size)
	for _, v := range s.rowPtr {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	for _, v := range s.colIdx {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	for _, v := range s.vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, vec := range [][]float32{s.x, s.b, s.r, s.p} {
		for _, v := range vec {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	}
	for _, h := range s.halos {
		buf = append(buf, h...)
	}
	return buf
}

// RestoreImage loads a checkpoint image produced by CheckpointImage,
// overwriting the solver's dynamic state. The Ap scratch vector is
// recomputed by the next Step.
func (s *Solver) RestoreImage(buf []byte) error {
	want := 4*len(s.rowPtr) + 4*len(s.colIdx) + 8*len(s.vals) + 4*4*len(s.x)
	for _, h := range s.halos {
		want += len(h)
	}
	if len(buf) != want {
		return fmt.Errorf("hpccg: checkpoint image is %d bytes, want %d", len(buf), want)
	}
	for i := range s.rowPtr {
		s.rowPtr[i] = int32(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
	}
	for i := range s.colIdx {
		s.colIdx[i] = int32(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
	}
	for i := range s.vals {
		s.vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
	}
	for _, vec := range [][]float32{s.x, s.b, s.r, s.p} {
		for i := range vec {
			vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf))
			buf = buf[4:]
		}
	}
	for _, h := range s.halos {
		copy(h, buf)
		buf = buf[len(h):]
	}
	s.residual = s.dot(s.r, s.r)
	return nil
}
