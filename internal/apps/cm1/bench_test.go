package cm1

import "testing"

// BenchmarkStep measures one storm time step at the experiment scale
// (central rank: full core update).
func BenchmarkStep(b *testing.B) {
	m := New(0, 1, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

// BenchmarkCheckpointImage measures state serialization.
func BenchmarkCheckpointImage(b *testing.B) {
	m := New(0, 1, Config{})
	m.Step()
	img := m.CheckpointImage()
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CheckpointImage()
	}
}

// BenchmarkRestoreImage measures state deserialization.
func BenchmarkRestoreImage(b *testing.B) {
	m := New(0, 1, Config{})
	m.Step()
	img := m.CheckpointImage()
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.RestoreImage(img); err != nil {
			b.Fatal(err)
		}
	}
}
