package cm1

import (
	"bytes"
	"testing"

	"dedupcr/internal/chunk"
	"dedupcr/internal/collectives"
	"dedupcr/internal/fingerprint"
	"dedupcr/internal/metrics"
)

func testCfg() Config { return Config{NX: 96, NY: 96, HaloPages: 2} }

func TestStormEvolves(t *testing.T) {
	m := New(0, 1, testCfg())
	before := m.CheckpointImage()
	w := 0.0
	for i := 0; i < 5; i++ {
		w = m.Step()
	}
	if w <= 0 {
		t.Fatal("no vertical motion developed in the storm core")
	}
	if bytes.Equal(before, m.CheckpointImage()) {
		t.Fatal("stepping did not change the model state")
	}
	if m.StepCount() != 5 {
		t.Fatalf("step count = %d, want 5", m.StepCount())
	}
}

func TestCalmRanksStayCalm(t *testing.T) {
	// A rank far from the storm centre has no core; stepping must leave
	// its state bit-identical (the uniform environment is steady).
	m := New(0, 64, testCfg()) // rank 0 of 64 is far from centre (31.5)
	before := m.CheckpointImage()
	for i := 0; i < 10; i++ {
		m.Step()
	}
	if !bytes.Equal(before, m.CheckpointImage()) {
		t.Fatal("calm sub-domain changed state")
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	m := New(8, 16, testCfg())
	for i := 0; i < 4; i++ {
		m.Step()
	}
	img := m.CheckpointImage()
	for i := 0; i < 4; i++ {
		m.Step()
	}
	if err := m.RestoreImage(img); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.CheckpointImage(), img) {
		t.Fatal("restore did not reproduce the checkpointed state")
	}
}

func TestRestoreRejectsWrongSize(t *testing.T) {
	m := New(0, 1, testCfg())
	if err := m.RestoreImage(make([]byte, 3)); err == nil {
		t.Fatal("accepted wrong-size image")
	}
}

func TestHaloSharedWithNeighbour(t *testing.T) {
	n := 8
	models := make([]*Model, n)
	for r := range models {
		models[r] = New(r, n, testCfg())
	}
	for r := 0; r < n; r++ {
		east := models[r].haloE
		westOfNext := models[(r+1)%n].haloW
		if !bytes.Equal(east, westOfNext) {
			t.Fatalf("rank %d east halo differs from rank %d west halo", r, (r+1)%n)
		}
	}
}

func TestRedundancyMatchesPaper(t *testing.T) {
	// Paper, Figure 3(a): CM1 local-dedup keeps ~30% of the raw data,
	// coll-dedup ~5% at 408 ranks.
	const nRanks, steps = 24, 6
	chunker := chunk.NewFixed(256)
	global := make(map[fingerprint.FP]bool)
	var totalPages, localUnique int
	for r := 0; r < nRanks; r++ {
		m := New(r, nRanks, testCfg())
		for i := 0; i < steps; i++ {
			m.Step()
		}
		seen := make(map[fingerprint.FP]bool)
		for _, ch := range chunker.Split(m.CheckpointImage()) {
			totalPages++
			if !seen[ch.FP] {
				seen[ch.FP] = true
				localUnique++
			}
			global[ch.FP] = true
		}
	}
	local := float64(localUnique) / float64(totalPages)
	glob := float64(len(global)) / float64(totalPages)
	t.Logf("cm1 redundancy: local-unique=%.1f%% global-unique=%.1f%%", 100*local, 100*glob)
	if local < 0.15 || local > 0.50 {
		t.Errorf("local-unique fraction %.1f%% outside the paper's regime (~30%%)", 100*local)
	}
	if glob < 0.02 || glob > 0.15 {
		t.Errorf("global-unique fraction %.1f%% outside the paper's regime (~5%%)", 100*glob)
	}
	if glob >= local/2 {
		t.Errorf("collective dedup should at least halve local-dedup output: local=%.3f global=%.3f", local, glob)
	}
}

func TestLoadSkewExceedsHPCCGStyleUniformity(t *testing.T) {
	// The storm concentrates private data on central ranks: per-rank
	// unique page counts must be visibly skewed (max >> avg), the cause
	// of CM1's larger send-size imbalance in Figure 5(b).
	const nRanks = 16
	chunker := chunk.NewFixed(256)
	uniquePages := make([]int64, nRanks)
	seenGlobally := make(map[fingerprint.FP]int)
	perRank := make([]map[fingerprint.FP]bool, nRanks)
	for r := 0; r < nRanks; r++ {
		m := New(r, nRanks, testCfg())
		for i := 0; i < 4; i++ {
			m.Step()
		}
		perRank[r] = make(map[fingerprint.FP]bool)
		for _, ch := range chunker.Split(m.CheckpointImage()) {
			if !perRank[r][ch.FP] {
				perRank[r][ch.FP] = true
				seenGlobally[ch.FP]++
			}
		}
	}
	for r := 0; r < nRanks; r++ {
		for fp := range perRank[r] {
			if seenGlobally[fp] == 1 { // private to this rank
				uniquePages[r]++
			}
		}
	}
	maxU := metrics.Max(uniquePages)
	avgU := metrics.Avg(uniquePages)
	t.Logf("cm1 private pages per rank: max=%d avg=%.1f", maxU, avgU)
	if avgU <= 0 || float64(maxU) < 2*avgU {
		t.Errorf("expected skewed private-data distribution, got max=%d avg=%.1f", maxU, avgU)
	}
}

func TestStepCollective(t *testing.T) {
	err := collectives.Run(4, func(c collectives.Comm) error {
		m := New(c.Rank(), c.Size(), Config{NX: 48, NY: 48, HaloPages: 1})
		for i := 0; i < 2; i++ {
			if _, err := m.StepCollective(c); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
