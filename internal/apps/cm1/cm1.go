// Package cm1 reproduces the paper's second workload: an idealized
// CM1-style atmospheric simulation — a time-stepped, non-hydrostatic
// stencil model of a 3-D hurricane (Bryan & Rotunno configuration),
// weak-scaled with one fixed sub-domain per rank.
//
// The model is real: every Step advances prognostic fields (wind
// components, potential temperature, moisture) with an
// advection-diffusion stencil inside the hurricane core and a sponge
// layer outside, as idealized storm studies do. Its checkpoint image
// reproduces the redundancy structure the paper measured:
//
//   - the base-state reference atmosphere is a function of grid position
//     only, so under weak scaling it is byte-identical across ranks but
//     distinct from page to page → the cross-rank shared component;
//   - the calm areas of the prognostic fields hold uniform values, so
//     their pages collapse to a few motifs → the locally-duplicated
//     component (this is the paper's "~500 MB constantly changed" data:
//     it changes, yet stays highly redundant);
//   - the hurricane core evolves rank-specific values → the private
//     component;
//   - boundary-relaxation buffers are shared pairwise with the east/west
//     neighbour sub-domains → duplicates with frequency 2, the hardest
//     case for top-F selection.
//
// Scale: the paper's 200×200 columns (~800 MB/rank) shrink to the default
// 192×192 cells (~1.2 MB/rank); netsim's Scale maps bytes back.
package cm1

import (
	"encoding/binary"
	"fmt"
	"math"

	"dedupcr/internal/collectives"
)

// Config sizes the per-rank sub-domain.
type Config struct {
	// NX, NY are the local grid dimensions. Zero selects 192.
	NX, NY int
	// CoreFrac is the hurricane-core box size as a fraction of NX.
	// Zero selects 0.25.
	CoreFrac float64
	// HaloPages is the page count of each neighbour-shared boundary
	// relaxation buffer. Zero selects 4.
	HaloPages int
}

func (c Config) withDefaults() Config {
	if c.NX <= 0 {
		c.NX = 192
	}
	if c.NY <= 0 {
		c.NY = 192
	}
	if c.CoreFrac <= 0 {
		c.CoreFrac = 0.25
	}
	if c.HaloPages <= 0 {
		c.HaloPages = 4
	}
	return c
}

const pageSize = 4096

// Model is one rank's simulation state.
type Model struct {
	cfg    Config
	rank   int
	nprocs int

	// Prognostic fields (float32, NX×NY each): zonal and meridional
	// wind, vertical velocity, potential temperature, pressure
	// perturbation, moisture.
	u, v, w, theta, prs, qv []float32
	// base is the reference atmosphere (float64, NX×NY): identical on
	// every rank under weak scaling.
	base []float64
	// haloW and haloE are boundary-relaxation buffers shared with the
	// west and east neighbour: both sides of a pair hold identical
	// bytes.
	haloW, haloE []byte

	// Core box bounds (the storm region the stencil updates).
	cx0, cx1, cy0, cy1 int

	step int
}

// New builds the rank's sub-domain in the initial hurricane state.
func New(rank, nprocs int, cfg Config) *Model {
	cfg = cfg.withDefaults()
	nx, ny := cfg.NX, cfg.NY
	cells := nx * ny
	m := &Model{
		cfg:    cfg,
		rank:   rank,
		nprocs: nprocs,
		u:      make([]float32, cells),
		v:      make([]float32, cells),
		w:      make([]float32, cells),
		theta:  make([]float32, cells),
		prs:    make([]float32, cells),
		qv:     make([]float32, cells),
		base:   make([]float64, cells),
		haloW:  pairBuffer(pairID(rank-1, rank, nprocs), cfg.HaloPages),
		haloE:  pairBuffer(pairID(rank, rank+1, nprocs), cfg.HaloPages),
	}
	// Reference atmosphere: a smooth function of the local coordinates
	// only — identical across ranks, different on every page.
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			m.base[j*nx+i] = 1000.0*math.Exp(-float64(j)/80.0) +
				0.37*math.Sin(float64(i)*0.11)*math.Cos(float64(j)*0.07)
		}
	}
	// Calm environment: uniform fields (the redundant bulk).
	for i := range m.u {
		m.u[i] = 2.5
		m.v[i] = -1.0
		m.theta[i] = 300.0
		m.prs[i] = 1000.0
		m.qv[i] = 0.014
	}
	// Hurricane core: the storm sits at the centre of the global domain,
	// so its footprint in a rank's sub-domain decays with the rank's
	// distance from the central ranks — distant sub-domains are calm.
	// This is also what makes CM1's load distribution far more skewed
	// than HPCCG's (Figures 4(b) vs 5(b)).
	dist := math.Abs(float64(rank) - float64(nprocs-1)/2)
	sigma := float64(nprocs) / 8
	if sigma < 1 {
		sigma = 1
	}
	intensity := math.Exp(-dist * dist / (2 * sigma * sigma))
	core := int(float64(nx) * cfg.CoreFrac * intensity)
	if core < 4 {
		core = 0 // calm sub-domain, outside the storm
	}
	m.cx0 = (nx - core) / 2
	m.cx1 = m.cx0 + core
	m.cy0 = (ny - core) / 2
	m.cy1 = m.cy0 + core
	ccx, ccy := float64(nx)/2, float64(ny)/2
	for j := m.cy0; j < m.cy1; j++ {
		for i := m.cx0; i < m.cx1; i++ {
			dx, dy := float64(i)-ccx, float64(j)-ccy
			r2 := dx*dx + dy*dy
			amp := float32(18 * math.Exp(-r2/400))
			phase := float64(rank) * 0.61
			idx := j*nx + i
			m.u[idx] += amp * float32(math.Cos(math.Atan2(dy, dx)+math.Pi/2+phase))
			m.v[idx] += amp * float32(math.Sin(math.Atan2(dy, dx)+math.Pi/2+phase))
			m.w[idx] = amp / 10
			m.theta[idx] += amp / 3
			m.prs[idx] -= amp
			m.qv[idx] += amp / 1000
		}
	}
	return m
}

// pairID names the neighbour pair (a,b); the domain is periodic in x.
func pairID(a, b, n int) int {
	return ((a % n) + n) % n
}

// pairBuffer generates the boundary-relaxation coefficients of a
// neighbour pair: both members compute identical bytes from the pair id.
func pairBuffer(pair, pages int) []byte {
	buf := make([]byte, pages*pageSize)
	x := uint64(pair)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	for i := 0; i < len(buf); i += 8 {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		binary.LittleEndian.PutUint64(buf[i:], x*0x2545F4914F6CDD1D)
	}
	return buf
}

// Step advances the storm one time step: advection-diffusion of the
// prognostic fields inside the core box (the sponge layer outside holds
// the environment fixed, as idealized simulations do).
func (m *Model) Step() float64 {
	nx := m.cfg.NX
	next := make([]float32, len(m.theta))
	copy(next, m.theta)
	var maxW float64
	const dt, kappa = 0.2, 0.12
	for j := m.cy0 + 1; j < m.cy1-1; j++ {
		for i := m.cx0 + 1; i < m.cx1-1; i++ {
			idx := j*nx + i
			// Upwind advection by (u,v) plus diffusion.
			ddx := (m.theta[idx] - m.theta[idx-1]) * m.u[idx]
			ddy := (m.theta[idx] - m.theta[idx-nx]) * m.v[idx]
			lap := m.theta[idx-1] + m.theta[idx+1] + m.theta[idx-nx] + m.theta[idx+nx] - 4*m.theta[idx]
			next[idx] = m.theta[idx] + float32(dt)*(-ddx-ddy) + float32(kappa)*lap
			// Buoyancy feeds vertical motion.
			m.w[idx] += float32(dt) * (next[idx] - 300.0) / 300.0
			if wv := math.Abs(float64(m.w[idx])); wv > maxW {
				maxW = wv
			}
		}
	}
	m.theta = next
	// Pressure and moisture respond to the updated core.
	for j := m.cy0; j < m.cy1; j++ {
		for i := m.cx0; i < m.cx1; i++ {
			idx := j*nx + i
			m.prs[idx] = 1000.0 - (m.theta[idx]-300.0)*2.5
			m.qv[idx] = 0.014 + m.w[idx]/5000
		}
	}
	m.step++
	return maxW
}

// StepCollective advances one step and reduces the maximum vertical
// velocity across ranks (the stability diagnostic CM1 computes globally).
func (m *Model) StepCollective(c collectives.Comm) (float64, error) {
	local := m.Step()
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, math.Float64bits(local))
	out, err := collectives.Allreduce(c, buf, maxFloat64)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(out)), nil
}

func maxFloat64(acc, other []byte) ([]byte, error) {
	a := math.Float64frombits(binary.BigEndian.Uint64(acc))
	b := math.Float64frombits(binary.BigEndian.Uint64(other))
	if b > a {
		a = b
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, math.Float64bits(a))
	return out, nil
}

// Step number accessor.
func (m *Model) StepCount() int { return m.step }

// CheckpointImage serializes the model's dynamic memory: prognostic
// fields, base state and boundary buffers, in a fixed layout.
func (m *Model) CheckpointImage() []byte {
	cells := len(m.u)
	size := 4*6*cells + 8*cells + len(m.haloW) + len(m.haloE)
	buf := make([]byte, 0, size)
	for _, f := range [][]float32{m.u, m.v, m.w, m.theta, m.prs, m.qv} {
		for _, v := range f {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	}
	for _, v := range m.base {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = append(buf, m.haloW...)
	buf = append(buf, m.haloE...)
	return buf
}

// RestoreImage loads a checkpoint image produced by CheckpointImage.
func (m *Model) RestoreImage(buf []byte) error {
	cells := len(m.u)
	want := 4*6*cells + 8*cells + len(m.haloW) + len(m.haloE)
	if len(buf) != want {
		return fmt.Errorf("cm1: checkpoint image is %d bytes, want %d", len(buf), want)
	}
	for _, f := range [][]float32{m.u, m.v, m.w, m.theta, m.prs, m.qv} {
		for i := range f {
			f[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf))
			buf = buf[4:]
		}
	}
	for i := range m.base {
		m.base[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
	}
	copy(m.haloW, buf)
	buf = buf[len(m.haloW):]
	copy(m.haloE, buf)
	return nil
}
