package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// The manifest is the segment engine's single commit point: a small
// checksummed file naming exactly the sealed segments that constitute
// the store's durable state, replaced atomically (write-temp + fsync +
// rename + dir fsync) on every Commit. Recovery replays it and deletes
// every segment file it does not name, so a crash at any instant leaves
// the store at the last committed checkpoint:
//
//   - crash mid-append / mid-seal: the new segment's files exist but no
//     manifest names them — recovery discards the unsealed tail;
//   - crash mid-manifest-rename: the rename is atomic, so the old
//     manifest is still in place and the new state simply never
//     happened;
//   - crash mid-compaction: replacement segments not yet named are
//     discarded, victims still named are kept; after the rename the
//     victims are garbage files recovery removes.
//
// Refcounts drift after a segment is sealed (later checkpoints dedup
// against old chunks, Forget/rollback release them). The sealed index
// file is immutable, so the manifest carries a varint refcount override
// column for every segment whose counts diverged from seal time.
//
//	magic "DMan" (4) | version u8 | gen uvarint | nextseg uvarint |
//	count uvarint | per segment, IDs strictly ascending:
//	    id delta-uvarint (first absolute, then gap to previous)
//	    datalen uvarint | idxsum u32 BE |
//	    override uvarint: 0 = none, else 1+len(refs)
//	    refs: len × uvarint, aligned with the index's fp-sorted rows
//	crc32 (IEEE) of everything above, u32 big-endian
const (
	manifestMagic   = "DMan"
	manifestVersion = 1
	manifestName    = "MANIFEST"
	// manifestMinSeg is the least bytes one segment record can occupy,
	// bounding hostile count prefixes.
	manifestMinSeg = 1 + 1 + 4 + 1
)

// manifestSeg is one sealed segment's durable record.
type manifestSeg struct {
	ID      uint64
	DataLen uint64
	IdxSum  uint32   // crc32 of the segment's index file bytes
	Refs    []uint32 // refcount override column; nil = seal-time counts current
}

// manifest is the decoded durable state of a segment store.
type manifest struct {
	Gen     uint64        // commit generation, monotonically increasing
	NextSeg uint64        // lowest segment ID never yet allocated
	Segs    []manifestSeg // ascending ID
}

// encode marshals the manifest; output depends only on the field values
// (Segs must already be ID-sorted, which the store maintains).
func (m *manifest) encode() []byte {
	buf := make([]byte, 0, 64+len(m.Segs)*16)
	buf = append(buf, manifestMagic...)
	buf = append(buf, manifestVersion)
	buf = binary.AppendUvarint(buf, m.Gen)
	buf = binary.AppendUvarint(buf, m.NextSeg)
	buf = binary.AppendUvarint(buf, uint64(len(m.Segs)))
	prev := uint64(0)
	for i, s := range m.Segs {
		if i == 0 {
			buf = binary.AppendUvarint(buf, s.ID)
		} else {
			buf = binary.AppendUvarint(buf, s.ID-prev)
		}
		prev = s.ID
		buf = binary.AppendUvarint(buf, s.DataLen)
		buf = binary.BigEndian.AppendUint32(buf, s.IdxSum)
		if s.Refs == nil {
			buf = binary.AppendUvarint(buf, 0)
		} else {
			buf = binary.AppendUvarint(buf, uint64(1+len(s.Refs)))
			for _, r := range s.Refs {
				buf = binary.AppendUvarint(buf, uint64(r))
			}
		}
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeManifest unmarshals a manifest, enforcing the checksum, strict
// bounds on every count, ascending segment IDs and full consumption.
func decodeManifest(data []byte) (*manifest, error) {
	const hdr = len(manifestMagic) + 1
	if len(data) < hdr+3+4 {
		return nil, fmt.Errorf("storage: manifest truncated (%d bytes)", len(data))
	}
	if string(data[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("storage: bad manifest magic")
	}
	if data[len(manifestMagic)] != manifestVersion {
		return nil, fmt.Errorf("storage: manifest version %d, want %d", data[len(manifestMagic)], manifestVersion)
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("storage: manifest checksum mismatch (%08x != %08x)", got, sum)
	}
	rest := body[hdr:]
	next := func(what string) (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("storage: manifest %s truncated", what)
		}
		rest = rest[n:]
		return v, nil
	}
	m := &manifest{}
	var err error
	if m.Gen, err = next("generation"); err != nil {
		return nil, err
	}
	if m.NextSeg, err = next("nextseg"); err != nil {
		return nil, err
	}
	count, err := next("segment count")
	if err != nil {
		return nil, err
	}
	if count > uint64(len(rest))/manifestMinSeg {
		return nil, fmt.Errorf("storage: manifest claims %d segments for %d bytes", count, len(rest))
	}
	m.Segs = make([]manifestSeg, count)
	prev := uint64(0)
	for i := range m.Segs {
		s := &m.Segs[i]
		delta, err := next("segment id")
		if err != nil {
			return nil, err
		}
		if i == 0 {
			s.ID = delta
		} else {
			if delta == 0 {
				return nil, fmt.Errorf("storage: manifest segment IDs not strictly ascending at %d", i)
			}
			s.ID = prev + delta
			if s.ID < prev {
				return nil, fmt.Errorf("storage: manifest segment ID overflow at %d", i)
			}
		}
		prev = s.ID
		if s.DataLen, err = next("datalen"); err != nil {
			return nil, err
		}
		if len(rest) < 4 {
			return nil, fmt.Errorf("storage: manifest idxsum truncated at %d", i)
		}
		s.IdxSum = binary.BigEndian.Uint32(rest)
		rest = rest[4:]
		override, err := next("override flag")
		if err != nil {
			return nil, err
		}
		if override > 0 {
			n := override - 1
			if n > uint64(len(rest)) {
				return nil, fmt.Errorf("storage: manifest claims %d refcounts for %d bytes", n, len(rest))
			}
			s.Refs = make([]uint32, n)
			for j := range s.Refs {
				v, err := next("refcount")
				if err != nil {
					return nil, err
				}
				if v > maxChunkRefs {
					return nil, fmt.Errorf("storage: manifest refcount %d out of range", v)
				}
				s.Refs[j] = uint32(v)
			}
		}
	}
	if m.NextSeg <= prev && count > 0 {
		return nil, fmt.Errorf("storage: manifest nextseg %d not above last segment %d", m.NextSeg, prev)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("storage: %d trailing bytes after manifest", len(rest))
	}
	return m, nil
}

// readManifest loads and decodes the manifest at path. A missing file is
// an empty store, not an error.
func readManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &manifest{NextSeg: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	return decodeManifest(data)
}
