package storage

import (
	"errors"
	"testing"

	"dedupcr/internal/fingerprint"
)

func TestTimedStoreRecordsLatencies(t *testing.T) {
	ts := NewTimed(NewMem())
	fp := fingerprint.Of([]byte("hello"))

	if err := ts.PutChunk(fp, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := ts.PutBlob("recipe", []byte("meta")); err != nil {
		t.Fatal(err)
	}
	data, err := ts.GetChunk(fp)
	if err != nil || string(data) != "hello" {
		t.Fatalf("GetChunk = %q, %v", data, err)
	}
	if ok, err := ts.HasChunk(fp); err != nil || !ok {
		t.Fatalf("HasChunk = %v, %v", ok, err)
	}
	if _, err := ts.GetBlob("recipe"); err != nil {
		t.Fatal(err)
	}
	if err := ts.ReleaseChunk(fp); err != nil {
		t.Fatal(err)
	}

	// 3 writes (PutChunk, PutBlob, ReleaseChunk), 3 reads (GetChunk,
	// HasChunk, GetBlob).
	if got := ts.WriteLatency().Count(); got != 3 {
		t.Errorf("write latency count = %d, want 3", got)
	}
	if got := ts.ReadLatency().Count(); got != 3 {
		t.Errorf("read latency count = %d, want 3", got)
	}
	if ts.WriteLatency().Max() < 0 || ts.ReadLatency().Max() < 0 {
		t.Error("negative latency recorded")
	}
}

func TestTimedStoreDelegates(t *testing.T) {
	ts := NewTimed(NewMem())
	fp := fingerprint.Of([]byte("x"))
	if err := ts.PutChunk(fp, []byte("x")); err != nil {
		t.Fatal(err)
	}
	bytes, chunks := ts.Usage()
	if bytes != 1 || chunks != 1 {
		t.Errorf("Usage = %d bytes, %d chunks; want 1, 1", bytes, chunks)
	}
	if ts.Inner() == nil {
		t.Error("Inner is nil")
	}

	// Errors still record a sample and pass through unchanged.
	ts.Fail()
	if !ts.Failed() {
		t.Error("Failed = false after Fail")
	}
	before := ts.ReadLatency().Count()
	if _, err := ts.GetChunk(fp); !errors.Is(err, ErrFailed) {
		t.Errorf("GetChunk after Fail = %v, want ErrFailed", err)
	}
	if got := ts.ReadLatency().Count(); got != before+1 {
		t.Errorf("failed read not recorded: count %d, want %d", got, before+1)
	}
}
