package storage

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"dedupcr/internal/fingerprint"
)

// diskStore is a Store backed by a directory on a real local device, used
// by the socket-transport daemon and examples. Chunks live under
// dir/chunks/<hex fp>; metadata blobs under dir/blobs/<name>. Every
// write goes through atomicWriteFile (temp + fsync + rename + dir
// fsync), so a crash mid-write never leaves a torn chunk or blob
// behind — only a stale .tmp that reopening sweeps away.
type diskStore struct {
	mu     sync.Mutex
	dir    string
	blob   fileBlobs
	refs   map[fingerprint.FP]int // guarded by mu
	bytes  int64                  // guarded by mu
	count  int                    // guarded by mu
	failed bool                   // guarded by mu
}

// NewDisk opens (creating if needed) a disk-backed store rooted at dir.
// An existing store directory is re-opened and its usage re-indexed.
// The store is not yet published while indexing, so its fields are
// accessed without the lock.
//
//dedupvet:locked
func NewDisk(dir string) (Store, error) {
	for _, sub := range []string{"chunks", "blobs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("storage: create %s: %w", sub, err)
		}
	}
	sweepTmp(filepath.Join(dir, "chunks"))
	sweepTmp(filepath.Join(dir, "blobs"))
	s := &diskStore{
		dir:  dir,
		blob: fileBlobs{dir: filepath.Join(dir, "blobs")},
		refs: make(map[fingerprint.FP]int),
	}
	entries, err := os.ReadDir(filepath.Join(dir, "chunks"))
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		raw, err := hex.DecodeString(e.Name())
		if err != nil || len(raw) != fingerprint.Size {
			continue // not a chunk file
		}
		var fp fingerprint.FP
		copy(fp[:], raw)
		s.refs[fp] = 1 // refcounts are not persisted; re-opened chunks get one reference
		s.bytes += info.Size()
		s.count++
	}
	return s, nil
}

func (s *diskStore) chunkPath(fp fingerprint.FP) string {
	return filepath.Join(s.dir, "chunks", fp.String())
}

func (s *diskStore) PutChunk(fp fingerprint.FP, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return ErrFailed
	}
	if n, ok := s.refs[fp]; ok {
		s.refs[fp] = n + 1
		return nil
	}
	if err := atomicWriteFile(s.chunkPath(fp), data, 0o644, nil, ""); err != nil {
		return fmt.Errorf("storage: write chunk %s: %w", fp.Short(), err)
	}
	s.refs[fp] = 1
	s.bytes += int64(len(data))
	s.count++
	return nil
}

func (s *diskStore) GetChunk(fp fingerprint.FP) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return nil, ErrFailed
	}
	if _, ok := s.refs[fp]; !ok {
		return nil, fmt.Errorf("chunk %s: %w", fp.Short(), ErrNotFound)
	}
	data, err := os.ReadFile(s.chunkPath(fp))
	if err != nil {
		return nil, fmt.Errorf("storage: read chunk %s: %w", fp.Short(), err)
	}
	return data, nil
}

func (s *diskStore) HasChunk(fp fingerprint.FP) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return false, ErrFailed
	}
	_, ok := s.refs[fp]
	return ok, nil
}

func (s *diskStore) ReleaseChunk(fp fingerprint.FP) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return ErrFailed
	}
	n, ok := s.refs[fp]
	if !ok {
		return fmt.Errorf("release chunk %s: %w", fp.Short(), ErrNotFound)
	}
	if n > 1 {
		s.refs[fp] = n - 1
		return nil
	}
	info, err := os.Stat(s.chunkPath(fp))
	if err == nil {
		s.bytes -= info.Size()
	}
	if err := os.Remove(s.chunkPath(fp)); err != nil {
		return fmt.Errorf("storage: remove chunk %s: %w", fp.Short(), err)
	}
	delete(s.refs, fp)
	s.count--
	return nil
}

func (s *diskStore) PutBlob(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return ErrFailed
	}
	return s.blob.put(name, data)
}

func (s *diskStore) GetBlob(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return nil, ErrFailed
	}
	return s.blob.get(name)
}

func (s *diskStore) Usage() (int64, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes, s.count
}

func (s *diskStore) Fail() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failed = true
	os.RemoveAll(filepath.Join(s.dir, "chunks"))
	os.RemoveAll(filepath.Join(s.dir, "blobs"))
	s.refs = nil
	s.bytes = 0
	s.count = 0
}

func (s *diskStore) Failed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}
