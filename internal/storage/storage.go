// Package storage models the node-local storage devices the paper dumps
// to: per-node chunk stores with reference counting (a chunk stored for
// several datasets or positions is kept once), recipe persistence, usage
// accounting, and failure injection for resilience tests.
//
// Three implementations are provided: an in-memory store (used when
// simulating hundreds of ranks in one process), a flat disk-backed
// store (one file per chunk, used by the socket-transport daemon and
// the examples that want real files on a real local device), and a
// log-structured segment store (segment.go) with crash-safe checkpoint
// commit and background compaction — the engine that holds many
// checkpoints cheaply.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dedupcr/internal/fingerprint"
)

// ErrFailed is returned by operations on a store whose node has failed.
var ErrFailed = errors.New("storage: node failed")

// ErrNotFound is returned when a chunk or recipe is absent.
var ErrNotFound = errors.New("storage: not found")

// Store is a node-local chunk store.
type Store interface {
	// PutChunk stores data under fp, incrementing its reference count if
	// already present. The store keeps its own copy of data.
	PutChunk(fp fingerprint.FP, data []byte) error
	// GetChunk returns the content of fp, or ErrNotFound.
	GetChunk(fp fingerprint.FP) ([]byte, error)
	// HasChunk reports whether fp is stored.
	HasChunk(fp fingerprint.FP) (bool, error)
	// ReleaseChunk decrements fp's reference count, deleting the chunk
	// when it drops to zero.
	ReleaseChunk(fp fingerprint.FP) error
	// PutBlob persists a small named metadata blob (dataset recipes,
	// restore hints). The store keeps its own copy of data.
	PutBlob(name string, data []byte) error
	// GetBlob loads a persisted blob, or ErrNotFound.
	GetBlob(name string) ([]byte, error)
	// Usage returns the unique bytes and unique chunk count held.
	Usage() (bytes int64, chunks int)
	// Fail simulates the loss of the node: all content becomes
	// inaccessible and every subsequent operation returns ErrFailed.
	Fail()
	// Failed reports whether the node has failed.
	Failed() bool
}

// Committer is implemented by stores with an explicit durability point:
// Commit makes every put, release and blob write since the previous
// Commit survive a crash, atomically — after a kill, the store reopens
// to the last committed state, never a prefix of an uncommitted one.
type Committer interface {
	Commit() error
}

// Commit drives a store's checkpoint commit if it has one. Stores
// without an explicit commit point (the in-memory store; the flat disk
// engine, which is durable per-operation) are a no-op, so pipeline code
// calls this unconditionally. Instrumentation wrappers exposing
// Inner() Store are unwrapped.
func Commit(s Store) error {
	for {
		if c, ok := s.(Committer); ok {
			return c.Commit()
		}
		w, ok := s.(interface{ Inner() Store })
		if !ok {
			return nil
		}
		s = w.Inner()
	}
}

// memStore is the in-memory Store.
type memStore struct {
	mu     sync.Mutex
	chunks map[fingerprint.FP]*memChunk // guarded by mu
	blobs  map[string][]byte            // guarded by mu
	bytes  int64                        // guarded by mu
	failed bool                         // guarded by mu
}

type memChunk struct {
	data []byte
	refs int
}

// NewMem returns an empty in-memory store.
func NewMem() Store {
	return &memStore{
		chunks: make(map[fingerprint.FP]*memChunk),
		blobs:  make(map[string][]byte),
	}
}

func (s *memStore) PutChunk(fp fingerprint.FP, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return ErrFailed
	}
	if c, ok := s.chunks[fp]; ok {
		c.refs++
		return nil
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.chunks[fp] = &memChunk{data: cp, refs: 1}
	s.bytes += int64(len(data))
	return nil
}

func (s *memStore) GetChunk(fp fingerprint.FP) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return nil, ErrFailed
	}
	c, ok := s.chunks[fp]
	if !ok {
		return nil, fmt.Errorf("chunk %s: %w", fp.Short(), ErrNotFound)
	}
	return c.data, nil
}

func (s *memStore) HasChunk(fp fingerprint.FP) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return false, ErrFailed
	}
	_, ok := s.chunks[fp]
	return ok, nil
}

func (s *memStore) ReleaseChunk(fp fingerprint.FP) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return ErrFailed
	}
	c, ok := s.chunks[fp]
	if !ok {
		return fmt.Errorf("release chunk %s: %w", fp.Short(), ErrNotFound)
	}
	c.refs--
	if c.refs == 0 {
		s.bytes -= int64(len(c.data))
		delete(s.chunks, fp)
	}
	return nil
}

func (s *memStore) PutBlob(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return ErrFailed
	}
	s.blobs[name] = append([]byte(nil), data...)
	return nil
}

func (s *memStore) GetBlob(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return nil, ErrFailed
	}
	b, ok := s.blobs[name]
	if !ok {
		return nil, fmt.Errorf("blob %q: %w", name, ErrNotFound)
	}
	return b, nil
}

func (s *memStore) Usage() (int64, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes, len(s.chunks)
}

func (s *memStore) Fail() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failed = true
	s.chunks = nil
	s.blobs = nil
	s.bytes = 0
}

func (s *memStore) Failed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// Cluster is the set of node-local stores of a simulated machine room,
// one store per rank. (The paper maps one process per core and replicates
// across nodes; for the simulation we give each rank its own local store,
// the worst case for replication overhead.)
type Cluster struct {
	stores []Store
}

// NewCluster creates n in-memory node stores.
func NewCluster(n int) *Cluster {
	c := &Cluster{stores: make([]Store, n)}
	for i := range c.stores {
		c.stores[i] = NewMem()
	}
	return c
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.stores) }

// Node returns the store of the given rank.
func (c *Cluster) Node(rank int) Store { return c.stores[rank] }

// FailNodes simulates the loss of the given ranks' local storage.
func (c *Cluster) FailNodes(ranks ...int) {
	for _, r := range ranks {
		c.stores[r].Fail()
	}
}

// Replace swaps in a fresh empty store for rank, modelling a failed node
// coming back (or being substituted) with blank local storage before a
// restore.
func (c *Cluster) Replace(rank int) {
	c.stores[rank] = NewMem()
}

// TotalUsage sums unique bytes and chunk counts over all surviving nodes.
func (c *Cluster) TotalUsage() (bytes int64, chunks int) {
	for _, s := range c.stores {
		if s.Failed() {
			continue
		}
		b, n := s.Usage()
		bytes += b
		chunks += n
	}
	return bytes, chunks
}

// UsageByNode returns per-node unique byte usage, sorted by rank.
func (c *Cluster) UsageByNode() []int64 {
	out := make([]int64, len(c.stores))
	for i, s := range c.stores {
		if s.Failed() {
			continue
		}
		out[i], _ = s.Usage()
	}
	return out
}

// MaxUsage returns the highest per-node unique byte usage.
func (c *Cluster) MaxUsage() int64 {
	usage := c.UsageByNode()
	sort.Slice(usage, func(i, j int) bool { return usage[i] > usage[j] })
	if len(usage) == 0 {
		return 0
	}
	return usage[0]
}
