package storage

import (
	"time"

	"dedupcr/internal/fingerprint"
	"dedupcr/internal/metrics"
)

// Timed wraps a Store and records the wall-clock latency of every chunk
// and blob operation into lock-free histograms (nanoseconds), splitting
// reads from writes — the device-level view that complements the
// pipeline's per-phase timings: a slow commit phase with fast store
// writes points at the transport, a slow one with slow writes at the
// disk.
type Timed struct {
	inner     Store
	read      *metrics.Histogram
	write     *metrics.Histogram
	chunkRead *metrics.Histogram
	blobRead  *metrics.Histogram
}

var _ Store = (*Timed)(nil)

// NewTimed wraps store with latency instrumentation.
func NewTimed(store Store) *Timed {
	return &Timed{
		inner:     store,
		read:      metrics.NewHistogram(),
		write:     metrics.NewHistogram(),
		chunkRead: metrics.NewHistogram(),
		blobRead:  metrics.NewHistogram(),
	}
}

// ReadLatency returns the histogram of GetChunk/HasChunk/GetBlob
// latencies in nanoseconds (the union of the per-object-kind splits).
func (t *Timed) ReadLatency() *metrics.Histogram { return t.read }

// ChunkReadLatency returns the histogram of GetChunk/HasChunk latencies
// only — the restore assembly path, without the metadata-blob reads that
// would otherwise skew the distribution.
func (t *Timed) ChunkReadLatency() *metrics.Histogram { return t.chunkRead }

// BlobReadLatency returns the histogram of GetBlob latencies only.
func (t *Timed) BlobReadLatency() *metrics.Histogram { return t.blobRead }

// WriteLatency returns the histogram of PutChunk/ReleaseChunk/PutBlob
// latencies in nanoseconds.
func (t *Timed) WriteLatency() *metrics.Histogram { return t.write }

// Inner returns the wrapped store.
func (t *Timed) Inner() Store { return t.inner }

func (t *Timed) timeWrite(f func() error) error {
	start := time.Now()
	err := f()
	t.write.Record(time.Since(start).Nanoseconds())
	return err
}

func (t *Timed) timeRead(kind *metrics.Histogram, f func() error) error {
	start := time.Now()
	err := f()
	ns := time.Since(start).Nanoseconds()
	t.read.Record(ns)
	kind.Record(ns)
	return err
}

func (t *Timed) PutChunk(fp fingerprint.FP, data []byte) error {
	return t.timeWrite(func() error { return t.inner.PutChunk(fp, data) })
}

func (t *Timed) GetChunk(fp fingerprint.FP) ([]byte, error) {
	var data []byte
	err := t.timeRead(t.chunkRead, func() (e error) { data, e = t.inner.GetChunk(fp); return })
	return data, err
}

func (t *Timed) HasChunk(fp fingerprint.FP) (bool, error) {
	var ok bool
	err := t.timeRead(t.chunkRead, func() (e error) { ok, e = t.inner.HasChunk(fp); return })
	return ok, err
}

func (t *Timed) ReleaseChunk(fp fingerprint.FP) error {
	return t.timeWrite(func() error { return t.inner.ReleaseChunk(fp) })
}

func (t *Timed) PutBlob(name string, data []byte) error {
	return t.timeWrite(func() error { return t.inner.PutBlob(name, data) })
}

func (t *Timed) GetBlob(name string) ([]byte, error) {
	var data []byte
	err := t.timeRead(t.blobRead, func() (e error) { data, e = t.inner.GetBlob(name); return })
	return data, err
}

// Commit forwards a checkpoint commit to the wrapped store, timing it
// as a write — manifest fsyncs are exactly the device-side cost the
// write histogram exists to surface.
func (t *Timed) Commit() error {
	return t.timeWrite(func() error { return Commit(t.inner) })
}

func (t *Timed) Usage() (int64, int) { return t.inner.Usage() }

func (t *Timed) Fail() { t.inner.Fail() }

func (t *Timed) Failed() bool { return t.inner.Failed() }
