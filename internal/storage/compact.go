package storage

import (
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"time"

	"dedupcr/internal/obs"
)

// Background compaction: a sealed segment whose tombstoned fraction
// exceeds SegConfig.GarbageRatio is a victim; its live chunks are copied
// into a fresh segment, the manifest is committed without the victim,
// and only then are the victim's files deleted. A crash at any point
// leaves a recoverable store (see manifest.go); the worst outcome is a
// re-run of the same compaction.
//
// Only committed segments are eligible — segments auto-sealed mid-dump
// belong to an in-flight checkpoint and stay invisible to the manifest
// until that checkpoint's own Commit. Refcount overrides written by a
// compaction manifest snapshot the in-memory counts, which may include
// increments from an in-flight dump; after a crash those over-count (a
// bounded leak, in line with rollbackDump's best-effort stance) but
// never drop a committed chunk.

// Compact synchronously rewrites every victim segment, returning how
// many segments were compacted away. A store without garbage returns
// (0, nil) without touching the disk.
func (s *SegStore) Compact() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// victimsLocked returns the committed segments whose garbage fraction
// reached the configured threshold, in ascending ID order.
func (s *SegStore) victimsLocked() []*segFile {
	var victims []*segFile
	for _, sf := range s.sealed {
		if !sf.committed || sf.dataLen == 0 || sf.garbage == 0 {
			continue
		}
		if float64(sf.garbage)/float64(sf.dataLen) >= s.cfg.GarbageRatio {
			victims = append(victims, sf)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	return victims
}

func (s *SegStore) compactLocked() (int, error) {
	if s.failed {
		return 0, ErrFailed
	}
	victims := s.victimsLocked()
	if len(victims) == 0 {
		return 0, nil
	}
	var reclaimed, copied int64
	for _, v := range victims {
		if err := s.rewriteLocked(v, &copied); err != nil {
			return 0, err
		}
		delete(s.sealed, v.id)
		reclaimed += int64(v.garbage)
	}
	s.crash("compact")
	if err := s.writeManifestLocked("compact-manifest-rename"); err != nil {
		return 0, err
	}
	s.crash("compact-cleanup")
	// The manifest no longer names the victims; their files are garbage
	// whether or not these deletes land (recovery sweeps strays).
	for _, v := range victims {
		v.f.Close()
		os.Remove(s.segPath(v.id))
		os.Remove(s.idxPath(v.id))
	}
	s.counters.Compactions++
	s.counters.SegmentsCompacted += int64(len(victims))
	s.counters.ReclaimedBytes += reclaimed
	s.counters.CopiedBytes += copied
	obs.Logf(obs.KindCompact, -1, "", 0, "compacted %d segments (%d bytes reclaimed, %d copied)",
		len(victims), reclaimed, copied)
	return len(victims), nil
}

// rewriteLocked copies a victim's live chunks into a fresh sealed
// segment and repoints the in-memory index at it. A victim with no live
// chunks needs no replacement. The new segment is invisible until the
// caller commits the manifest.
func (s *SegStore) rewriteLocked(v *segFile, copied *int64) error {
	live := make([]segEntry, 0, len(v.entries))
	for _, e := range v.entries {
		if e.Refs > 0 {
			live = append(live, e)
		}
	}
	if len(live) == 0 {
		return nil
	}
	id := s.nextSeg
	s.nextSeg++
	f, err := os.OpenFile(s.segPath(id), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create compaction segment: %w", err)
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(s.segPath(id))
		return err
	}
	cursor := uint64(0)
	buf := make([]byte, 0)
	for i := range live {
		e := &live[i]
		if uint64(len(buf)) < uint64(e.Length) {
			buf = make([]byte, e.Length)
		}
		b := buf[:e.Length]
		if _, err := v.f.ReadAt(b, int64(e.Offset)); err != nil {
			return fail(fmt.Errorf("storage: compact read %s: %w", e.FP.Short(), err))
		}
		if _, err := f.WriteAt(b, int64(cursor)); err != nil {
			return fail(fmt.Errorf("storage: compact write %s: %w", e.FP.Short(), err))
		}
		e.Offset = cursor
		cursor += uint64(e.Length)
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("storage: sync compaction segment: %w", err))
	}
	idxBytes := encodeSegIndex(live)
	if err := atomicWriteFile(s.idxPath(id), idxBytes, 0o644, s.crash, "compact-idx-rename"); err != nil {
		return fail(err)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].FP.Less(live[j].FP) })
	for slot, e := range live {
		s.index[e.FP] = chunkLoc{seg: id, slot: slot}
	}
	s.sealed[id] = &segFile{
		id: id, f: f, dataLen: cursor, idxSum: crc32.ChecksumIEEE(idxBytes),
		entries: live, committed: true,
	}
	*copied += int64(cursor)
	s.counters.CopiedChunks += int64(len(live))
	return nil
}

// maybeKickLocked nudges the background compactor when a commit left at
// least one victim behind, so reclamation starts promptly instead of
// waiting out the poll interval.
func (s *SegStore) maybeKickLocked() {
	if !s.cfg.AutoCompact || len(s.victimsLocked()) == 0 {
		return
	}
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// compactLoop is the background compactor goroutine: it sweeps after
// every commit kick and every CompactEvery tick, and exits on Close.
// Errors are swallowed by design — compaction is an optimization, and
// the next sweep retries; a failed store stops producing victims.
func (s *SegStore) compactLoop() {
	defer close(s.done)
	tick := time.NewTicker(s.cfg.CompactEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.kick:
		case <-tick.C:
		}
		s.Compact()
	}
}
