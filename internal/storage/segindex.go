package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"dedupcr/internal/fingerprint"
)

// Columnar per-segment fingerprint index, written once when a segment is
// sealed and immutable afterwards (refcount drift after sealing is
// journaled in the manifest, never patched into this file). The encoding
// follows the batch-first discipline of the wire codecs elsewhere in the
// tree: one homogeneous column per field rather than interleaved records,
// varint-packed where the values are small.
//
//	magic "DSix" (4) | version u8 | count uvarint
//	fingerprint column: count × 20 bytes, sorted ascending, no duplicates
//	offset column:      count × uvarint (byte offset of the chunk payload
//	                    in the segment data file)
//	length column:      count × uvarint (payload bytes)
//	refcount column:    count × uvarint (references held at seal time)
//	crc32 (IEEE) of everything above, u32 big-endian
//
// Sorting by fingerprint makes the encoding a pure function of the entry
// *set*: any insertion order yields byte-identical output (the
// determinism contract the 100-run regression test locks in), and lookup
// structures can binary-search the fingerprint column without decoding
// the varint columns.
const (
	segIndexMagic   = "DSix"
	segIndexVersion = 1
	// segIndexMinEntry is the least bytes one entry can occupy: the
	// fingerprint plus one varint byte per packed column. Bounds the
	// count prefix of a hostile index against the input length.
	segIndexMinEntry = fingerprint.Size + 3
)

// segEntry is one chunk's row in a segment index. Offset/Length locate
// the payload inside the segment data file; Refs is the chunk's current
// reference count (mutated in memory after sealing, persisted at seal
// time here and as manifest overrides afterwards).
type segEntry struct {
	FP     fingerprint.FP
	Offset uint64
	Length uint32
	Refs   uint32
}

// encodeSegIndex marshals entries into the columnar index format. The
// input is not mutated; output bytes depend only on the set of entries,
// not their order.
//
//dedupvet:deterministic
func encodeSegIndex(entries []segEntry) []byte {
	sorted := make([]segEntry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].FP.Less(sorted[j].FP) })

	buf := make([]byte, 0, len(segIndexMagic)+1+binary.MaxVarintLen64+len(sorted)*(fingerprint.Size+12)+4)
	buf = append(buf, segIndexMagic...)
	buf = append(buf, segIndexVersion)
	buf = binary.AppendUvarint(buf, uint64(len(sorted)))
	for _, e := range sorted {
		buf = append(buf, e.FP[:]...)
	}
	for _, e := range sorted {
		buf = binary.AppendUvarint(buf, e.Offset)
	}
	for _, e := range sorted {
		buf = binary.AppendUvarint(buf, uint64(e.Length))
	}
	for _, e := range sorted {
		buf = binary.AppendUvarint(buf, uint64(e.Refs))
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeSegIndex unmarshals a columnar segment index, enforcing the
// checksum, strict bounds on every count and varint, canonical ordering
// (strictly ascending fingerprints) and full consumption of the input.
func decodeSegIndex(data []byte) ([]segEntry, error) {
	const hdr = len(segIndexMagic) + 1
	if len(data) < hdr+1+4 {
		return nil, fmt.Errorf("storage: segment index truncated (%d bytes)", len(data))
	}
	if string(data[:len(segIndexMagic)]) != segIndexMagic {
		return nil, fmt.Errorf("storage: bad segment index magic")
	}
	if data[len(segIndexMagic)] != segIndexVersion {
		return nil, fmt.Errorf("storage: segment index version %d, want %d", data[len(segIndexMagic)], segIndexVersion)
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("storage: segment index checksum mismatch (%08x != %08x)", got, sum)
	}
	rest := body[hdr:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("storage: bad segment index count")
	}
	rest = rest[n:]
	if count > uint64(len(rest))/segIndexMinEntry {
		return nil, fmt.Errorf("storage: segment index claims %d entries for %d bytes", count, len(rest))
	}
	entries := make([]segEntry, count)
	if uint64(len(rest)) < count*fingerprint.Size {
		return nil, fmt.Errorf("storage: segment index fingerprint column truncated")
	}
	for i := range entries {
		copy(entries[i].FP[:], rest[uint64(i)*fingerprint.Size:])
		if i > 0 && !entries[i-1].FP.Less(entries[i].FP) {
			return nil, fmt.Errorf("storage: segment index fingerprints not strictly ascending at %d", i)
		}
	}
	rest = rest[count*fingerprint.Size:]
	for i := range entries {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("storage: segment index offset column truncated at %d", i)
		}
		entries[i].Offset, rest = v, rest[n:]
	}
	for i := range entries {
		v, n := binary.Uvarint(rest)
		if n <= 0 || v > maxChunkLen {
			return nil, fmt.Errorf("storage: segment index length column bad at %d", i)
		}
		if entries[i].Offset+v < entries[i].Offset {
			return nil, fmt.Errorf("storage: segment index extent overflow at %d", i)
		}
		entries[i].Length, rest = uint32(v), rest[n:]
	}
	for i := range entries {
		v, n := binary.Uvarint(rest)
		if n <= 0 || v > maxChunkRefs {
			return nil, fmt.Errorf("storage: segment index refcount column bad at %d", i)
		}
		entries[i].Refs, rest = uint32(v), rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("storage: %d trailing bytes after segment index", len(rest))
	}
	return entries, nil
}

// maxChunkLen bounds a single chunk payload (1 GiB, matching the TCP
// frame bound); maxChunkRefs bounds a reference count. Both keep a
// corrupt or hostile index from encoding absurd extents.
const (
	maxChunkLen  = 1 << 30
	maxChunkRefs = 1 << 30
)
