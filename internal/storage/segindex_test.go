package storage

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"

	"dedupcr/internal/fingerprint"
)

// detEntry builds a distinct deterministic index row for index i.
func detEntry(i int) segEntry {
	var fp fingerprint.FP
	for b := range fp {
		fp[b] = byte(i >> (8 * (b % 4)))
		fp[b] ^= byte(37 * b)
	}
	fp[0] = byte(i)
	fp[1] = byte(i >> 8)
	return segEntry{
		FP:     fp,
		Offset: uint64(i) * 4096,
		Length: uint32(1024 + i%3000),
		Refs:   uint32(1 + i%5),
	}
}

// TestSegIndexEncodingByteIdentical locks in the codec's determinism
// contract, mirroring the fingerprint table's 100-run suite: the same
// entry set fed in 100 different insertion orders must encode to
// byte-identical indexes, or recovery checksums (and the manifest's
// carried-forward idxsum) would disagree across rebuilds.
func TestSegIndexEncodingByteIdentical(t *testing.T) {
	const n = 200
	base := make([]segEntry, n)
	for i := range base {
		base[i] = detEntry(i)
	}
	want := encodeSegIndex(base)
	for run := 2; run <= 101; run++ {
		r := rand.New(rand.NewSource(int64(run)))
		shuffled := make([]segEntry, n)
		copy(shuffled, base)
		r.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := encodeSegIndex(shuffled)
		if !bytes.Equal(got, want) {
			t.Fatalf("run %d: shuffled insertion order changed the encoding (%d vs %d bytes)", run, len(got), len(want))
		}
	}
}

func TestSegIndexRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 333} {
		entries := make([]segEntry, n)
		for i := range entries {
			entries[i] = detEntry(i)
		}
		enc := encodeSegIndex(entries)
		dec, err := decodeSegIndex(enc)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(dec) != n {
			t.Fatalf("n=%d: decoded %d entries", n, len(dec))
		}
		// Decode returns fp-sorted rows; compare as sets via re-encode.
		if !bytes.Equal(encodeSegIndex(dec), enc) {
			t.Fatalf("n=%d: decode/re-encode not a fixed point", n)
		}
	}
}

func TestSegIndexDecodeRejectsCorruption(t *testing.T) {
	entries := []segEntry{detEntry(1), detEntry(2), detEntry(3)}
	enc := encodeSegIndex(entries)
	cases := map[string][]byte{
		"empty":     {},
		"magic":     append([]byte("XXXX"), enc[4:]...),
		"version":   append(append([]byte(nil), enc[:4]...), append([]byte{99}, enc[5:]...)...),
		"truncated": enc[:len(enc)-5],
		"flipped":   append([]byte(nil), enc...),
		"trailing":  append(append([]byte(nil), enc...), 0),
	}
	cases["flipped"][len(enc)/2] ^= 0x40
	for name, data := range cases {
		if _, err := decodeSegIndex(data); err == nil {
			t.Errorf("%s: corrupted index decoded without error", name)
		}
	}
	// A hostile count prefix must be rejected by the bound check, not
	// allocate: craft a valid-checksum body claiming 2^40 entries.
	hostile := []byte(segIndexMagic)
	hostile = append(hostile, segIndexVersion)
	hostile = appendUvarintForTest(hostile, 1<<40)
	hostile = appendCRC(hostile)
	if _, err := decodeSegIndex(hostile); err == nil {
		t.Error("hostile count prefix decoded without error")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	cases := []*manifest{
		{Gen: 0, NextSeg: 1},
		{Gen: 7, NextSeg: 12, Segs: []manifestSeg{
			{ID: 3, DataLen: 4096, IdxSum: 0xdeadbeef},
			{ID: 5, DataLen: 1, IdxSum: 1, Refs: []uint32{0, 2, 9}},
			{ID: 11, DataLen: 1 << 30, IdxSum: 0xffffffff},
		}},
	}
	for i, m := range cases {
		enc := m.encode()
		dec, err := decodeManifest(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(dec.Segs) > 0 && !reflect.DeepEqual(m.Segs, dec.Segs) {
			t.Fatalf("case %d: segment round trip mismatch:\n  in  %+v\n  out %+v", i, m.Segs, dec.Segs)
		}
		if dec.Gen != m.Gen || dec.NextSeg != m.NextSeg || len(dec.Segs) != len(m.Segs) {
			t.Fatalf("case %d: header round trip mismatch: %+v vs %+v", i, m, dec)
		}
		if !bytes.Equal(dec.encode(), enc) {
			t.Fatalf("case %d: decode/re-encode not a fixed point", i)
		}
	}
}

func TestManifestDecodeRejectsCorruption(t *testing.T) {
	m := &manifest{Gen: 2, NextSeg: 4, Segs: []manifestSeg{
		{ID: 1, DataLen: 100, IdxSum: 42},
		{ID: 3, DataLen: 200, IdxSum: 43, Refs: []uint32{1, 0}},
	}}
	enc := m.encode()
	cases := map[string][]byte{
		"empty":     {},
		"magic":     append([]byte("XXXX"), enc[4:]...),
		"truncated": enc[:len(enc)-3],
		"flipped":   append([]byte(nil), enc...),
		"trailing":  append(append([]byte(nil), enc...), 7),
	}
	cases["flipped"][len(enc)-6] ^= 0x01
	for name, data := range cases {
		if _, err := decodeManifest(data); err == nil {
			t.Errorf("%s: corrupted manifest decoded without error", name)
		}
	}
	// Non-ascending IDs and a nextseg at or below the last ID are
	// structural corruption even with a valid checksum.
	bad := &manifest{Gen: 1, NextSeg: 3, Segs: []manifestSeg{{ID: 3, DataLen: 1, IdxSum: 1}}}
	if _, err := decodeManifest(bad.encode()); err == nil {
		t.Error("nextseg <= last segment ID decoded without error")
	}
}

// appendUvarintForTest and appendCRC keep hostile-input construction
// readable in the corruption tests and fuzz seeds.
func appendUvarintForTest(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

func appendCRC(body []byte) []byte {
	return binary.BigEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}
