package storage

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dedupcr/internal/fingerprint"
	"dedupcr/internal/metrics"
	"dedupcr/internal/obs"
)

// The segment engine: a log-structured, content-addressed Store. Chunks
// are appended to an active segment data file and the segment is sealed
// — data fsynced, columnar fingerprint index written — once it reaches a
// size threshold. Durability is checkpoint-grained: Commit seals the
// active segment and atomically replaces the manifest, the single file
// naming the store's committed state. A process killed at any instant
// reopens to the last committed checkpoint: recovery replays the
// manifest and discards every unsealed tail (see manifest.go for the
// commit protocol and the case analysis).
//
// Tombstones accumulate in place — ReleaseChunk only drops the in-memory
// reference, leaving the payload as garbage inside its sealed segment —
// and a compactor (background goroutine or explicit Compact call)
// rewrites segments whose garbage fraction exceeds a threshold, copying
// the live chunks into fresh segments and reclaiming the rest. The
// rollback/tombstone machinery of the collective abort protocol and
// Forget are exactly what produces this garbage.

// SegConfig tunes a segment store. The zero value selects defaults.
type SegConfig struct {
	// SegmentTarget is the payload size at which the active segment is
	// sealed mid-dump (Commit always seals). Default 4 MiB.
	SegmentTarget int64
	// GarbageRatio is the tombstoned fraction of a sealed segment's
	// payload above which the compactor rewrites it. Default 0.5.
	GarbageRatio float64
	// AutoCompact starts a background compactor goroutine that sweeps
	// for victim segments after every commit and every CompactEvery.
	AutoCompact bool
	// CompactEvery is the background compactor's poll interval.
	// Default 250ms.
	CompactEvery time.Duration
	// CrashPoint arms the deterministic kill switch of the
	// crash-consistency matrix: the store calls os.Exit(86) when it
	// reaches the named point (see crash_test.go for the points).
	// Empty in production.
	CrashPoint string
}

func (c SegConfig) withDefaults() SegConfig {
	if c.SegmentTarget <= 0 {
		c.SegmentTarget = 4 << 20
	}
	if c.GarbageRatio <= 0 {
		c.GarbageRatio = 0.5
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = 250 * time.Millisecond
	}
	return c
}

// crashExitCode is the status a store armed with a CrashPoint dies
// with, so the crash matrix can tell an injected kill from a real
// failure.
const crashExitCode = 86

// chunkLoc locates a live chunk: the segment holding it and its row in
// that segment's entry table.
type chunkLoc struct {
	seg  uint64
	slot int
}

// segFile is one sealed, immutable segment.
type segFile struct {
	id        uint64
	f         *os.File   // read handle
	dataLen   uint64     // payload bytes in the data file
	idxSum    uint32     // crc32 of the sealed index file's bytes
	garbage   uint64     // guarded by mu: tombstoned payload bytes
	entries   []segEntry // guarded by mu: fp-sorted rows; Refs mutate in memory
	dirty     bool       // guarded by mu: refs diverged from the sealed index
	committed bool       // guarded by mu: named by a committed manifest
}

// activeSeg is the segment currently being appended to. It is invisible
// to the manifest until sealed.
type activeSeg struct {
	id      uint64
	f       *os.File
	len     uint64     // payload bytes appended
	garbage uint64     // bytes of entries already released before sealing
	entries []segEntry // append order; offsets ascending
}

// SegStore is the log-structured segment Store. Create with NewSeg or
// NewSegStore; the extra methods beyond the Store interface are Commit
// (durable checkpoint), Compact (synchronous garbage rewrite), Stats
// (segment/compaction counters) and Close (graceful shutdown: commits
// and stops the background compactor).
type SegStore struct {
	mu   sync.Mutex
	dir  string
	cfg  SegConfig
	blob fileBlobs

	gen        uint64                      // guarded by mu: last committed generation
	nextSeg    uint64                      // guarded by mu: next segment ID to allocate
	sealed     map[uint64]*segFile         // guarded by mu
	active     *activeSeg                  // guarded by mu
	index      map[fingerprint.FP]chunkLoc // guarded by mu: live chunks only
	liveBytes  int64                       // guarded by mu
	liveChunks int                         // guarded by mu
	failed     bool                        // guarded by mu
	counters   metrics.StoreStats          // guarded by mu: monotonic counters only
	closed     bool                        // guarded by mu

	stop chan struct{} // closes to stop the background compactor
	done chan struct{} // compactor exited
	kick chan struct{} // nudges the compactor after a commit
}

var _ Store = (*SegStore)(nil)

// NewSeg opens (creating if needed) a segment store rooted at dir with
// default configuration.
func NewSeg(dir string) (Store, error) { return NewSegStore(dir, SegConfig{}) }

// NewSegStore opens a segment store with explicit configuration,
// running crash recovery against whatever a previous process left in
// dir: the manifest is replayed, sealed segments are re-indexed, and
// unsealed tails, orphaned segment files and stale temp files are
// discarded.
func NewSegStore(dir string, cfg SegConfig) (*SegStore, error) {
	cfg = cfg.withDefaults()
	for _, sub := range []string{"segments", "blobs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("storage: create %s: %w", sub, err)
		}
	}
	s := &SegStore{
		dir:    dir,
		cfg:    cfg,
		sealed: make(map[uint64]*segFile),
		index:  make(map[fingerprint.FP]chunkLoc),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		kick:   make(chan struct{}, 1),
	}
	s.blob = fileBlobs{dir: filepath.Join(dir, "blobs"), crash: s.crash}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if cfg.AutoCompact {
		go s.compactLoop()
	} else {
		close(s.done)
	}
	return s, nil
}

// crash is the deterministic fault-injection hook: a store armed with
// cfg.CrashPoint simulates a kill -9 (no deferred cleanup, no commits)
// at the named point.
func (s *SegStore) crash(point string) {
	if s.cfg.CrashPoint != "" && s.cfg.CrashPoint == point {
		obs.Logger().Error("segstore: injected crash", "point", point)
		os.Exit(crashExitCode)
	}
}

func (s *SegStore) segPath(id uint64) string {
	return filepath.Join(s.dir, "segments", fmt.Sprintf("%016x.seg", id))
}

func (s *SegStore) idxPath(id uint64) string {
	return filepath.Join(s.dir, "segments", fmt.Sprintf("%016x.idx", id))
}

func (s *SegStore) manifestPath() string {
	return filepath.Join(s.dir, manifestName)
}

// recover replays the manifest into memory and deletes everything the
// manifest does not vouch for. Runs before the store is published, so
// fields are accessed without the lock.
//
//dedupvet:locked
func (s *SegStore) recover() error {
	m, err := readManifest(s.manifestPath())
	if err != nil {
		return err
	}
	s.gen = m.Gen
	s.nextSeg = m.NextSeg
	if s.nextSeg == 0 {
		s.nextSeg = 1
	}
	for i := range m.Segs {
		ms := &m.Segs[i]
		idxBytes, err := os.ReadFile(s.idxPath(ms.ID))
		if err != nil {
			return fmt.Errorf("storage: segment %016x index: %w", ms.ID, err)
		}
		if got := crc32.ChecksumIEEE(idxBytes); got != ms.IdxSum {
			return fmt.Errorf("storage: segment %016x index checksum %08x, manifest says %08x", ms.ID, got, ms.IdxSum)
		}
		entries, err := decodeSegIndex(idxBytes)
		if err != nil {
			return fmt.Errorf("storage: segment %016x: %w", ms.ID, err)
		}
		if ms.Refs != nil {
			if len(ms.Refs) != len(entries) {
				return fmt.Errorf("storage: segment %016x refcount override has %d rows for %d entries", ms.ID, len(ms.Refs), len(entries))
			}
			for j := range entries {
				entries[j].Refs = ms.Refs[j]
			}
		}
		f, err := os.Open(s.segPath(ms.ID))
		if err != nil {
			return fmt.Errorf("storage: segment %016x data: %w", ms.ID, err)
		}
		info, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		if uint64(info.Size()) < ms.DataLen {
			f.Close()
			return fmt.Errorf("storage: segment %016x data is %d bytes, manifest says %d", ms.ID, info.Size(), ms.DataLen)
		}
		sf := &segFile{id: ms.ID, f: f, dataLen: ms.DataLen, idxSum: ms.IdxSum, entries: entries, dirty: ms.Refs != nil, committed: true}
		live := uint64(0)
		for slot, e := range entries {
			if uint64(e.Offset)+uint64(e.Length) > ms.DataLen {
				f.Close()
				return fmt.Errorf("storage: segment %016x entry %d extends past data", ms.ID, slot)
			}
			if e.Refs == 0 {
				continue
			}
			if _, dup := s.index[e.FP]; dup {
				f.Close()
				return fmt.Errorf("storage: fingerprint %s live in two segments", e.FP.Short())
			}
			s.index[e.FP] = chunkLoc{seg: ms.ID, slot: slot}
			live += uint64(e.Length)
			s.liveBytes += int64(e.Length)
			s.liveChunks++
		}
		sf.garbage = ms.DataLen - live
		s.sealed[ms.ID] = sf
		if ms.ID >= s.nextSeg {
			s.nextSeg = ms.ID + 1
		}
	}
	// Everything in segments/ the manifest did not name is an unsealed
	// tail, an uncommitted compaction product or a stale temp file.
	entries, err := os.ReadDir(filepath.Join(s.dir, "segments"))
	if err != nil {
		return err
	}
	discarded := 0
	for _, e := range entries {
		name := e.Name()
		base, _, _ := strings.Cut(name, ".")
		id, perr := strconv.ParseUint(base, 16, 64)
		if perr == nil {
			if _, ok := s.sealed[id]; ok && !strings.HasSuffix(name, ".tmp") {
				continue
			}
		}
		os.Remove(filepath.Join(s.dir, "segments", name))
		discarded++
	}
	sweepTmp(s.blob.dir)
	os.Remove(s.manifestPath() + ".tmp")
	obs.Logf(obs.KindRecover, -1, "", 0, "recovered %q: %d segments, %d chunks, %d files discarded",
		s.dir, len(s.sealed), s.liveChunks, discarded)
	if discarded > 0 {
		// Uncommitted state survived a previous crash and was rolled
		// back: black-box the recovery so the crash can be debugged
		// post mortem.
		obs.Trigger(obs.Failure{
			Kind: "crash-recovery", Rank: -1,
			Cause: fmt.Sprintf("recovery of %q discarded %d uncommitted files", s.dir, discarded),
		})
	}
	return nil
}

// entryAtLocked returns the row for loc, from the active or a sealed
// segment.
func (s *SegStore) entryAtLocked(loc chunkLoc) (*segEntry, *os.File) {
	if s.active != nil && loc.seg == s.active.id {
		return &s.active.entries[loc.slot], s.active.f
	}
	sf := s.sealed[loc.seg]
	return &sf.entries[loc.slot], sf.f
}

func (s *SegStore) PutChunk(fp fingerprint.FP, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return ErrFailed
	}
	if loc, ok := s.index[fp]; ok {
		e, _ := s.entryAtLocked(loc)
		e.Refs++
		if sf, sealed := s.sealed[loc.seg]; sealed {
			sf.dirty = true
		}
		return nil
	}
	if s.active == nil {
		f, err := os.OpenFile(s.segPath(s.nextSeg), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("storage: create segment: %w", err)
		}
		s.active = &activeSeg{id: s.nextSeg, f: f}
		s.nextSeg++
	}
	// Positional writes: a partially applied write never desynchronizes
	// the append cursor — the next chunk overwrites the torn bytes.
	if s.cfg.CrashPoint == "torn-append" {
		s.active.f.WriteAt(data[:len(data)/2], int64(s.active.len))
		s.active.f.Sync()
		s.crash("torn-append")
	}
	if _, err := s.active.f.WriteAt(data, int64(s.active.len)); err != nil {
		return fmt.Errorf("storage: append chunk %s: %w", fp.Short(), err)
	}
	s.crash("append")
	s.active.entries = append(s.active.entries, segEntry{
		FP: fp, Offset: s.active.len, Length: uint32(len(data)), Refs: 1,
	})
	s.index[fp] = chunkLoc{seg: s.active.id, slot: len(s.active.entries) - 1}
	s.active.len += uint64(len(data))
	s.liveBytes += int64(len(data))
	s.liveChunks++
	if int64(s.active.len) >= s.cfg.SegmentTarget {
		if err := s.sealLocked(); err != nil {
			return err
		}
	}
	return nil
}

// sealLocked makes the active segment immutable: data fsynced, dead rows
// dropped, the columnar index written atomically. An active segment with
// no live rows is simply discarded.
func (s *SegStore) sealLocked() error {
	a := s.active
	if a == nil || len(a.entries) == 0 {
		if a != nil {
			a.f.Close()
			os.Remove(s.segPath(a.id))
			s.active = nil
		}
		return nil
	}
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync segment %016x: %w", a.id, err)
	}
	s.crash("seal")
	live := make([]segEntry, 0, len(a.entries))
	for _, e := range a.entries {
		if e.Refs > 0 {
			live = append(live, e)
		}
	}
	if len(live) == 0 {
		a.f.Close()
		os.Remove(s.segPath(a.id))
		s.active = nil
		return nil
	}
	idxBytes := encodeSegIndex(live)
	if err := atomicWriteFile(s.idxPath(a.id), idxBytes, 0o644, s.crash, "idx-rename"); err != nil {
		return err
	}
	sort.Slice(live, func(i, j int) bool { return live[i].FP.Less(live[j].FP) })
	liveBytes := uint64(0)
	for slot, e := range live {
		s.index[e.FP] = chunkLoc{seg: a.id, slot: slot}
		liveBytes += uint64(e.Length)
	}
	s.sealed[a.id] = &segFile{
		id: a.id, f: a.f, dataLen: a.len, idxSum: crc32.ChecksumIEEE(idxBytes),
		garbage: a.len - liveBytes, entries: live,
	}
	s.active = nil
	s.counters.Seals++
	obs.Logf(obs.KindSeal, -1, "", 0, "sealed segment %016x (%d bytes, %d live)", a.id, a.len, liveBytes)
	return nil
}

// Commit seals the active segment and atomically publishes the manifest,
// making every chunk, refcount change and tombstone since the previous
// Commit durable. This is the checkpoint commit point the collective
// dump pipeline calls after persisting its metadata blobs and before
// entering the completion barrier.
func (s *SegStore) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return ErrFailed
	}
	if err := s.commitLocked("commit", "manifest-rename"); err != nil {
		return err
	}
	s.maybeKickLocked()
	return nil
}

func (s *SegStore) commitLocked(prePoint, renamePoint string) error {
	if err := s.sealLocked(); err != nil {
		return err
	}
	for _, sf := range s.sealed {
		sf.committed = true
	}
	s.crash(prePoint)
	if err := s.writeManifestLocked(renamePoint); err != nil {
		return err
	}
	s.counters.Commits++
	obs.Logf(obs.KindCommit, -1, "", 0, "manifest committed (%d segments, %d chunks)", len(s.sealed), s.liveChunks)
	return nil
}

// writeManifestLocked atomically publishes the manifest naming every
// committed sealed segment. Segments sealed mid-dump but not yet
// covered by an explicit Commit are excluded — a compaction-triggered
// manifest must never make half a checkpoint durable.
func (s *SegStore) writeManifestLocked(renamePoint string) error {
	m := &manifest{Gen: s.gen + 1, NextSeg: s.nextSeg}
	ids := make([]uint64, 0, len(s.sealed))
	for id, sf := range s.sealed {
		if sf.committed {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sf := s.sealed[id]
		// The index file is immutable after sealing, so its seal-time
		// checksum is carried forward; refcount drift travels in the
		// override column instead.
		ms := manifestSeg{ID: id, DataLen: sf.dataLen, IdxSum: sf.idxSum}
		if sf.dirty {
			ms.Refs = make([]uint32, len(sf.entries))
			for j, e := range sf.entries {
				ms.Refs[j] = e.Refs
			}
		}
		m.Segs = append(m.Segs, ms)
	}
	if err := atomicWriteFile(s.manifestPath(), m.encode(), 0o644, s.crash, renamePoint); err != nil {
		return err
	}
	s.gen = m.Gen
	return nil
}

func (s *SegStore) GetChunk(fp fingerprint.FP) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return nil, ErrFailed
	}
	loc, ok := s.index[fp]
	if !ok {
		return nil, fmt.Errorf("chunk %s: %w", fp.Short(), ErrNotFound)
	}
	e, f := s.entryAtLocked(loc)
	buf := make([]byte, e.Length)
	if _, err := f.ReadAt(buf, int64(e.Offset)); err != nil {
		return nil, fmt.Errorf("storage: read chunk %s: %w", fp.Short(), err)
	}
	return buf, nil
}

func (s *SegStore) HasChunk(fp fingerprint.FP) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return false, ErrFailed
	}
	_, ok := s.index[fp]
	return ok, nil
}

func (s *SegStore) ReleaseChunk(fp fingerprint.FP) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return ErrFailed
	}
	loc, ok := s.index[fp]
	if !ok {
		return fmt.Errorf("release chunk %s: %w", fp.Short(), ErrNotFound)
	}
	e, _ := s.entryAtLocked(loc)
	e.Refs--
	if sf, sealed := s.sealed[loc.seg]; sealed {
		sf.dirty = true
		if e.Refs == 0 {
			sf.garbage += uint64(e.Length)
		}
	} else if e.Refs == 0 {
		s.active.garbage += uint64(e.Length)
	}
	if e.Refs == 0 {
		delete(s.index, fp)
		s.liveBytes -= int64(e.Length)
		s.liveChunks--
		s.counters.TombstonedBytes += int64(e.Length)
	}
	return nil
}

func (s *SegStore) PutBlob(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return ErrFailed
	}
	return s.blob.put(name, data)
}

func (s *SegStore) GetBlob(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return nil, ErrFailed
	}
	return s.blob.get(name)
}

func (s *SegStore) Usage() (int64, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return 0, 0
	}
	return s.liveBytes, s.liveChunks
}

func (s *SegStore) Fail() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return
	}
	s.failed = true
	for _, sf := range s.sealed {
		sf.f.Close()
	}
	if s.active != nil {
		s.active.f.Close()
	}
	os.RemoveAll(filepath.Join(s.dir, "segments"))
	os.RemoveAll(s.blob.dir)
	os.Remove(s.manifestPath())
	s.sealed = map[uint64]*segFile{}
	s.active = nil
	s.index = map[fingerprint.FP]chunkLoc{}
	s.liveBytes = 0
	s.liveChunks = 0
}

func (s *SegStore) Failed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// Close commits pending state, stops the background compactor and
// closes every file handle. The graceful counterpart of a crash; a
// store that is never Closed only loses what was never committed.
func (s *SegStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.cfg.AutoCompact {
		close(s.stop)
		<-s.done
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return nil
	}
	err := s.commitLocked("close-commit", "manifest-rename")
	for _, sf := range s.sealed {
		sf.f.Close()
	}
	if s.active != nil {
		s.active.f.Close()
	}
	return err
}

// Stats snapshots the store's segment and compaction counters.
func (s *SegStore) Stats() metrics.StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.counters
	st.Gen = int64(s.gen)
	st.SealedSegments = int64(len(s.sealed))
	st.Segments = int64(len(s.sealed))
	for _, sf := range s.sealed {
		st.DataBytes += int64(sf.dataLen)
		st.GarbageBytes += int64(sf.garbage)
	}
	if s.active != nil {
		st.Segments++
		st.DataBytes += int64(s.active.len)
		st.GarbageBytes += int64(s.active.garbage)
	}
	st.LiveBytes = s.liveBytes
	st.LiveChunks = int64(s.liveChunks)
	return st
}

// SegStatsOf unwraps instrumentation wrappers (storage.Timed and
// anything else exposing Inner() Store) and returns the underlying
// segment store's stats, or false when the store is not segment-backed.
func SegStatsOf(s Store) (metrics.StoreStats, bool) {
	for {
		if ss, ok := s.(*SegStore); ok {
			return ss.Stats(), true
		}
		w, ok := s.(interface{ Inner() Store })
		if !ok {
			return metrics.StoreStats{}, false
		}
		s = w.Inner()
	}
}
