package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dedupcr/internal/fingerprint"
)

// segChunk builds deterministic chunk content for index i.
func segChunk(i, size int) []byte {
	buf := make([]byte, size)
	for j := range buf {
		buf[j] = byte(i*131 + j*7)
	}
	buf[0] = byte(i)
	buf[1] = byte(i >> 8)
	return buf
}

// openSeg opens a segment store with a small seal threshold so tests
// exercise multi-segment layouts without large writes.
func openSeg(t *testing.T, dir string) *SegStore {
	t.Helper()
	s, err := NewSegStore(dir, SegConfig{SegmentTarget: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSegReopenRestoresCommittedState(t *testing.T) {
	dir := t.TempDir()
	s := openSeg(t, dir)
	const n = 32
	for i := 0; i < n; i++ {
		data := segChunk(i, 1024)
		if err := s.PutChunk(fingerprint.Of(data), data); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutBlob("ds/meta", []byte("recipe")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	wantBytes, wantChunks := s.Usage()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openSeg(t, dir)
	defer r.Close()
	gotBytes, gotChunks := r.Usage()
	if gotBytes != wantBytes || gotChunks != wantChunks {
		t.Fatalf("reopened usage = %d/%d, want %d/%d", gotBytes, gotChunks, wantBytes, wantChunks)
	}
	for i := 0; i < n; i++ {
		data := segChunk(i, 1024)
		got, err := r.GetChunk(fingerprint.Of(data))
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("chunk %d not byte-identical after reopen", i)
		}
	}
	blob, err := r.GetBlob("ds/meta")
	if err != nil || !bytes.Equal(blob, []byte("recipe")) {
		t.Fatalf("blob after reopen = %q, %v", blob, err)
	}
}

func TestSegUncommittedInvisibleAfterReopen(t *testing.T) {
	dir := t.TempDir()
	s := openSeg(t, dir)
	committed := segChunk(0, 1024)
	if err := s.PutChunk(fingerprint.Of(committed), committed); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Appended after the commit and never committed: spans both the
	// unsealed tail and (because of the small target) auto-sealed but
	// unnamed segments. A crash now must lose exactly these.
	for i := 1; i <= 12; i++ {
		data := segChunk(i, 1024)
		if err := s.PutChunk(fingerprint.Of(data), data); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the kill: reopen the directory without Close (Close would
	// commit the tail).
	r := openSeg(t, dir)
	defer r.Close()
	if got, err := r.GetChunk(fingerprint.Of(committed)); err != nil || !bytes.Equal(got, committed) {
		t.Fatalf("committed chunk after reopen: %q, %v", got, err)
	}
	for i := 1; i <= 12; i++ {
		if ok, _ := r.HasChunk(fingerprint.Of(segChunk(i, 1024))); ok {
			t.Fatalf("uncommitted chunk %d visible after reopen", i)
		}
	}
	if _, chunks := r.Usage(); chunks != 1 {
		t.Fatalf("reopened store has %d chunks, want 1", chunks)
	}
}

func TestSegRefcountsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s := openSeg(t, dir)
	data := segChunk(7, 512)
	fp := fingerprint.Of(data)
	if err := s.PutChunk(fp, data); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Second reference lands after sealing: the refcount drift must
	// travel in the manifest's override column, not the immutable index.
	if err := s.PutChunk(fp, data); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openSeg(t, dir)
	defer r.Close()
	if err := r.ReleaseChunk(fp); err != nil {
		t.Fatal(err)
	}
	if ok, _ := r.HasChunk(fp); !ok {
		t.Fatal("chunk deleted after releasing one of two references")
	}
	if err := r.ReleaseChunk(fp); err != nil {
		t.Fatal(err)
	}
	if ok, _ := r.HasChunk(fp); ok {
		t.Fatal("chunk survived releasing both references")
	}
}

// TestSegCompactReclaims is the GC acceptance test: a churn that
// tombstones most of the store must get >=90% of those bytes back.
func TestSegCompactReclaims(t *testing.T) {
	dir := t.TempDir()
	s := openSeg(t, dir)
	defer s.Close()
	const n, size = 64, 1024
	fps := make([]fingerprint.FP, n)
	for i := 0; i < n; i++ {
		data := segChunk(i, size)
		fps[i] = fingerprint.Of(data)
		if err := s.PutChunk(fps[i], data); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Release 75% — every fourth chunk survives, so most segments are
	// mixed live/dead and compaction must copy, not just drop.
	for i := 0; i < n; i++ {
		if i%4 == 0 {
			continue
		}
		if err := s.ReleaseChunk(fps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.TombstonedBytes == 0 {
		t.Fatal("churn produced no tombstoned bytes")
	}
	if r := st.ReclaimRatio(); r < 0.9 {
		t.Fatalf("compaction reclaimed %.3f of tombstoned bytes, want >= 0.9 (stats %+v)", r, st)
	}
	// Survivors must still read back byte-identical from the rewritten
	// segments.
	for i := 0; i < n; i += 4 {
		got, err := s.GetChunk(fps[i])
		if err != nil || !bytes.Equal(got, segChunk(i, size)) {
			t.Fatalf("survivor %d after compaction: %v", i, err)
		}
	}
	// And the on-disk footprint must reflect the reclaim.
	if st.DataBytes >= n*size {
		t.Fatalf("on-disk payload %d bytes after compaction, want < %d", st.DataBytes, n*size)
	}
	// The compacted state must survive a reopen.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openSeg(t, dir)
	defer r.Close()
	for i := 0; i < n; i += 4 {
		if got, err := r.GetChunk(fps[i]); err != nil || !bytes.Equal(got, segChunk(i, size)) {
			t.Fatalf("survivor %d after compaction+reopen: %v", i, err)
		}
	}
}

func TestSegAutoCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSegStore(dir, SegConfig{
		SegmentTarget: 4 << 10, AutoCompact: true, CompactEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 32
	fps := make([]fingerprint.FP, n)
	for i := 0; i < n; i++ {
		data := segChunk(i, 1024)
		fps[i] = fingerprint.Of(data)
		if err := s.PutChunk(fps[i], data); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, fp := range fps {
		if err := s.ReleaseChunk(fp); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if st.Compactions > 0 && st.GarbageBytes == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compactor never reclaimed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSegManifestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s := openSeg(t, dir)
	data := segChunk(1, 512)
	if err := s.PutChunk(fingerprint.Of(data), data); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSeg(dir); err == nil {
		t.Fatal("corrupted manifest opened without error")
	}
}

func TestSegIndexCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s := openSeg(t, dir)
	data := segChunk(2, 512)
	if err := s.PutChunk(fingerprint.Of(data), data); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "segments", "*.idx"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no index files: %v", err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(matches[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSeg(dir); err == nil {
		t.Fatal("corrupted segment index opened without error")
	}
}

func TestSegFailSemantics(t *testing.T) {
	dir := t.TempDir()
	s := openSeg(t, dir)
	data := segChunk(3, 512)
	fp := fingerprint.Of(data)
	if err := s.PutChunk(fp, data); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Fail()
	if err := s.PutChunk(fp, data); !errors.Is(err, ErrFailed) {
		t.Fatalf("put after Fail = %v, want ErrFailed", err)
	}
	if err := s.Commit(); !errors.Is(err, ErrFailed) {
		t.Fatalf("commit after Fail = %v, want ErrFailed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A failed node replaced with a blank store starts empty.
	r := openSeg(t, dir)
	defer r.Close()
	if _, chunks := r.Usage(); chunks != 0 {
		t.Fatalf("store reopened after Fail has %d chunks, want 0", chunks)
	}
}

func TestSegCommitHelperUnwrapsWrappers(t *testing.T) {
	dir := t.TempDir()
	s := openSeg(t, dir)
	defer s.Close()
	data := segChunk(4, 512)
	timed := NewTimed(s)
	if err := timed.PutChunk(fingerprint.Of(data), data); err != nil {
		t.Fatal(err)
	}
	if err := Commit(timed); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Commits; got != 1 {
		t.Fatalf("Commit through Timed reached the engine %d times, want 1", got)
	}
	// And engines without a commit point are a clean no-op.
	if err := Commit(NewMem()); err != nil {
		t.Fatalf("Commit on mem store = %v", err)
	}
}

func TestSegStatsOf(t *testing.T) {
	dir := t.TempDir()
	s := openSeg(t, dir)
	defer s.Close()
	if _, ok := SegStatsOf(NewMem()); ok {
		t.Fatal("SegStatsOf claimed a mem store is segment-backed")
	}
	st, ok := SegStatsOf(NewTimed(s))
	if !ok {
		t.Fatal("SegStatsOf failed to unwrap Timed")
	}
	if st.Segments != 0 {
		t.Fatalf("fresh store reports %d segments", st.Segments)
	}
}

// TestSegManyCheckpoints drives a longer dump/forget churn through the
// engine — the "holds many checkpoints cheaply" claim — and checks the
// store converges instead of growing without bound.
func TestSegManyCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s := openSeg(t, dir)
	defer s.Close()
	live := make(map[int][]fingerprint.FP)
	for ck := 0; ck < 10; ck++ {
		var fps []fingerprint.FP
		for i := 0; i < 16; i++ {
			data := segChunk(ck*16+i, 1024)
			fp := fingerprint.Of(data)
			if err := s.PutChunk(fp, data); err != nil {
				t.Fatal(err)
			}
			fps = append(fps, fp)
		}
		if err := s.PutBlob(fmt.Sprintf("ck%d/meta", ck), []byte{byte(ck)}); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		live[ck] = fps
		if old := ck - 2; old >= 0 {
			for _, fp := range live[old] {
				if err := s.ReleaseChunk(fp); err != nil {
					t.Fatal(err)
				}
			}
			delete(live, old)
			if err := s.Commit(); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	if r := st.ReclaimRatio(); r < 0.9 {
		t.Fatalf("churn reclaim ratio %.3f, want >= 0.9", r)
	}
	for ck, fps := range live {
		for i, fp := range fps {
			got, err := s.GetChunk(fp)
			if err != nil || !bytes.Equal(got, segChunk(ck*16+i, 1024)) {
				t.Fatalf("checkpoint %d chunk %d after churn: %v", ck, i, err)
			}
		}
	}
}
