package storage

import (
	"strings"
	"testing"

	"dedupcr/internal/fingerprint"
	"dedupcr/internal/obs"
)

// TestSegCrashRecoveryBundle asserts the crash-point post-mortem path:
// reopening a store whose previous incarnation died with uncommitted
// state (stray segment files past the committed manifest) must write a
// crash-recovery failure bundle to the configured directory.
func TestSegCrashRecoveryBundle(t *testing.T) {
	prevRec := obs.SetDefault(obs.New(obs.DefaultRingSize))
	defer obs.SetDefault(prevRec)
	bundleRoot := t.TempDir()
	prevDir := obs.SetBundleDir(bundleRoot)
	defer obs.SetBundleDir(prevDir)

	dir := t.TempDir()
	s := openSeg(t, dir)
	committed := segChunk(0, 1024)
	if err := s.PutChunk(fingerprint.Of(committed), committed); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Uncommitted tail, then reopen without Close: the simulated kill.
	for i := 1; i <= 12; i++ {
		data := segChunk(i, 1024)
		if err := s.PutChunk(fingerprint.Of(data), data); err != nil {
			t.Fatal(err)
		}
	}
	r := openSeg(t, dir)
	defer r.Close()

	bundles, err := obs.FindBundles(bundleRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 {
		t.Fatalf("crash recovery wrote %d bundles, want 1", len(bundles))
	}
	f, err := obs.ReadBundleFailure(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != "crash-recovery" {
		t.Errorf("failure kind %q, want %q", f.Kind, "crash-recovery")
	}
	if !strings.Contains(f.Cause, "discarded") {
		t.Errorf("failure cause %q does not mention discarded files", f.Cause)
	}
	// The timeline must carry the recovery event itself.
	events, err := obs.ReadBundleEvents(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	haveRecover := false
	for _, e := range events {
		if e.Kind == obs.KindRecover {
			haveRecover = true
			break
		}
	}
	if !haveRecover {
		t.Error("bundle timeline carries no recovery event")
	}

	// A clean reopen (everything committed) must not write a bundle.
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	clean := openSeg(t, dir)
	defer clean.Close()
	bundles, err = obs.FindBundles(bundleRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 {
		t.Fatalf("clean reopen grew the bundle count to %d, want still 1", len(bundles))
	}
}
