package storage

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"testing"

	"dedupcr/internal/fingerprint"
)

// Crash-consistency matrix: for every injection point in the engine's
// write paths, a helper process is killed (os.Exit, no cleanup — the
// moral equivalent of kill -9 for fs state) exactly there, and the
// parent asserts the reopened store is byte-identical to the last
// committed checkpoint — never a torn mix.
//
// The helper runs two phases over the same directory:
//
//	phase 1 (unarmed): checkpoint 1 — chunks ck1:0..31, a metadata
//	    blob, Commit, Close. This is the durable baseline.
//	phase 2 (armed with the point under test): chunks ck2:0..15, a
//	    blob, release ck1:0..19, Commit, Compact. The injected crash
//	    fires somewhere in here.
//
// Points firing before the phase-2 manifest rename must reopen to
// checkpoint 1 exactly; points firing during compaction (after the
// phase-2 commit) must reopen to the committed phase-2 state.

const (
	crashEnvHelper = "DEDUPCR_CRASH_HELPER"
	crashEnvPoint  = "DEDUPCR_SEG_CRASHPOINT"
	crashEnvDir    = "DEDUPCR_CRASH_DIR"
	crashEnvOp     = "DEDUPCR_CRASH_OP"

	ck1Chunks   = 32
	ck2Chunks   = 16
	ck1Released = 20
	crashChunk  = 1024
)

func ck1Data(i int) []byte { return segChunk(i, crashChunk) }
func ck2Data(i int) []byte { return segChunk(1000+i, crashChunk) }

// ck1Dropped reports whether phase 2 releases ck1 chunk i. Every fourth
// chunk in the retired window survives so each compaction victim keeps
// a live row — that forces the copy-and-reindex path (and its
// compact-idx-rename injection point) instead of whole-segment deletes.
func ck1Dropped(i int) bool { return i < ck1Released && i%4 != 3 }

// TestCrashHelper is the subprocess body; a no-op unless re-executed by
// TestCrashMatrix with the helper environment set.
func TestCrashHelper(t *testing.T) {
	if os.Getenv(crashEnvHelper) != "1" {
		t.Skip("crash-matrix helper; run via TestCrashMatrix")
	}
	dir := os.Getenv(crashEnvDir)
	point := os.Getenv(crashEnvPoint)
	cfg := SegConfig{SegmentTarget: 4 << 10}

	// Phase 1, unarmed: the committed baseline.
	s, err := NewSegStore(dir, cfg)
	if err != nil {
		t.Fatalf("phase 1 open: %v", err)
	}
	for i := 0; i < ck1Chunks; i++ {
		if err := s.PutChunk(fingerprint.Of(ck1Data(i)), ck1Data(i)); err != nil {
			t.Fatalf("phase 1 put %d: %v", i, err)
		}
	}
	if err := s.PutBlob("ck1/meta", []byte("ck1")); err != nil {
		t.Fatalf("phase 1 blob: %v", err)
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("phase 1 commit: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("phase 1 close: %v", err)
	}

	// Phase 2, armed: the store kills itself at the configured point.
	cfg.CrashPoint = point
	s2, err := NewSegStore(dir, cfg)
	if err != nil {
		t.Fatalf("phase 2 open: %v", err)
	}
	for i := 0; i < ck2Chunks; i++ {
		if err := s2.PutChunk(fingerprint.Of(ck2Data(i)), ck2Data(i)); err != nil {
			t.Fatalf("phase 2 put %d: %v", i, err)
		}
	}
	if err := s2.PutBlob("ck2/meta", []byte("ck2")); err != nil {
		t.Fatalf("phase 2 blob: %v", err)
	}
	for i := 0; i < ck1Chunks; i++ {
		if !ck1Dropped(i) {
			continue
		}
		if err := s2.ReleaseChunk(fingerprint.Of(ck1Data(i))); err != nil {
			t.Fatalf("phase 2 release %d: %v", i, err)
		}
	}
	if os.Getenv(crashEnvOp) == "close" {
		s2.Close()
	} else {
		if err := s2.Commit(); err != nil {
			t.Fatalf("phase 2 commit: %v", err)
		}
		if _, err := s2.Compact(); err != nil {
			t.Fatalf("phase 2 compact: %v", err)
		}
	}
	// Reaching here means the injection point never fired; the parent
	// treats any exit status other than crashExitCode as a failure.
	fmt.Fprintf(os.Stderr, "crash helper: point %q never reached\n", point)
}

func TestCrashMatrix(t *testing.T) {
	if os.Getenv(crashEnvHelper) == "1" {
		t.Skip("inside helper")
	}
	// expect: the state the reopened store must show. "ck1" = checkpoint
	// 1 exactly (phase 2 fully lost); "ck2" = the committed phase-2
	// state (releases applied, ck2 chunks live).
	cases := []struct {
		point  string
		op     string // "" = commit+compact, "close" = Close
		expect string
	}{
		{point: "torn-append", expect: "ck1"},
		{point: "append", expect: "ck1"},
		{point: "seal", expect: "ck1"},
		{point: "idx-rename", expect: "ck1"},
		{point: "blob-rename", expect: "ck1"},
		{point: "commit", expect: "ck1"},
		{point: "manifest-rename", expect: "ck1"},
		{point: "close-commit", op: "close", expect: "ck1"},
		{point: "compact-idx-rename", expect: "ck2"},
		{point: "compact", expect: "ck2"},
		{point: "compact-manifest-rename", expect: "ck2"},
		{point: "compact-cleanup", expect: "ck2"},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashHelper$", "-test.v")
			cmd.Env = append(os.Environ(),
				crashEnvHelper+"=1",
				crashEnvPoint+"="+tc.point,
				crashEnvDir+"="+dir,
				crashEnvOp+"="+tc.op,
			)
			out, err := cmd.CombinedOutput()
			var ee *exec.ExitError
			if !errors.As(err, &ee) || ee.ExitCode() != crashExitCode {
				t.Fatalf("helper exited %v, want crash exit %d; output:\n%s", err, crashExitCode, out)
			}
			verifyAfterCrash(t, dir, tc.expect)
		})
	}
}

// verifyAfterCrash reopens the killed store and asserts it recovered to
// the expected committed checkpoint, byte for byte.
func verifyAfterCrash(t *testing.T, dir, expect string) {
	t.Helper()
	s, err := NewSegStore(dir, SegConfig{SegmentTarget: 4 << 10})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer s.Close()

	mustHave := func(label string, data []byte) {
		t.Helper()
		got, err := s.GetChunk(fingerprint.Of(data))
		if err != nil {
			t.Fatalf("%s missing after recovery: %v", label, err)
		}
		if string(got) != string(data) {
			t.Fatalf("%s not byte-identical after recovery", label)
		}
	}
	mustLack := func(label string, data []byte) {
		t.Helper()
		if ok, err := s.HasChunk(fingerprint.Of(data)); err != nil || ok {
			t.Fatalf("%s present after recovery (ok=%v err=%v)", label, ok, err)
		}
	}

	switch expect {
	case "ck1":
		for i := 0; i < ck1Chunks; i++ {
			mustHave(fmt.Sprintf("ck1 chunk %d", i), ck1Data(i))
		}
		for i := 0; i < ck2Chunks; i++ {
			mustLack(fmt.Sprintf("uncommitted ck2 chunk %d", i), ck2Data(i))
		}
		if b, err := s.GetBlob("ck1/meta"); err != nil || string(b) != "ck1" {
			t.Fatalf("ck1 blob after recovery: %q, %v", b, err)
		}
		if _, chunks := s.Usage(); chunks != ck1Chunks {
			t.Fatalf("recovered store has %d chunks, want %d", chunks, ck1Chunks)
		}
	case "ck2":
		dropped := 0
		for i := 0; i < ck1Chunks; i++ {
			if ck1Dropped(i) {
				dropped++
				mustLack(fmt.Sprintf("released ck1 chunk %d", i), ck1Data(i))
			} else {
				mustHave(fmt.Sprintf("surviving ck1 chunk %d", i), ck1Data(i))
			}
		}
		for i := 0; i < ck2Chunks; i++ {
			mustHave(fmt.Sprintf("ck2 chunk %d", i), ck2Data(i))
		}
		for _, name := range []string{"ck1/meta", "ck2/meta"} {
			if _, err := s.GetBlob(name); err != nil {
				t.Fatalf("blob %s after recovery: %v", name, err)
			}
		}
		if _, chunks := s.Usage(); chunks != ck1Chunks-dropped+ck2Chunks {
			t.Fatalf("recovered store has %d chunks, want %d", chunks, ck1Chunks-dropped+ck2Chunks)
		}
	default:
		t.Fatalf("unknown expectation %q", expect)
	}

	// The recovered store must stay fully operational: another
	// checkpoint must commit, survive a reopen, and compact cleanly.
	probe := segChunk(9999, crashChunk)
	if err := s.PutChunk(fingerprint.Of(probe), probe); err != nil {
		t.Fatalf("put after recovery: %v", err)
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatalf("compact after recovery: %v", err)
	}
}
