package storage

import (
	"reflect"
	"testing"
)

// FuzzSegmentIndexDecode drives the columnar index decoder with
// arbitrary bytes: the count prefix and every varint column must never
// panic or size an unbounded allocation (the boundedmake contract), and
// any input that decodes must survive a re-encode/re-decode cycle with
// the same entries. (Byte-identity of the canonical encoding is locked
// separately by TestSegIndexEncodingByteIdentical; arbitrary accepted
// inputs may carry non-minimal varints, which re-encode minimally.)
func FuzzSegmentIndexDecode(f *testing.F) {
	entries := make([]segEntry, 9)
	for i := range entries {
		entries[i] = detEntry(i)
	}
	valid := encodeSegIndex(entries)
	f.Add(valid)
	f.Add(encodeSegIndex(nil))
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte(nil), valid...), 0xFF))
	// A checksummed body claiming far more entries than it holds: the
	// bound check must reject it before allocating.
	hostile := []byte(segIndexMagic)
	hostile = append(hostile, segIndexVersion)
	hostile = appendUvarintForTest(hostile, 1<<40)
	f.Add(appendCRC(hostile))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := decodeSegIndex(data)
		if err != nil {
			return
		}
		enc := encodeSegIndex(dec)
		dec2, err := decodeSegIndex(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded index failed: %v", err)
		}
		if !reflect.DeepEqual(dec, dec2) {
			t.Fatal("index entries changed across a re-encode cycle")
		}
	})
}

// FuzzManifestDecode drives the manifest decoder with arbitrary bytes:
// same contract as the index fuzzer — no panics, bounded allocations,
// and a stable re-encode/re-decode cycle on anything that decodes.
func FuzzManifestDecode(f *testing.F) {
	valid := (&manifest{Gen: 3, NextSeg: 9, Segs: []manifestSeg{
		{ID: 2, DataLen: 4096, IdxSum: 0x1234},
		{ID: 8, DataLen: 64, IdxSum: 0x5678, Refs: []uint32{1, 0, 3}},
	}}).encode()
	f.Add(valid)
	f.Add((&manifest{NextSeg: 1}).encode())
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte(nil), valid...), 0x00))
	// A checksummed body claiming a huge segment count.
	hostile := []byte(manifestMagic)
	hostile = append(hostile, manifestVersion)
	hostile = appendUvarintForTest(hostile, 1) // gen
	hostile = appendUvarintForTest(hostile, 1) // nextseg
	hostile = appendUvarintForTest(hostile, 1<<40)
	f.Add(appendCRC(hostile))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		enc := m.encode()
		m2, err := decodeManifest(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded manifest failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatal("manifest changed across a re-encode cycle")
		}
	})
}
