package storage

import (
	"fmt"
	"os"
	"path/filepath"
)

// atomicWriteFile persists data at path with full crash durability: the
// bytes are written to a temporary file in the same directory, fsynced,
// renamed over the target, and the directory is fsynced so the rename
// itself survives a power cut. A concurrent or post-crash reader never
// observes a half-written file — it sees either the old content or the
// new — which is the primitive both store engines build their commit
// protocols on (chunk and blob writes in the flat engine, segment
// indexes and the manifest in the segment engine).
//
// crash, when non-nil, is the deterministic fault-injection hook of the
// crash-consistency matrix: it is invoked with label after the temp file
// is durable but before the rename — the window in which a kill must
// leave the previous content intact.
func atomicWriteFile(path string, data []byte, perm os.FileMode, crash func(string), label string) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return fmt.Errorf("storage: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: close %s: %w", tmp, err)
	}
	if crash != nil {
		crash(label)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: rename %s: %w", path, err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a rename or unlink inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: sync dir %s: %w", dir, err)
	}
	return nil
}

// fileBlobs is the named-blob side shared by the flat disk engine and
// the segment engine: small metadata blobs (recipes, gc lists, restore
// hints) as individual files under dir, each written atomically. Blob
// names may contain '/' separators; they map to subdirectories.
type fileBlobs struct {
	dir   string
	crash func(string) // crash-injection hook threaded into atomic writes
}

func (b fileBlobs) path(name string) string {
	return filepath.Join(b.dir, filepath.FromSlash(name))
}

func (b fileBlobs) put(name string, data []byte) error {
	path := b.path(name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("storage: blob dir for %q: %w", name, err)
	}
	if err := atomicWriteFile(path, data, 0o644, b.crash, "blob-rename"); err != nil {
		return fmt.Errorf("storage: write blob %q: %w", name, err)
	}
	return nil
}

func (b fileBlobs) get(name string) ([]byte, error) {
	buf, err := os.ReadFile(b.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("blob %q: %w", name, ErrNotFound)
		}
		return nil, err
	}
	return buf, nil
}

// sweepTmp removes stale .tmp files left by a crash between the temp
// write and the rename of an atomic write, recursively under dir.
func sweepTmp(dir string) {
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".tmp" {
			os.Remove(path)
		}
		return nil
	})
}
