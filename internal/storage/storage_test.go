package storage

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"dedupcr/internal/fingerprint"
)

// stores returns every implementation under a common label, so the
// conformance tests below run against all engines.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDisk(filepath.Join(t.TempDir(), "node"))
	if err != nil {
		t.Fatal(err)
	}
	seg, err := NewSeg(filepath.Join(t.TempDir(), "segnode"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMem(), "disk": disk, "seg": seg}
}

func TestPutGetChunk(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("chunk-content")
			fp := fingerprint.Of(data)
			if err := s.PutChunk(fp, data); err != nil {
				t.Fatal(err)
			}
			got, err := s.GetChunk(fp)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("got %q", got)
			}
			ok, err := s.HasChunk(fp)
			if err != nil || !ok {
				t.Fatalf("HasChunk = %v, %v", ok, err)
			}
			if _, err := s.GetChunk(fingerprint.Of([]byte("absent"))); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing chunk error = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestRefcounting(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("shared")
			fp := fingerprint.Of(data)
			for i := 0; i < 3; i++ {
				if err := s.PutChunk(fp, data); err != nil {
					t.Fatal(err)
				}
			}
			b, n := s.Usage()
			if n != 1 || b != int64(len(data)) {
				t.Fatalf("usage after 3 puts = %d bytes / %d chunks, want %d / 1", b, n, len(data))
			}
			// Two releases keep it; the third removes it.
			for i := 0; i < 2; i++ {
				if err := s.ReleaseChunk(fp); err != nil {
					t.Fatal(err)
				}
				if ok, _ := s.HasChunk(fp); !ok {
					t.Fatalf("chunk dropped after %d releases", i+1)
				}
			}
			if err := s.ReleaseChunk(fp); err != nil {
				t.Fatal(err)
			}
			if ok, _ := s.HasChunk(fp); ok {
				t.Fatal("chunk survived final release")
			}
			if b, n := s.Usage(); b != 0 || n != 0 {
				t.Fatalf("usage after full release = %d/%d", b, n)
			}
			if err := s.ReleaseChunk(fp); !errors.Is(err, ErrNotFound) {
				t.Fatalf("releasing absent chunk = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestBlobs(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.PutBlob("ckpt-1/meta-rank000003", []byte("payload")); err != nil {
				t.Fatal(err)
			}
			got, err := s.GetBlob("ckpt-1/meta-rank000003")
			if err != nil || string(got) != "payload" {
				t.Fatalf("got %q, %v", got, err)
			}
			if _, err := s.GetBlob("nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing blob error = %v, want ErrNotFound", err)
			}
			// Overwrite.
			if err := s.PutBlob("ckpt-1/meta-rank000003", []byte("v2")); err != nil {
				t.Fatal(err)
			}
			if got, _ := s.GetBlob("ckpt-1/meta-rank000003"); string(got) != "v2" {
				t.Fatalf("overwrite lost: %q", got)
			}
		})
	}
}

func TestFailSemantics(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("x")
			fp := fingerprint.Of(data)
			if err := s.PutChunk(fp, data); err != nil {
				t.Fatal(err)
			}
			s.Fail()
			if !s.Failed() {
				t.Fatal("Failed() false after Fail()")
			}
			if _, err := s.GetChunk(fp); !errors.Is(err, ErrFailed) {
				t.Fatalf("GetChunk on failed node = %v", err)
			}
			if err := s.PutChunk(fp, data); !errors.Is(err, ErrFailed) {
				t.Fatalf("PutChunk on failed node = %v", err)
			}
			if err := s.PutBlob("b", nil); !errors.Is(err, ErrFailed) {
				t.Fatalf("PutBlob on failed node = %v", err)
			}
			if b, n := s.Usage(); b != 0 || n != 0 {
				t.Fatalf("failed node reports usage %d/%d", b, n)
			}
		})
	}
}

func TestDiskStoreReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "node")
	s, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("persistent-chunk")
	fp := fingerprint.Of(data)
	if err := s.PutChunk(fp, data); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBlob("meta", []byte("m")); err != nil {
		t.Fatal(err)
	}
	// Re-open: content must be indexed again.
	s2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.GetChunk(fp)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("reopened store lost chunk: %v", err)
	}
	if blob, err := s2.GetBlob("meta"); err != nil || string(blob) != "m" {
		t.Fatalf("reopened store lost blob: %v", err)
	}
	if b, n := s2.Usage(); n != 1 || b != int64(len(data)) {
		t.Fatalf("reopened usage = %d/%d", b, n)
	}
}

func TestClusterAccounting(t *testing.T) {
	c := NewCluster(4)
	if c.Size() != 4 {
		t.Fatalf("Size = %d", c.Size())
	}
	for r := 0; r < 4; r++ {
		data := bytes.Repeat([]byte{byte(r)}, (r+1)*10)
		if err := c.Node(r).PutChunk(fingerprint.Of(data), data); err != nil {
			t.Fatal(err)
		}
	}
	total, chunks := c.TotalUsage()
	if total != 10+20+30+40 || chunks != 4 {
		t.Fatalf("TotalUsage = %d/%d", total, chunks)
	}
	if got := c.MaxUsage(); got != 40 {
		t.Fatalf("MaxUsage = %d", got)
	}
	usage := c.UsageByNode()
	if usage[2] != 30 {
		t.Fatalf("UsageByNode[2] = %d", usage[2])
	}
	c.FailNodes(3)
	total, chunks = c.TotalUsage()
	if total != 60 || chunks != 3 {
		t.Fatalf("TotalUsage after failure = %d/%d", total, chunks)
	}
	c.Replace(3)
	if c.Node(3).Failed() {
		t.Fatal("replaced node still failed")
	}
}
