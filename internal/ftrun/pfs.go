package ftrun

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dedupcr/internal/chunk"
	"dedupcr/internal/collectives"
	"dedupcr/internal/core"
	"dedupcr/internal/fingerprint"
	"dedupcr/internal/storage"
)

// Multi-level checkpointing (the SCR/FTI-style architecture the paper's
// related work describes): partner-replicated node-local checkpoints are
// the fast first level; every few epochs a checkpoint is drained to a
// parallel file system — slow, but it survives any number of node losses.
// The PFS is modelled as one shared content-addressed Store, so the drain
// also deduplicates across ranks for free.

// pfsLatest names the PFS blob recording the newest drained epoch.
const pfsLatest = "ftrun/pfs-latest"

// pfsRecipeName names a rank's dataset recipe on the PFS.
func pfsRecipeName(prefix string, epoch, rank int) string {
	return fmt.Sprintf("%s-%06d/pfs-recipe-rank%06d", prefix, epoch, rank)
}

// FlushPFS drains the newest local checkpoint to the shared parallel
// file system store. Collective: every rank reassembles its dataset
// (pulling chunks from peers where its local store does not hold them)
// and writes recipe + chunks to pfs; the shared content addressing
// deduplicates across ranks on the PFS too. Returns the drained epoch.
func (rt *Runtime) FlushPFS(pfs storage.Store) (int, error) {
	epoch, err := rt.newestEpoch()
	if err != nil {
		return -1, err
	}
	if epoch < 0 {
		return -1, ErrNoCheckpoint
	}
	name := rt.ckptName(epoch)
	img, err := core.Restore(rt.comm, rt.store, name)
	if err != nil {
		return -1, fmt.Errorf("ftrun: pfs flush of epoch %d: %w", epoch, err)
	}
	chunks := chunk.NewFixed(rt.opts.ChunkSize).Split(img)
	recipe := chunk.BuildRecipe(chunks)
	for _, ch := range chunks {
		if err := pfs.PutChunk(ch.FP, ch.Data); err != nil {
			return -1, fmt.Errorf("ftrun: pfs chunk write: %w", err)
		}
	}
	blob, err := recipe.MarshalBinary()
	if err != nil {
		return -1, err
	}
	if err := pfs.PutBlob(pfsRecipeName(rt.opts.Name, epoch, rt.comm.Rank()), blob); err != nil {
		return -1, err
	}
	// Rank 0 records the newest drained epoch once everyone is done.
	if err := collectives.Barrier(rt.comm); err != nil {
		return -1, err
	}
	if rt.comm.Rank() == 0 {
		var rec [8]byte
		binary.BigEndian.PutUint64(rec[:], uint64(epoch))
		if err := pfs.PutBlob(pfsLatest, rec[:]); err != nil {
			return -1, err
		}
	}
	if err := collectives.Barrier(rt.comm); err != nil {
		return -1, err
	}
	return epoch, nil
}

// RestartFromPFS restores the newest PFS checkpoint into the registered
// regions — the last line of defence when more than K-1 nodes (or the
// whole machine) died. Collective only in the trivial sense: each rank
// reads its own recipe and chunks from the shared store.
func (rt *Runtime) RestartFromPFS(pfs storage.Store) (int, error) {
	img, epoch, err := rt.pfsImage(pfs)
	if err != nil {
		return -1, err
	}
	if err := rt.loadImage(img); err != nil {
		return -1, err
	}
	rt.epoch = epoch
	return epoch, nil
}

// RestartAppFromPFS is the application-mode variant of RestartFromPFS.
func (rt *Runtime) RestartAppFromPFS(pfs storage.Store, app Checkpointable) (int, error) {
	img, epoch, err := rt.pfsImage(pfs)
	if err != nil {
		return -1, err
	}
	if err := app.RestoreImage(img); err != nil {
		return -1, err
	}
	rt.epoch = epoch
	return epoch, nil
}

func (rt *Runtime) pfsImage(pfs storage.Store) ([]byte, int, error) {
	blob, err := pfs.GetBlob(pfsLatest)
	if err != nil || len(blob) != 8 {
		if errors.Is(err, storage.ErrNotFound) || len(blob) != 8 {
			return nil, -1, ErrNoCheckpoint
		}
		return nil, -1, err
	}
	epoch := int(binary.BigEndian.Uint64(blob))
	recBlob, err := pfs.GetBlob(pfsRecipeName(rt.opts.Name, epoch, rt.comm.Rank()))
	if err != nil {
		return nil, -1, fmt.Errorf("ftrun: pfs recipe for epoch %d: %w", epoch, err)
	}
	var recipe chunk.Recipe
	if err := recipe.UnmarshalBinary(recBlob); err != nil {
		return nil, -1, err
	}
	img, err := recipe.Assemble(func(fp fingerprint.FP) ([]byte, error) {
		return pfs.GetChunk(fp)
	})
	if err != nil {
		return nil, -1, fmt.Errorf("ftrun: pfs assemble epoch %d: %w", epoch, err)
	}
	return img, epoch, nil
}
