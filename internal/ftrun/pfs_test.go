package ftrun

import (
	"bytes"
	"fmt"
	"testing"

	"dedupcr/internal/apps/hpccg"
	"dedupcr/internal/collectives"
	"dedupcr/internal/storage"
)

func TestFlushAndRestartFromPFS(t *testing.T) {
	const n = 6
	cluster := storage.NewCluster(n)
	pfs := storage.NewMem() // the shared parallel file system
	images := make([][]byte, n)

	// Phase 1: run, checkpoint locally, drain to the PFS.
	err := collectives.Run(n, func(c collectives.Comm) error {
		rt := New(c, cluster.Node(c.Rank()), testOpts())
		app := hpccg.New(c.Rank(), n, hpccg.Config{NX: 6, NY: 6, NZ: 6})
		for i := 0; i < 3; i++ {
			app.Step()
		}
		if _, err := rt.CheckpointApp(app); err != nil {
			return err
		}
		epoch, err := rt.FlushPFS(pfs)
		if err != nil {
			return err
		}
		if epoch != 0 {
			return fmt.Errorf("flushed epoch %d, want 0", epoch)
		}
		images[c.Rank()] = app.CheckpointImage()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// The PFS deduplicates across ranks: shared pages stored once.
	var raw int64
	for _, img := range images {
		raw += int64(len(img))
	}
	used, _ := pfs.Usage()
	if used >= raw {
		t.Errorf("PFS holds %d bytes for %d raw; cross-rank dedup missing", used, raw)
	}

	// Phase 2: catastrophic loss — every node's local storage dies.
	// Only the PFS level survives.
	for r := 0; r < n; r++ {
		cluster.FailNodes(r)
		cluster.Replace(r)
	}
	err = collectives.Run(n, func(c collectives.Comm) error {
		rt := New(c, cluster.Node(c.Rank()), testOpts())
		app := hpccg.New(c.Rank(), n, hpccg.Config{NX: 6, NY: 6, NZ: 6})
		// Local restart must fail first (nothing survived).
		if _, err := rt.RestartApp(app); err != ErrNoCheckpoint {
			return fmt.Errorf("local restart after total loss: %v, want ErrNoCheckpoint", err)
		}
		epoch, err := rt.RestartAppFromPFS(pfs, app)
		if err != nil {
			return err
		}
		if epoch != 0 {
			return fmt.Errorf("PFS restart epoch %d, want 0", epoch)
		}
		if !bytes.Equal(app.CheckpointImage(), images[c.Rank()]) {
			return fmt.Errorf("rank %d PFS restart produced wrong state", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlushPFSWithoutCheckpoint(t *testing.T) {
	const n = 2
	cluster := storage.NewCluster(n)
	pfs := storage.NewMem()
	err := collectives.Run(n, func(c collectives.Comm) error {
		rt := New(c, cluster.Node(c.Rank()), testOpts())
		if _, err := rt.FlushPFS(pfs); err != ErrNoCheckpoint {
			return fmt.Errorf("got %v, want ErrNoCheckpoint", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRestartFromEmptyPFS(t *testing.T) {
	const n = 2
	cluster := storage.NewCluster(n)
	pfs := storage.NewMem()
	err := collectives.Run(n, func(c collectives.Comm) error {
		rt := New(c, cluster.Node(c.Rank()), testOpts())
		rt.Register("s", 64)
		if _, err := rt.RestartFromPFS(pfs); err != ErrNoCheckpoint {
			return fmt.Errorf("got %v, want ErrNoCheckpoint", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTransparentModePFSRoundTrip(t *testing.T) {
	const n = 4
	cluster := storage.NewCluster(n)
	pfs := storage.NewMem()
	err := collectives.Run(n, func(c collectives.Comm) error {
		rt := New(c, cluster.Node(c.Rank()), testOpts())
		state := rt.Register("state", 2048)
		for i := range state {
			state[i] = byte(i ^ c.Rank())
		}
		if _, err := rt.Checkpoint(); err != nil {
			return err
		}
		if _, err := rt.FlushPFS(pfs); err != nil {
			return err
		}
		for i := range state {
			state[i] = 0
		}
		if _, err := rt.RestartFromPFS(pfs); err != nil {
			return err
		}
		for i := range state {
			if state[i] != byte(i^c.Rank()) {
				return fmt.Errorf("rank %d: state not restored from PFS", c.Rank())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
