package ftrun

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"dedupcr/internal/apps/hpccg"
	"dedupcr/internal/collectives"
	"dedupcr/internal/core"
	"dedupcr/internal/storage"
)

func testOpts() core.Options {
	return core.Options{K: 3, Approach: core.CollDedup, ChunkSize: 256}
}

func TestTransparentModeRoundTrip(t *testing.T) {
	const n = 6
	cluster := storage.NewCluster(n)
	err := collectives.Run(n, func(c collectives.Comm) error {
		rt := New(c, cluster.Node(c.Rank()), testOpts())
		state := rt.Register("state", 4096)
		aux := rt.Register("aux", 1000)
		for i := range state {
			state[i] = byte(i * (c.Rank() + 1))
		}
		copy(aux, []byte(fmt.Sprintf("aux-of-%d", c.Rank())))
		if _, err := rt.Checkpoint(); err != nil {
			return err
		}
		// Clobber and restart.
		for i := range state {
			state[i] = 0xFF
		}
		epoch, err := rt.Restart()
		if err != nil {
			return err
		}
		if epoch != 0 {
			return fmt.Errorf("restarted from epoch %d, want 0", epoch)
		}
		for i := range state {
			if state[i] != byte(i*(c.Rank()+1)) {
				return fmt.Errorf("rank %d state[%d] not restored", c.Rank(), i)
			}
		}
		if string(aux[:len(fmt.Sprintf("aux-of-%d", c.Rank()))]) != fmt.Sprintf("aux-of-%d", c.Rank()) {
			return fmt.Errorf("rank %d aux region not restored", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRestartPicksNewestEpoch(t *testing.T) {
	const n = 4
	cluster := storage.NewCluster(n)
	err := collectives.Run(n, func(c collectives.Comm) error {
		rt := New(c, cluster.Node(c.Rank()), testOpts())
		state := rt.Register("s", 512)
		for epoch := 0; epoch < 3; epoch++ {
			for i := range state {
				state[i] = byte(epoch*50 + c.Rank())
			}
			if _, err := rt.Checkpoint(); err != nil {
				return err
			}
		}
		for i := range state {
			state[i] = 0
		}
		epoch, err := rt.Restart()
		if err != nil {
			return err
		}
		if epoch != 2 {
			return fmt.Errorf("restarted epoch %d, want 2", epoch)
		}
		if state[0] != byte(2*50+c.Rank()) {
			return fmt.Errorf("rank %d restored stale state", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRestartAfterNodeLoss(t *testing.T) {
	const n, failed = 8, 5
	cluster := storage.NewCluster(n)
	images := make([][]byte, n)
	// Phase 1: run, checkpoint.
	err := collectives.Run(n, func(c collectives.Comm) error {
		rt := New(c, cluster.Node(c.Rank()), testOpts())
		app := hpccg.New(c.Rank(), n, hpccg.Config{NX: 6, NY: 6, NZ: 6})
		for i := 0; i < 3; i++ {
			app.Step()
		}
		if _, err := rt.CheckpointApp(app); err != nil {
			return err
		}
		images[c.Rank()] = app.CheckpointImage()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The node dies (local storage and the epoch blob are gone) and is
	// replaced with blank storage.
	cluster.FailNodes(failed)
	cluster.Replace(failed)
	// Phase 2: restart everywhere, including the replaced node.
	err = collectives.Run(n, func(c collectives.Comm) error {
		rt := New(c, cluster.Node(c.Rank()), testOpts())
		app := hpccg.New(c.Rank(), n, hpccg.Config{NX: 6, NY: 6, NZ: 6})
		epoch, err := rt.RestartApp(app)
		if err != nil {
			return err
		}
		if epoch != 0 {
			return fmt.Errorf("restarted epoch %d, want 0", epoch)
		}
		if !bytes.Equal(app.CheckpointImage(), images[c.Rank()]) {
			return fmt.Errorf("rank %d state differs after restart", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTruncateReclaimsOldEpochs(t *testing.T) {
	const n = 6
	cluster := storage.NewCluster(n)
	err := collectives.Run(n, func(c collectives.Comm) error {
		rt := New(c, cluster.Node(c.Rank()), testOpts())
		state := rt.Register("s", 4096)
		for epoch := 0; epoch < 4; epoch++ {
			for i := range state {
				state[i] = byte(epoch*37 + i + c.Rank())
			}
			if _, err := rt.Checkpoint(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	before, _ := cluster.TotalUsage()

	// Keep only the newest two epochs on every node.
	err = collectives.Run(n, func(c collectives.Comm) error {
		rt := New(c, cluster.Node(c.Rank()), testOpts())
		rt.Register("s", 4096)
		// Adopt the epoch position of the existing checkpoints.
		if _, err := rt.Restart(); err != nil {
			return err
		}
		if err := rt.Truncate(2); err != nil {
			return err
		}
		if err := rt.Truncate(0); err == nil {
			return fmt.Errorf("Truncate(0) accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	after, _ := cluster.TotalUsage()
	if after >= before {
		t.Fatalf("truncation reclaimed nothing: %d -> %d bytes", before, after)
	}

	// The newest epoch must still restart.
	err = collectives.Run(n, func(c collectives.Comm) error {
		rt := New(c, cluster.Node(c.Rank()), testOpts())
		state := rt.Register("s", 4096)
		epoch, err := rt.Restart()
		if err != nil {
			return err
		}
		if epoch != 3 {
			return fmt.Errorf("restarted epoch %d, want 3", epoch)
		}
		if state[0] != byte(3*37+c.Rank()) {
			return fmt.Errorf("rank %d restored stale state after truncation", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRestartWithNoCheckpoint(t *testing.T) {
	const n = 3
	cluster := storage.NewCluster(n)
	err := collectives.Run(n, func(c collectives.Comm) error {
		rt := New(c, cluster.Node(c.Rank()), testOpts())
		rt.Register("s", 64)
		_, err := rt.Restart()
		if err != ErrNoCheckpoint {
			return fmt.Errorf("got %v, want ErrNoCheckpoint", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestImageRegionMismatchRejected(t *testing.T) {
	const n = 2
	cluster := storage.NewCluster(n)
	err := collectives.Run(n, func(c collectives.Comm) error {
		rt := New(c, cluster.Node(c.Rank()), core.Options{K: 1, Approach: core.LocalDedup, ChunkSize: 256})
		rt.Register("a", 128)
		if _, err := rt.Checkpoint(); err != nil {
			return err
		}
		// A differently shaped runtime must refuse the image.
		rt2 := New(c, cluster.Node(c.Rank()), core.Options{K: 1, Approach: core.LocalDedup, ChunkSize: 256})
		rt2.Register("b", 128)
		if _, err := rt2.Restart(); err == nil {
			return fmt.Errorf("mismatched region layout accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNewRejectsBadK: an invalid replication factor is caught at
// construction and surfaced by every operation — none of which may reach
// a collective step, since a misconfigured rank would deadlock the group.
func TestNewRejectsBadK(t *testing.T) {
	const n = 2
	cluster := storage.NewCluster(n)
	err := collectives.Run(n, func(c collectives.Comm) error {
		for _, k := range []int{-3, 0, n + 1} {
			rt := New(c, cluster.Node(c.Rank()), core.Options{K: k})
			rt.Register("state", 64)
			if _, err := rt.Checkpoint(); err == nil {
				return fmt.Errorf("Checkpoint accepted K=%d", k)
			}
			if _, err := rt.Restart(); err == nil {
				return fmt.Errorf("Restart accepted K=%d", k)
			}
			if err := rt.Truncate(1); err == nil {
				return fmt.Errorf("Truncate accepted K=%d", k)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointCtxCancelled: a cancelled context fails the checkpoint
// fast with the cancellation cause, on every rank, before any collective
// step can block.
func TestCheckpointCtxCancelled(t *testing.T) {
	const n = 2
	cluster := storage.NewCluster(n)
	cause := errors.New("job preempted")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	err := collectives.Run(n, func(c collectives.Comm) error {
		rt := New(c, cluster.Node(c.Rank()), core.Options{K: 2, Approach: core.CollDedup, ChunkSize: 256})
		rt.Register("state", 1024)
		if _, err := rt.CheckpointCtx(ctx); !errors.Is(err, cause) {
			return fmt.Errorf("rank %d: %v, want the cancellation cause", c.Rank(), err)
		}
		if _, err := rt.RestartCtx(ctx); !errors.Is(err, cause) {
			return fmt.Errorf("rank %d restart: %v, want the cancellation cause", c.Rank(), err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
