// Package ftrun is the fault-tolerance runtime the paper integrates its
// I/O library with (AC-FTE): it tracks the application's checkpointable
// memory, drives the collective DUMP_OUTPUT primitive at checkpoint time,
// and restores the newest surviving checkpoint after failures.
//
// Two usage modes mirror AC-FTE's:
//
//   - transparent mode: the application allocates its state through
//     Register, the runtime's tracking allocator (the jemalloc-capture
//     substitute); Checkpoint serializes every registered region.
//   - application mode: the application implements Checkpointable and
//     hands the runtime a serialized image per checkpoint.
package ftrun

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dedupcr/internal/collectives"
	"dedupcr/internal/core"
	"dedupcr/internal/metrics"
	"dedupcr/internal/storage"
)

// Checkpointable is the application-level checkpoint interface.
type Checkpointable interface {
	// CheckpointImage serializes the application state.
	CheckpointImage() []byte
	// RestoreImage loads a previously serialized state.
	RestoreImage([]byte) error
}

// Region is a tracked memory region. The runtime owns the backing slice;
// the application computes directly in it, so a checkpoint captures the
// live state with no extra copy — the transparent-mode property AC-FTE
// gets from interposing on the allocator.
type Region struct {
	Name string
	Data []byte
}

// Runtime drives checkpoint-restart for one rank.
type Runtime struct {
	comm  collectives.Comm
	store storage.Store
	opts  core.Options

	regions []*Region
	epoch   int
	// oldest is the lowest epoch not yet reclaimed by Truncate.
	oldest int

	// initErr records an invalid configuration detected at construction;
	// every operation returns it, keeping New's signature error-free.
	initErr error

	// LastDump holds the metrics of the most recent checkpoint.
	LastDump *metrics.Dump
}

// ErrNoCheckpoint is returned by Restart when no rank has any checkpoint.
var ErrNoCheckpoint = errors.New("ftrun: no surviving checkpoint")

// latestBlob names the blob recording the newest checkpoint epoch.
const latestBlob = "ftrun/latest"

// New creates a runtime for this rank. opts.Name is used as the
// checkpoint name prefix (default "ckpt"). An invalid replication factor
// (K < 1, or K exceeding the group size) is rejected consistently with
// core's option validation: New still returns a runtime, but every
// operation on it fails with the configuration error.
func New(comm collectives.Comm, store storage.Store, opts core.Options) *Runtime {
	if opts.Name == "" || opts.Name == "dataset" {
		opts.Name = "ckpt"
	}
	rt := &Runtime{comm: comm, store: store, opts: opts, epoch: -1}
	if opts.K < 1 {
		rt.initErr = fmt.Errorf("ftrun: replication factor K=%d must be >= 1", opts.K)
	} else if opts.K > comm.Size() {
		rt.initErr = fmt.Errorf("ftrun: replication factor K=%d exceeds group size %d", opts.K, comm.Size())
	}
	return rt
}

// Register allocates a tracked region of the given size and returns its
// backing slice for the application to compute in.
func (rt *Runtime) Register(name string, size int) []byte {
	r := &Region{Name: name, Data: make([]byte, size)}
	rt.regions = append(rt.regions, r)
	return r.Data
}

// Adopt places an existing buffer under runtime tracking. The runtime
// captures whatever the slice holds at checkpoint time.
func (rt *Runtime) Adopt(name string, data []byte) {
	rt.regions = append(rt.regions, &Region{Name: name, Data: data})
}

// Regions returns the tracked regions in registration order.
func (rt *Runtime) Regions() []*Region { return rt.regions }

// Epoch returns the epoch of the last checkpoint taken or restored, or
// -1 if none.
func (rt *Runtime) Epoch() int { return rt.epoch }

// ckptName returns the dataset name of an epoch.
func (rt *Runtime) ckptName(epoch int) string {
	return fmt.Sprintf("%s-%06d", rt.opts.Name, epoch)
}

// image serializes the region directory followed by the region contents:
//
//	u32 nRegions | per region: u16 nameLen | name | u64 size
//	then each region's bytes, in order.
func (rt *Runtime) image() ([]byte, error) {
	var total int
	for _, r := range rt.regions {
		total += len(r.Data)
	}
	buf := make([]byte, 0, 4+len(rt.regions)*32+total)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(rt.regions)))
	for _, r := range rt.regions {
		if len(r.Name) > 0xFFFF {
			return nil, fmt.Errorf("ftrun: region name %q too long", r.Name[:32])
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Name)))
		buf = append(buf, r.Name...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(len(r.Data)))
	}
	for _, r := range rt.regions {
		buf = append(buf, r.Data...)
	}
	return buf, nil
}

// loadImage splits a checkpoint image back into the registered regions.
// The region layout (names, sizes, order) must match registration —
// restart re-runs the same program, so it does.
func (rt *Runtime) loadImage(buf []byte) error {
	if len(buf) < 4 {
		return fmt.Errorf("ftrun: image truncated")
	}
	n := int(binary.BigEndian.Uint32(buf))
	buf = buf[4:]
	if n != len(rt.regions) {
		return fmt.Errorf("ftrun: image has %d regions, runtime tracks %d", n, len(rt.regions))
	}
	type hdr struct {
		name string
		size uint64
	}
	hdrs := make([]hdr, n)
	for i := 0; i < n; i++ {
		if len(buf) < 2 {
			return fmt.Errorf("ftrun: region header %d truncated", i)
		}
		nameLen := int(binary.BigEndian.Uint16(buf))
		buf = buf[2:]
		if len(buf) < nameLen+8 {
			return fmt.Errorf("ftrun: region header %d truncated", i)
		}
		hdrs[i].name = string(buf[:nameLen])
		hdrs[i].size = binary.BigEndian.Uint64(buf[nameLen:])
		buf = buf[nameLen+8:]
	}
	for i, h := range hdrs {
		r := rt.regions[i]
		if h.name != r.Name || h.size != uint64(len(r.Data)) {
			return fmt.Errorf("ftrun: region %d is %q/%d in image but %q/%d registered",
				i, h.name, h.size, r.Name, len(r.Data))
		}
		if uint64(len(buf)) < h.size {
			return fmt.Errorf("ftrun: region %q content truncated", h.name)
		}
		copy(r.Data, buf[:h.size])
		buf = buf[h.size:]
	}
	if len(buf) != 0 {
		return fmt.Errorf("ftrun: %d trailing bytes in image", len(buf))
	}
	return nil
}

// Checkpoint takes a collective checkpoint of all registered regions.
// All ranks must call it together.
//
//dedupvet:compat context-less convenience wrapper over CheckpointCtx
func (rt *Runtime) Checkpoint() (*core.Result, error) {
	return rt.CheckpointCtx(context.Background())
}

// CheckpointCtx is Checkpoint under a context: cancellation aborts the
// collective dump on every rank (see core.DumpOutputCtx).
func (rt *Runtime) CheckpointCtx(ctx context.Context) (*core.Result, error) {
	img, err := rt.image()
	if err != nil {
		return nil, err
	}
	return rt.checkpointImage(ctx, img)
}

// CheckpointApp takes a collective checkpoint of an application-mode app.
//
//dedupvet:compat context-less convenience wrapper over CheckpointAppCtx
func (rt *Runtime) CheckpointApp(app Checkpointable) (*core.Result, error) {
	return rt.CheckpointAppCtx(context.Background(), app)
}

// CheckpointAppCtx is CheckpointApp under a context.
func (rt *Runtime) CheckpointAppCtx(ctx context.Context, app Checkpointable) (*core.Result, error) {
	return rt.checkpointImage(ctx, app.CheckpointImage())
}

func (rt *Runtime) checkpointImage(ctx context.Context, img []byte) (*core.Result, error) {
	if rt.initErr != nil {
		return nil, rt.initErr
	}
	epoch := rt.epoch + 1
	o := rt.opts
	o.Name = rt.ckptName(epoch)
	res, err := core.DumpOutputCtx(ctx, rt.comm, rt.store, img, o)
	if err != nil {
		return nil, fmt.Errorf("ftrun: checkpoint %d: %w", epoch, err)
	}
	var rec [8]byte
	binary.BigEndian.PutUint64(rec[:], uint64(epoch))
	if err := rt.store.PutBlob(latestBlob, rec[:]); err != nil && !errors.Is(err, storage.ErrFailed) {
		return nil, err
	}
	rt.epoch = epoch
	rt.LastDump = &res.Metrics
	return res, nil
}

// newestEpoch agrees collectively on the newest epoch any surviving rank
// knows about (-1 if none).
func (rt *Runtime) newestEpoch() (int, error) {
	local := int64(-1)
	if blob, err := rt.store.GetBlob(latestBlob); err == nil && len(blob) == 8 {
		local = int64(binary.BigEndian.Uint64(blob))
	}
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, uint64(local))
	out, err := collectives.Allreduce(rt.comm, buf, maxInt64Merge)
	if err != nil {
		return -1, err
	}
	v := int64(binary.BigEndian.Uint64(out))
	if v > math.MaxInt32 {
		return -1, fmt.Errorf("ftrun: implausible epoch %d", v)
	}
	return int(v), nil
}

func maxInt64Merge(acc, other []byte) ([]byte, error) {
	a := int64(binary.BigEndian.Uint64(acc))
	b := int64(binary.BigEndian.Uint64(other))
	if b > a {
		a = b
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, uint64(a))
	return out, nil
}

// Truncate reclaims local storage of old checkpoints, keeping the newest
// keepLast epochs. Chunks shared with retained checkpoints survive via
// reference counting (consecutive checkpoints typically overlap heavily,
// so truncation mostly releases the delta). Local and non-collective.
func (rt *Runtime) Truncate(keepLast int) error {
	if rt.initErr != nil {
		return rt.initErr
	}
	if keepLast < 1 {
		return fmt.Errorf("ftrun: must keep at least one checkpoint, got %d", keepLast)
	}
	for ; rt.oldest <= rt.epoch-keepLast; rt.oldest++ {
		err := core.Forget(rt.store, rt.ckptName(rt.oldest), rt.comm.Rank())
		if err != nil && !errors.Is(err, storage.ErrNotFound) && !errors.Is(err, storage.ErrFailed) {
			return fmt.Errorf("ftrun: truncate epoch %d: %w", rt.oldest, err)
		}
	}
	return nil
}

// Restart restores the newest surviving checkpoint into the registered
// regions (transparent mode). Collective.
//
//dedupvet:compat context-less convenience wrapper over RestartCtx
func (rt *Runtime) Restart() (int, error) {
	return rt.RestartCtx(context.Background())
}

// RestartCtx is Restart under a context: cancellation aborts both the
// epoch agreement and the collective restore on every rank.
func (rt *Runtime) RestartCtx(ctx context.Context) (int, error) {
	img, epoch, err := rt.restartImage(ctx)
	if err != nil {
		return -1, err
	}
	if err := rt.loadImage(img); err != nil {
		return -1, err
	}
	return epoch, nil
}

// RestartApp restores the newest surviving checkpoint into an
// application-mode app. Collective.
//
//dedupvet:compat context-less convenience wrapper over RestartAppCtx
func (rt *Runtime) RestartApp(app Checkpointable) (int, error) {
	return rt.RestartAppCtx(context.Background(), app)
}

// RestartAppCtx is RestartApp under a context.
func (rt *Runtime) RestartAppCtx(ctx context.Context, app Checkpointable) (int, error) {
	img, epoch, err := rt.restartImage(ctx)
	if err != nil {
		return -1, err
	}
	if err := app.RestoreImage(img); err != nil {
		return -1, err
	}
	return epoch, nil
}

func (rt *Runtime) restartImage(ctx context.Context) ([]byte, int, error) {
	if rt.initErr != nil {
		return nil, -1, rt.initErr
	}
	// The epoch agreement is itself collective: run it under the context
	// watcher so a cancellation arriving before (or during) the restore
	// proper still unblocks the Allreduce on every rank.
	stop := collectives.WatchContext(ctx, rt.comm)
	epoch, err := rt.newestEpoch()
	stop()
	if err != nil {
		return nil, -1, err
	}
	if epoch < 0 {
		return nil, -1, ErrNoCheckpoint
	}
	img, err := core.RestoreCtx(ctx, rt.comm, rt.store, rt.ckptName(epoch))
	if err != nil {
		return nil, -1, fmt.Errorf("ftrun: restart from epoch %d: %w", epoch, err)
	}
	rt.epoch = epoch
	return img, epoch, nil
}
