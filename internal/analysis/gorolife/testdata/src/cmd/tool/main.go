// Command tool shows gorolife's scope: binaries may run
// process-lifetime goroutines, so nothing here is flagged.
package main

func main() {
	go func() {
		for {
			_ = 1
		}
	}()
	select {}
}
