// Package pool is the gorolife golden corpus: goroutines with and
// without provable exit paths.
package pool

import (
	"context"
	"sync"
)

type server struct {
	stop chan struct{}
	kick chan struct{}
}

// --- leaks: no exit path ------------------------------------------------

func leakLiteral() {
	go func() { // want "no provable exit path"
		for {
			_ = 1
		}
	}()
}

func spin() {
	for {
		_ = 1
	}
}

func leakDecl() {
	go spin() // want "no provable exit path"
}

func (s *server) drainForever() {
	for {
		select {
		case <-s.kick:
		}
	}
}

func leakMethod(s *server) {
	go s.drainForever() // want "no provable exit path"
}

// --- unprovable: dynamic targets ----------------------------------------

func leakDynamic(fn func()) {
	go fn() // want "dynamic or out-of-package"
}

// --- provable exits: no findings ----------------------------------------

func (s *server) loop() {
	for {
		select {
		case <-s.stop:
			return
		case <-s.kick:
		}
		_ = 1
	}
}

func okCompactor(s *server) {
	go s.loop()
}

func okCtx(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

func okRangeWorker(jobs chan int) {
	// for range ch ends when the channel is closed.
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

func okBounded(wg *sync.WaitGroup, n int) {
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			_ = i
		}
	}()
}

func okPanic() {
	// A goroutine that dies by panic does not leak.
	go func() {
		for {
			panic("fatal")
		}
	}()
}

// --- audited suppression ------------------------------------------------

func suppressed() {
	//dedupvet:gorolife process-lifetime ticker by design; owner documents shutdown
	go func() {
		for {
			_ = 1
		}
	}()
}
