// Package gorolife enforces goroutine lifetime discipline in library
// packages: every `go` statement must spawn a body with a provable exit
// path, so compactors, gossip loops and pool workers cannot leak past
// their owner's shutdown.
//
// For each go statement the analyzer resolves the spawned function — a
// function literal, or a function/method declared in the same package —
// builds its CFG (internal/analysis/ssa), and requires that every block
// reachable from the entry can reach the function exit. Exits are
// returns, falling off the end, panic, os.Exit and runtime.Goexit;
// loop-escaping edges come from conditions, breaks, range exhaustion
// (a closed channel ends `for range ch`) and select cases that return.
// A `for {}` or a select-loop with no returning case cannot reach the
// exit and is reported. Dynamically dispatched targets (function
// values, interface methods, out-of-package functions) cannot be proved
// and are reported as such.
//
// Audited sites — e.g. a worker whose termination is managed by a
// runtime.Goexit inside a callee, or an intentionally process-lifetime
// goroutine — are annotated on the go statement:
//
//	//dedupvet:gorolife <justification>
//
// Soundness caveats: the proof is control-flow existence, not liveness —
// a `for range ch` exit path counts even if no one ever closes ch; and
// only the spawned body itself is analyzed, so a clean body that calls
// a never-returning helper passes.
package gorolife

import (
	"go/ast"
	"go/types"
	"strings"

	"dedupcr/internal/analysis"
	"dedupcr/internal/analysis/ssa"
)

// Analyzer is the goroutine-lifetime checker.
var Analyzer = &analysis.Analyzer{
	Name: "gorolife",
	Doc: "require a provable exit path for every goroutine spawned in " +
		"library code (no leaked workers); audited sites are annotated " +
		"//dedupvet:gorolife",
	Run: run,
}

// Directive marks an audited go statement.
const Directive = "gorolife"

func run(pass *analysis.Pass) error {
	if !isLibraryPkg(pass.Path()) {
		return nil
	}
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, fn := range pass.FuncDecls() {
		if fn.Body == nil {
			continue
		}
		if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
			decls[obj] = fn
		}
	}
	for _, fn := range pass.FuncDecls() {
		if fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGo(pass, decls, gs)
			return true
		})
	}
	return nil
}

// isLibraryPkg mirrors ctxcheck's scope: internal/ subtrees and the
// module-root facade. Binaries under cmd/ and examples/ may spawn
// process-lifetime goroutines.
func isLibraryPkg(path string) bool {
	if strings.Contains(path, "/cmd/") || strings.HasPrefix(path, "cmd/") ||
		strings.Contains(path, "/examples/") || strings.HasPrefix(path, "examples/") {
		return false
	}
	return strings.Contains(path, "internal/") || !strings.Contains(path, "/")
}

func checkGo(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) {
	if pass.Suppressed(gs.Pos(), Directive) {
		return
	}
	body := spawnedBody(pass, decls, gs.Call)
	if body == nil {
		pass.Reportf(gs.Pos(), "goroutine target is dynamic or out-of-package: cannot prove an exit path (audit and annotate with %s%s)",
			analysis.DirectivePrefix, Directive)
		return
	}
	f := ssa.Build(pass.TypesInfo, body)
	reach := f.ReachableFromEntry()
	exits := f.CanReachExit()
	for _, b := range f.Blocks {
		if !reach[b] || exits[b] {
			continue
		}
		at := gs.Pos()
		detail := ""
		if len(b.Stmts) > 0 {
			detail = " (stuck at " + pass.Fset.Position(b.Stmts[0].Pos()).String() + ")"
		}
		pass.Reportf(at, "goroutine has no provable exit path%s: add a ctx.Done/stop-channel case, bound the loop, or annotate with %s%s",
			detail, analysis.DirectivePrefix, Directive)
		return // one finding per go statement
	}
}

// spawnedBody resolves the body the go statement runs: a function
// literal or a same-package declaration. nil means unprovable.
func spawnedBody(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	callee := pass.CalleeFunc(call)
	if callee == nil {
		return nil
	}
	if decl, ok := decls[callee]; ok {
		return decl.Body
	}
	return nil
}
