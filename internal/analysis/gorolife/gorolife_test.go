package gorolife_test

import (
	"testing"

	"dedupcr/internal/analysis/analysistest"
	"dedupcr/internal/analysis/gorolife"
)

func TestGoroLife(t *testing.T) {
	analysistest.Run(t, gorolife.Analyzer, "internal/pool", "cmd/tool")
}
