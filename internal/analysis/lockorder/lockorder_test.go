package lockorder_test

import (
	"testing"

	"dedupcr/internal/analysis/analysistest"
	"dedupcr/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "locks")
}
