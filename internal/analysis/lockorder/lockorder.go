// Package lockorder defines the lockorder analyzer: it builds the mutex
// acquisition graph of a package — which lock classes are acquired
// while which others are held, following package-local calls — and
// reports every cycle as a potential deadlock.
//
// A "lock class" is the declared sync.Mutex/sync.RWMutex variable or
// struct field (all instances of a field are one class, the standard
// conservative abstraction). The analysis is a forward may-held
// dataflow over the ssa CFG: Lock/RLock/TryLock generate, explicit
// Unlock/RUnlock kill, deferred unlocks hold to function exit. Holding
// H while acquiring L adds the edge H→L; holding H while calling a
// package-local function g adds H→l for every lock l that g (or its
// callees) acquire. Any cycle — including the self-cycle of
// re-acquiring a held class — is a potential deadlock.
//
// Intentional orderings are annotated at the edge's source line:
//
//	//dedupvet:lockorder <justification>
//
// on (or directly above) the acquisition or call site that creates the
// edge removes that site's edges from the graph.
//
// Soundness caveats: the call graph is package-local, so cycles spanning
// packages are invisible; classes conflate instances, so instance-
// ordered hierarchies (locking two elements of a list in address order)
// report false cycles and need the directive; locks leaked to callers
// (lock-and-return) are not tracked past the acquiring function.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"dedupcr/internal/analysis"
	"dedupcr/internal/analysis/ssa"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "report cycles in the mutex acquisition order (potential deadlocks)\n\n" +
		"Builds the may-held lock graph over the package call graph and\n" +
		"reports every cycle. Suppress an intentional edge with a\n" +
		"//dedupvet:lockorder comment on the acquisition or call site.",
	Run: run,
}

// lockOp classifies a sync.Mutex/RWMutex method call.
type lockOp int

const (
	opNone lockOp = iota
	opLock        // Lock, RLock, TryLock, TryRLock
	opUnlock
)

// edge is one "acquired to while holding from" observation.
type edge struct {
	from, to types.Object
	site     token.Pos // acquisition or call site creating the edge
	heldAt   token.Pos // where from was acquired
}

func run(pass *analysis.Pass) error {
	a := &analyzer{
		pass:      pass,
		acquires:  make(map[*types.Func]map[types.Object]token.Pos),
		fieldName: make(map[types.Object]string),
	}
	a.indexFieldOwners()
	a.cg = ssa.BuildCallGraph(pass.TypesInfo, pass.Files)

	// Pass 1: per-function direct acquisitions (for call summaries).
	for fn, node := range a.cg.Nodes {
		a.acquires[fn] = a.directLocks(node.Decl.Body)
	}
	// Fixpoint: propagate callee acquisitions up the package call graph.
	for changed := true; changed; {
		changed = false
		for fn, node := range a.cg.Nodes {
			for _, call := range node.Calls {
				callee, ok := a.localCallee(call)
				if !ok {
					continue
				}
				for cls, pos := range a.acquires[callee] {
					if _, seen := a.acquires[fn][cls]; !seen {
						a.acquires[fn][cls] = pos
						changed = true
					}
				}
			}
		}
	}

	// Pass 2: dataflow per function, emitting edges.
	var edges []edge
	for _, node := range a.cg.Nodes {
		edges = append(edges, a.functionEdges(node)...)
	}

	a.reportCycles(edges)
	return nil
}

type analyzer struct {
	pass      *analysis.Pass
	cg        *ssa.CallGraph
	acquires  map[*types.Func]map[types.Object]token.Pos
	fieldName map[types.Object]string // field object → "Type.field"
}

// indexFieldOwners maps struct-field lock objects to "Type.field" names
// for readable diagnostics.
func (a *analyzer) indexFieldOwners() {
	for _, file := range a.pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						if obj := a.pass.TypesInfo.Defs[name]; obj != nil {
							a.fieldName[obj] = ts.Name.Name + "." + name.Name
						}
					}
					// Embedded field: the type name is the field name.
					if len(f.Names) == 0 {
						if id := embeddedIdent(f.Type); id != nil {
							if obj := a.pass.TypesInfo.Defs[id]; obj != nil {
								a.fieldName[obj] = ts.Name.Name + "." + id.Name
							}
						}
					}
				}
			}
		}
	}
}

func embeddedIdent(t ast.Expr) *ast.Ident {
	switch t := t.(type) {
	case *ast.Ident:
		return t
	case *ast.StarExpr:
		return embeddedIdent(t.X)
	case *ast.SelectorExpr:
		return t.Sel
	}
	return nil
}

// className renders a lock class for diagnostics.
func (a *analyzer) className(obj types.Object) string {
	if n, ok := a.fieldName[obj]; ok {
		return n
	}
	return obj.Name()
}

// classify resolves a call expression to (lock class, operation).
// Returns opNone for anything that is not a sync mutex method call.
func (a *analyzer) classify(call *ast.CallExpr) (types.Object, lockOp) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, opNone
	}
	fn, _ := a.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, opNone
	}
	var op lockOp
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return nil, opNone
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !isMutexType(recv.Type()) {
		return nil, opNone
	}
	cls := a.lockClass(sel)
	if cls == nil {
		return nil, opNone
	}
	return cls, op
}

// lockClass resolves the receiver of a mutex method selector to the
// declared lock object: the mutex field, the embedded mutex field of a
// promoted call, or the (package or local) mutex variable.
func (a *analyzer) lockClass(sel *ast.SelectorExpr) types.Object {
	info := a.pass.TypesInfo
	// Promoted method (x.Lock() with embedded sync.Mutex): resolve the
	// embedded field the selection steps through.
	if s, ok := info.Selections[sel]; ok && len(s.Index()) > 1 {
		t := s.Recv()
		var field *types.Var
		for _, idx := range s.Index()[:len(s.Index())-1] {
			st, ok := derefStruct(t)
			if !ok {
				return nil
			}
			field = st.Field(idx)
			t = field.Type()
		}
		return field
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		// v.mu.Lock(): the field (or qualified package var) is the class.
		if s, ok := info.Selections[x]; ok {
			return s.Obj()
		}
		return info.Uses[x.Sel]
	case *ast.Ident:
		// mu.Lock(): local or package-level mutex variable.
		return info.Uses[x]
	}
	return nil
}

func derefStruct(t types.Type) (*types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" &&
		(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

// directLocks collects every lock class acquired anywhere in body
// (including inside function literals — goroutines launched while the
// caller holds locks still order against them).
func (a *analyzer) directLocks(body *ast.BlockStmt) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if cls, op := a.classify(call); op == opLock {
			if _, seen := out[cls]; !seen {
				out[cls] = call.Pos()
			}
		}
		return true
	})
	return out
}

// localCallee resolves a call to a function declared in this package
// with a body.
func (a *analyzer) localCallee(call ssa.Call) (*types.Func, bool) {
	if call.Callee == nil {
		return nil, false
	}
	_, ok := a.cg.Nodes[call.Callee]
	return call.Callee, ok
}

// functionEdges runs the may-held dataflow over one function and
// returns the lock-order edges it creates.
func (a *analyzer) functionEdges(node *ssa.Node) []edge {
	f := ssa.Build(a.pass.TypesInfo, node.Decl.Body)

	type heldSet map[types.Object]token.Pos
	in := make(map[*ssa.Block]heldSet)
	union := func(dst heldSet, src heldSet) bool {
		changed := false
		for k, v := range src {
			if _, ok := dst[k]; !ok {
				dst[k] = v
				changed = true
			}
		}
		return changed
	}
	// transfer applies one block's statements to held. When emit is
	// non-nil it is called for events (final pass).
	transfer := func(b *ssa.Block, held heldSet, emit func(stmt ast.Stmt, call *ast.CallExpr, held heldSet)) heldSet {
		cur := make(heldSet, len(held))
		for k, v := range held {
			cur[k] = v
		}
		for _, stmt := range b.Stmts {
			if _, isDefer := stmt.(*ast.DeferStmt); isDefer {
				// Deferred unlocks release at exit; the lock stays held
				// for ordering purposes. Deferred locks are not a
				// pattern we model.
				continue
			}
			ast.Inspect(stmt, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // literals analyzed via directLocks summaries only
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				cls, op := a.classify(call)
				switch op {
				case opLock:
					if emit != nil {
						emit(stmt, call, cur)
					}
					cur[cls] = call.Pos()
				case opUnlock:
					delete(cur, cls)
				case opNone:
					if emit != nil {
						emit(stmt, call, cur)
					}
				}
				return true
			})
		}
		return cur
	}

	// Fixpoint on block in-sets.
	for _, b := range f.Blocks {
		in[b] = make(heldSet)
	}
	work := []*ssa.Block{f.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := transfer(b, in[b], nil)
		for _, succ := range b.Succs {
			if union(in[succ], out) {
				work = append(work, succ)
			}
		}
	}

	// Final pass: emit edges with stable in-sets.
	var edges []edge
	reachable := f.ReachableFromEntry()
	for _, b := range f.Blocks {
		if !reachable[b] {
			continue
		}
		transfer(b, in[b], func(stmt ast.Stmt, call *ast.CallExpr, held heldSet) {
			if len(held) == 0 {
				return
			}
			cls, op := a.classify(call)
			if op == opLock {
				for from, heldAt := range held {
					edges = append(edges, edge{from: from, to: cls, site: call.Pos(), heldAt: heldAt})
				}
				return
			}
			// Call while holding locks: pull in the callee's transitive
			// acquisitions.
			callee := a.pass.CalleeFunc(call)
			if callee == nil {
				return
			}
			acq, ok := a.acquires[callee]
			if !ok {
				return
			}
			for to := range acq {
				for from, heldAt := range held {
					edges = append(edges, edge{from: from, to: to, site: call.Pos(), heldAt: heldAt})
				}
			}
		})
	}
	return edges
}

// reportCycles builds the class graph from edges (dropping suppressed
// sites) and reports every strongly connected component containing a
// cycle, plus direct self-cycles.
func (a *analyzer) reportCycles(edges []edge) {
	type key struct{ from, to types.Object }
	sites := make(map[key]edge) // earliest site per class edge
	adj := make(map[types.Object][]types.Object)
	nodes := make(map[types.Object]bool)
	for _, e := range edges {
		if a.pass.Suppressed(e.site, "lockorder") {
			continue
		}
		k := key{e.from, e.to}
		if prev, ok := sites[k]; !ok || e.site < prev.site {
			sites[k] = e
		}
		nodes[e.from], nodes[e.to] = true, true
	}
	for k := range sites {
		adj[k.from] = append(adj[k.from], k.to)
	}

	// Self-cycles first: re-acquiring a held class.
	for k, e := range sites {
		if k.from == k.to {
			a.pass.Reportf(e.site, "lock %s acquired at %s while already held (self-cycle; possible deadlock)",
				a.className(k.to), a.pass.Fset.Position(e.heldAt))
		}
	}

	// Tarjan SCC over the class graph.
	index := make(map[types.Object]int)
	low := make(map[types.Object]int)
	onStack := make(map[types.Object]bool)
	var stack []types.Object
	var counter int
	var sccs [][]types.Object
	var strongconnect func(v types.Object)
	strongconnect = func(v types.Object) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []types.Object
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	// Deterministic visit order: by class name then declaration pos.
	ordered := make([]types.Object, 0, len(nodes))
	for n := range nodes {
		ordered = append(ordered, n)
	}
	sort.Slice(ordered, func(i, j int) bool {
		ni, nj := a.className(ordered[i]), a.className(ordered[j])
		if ni != nj {
			return ni < nj
		}
		return ordered[i].Pos() < ordered[j].Pos()
	})
	for _, n := range ordered {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}

	for _, scc := range sccs {
		sort.Slice(scc, func(i, j int) bool { return a.className(scc[i]) < a.className(scc[j]) })
		// Describe the cycle through its internal edges, positioned at
		// the earliest participating site.
		var parts []string
		var at token.Pos
		for _, from := range scc {
			for _, to := range scc {
				e, ok := sites[key{from, to}]
				if !ok {
					continue
				}
				parts = append(parts, fmt.Sprintf("%s->%s at %s",
					a.className(from), a.className(to), a.pass.Fset.Position(e.site)))
				if at == token.NoPos || e.site < at {
					at = e.site
				}
			}
		}
		a.pass.Reportf(at, "lock-order cycle: %s (possible deadlock; annotate the intended order with %slockorder)",
			strings.Join(parts, ", "), analysis.DirectivePrefix)
	}
}
