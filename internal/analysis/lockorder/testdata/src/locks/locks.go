// Package locks is the lockorder golden corpus: each type pair below is
// one isolated scenario (classes are per-field, so scenarios sharing a
// type would share graph nodes).
package locks

import "sync"

// --- direct AB/BA cycle -------------------------------------------------

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

func abba(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle"
	b.mu.Unlock()
	a.mu.Unlock()
}

func baab(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// --- the same cycle, suppressed with a reviewed directive ---------------

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

func cd(c *C, d *D) {
	c.mu.Lock()
	//dedupvet:lockorder abort path intentionally inverts the order; dc only runs post-drain
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func dc(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	d.mu.Unlock()
}

// --- interprocedural cycle through a package-local call -----------------

type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

func ef(e *E, f *F) {
	e.mu.Lock()
	lockF(f) // want "lock-order cycle"
	e.mu.Unlock()
}

func lockF(f *F) {
	f.mu.Lock()
	f.mu.Unlock()
}

func fe(e *E, f *F) {
	f.mu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	f.mu.Unlock()
}

// --- self-cycles --------------------------------------------------------

type G struct{ mu sync.Mutex }

func (g *G) doubleLock() {
	g.mu.Lock()
	g.mu.Lock() // want "self-cycle"
	g.mu.Unlock()
	g.mu.Unlock()
}

type S struct{ mu sync.Mutex }

func (s *S) compact() {
	s.mu.Lock()
	s.lockingHelper() // want "self-cycle"
	s.mu.Unlock()
}

func (s *S) lockingHelper() {
	s.mu.Lock()
	s.mu.Unlock()
}

// --- consistent order: no findings --------------------------------------

type H struct{ mu sync.Mutex }
type I struct{ mu sync.Mutex }

func hi1(h *H, i *I) {
	h.mu.Lock()
	defer h.mu.Unlock() // deferred unlock: h stays held below
	i.mu.Lock()
	i.mu.Unlock()
}

func hi2(h *H, i *I) {
	h.mu.Lock()
	i.mu.Lock()
	i.mu.Unlock()
	h.mu.Unlock()
}

// release proves Unlock kills the held set: without the kill, the
// i-then-h order here would close a cycle against hi1/hi2.
func release(h *H, i *I) {
	i.mu.Lock()
	i.mu.Unlock()
	h.mu.Lock()
	h.mu.Unlock()
}

// RLock participates in ordering like Lock but this use is consistent.
type R struct{ mu sync.RWMutex }

func rw(r *R, h *H) {
	r.mu.RLock()
	h.mu.Lock()
	h.mu.Unlock()
	r.mu.RUnlock()
}

// --- embedded (promoted) mutexes form classes too -----------------------

type P struct{ sync.Mutex }
type Q struct{ sync.Mutex }

func pq(p *P, q *Q) {
	p.Lock()
	q.Lock() // want "lock-order cycle"
	q.Unlock()
	p.Unlock()
}

func qp(p *P, q *Q) {
	q.Lock()
	p.Lock()
	p.Unlock()
	q.Unlock()
}
