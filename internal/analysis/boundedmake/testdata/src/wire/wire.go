// Package wire is a boundedmake fixture: decoders sizing allocations
// from peer-controlled length prefixes, in every checked and unchecked
// variation.
package wire

import "encoding/binary"

// DecodeUnchecked sizes an allocation straight from a wire read.
func DecodeUnchecked(data []byte) []byte {
	n := int(binary.BigEndian.Uint32(data))
	return make([]byte, n) // want "make sized by wire-read length \"n\" without a dominating bound check"
}

// DecodeChecked bounds the length before allocating: clean.
func DecodeChecked(data []byte) []byte {
	n := int(binary.BigEndian.Uint32(data))
	if n > len(data)-4 {
		return nil
	}
	return make([]byte, n)
}

// DecodeInline has no variable to have checked at all.
func DecodeInline(data []byte) []byte {
	return make([]byte, binary.BigEndian.Uint16(data)) // want "make sized directly by a wire read"
}

// DecodeClamped bounds through the min builtin: clean.
func DecodeClamped(data []byte) []byte {
	n := int(binary.BigEndian.Uint32(data))
	return make([]byte, min(n, 1024))
}

// DecodeTransitive launders the tainted length through arithmetic and a
// second variable; the taint root is still the wire read.
func DecodeTransitive(data []byte) []uint64 {
	n := int(binary.BigEndian.Uint32(data))
	words := n / 8
	return make([]uint64, words) // want "make sized by wire-read length \"n\" without a dominating bound check"
}

// DecodeCap taints the capacity argument rather than the length.
func DecodeCap(data []byte) []byte {
	n := int(binary.BigEndian.Uint32(data))
	return make([]byte, 0, n) // want "make sized by wire-read length \"n\""
}

// DecodeAudited is the line-suppressed form.
func DecodeAudited(data []byte) []byte {
	n := int(binary.BigEndian.Uint32(data))
	// The transport already rejected frames above its 1 GiB bound.
	//dedupvet:bounded
	return make([]byte, n)
}

// DecodeTrusted is exempted wholesale: its caller validated the frame.
//
//dedupvet:bounded
func DecodeTrusted(data []byte) []byte {
	n := int(binary.BigEndian.Uint32(data))
	return make([]byte, n)
}

// CopyLocal sizes from local state, not the wire: clean.
func CopyLocal(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	return out
}
