package boundedmake_test

import (
	"testing"

	"dedupcr/internal/analysis/analysistest"
	"dedupcr/internal/analysis/boundedmake"
)

func TestBoundedMake(t *testing.T) {
	analysistest.Run(t, boundedmake.Analyzer, "wire")
}
