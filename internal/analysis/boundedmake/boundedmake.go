// Package boundedmake checks the bounded-decode invariant: an allocation
// whose size derives from a wire-read length must be dominated by a bound
// check, so a hostile or corrupt length prefix cannot force an arbitrary
// allocation. This generalizes the TCP frame codec's 1 GiB frame bound
// (tcp.go) to every decoder in the tree — the fingerprint table, restore
// metadata, telemetry and histogram codecs all decode peer-controlled
// bytes.
//
// The analysis is intraprocedural and lexical:
//
//   - a variable is "wire-tainted" when it is assigned from an expression
//     containing an encoding/binary read (Uint16/32/64, Varint, Read...),
//     directly or transitively through other tainted variables;
//   - a make() whose length or capacity mentions a tainted variable is
//     flagged unless some comparison (if-condition, loop condition, any
//     relational expression) mentioning that variable's taint root appears
//     earlier in the function, or the size is clamped through the min
//     builtin;
//   - a make() whose size expression contains a wire read inline is
//     always flagged — there is no variable to have checked.
//
// Audited sites are suppressed with `//dedupvet:bounded` on the line or
// the line above; a `//dedupvet:bounded` doc directive exempts a whole
// function (e.g. a decoder whose bound lives in a helper).
package boundedmake

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"dedupcr/internal/analysis"
)

// Analyzer is the bounded-decode checker.
var Analyzer = &analysis.Analyzer{
	Name: "boundedmake",
	Doc: "flag make() allocations sized by a wire-read length that is not " +
		"dominated by a bound check",
	Run: run,
}

// Suppression marks an audited allocation site or function.
const Suppression = "bounded"

func run(pass *analysis.Pass) error {
	for _, fn := range pass.FuncDecls() {
		if fn.Body == nil {
			continue
		}
		if _, audited := analysis.FuncDirective(fn, Suppression); audited {
			continue
		}
		checkFunc(pass, fn)
	}
	return nil
}

// event is one position-ordered fact inside a function body.
type event struct {
	pos  token.Pos
	kind eventKind
	node ast.Node
}

type eventKind int

const (
	evAssign eventKind = iota
	evCompare
	evMake
)

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	var events []event
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			events = append(events, event{n.Pos(), evAssign, n})
		case *ast.GenDecl:
			if n.Tok == token.VAR {
				events = append(events, event{n.Pos(), evAssign, n})
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				events = append(events, event{n.Pos(), evCompare, n})
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" && isBuiltin(pass, id) && len(n.Args) >= 2 {
				events = append(events, event{n.Pos(), evMake, n})
			}
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	// taint maps a variable to its taint roots; checked collects roots
	// that appeared in a comparison.
	taint := make(map[types.Object]map[types.Object]bool)
	checked := make(map[types.Object]bool)

	for _, ev := range events {
		switch ev.kind {
		case evAssign:
			applyAssign(pass, ev.node, taint)
		case evCompare:
			for root := range exprRoots(pass, ev.node.(ast.Expr), taint) {
				checked[root] = true
			}
		case evMake:
			call := ev.node.(*ast.CallExpr)
			for _, size := range call.Args[1:] {
				checkSize(pass, call, size, taint, checked)
			}
		}
	}
}

// applyAssign propagates taint through one assignment or var declaration.
func applyAssign(pass *analysis.Pass, n ast.Node, taint map[types.Object]map[types.Object]bool) {
	assign := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		roots := exprRoots(pass, rhs, taint)
		if hasWireRead(pass, rhs) {
			if roots == nil {
				roots = make(map[types.Object]bool)
			}
			roots[obj] = true
		}
		if len(roots) > 0 {
			taint[obj] = roots
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				assign(lhs, n.Rhs[i])
			}
		} else if len(n.Rhs) == 1 {
			for _, lhs := range n.Lhs {
				assign(lhs, n.Rhs[0])
			}
		}
	case *ast.GenDecl:
		for _, spec := range n.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i < len(vs.Values) {
					assign(name, vs.Values[i])
				} else if len(vs.Values) == 1 {
					assign(name, vs.Values[0])
				}
			}
		}
	}
}

// exprRoots returns the union of taint roots of every tainted identifier
// mentioned by e (nil when none).
func exprRoots(pass *analysis.Pass, e ast.Expr, taint map[types.Object]map[types.Object]bool) map[types.Object]bool {
	var roots map[types.Object]bool
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if r, tainted := taint[obj]; tainted {
			if roots == nil {
				roots = make(map[types.Object]bool)
			}
			for root := range r {
				roots[root] = true
			}
		}
		return true
	})
	return roots
}

// isBuiltin reports whether id resolves to a predeclared builtin (or is
// unresolved, which for `make`/`min` spellings means the same).
func isBuiltin(pass *analysis.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// wireReadExclusions are encoding/binary names that write rather than
// read; their results are not attacker-controlled lengths.
var wireReadExclusions = []string{"Append", "Put", "Write", "Encode", "Size", "String"}

// hasWireRead reports whether e contains a call to an encoding/binary
// read (a wire-length taint source).
func hasWireRead(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || analysis.FuncPkgPath(fn) != "encoding/binary" {
			return true
		}
		for _, prefix := range wireReadExclusions {
			if strings.HasPrefix(fn.Name(), prefix) {
				return true
			}
		}
		found = true
		return false
	})
	return found
}

// hasMinClamp reports whether e clamps through the min builtin.
func hasMinClamp(pass *analysis.Pass, e ast.Expr) bool {
	clamped := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "min" && isBuiltin(pass, id) {
				clamped = true
			}
		}
		return !clamped
	})
	return clamped
}

// checkSize flags one make() size argument when it is wire-tainted and
// unbounded.
func checkSize(pass *analysis.Pass, call *ast.CallExpr, size ast.Expr, taint map[types.Object]map[types.Object]bool, checked map[types.Object]bool) {
	if hasMinClamp(pass, size) || pass.Suppressed(call.Pos(), Suppression) {
		return
	}
	if hasWireRead(pass, size) {
		pass.Reportf(call.Pos(), "make sized directly by a wire read: bound the length through a checked variable first")
		return
	}
	roots := exprRoots(pass, size, taint)
	for root := range roots {
		if !checked[root] {
			pass.Reportf(call.Pos(), "make sized by wire-read length %q without a dominating bound check (compare it against a limit first, or annotate the audited site with %s%s)",
				root.Name(), analysis.DirectivePrefix, Suppression)
			return
		}
	}
}
