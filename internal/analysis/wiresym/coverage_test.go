package wiresym_test

// Coverage proof for the real wire codecs: the extractor must be able
// to model every production encoder/decoder pair — an opaque extraction
// would silently skip the pair, and the symmetry guarantee would be
// vacuous for exactly the codecs that matter. This test loads the real
// packages and asserts each known codec family extracts on both sides
// and matches.

import (
	"os"
	"path/filepath"
	"testing"

	"dedupcr/internal/analysis"
	"dedupcr/internal/analysis/load"
	"dedupcr/internal/analysis/wiresym"
)

// realCodecs maps each production package to the codec families wiresym
// must prove symmetric in it.
var realCodecs = map[string][]string{
	"dedupcr/internal/telemetry":   {"dump", "restore", "storestats"},
	"dedupcr/internal/storage":     {"segindex", "manifest"},
	"dedupcr/internal/collectives": {"abortmsg", "tracecontext"},
	"dedupcr/internal/chunk":       {"recipebinary"},
	"dedupcr/internal/fingerprint": {"fp", "tablebinary"},
}

func TestRealCodecCoverage(t *testing.T) {
	root := moduleRoot(t)
	for pkgPath, families := range realCodecs {
		pkgs, err := load.Packages(root, pkgPath)
		if err != nil {
			t.Fatalf("load %s: %v", pkgPath, err)
		}
		if len(pkgs) != 1 {
			t.Fatalf("load %s: got %d packages", pkgPath, len(pkgs))
		}
		p := pkgs[0]
		pass := &analysis.Pass{
			Analyzer:  wiresym.Analyzer,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.Info,
			Report:    func(analysis.Diagnostic) {},
		}
		byBase := make(map[string]wiresym.Pair)
		for _, pair := range wiresym.Pairs(pass) {
			byBase[pair.Base] = pair
		}
		for _, fam := range families {
			pair, ok := byBase[fam]
			if !ok {
				t.Errorf("%s: codec family %q not paired", pkgPath, fam)
				continue
			}
			if !pair.EncOK {
				t.Errorf("%s: %s encoder %s not modeled by the extractor", pkgPath, fam, pair.EncName)
			}
			if !pair.DecOK {
				t.Errorf("%s: %s decoder %s not modeled by the extractor", pkgPath, fam, pair.DecName)
			}
			if pair.EncOK && pair.DecOK && !pair.Match {
				t.Errorf("%s: %s asymmetric:\n  %s writes [%s]\n  %s reads  [%s]",
					pkgPath, fam, pair.EncName, pair.EncOps, pair.DecName, pair.DecOps)
			}
			if pair.Match && pair.EncOps == "" {
				t.Errorf("%s: %s extracted an empty wire sequence — extractor saw no ops", pkgPath, fam)
			}
		}
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
