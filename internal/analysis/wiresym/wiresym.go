// Package wiresym checks write/read symmetry of hand-rolled binary
// codecs. For every Encode*/Decode* (or Marshal*/Unmarshal*,
// encode*/decode*) pair in a package it abstracts both bodies into a
// canonical wire-op sequence — u8, u16, u32, u64, uvarint, bytes,
// rep{...} for variable repetition, alt{...|...} for optional or
// version-gated branches — and reports when the encoder's write
// sequence and the decoder's read sequence disagree. This is the check
// that catches "encoder appended a field, decoder still reads the old
// layout" before a mixed-version group mis-decodes a gather.
//
// The abstraction understands the codec idioms used in this tree:
// binary.BigEndian.AppendUintN / UintN with an advancing cursor
// (data = data[n:]), binary.AppendUvarint / Uvarint columns, append of
// magic strings and flag bytes, count-prefixed loops, length-prefixed
// sub-encodings handed to Marshal/Unmarshal helpers, trailing
// checksums read with data[len(data)-4:], single-assignment local
// codec closures, and error-return bail-outs (which are validation
// paths, not wire layout, and are discarded).
//
// A function the extractor cannot model (dynamic dispatch, select,
// reassigned codec closures, ...) is skipped — soundness caveat: no
// finding is reported for such pairs, and pairing is name-based and
// package-local. An intentional asymmetry (e.g. a decoder accepting a
// superseded layout the encoder no longer writes) is annotated on
// either function's doc comment:
//
//	//dedupvet:wiresym <justification>
package wiresym

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"dedupcr/internal/analysis"
	"dedupcr/internal/analysis/ssa"
)

// Analyzer is the codec write/read symmetry checker.
var Analyzer = &analysis.Analyzer{
	Name: "wiresym",
	Doc: "Encode*/Decode* pairs must write and read the same wire-op " +
		"sequence (type, order, count prefixes, version gates)",
	Run: run,
}

// Directive marks an audited, intentionally asymmetric codec pair.
const Directive = "wiresym"

func run(pass *analysis.Pass) error {
	for _, p := range Pairs(pass) {
		if !p.EncOK || !p.DecOK || p.Match {
			continue
		}
		if p.suppressed(pass) {
			continue
		}
		pass.Reportf(p.decPos, "wire asymmetry: %s writes [%s] but %s reads [%s]; fix the codec or annotate with %s%s",
			p.EncName, p.EncOps, p.DecName, p.DecOps, analysis.DirectivePrefix, Directive)
	}
	return nil
}

// Pair is one matched encoder/decoder couple and the extraction result
// for each side. Exported so the coverage test can assert that the real
// codecs in the tree are modeled (EncOK/DecOK) and symmetric (Match).
type Pair struct {
	Base    string // lower-cased codec family name, e.g. "segindex"
	EncName string
	DecName string
	EncOps  string // canonical wire-op sequence, "" when !EncOK
	DecOps  string
	EncOK   bool // extractor modeled the whole encoder body
	DecOK   bool
	Match   bool // EncOK && DecOK && EncOps == DecOps

	encDecl *ast.FuncDecl
	decDecl *ast.FuncDecl
	decPos  token.Pos
}

func (p *Pair) suppressed(pass *analysis.Pass) bool {
	for _, d := range []*ast.FuncDecl{p.encDecl, p.decDecl} {
		if _, ok := analysis.FuncDirective(d, Directive); ok {
			return true
		}
		if pass.Suppressed(d.Name.Pos(), Directive) {
			return true
		}
	}
	return false
}

// Pairs extracts and matches every codec pair in the package.
func Pairs(pass *analysis.Pass) []Pair {
	type side struct {
		decl *ast.FuncDecl
		n    int // how many functions claimed this base+side
	}
	encs := make(map[string]*side)
	decs := make(map[string]*side)
	claim := func(m map[string]*side, base string, d *ast.FuncDecl) {
		if s, ok := m[base]; ok {
			s.n++
			return
		}
		m[base] = &side{decl: d, n: 1}
	}
	for _, d := range pass.FuncDecls() {
		if d.Body == nil {
			continue
		}
		if base, ok := codecBase(d, encPrefixes); ok {
			claim(encs, base, d)
			continue
		}
		if base, ok := codecBase(d, decPrefixes); ok {
			claim(decs, base, d)
		}
	}
	var out []Pair
	for base, e := range encs {
		d, ok := decs[base]
		// Ambiguous bases (two encoders or two decoders) are skipped:
		// pairing would be a guess.
		if !ok || e.n != 1 || d.n != 1 {
			continue
		}
		encOps, encOK := extract(pass, e.decl)
		decOps, decOK := extract(pass, d.decl)
		p := Pair{
			Base:    base,
			EncName: e.decl.Name.Name,
			DecName: d.decl.Name.Name,
			EncOK:   encOK,
			DecOK:   decOK,
			encDecl: e.decl,
			decDecl: d.decl,
			decPos:  d.decl.Name.Pos(),
		}
		if encOK {
			p.EncOps = render(normalize(encOps))
		}
		if decOK {
			p.DecOps = render(normalize(decOps))
		}
		p.Match = encOK && decOK && p.EncOps == p.DecOps
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

var encPrefixes = []string{"Encode", "encode", "Marshal", "marshal"}
var decPrefixes = []string{"Decode", "decode", "Unmarshal", "unmarshal"}

// codecBase derives the codec family name from a function name: the
// part after the Encode/Decode prefix, falling back to the receiver
// type for bare `encode` methods and MarshalBinary/MarshalText.
func codecBase(d *ast.FuncDecl, prefixes []string) (string, bool) {
	name := d.Name.Name
	for _, p := range prefixes {
		if !strings.HasPrefix(name, p) {
			continue
		}
		base := name[len(p):]
		if base == "" || base == "Binary" || base == "Text" {
			base = recvTypeName(d) + base
		}
		if base == "" {
			return "", false
		}
		return strings.ToLower(base), true
	}
	return "", false
}

func recvTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// --- wire-op model --------------------------------------------------------

type opKind int

const (
	oU8 opKind = iota
	oU16
	oU32
	oU64
	oUvarint
	oBytes
	oRep
	oAlt
)

type op struct {
	kind  opKind
	width int64  // oBytes: const byte width, -1 unknown
	body  []op   // oRep
	alts  [][]op // oAlt
}

func (o op) String() string {
	switch o.kind {
	case oU8:
		return "u8"
	case oU16:
		return "u16"
	case oU32:
		return "u32"
	case oU64:
		return "u64"
	case oUvarint:
		return "uvarint"
	case oBytes:
		return "bytes"
	case oRep:
		return "rep{" + render(o.body) + "}"
	case oAlt:
		parts := make([]string, len(o.alts))
		for i, b := range o.alts {
			parts[i] = render(b)
		}
		return "alt{" + strings.Join(parts, "|") + "}"
	}
	return "?"
}

func render(ops []op) string {
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

// fixedWidth is the encoded byte width of a fixed-size op, or -1.
func fixedWidth(o op) int64 {
	switch o.kind {
	case oU8:
		return 1
	case oU16:
		return 2
	case oU32:
		return 4
	case oU64:
		return 8
	case oBytes:
		if o.width >= 0 {
			return o.width
		}
	}
	return -1
}

// maxFill bounds how many filler u8 ops a layout gap or a const-width
// bytes expansion may produce; anything larger stays opaque rather than
// exploding the canonical sequence.
const maxFill = 64

// normalize rewrites ops into canonical form: const-width byte runs
// become u8 sequences, empty reps vanish, alt branches are deduped,
// common prefixes factored out, and the optional-repetition identity
// alt{ | rep X} = rep X applied (a count prefix of zero and an absent
// loop encode identically).
func normalize(ops []op) []op {
	var out []op
	for _, o := range ops {
		switch o.kind {
		case oRep:
			body := normalize(o.body)
			if len(body) == 0 {
				continue
			}
			out = append(out, op{kind: oRep, body: body})
		case oAlt:
			out = append(out, normAlt(o.alts)...)
		case oBytes:
			if o.width >= 0 && o.width <= maxFill {
				for i := int64(0); i < o.width; i++ {
					out = append(out, op{kind: oU8})
				}
			} else {
				out = append(out, op{kind: oBytes, width: -1})
			}
		default:
			out = append(out, o)
		}
	}
	return out
}

func normAlt(alts [][]op) []op {
	branches := make([][]op, 0, len(alts))
	for _, b := range alts {
		branches = append(branches, normalize(b))
	}
	branches = dedupeBranches(branches)
	if len(branches) == 1 {
		return branches[0]
	}
	// Factor the longest common prefix out of the alternation.
	var prefix []op
	for len(branches[0]) > 0 {
		head := branches[0][0].String()
		same := true
		for _, b := range branches[1:] {
			if len(b) == 0 || b[0].String() != head {
				same = false
				break
			}
		}
		if !same {
			break
		}
		prefix = append(prefix, branches[0][0])
		for i := range branches {
			branches[i] = branches[i][1:]
		}
	}
	branches = dedupeBranches(branches)
	if len(branches) == 1 {
		return append(prefix, branches[0]...)
	}
	// alt{ | rep X ...} where the non-empty branch is repetition only:
	// a zero count and an absent branch are the same wire bytes.
	if len(branches) == 2 {
		var other []op
		hasEmpty := false
		for _, b := range branches {
			if len(b) == 0 {
				hasEmpty = true
			} else {
				other = b
			}
		}
		if hasEmpty && len(other) > 0 {
			allRep := true
			for _, o := range other {
				if o.kind != oRep {
					allRep = false
					break
				}
			}
			if allRep {
				return append(prefix, other...)
			}
		}
	}
	sort.Slice(branches, func(i, j int) bool { return render(branches[i]) < render(branches[j]) })
	return append(prefix, op{kind: oAlt, alts: branches})
}

func dedupeBranches(branches [][]op) [][]op {
	seen := make(map[string]bool)
	out := branches[:0]
	for _, b := range branches {
		key := render(b)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, b)
	}
	return out
}

// --- extractor ------------------------------------------------------------

// pending is a decoder read observed before the cursor advance that
// fixes its position: Uint32(data) is pending at offset 0 until
// data = data[4:] lays the preceding reads out and resets offsets.
type pending struct {
	kind  opKind
	off   int64 // const byte offset from the current cursor, -1 unknown
	width int64 // oBytes only: const width, -1 unknown
	rep   []op  // a loop body's reads, replicated an unknown number of times
}

type frame struct {
	ops  []op
	pend []pending
}

type flow int

const (
	flowNext   flow = iota // control continues to the next statement
	flowReturn             // every path returned a success value
	flowBail               // every path returned a validation error
)

type extractor struct {
	info    *types.Info
	scope   ast.Node              // enclosing FuncDecl body, for closure lookups
	cursors map[types.Object]bool // []byte views being consumed
	closure map[types.Object][]op // memoized single-assignment codec closures
	trailer []pending             // reads at len(data)-k, emitted last
	opaque  bool

	// Shared across the delegation chain rooted at one extract call:
	decls map[*types.Func]*ast.FuncDecl // same-package bodies, for delegation
	fns   map[*types.Func][]op          // memoized delegated ops; nil = opaque or in progress
}

// extract abstracts fn's body into a wire-op sequence; ok is false when
// the body uses constructs the extractor cannot model.
func extract(pass *analysis.Pass, fn *ast.FuncDecl) ([]op, bool) {
	x := &extractor{
		info:  pass.TypesInfo,
		decls: make(map[*types.Func]*ast.FuncDecl),
		fns:   make(map[*types.Func][]op),
	}
	for _, d := range pass.FuncDecls() {
		if obj, ok := pass.TypesInfo.Defs[d.Name].(*types.Func); ok && d.Body != nil {
			x.decls[obj] = d
		}
	}
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return nil, false
	}
	return x.funcOps(obj, fn)
}

// funcOps extracts decl's body in a fresh per-function frame, memoizing
// the result so delegated helpers (r.decode, readHeader) are abstracted
// once. A nil memo entry cuts recursion: a self-recursive codec is
// opaque.
func (x *extractor) funcOps(fn *types.Func, decl *ast.FuncDecl) ([]op, bool) {
	if ops, seen := x.fns[fn]; seen {
		return ops, ops != nil
	}
	x.fns[fn] = nil
	sub := &extractor{
		info:    x.info,
		scope:   decl.Body,
		cursors: make(map[types.Object]bool),
		closure: make(map[types.Object][]op),
		decls:   x.decls,
		fns:     x.fns,
	}
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			for _, name := range field.Names {
				obj := x.info.Defs[name]
				if obj != nil && isByteSlice(obj.Type()) {
					sub.cursors[obj] = true
				}
			}
		}
	}
	f := &frame{}
	sub.walk(f, decl.Body.List)
	sub.flush(f, -1)
	for _, p := range sub.trailer {
		f.ops = append(f.ops, pendingOp(p))
	}
	if sub.opaque {
		return nil, false
	}
	ops := f.ops
	if ops == nil {
		ops = []op{}
	}
	x.fns[fn] = ops
	return ops, true
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func pendingOp(p pending) op {
	switch p.kind {
	case oBytes:
		return op{kind: oBytes, width: p.width}
	case oRep:
		return op{kind: oRep, body: p.rep}
	}
	return op{kind: p.kind}
}

// walk processes stmts into f, returning how control leaves the list.
func (x *extractor) walk(f *frame, stmts []ast.Stmt) flow {
	for i, s := range stmts {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			return x.ret(f, s)
		case *ast.IfStmt:
			if s.Init != nil {
				x.stmt(f, s.Init)
			}
			arms := []armSrc{{body: s.Body.List}}
			switch e := s.Else.(type) {
			case nil:
				arms = append(arms, armSrc{implicit: true})
			case *ast.BlockStmt:
				arms = append(arms, armSrc{body: e.List})
			case *ast.IfStmt:
				arms = append(arms, armSrc{body: []ast.Stmt{e}})
			}
			return x.branch(f, arms, stmts[i+1:])
		case *ast.SwitchStmt:
			if s.Init != nil {
				x.stmt(f, s.Init)
			}
			var arms []armSrc
			hasDefault := false
			for _, c := range s.Body.List {
				cc := c.(*ast.CaseClause)
				if cc.List == nil {
					hasDefault = true
				}
				arms = append(arms, armSrc{body: cc.Body})
			}
			if !hasDefault {
				arms = append(arms, armSrc{implicit: true})
			}
			return x.branch(f, arms, stmts[i+1:])
		case *ast.ForStmt:
			x.loop(f, s.Init, s.Body, forTripCount(x.info, s))
		case *ast.RangeStmt:
			x.loop(f, nil, s.Body, x.rangeTripCount(s))
		case *ast.BlockStmt:
			if fl := x.walk(f, s.List); fl != flowNext {
				return fl
			}
		case *ast.LabeledStmt:
			if fl := x.walk(f, []ast.Stmt{s.Stmt}); fl != flowNext {
				return fl
			}
		default:
			x.stmt(f, s)
		}
		if x.opaque {
			return flowNext
		}
	}
	return flowNext
}

type armSrc struct {
	body     []ast.Stmt
	implicit bool // absent else / missing default: an empty fall-through arm
}

type armResult struct {
	ops []op
	fl  flow
}

// branch models a multi-way conditional. Bail arms (validation errors)
// are discarded. If every surviving arm falls through, the alternation
// is emitted inline and walking continues; if some arm returns, the
// statements after the conditional belong to the fall-through arms and
// the whole remainder collapses into one alternation.
func (x *extractor) branch(f *frame, arms []armSrc, rest []ast.Stmt) flow {
	var results []armResult
	anyReturn := false
	for _, a := range arms {
		af := &frame{}
		fl := flowNext
		if !a.implicit {
			fl = x.walk(af, a.body)
		}
		if x.opaque {
			return flowNext
		}
		if fl == flowBail {
			continue
		}
		x.flush(af, -1)
		if fl == flowReturn {
			anyReturn = true
		}
		results = append(results, armResult{ops: af.ops, fl: fl})
	}
	if len(results) == 0 {
		return flowBail
	}
	if !anyReturn {
		x.emitAlt(f, results, nil)
		return x.walk(f, rest)
	}
	rf := &frame{}
	restFlow := x.walk(rf, rest)
	if x.opaque {
		return flowNext
	}
	x.flush(rf, -1)
	if restFlow == flowNext {
		hasCont := false
		for _, r := range results {
			if r.fl == flowNext {
				hasCont = true
			}
		}
		if hasCont && len(rest) > 0 {
			// A returning arm next to a fall-through arm whose
			// continuation itself falls through cannot be expressed as
			// one sequence.
			x.opaque = true
			return flowNext
		}
	}
	if restFlow == flowBail {
		// The continuation always fails validation; only the returning
		// arms describe wire layout.
		kept := results[:0]
		for _, r := range results {
			if r.fl == flowReturn {
				kept = append(kept, r)
			}
		}
		if len(kept) == 0 {
			return flowBail
		}
		x.emitAlt(f, kept, nil)
		return flowReturn
	}
	x.emitAlt(f, results, rf.ops)
	return flowReturn
}

// emitAlt appends the alternation of the arms to f, appending cont to
// every fall-through arm. A vacuous alternation (every arm empty, no
// continuation) — the shape of a pure validation guard — emits nothing,
// so guards inside loop bodies don't obscure the repetition shape.
func (x *extractor) emitAlt(f *frame, results []armResult, cont []op) {
	if len(cont) == 0 {
		empty := true
		for _, r := range results {
			if len(r.ops) > 0 {
				empty = false
				break
			}
		}
		if empty {
			return
		}
	}
	var alts [][]op
	for _, r := range results {
		ops := r.ops
		if r.fl == flowNext && cont != nil {
			ops = append(append([]op{}, ops...), cont...)
		}
		alts = append(alts, ops)
	}
	f.ops = append(f.ops, op{kind: oAlt, alts: alts})
}

// ret classifies a return as success (part of the wire layout) or a
// validation bail-out (discarded).
func (x *extractor) ret(f *frame, s *ast.ReturnStmt) flow {
	for _, r := range s.Results {
		if x.consumingCall(r) {
			continue
		}
		if x.bailResult(r) {
			return flowBail
		}
	}
	for _, r := range s.Results {
		x.scan(f, r)
	}
	x.flush(f, -1)
	return flowReturn
}

// consumingCall reports whether e is a call that reads from a cursor —
// `return p.UnmarshalBinary(data[:n])` or `return r.decode(data)` is
// the tail of the wire layout, not a validation bail, even though its
// result includes an error. A bare cursor into a callee outside the
// package (fmt.Errorf("%x", data)) does not count: only a slice handoff
// or a same-package delegation consumes.
func (x *extractor) consumingCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	local := false
	if callee := ssa.Callee(x.info, call); callee != nil {
		local = x.decls[callee] != nil
	}
	for _, a := range call.Args {
		if obj, _, _, _ := x.cursorArg(a); obj == nil {
			continue
		}
		if _, sliced := ast.Unparen(a).(*ast.SliceExpr); sliced || local {
			return true
		}
	}
	return false
}

// bailResult reports whether e marks the return as a failure path: a
// constant false, or a non-nil error-typed value. A tail call whose
// result tuple includes an error also counts — unless it consumes the
// cursor (see consumingCall), in which case it is delegation, not
// validation.
func (x *extractor) bailResult(e ast.Expr) bool {
	tv, ok := x.info.Types[e]
	if !ok {
		return false
	}
	if tv.Value != nil && tv.Value.Kind() == constant.Bool && !constant.BoolVal(tv.Value) {
		return true
	}
	if tv.IsNil() {
		return false
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(tv.Type)
}

var errType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errType)
}

// loop models a counted or variable repetition of body.
func (x *extractor) loop(f *frame, init ast.Stmt, body *ast.BlockStmt, trip int64) {
	if init != nil {
		x.stmt(f, init)
	}
	bf := &frame{}
	if fl := x.walk(bf, body.List); fl == flowReturn {
		// A loop body that returns success mid-iteration has no single
		// repetition shape.
		x.opaque = true
		return
	}
	if x.opaque {
		return
	}
	switch {
	case len(bf.ops) > 0 && len(bf.pend) == 0:
		if trip >= 0 {
			if trip > maxFill {
				x.opaque = true
				return
			}
			for i := int64(0); i < trip; i++ {
				f.ops = append(f.ops, bf.ops...)
			}
		} else {
			f.ops = append(f.ops, op{kind: oRep, body: bf.ops})
		}
	case len(bf.ops) == 0 && len(bf.pend) > 0:
		// Reads at loop-varying offsets (data[8*i:]): positions are
		// unknowable, order is not.
		if trip >= 0 {
			if trip > maxFill {
				x.opaque = true
				return
			}
			for i := int64(0); i < trip; i++ {
				for _, p := range bf.pend {
					p.off = -1
					f.pend = append(f.pend, p)
				}
			}
		} else {
			var reps []op
			for _, p := range bf.pend {
				reps = append(reps, pendingOp(p))
			}
			f.pend = append(f.pend, pending{kind: oRep, off: -1, rep: reps})
		}
	case len(bf.ops) > 0 && len(bf.pend) > 0:
		x.opaque = true
	}
}

// forTripCount recognizes `for i := 0; i < CONST; i++`.
func forTripCount(info *types.Info, s *ast.ForStmt) int64 {
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return -1
	}
	n, ok := constVal(info, cond.Y)
	if !ok {
		return -1
	}
	init, ok := s.Init.(*ast.AssignStmt)
	if !ok || len(init.Rhs) != 1 {
		return -1
	}
	start, ok := constVal(info, init.Rhs[0])
	if !ok {
		return -1
	}
	if cond.Op == token.LEQ {
		n++
	}
	return n - start
}

// rangeTripCount recognizes ranges over composite literals and over
// locals whose single assignment is make(T, CONST).
func (x *extractor) rangeTripCount(s *ast.RangeStmt) int64 {
	switch e := ast.Unparen(s.X).(type) {
	case *ast.CompositeLit:
		return int64(len(e.Elts))
	case *ast.Ident:
		obj := x.info.Uses[e]
		if obj == nil {
			return -1
		}
		assigns := ssa.Assignments(x.info, x.scope, obj)
		if len(assigns) != 1 {
			return -1
		}
		call, ok := assigns[0].(*ast.CallExpr)
		if !ok || !isBuiltin(x.info, call, "make") || len(call.Args) < 2 {
			return -1
		}
		if n, ok := constVal(x.info, call.Args[1]); ok {
			return n
		}
	}
	return -1
}

func constVal(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// stmt handles a leaf statement.
func (x *extractor) stmt(f *frame, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		x.assign(f, s)
	case *ast.ExprStmt:
		x.scan(f, s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						x.scan(f, v)
					}
				}
			}
		}
	case *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok != token.CONTINUE {
			// break/goto/fallthrough change the repetition shape.
			x.opaque = true
		}
	case *ast.GoStmt, *ast.DeferStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.SendStmt:
		x.opaque = true
	default:
		x.opaque = true
	}
}

func (x *extractor) assign(f *frame, s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		for _, r := range s.Rhs {
			x.scan(f, r)
		}
		return
	}
	for i := range s.Lhs {
		x.assignOne(f, s.Lhs[i], s.Rhs[i])
	}
}

func (x *extractor) assignOne(f *frame, lhs, rhs ast.Expr) {
	lid, _ := ast.Unparen(lhs).(*ast.Ident)
	sl, slOK := ast.Unparen(rhs).(*ast.SliceExpr)
	var slObj types.Object
	if slOK {
		if base, ok := ast.Unparen(sl.X).(*ast.Ident); ok {
			slObj = x.info.Uses[base]
		}
	}
	if lid != nil && slObj != nil && x.cursors[slObj] {
		lobj := x.info.Defs[lid]
		if lobj == nil {
			lobj = x.info.Uses[lid]
		}
		if lobj == slObj {
			// data = data[k:] — the advance that fixes pending offsets.
			x.flush(f, sliceLow(x.info, sl))
			return
		}
		if lobj != nil && isByteSlice(lobj.Type()) && !isTrailerSlice(x.info, x.cursors, sl) {
			// rest := body[hdr:] — a renamed view; the skipped prefix
			// is unread header bytes.
			x.cursors[lobj] = true
			x.flush(f, sliceLow(x.info, sl))
			return
		}
	}
	x.scan(f, rhs)
}

// sliceLow is the const low bound of sl, 0 when absent, -1 when dynamic.
func sliceLow(info *types.Info, sl *ast.SliceExpr) int64 {
	if sl.Low == nil {
		return 0
	}
	if k, ok := constVal(info, sl.Low); ok {
		return k
	}
	return -1
}

// isTrailerSlice reports whether sl is cursor[len(cursor)-k:], the
// trailing-checksum view.
func isTrailerSlice(info *types.Info, cursors map[types.Object]bool, sl *ast.SliceExpr) bool {
	off, ok := trailerOffset(info, cursors, sl.Low)
	return ok && off > 0
}

func trailerOffset(info *types.Info, cursors map[types.Object]bool, low ast.Expr) (int64, bool) {
	be, ok := ast.Unparen(low).(*ast.BinaryExpr)
	if !ok || be.Op != token.SUB {
		return 0, false
	}
	call, ok := ast.Unparen(be.X).(*ast.CallExpr)
	if !ok || !isBuiltin(info, call, "len") || len(call.Args) != 1 {
		return 0, false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || !cursors[info.Uses[id]] {
		return 0, false
	}
	k, ok := constVal(info, be.Y)
	return k, ok
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// --- expression scanning --------------------------------------------------

// scan walks an expression for wire operations: appends and
// binary.Append* on the encode side, cursor reads on the decode side,
// and calls of single-assignment codec closures on both.
func (x *extractor) scan(f *frame, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if x.opaque {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // extracted only at call sites
		case *ast.CallExpr:
			return x.call(f, n)
		case *ast.IndexExpr:
			if obj := x.cursorIdent(n.X); obj != nil {
				off := int64(-1)
				if k, ok := constVal(x.info, n.Index); ok {
					off = k
				}
				f.pend = append(f.pend, pending{kind: oU8, off: off})
				return false
			}
		}
		return true
	})
}

// cursorIdent resolves e to a registered cursor object, or nil.
func (x *extractor) cursorIdent(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := x.info.Uses[id]
	if obj != nil && x.cursors[obj] {
		return obj
	}
	return nil
}

// cursorArg classifies a call argument that views a cursor: the bare
// cursor, or a slice/expression over one. width is the const byte span
// when derivable, off the const start offset (-1 unknown).
func (x *extractor) cursorArg(e ast.Expr) (obj types.Object, off, width int64, trailer bool) {
	e = ast.Unparen(e)
	if obj := x.cursorIdent(e); obj != nil {
		return obj, 0, -1, false
	}
	sl, ok := e.(*ast.SliceExpr)
	if !ok {
		return nil, 0, 0, false
	}
	obj = x.cursorIdent(sl.X)
	if obj == nil {
		return nil, 0, 0, false
	}
	off, width = -1, -1
	if k, ok := trailerOffset(x.info, x.cursors, sl.Low); ok {
		return obj, k, -1, true
	}
	low := int64(0)
	lowConst := sl.Low == nil
	if sl.Low != nil {
		if k, ok := constVal(x.info, sl.Low); ok {
			low, lowConst = k, true
		}
	}
	if lowConst {
		off = low
		if sl.High != nil {
			if h, ok := constVal(x.info, sl.High); ok {
				width = h - low
			}
		}
	}
	return obj, off, width, false
}

// call handles one call expression; the return value feeds ast.Inspect
// (false = handled, do not descend into arguments).
func (x *extractor) call(f *frame, call *ast.CallExpr) bool {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := x.info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "append":
				x.appendCall(f, call)
				return false
			case "copy":
				if len(call.Args) == 2 {
					if obj, off, w, tr := x.cursorArg(call.Args[1]); obj != nil {
						if w < 0 {
							// copy(fp[:], rest[i*Size:]): the destination
							// array bounds the read when the source does not.
							w = x.sliceWidth(call.Args[0])
						}
						x.addPend(f, pending{kind: oBytes, off: off, width: w}, tr)
					}
				}
				return false
			case "len", "cap", "make", "new", "min", "max":
				return false
			}
			return true
		}
	}
	// Type conversions: string(data), time.Duration(u64(...)).
	if tv, ok := x.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			if obj, off, w, tr := x.cursorArg(call.Args[0]); obj != nil {
				x.addPend(f, pending{kind: oBytes, off: off, width: w}, tr)
				return false
			}
		}
		return true
	}
	// Codec closures: a func-typed local assigned exactly one FuncLit.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if v, ok := x.info.Uses[id].(*types.Var); ok {
			if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
				x.closureCall(f, v)
				return false
			}
		}
	}
	// Named functions and methods.
	if callee := ssa.Callee(x.info, call); callee != nil {
		if analysis.FuncPkgPath(callee) == "encoding/binary" {
			if x.binaryCall(f, call, callee.Name()) {
				return false
			}
		}
		// Same-package delegation: when a cursor flows into a function
		// whose body is in this package (r.decode(data), readSeal(data,
		// &fp)), splice the callee's own wire ops in place of the call.
		if decl := x.decls[callee]; decl != nil {
			for _, a := range call.Args {
				if obj, _, _, _ := x.cursorArg(a); obj != nil {
					x.flush(f, -1)
					ops, ok := x.funcOps(callee, decl)
					if !ok {
						x.opaque = true
						return false
					}
					f.ops = append(f.ops, ops...)
					return false
				}
			}
		}
	}
	// Any other call. A cursor sliced to a bounded window
	// (h.UnmarshalBinary(data[:n])) is a delegated sub-decoding of
	// exactly that window: one bytes read. An open-ended handoff to a
	// decoder whose body we cannot see (chunk.DecodeRecipe(data[8:]))
	// leaves the consumed width — and any reads through the returned
	// remainder — unknowable, so the function is not modeled. A bare
	// cursor argument is a whole-buffer observer
	// (crc32.ChecksumIEEE(body)) and reads nothing new.
	for _, a := range call.Args {
		se, ok := ast.Unparen(a).(*ast.SliceExpr)
		if !ok {
			continue
		}
		if obj, off, w, tr := x.cursorArg(a); obj != nil {
			if se.High == nil {
				x.opaque = true
				return false
			}
			x.addPend(f, pending{kind: oBytes, off: off, width: w}, tr)
			return false
		}
	}
	return true
}

func (x *extractor) addPend(f *frame, p pending, trailer bool) {
	if trailer {
		x.trailer = append(x.trailer, p)
		return
	}
	f.pend = append(f.pend, p)
}

// appendCall models append(buf, ...): flag/magic bytes and raw blobs.
func (x *extractor) appendCall(f *frame, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	if call.Ellipsis != token.NoPos {
		arg := call.Args[len(call.Args)-1]
		if tv, ok := x.info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			s := constant.StringVal(tv.Value)
			f.ops = append(f.ops, op{kind: oBytes, width: int64(len(s))})
			return
		}
		f.ops = append(f.ops, op{kind: oBytes, width: x.sliceWidth(arg)})
		return
	}
	for range call.Args[1:] {
		f.ops = append(f.ops, op{kind: oU8})
	}
}

// sliceWidth returns the constant byte length of a slice expression —
// const bounds (buf[2:6]), or a full/low-bounded slice of an array
// (fp[:], where fp is a [20]byte) — and -1 when the length is not
// statically known.
func (x *extractor) sliceWidth(e ast.Expr) int64 {
	se, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || se.Slice3 {
		return -1
	}
	var low int64
	if se.Low != nil {
		v, ok := constVal(x.info, se.Low)
		if !ok {
			return -1
		}
		low = v
	}
	if se.High != nil {
		if v, ok := constVal(x.info, se.High); ok && v >= low {
			return v - low
		}
		return -1
	}
	if tv, ok := x.info.Types[se.X]; ok && tv.Type != nil {
		t := tv.Type.Underlying()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem().Underlying()
		}
		if arr, ok := t.(*types.Array); ok && arr.Len() >= low {
			return arr.Len() - low
		}
	}
	return -1
}

// binaryCall models encoding/binary writers and readers by name.
func (x *extractor) binaryCall(f *frame, call *ast.CallExpr, name string) bool {
	emit := func(k opKind) bool {
		f.ops = append(f.ops, op{kind: k})
		return true
	}
	read := func(k opKind, width int64) bool {
		if len(call.Args) == 0 {
			return false
		}
		argIdx := 0
		if name == "Uint16" || name == "Uint32" || name == "Uint64" {
			argIdx = len(call.Args) - 1
		}
		obj, off, _, tr := x.cursorArg(call.Args[argIdx])
		if obj == nil {
			return false
		}
		x.addPend(f, pending{kind: k, off: off, width: width}, tr)
		return true
	}
	switch name {
	case "AppendUint16":
		return emit(oU16)
	case "AppendUint32":
		return emit(oU32)
	case "AppendUint64":
		return emit(oU64)
	case "AppendUvarint", "AppendVarint":
		return emit(oUvarint)
	case "Uint16":
		return read(oU16, 2)
	case "Uint32":
		return read(oU32, 4)
	case "Uint64":
		return read(oU64, 8)
	case "Uvarint", "Varint":
		return read(oUvarint, -1)
	}
	return false
}

// closureCall splices the ops of a single-assignment codec closure.
func (x *extractor) closureCall(f *frame, v *types.Var) {
	if ops, ok := x.closure[v]; ok {
		f.ops = append(f.ops, ops...)
		return
	}
	lit := ssa.ClosureValue(x.info, x.scope, v)
	if lit == nil {
		x.opaque = true
		return
	}
	x.closure[v] = nil // cut self-recursive closures
	cf := &frame{}
	fl := x.walk(cf, lit.Body.List)
	if fl == flowNext {
		x.flush(cf, -1)
	}
	if x.opaque {
		return
	}
	x.closure[v] = cf.ops
	f.ops = append(f.ops, cf.ops...)
}

// --- pending layout -------------------------------------------------------

// flush converts f's pending reads into ops. When every pending has a
// known offset and width the advance limit (data = data[limit:]) lets
// reads be laid out positionally, with unread gaps (version bytes
// checked inside if-conditions, magic prefixes) filled as u8. Otherwise
// pendings are emitted in the order the reads appeared.
func (x *extractor) flush(f *frame, limit int64) {
	pend := f.pend
	f.pend = nil
	if len(pend) == 0 {
		if limit > 0 {
			if limit > maxFill {
				x.opaque = true
				return
			}
			for i := int64(0); i < limit; i++ {
				f.ops = append(f.ops, op{kind: oU8})
			}
		}
		return
	}
	layout := true
	for _, p := range pend {
		if p.off < 0 || fixedWidth(pendingOp(p)) < 0 {
			layout = false
			break
		}
	}
	if layout {
		sorted := append([]pending{}, pend...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].off < sorted[j].off })
		var ops []op
		cur := int64(0)
		ok := true
		for _, p := range sorted {
			gap := p.off - cur
			if gap < 0 || gap > maxFill {
				ok = false
				break
			}
			for i := int64(0); i < gap; i++ {
				ops = append(ops, op{kind: oU8})
			}
			o := pendingOp(p)
			ops = append(ops, o)
			cur = p.off + fixedWidth(o)
		}
		if ok && limit > 0 {
			tail := limit - cur
			if tail < 0 || tail > maxFill {
				ok = false
			} else {
				for i := int64(0); i < tail; i++ {
					ops = append(ops, op{kind: oU8})
				}
			}
		}
		if ok {
			f.ops = append(f.ops, ops...)
			return
		}
	}
	for _, p := range pend {
		f.ops = append(f.ops, pendingOp(p))
	}
}
