// Package wire is the wiresym golden corpus. The symmetric pairs mirror
// the shapes of the real codecs in the tree (telemetry dump/restore,
// segment index, manifest, abort message, trace context); the broken
// pairs each violate one symmetry dimension: field type, field order,
// count-prefix width, version gating.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// --- symmetric: telemetry-dump shape (closures, flag + optional blob) -----

type Frame struct {
	A, B  int64
	Times []int64
	Blob  []byte
}

func EncodeFrame(f Frame) ([]byte, error) {
	var buf []byte
	i64 := func(v int64) { buf = binary.BigEndian.AppendUint64(buf, uint64(v)) }
	i64s := func(v []int64) {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
		for _, d := range v {
			i64(d)
		}
	}
	buf = append(buf, 3)
	i64(f.A)
	i64(f.B)
	i64s(f.Times)
	if f.Blob == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.Blob)))
		buf = append(buf, f.Blob...)
	}
	return buf, nil
}

func DecodeFrame(data []byte) (Frame, error) {
	var f Frame
	if len(data) == 0 {
		return f, fmt.Errorf("wire: empty frame")
	}
	if data[0] != 3 {
		return f, fmt.Errorf("wire: frame version %d", data[0])
	}
	data = data[1:]
	i64 := func() (int64, bool) {
		if len(data) < 8 {
			return 0, false
		}
		v := int64(binary.BigEndian.Uint64(data))
		data = data[8:]
		return v, true
	}
	i64s := func() ([]int64, bool) {
		if len(data) < 4 {
			return nil, false
		}
		n := int(binary.BigEndian.Uint32(data))
		data = data[4:]
		if n == 0 {
			return nil, true
		}
		if len(data) < 8*n {
			return nil, false
		}
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(binary.BigEndian.Uint64(data[8*i:]))
		}
		data = data[8*n:]
		return out, true
	}
	var ok bool
	if f.A, ok = i64(); !ok {
		return Frame{}, fmt.Errorf("wire: truncated frame")
	}
	if f.B, ok = i64(); !ok {
		return Frame{}, fmt.Errorf("wire: truncated frame")
	}
	if f.Times, ok = i64s(); !ok {
		return Frame{}, fmt.Errorf("wire: truncated frame")
	}
	if len(data) < 1 {
		return Frame{}, fmt.Errorf("wire: truncated frame")
	}
	flag := data[0]
	data = data[1:]
	switch flag {
	case 0:
	case 1:
		if len(data) < 4 {
			return Frame{}, fmt.Errorf("wire: truncated frame")
		}
		n := int(binary.BigEndian.Uint32(data))
		data = data[4:]
		if len(data) < n {
			return Frame{}, fmt.Errorf("wire: truncated frame")
		}
		f.Blob = make([]byte, n)
		copy(f.Blob, data[:n])
		data = data[n:]
	default:
		return Frame{}, fmt.Errorf("wire: bad blob flag %d", flag)
	}
	if len(data) != 0 {
		return Frame{}, fmt.Errorf("wire: trailing bytes")
	}
	return f, nil
}

// --- symmetric: segindex shape (magic, varint columns, crc trailer) -------

const tableMagic = "TBLx"

type Row struct {
	Off uint64
	Len uint32
}

func encodeTable(rows []Row) []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, tableMagic...)
	buf = append(buf, 1)
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	for _, r := range rows {
		buf = binary.AppendUvarint(buf, r.Off)
	}
	for _, r := range rows {
		buf = binary.AppendUvarint(buf, uint64(r.Len))
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

func decodeTable(data []byte) ([]Row, error) {
	const hdr = len(tableMagic) + 1
	if len(data) < hdr+1+4 {
		return nil, fmt.Errorf("wire: table truncated")
	}
	if string(data[:len(tableMagic)]) != tableMagic {
		return nil, fmt.Errorf("wire: bad table magic")
	}
	if data[len(tableMagic)] != 1 {
		return nil, fmt.Errorf("wire: table version")
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("wire: table checksum")
	}
	rest := body[hdr:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("wire: bad table count")
	}
	rest = rest[n:]
	rows := make([]Row, count)
	for i := range rows {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("wire: offset column truncated")
		}
		rows[i].Off, rest = v, rest[n:]
	}
	for i := range rows {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("wire: length column truncated")
		}
		rows[i].Len, rest = uint32(v), rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: trailing bytes after table")
	}
	return rows, nil
}

// --- symmetric: abort-message shape (count prefix + tail string) ----------

func encodeNote(ranks []int, cause string) []byte {
	buf := make([]byte, 0, 3+4*len(ranks)+len(cause))
	buf = append(buf, 1)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(ranks)))
	for _, r := range ranks {
		buf = binary.BigEndian.AppendUint32(buf, uint32(r))
	}
	return append(buf, cause...)
}

func decodeNote(data []byte) ([]int, string, error) {
	if len(data) < 3 {
		return nil, "", fmt.Errorf("wire: note truncated")
	}
	if data[0] != 1 {
		return nil, "", fmt.Errorf("wire: note version")
	}
	n := int(binary.BigEndian.Uint16(data[1:3]))
	data = data[3:]
	if len(data) < 4*n {
		return nil, "", fmt.Errorf("wire: note rank list truncated")
	}
	var ranks []int
	if n > 0 {
		ranks = make([]int, n)
		for i := range ranks {
			ranks[i] = int(binary.BigEndian.Uint32(data[4*i:]))
		}
	}
	data = data[4*n:]
	return ranks, string(data), nil
}

// --- symmetric: tracectx shape (fixed header, composite-literal decode) ---

type Span struct {
	Job  uint64
	Seq  uint32
	Self uint64
}

func encodeSpan(s *Span) []byte {
	buf := make([]byte, 0, 21)
	buf = append(buf, 1)
	buf = binary.BigEndian.AppendUint64(buf, s.Job)
	buf = binary.BigEndian.AppendUint32(buf, s.Seq)
	buf = binary.BigEndian.AppendUint64(buf, s.Self)
	return buf
}

func decodeSpan(data []byte) (*Span, error) {
	if len(data) != 21 {
		return nil, fmt.Errorf("wire: span of %d bytes", len(data))
	}
	if data[0] != 1 {
		return nil, fmt.Errorf("wire: span version")
	}
	return &Span{
		Job:  binary.BigEndian.Uint64(data[1:]),
		Seq:  binary.BigEndian.Uint32(data[9:]),
		Self: binary.BigEndian.Uint64(data[13:]),
	}, nil
}

// --- symmetric: manifest-style method encoder paired by receiver name -----

type chunk struct {
	id   uint64
	body []byte
}

func (c *chunk) encode() []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, c.id)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(c.body)))
	return append(buf, c.body...)
}

func decodeChunk(data []byte) (*chunk, error) {
	id, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("wire: bad chunk id")
	}
	data = data[n:]
	if len(data) < 4 {
		return nil, fmt.Errorf("wire: chunk length truncated")
	}
	size := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	if len(data) != size {
		return nil, fmt.Errorf("wire: chunk body truncated")
	}
	return &chunk{id: id, body: []byte(string(data))}, nil
}

// --- broken: count-prefix width (u32 written, u16 read) -------------------

func encodeHdr(ids []uint64) []byte {
	var buf []byte
	buf = append(buf, 1)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = binary.BigEndian.AppendUint64(buf, id)
	}
	return buf
}

func decodeHdr(data []byte) ([]uint64, error) { // want "wire asymmetry: encodeHdr writes"
	if len(data) < 3 {
		return nil, fmt.Errorf("wire: hdr truncated")
	}
	n := int(binary.BigEndian.Uint16(data[1:3]))
	data = data[3:]
	if len(data) != 8*n {
		return nil, fmt.Errorf("wire: hdr body truncated")
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.BigEndian.Uint64(data[8*i:])
	}
	return out, nil
}

// --- broken: field order (u32 then u64 written, read reversed) ------------

type Rec struct {
	A uint32
	B uint64
}

func encodeRec(r Rec) []byte {
	var buf []byte
	buf = binary.BigEndian.AppendUint32(buf, r.A)
	buf = binary.BigEndian.AppendUint64(buf, r.B)
	return buf
}

func decodeRec(data []byte) (Rec, error) { // want "wire asymmetry: encodeRec writes"
	if len(data) != 12 {
		return Rec{}, fmt.Errorf("wire: rec of %d bytes", len(data))
	}
	return Rec{
		B: binary.BigEndian.Uint64(data[0:8]),
		A: binary.BigEndian.Uint32(data[8:]),
	}, nil
}

// --- broken: version gate (written unconditionally, read conditionally) ---

func encodeStamp(v uint32) []byte {
	var buf []byte
	buf = append(buf, 2)
	buf = binary.BigEndian.AppendUint32(buf, v)
	return buf
}

func decodeStamp(data []byte) (uint32, error) { // want "wire asymmetry: encodeStamp writes"
	if len(data) < 1 {
		return 0, fmt.Errorf("wire: stamp truncated")
	}
	flag := data[0]
	data = data[1:]
	var v uint32
	if flag == 2 {
		if len(data) < 4 {
			return 0, fmt.Errorf("wire: stamp truncated")
		}
		v = binary.BigEndian.Uint32(data)
		data = data[4:]
	}
	if len(data) != 0 {
		return 0, fmt.Errorf("wire: trailing bytes after stamp")
	}
	return v, nil
}

// --- broken: missing field (u64 written, never read) ----------------------

func encodeTick(a, b uint64) []byte {
	var buf []byte
	buf = binary.BigEndian.AppendUint64(buf, a)
	buf = binary.BigEndian.AppendUint64(buf, b)
	return buf
}

func decodeTick(data []byte) (uint64, error) { // want "wire asymmetry: encodeTick writes"
	if len(data) < 8 {
		return 0, fmt.Errorf("wire: tick truncated")
	}
	return binary.BigEndian.Uint64(data), nil
}

// --- suppressed: audited intentional asymmetry ----------------------------

// decodeLegacy accepts the pre-checksum v1 layout the encoder no longer
// writes.
//
//dedupvet:wiresym v1 frames lack the trailing checksum; reader keeps accepting them
func decodeLegacy(data []byte) (uint64, error) {
	if len(data) < 8 {
		return 0, fmt.Errorf("wire: legacy truncated")
	}
	return binary.BigEndian.Uint64(data), nil
}

func encodeLegacy(v uint64) []byte {
	var buf []byte
	buf = binary.BigEndian.AppendUint64(buf, v)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// --- symmetric: same-package delegated decoding ---------------------------

type block struct {
	n    uint32
	body []byte
}

func encodeBlock(b block) []byte {
	buf := binary.BigEndian.AppendUint32(nil, b.n)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b.body)))
	return append(buf, b.body...)
}

// decodeBlock hands the whole buffer to a helper in this package: the
// extractor splices the helper's ops in place of the call.
func decodeBlock(data []byte) (block, error) {
	var b block
	if err := b.load(data); err != nil {
		return block{}, err
	}
	return b, nil
}

func (b *block) load(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("wire: block truncated")
	}
	b.n = binary.BigEndian.Uint32(data)
	m := int(binary.BigEndian.Uint32(data[4:]))
	data = data[8:]
	if len(data) < m {
		return fmt.Errorf("wire: block body truncated")
	}
	b.body = make([]byte, m)
	copy(b.body, data)
	return nil
}

// --- broken: delegated reader drops the trailing flag ---------------------

func encodeSeal(fp [20]byte, ok bool) []byte {
	buf := append([]byte(nil), fp[:]...)
	v := byte(0)
	if ok {
		v = 1
	}
	return append(buf, v)
}

func decodeSeal(data []byte) ([20]byte, error) { // want "wire asymmetry: encodeSeal writes"
	var fp [20]byte
	if err := readSeal(data, &fp); err != nil {
		return fp, err
	}
	return fp, nil
}

func readSeal(data []byte, fp *[20]byte) error {
	if len(data) < 20 {
		return fmt.Errorf("wire: seal truncated")
	}
	copy(fp[:], data[:20])
	return nil
}

// --- symmetric: bounded-window handoff to an opaque sub-decoder -----------

type payload interface {
	MarshalBinary() ([]byte, error)
	UnmarshalBinary(data []byte) error
}

func encodeBox(p payload) ([]byte, error) {
	pb, err := p.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(pb)))
	return append(buf, pb...), nil
}

// decodeBox slices a length-bounded window for the sub-decoder: the
// window is one bytes read regardless of what the callee does inside.
func decodeBox(data []byte, p payload) error {
	if len(data) < 4 {
		return fmt.Errorf("wire: box truncated")
	}
	n := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	if len(data) < n {
		return fmt.Errorf("wire: box payload truncated")
	}
	return p.UnmarshalBinary(data[:n])
}

// --- not modeled: open-ended handoff to an unseen decoder -----------------

// decodeHull hands an open-ended remainder to a decoder the extractor
// cannot see into: the consumed width is unknowable, so the pair is
// skipped (no diagnostic) even though encodeHull visibly writes more.
func encodeHull(p payload, tag uint16) ([]byte, error) {
	pb, err := p.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := binary.BigEndian.AppendUint16(nil, tag)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(pb)))
	return append(buf, pb...), nil
}

func decodeHull(data []byte, p payload) error {
	if len(data) < 2 {
		return fmt.Errorf("wire: hull truncated")
	}
	return p.UnmarshalBinary(data[2:])
}
