package wiresym_test

import (
	"testing"

	"dedupcr/internal/analysis/analysistest"
	"dedupcr/internal/analysis/wiresym"
)

func TestWireSym(t *testing.T) {
	analysistest.Run(t, wiresym.Analyzer, "wire")
}
