package analysis

import (
	"fmt"
	"go/token"
	"io"

	"dedupcr/internal/analysis/load"
)

// RunPackage applies every analyzer to one loaded package and returns the
// findings in reported order.
func RunPackage(pkg *load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	return diags, nil
}

// Run applies every analyzer to every package and returns the findings
// sorted by position. The shared fileset of the packages is returned for
// rendering.
func Run(pkgs []*load.Package, analyzers []*Analyzer) (*token.FileSet, []Diagnostic, error) {
	var all []Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		diags, err := RunPackage(pkg, analyzers)
		if err != nil {
			return fset, all, err
		}
		all = append(all, diags...)
	}
	if fset != nil {
		SortDiagnostics(fset, all)
	}
	return fset, all, nil
}

// Print renders diagnostics in the canonical file:line:col form.
func Print(w io.Writer, fset *token.FileSet, diags []Diagnostic) {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s: %s (%s)\n", pos, d.Message, d.Analyzer)
	}
}
