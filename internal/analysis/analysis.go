// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis API shape, built on the standard
// library's go/ast and go/types only. It exists because the repo's
// correctness invariants — collective determinism, bounded decoding,
// failure attribution, lock discipline, context discipline — cannot be
// expressed in generic vet/staticcheck checks, and the build environment
// pins dependencies to the standard library.
//
// The shapes mirror x/tools deliberately (Analyzer, Pass, Diagnostic), so
// the analyzers under internal/analysis/... could be ported to the real
// framework by swapping imports if the dependency ever becomes available.
//
// # Directives
//
// Analyzers share one suppression mechanism: a `//dedupvet:<name>` comment
// on the offending line, on the line directly above it, or in the doc
// comment of the enclosing declaration. Each analyzer documents the
// directive names it honours (e.g. `//dedupvet:ordered` for the
// determinism analyzer, `//dedupvet:bounded` for boundedmake). Directives
// deliberately require an audit trail: they mark a site a human has
// reviewed, exactly like the 1 GiB frame bound that motivated boundedmake.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one machine-checked invariant: a name, what it checks,
// and the function that checks one package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flag names. It must
	// be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description printed by `dedupvet help`.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// pass.Report/Reportf. The error return is for operational failures
	// (not findings); it aborts the whole run.
	Run func(*Pass) error
}

// A Pass is one (analyzer, package) unit of work, carrying everything the
// analyzer may inspect.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed source files (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries the type-checker's fact tables for Files.
	TypesInfo *types.Info
	// Report delivers one finding. The driver installs it.
	Report func(Diagnostic)

	directives map[*ast.File]directiveIndex
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Path returns the package's import path.
func (p *Pass) Path() string {
	if p.Pkg == nil {
		return ""
	}
	return p.Pkg.Path()
}

// PathHasSuffix reports whether the package path equals suffix or ends in
// "/"+suffix. Analyzers scope themselves by path suffix so the same rule
// matches both the real tree ("dedupcr/internal/core") and analysistest
// fixtures ("internal/core").
func (p *Pass) PathHasSuffix(suffix string) bool {
	path := p.Path()
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// directive is one parsed `//dedupvet:<name> [args]` comment.
type directive struct {
	name string
	args string
}

// directiveIndex maps source lines to the directives written on them.
type directiveIndex map[int][]directive

// DirectivePrefix is the comment prefix shared by all analyzers.
const DirectivePrefix = "//dedupvet:"

// parseDirective extracts a directive from one comment's text, or returns
// ok=false.
func parseDirective(text string) (directive, bool) {
	if !strings.HasPrefix(text, DirectivePrefix) {
		return directive{}, false
	}
	body := strings.TrimPrefix(text, DirectivePrefix)
	name, args, _ := strings.Cut(body, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return directive{}, false
	}
	return directive{name: name, args: strings.TrimSpace(args)}, true
}

// fileDirectives builds (and caches) the line index of file's directives.
func (p *Pass) fileDirectives(file *ast.File) directiveIndex {
	if idx, ok := p.directives[file]; ok {
		return idx
	}
	idx := directiveIndex{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if d, ok := parseDirective(c.Text); ok {
				line := p.Fset.Position(c.Slash).Line
				idx[line] = append(idx[line], d)
			}
		}
	}
	if p.directives == nil {
		p.directives = make(map[*ast.File]directiveIndex)
	}
	p.directives[file] = idx
	return idx
}

// File returns the *ast.File of Files that contains pos, or nil.
func (p *Pass) File(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Suppressed reports whether a `//dedupvet:<name>` directive covers pos:
// written on the same line or on the line directly above.
func (p *Pass) Suppressed(pos token.Pos, name string) bool {
	file := p.File(pos)
	if file == nil {
		return false
	}
	idx := p.fileDirectives(file)
	line := p.Fset.Position(pos).Line
	for _, d := range idx[line] {
		if d.name == name {
			return true
		}
	}
	for _, d := range idx[line-1] {
		if d.name == name {
			return true
		}
	}
	return false
}

// FuncDirective returns the args of the `//dedupvet:<name>` directive in
// fn's doc comment, and whether it is present at all.
func FuncDirective(fn *ast.FuncDecl, name string) (args string, ok bool) {
	if fn == nil || fn.Doc == nil {
		return "", false
	}
	for _, c := range fn.Doc.List {
		if d, dok := parseDirective(c.Text); dok && d.name == name {
			return d.args, true
		}
	}
	return "", false
}

// FuncDecls yields every top-level function declaration of the pass, file
// by file in Fset order.
func (p *Pass) FuncDecls() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				out = append(out, fn)
			}
		}
	}
	return out
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for indirect/builtin calls.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// FuncPkgPath returns the import path of the package declaring fn, or "".
func FuncPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// PkgPathHasSuffix reports whether path equals suffix or ends in
// "/"+suffix (see Pass.PathHasSuffix).
func PkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer —
// the stable presentation order of every driver.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
