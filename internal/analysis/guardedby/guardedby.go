// Package guardedby is a lightweight lock-annotation checker. Struct
// fields documented with `// guarded by <mu>` (or `//dedupvet:guardedby
// <mu>`) may only be touched after the named mutex was acquired — the
// shared mailbox, the TCP connection table and the reduce-round stats are
// the motivating cases: all are mutated from transport reader goroutines
// and read from collective callers, and a missed lock is a data race the
// race detector only catches when a test happens to interleave.
//
// The check is intraprocedural and lexical, erring toward simplicity:
//
//   - a guarded field use (selector expression) inside the declaring
//     package must be preceded, in the same function, by a call to
//     <something>.<mu>.Lock() or .RLock();
//   - functions that run with the lock held by their caller either end in
//     "Locked" or carry a `//dedupvet:locked` doc directive;
//   - constructor-time initialization before the value escapes is
//     annotated per-line with `//dedupvet:locked`.
//
// The analyzer does not try to match the receiver expression of the lock
// call against the field's base object, nor track Unlock: it is an
// annotation auditor, not a race detector — the race detector remains the
// dynamic backstop.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"dedupcr/internal/analysis"
)

// Analyzer is the guarded-by annotation checker.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "check that `// guarded by mu` struct fields are only accessed with the named mutex held",
	Run:  run,
}

// Directive (as a doc directive or line suppression) marks code that runs
// with the guarding lock already held.
const Directive = "locked"

// guardedRe matches the free-text annotation form.
var guardedRe = regexp.MustCompile(`(?i)\bguarded by (\w+)\b`)

// guard records one annotated field and its guarding mutex name.
type guard struct {
	field *types.Var
	mu    string
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, fn := range pass.FuncDecls() {
		if fn.Body == nil || strings.HasSuffix(fn.Name.Name, "Locked") {
			continue
		}
		if _, held := analysis.FuncDirective(fn, Directive); held {
			continue
		}
		checkFunc(pass, fn, guards)
	}
	return nil
}

// collectGuards finds annotated struct fields in the package. Embedded
// fields have no Names entry, so they are resolved positionally through
// the checked struct type — an annotation on an embedded field used to
// be dropped silently.
func collectGuards(pass *analysis.Pass) map[types.Object]guard {
	guards := make(map[types.Object]guard)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			var stType *types.Struct
			if tv, ok := pass.TypesInfo.Types[st]; ok {
				stType, _ = tv.Type.(*types.Struct)
			}
			idx := 0
			for _, field := range st.Fields.List {
				width := len(field.Names)
				if width == 0 {
					width = 1 // embedded field
				}
				mu := fieldGuard(field)
				if mu == "" {
					idx += width
					continue
				}
				if len(field.Names) == 0 {
					if stType != nil && idx < stType.NumFields() {
						obj := stType.Field(idx)
						guards[obj] = guard{field: obj, mu: mu}
					}
					idx++
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = guard{field: obj.(*types.Var), mu: mu}
					}
					idx++
				}
			}
			return true
		})
	}
	return guards
}

// fieldGuard extracts the guarding mutex name from a field's doc or
// trailing comment, or "".
func fieldGuard(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, analysis.DirectivePrefix+"guardedby") {
				args := strings.TrimSpace(strings.TrimPrefix(c.Text, analysis.DirectivePrefix+"guardedby"))
				if args != "" {
					return args
				}
			}
			if m := guardedRe.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, guards map[types.Object]guard) {
	// lockPos collects, per mutex name, the positions of Lock/RLock calls.
	lockPos := make(map[string][]token.Pos)
	type use struct {
		pos token.Pos
		g   guard
	}
	var uses []use
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if mu := lockedMutex(pass, n); mu != "" {
				lockPos[mu] = append(lockPos[mu], n.Pos())
			}
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			if g, guarded := guards[sel.Obj()]; guarded {
				uses = append(uses, use{n.Sel.Pos(), g})
			}
		}
		return true
	})
	for mu := range lockPos {
		sort.Slice(lockPos[mu], func(i, j int) bool { return lockPos[mu][i] < lockPos[mu][j] })
	}
	for _, u := range uses {
		held := len(lockPos[u.g.mu]) > 0 && lockPos[u.g.mu][0] < u.pos
		if !held && !pass.Suppressed(u.pos, Directive) {
			pass.Reportf(u.pos, "field %s is guarded by %q but accessed without a preceding %s.Lock/RLock (acquire the lock, name the function ...Locked, or annotate with %s%s)",
				u.g.field.Name(), u.g.mu, u.g.mu, analysis.DirectivePrefix, Directive)
		}
	}
}

// lockedMutex returns the mutex field name when call is
// <expr>.<mu>.Lock() or <expr>.<mu>.RLock(), else "". A promoted call
// through an embedded mutex (s.Lock() on a struct embedding
// sync.Mutex) is credited to the embedded field's implicit name
// ("Mutex", "RWMutex"), matching the `// guarded by Mutex` annotation.
func lockedMutex(pass *analysis.Pass, call *ast.CallExpr) string {
	outer, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (outer.Sel.Name != "Lock" && outer.Sel.Name != "RLock") {
		return ""
	}
	if sel, ok := pass.TypesInfo.Selections[outer]; ok && sel.Kind() == types.MethodVal {
		if idx := sel.Index(); len(idx) > 1 {
			// Promotion path: every hop but the last is an embedded
			// field; the final field hop is the mutex itself.
			t := sel.Recv()
			name := ""
			for _, i := range idx[:len(idx)-1] {
				s, ok := deref(t).Underlying().(*types.Struct)
				if !ok || i >= s.NumFields() {
					name = ""
					break
				}
				f := s.Field(i)
				name = f.Name()
				t = f.Type()
			}
			if name != "" {
				return name
			}
		}
	}
	switch x := ast.Unparen(outer.X).(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.Ident:
		return x.Name
	}
	return ""
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
