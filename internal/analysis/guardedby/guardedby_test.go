package guardedby_test

import (
	"testing"

	"dedupcr/internal/analysis/analysistest"
	"dedupcr/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, guardedby.Analyzer, "cache")
}
