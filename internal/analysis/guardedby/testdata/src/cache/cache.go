// Package cache is a guardedby fixture: an annotated struct accessed
// with and without its lock, in both annotation spellings.
package cache

import "sync"

// Cache is the guarded struct.
type Cache struct {
	mu   sync.Mutex
	data map[string]int // guarded by mu
	hits int            // guarded by mu
	//dedupvet:guardedby mu
	miss int
}

// New builds through the composite literal, which is not a field use.
func New() *Cache {
	return &Cache{data: make(map[string]int)}
}

// Get takes the lock before every guarded access: clean.
func (c *Cache) Get(k string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.data[k]
	if ok {
		c.hits++
	} else {
		c.miss++
	}
	return v, ok
}

// Peek reads the guarded map without the lock.
func (c *Cache) Peek(k string) int {
	return c.data[k] // want "field data is guarded by \"mu\" but accessed without a preceding mu.Lock/RLock"
}

// Misses exercises the //dedupvet:guardedby annotation spelling.
func (c *Cache) Misses() int {
	return c.miss // want "field miss is guarded by \"mu\""
}

// sizeLocked runs with c.mu held by the caller: the Locked suffix
// exempts it.
func (c *Cache) sizeLocked() int {
	return len(c.data)
}

// flush runs under the caller's lock too, but keeps its name.
//
//dedupvet:locked
func (c *Cache) flush() {
	c.data = make(map[string]int)
}

// Reset initializes before the cache is shared: line-suppressed.
func (c *Cache) Reset() {
	//dedupvet:locked single-goroutine setup before the cache escapes
	c.data = make(map[string]int)
}

// Table embeds its mutex: the promoted t.Lock() call must be credited
// to the implicit field name "Mutex" so the annotation lines up.
type Table struct {
	sync.Mutex
	rows int // guarded by Mutex
}

// Add locks through the promoted method: clean.
func (t *Table) Add() {
	t.Lock()
	defer t.Unlock()
	t.rows++
}

// Rows reads the guarded counter without the lock.
func (t *Table) Rows() int {
	return t.rows // want "field rows is guarded by \"Mutex\""
}

// journal is embedded below as a guarded field.
type journal struct {
	entries []string
}

// Log guards an EMBEDDED field: annotations on fields without names
// used to be dropped silently (the false negative this corpus locks
// in).
type Log struct {
	mu sync.Mutex
	//dedupvet:guardedby mu
	journal
}

// Rotate swaps the embedded journal without the lock.
func (l *Log) Rotate() {
	l.journal = journal{} // want "field journal is guarded by \"mu\""
}

// RotateSafe takes the lock first: clean.
func (l *Log) RotateSafe() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.journal = journal{}
}
