package phaseattr_test

import (
	"testing"

	"dedupcr/internal/analysis/analysistest"
	"dedupcr/internal/analysis/phaseattr"
)

func TestPhaseAttr(t *testing.T) {
	analysistest.Run(t, phaseattr.Analyzer, "internal/core", "util")
}
