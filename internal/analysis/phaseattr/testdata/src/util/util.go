// Package util is outside the pipeline scope: blocking collectives here
// need no NotePhase, but CollectiveError attribution still applies.
package util

import "internal/collectives"

// Sync blocks with no phase: fine outside internal/core and
// internal/telemetry.
func Sync(c collectives.Comm) error {
	return collectives.Barrier(c)
}

// Fail still owes the taxonomy a phase.
func Fail(c collectives.Comm) error {
	return &collectives.CollectiveError{Ranks: []int{c.Rank()}} // want "CollectiveError constructed without Phase attribution"
}

// FailAttributed sets it: clean.
func FailAttributed(c collectives.Comm) error {
	return &collectives.CollectiveError{Ranks: []int{c.Rank()}, Phase: "util"}
}
