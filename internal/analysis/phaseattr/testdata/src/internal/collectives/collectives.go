// Package collectives is a minimal stub of the real transport package:
// just enough surface for the phaseattr fixtures to type-check. The
// analyzer matches it by path suffix, exactly like the real package.
package collectives

// Comm is the stub communicator.
type Comm interface {
	Rank() int
	Size() int
}

// NotePhase publishes the current pipeline phase.
func NotePhase(c Comm, phase string) {}

// Barrier blocks until every rank arrives.
func Barrier(c Comm) error { return nil }

// Gather collects every rank's payload at root.
func Gather(c Comm, root int, data []byte) ([][]byte, error) { return nil, nil }

// CollectiveError is the stub failure taxonomy.
type CollectiveError struct {
	Ranks []int
	Phase string
	Cause error
}

func (e *CollectiveError) Error() string { return e.Phase }

// Window is the stub one-sided window.
type Window struct{}

// Wait blocks until every outstanding put landed.
func (w *Window) Wait() error { return nil }
