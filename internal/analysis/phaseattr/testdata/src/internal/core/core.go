// Package core is a phaseattr fixture standing in for the dump/restore
// pipeline package: its path suffix puts every function in rule 1 scope.
package core

import "internal/collectives"

// dumpUnphased blocks without ever publishing a phase.
func dumpUnphased(c collectives.Comm) error {
	return collectives.Barrier(c) // want "blocking collective Barrier without a preceding NotePhase"
}

// dumpPhased publishes the phase first: clean.
func dumpPhased(c collectives.Comm) error {
	collectives.NotePhase(c, "barrier")
	return collectives.Barrier(c)
}

// gatherUnphased exercises a second entry point of the blocking set.
func gatherUnphased(c collectives.Comm, b []byte) ([][]byte, error) {
	return collectives.Gather(c, 0, b) // want "blocking collective Gather without a preceding NotePhase"
}

// reduceHelper runs with the phase already published by its caller.
//
//dedupvet:phased
func reduceHelper(c collectives.Comm) error {
	return collectives.Barrier(c)
}

// waitUnphased blocks on the one-sided window.
func waitUnphased(w *collectives.Window) error {
	return w.Wait() // want "blocking collective Window.Wait without a preceding NotePhase"
}

// newError drops the phase the taxonomy exists to carry.
func newError(ranks []int) error {
	return &collectives.CollectiveError{Ranks: ranks} // want "CollectiveError constructed without Phase attribution"
}

// newAttributed sets Phase: clean.
func newAttributed(ranks []int) error {
	return &collectives.CollectiveError{Ranks: ranks, Phase: "reduce"}
}

// newAudited is the line-suppressed pre-pipeline construction.
func newAudited(ranks []int) error {
	//dedupvet:phased
	return &collectives.CollectiveError{Ranks: ranks}
}

// restoreUnphased mirrors the restore pipeline's completion barrier:
// blocking without publishing any restore phase first.
func restoreUnphased(c collectives.Comm) error {
	return collectives.Barrier(c) // want "blocking collective Barrier without a preceding NotePhase"
}

// restorePhased walks the restore pipeline's phase sequence; the barrier
// is covered by the phases published earlier in the same function.
func restorePhased(c collectives.Comm) error {
	collectives.NotePhase(c, "restore-meta")
	collectives.NotePhase(c, "assemble")
	collectives.NotePhase(c, "restore-barrier")
	return collectives.Barrier(c)
}

// restoreTelemetryGather mirrors GatherClusterRestore: the in-band
// metrics gather publishes its own phase before blocking.
func restoreTelemetryGather(c collectives.Comm, enc []byte) ([][]byte, error) {
	collectives.NotePhase(c, "restore-telemetry")
	return collectives.Gather(c, 0, enc)
}

// restoreTelemetryUnphased is the same gather with the phase dropped —
// a telemetry failure would be misattributed to the preceding phase.
func restoreTelemetryUnphased(c collectives.Comm, enc []byte) ([][]byte, error) {
	return collectives.Gather(c, 0, enc) // want "blocking collective Gather without a preceding NotePhase"
}

// fetchServeLoop is a caller-phased helper like the fetch service's
// serve loop: the restore pipeline already published "assemble" when the
// fetch RPCs block.
//
//dedupvet:phased
func fetchServeLoop(c collectives.Comm) error {
	return collectives.Barrier(c)
}
