// Package phaseattr checks the failure-attribution invariants introduced
// with the collective abort protocol (DESIGN.md §9): when a collective
// fails, the surviving ranks must learn *which pipeline phase* died, so
// phase-scoped fault injection and the error taxonomy stay truthful.
//
// Two rules:
//
//  1. Phase before blocking. Inside the dump/restore pipeline (packages
//     ending in internal/core or internal/telemetry), a blocking
//     collective call — collectives.Barrier/Bcast/Gather/Allgather/
//     Allreduce/Reduce/AllgatherInt64, or (*collectives.Window).Wait —
//     must be lexically preceded, in the same function, by a call to
//     collectives.NotePhase (directly or inside an earlier closure such
//     as the pipeline's begin() helper). Helpers that run with the phase
//     already published by their caller carry a `//dedupvet:phased` doc
//     directive.
//
//  2. Attributed construction. Outside the collectives package itself, a
//     composite literal of collectives.CollectiveError must set the Phase
//     field — an unattributed CollectiveError erases exactly the context
//     the taxonomy exists to carry. Audited sites (e.g. pre-pipeline
//     validation) use a `//dedupvet:phased` line suppression.
package phaseattr

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"dedupcr/internal/analysis"
)

// Analyzer is the phase-attribution checker.
var Analyzer = &analysis.Analyzer{
	Name: "phaseattr",
	Doc: "require NotePhase before blocking collectives in the pipeline and " +
		"Phase attribution on constructed CollectiveErrors",
	Run: run,
}

// Directive marks a function whose caller establishes the phase, or an
// audited CollectiveError construction site.
const Directive = "phased"

// collectivesPkg is the path suffix of the collective runtime package.
const collectivesPkg = "internal/collectives"

// pipelinePkgSuffixes scope rule 1.
var pipelinePkgSuffixes = []string{"internal/core", "internal/telemetry"}

// blockingCollectives are the package-level collective entry points that
// synchronize with peers.
var blockingCollectives = map[string]bool{
	"Barrier":        true,
	"Bcast":          true,
	"Gather":         true,
	"Allgather":      true,
	"AllgatherInt64": true,
	"Allreduce":      true,
	"Reduce":         true,
}

func run(pass *analysis.Pass) error {
	inPipeline := false
	for _, suffix := range pipelinePkgSuffixes {
		if pass.PathHasSuffix(suffix) {
			inPipeline = true
			break
		}
	}
	if inPipeline {
		for _, fn := range pass.FuncDecls() {
			if fn.Body == nil {
				continue
			}
			if _, phased := analysis.FuncDirective(fn, Directive); phased {
				continue
			}
			checkPhaseBeforeBlocking(pass, fn)
		}
	}
	if !pass.PathHasSuffix(collectivesPkg) {
		checkErrorAttribution(pass)
	}
	return nil
}

// checkPhaseBeforeBlocking enforces rule 1 on one function.
func checkPhaseBeforeBlocking(pass *analysis.Pass, fn *ast.FuncDecl) {
	type site struct {
		pos  token.Pos
		name string
	}
	var notePos []token.Pos
	var blocking []site
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := pass.CalleeFunc(call)
		if callee == nil || !analysis.PkgPathHasSuffix(analysis.FuncPkgPath(callee), collectivesPkg) {
			return true
		}
		switch {
		case callee.Name() == "NotePhase":
			notePos = append(notePos, call.Pos())
		case callee.Type().(*types.Signature).Recv() == nil && blockingCollectives[callee.Name()]:
			blocking = append(blocking, site{call.Pos(), callee.Name()})
		case callee.Name() == "Wait" && recvIsWindow(callee):
			blocking = append(blocking, site{call.Pos(), "Window.Wait"})
		}
		return true
	})
	if len(blocking) == 0 {
		return
	}
	sort.Slice(notePos, func(i, j int) bool { return notePos[i] < notePos[j] })
	for _, b := range blocking {
		covered := len(notePos) > 0 && notePos[0] < b.pos
		if !covered && !pass.Suppressed(b.pos, Directive) {
			pass.Reportf(b.pos, "blocking collective %s without a preceding NotePhase: a failure here cannot be attributed to a pipeline phase (call NotePhase first, or mark a caller-phased helper with %s%s)",
				b.name, analysis.DirectivePrefix, Directive)
		}
	}
}

// recvIsWindow reports whether fn is a method on collectives.Window.
func recvIsWindow(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Window"
}

// checkErrorAttribution enforces rule 2 over the whole package.
func checkErrorAttribution(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok || !isCollectiveError(tv.Type) {
				return true
			}
			for _, elt := range lit.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Phase" {
						return true
					}
				}
			}
			if !pass.Suppressed(lit.Pos(), Directive) {
				pass.Reportf(lit.Pos(), "CollectiveError constructed without Phase attribution (set Phase, or annotate the audited site with %s%s)",
					analysis.DirectivePrefix, Directive)
			}
			return true
		})
	}
}

// isCollectiveError matches collectives.CollectiveError (or a pointer).
func isCollectiveError(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "CollectiveError" &&
		analysis.PkgPathHasSuffix(named.Obj().Pkg().Path(), collectivesPkg)
}
