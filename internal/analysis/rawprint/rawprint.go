// Package rawprint forbids raw terminal prints in library packages: the
// flight recorder (internal/obs) and its slog front-end are the one
// diagnostic channel, so library code writing straight to stderr/stdout
// bypasses the black box — the message is invisible to post-mortem
// bundles and to /debug/flight.
//
// Flagged in library packages (any internal/ subtree plus the module
// root, mirroring ctxcheck's scope):
//
//   - fmt.Print / fmt.Printf / fmt.Println (stdout)
//   - fmt.Fprint* with os.Stderr or os.Stdout as the writer
//   - every call into the standard "log" package
//   - the print / println builtins
//
// Exempt: cmd/ and examples/ binaries (their stdout IS the product),
// _test.go files, and internal/obs itself — the recorder needs one
// sanctioned sink of last resort. An audited exception carries a
// `//dedupvet:rawprint` directive.
package rawprint

import (
	"go/ast"
	"go/types"
	"strings"

	"dedupcr/internal/analysis"
)

// Analyzer is the raw-print checker.
var Analyzer = &analysis.Analyzer{
	Name: "rawprint",
	Doc: "forbid raw stderr/stdout prints and the log package in library " +
		"code: diagnostics go through internal/obs (flight recorder + slog)",
	Run: run,
}

// Directive marks an audited raw-print site.
const Directive = "rawprint"

func run(pass *analysis.Pass) error {
	if !isLibraryPkg(pass.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			check(pass, call)
			return true
		})
	}
	return nil
}

// isLibraryPkg mirrors ctxcheck's scope: internal/ subtrees and the bare
// module-root facade are library territory; cmd/ and examples/ are not,
// and internal/obs is the sanctioned sink itself.
func isLibraryPkg(path string) bool {
	if strings.Contains(path, "/cmd/") || strings.HasPrefix(path, "cmd/") ||
		strings.Contains(path, "/examples/") || strings.HasPrefix(path, "examples/") {
		return false
	}
	if analysis.PkgPathHasSuffix(path, "internal/obs") {
		return false
	}
	return strings.Contains(path, "internal/") || !strings.Contains(path, "/")
}

func check(pass *analysis.Pass, call *ast.CallExpr) {
	// The print/println builtins resolve to no *types.Func.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok &&
			(b.Name() == "print" || b.Name() == "println") {
			report(pass, call, "builtin "+b.Name())
		}
		return
	}
	callee := pass.CalleeFunc(call)
	if callee == nil {
		return
	}
	switch analysis.FuncPkgPath(callee) {
	case "log":
		report(pass, call, "log."+callee.Name())
	case "fmt":
		name := callee.Name()
		switch {
		case name == "Print" || name == "Printf" || name == "Println":
			report(pass, call, "fmt."+name)
		case strings.HasPrefix(name, "Fprint") && len(call.Args) > 0:
			if std := osStdStream(pass, call.Args[0]); std != "" {
				report(pass, call, "fmt."+name+" to os."+std)
			}
		}
	}
}

// osStdStream returns "Stderr"/"Stdout" when e is that os package
// variable, else "".
func osStdStream(pass *analysis.Pass, e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return ""
	}
	if v.Name() == "Stderr" || v.Name() == "Stdout" {
		return v.Name()
	}
	return ""
}

func report(pass *analysis.Pass, call *ast.CallExpr, what string) {
	if pass.Suppressed(call.Pos(), Directive) {
		return
	}
	pass.Reportf(call.Pos(), "raw print (%s) in library code: route diagnostics through internal/obs (audited sites are annotated %s%s)",
		what, analysis.DirectivePrefix, Directive)
}
