// Package rawprint forbids raw terminal prints in library packages: the
// flight recorder (internal/obs) and its slog front-end are the one
// diagnostic channel, so library code writing straight to stderr/stdout
// bypasses the black box — the message is invisible to post-mortem
// bundles and to /debug/flight.
//
// Flagged in library packages (any internal/ subtree plus the module
// root, mirroring ctxcheck's scope):
//
//   - fmt.Print / fmt.Printf / fmt.Println (stdout)
//   - fmt.Fprint* with os.Stderr or os.Stdout as the writer
//   - every call into the standard "log" package
//   - the print / println builtins
//
// cmd/ packages are checked in a relaxed mode with a documented
// exemption: their stdout IS the product, so the fmt family is allowed;
// the standard "log" package and the print/println builtins are still
// flagged — binaries log through the same slog/obs front-end as the
// libraries, so crash-time diagnostics land in the flight recorder.
//
// Fully exempt: examples/ binaries, _test.go files, and internal/obs
// itself — the recorder needs one sanctioned sink of last resort. An
// audited exception carries a `//dedupvet:rawprint` directive.
package rawprint

import (
	"go/ast"
	"go/types"
	"strings"

	"dedupcr/internal/analysis"
)

// Analyzer is the raw-print checker.
var Analyzer = &analysis.Analyzer{
	Name: "rawprint",
	Doc: "forbid raw stderr/stdout prints and the log package in library " +
		"code: diagnostics go through internal/obs (flight recorder + slog)",
	Run: run,
}

// Directive marks an audited raw-print site.
const Directive = "rawprint"

func run(pass *analysis.Pass) error {
	path := pass.Path()
	cmd := isCmdPkg(path)
	if !cmd && !isLibraryPkg(path) {
		return nil
	}
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			check(pass, call, cmd)
			return true
		})
	}
	return nil
}

// isLibraryPkg mirrors ctxcheck's scope: internal/ subtrees and the bare
// module-root facade are library territory; examples/ is not, and
// internal/obs is the sanctioned sink itself. cmd/ is handled
// separately in a relaxed mode.
func isLibraryPkg(path string) bool {
	if isCmdPkg(path) ||
		strings.Contains(path, "/examples/") || strings.HasPrefix(path, "examples/") {
		return false
	}
	if analysis.PkgPathHasSuffix(path, "internal/obs") {
		return false
	}
	return strings.Contains(path, "internal/") || !strings.Contains(path, "/")
}

func isCmdPkg(path string) bool {
	return strings.Contains(path, "/cmd/") || strings.HasPrefix(path, "cmd/")
}

// check inspects one call; in cmd mode (cmdOnly) the fmt family is
// exempt because stdout is the binary's product.
func check(pass *analysis.Pass, call *ast.CallExpr, cmdOnly bool) {
	scope := "library code"
	if cmdOnly {
		scope = "command code"
	}
	// The print/println builtins resolve to no *types.Func.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok &&
			(b.Name() == "print" || b.Name() == "println") {
			report(pass, call, "builtin "+b.Name(), scope)
		}
		return
	}
	callee := pass.CalleeFunc(call)
	if callee == nil {
		return
	}
	switch analysis.FuncPkgPath(callee) {
	case "log":
		report(pass, call, "log."+callee.Name(), scope)
	case "fmt":
		if cmdOnly {
			return
		}
		name := callee.Name()
		switch {
		case name == "Print" || name == "Printf" || name == "Println":
			report(pass, call, "fmt."+name, scope)
		case strings.HasPrefix(name, "Fprint") && len(call.Args) > 0:
			if std := osStdStream(pass, call.Args[0]); std != "" {
				report(pass, call, "fmt."+name+" to os."+std, scope)
			}
		}
	}
}

// osStdStream returns "Stderr"/"Stdout" when e is that os package
// variable, else "".
func osStdStream(pass *analysis.Pass, e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return ""
	}
	if v.Name() == "Stderr" || v.Name() == "Stdout" {
		return v.Name()
	}
	return ""
}

func report(pass *analysis.Pass, call *ast.CallExpr, what, scope string) {
	if pass.Suppressed(call.Pos(), Directive) {
		return
	}
	pass.Reportf(call.Pos(), "raw print (%s) in %s: route diagnostics through internal/obs (audited sites are annotated %s%s)",
		what, scope, analysis.DirectivePrefix, Directive)
}
