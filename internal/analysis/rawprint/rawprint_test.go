package rawprint_test

import (
	"testing"

	"dedupcr/internal/analysis/analysistest"
	"dedupcr/internal/analysis/rawprint"
)

func TestRawPrint(t *testing.T) {
	analysistest.Run(t, rawprint.Analyzer, "internal/lib", "internal/obs", "cmd/tool")
}
