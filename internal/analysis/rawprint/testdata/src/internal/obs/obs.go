// Package obs is the sanctioned sink fixture: raw prints here are exempt.
package obs

import (
	"fmt"
	"os"
)

func sink(msg string) {
	fmt.Fprintln(os.Stderr, msg)
}
