// Package lib is a library-package fixture: every raw print here must be
// flagged unless audited.
package lib

import (
	"bytes"
	"fmt"
	"log"
	"os"
)

func bad() {
	fmt.Println("hello")                   // want "raw print \\(fmt.Println\\) in library code"
	fmt.Printf("x=%d\n", 1)                // want "raw print \\(fmt.Printf\\) in library code"
	fmt.Print("y")                         // want "raw print \\(fmt.Print\\) in library code"
	fmt.Fprintf(os.Stderr, "oops %d\n", 2) // want "raw print \\(fmt.Fprintf to os.Stderr\\) in library code"
	fmt.Fprintln(os.Stdout, "done")        // want "raw print \\(fmt.Fprintln to os.Stdout\\) in library code"
	log.Printf("legacy %d", 3)             // want "raw print \\(log.Printf\\) in library code"
	log.Println("legacy")                  // want "raw print \\(log.Println\\) in library code"
	println("builtin")                     // want "raw print \\(builtin println\\) in library code"
	print("builtin")                       // want "raw print \\(builtin print\\) in library code"
}

func ok() {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "buffered %d\n", 4) // writers other than the std streams are fine
	_ = fmt.Sprintf("formatting is fine %d", 5)
	fmt.Fprint(pick(), "indirect writer is not resolved")
}

func pick() *os.File { return os.Stderr }

func audited() {
	//dedupvet:rawprint boot-time diagnostics before the recorder exists
	fmt.Fprintln(os.Stderr, "audited")
}
