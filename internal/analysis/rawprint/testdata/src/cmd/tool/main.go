// Command tool is a cmd/ fixture: stdout is its product, prints are fine.
package main

import (
	"fmt"
	"log"
	"os"
)

func main() {
	fmt.Println("report")
	fmt.Fprintf(os.Stderr, "usage: tool\n")
	log.Printf("cli logging is allowed")
}
