// Command tool exercises the relaxed cmd/ mode: stdout is its product,
// so the fmt family is allowed — but the standard log package and the
// print builtins still bypass the flight recorder.
package main

import (
	"fmt"
	"log"
	"os"
)

func main() {
	fmt.Println("report")
	fmt.Fprintf(os.Stderr, "usage: tool\n")
	log.Printf("legacy logging") // want "raw print \\(log.Printf\\) in command code"
	println("scratch")           // want "raw print \\(builtin println\\) in command code"
	//dedupvet:rawprint last-resort banner before the recorder exists
	log.Println("boot")
}
