// Package load type-checks Go packages for the dedupvet analyzers without
// depending on golang.org/x/tools. It drives the go command the same way
// go vet does: `go list -export -deps -json` yields every package's source
// files plus build-cache export data for its dependencies, and the
// standard gc importer (go/importer with a lookup function) consumes that
// export data. Everything works offline — the go toolchain and its build
// cache are the only requirements.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the canonical import path.
	Path string
	// Dir is the directory holding the source files.
	Dir string
	// Fset maps positions (shared across all packages of one Load call).
	Fset *token.FileSet
	// Files are the parsed source files, comments included.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker fact tables for Files.
	Info *types.Info
}

// listPackage is the slice of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list` with the given arguments in dir and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decode go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// listFields is the -json field selection shared by every go list call.
const listFields = "-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error"

// Importer resolves import paths to type information using gc export data
// from the build cache, shelling out to `go list -export` lazily for
// paths it has not seen (e.g. standard-library imports of analysistest
// fixtures). It is safe for sequential use only.
type Importer struct {
	dir     string // working directory for lazy go list calls
	mu      sync.Mutex
	exports map[string]string
	gc      types.Importer
}

// NewImporter returns an importer that resolves unknown paths by running
// `go list -export` in dir.
func NewImporter(fset *token.FileSet, dir string) *Importer {
	im := &Importer{dir: dir, exports: make(map[string]string)}
	im.gc = importer.ForCompiler(fset, "gc", im.lookup)
	return im
}

// add registers export data for one import path.
func (im *Importer) add(path, exportFile string) {
	im.mu.Lock()
	defer im.mu.Unlock()
	if exportFile != "" {
		im.exports[path] = exportFile
	}
}

// lookup feeds export data to the gc importer, resolving unknown paths
// through `go list -export` on demand.
func (im *Importer) lookup(path string) (io.ReadCloser, error) {
	im.mu.Lock()
	file, ok := im.exports[path]
	im.mu.Unlock()
	if !ok {
		pkgs, err := goList(im.dir, "-e", "-export", "-deps", listFields, path)
		if err != nil {
			return nil, err
		}
		var listErr string
		for _, p := range pkgs {
			im.add(p.ImportPath, p.Export)
			if p.ImportPath == path && p.Error != nil {
				listErr = p.Error.Err
			}
		}
		im.mu.Lock()
		file, ok = im.exports[path]
		im.mu.Unlock()
		if !ok {
			if listErr != "" {
				return nil, fmt.Errorf("load: no export data for %q: %s", path, listErr)
			}
			return nil, fmt.Errorf("load: no export data for %q: the package did not compile, or the build cache holds no entry for it; run `go build %s` and retry", path, path)
		}
	}
	rc, err := os.Open(file)
	if err != nil {
		// The build cache entry go list reported has since been pruned
		// (e.g. `go clean -cache` raced the analysis, or the cache is on
		// ephemeral storage): the path is stale, not wrong.
		return nil, fmt.Errorf("load: stale export data for %q: %v; the build cache entry recorded by `go list` is gone, run `go build ./...` to repopulate it", path, err)
	}
	return rc, nil
}

// NewLookupImporter returns a plain gc export-data importer whose lookup
// resolves import paths to export files through resolve (the vet.cfg
// driver mode, where cmd/go precomputed the file map).
func NewLookupImporter(fset *token.FileSet, resolve func(path string) (string, error)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, err := resolve(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})
}

// Import implements types.Importer.
func (im *Importer) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return im.gc.Import(path)
}

// NewInfo returns a types.Info with every fact table the analyzers use.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Check parses and type-checks one package's files with the given
// importer, returning the analysis-ready Package.
func Check(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		filename := name
		if !filepath.IsAbs(filename) {
			filename = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, filename, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: parse %s: %v", filename, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Packages loads, parses and type-checks the packages matching patterns,
// with dir as the working directory of the go command. Test files are not
// included (matching `go vet`'s per-package GoFiles view; _test.go files
// are exercised by the analyzers' own test suites instead).
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"-e", "-export", "-deps", listFields}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, dir)
	var targets []listPackage
	for _, p := range listed {
		imp.add(p.ImportPath, p.Export)
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}
	var out []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := Check(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
