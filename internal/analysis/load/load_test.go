package load

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes files (path -> contents) under a fresh temp dir
// and returns its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const modHeader = "module example.com/m\n\ngo 1.24\n"

// TestPackagesStdlibDeps loads a module whose only dependency is the
// standard library: export data for fmt et al. must come out of the
// build cache through the -deps listing.
func TestPackagesStdlibDeps(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": modHeader,
		"a/a.go": "package a\n\nimport \"fmt\"\n\nfunc Hello() string { return fmt.Sprintf(\"hi %d\", 1) }\n",
	})
	pkgs, err := Packages(dir, "./a")
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "example.com/m/a" {
		t.Errorf("Path = %q, want example.com/m/a", p.Path)
	}
	if p.Types == nil || p.Info == nil || len(p.Files) != 1 {
		t.Errorf("package not fully populated: Types=%v Info=%v files=%d", p.Types != nil, p.Info != nil, len(p.Files))
	}
	if len(p.Info.Defs) == 0 {
		t.Error("Info.Defs is empty: type-checking facts missing")
	}
}

// TestPackagesVendoredDeps loads a module with a vendored dependency:
// go automatically switches to -mod=vendor when vendor/modules.txt is
// present, and the dep's export data must still resolve (it is built
// from the vendored source, not downloaded).
func TestPackagesVendoredDeps(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": modHeader + "\nrequire example.com/dep v1.0.0\n",
		"vendor/modules.txt": "# example.com/dep v1.0.0\n" +
			"## explicit; go 1.24\n" +
			"example.com/dep\n",
		"vendor/example.com/dep/dep.go": "package dep\n\nfunc Answer() int { return 42 }\n",
		"a/a.go":                        "package a\n\nimport \"example.com/dep\"\n\nvar X = dep.Answer()\n",
	})
	pkgs, err := Packages(dir, "./a")
	if err != nil {
		t.Fatalf("Packages with vendored dep: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "example.com/m/a" {
		t.Fatalf("unexpected result: %+v", pkgs)
	}
}

// TestPackagesInconsistentVendor: a vendor directory whose modules.txt
// is missing a required module makes the go command refuse to build.
// The loader must surface go's own diagnosis, not swallow it.
func TestPackagesInconsistentVendor(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": modHeader + "\nrequire example.com/dep v1.0.0\n",
		// modules.txt exists (so vendor mode activates) but lists nothing.
		"vendor/modules.txt":            "",
		"vendor/example.com/dep/dep.go": "package dep\n",
		"a/a.go":                        "package a\n\nimport \"example.com/dep\"\n\nvar X = 1\n",
	})
	_, err := Packages(dir, "./a")
	if err == nil {
		t.Fatal("Packages succeeded; want inconsistent-vendoring error")
	}
	msg := err.Error()
	if !strings.HasPrefix(msg, "load: go list") {
		t.Errorf("error does not identify the failing go list call: %v", err)
	}
	if !strings.Contains(msg, "vendor") {
		t.Errorf("error does not carry go's vendoring diagnosis: %v", err)
	}
}

// TestPackagesBrokenTarget: a target package that does not compile is
// reported through go list's per-package Error with its import path.
func TestPackagesBrokenTarget(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": modHeader,
		"a/a.go": "package a\n\nfunc broken() { return undefinedName }\n",
	})
	_, err := Packages(dir, "./a")
	if err == nil {
		t.Fatal("Packages succeeded; want compile error")
	}
	if !strings.Contains(err.Error(), "example.com/m/a") {
		t.Errorf("error does not name the broken package: %v", err)
	}
}

// TestCheckParseError: Check reports the offending file on syntax
// errors.
func TestCheckParseError(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"bad.go": "package bad\n\nfunc {\n",
	})
	fset := token.NewFileSet()
	_, err := Check(fset, NewImporter(fset, dir), "example.com/bad", dir, []string{"bad.go"})
	if err == nil {
		t.Fatal("Check succeeded; want parse error")
	}
	if !strings.Contains(err.Error(), "load: parse") || !strings.Contains(err.Error(), "bad.go") {
		t.Errorf("parse error does not name the file: %v", err)
	}
}

// TestCheckTypeError: Check reports the package path on type errors.
func TestCheckTypeError(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": modHeader,
		"x.go":   "package x\n\nvar V int = \"not an int\"\n",
	})
	fset := token.NewFileSet()
	_, err := Check(fset, NewImporter(fset, dir), "example.com/m", dir, []string{"x.go"})
	if err == nil {
		t.Fatal("Check succeeded; want type error")
	}
	if !strings.Contains(err.Error(), "load: typecheck example.com/m") {
		t.Errorf("type error does not name the package: %v", err)
	}
}

// TestImporterMissingExportData: importing a path no module provides
// must fail with a message that names the path instead of a bare gc
// importer error. GOPROXY=off keeps the go command from reaching for
// the network.
func TestImporterMissingExportData(t *testing.T) {
	t.Setenv("GOPROXY", "off")
	t.Setenv("GOFLAGS", "")
	dir := writeTree(t, map[string]string{
		"go.mod": modHeader,
		"a/a.go": "package a\n",
	})
	fset := token.NewFileSet()
	imp := NewImporter(fset, dir)
	_, err := imp.Import("example.com/no/such/pkg")
	if err == nil {
		t.Fatal("Import succeeded; want missing-export-data error")
	}
	if !strings.Contains(err.Error(), "example.com/no/such/pkg") {
		t.Errorf("error does not name the import path: %v", err)
	}
}

// TestImporterStaleExportData: go list handed back an export file that
// has since been pruned from the build cache. The importer must say the
// entry is stale and how to refresh it, not just echo os.Open.
func TestImporterStaleExportData(t *testing.T) {
	dir := writeTree(t, map[string]string{"go.mod": modHeader})
	fset := token.NewFileSet()
	imp := NewImporter(fset, dir)
	imp.add("example.com/gone", filepath.Join(dir, "pruned-entry.a"))
	_, err := imp.Import("example.com/gone")
	if err == nil {
		t.Fatal("Import succeeded; want stale-export-data error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "stale export data") || !strings.Contains(msg, "example.com/gone") {
		t.Errorf("stale cache entry not diagnosed: %v", err)
	}
	if !strings.Contains(msg, "go build") {
		t.Errorf("error gives no recovery hint: %v", err)
	}
}
