// Package analysistest runs dedupvet analyzers over golden source trees,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture packages
// live under <analyzer>/testdata/src/<importpath>/, offending lines carry
// `// want "regexp"` comments, and the runner fails the test when expected
// and reported diagnostics differ in either direction.
//
// Fixture packages may import each other by their path below testdata/src
// (e.g. a fake "internal/collectives" stub next to an "internal/core"
// fixture); anything else resolves through the real toolchain's export
// data, so standard-library imports work offline.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"dedupcr/internal/analysis"
	"dedupcr/internal/analysis/load"
)

// wantRe extracts the quoted pattern of a `// want "..."` comment. Only
// double-quoted Go-string patterns are supported; multiple want comments
// on one line are not (one finding per line keeps fixtures readable).
var wantRe = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// fixtureImporter resolves testdata-local packages from source and
// everything else through the shared export-data importer.
type fixtureImporter struct {
	srcDir string
	fset   *token.FileSet
	pkgs   map[string]*types.Package
	loaded map[string]*load.Package
	std    *load.Importer
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := im.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(im.srcDir, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := im.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return im.std.Import(path)
}

// load parses and type-checks one fixture package, caching the result.
func (im *fixtureImporter) load(path, dir string) (*load.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("analysistest: no .go files in %s", dir)
	}
	sort.Strings(goFiles)
	pkg, err := load.Check(im.fset, im, path, dir, goFiles)
	if err != nil {
		return nil, err
	}
	im.pkgs[path] = pkg.Types
	im.loaded[path] = pkg
	return pkg, nil
}

// expectation is one `// want` comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants scans a fixture package's comments for want expectations.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []expectation {
	t.Helper()
	var wants []expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pattern, err := unquoteWant(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", m[1], err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", pattern, err)
				}
				pos := fset.Position(c.Slash)
				wants = append(wants, expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// unquoteWant undoes the minimal escaping want patterns need inside a
// double-quoted comment: \" and \\.
func unquoteWant(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			if i+1 >= len(s) {
				return "", fmt.Errorf("trailing backslash")
			}
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}

// Run analyzes the fixture packages at the given import paths below
// testdata/src (relative to the calling test's working directory) and
// checks the reported diagnostics against the `// want` comments: every
// want must be matched by a diagnostic on its line, and every diagnostic
// must satisfy a want.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	srcDir := filepath.Join(wd, "testdata", "src")
	fset := token.NewFileSet()
	im := &fixtureImporter{
		srcDir: srcDir,
		fset:   fset,
		pkgs:   make(map[string]*types.Package),
		loaded: make(map[string]*load.Package),
		std:    load.NewImporter(fset, wd),
	}
	for _, path := range pkgPaths {
		dir := filepath.Join(srcDir, filepath.FromSlash(path))
		pkg, err := im.load(path, dir)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, path, err)
		}
		analysis.SortDiagnostics(fset, diags)
		checkPackage(t, a, fset, pkg, diags)
	}
}

func checkPackage(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, pkg.Files)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, a.Name)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
