// Package lib is ctxcheck library territory: an internal/ import path.
package lib

import "context"

// Process mints a root context mid-library.
func Process(data []byte) error {
	ctx := context.Background() // want "context.Background in library code"
	return run(ctx, data)
}

// ProcessCompat is the documented pre-context wrapper.
//
//dedupvet:compat
func ProcessCompat(data []byte) error {
	return run(context.Background(), data)
}

// ProcessRoot is the line-suppressed audited root.
func ProcessRoot(data []byte) error {
	// This runner is the root of the call tree by design.
	//dedupvet:compat
	ctx := context.TODO()
	return run(ctx, data)
}

// Dropped declares a ctx it never threads anywhere.
func Dropped(ctx context.Context, data []byte) error { // want "context parameter \"ctx\" is dropped"
	_ = data
	return nil
}

// Ignored documents that cancellation stops here: clean.
func Ignored(_ context.Context, data []byte) error {
	_ = data
	return nil
}

// run threads its ctx: clean.
func run(ctx context.Context, data []byte) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	_ = data
	return nil
}
