// Package main exercises the cmd/ scope: the main/run entry points may
// mint the root context, everything else in the binary must thread it.
package main

import "context"

func main() {
	run(context.Background())
}

func run(ctx context.Context) error {
	serve(ctx)
	return nil
}

// serve is not an entry point: minting a fresh root here detaches the
// server from the process lifecycle.
func serve(ctx context.Context) {
	_ = ctx
	_ = context.Background() // want "context.Background in command code outside an entry point"
}

// watch drops the context it was handed; rule 2 applies in binaries
// too.
func watch(ctx context.Context) { // want "context parameter \"ctx\" is dropped"
	_ = 1
}

// reload documents the detached context on the line itself.
func reload() {
	//dedupvet:compat config reload is deliberately detached from request lifecycles
	_ = context.Background()
}
