// Package main is binary territory: root contexts are legitimate here
// and the analyzer skips the package entirely.
package main

import "context"

func main() {
	_ = context.Background()
}
