// Package ctxcheck enforces the context discipline of the context-first
// API (DESIGN.md §9): cancellation must flow from the caller to every
// blocking collective, so library code may neither mint its own root
// context nor silently drop one it was handed.
//
// Two rules. In library packages (import paths containing an internal/
// element, plus the root facade) both apply in full:
//
//  1. No context.Background() or context.TODO() outside the documented
//     compat wrappers. The wrappers (DumpOutput, Run, Checkpoint, ... —
//     the pre-context API kept for compatibility) carry a
//     `//dedupvet:compat` doc directive; anything else must thread the
//     caller's ctx.
//
//  2. No dropped ctx: a function that declares a named context.Context
//     parameter must use it. A deliberately ignored context is spelled
//     `_ context.Context`, or the function carries `//dedupvet:compat`.
//
// cmd/ packages are checked too, with one documented exemption: the
// process entry points in cmdEntryPoints (`main` and `run` — the
// conventional split where main parses flags and run owns the process
// lifecycle) are where the root context is legitimately minted, so rule
// 1 does not apply inside them. Everything else in a binary — signal
// handlers, servers, helpers — must thread the entry point's ctx, and
// rule 2 applies everywhere. Only examples/ remains out of scope.
package ctxcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"dedupcr/internal/analysis"
)

// Analyzer is the context-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcheck",
	Doc: "forbid context.Background/TODO in library code outside compat " +
		"wrappers, and flag dropped context parameters",
	Run: run,
}

// Directive marks a documented compatibility wrapper (or, as a line
// suppression, an audited root-context site).
const Directive = "compat"

// cmdEntryPoints is the documented exemption list for cmd/ packages:
// the functions where a binary legitimately mints its root context.
var cmdEntryPoints = map[string]bool{
	"main": true,
	"run":  true,
}

func run(pass *analysis.Pass) error {
	path := pass.Path()
	cmd := isCmdPkg(path)
	if !cmd && !isLibraryPkg(path) {
		return nil
	}
	scope := "library code"
	if cmd {
		scope = "command code outside an entry point"
	}
	for _, fn := range pass.FuncDecls() {
		if fn.Body == nil {
			continue
		}
		_, compat := analysis.FuncDirective(fn, Directive)
		entry := cmd && fn.Recv == nil && cmdEntryPoints[fn.Name.Name]
		if !compat && !entry {
			checkRootContexts(pass, fn, scope)
		}
		checkDroppedCtx(pass, fn, compat)
	}
	return nil
}

// isLibraryPkg reports whether path is library territory: any internal/
// subtree or a bare module-root package (the facade).
func isLibraryPkg(path string) bool {
	if isCmdPkg(path) ||
		strings.Contains(path, "/examples/") || strings.HasPrefix(path, "examples/") {
		return false
	}
	return strings.Contains(path, "internal/") || !strings.Contains(path, "/")
}

func isCmdPkg(path string) bool {
	return strings.Contains(path, "/cmd/") || strings.HasPrefix(path, "cmd/")
}

// checkRootContexts flags context.Background/TODO calls in fn.
func checkRootContexts(pass *analysis.Pass, fn *ast.FuncDecl, scope string) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := pass.CalleeFunc(call)
		if callee == nil || analysis.FuncPkgPath(callee) != "context" {
			return true
		}
		if name := callee.Name(); name == "Background" || name == "TODO" {
			if !pass.Suppressed(call.Pos(), Directive) {
				pass.Reportf(call.Pos(), "context.%s in %s: thread the caller's ctx (compat wrappers are annotated %s%s)",
					name, scope, analysis.DirectivePrefix, Directive)
			}
		}
		return true
	})
}

// checkDroppedCtx flags named context.Context parameters never used by
// the body.
func checkDroppedCtx(pass *analysis.Pass, fn *ast.FuncDecl, compat bool) {
	if compat || fn.Type.Params == nil {
		return
	}
	for _, field := range fn.Type.Params.List {
		if !isContextType(pass, field.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil || paramUsed(pass, fn.Body, obj) {
				continue
			}
			if !pass.Suppressed(name.Pos(), Directive) {
				pass.Reportf(name.Pos(), "context parameter %q is dropped: pass it on, or rename it _ to document that cancellation stops here",
					name.Name)
			}
		}
	}
}

func isContextType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Context" && named.Obj().Pkg().Path() == "context"
}

func paramUsed(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}
