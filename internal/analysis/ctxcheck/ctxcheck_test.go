package ctxcheck_test

import (
	"testing"

	"dedupcr/internal/analysis/analysistest"
	"dedupcr/internal/analysis/ctxcheck"
)

func TestCtxCheck(t *testing.T) {
	analysistest.Run(t, ctxcheck.Analyzer, "internal/lib", "cmd/tool")
}
