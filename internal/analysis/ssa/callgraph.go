package ssa

import (
	"go/ast"
	"go/types"
)

// CallGraph is the package-local call graph: one node per function
// declaration with a body, with edges to every statically resolvable
// callee (in-package or imported).
type CallGraph struct {
	// Nodes maps a declared function object to its node. Only functions
	// declared in the analyzed files (with bodies) have nodes.
	Nodes map[*types.Func]*Node
}

// Node is one declared function and its outgoing calls.
type Node struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Calls []Call
}

// Call is one call site and its resolved callee (nil when the callee is
// dynamic: a function value, interface method, or unresolved closure).
type Call struct {
	Site   *ast.CallExpr
	Callee *types.Func
}

// BuildCallGraph constructs the call graph over the given files.
func BuildCallGraph(info *types.Info, files []*ast.File) *CallGraph {
	cg := &CallGraph{Nodes: make(map[*types.Func]*Node)}
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &Node{Fn: fn, Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				node.Calls = append(node.Calls, Call{Site: call, Callee: Callee(info, call)})
				return true
			})
			cg.Nodes[fn] = node
		}
	}
	return cg
}

// Callee resolves the static callee of a call expression, or nil for
// dynamic calls, conversions and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// ClosureValue resolves a locally-bound function variable to the single
// *ast.FuncLit assigned to it within scope. It returns nil when the
// variable is assigned more than once, assigned a non-literal, or never
// assigned in scope — callers must treat nil as "unresolvable", not
// "no function".
func ClosureValue(info *types.Info, scope ast.Node, obj types.Object) *ast.FuncLit {
	var lit *ast.FuncLit
	assigns := 0
	ast.Inspect(scope, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			var o types.Object
			if d := info.Defs[id]; d != nil {
				o = d
			} else {
				o = info.Uses[id]
			}
			if o != obj {
				continue
			}
			assigns++
			if fl, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit); ok {
				lit = fl
			}
		}
		return true
	})
	if assigns != 1 {
		return nil
	}
	return lit
}

// Assignments returns every expression assigned to obj inside scope,
// covering := and = forms (var decls with initializers are not
// AssignStmts and are intentionally out of scope for the analyzers
// using this). The result preserves source order.
func Assignments(info *types.Info, scope ast.Node, obj types.Object) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(scope, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			var o types.Object
			if d := info.Defs[id]; d != nil {
				o = d
			} else {
				o = info.Uses[id]
			}
			if o == obj {
				out = append(out, as.Rhs[i])
			}
		}
		return true
	})
	return out
}
