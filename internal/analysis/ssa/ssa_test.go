package ssa

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseAndCheck type-checks one file of source and returns its AST and
// type info.
func parseAndCheck(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, file, info
}

// funcBody finds the named function's body.
func funcBody(t *testing.T, file *ast.File, name string) *ast.BlockStmt {
	t.Helper()
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd.Body
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// allReachExit reports whether every block reachable from entry can
// reach the exit block.
func allReachExit(f *Func) bool {
	reach := f.ReachableFromEntry()
	exits := f.CanReachExit()
	for b := range reach {
		if !exits[b] {
			return false
		}
	}
	return true
}

func TestCFGExitPaths(t *testing.T) {
	const src = `package p

func straight() int { x := 1; return x }

func infinite() {
	for {
		_ = 1
	}
}

func breakable() {
	for {
		if true {
			break
		}
	}
}

func selectLoop(stop, kick chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-kick:
		}
		_ = 1
	}
}

func selectNoExit(kick chan struct{}) {
	for {
		select {
		case <-kick:
		}
	}
}

func rangeChan(ch chan int) {
	for v := range ch {
		_ = v
	}
}

func emptySelect() {
	select {}
}

func panics() {
	for {
		panic("die")
	}
}

func condLoop(n int) {
	for i := 0; i < n; i++ {
		_ = i
	}
}

func labeled(ch chan int) {
outer:
	for {
		for {
			select {
			case <-ch:
				break outer
			}
		}
	}
}

func gotoLoop() {
again:
	_ = 1
	goto again
}
`
	_, file, info := parseAndCheck(t, src)
	cases := []struct {
		fn   string
		want bool // every reachable block can reach exit
	}{
		{"straight", true},
		{"infinite", false},
		{"breakable", true},
		{"selectLoop", true},
		{"selectNoExit", false},
		{"rangeChan", true}, // close(ch) ends the range
		{"emptySelect", false},
		{"panics", true}, // panic is an exit, not a leak
		{"condLoop", true},
		{"labeled", true},
		{"gotoLoop", false},
	}
	for _, tc := range cases {
		f := Build(info, funcBody(t, file, tc.fn))
		if got := allReachExit(f); got != tc.want {
			t.Errorf("%s: allReachExit = %v, want %v", tc.fn, got, tc.want)
		}
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	const src = `package p

func sw(x int) int {
	switch x {
	case 1:
		x++
		fallthrough
	case 2:
		return x
	default:
		x--
	}
	return x
}
`
	_, file, info := parseAndCheck(t, src)
	f := Build(info, funcBody(t, file, "sw"))
	if !allReachExit(f) {
		t.Fatalf("switch with fallthrough should reach exit everywhere")
	}
	// Entry must not jump straight to "after": there is a default case.
	reach := f.ReachableFromEntry()
	if len(reach) == 0 {
		t.Fatal("no reachable blocks")
	}
}

func TestCallGraph(t *testing.T) {
	const src = `package p

func a() { b(); c() }
func b() { c() }
func c() {}
var fn = c
func dynamic() { fn() }
`
	_, file, info := parseAndCheck(t, src)
	cg := BuildCallGraph(info, []*ast.File{file})
	if len(cg.Nodes) != 4 {
		t.Fatalf("got %d nodes, want 4", len(cg.Nodes))
	}
	counts := map[string]int{}
	for fn, node := range cg.Nodes {
		for _, call := range node.Calls {
			if call.Callee != nil {
				counts[fn.Name()+"->"+call.Callee.Name()]++
			}
		}
	}
	for _, edge := range []string{"a->b", "a->c", "b->c"} {
		if counts[edge] != 1 {
			t.Errorf("edge %s: got %d, want 1", edge, counts[edge])
		}
	}
	// dynamic's call through a package-level func variable resolves to
	// nothing (fn is a *types.Var).
	for fn, node := range cg.Nodes {
		if fn.Name() != "dynamic" {
			continue
		}
		for _, call := range node.Calls {
			if call.Callee != nil {
				t.Errorf("dynamic call resolved to %v, want nil", call.Callee)
			}
		}
	}
}

func TestClosureValue(t *testing.T) {
	const src = `package p

func host() {
	once := func() int { return 1 }
	_ = once()

	var twice func() int
	twice = func() int { return 2 }
	twice = func() int { return 3 }
	_ = twice()
}
`
	_, file, info := parseAndCheck(t, src)
	body := funcBody(t, file, "host")
	var onceObj, twiceObj types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if d := info.Defs[id]; d != nil {
			switch id.Name {
			case "once":
				onceObj = d
			case "twice":
				twiceObj = d
			}
		}
		return true
	})
	if onceObj == nil || twiceObj == nil {
		t.Fatal("objects not found")
	}
	if lit := ClosureValue(info, body, onceObj); lit == nil {
		t.Error("once: single-assignment closure should resolve")
	}
	if lit := ClosureValue(info, body, twiceObj); lit != nil {
		t.Error("twice: reassigned closure must not resolve")
	}
	if got := len(Assignments(info, body, twiceObj)); got != 2 {
		t.Errorf("Assignments(twice) = %d, want 2", got)
	}
}
