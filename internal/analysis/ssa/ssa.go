// Package ssa is a dependency-free SSA-lite intermediate representation
// for the dedupvet analyzers: a function body becomes a control-flow
// graph of basic blocks, with def-use chains for locals and a
// package-level call graph on top. It deliberately stops short of full
// SSA (no phi nodes, no value numbering) — the flow-aware analyzers
// built on it (lockorder, gorolife, wiresym, atomicfield) need path
// structure and resolution, not value semantics, and the build
// environment pins dependencies to the standard library.
//
// The CFG models Go's structured control flow: if/else, for, range,
// switch, type switch, select, labeled break/continue, goto, return,
// and the terminating calls panic, os.Exit and runtime.Goexit. A
// synthetic Exit block represents "the function returned (or died)";
// reachability queries against it are how gorolife proves a goroutine
// can terminate and how lockorder bounds a critical section.
package ssa

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Block is one basic block: a maximal run of statements with a single
// entry, plus the successor edges control can take afterwards.
type Block struct {
	// Index is the block's position in Func.Blocks (entry is 0).
	Index int
	// Stmts are the non-control statements executed in order. Control
	// statements (if/for/...) do not appear; they become edges. Return
	// statements DO appear (as the block's last statement) so analyzers
	// can inspect returned values.
	Stmts []ast.Stmt
	// Succs are the blocks control may transfer to.
	Succs []*Block
}

// Func is the control-flow graph of one function or function literal.
type Func struct {
	// Entry is the first block; Exit is the synthetic block every
	// return, panic and fall-off-the-end edge targets. Exit holds no
	// statements and has no successors.
	Entry *Block
	Exit  *Block
	// Blocks lists every block, entry first, exit last.
	Blocks []*Block
}

// builder carries the CFG construction state.
type builder struct {
	info   *types.Info
	fn     *Func
	cur    *Block
	breaks []branchTarget // innermost-last break targets
	conts  []branchTarget // innermost-last continue targets
	labels map[string]*Block
	gotos  []pendingGoto
}

type branchTarget struct {
	label string
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// Build constructs the CFG of body. info may be nil; it is only used to
// recognize terminating calls (panic/os.Exit/runtime.Goexit) — without
// it those are treated as ordinary statements.
func Build(info *types.Info, body *ast.BlockStmt) *Func {
	f := &Func{}
	b := &builder{info: info, fn: f, labels: make(map[string]*Block)}
	f.Exit = &Block{}
	f.Entry = b.newBlock()
	b.cur = f.Entry
	b.stmtList(body.List)
	// Falling off the end returns.
	b.edge(b.cur, f.Exit)
	for _, g := range b.gotos {
		if tgt, ok := b.labels[g.label]; ok {
			b.edge(g.from, tgt)
		} else {
			// Unresolvable goto (label in unreached code): be
			// conservative, let it exit.
			b.edge(g.from, f.Exit)
		}
	}
	f.Exit.Index = len(f.Blocks)
	f.Blocks = append(f.Blocks, f.Exit)
	return f
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.fn.Blocks)}
	b.fn.Blocks = append(b.fn.Blocks, blk)
	return blk
}

// edge adds from→to, skipping nil and duplicate edges.
func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt translates one statement. label is the label attached to it (for
// labeled loops/switches), or "".
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// Give the labeled statement its own block so gotos can land on
		// it.
		blk := b.newBlock()
		b.edge(b.cur, blk)
		b.cur = blk
		b.labels[s.Label.Name] = blk
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.append(s.Init)
		}
		cond := b.cur
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body, "")
		thenEnd := b.cur
		after := b.newBlock()
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else, "")
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.edge(thenEnd, after)
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.append(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		after := b.newBlock()
		if s.Cond != nil {
			// Conditional loop: the condition may fail on entry.
			b.edge(head, after)
		}
		body := b.newBlock()
		b.edge(head, body)
		post := head
		if s.Post != nil {
			post = b.newBlock()
			b.cur = post
			b.append(s.Post)
			b.edge(post, head)
		}
		b.pushLoop(label, after, post)
		b.cur = body
		b.stmt(s.Body, "")
		b.edge(b.cur, post)
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.cur, head)
		after := b.newBlock()
		// A range always has an exhaustion edge (for channels: close).
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)
		b.pushLoop(label, after, head)
		b.cur = body
		b.stmt(s.Body, "")
		b.edge(b.cur, head)
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var bodyList []ast.Stmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			init = sw.Init
			if sw.Tag != nil {
				// keep tag evaluation visible to analyzers
				b.append(&ast.ExprStmt{X: sw.Tag})
			}
			bodyList = sw.Body.List
		} else {
			ts := s.(*ast.TypeSwitchStmt)
			init = ts.Init
			b.append(ts.Assign)
			bodyList = ts.Body.List
		}
		if init != nil {
			b.append(init)
		}
		head := b.cur
		after := b.newBlock()
		b.pushSwitch(label, after)
		hasDefault := false
		// Build case bodies first so fallthrough can chain.
		caseBlocks := make([]*Block, len(bodyList))
		for i := range bodyList {
			caseBlocks[i] = b.newBlock()
		}
		for i, cs := range bodyList {
			cc := cs.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			b.edge(head, caseBlocks[i])
			b.cur = caseBlocks[i]
			fell := false
			for _, st := range cc.Body {
				if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
					if i+1 < len(caseBlocks) {
						b.edge(b.cur, caseBlocks[i+1])
					}
					fell = true
					b.cur = b.newBlock() // unreachable after fallthrough
					continue
				}
				b.stmt(st, "")
			}
			if !fell {
				b.edge(b.cur, after)
			} else {
				b.edge(b.cur, after)
			}
		}
		if !hasDefault {
			b.edge(head, after)
		}
		b.popSwitch()
		b.cur = after

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.pushSwitch(label, after)
		for _, cs := range s.Body.List {
			cc := cs.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.append(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		// A select with no cases blocks forever: no edge out of head.
		b.popSwitch()
		b.cur = after

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.edge(b.cur, b.findTarget(b.breaks, s.Label))
		case token.CONTINUE:
			b.edge(b.cur, b.findTarget(b.conts, s.Label))
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
		}
		b.cur = b.newBlock() // unreachable continuation

	case *ast.ReturnStmt:
		b.append(s)
		b.edge(b.cur, b.fn.Exit)
		b.cur = b.newBlock()

	default:
		b.append(s)
		if b.terminates(s) {
			b.edge(b.cur, b.fn.Exit)
			b.cur = b.newBlock()
		}
	}
}

func (b *builder) append(s ast.Stmt) {
	b.cur.Stmts = append(b.cur.Stmts, s)
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, branchTarget{label, brk})
	b.conts = append(b.conts, branchTarget{label, cont})
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
}

func (b *builder) pushSwitch(label string, brk *Block) {
	b.breaks = append(b.breaks, branchTarget{label, brk})
}

func (b *builder) popSwitch() {
	b.breaks = b.breaks[:len(b.breaks)-1]
}

// findTarget resolves a break/continue target, innermost first; a label
// selects the matching enclosing construct.
func (b *builder) findTarget(stack []branchTarget, label *ast.Ident) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == nil || stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return b.fn.Exit // malformed code; stay conservative
}

// terminates reports whether s unconditionally ends the function:
// panic, os.Exit, runtime.Goexit, (*testing.T).Fatal — from the
// goroutine's point of view, all of these are exits, not leaks.
func (b *builder) terminates(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b.info != nil {
			if bi, ok := b.info.Uses[fun].(*types.Builtin); ok && bi.Name() == "panic" {
				return true
			}
		} else if fun.Name == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		if b.info == nil {
			return false
		}
		fn, _ := b.info.Uses[fun.Sel].(*types.Func)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() + "." + fn.Name() {
		case "os.Exit", "runtime.Goexit":
			return true
		}
	}
	return false
}

// ReachableFromEntry returns the blocks reachable from Entry.
func (f *Func) ReachableFromEntry() map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(f.Entry)
	return seen
}

// CanReachExit returns the blocks from which Exit is reachable
// (computed over reversed edges).
func (f *Func) CanReachExit() map[*Block]bool {
	preds := make(map[*Block][]*Block)
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, p := range preds[b] {
			walk(p)
		}
	}
	walk(f.Exit)
	return seen
}
