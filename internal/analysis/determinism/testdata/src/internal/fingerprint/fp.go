// Package fingerprint is a determinism fixture: like the real
// internal/fingerprint package it is collective decision state, so every
// function is in scope without annotation.
package fingerprint

import (
	"math/rand"
	"sort"
	"time"
)

// Merge iterates a map with no order guarantee: ranks disagree.
func Merge(freq map[string]int) []string {
	var out []string
	for fp := range freq { // want "range over map freq has nondeterministic order"
		out = append(out, fp)
	}
	return out
}

// MergeSorted is the audited pattern: collection order is irrelevant
// because the sort below imposes the shared order.
func MergeSorted(freq map[string]int) []string {
	out := make([]string, 0, len(freq))
	//dedupvet:ordered
	for fp := range freq {
		out = append(out, fp)
	}
	sort.Strings(out)
	return out
}

// Sum ranges over a slice: deterministic, never flagged.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Stamp reads the wall clock, which differs across ranks.
func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in collective-deterministic code"
}

// Pick draws from the process-global, randomly seeded source.
func Pick(n int) int {
	return rand.Intn(n) // want "rand.Intn draws from the process-global random source"
}

// PickSeeded draws from a caller-seeded source: every rank passing the
// same seed draws the same values, so both calls are fine.
func PickSeeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}
