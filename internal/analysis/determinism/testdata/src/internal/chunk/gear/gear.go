// Package gear is a determinism fixture: like the real
// internal/chunk/gear package its table init and boundary scan are
// collective decision state, so every function is in scope without
// annotation.
package gear

import (
	"math/rand"
	"time"
)

var table [256]uint64

// InitTableSeeded fills the gear table from a fixed xorshift stream:
// deterministic, never flagged.
func InitTableSeeded() {
	x := uint64(0xA5A35730)
	for i := range table {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		table[i] = x * 0x2545F4914F6CDD1D
	}
}

// InitTableRandom seeds the table from the process-global source: ranks
// would cut at different boundaries.
func InitTableRandom() {
	for i := range table {
		table[i] = rand.Uint64() // want "rand.Uint64 draws from the process-global random source"
	}
}

// InitTableClocked mixes the wall clock into the table.
func InitTableClocked() {
	table[0] = uint64(time.Now().UnixNano()) // want "time.Now in collective-deterministic code"
}

// CutStats ranges over a map while deciding boundaries.
func CutStats(sizes map[int]int) int {
	total := 0
	for sz := range sizes { // want "range over map sizes has nondeterministic order"
		total += sz
	}
	return total
}

// Scan is the hot loop: slice iteration and arithmetic only, never
// flagged.
func Scan(buf []byte, mask uint64) int {
	var h uint64
	for i, b := range buf {
		h = h<<1 + table[b]
		if h&mask == 0 {
			return i + 1
		}
	}
	return len(buf)
}
