// Package app is out of determinism scope by import path; only
// functions annotated //dedupvet:deterministic are checked.
package app

// PlanOffsets feeds a collective decision, so it opts into the check.
//
//dedupvet:deterministic
func PlanOffsets(sizes map[int]int) int {
	total := 0
	for _, s := range sizes { // want "range over map sizes has nondeterministic order"
		total += s
	}
	return total
}

// LocalOnly is the identical loop without the annotation: unchecked.
func LocalOnly(sizes map[int]int) int {
	total := 0
	for _, s := range sizes {
		total += s
	}
	return total
}
