package determinism_test

import (
	"testing"

	"dedupcr/internal/analysis/analysistest"
	"dedupcr/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "internal/fingerprint", "internal/chunk/gear", "app")
}
