// Package determinism checks the collective-determinism invariant: every
// rank must compute byte-identical collective decisions from shared state
// (HMERGE truncation, Algorithm 2 shuffling, Algorithm 3 offset planning —
// PAPER.md §III). Code on those paths must not depend on map iteration
// order, wall-clock reads, or the process-seeded global random source.
//
// Scope: every function of a package whose import path ends in
// internal/fingerprint (the whole package is HMERGE decision state) or
// internal/chunk/gear (gear table init and the boundary scan decide
// chunk boundaries collectively), plus any function anywhere annotated
// with a `//dedupvet:deterministic` doc comment. Within scope the
// analyzer flags:
//
//   - `range` statements over map-typed expressions (nondeterministic
//     iteration order — sort the keys first),
//   - calls to time.Now (wall clock differs per rank),
//   - calls to package-level math/rand and math/rand/v2 functions that
//     draw from the process-global, randomly seeded source.
//
// Audited sites — a range whose body is order-insensitive, or whose
// output is sorted before use — are suppressed with `//dedupvet:ordered`
// on the offending line or the line above.
package determinism

import (
	"go/ast"
	"go/types"

	"dedupcr/internal/analysis"
)

// Analyzer is the collective-determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flag map iteration, time.Now and global math/rand in code that feeds " +
		"wire encoding or cross-rank collective decisions",
	Run: run,
}

// Directive marks a function as wire/decision-sensitive.
const Directive = "deterministic"

// Suppression marks an audited, order-insensitive site.
const Suppression = "ordered"

// sensitivePkgSuffixes lists packages that are deterministic territory in
// their entirety: their output is merged or compared across ranks.
var sensitivePkgSuffixes = []string{
	"internal/fingerprint",
	// The gear chunker's table init and boundary scan decide chunk
	// boundaries — collective decision state shared by every rank.
	"internal/chunk/gear",
}

// seededRandFuncs are the math/rand constructors that do NOT draw from the
// global source; calling them is fine (the caller controls the seed).
var seededRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	pkgSensitive := false
	for _, suffix := range sensitivePkgSuffixes {
		if pass.PathHasSuffix(suffix) {
			pkgSensitive = true
			break
		}
	}
	for _, fn := range pass.FuncDecls() {
		_, annotated := analysis.FuncDirective(fn, Directive)
		if !pkgSensitive && !annotated {
			continue
		}
		if fn.Body == nil {
			continue
		}
		checkBody(pass, fn.Body)
	}
	return nil
}

// checkBody walks one sensitive function body, nested closures included
// (a closure defined inside a deterministic function runs on its path).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapType(pass, n.X) && !pass.Suppressed(n.For, Suppression) {
				pass.Reportf(n.For, "range over map %s has nondeterministic order in collective-deterministic code (sort keys, or annotate the audited site with %s%s)",
					types.ExprString(n.X), analysis.DirectivePrefix, Suppression)
			}
		case *ast.CallExpr:
			checkCall(pass, n)
		}
		return true
	})
}

func isMapType(pass *analysis.Pass, x ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil {
		return
	}
	path := analysis.FuncPkgPath(fn)
	switch {
	case path == "time" && fn.Name() == "Now":
		if !pass.Suppressed(call.Pos(), Suppression) {
			pass.Reportf(call.Pos(), "time.Now in collective-deterministic code: wall clock differs across ranks")
		}
	case path == "math/rand" || path == "math/rand/v2":
		// Only package-level functions use the shared global source;
		// methods on a *rand.Rand inherit whatever seed built it.
		if fn.Type().(*types.Signature).Recv() != nil || seededRandFuncs[fn.Name()] {
			return
		}
		if !pass.Suppressed(call.Pos(), Suppression) {
			pass.Reportf(call.Pos(), "%s.%s draws from the process-global random source in collective-deterministic code: use a rank-agreed seeded rand.New", path, fn.Name())
		}
	}
}
