package atomicfield_test

import (
	"testing"

	"dedupcr/internal/analysis/analysistest"
	"dedupcr/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, atomicfield.Analyzer, "ring")
}
