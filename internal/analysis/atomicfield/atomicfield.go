// Package atomicfield enforces atomics discipline: a variable or struct
// field that is accessed through sync/atomic anywhere must be accessed
// through sync/atomic everywhere. One plain load racing one atomic
// store is still a data race — the obs ring's sequence counter and the
// collectives window counters are exactly the fields this guards.
//
// Two rules:
//
//  1. Legacy atomics: if &x.f is ever passed to atomic.AddInt64,
//     atomic.LoadUint64, atomic.CompareAndSwapPointer, ... then every
//     other use of x.f in the package must also be an atomic call
//     argument. Composite-literal initialization is exempt (the value
//     is not yet published).
//
//  2. Typed atomics (atomic.Int64, atomic.Pointer[T], ...): the field
//     may only be used as a method-call receiver or have its address
//     taken; copying or reassigning the whole atomic value bypasses
//     the atomicity (and the copy is itself racy).
//
// Audited exceptions — e.g. a plain read inside a constructor before
// the value escapes — are annotated on the access line:
//
//	//dedupvet:atomicfield <justification>
//
// Soundness caveat: the analysis is package-local and name-based on
// object identity; an address leaked to another package (or stored in
// an interface) escapes the audit.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"dedupcr/internal/analysis"
)

// Analyzer is the atomics-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "a field accessed via sync/atomic once must be accessed " +
		"atomically everywhere; typed atomic fields must not be copied",
	Run: run,
}

// Directive marks an audited mixed-access site.
const Directive = "atomicfield"

func run(pass *analysis.Pass) error {
	a := &checker{pass: pass, atomicUses: make(map[types.Object]token.Pos)}
	for _, file := range pass.Files {
		a.collect(file)
	}
	for _, file := range pass.Files {
		a.check(file)
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	// atomicUses maps objects whose address is passed to a sync/atomic
	// function to the first such site.
	atomicUses map[types.Object]token.Pos
}

// atomicCallArg returns the object whose address call passes to a
// sync/atomic function, or nil.
func (c *checker) atomicCallArg(call *ast.CallExpr) types.Object {
	callee := c.pass.CalleeFunc(call)
	if callee == nil || analysis.FuncPkgPath(callee) != "sync/atomic" {
		return nil
	}
	// Package-level functions only; typed-atomic methods are rule 2.
	if callee.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	return c.addressedObj(un.X)
}

// addressedObj resolves &<expr>'s operand to a variable or field object.
func (c *checker) addressedObj(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[e]; ok {
			return sel.Obj()
		}
		return c.pass.TypesInfo.Uses[e.Sel]
	case *ast.Ident:
		return c.pass.TypesInfo.Uses[e]
	}
	return nil
}

func (c *checker) collect(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := c.atomicCallArg(call); obj != nil {
			if _, seen := c.atomicUses[obj]; !seen {
				c.atomicUses[obj] = call.Pos()
			}
		}
		return true
	})
}

// check walks file with a parent stack, flagging non-atomic uses of
// atomically-used objects and copies of typed atomic fields.
func (c *checker) check(file *ast.File) {
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if id, ok := n.(*ast.Ident); ok {
			c.checkIdent(id, stack)
		}
		return true
	}
	ast.Inspect(file, func(n ast.Node) bool {
		return visit(n)
	})
}

func (c *checker) checkIdent(id *ast.Ident, stack []ast.Node) {
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	// The use site is the selector x.f when id is its .Sel, else the
	// ident itself (package-level var).
	use := ast.Node(id)
	parents := stack[:len(stack)-1]
	if len(parents) > 0 {
		if sel, ok := parents[len(parents)-1].(*ast.SelectorExpr); ok {
			if sel.Sel != id {
				return // id is the X of a selector; the Sel visit handles it
			}
			use = sel
			parents = parents[:len(parents)-1]
		}
	}

	if pos, marked := c.atomicUses[obj]; marked {
		if c.insideAtomicArg(use, parents) || c.compositeKey(id, parents) {
			return
		}
		if c.pass.Suppressed(use.Pos(), Directive) {
			return
		}
		c.pass.Reportf(use.Pos(), "non-atomic access of %s, which is accessed with sync/atomic at %s (data race); use sync/atomic here or annotate %s%s",
			obj.Name(), c.pass.Fset.Position(pos), analysis.DirectivePrefix, Directive)
		return
	}

	// Rule 2: typed atomic values may not be copied or reassigned.
	v, ok := obj.(*types.Var)
	if !ok || !isTypedAtomic(v.Type()) {
		return
	}
	if c.receiverOrAddress(use, parents) || c.compositeKey(id, parents) {
		return
	}
	if c.pass.Suppressed(use.Pos(), Directive) {
		return
	}
	c.pass.Reportf(use.Pos(), "typed atomic %s used as a value (copy or reassignment defeats atomicity); call its methods or take its address, or annotate %s%s",
		obj.Name(), analysis.DirectivePrefix, Directive)
}

// insideAtomicArg reports whether use is the &-operand of a sync/atomic
// call's first argument.
func (c *checker) insideAtomicArg(use ast.Node, parents []ast.Node) bool {
	if len(parents) < 2 {
		return false
	}
	un, ok := parents[len(parents)-1].(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return false
	}
	for i := len(parents) - 2; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			return c.atomicCallArg(p) != nil
		default:
			return false
		}
	}
	return false
}

// compositeKey reports whether id is the key of a composite-literal
// element (struct initialization before publication).
func (c *checker) compositeKey(id *ast.Ident, parents []ast.Node) bool {
	if len(parents) == 0 {
		return false
	}
	kv, ok := parents[len(parents)-1].(*ast.KeyValueExpr)
	return ok && kv.Key == id
}

// receiverOrAddress reports whether use (a typed-atomic field selector)
// is a method-call receiver (x.f.Load()) or an address operand (&x.f).
func (c *checker) receiverOrAddress(use ast.Node, parents []ast.Node) bool {
	if len(parents) == 0 {
		return false
	}
	switch p := parents[len(parents)-1].(type) {
	case *ast.UnaryExpr:
		return p.Op == token.AND
	case *ast.SelectorExpr:
		// x.f.Method(...): the selector's X is our use; require the
		// method selector to be called.
		if p.X != use {
			return false
		}
		if len(parents) < 2 {
			return false
		}
		call, ok := parents[len(parents)-2].(*ast.CallExpr)
		return ok && call.Fun == p
	}
	return false
}

func isTypedAtomic(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync/atomic" {
		return false
	}
	switch n.Obj().Name() {
	case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
		return true
	}
	return false
}
