// Package ring is the atomicfield golden corpus: mixed atomic and
// plain access to the same field, and typed-atomic copy hazards.
package ring

import "sync/atomic"

// --- rule 1: legacy sync/atomic functions -------------------------------

type counter struct {
	n    int64
	cold int64 // never touched atomically; plain access is fine
}

func (c *counter) incr() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counter) race() {
	c.n++ // want "non-atomic access of n"
}

func (c *counter) raceRead() int64 {
	return c.n // want "non-atomic access of n"
}

func (c *counter) coldAccess() int64 {
	c.cold++
	return c.cold
}

func newCounter() *counter {
	// Composite-literal initialization happens before publication.
	return &counter{n: 40}
}

func (c *counter) audited() int64 {
	//dedupvet:atomicfield snapshot under the caller's stop-the-world barrier
	return c.n
}

// Package-level vars participate too.
var total int64

func addTotal(d int64) {
	atomic.AddInt64(&total, d)
}

func leakTotal() int64 {
	return total // want "non-atomic access of total"
}

// --- rule 2: typed atomics must not be copied ---------------------------

type ring struct {
	seq atomic.Uint64
}

func (r *ring) next() uint64 {
	return r.seq.Add(1)
}

func (r *ring) pointerOK() *atomic.Uint64 {
	return &r.seq
}

func (r *ring) copySeq() atomic.Uint64 {
	return r.seq // want "typed atomic seq used as a value"
}

func (r *ring) resetSeq() {
	r.seq = atomic.Uint64{} // want "typed atomic seq used as a value"
}

func (r *ring) auditedCopy() uint64 {
	//dedupvet:atomicfield read-only snapshot in a test helper
	s := r.seq
	return s.Load()
}
