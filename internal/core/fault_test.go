package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dedupcr/internal/collectives"
	"dedupcr/internal/storage"
)

// faultOpts is the standard configuration of the failure tests: K=2 so a
// single node loss stays recoverable, coll-dedup so every pipeline phase
// (reduction included) actually runs.
func faultOpts(name string) Options {
	return Options{K: 2, Approach: CollDedup, ChunkSize: testPage, Name: name}
}

// runRanks drives body once per rank over a fresh in-proc group and
// returns the per-rank errors, failing the test if any rank is still
// blocked after deadline — the "no survivor hangs" assertion of the
// abort protocol.
func runRanks(t *testing.T, n int, deadline time.Duration, body func(c collectives.Comm) error) []error {
	t.Helper()
	g, err := collectives.NewGroup(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		c, err := g.Comm(r)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(r int, c collectives.Comm) {
			defer wg.Done()
			errs[r] = body(c)
		}(r, c)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(deadline):
		t.Fatalf("ranks still blocked after %v", deadline)
	}
	return errs
}

// cleanDump writes one successful checkpoint of the standard workload and
// returns the per-rank buffers.
func cleanDump(t *testing.T, n int, cluster *storage.Cluster, name string) [][]byte {
	t.Helper()
	buffers := make([][]byte, n)
	var mu sync.Mutex
	err := collectives.Run(n, func(c collectives.Comm) error {
		buf := testBuffer(c.Rank(), 6, 4, 3, 2+c.Rank()%3)
		mu.Lock()
		buffers[c.Rank()] = buf
		mu.Unlock()
		_, err := DumpOutput(c, cluster.Node(c.Rank()), buf, faultOpts(name))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return buffers
}

// TestDumpKillPerPhase is the failure matrix of the abort protocol: a
// 4-rank dump with one rank killed in each collective phase must (1)
// surface a typed CollectiveError on every survivor within the deadline,
// (2) leave every store rolled back to its pre-dump state, and (3) keep
// the previous committed checkpoint fully restorable.
func TestDumpKillPerPhase(t *testing.T) {
	const n, victim = 4, 2
	for _, phase := range []string{"reduction", "load-exchange", "put", "window-wait", "commit"} {
		t.Run(phase, func(t *testing.T) {
			cluster := storage.NewCluster(n)
			buffers := cleanDump(t, n, cluster, "ckpt-0")
			baseBytes, baseChunks := cluster.TotalUsage()

			plan := collectives.FaultPlan{Faults: []collectives.Fault{
				{Kind: collectives.FaultKill, Rank: victim, Phase: phase, Peer: collectives.AnyRank},
			}}
			start := time.Now()
			errs := runRanks(t, n, 5*time.Second, func(c collectives.Comm) error {
				fc := collectives.InjectFaults(c, plan)
				// New private content: the rollback must actually release
				// chunks, not just decrement shared refcounts back.
				buf := testBuffer(c.Rank(), 6, 4, 3, 5)
				buf = append(buf, page(fmt.Sprintf("epoch1-%d", c.Rank()))...)
				_, err := DumpOutputCtx(context.Background(), fc, cluster.Node(c.Rank()), buf, faultOpts("ckpt-1"))
				return err
			})
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Errorf("survivors took %v to unblock, want < 2s", elapsed)
			}
			for r := 0; r < n; r++ {
				if errs[r] == nil {
					t.Fatalf("rank %d reported success with rank %d killed in %q", r, victim, phase)
				}
				if r == victim {
					continue
				}
				var ce *collectives.CollectiveError
				if !errors.As(errs[r], &ce) {
					t.Fatalf("rank %d returned untyped error: %v", r, errs[r])
				}
				if !errors.Is(errs[r], collectives.ErrAborted) {
					t.Errorf("rank %d error does not match ErrAborted: %v", r, errs[r])
				}
				if ranks := collectives.FailedRanks(errs[r]); len(ranks) != 1 || ranks[0] != victim {
					t.Errorf("rank %d blames ranks %v, want [%d]", r, ranks, victim)
				}
				if !errors.Is(errs[r], collectives.ErrInjected) {
					t.Errorf("rank %d lost the injected root cause: %v", r, errs[r])
				}
			}

			// Consistency: the aborted dump must leave no trace — usage
			// back to the previous checkpoint's, metadata tombstoned.
			gotBytes, gotChunks := cluster.TotalUsage()
			if gotBytes != baseBytes || gotChunks != baseChunks {
				t.Errorf("store usage after aborted dump: %d bytes / %d chunks, want %d / %d (phase %q)",
					gotBytes, gotChunks, baseBytes, baseChunks, phase)
			}
			for r := 0; r < n; r++ {
				if blob, err := cluster.Node(r).GetBlob(metaName("ckpt-1", r)); err == nil && len(blob) > 0 {
					t.Errorf("rank %d kept %d bytes of aborted-dump metadata", r, len(blob))
				}
			}

			// The previous checkpoint survives the abort, byte-exact. The
			// aborted communicator is poisoned by design; restore runs on a
			// fresh group.
			err := collectives.Run(n, func(c collectives.Comm) error {
				got, err := Restore(c, cluster.Node(c.Rank()), "ckpt-0")
				if err != nil {
					return err
				}
				if !bytes.Equal(got, buffers[c.Rank()]) {
					return fmt.Errorf("rank %d: ckpt-0 corrupted by aborted ckpt-1", c.Rank())
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDumpKillThenNodeLossRestore combines both failure planes: an
// aborted dump (communication fault) followed by losing the victim's
// store (node fault). K=2 keeps the surviving checkpoint restorable and
// re-provisions the replacement node.
func TestDumpKillThenNodeLossRestore(t *testing.T) {
	const n, victim = 4, 2
	cluster := storage.NewCluster(n)
	buffers := cleanDump(t, n, cluster, "ckpt-0")

	plan := collectives.FaultPlan{Faults: []collectives.Fault{
		{Kind: collectives.FaultKill, Rank: victim, Phase: "put", Peer: collectives.AnyRank},
	}}
	errs := runRanks(t, n, 5*time.Second, func(c collectives.Comm) error {
		fc := collectives.InjectFaults(c, plan)
		_, err := DumpOutputCtx(context.Background(), fc, cluster.Node(c.Rank()), testBuffer(c.Rank(), 6, 4, 3, 5), faultOpts("ckpt-1"))
		return err
	})
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d dump succeeded despite the kill", r)
		}
	}

	// The killed rank's node is lost with it; a replacement comes up empty.
	cluster.FailNodes(victim)
	cluster.Replace(victim)
	err := collectives.Run(n, func(c collectives.Comm) error {
		got, err := Restore(c, cluster.Node(c.Rank()), "ckpt-0")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, buffers[c.Rank()]) {
			return fmt.Errorf("rank %d restore mismatch after node loss", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRetryPolicyRecoversTransientFaults injects a bounded burst of
// transient send failures into the put phase; the per-operation
// RetryPolicy must absorb them, the dump must succeed, and the retries
// must be visible in the metrics.
func TestRetryPolicyRecoversTransientFaults(t *testing.T) {
	const n, flaky = 4, 1
	cluster := storage.NewCluster(n)
	plan := collectives.FaultPlan{Faults: []collectives.Fault{
		{Kind: collectives.FaultError, Rank: flaky, Phase: "put", Peer: collectives.AnyRank, Times: 2},
	}}
	buffers := make([][]byte, n)
	var retries int64
	var mu sync.Mutex
	errs := runRanks(t, n, 10*time.Second, func(c collectives.Comm) error {
		fc := collectives.InjectFaults(c, plan)
		// Rank-private content under local dedup: every rank has chunks
		// to push, so the flaky rank's put path definitely runs.
		buf := testBuffer(c.Rank(), 0, 0, 2, 8)
		o := faultOpts("retry")
		o.Approach = LocalDedup
		o.Retry = RetryPolicy{Attempts: 3, Backoff: time.Millisecond}
		res, err := DumpOutputCtx(context.Background(), fc, cluster.Node(c.Rank()), buf, o)
		if err != nil {
			return err
		}
		mu.Lock()
		buffers[c.Rank()] = buf
		retries += res.Metrics.PutRetries
		mu.Unlock()
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: retry policy did not absorb the fault: %v", r, err)
		}
	}
	if retries < 2 {
		t.Errorf("PutRetries = %d, want >= 2 (one per injected failure)", retries)
	}
	err := collectives.Run(n, func(c collectives.Comm) error {
		got, err := Restore(c, cluster.Node(c.Rank()), "retry")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, buffers[c.Rank()]) {
			return fmt.Errorf("rank %d restore mismatch", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRetryPolicyGivesUpOnAbort: a retry policy must not retry through a
// collective abort — the attempts bound is irrelevant once the group has
// given up.
func TestRetryPolicyGivesUpOnAbort(t *testing.T) {
	const n, victim = 4, 2
	cluster := storage.NewCluster(n)
	plan := collectives.FaultPlan{Faults: []collectives.Fault{
		{Kind: collectives.FaultKill, Rank: victim, Phase: "put", Peer: collectives.AnyRank},
	}}
	start := time.Now()
	errs := runRanks(t, n, 5*time.Second, func(c collectives.Comm) error {
		fc := collectives.InjectFaults(c, plan)
		o := faultOpts("giveup")
		// A pathological policy: were aborts retried, 100 attempts with
		// doubling backoff would blow far past the deadline.
		o.Retry = RetryPolicy{Attempts: 100, Backoff: 50 * time.Millisecond}
		_, err := DumpOutputCtx(context.Background(), fc, cluster.Node(c.Rank()), testBuffer(c.Rank(), 6, 4, 3, 5), o)
		return err
	})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("aborted dump took %v; retry policy retried a final error", elapsed)
	}
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d dump succeeded despite the kill", r)
		}
	}
}

// TestDumpCtxTimeoutTCP is the acceptance check of the cancellation
// plumbing on the socket transport: a missing participant plus a context
// deadline must unblock every present rank, promptly and typed.
func TestDumpCtxTimeoutTCP(t *testing.T) {
	const n, late = 4, 3
	comms, err := collectives.StartLocalTCP(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	cluster := storage.NewCluster(n)
	errs := make([]error, n)
	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if r == late {
				// This rank never joins the dump: the classic lost
				// participant that would deadlock the group forever.
				time.Sleep(1200 * time.Millisecond)
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
			defer cancel()
			_, errs[r] = DumpOutputCtx(ctx, comms[r], cluster.Node(r), testBuffer(r, 6, 4, 3, 5), faultOpts("tcp"))
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ranks still blocked after 5s")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("ranks took %v to unblock, want < 2s", elapsed)
	}
	// Every present rank gets the typed abort. The structured
	// DeadlineExceeded cause survives only on ranks whose own watcher won
	// the abort race — a gossip-received abort carries the remote cause as
	// wire text — but the globally first aborter is always local-cause, so
	// at least one rank must match.
	var sawDeadline bool
	for r := 0; r < n; r++ {
		if r == late {
			continue
		}
		if !errors.Is(errs[r], collectives.ErrAborted) {
			t.Errorf("rank %d: %v, want ErrAborted", r, errs[r])
		}
		if errors.Is(errs[r], context.DeadlineExceeded) {
			sawDeadline = true
		}
	}
	if !sawDeadline {
		t.Errorf("no rank carried the structured deadline cause: %v", errs)
	}
}

// TestDumpCtxPreCancelled: an already-cancelled context fails fast with
// the cancellation cause, before any collective step.
func TestDumpCtxPreCancelled(t *testing.T) {
	cause := errors.New("shutdown requested")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	errs := runRanks(t, 2, 2*time.Second, func(c collectives.Comm) error {
		_, err := DumpOutputCtx(ctx, c, storage.NewMem(), make([]byte, 1024), faultOpts("pre"))
		return err
	})
	for r, err := range errs {
		if !errors.Is(err, cause) {
			t.Errorf("rank %d: %v, want the cancellation cause", r, err)
		}
	}
}
