package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dedupcr/internal/collectives"
	"dedupcr/internal/metrics"
	"dedupcr/internal/storage"
	"dedupcr/internal/trace"
)

// tracedDump runs one traced collective dump of the standard workload
// and returns the per-rank results plus the shared trace.
func tracedDump(t *testing.T, n int, o Options) ([]*Result, *trace.Trace) {
	t.Helper()
	cluster := storage.NewCluster(n)
	tr := trace.New()
	results := make([]*Result, n)
	var mu sync.Mutex
	err := collectives.Run(n, func(c collectives.Comm) error {
		opts := o
		opts.Trace = tr.Recorder(1, c.Rank(), fmt.Sprintf("rank %d", c.Rank()))
		buf := testBuffer(c.Rank(), 6, 4, 3, 2+c.Rank()%3)
		res, err := DumpOutput(c, cluster.Node(c.Rank()), buf, opts)
		if err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, tr
}

// TestDumpPhases verifies that every dump fills the per-phase timing
// breakdown consistently for all three approaches: phases sum to no more
// than the measured total, and the phases that must run did.
func TestDumpPhases(t *testing.T) {
	const n = 8
	for _, approach := range []Approach{NoDedup, LocalDedup, CollDedup} {
		approach := approach
		t.Run(approach.String(), func(t *testing.T) {
			o := Options{K: 3, Approach: approach, ChunkSize: testPage, Name: "ph"}
			results, _ := tracedDump(t, n, o)
			for r, res := range results {
				p := res.Metrics.Phases
				if p.Total <= 0 {
					t.Fatalf("rank %d: total %v, want > 0", r, p.Total)
				}
				if p.Sum() > p.Total {
					t.Errorf("rank %d: phase sum %v exceeds total %v", r, p.Sum(), p.Total)
				}
				if p.Other() < 0 {
					t.Errorf("rank %d: negative unattributed time %v", r, p.Other())
				}
				if p.Chunking <= 0 || p.Fingerprint <= 0 {
					t.Errorf("rank %d: chunking %v / fingerprint %v, want both > 0", r, p.Chunking, p.Fingerprint)
				}
				if approach == CollDedup {
					if p.Reduction <= 0 {
						t.Errorf("rank %d: coll-dedup without reduction time", r)
					}
					if len(p.ReductionRoundTimes) == 0 {
						t.Errorf("rank %d: no per-round reduction timings", r)
					}
				} else if p.Reduction != 0 {
					t.Errorf("rank %d: %v has reduction time %v", r, approach, p.Reduction)
				}
				if res.Metrics.SentChunks > 0 {
					got := res.Metrics.PutLatency.Count()
					if got != int64(res.Metrics.SentChunks) {
						t.Errorf("rank %d: %d put latencies for %d sent chunks", r, got, res.Metrics.SentChunks)
					}
				}
			}
		})
	}
}

// TestDumpTraceCoverage verifies the acceptance criterion that the spans
// of a traced dump cover (nearly) the whole wall time of each rank: the
// top-level dump span brackets everything, so coverage must be complete.
func TestDumpTraceCoverage(t *testing.T) {
	const n = 4
	o := Options{K: 2, Approach: CollDedup, ChunkSize: testPage, Name: "cov"}
	_, tr := tracedDump(t, n, o)
	if cov := tr.Coverage(); cov < 0.95 {
		t.Errorf("trace coverage %.3f, want >= 0.95", cov)
	}
	// Every pipeline phase must appear as a span at least once.
	seen := make(map[string]bool)
	for _, e := range tr.Events() {
		seen[e.Name] = true
	}
	for _, name := range metrics.PhaseNames {
		if !seen[name] {
			t.Errorf("phase %q has no span", name)
		}
	}
	// Chrome export of a real dump trace must be valid JSON.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || buf.Bytes()[0] != '{' {
		t.Fatalf("unexpected chrome trace output %q", buf.String()[:min(buf.Len(), 40)])
	}
}

// TestRestoreWithTrace verifies the restore path emits its spans.
func TestRestoreWithTrace(t *testing.T) {
	const n = 4
	o := Options{K: 2, Approach: LocalDedup, ChunkSize: testPage, Name: "rt"}
	cluster, _, buffers := runDump(t, n, o)
	tr := trace.New()
	err := collectives.Run(n, func(c collectives.Comm) error {
		rec := tr.Recorder(1, c.Rank(), fmt.Sprintf("rank %d", c.Rank()))
		got, err := RestoreWithTrace(c, cluster.Node(c.Rank()), "rt", rec)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, buffers[c.Rank()]) {
			return fmt.Errorf("rank %d restore mismatch", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, e := range tr.Events() {
		seen[e.Name] = true
	}
	for _, want := range []string{"restore", "load-meta", "assemble", "barrier"} {
		if !seen[want] {
			t.Errorf("restore span %q missing", want)
		}
	}
}
