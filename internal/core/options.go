package core

import (
	"fmt"
	"runtime"
	"time"

	"dedupcr/internal/chunk"
	"dedupcr/internal/trace"
)

// Approach selects the replication strategy, matching the three settings
// compared throughout the paper's evaluation.
type Approach int

const (
	// NoDedup is full replication: every chunk of the dataset is stored
	// locally and pushed to all K-1 partners ("no-dedup").
	NoDedup Approach = iota
	// LocalDedup deduplicates within each rank before storing and
	// replicating the locally unique chunks ("local-dedup").
	LocalDedup
	// CollDedup is the paper's contribution: collective interprocess
	// deduplication with natural replicas, load-balanced designation,
	// rank shuffling and single-sided planning ("coll-dedup").
	CollDedup
)

// String implements fmt.Stringer using the paper's setting names.
func (a Approach) String() string {
	switch a {
	case NoDedup:
		return "no-dedup"
	case LocalDedup:
		return "local-dedup"
	case CollDedup:
		return "coll-dedup"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// DefaultF is the fingerprint-count threshold used throughout the paper's
// evaluation (2^17).
const DefaultF = 1 << 17

// RetryPolicy bounds the retries of transient transport failures during
// the window-put exchange (refused or dropped TCP connections, injected
// transient faults). Retries never apply to collective aborts, rank
// failures or cancellations — those terminate the dump.
//
// Zero values: Attempts <= 1 disables retries (every put is tried once);
// Backoff 0 retries immediately; PutTimeout 0 leaves puts unbounded.
type RetryPolicy struct {
	// Attempts is the maximum number of tries per put (including the
	// first); values below 1 mean 1.
	Attempts int
	// Backoff is the sleep before the first retry, doubling with every
	// further one.
	Backoff time.Duration
	// PutTimeout bounds each put attempt on deadline-capable transports
	// (TCP); a timed-out attempt counts as transient and is retried.
	PutTimeout time.Duration
}

// normalized resolves the policy's defaults.
func (rp RetryPolicy) normalized() RetryPolicy {
	if rp.Attempts < 1 {
		rp.Attempts = 1
	}
	return rp
}

// Options configures a collective dump.
//
// Zero-value behavior, in one place: the zero Options is invalid only for
// K (a replication factor must be chosen explicitly). Every other field
// has a working default resolved by normalization:
//
//	K              required; must be 1 <= K <= group size
//	Approach       NoDedup (the baselines stay explicit at call sites)
//	F              0 = DefaultF (2^17); negative = unbounded
//	Chunker        zero = fixed-size chunking at ChunkSize
//	ChunkSize      0 = 4 KiB (chunk.DefaultSize); fills Chunker.Size
//	ContentDefined deprecated alias for Chunker.Algo = AlgoRabin
//	Shuffle        nil = on for CollDedup, off for the baselines
//	Name           "" = "dataset"
//	Topology       nil = no rack awareness; non-nil requires Shuffle on
//	Trace          nil = no span recording
//	Parallelism    0 = GOMAXPROCS; 1 = serial reference path
//	Retry          zero = single attempt, no backoff, unbounded puts
type Options struct {
	// K is the replication factor: the dataset survives the loss of any
	// K-1 nodes. K=1 stores a single local copy.
	K int
	// Approach selects the strategy; default NoDedup (zero value) keeps
	// the baselines explicit in call sites.
	Approach Approach
	// F bounds the global fingerprint table of coll-dedup (paper: 2^17).
	// 0 selects DefaultF; negative means unbounded (exact solution).
	F int
	// Chunker selects the chunking algorithm and size as a first-class
	// spec: fixed-size (the paper's page model, the zero value), the
	// Rabin-style content-defined chunker, or the gear-hash chunker with
	// its arch-selected fast path (chunk.AlgoGear). All ranks must agree
	// — boundaries are collective decision state. A zero Chunker.Size is
	// filled from ChunkSize; setting both to different values is an
	// error.
	Chunker chunk.Spec
	// ChunkSize is the chunk size in bytes; 0 selects 4 KiB, the memory
	// page size the paper matches chunks with. It remains the size knob
	// for callers that never set Chunker; normalization keeps the two in
	// sync.
	ChunkSize int
	// ContentDefined switches from fixed-size to content-defined (Rabin)
	// chunking with ChunkSize as the expected size.
	//
	// Deprecated: set Chunker (chunk.Spec{Algo: chunk.AlgoRabin}) instead.
	// Normalization maps this flag onto the spec; setting both it and a
	// non-fixed Chunker.Algo is an error.
	ContentDefined bool
	// Shuffle enables the load-aware partner selection of Algorithm 2.
	// Only meaningful for CollDedup (the baselines use naive partners,
	// as in the paper). Default true for CollDedup via normalization.
	Shuffle *bool
	// Name identifies the dataset (e.g. "ckpt-000123"); recipes are
	// persisted under it. Empty defaults to "dataset".
	Name string
	// Topology, when set, enables rack-aware partner selection (the
	// paper's future-work extension): the shuffle additionally spreads
	// each rank's partners across racks. Requires Shuffle: leaving
	// Shuffle nil turns it on implicitly, setting it false is rejected.
	Topology *Topology
	// Trace, when set, records one span per pipeline phase into this
	// rank's recorder (see internal/trace). Nil disables tracing; the
	// recorder methods are nil-safe, so the dump path carries no
	// conditionals. Unlike the other options, Trace may differ per rank
	// (each rank owns its recorder).
	Trace *trace.Recorder
	// Parallelism bounds the worker goroutines of the per-rank hot path:
	// the chunk-hashing pool (with the local-dedup and reduction-leaf
	// table builds overlapped into it) and the concurrent partner puts of
	// the window exchange. 0 selects GOMAXPROCS; 1 forces the fully
	// serial reference path. Every setting produces byte-identical
	// results — same chunk boundaries, fingerprints and replica placement
	// — so figures and tables reproduce regardless. Parallelism may
	// differ per rank (it only shapes local execution).
	Parallelism int
	// Retry bounds retries of transient transport faults during the
	// window-put exchange; the zero value disables retrying. Retry
	// counters surface through metrics.Dump.PutRetries and the cluster
	// telemetry plane.
	Retry RetryPolicy
}

// normalized resolves defaults and validates against the group size.
func (o Options) normalized(groupSize int) (Options, error) {
	if o.K < 1 {
		return o, fmt.Errorf("core: replication factor K=%d must be >= 1", o.K)
	}
	if o.K > groupSize {
		return o, fmt.Errorf("core: replication factor K=%d exceeds group size %d", o.K, groupSize)
	}
	if o.F == 0 {
		o.F = DefaultF
	}
	if o.F < 0 {
		o.F = 0 // Table semantics: F <= 0 means unbounded
	}
	// Resolve the chunker spec: the deprecated ContentDefined bool maps
	// onto it, ChunkSize fills a zero Spec.Size, and conflicting settings
	// are rejected instead of silently picking one.
	if o.ContentDefined {
		if o.Chunker.Algo != chunk.AlgoFixed {
			return o, fmt.Errorf("core: Options.ContentDefined (deprecated) conflicts with Options.Chunker.Algo=%s: set only Chunker", o.Chunker.Algo)
		}
		o.Chunker.Algo = chunk.AlgoRabin
		o.ContentDefined = false
	}
	if o.Chunker.Size > 0 && o.ChunkSize > 0 && o.Chunker.Size != o.ChunkSize {
		return o, fmt.Errorf("core: Options.Chunker.Size=%d conflicts with Options.ChunkSize=%d: set only one", o.Chunker.Size, o.ChunkSize)
	}
	if o.Chunker.Size <= 0 {
		o.Chunker.Size = o.ChunkSize
	}
	if o.Chunker.Size <= 0 {
		o.Chunker.Size = chunk.DefaultSize
	}
	o.ChunkSize = o.Chunker.Size
	if err := o.Chunker.Validate(); err != nil {
		return o, fmt.Errorf("core: %w", err)
	}
	if o.Topology != nil {
		// The docs promise Topology requires Shuffle: enforce it instead
		// of silently computing a rack-unaware plan.
		if o.Shuffle == nil {
			o.Shuffle = Bool(true)
		} else if !*o.Shuffle {
			return o, fmt.Errorf("core: Options.Topology requires Shuffle")
		}
		if err := o.Topology.Validate(groupSize); err != nil {
			return o, err
		}
	}
	if o.Shuffle == nil {
		on := o.Approach == CollDedup
		o.Shuffle = &on
	}
	if o.Name == "" {
		o.Name = "dataset"
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	o.Retry = o.Retry.normalized()
	return o, nil
}

// Bool is a convenience for filling Options.Shuffle.
func Bool(v bool) *bool { return &v }
