package core

import (
	"strings"
	"testing"

	"dedupcr/internal/chunk"
)

func TestApproachString(t *testing.T) {
	cases := map[Approach]string{
		NoDedup:      "no-dedup",
		LocalDedup:   "local-dedup",
		CollDedup:    "coll-dedup",
		Approach(42): "Approach(42)",
	}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(a), got, want)
		}
	}
}

func TestOptionsNormalization(t *testing.T) {
	o, err := Options{K: 3, Approach: CollDedup}.normalized(8)
	if err != nil {
		t.Fatal(err)
	}
	if o.F != DefaultF {
		t.Errorf("F default = %d, want %d", o.F, DefaultF)
	}
	if o.ChunkSize != chunk.DefaultSize {
		t.Errorf("ChunkSize default = %d", o.ChunkSize)
	}
	if o.Shuffle == nil || !*o.Shuffle {
		t.Error("coll-dedup must default to shuffling on")
	}
	if o.Name != "dataset" {
		t.Errorf("Name default = %q", o.Name)
	}

	o, err = Options{K: 2, Approach: LocalDedup}.normalized(4)
	if err != nil {
		t.Fatal(err)
	}
	if *o.Shuffle {
		t.Error("baselines must default to shuffling off")
	}

	// Unbounded F.
	o, err = Options{K: 1, F: -1}.normalized(4)
	if err != nil || o.F != 0 {
		t.Errorf("negative F should map to unbounded (0), got %d (%v)", o.F, err)
	}

	for _, bad := range []Options{{K: 0}, {K: -3}, {K: 9}} {
		if _, err := bad.normalized(8); err == nil {
			t.Errorf("Options %+v accepted", bad)
		} else if !strings.Contains(err.Error(), "replication factor") {
			t.Errorf("unexpected error text: %v", err)
		}
	}
}

func TestBoolHelper(t *testing.T) {
	if v := Bool(true); v == nil || !*v {
		t.Error("Bool(true) broken")
	}
	if v := Bool(false); v == nil || *v {
		t.Error("Bool(false) broken")
	}
}
