package core

import (
	"strings"
	"testing"

	"dedupcr/internal/chunk"
)

func TestApproachString(t *testing.T) {
	cases := map[Approach]string{
		NoDedup:      "no-dedup",
		LocalDedup:   "local-dedup",
		CollDedup:    "coll-dedup",
		Approach(42): "Approach(42)",
	}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(a), got, want)
		}
	}
}

func TestOptionsNormalization(t *testing.T) {
	o, err := Options{K: 3, Approach: CollDedup}.normalized(8)
	if err != nil {
		t.Fatal(err)
	}
	if o.F != DefaultF {
		t.Errorf("F default = %d, want %d", o.F, DefaultF)
	}
	if o.ChunkSize != chunk.DefaultSize {
		t.Errorf("ChunkSize default = %d", o.ChunkSize)
	}
	if o.Shuffle == nil || !*o.Shuffle {
		t.Error("coll-dedup must default to shuffling on")
	}
	if o.Name != "dataset" {
		t.Errorf("Name default = %q", o.Name)
	}

	o, err = Options{K: 2, Approach: LocalDedup}.normalized(4)
	if err != nil {
		t.Fatal(err)
	}
	if *o.Shuffle {
		t.Error("baselines must default to shuffling off")
	}

	// Unbounded F.
	o, err = Options{K: 1, F: -1}.normalized(4)
	if err != nil || o.F != 0 {
		t.Errorf("negative F should map to unbounded (0), got %d (%v)", o.F, err)
	}

	for _, bad := range []Options{{K: 0}, {K: -3}, {K: 9}} {
		if _, err := bad.normalized(8); err == nil {
			t.Errorf("Options %+v accepted", bad)
		} else if !strings.Contains(err.Error(), "replication factor") {
			t.Errorf("unexpected error text: %v", err)
		}
	}
}

// TestOptionsChunkerNormalization pins the chunker-spec rules: zero
// values keep fixed/4KiB, the spec and the legacy ChunkSize agree or
// error, the deprecated ContentDefined bool folds into the spec, and
// contradictory combinations fail loudly.
func TestOptionsChunkerNormalization(t *testing.T) {
	// Zero value: fixed at DefaultSize, mirrored both ways.
	o, err := Options{K: 1}.normalized(4)
	if err != nil {
		t.Fatal(err)
	}
	if o.Chunker.Algo != chunk.AlgoFixed || o.Chunker.Size != chunk.DefaultSize || o.ChunkSize != chunk.DefaultSize {
		t.Errorf("zero-value chunker = %+v ChunkSize=%d", o.Chunker, o.ChunkSize)
	}

	// Legacy ChunkSize fills the spec size.
	o, err = Options{K: 1, ChunkSize: 256, Chunker: chunk.Spec{Algo: chunk.AlgoGear}}.normalized(4)
	if err != nil {
		t.Fatal(err)
	}
	if o.Chunker.Size != 256 || o.ChunkSize != 256 {
		t.Errorf("ChunkSize not threaded into the spec: %+v", o.Chunker)
	}

	// Deprecated ContentDefined selects CDC and clears itself.
	o, err = Options{K: 1, ContentDefined: true, ChunkSize: 512}.normalized(4)
	if err != nil {
		t.Fatal(err)
	}
	if o.Chunker.Algo != chunk.AlgoRabin || o.ContentDefined {
		t.Errorf("ContentDefined alias broken: %+v ContentDefined=%t", o.Chunker, o.ContentDefined)
	}

	// ContentDefined combined with an explicit non-fixed algo conflicts.
	if _, err := (Options{K: 1, ContentDefined: true, Chunker: chunk.Spec{Algo: chunk.AlgoGear}}).normalized(4); err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Errorf("ContentDefined+Chunker conflict not rejected: %v", err)
	}
	// Disagreeing sizes conflict.
	if _, err := (Options{K: 1, ChunkSize: 512, Chunker: chunk.Spec{Algo: chunk.AlgoGear, Size: 256}}).normalized(4); err == nil {
		t.Error("disagreeing ChunkSize and Chunker.Size accepted")
	}
	// Matching sizes are fine.
	if _, err := (Options{K: 1, ChunkSize: 256, Chunker: chunk.Spec{Algo: chunk.AlgoGear, Size: 256}}).normalized(4); err != nil {
		t.Errorf("matching ChunkSize and Chunker.Size rejected: %v", err)
	}
	// Spec validation surfaces: CDC algos reject sub-window sizes.
	if _, err := (Options{K: 1, Chunker: chunk.Spec{Algo: chunk.AlgoGear, Size: 16}}).normalized(4); err == nil {
		t.Error("gear with 16-byte chunks accepted")
	}
	// Unknown algo fails.
	if _, err := (Options{K: 1, Chunker: chunk.Spec{Algo: chunk.Algo(9)}}).normalized(4); err == nil {
		t.Error("unknown chunker algo accepted")
	}
}

func TestBoolHelper(t *testing.T) {
	if v := Bool(true); v == nil || !*v {
		t.Error("Bool(true) broken")
	}
	if v := Bool(false); v == nil || *v {
		t.Error("Bool(false) broken")
	}
}
