package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dedupcr/internal/chunk"
	"dedupcr/internal/collectives"
	"dedupcr/internal/storage"
)

// TestFigure1Nutshell reproduces the paper's Figure 1 scenario: three
// processes call DUMP_OUTPUT with K=3. Chunks already present on all
// three ranks are natural replicas — the replication factor is met with
// zero transfers — while rank-private chunks are pushed to both partners,
// and every chunk ends up on all three nodes.
func TestFigure1Nutshell(t *testing.T) {
	const n, k = 3, 3
	cluster := storage.NewCluster(n)
	buffers := make([][]byte, n)
	results := make([]*Result, n)
	var mu sync.Mutex

	err := collectives.Run(n, func(c collectives.Comm) error {
		// Dataset per rank: one chunk shared by everyone (A), one chunk
		// shared by this rank and the next (pairwise), one private.
		shared := page("fig1-A")
		pair := page(fmt.Sprintf("fig1-pair-%d", min(c.Rank(), (c.Rank()+1)%n)))
		pairPrev := page(fmt.Sprintf("fig1-pair-%d", min((c.Rank()-1+n)%n, c.Rank())))
		private := page(fmt.Sprintf("fig1-private-%d", c.Rank()))
		buf := concat(shared, pair, pairPrev, private)

		res, err := DumpOutput(c, cluster.Node(c.Rank()), buf, Options{
			K: k, Approach: CollDedup, ChunkSize: testPage, Name: "fig1", F: 0,
		})
		if err != nil {
			return err
		}
		mu.Lock()
		buffers[c.Rank()] = buf
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every distinct chunk must reside on all three nodes (K = N = 3).
	for fp, holders := range holderCount(t, cluster, buffers) {
		if holders != n {
			t.Errorf("chunk %s on %d nodes, want %d", fp.Short(), holders, n)
		}
	}

	// The globally shared chunk A occurs on 3 ranks = K: it must not be
	// transferred at all. Each rank therefore sends at most its pair
	// chunk (to 1 missing holder) and its private chunk (to 2 partners).
	chunker := chunk.NewFixed(testPage)
	sharedFP := chunker.Split(page("fig1-A"))[0].FP
	for r, res := range results {
		e := res.Global.Lookup(sharedFP)
		if e == nil {
			t.Fatalf("shared chunk missing from global view")
		}
		if got := int(e.Freq); got != 3 {
			t.Errorf("shared chunk frequency = %d, want 3", got)
		}
		if len(e.Ranks) != k {
			t.Errorf("shared chunk designated on %d ranks, want %d", len(e.Ranks), k)
		}
		// Upper bound on sends: pair chunk to 1 rank + private to 2.
		maxSend := int64(3 * testPage)
		if res.Metrics.SentBytes > maxSend {
			t.Errorf("rank %d sent %d bytes, deduplication should cap it at %d",
				r, res.Metrics.SentBytes, maxSend)
		}
	}

	// And the dump must still restore byte-exactly everywhere.
	err = collectives.Run(n, func(c collectives.Comm) error {
		got, err := Restore(c, cluster.Node(c.Rank()), "fig1")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, buffers[c.Rank()]) {
			return fmt.Errorf("rank %d restore mismatch", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func concat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
