package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dedupcr/internal/chunk"
	"dedupcr/internal/fingerprint"
)

// buildRefineCase constructs a random designated-chunk scenario and runs
// refineTargets for every designated rank, returning the global target
// assignment (rank -> partner indices).
func buildRefineCase(rng *rand.Rand) (n, k int, e *fingerprint.Entry, shuffle []int, byRank map[int][]int) {
	n = rng.Intn(16) + 3
	k = rng.Intn(n-1) + 2 // 2..n
	d := rng.Intn(k) + 1  // 1..k designated
	if d > n {
		d = n
	}
	// Pick d distinct designated ranks.
	perm := rng.Perm(n)
	ranks := make([]int32, d)
	for i := 0; i < d; i++ {
		ranks[i] = int32(perm[i])
	}
	// Sort ascending (the Entry invariant).
	for i := 1; i < len(ranks); i++ {
		for j := i; j > 0 && ranks[j] < ranks[j-1]; j-- {
			ranks[j], ranks[j-1] = ranks[j-1], ranks[j]
		}
	}
	e = &fingerprint.Entry{FP: fingerprint.Of([]byte{byte(n), byte(k)}), Freq: uint32(d), Ranks: ranks}
	shuffle = rng.Perm(n)

	byRank = make(map[int][]int)
	for _, r := range e.Ranks {
		idx := e.RankIndex(r)
		share := roundRobinShare(k, d, idx)
		items := []item{{
			ch:       chunk.Chunk{FP: e.FP},
			partners: prefix(share),
			entry:    e,
		}}
		refineTargets(items, shuffle, k, int(r))
		byRank[int(r)] = items[0].partners
	}
	return n, k, e, shuffle, byRank
}

// TestRefineTargetsInvariants checks, over random scenarios, that the
// deterministic per-rank walks agree: the total number of copies equals
// K-D, no two copies target the same node, and targets avoid natural
// holders whenever avoidance succeeded.
func TestRefineTargetsInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k, e, shuffle, byRank := buildRefineCase(rng)

		pos := make([]int, n)
		for p, r := range shuffle {
			pos[r] = p
		}
		partnerOf := func(rank, di int) int { return shuffle[(pos[rank]+di)%n] }

		total := 0
		targets := make(map[int]int)
		holders := make(map[int]bool)
		for _, r := range e.Ranks {
			holders[int(r)] = true
		}
		for r, ds := range byRank {
			seen := map[int]bool{}
			for _, di := range ds {
				if di < 1 || di >= k {
					t.Logf("rank %d uses invalid partner index %d", r, di)
					return false
				}
				if seen[di] {
					t.Logf("rank %d sends the chunk twice to partner %d", r, di)
					return false
				}
				seen[di] = true
				targets[partnerOf(r, di)]++
				total++
			}
		}
		missing := k - len(e.Ranks)
		if total != missing {
			t.Logf("n=%d k=%d d=%d: %d copies sent, want %d", n, k, len(e.Ranks), total, missing)
			return false
		}
		// When the distinct-node count can be met (enough non-holder
		// nodes exist), no target may be a holder or doubly targeted.
		if n >= k {
			for tr, cnt := range targets {
				if cnt > 1 {
					t.Logf("n=%d k=%d d=%d: node %d targeted %d times (shuffle %v, byRank %v)",
						n, k, len(e.Ranks), tr, cnt, shuffle, byRank)
					return false
				}
				if holders[tr] {
					// Permissible only via the fallback; verify the
					// fallback was genuinely forced: some sender had all
					// partners as holders/targets. Rather than re-derive
					// the walk, require overall coverage to still reach
					// K distinct nodes when enough partners exist.
					distinct := len(holders)
					for tr2 := range targets {
						if !holders[tr2] {
							distinct++
						}
					}
					if distinct >= k {
						continue
					}
					t.Logf("n=%d k=%d d=%d: holder %d targeted and coverage < K", n, k, len(e.Ranks), tr)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
