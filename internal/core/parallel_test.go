package core

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"dedupcr/internal/collectives"
	"dedupcr/internal/storage"
)

// dumpRun is one collective dump of the standard test workload with
// everything the parallel-vs-serial comparisons need: per-rank results,
// the transport stats snapshot taken right after the dump, the cluster
// and the original buffers.
type dumpRun struct {
	cluster *storage.Cluster
	results []*Result
	stats   []collectives.Stats
	buffers [][]byte
}

// runDumpWithStats executes one collective dump with the given options on
// a fresh in-proc group and cluster, capturing each rank's transport
// stats at completion.
func runDumpWithStats(t *testing.T, n int, o Options) dumpRun {
	t.Helper()
	run := dumpRun{
		cluster: storage.NewCluster(n),
		results: make([]*Result, n),
		stats:   make([]collectives.Stats, n),
		buffers: make([][]byte, n),
	}
	var mu sync.Mutex
	err := collectives.Run(n, func(c collectives.Comm) error {
		buf := testBuffer(c.Rank(), 6, 4, 3, 2+c.Rank()%3)
		res, err := DumpOutput(c, run.cluster.Node(c.Rank()), buf, o)
		if err != nil {
			return err
		}
		mu.Lock()
		run.results[c.Rank()] = res
		run.stats[c.Rank()] = c.Stats()
		run.buffers[c.Rank()] = buf
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestParallelDumpDeterminism is the tentpole guarantee: a dump with
// Parallelism > 1 must be byte-identical to the serial reference — same
// fingerprint counts, same replica placement (per-peer byte traffic),
// same per-node storage and the same restored bytes — for every
// approach.
func TestParallelDumpDeterminism(t *testing.T) {
	const n = 8
	for _, approach := range []Approach{NoDedup, LocalDedup, CollDedup} {
		approach := approach
		t.Run(approach.String(), func(t *testing.T) {
			base := Options{K: 3, Approach: approach, ChunkSize: testPage, Name: "par", F: 1 << 10}
			serialOpts := base
			serialOpts.Parallelism = 1
			parOpts := base
			parOpts.Parallelism = 4

			serial := runDumpWithStats(t, n, serialOpts)
			parallel := runDumpWithStats(t, n, parOpts)

			for r := 0; r < n; r++ {
				sm, pm := serial.results[r].Metrics, parallel.results[r].Metrics
				if sm.TotalChunks != pm.TotalChunks || sm.LocalUniqueChunks != pm.LocalUniqueChunks {
					t.Errorf("rank %d: chunk counts differ: serial %d/%d, parallel %d/%d",
						r, sm.TotalChunks, sm.LocalUniqueChunks, pm.TotalChunks, pm.LocalUniqueChunks)
				}
				if sm.SentChunks != pm.SentChunks || sm.SentBytes != pm.SentBytes {
					t.Errorf("rank %d: sent differs: serial %d chunks/%d B, parallel %d chunks/%d B",
						r, sm.SentChunks, sm.SentBytes, pm.SentChunks, pm.SentBytes)
				}
				if sm.RecvChunks != pm.RecvChunks || sm.RecvBytes != pm.RecvBytes {
					t.Errorf("rank %d: recv differs: serial %d/%d, parallel %d/%d",
						r, sm.RecvChunks, sm.RecvBytes, pm.RecvChunks, pm.RecvBytes)
				}
				if sm.StoredChunks != pm.StoredChunks || sm.StoredBytes != pm.StoredBytes {
					t.Errorf("rank %d: stored differs: serial %d/%d, parallel %d/%d",
						r, sm.StoredChunks, sm.StoredBytes, pm.StoredChunks, pm.StoredBytes)
				}
				if sm.UniqueContentBytes != pm.UniqueContentBytes || sm.WindowBytes != pm.WindowBytes {
					t.Errorf("rank %d: unique/window bytes differ", r)
				}
				// Replica placement: every peer must receive exactly the
				// same bytes from this rank in both runs.
				for p := 0; p < n; p++ {
					sb := serial.stats[r].Peers[p].BytesSent
					pb := parallel.stats[r].Peers[p].BytesSent
					if sb != pb {
						t.Errorf("rank %d → peer %d: sent %d bytes serial, %d parallel", r, p, sb, pb)
					}
				}
			}
			if !reflect.DeepEqual(serial.results[0].Plan.SendLoad, parallel.results[0].Plan.SendLoad) {
				t.Errorf("plans differ between serial and parallel runs")
			}
			su, pu := serial.cluster.UsageByNode(), parallel.cluster.UsageByNode()
			if !reflect.DeepEqual(su, pu) {
				t.Errorf("per-node storage differs:\nserial:   %v\nparallel: %v", su, pu)
			}

			// The parallel dump must restore byte-exactly.
			restored := make([][]byte, n)
			var mu sync.Mutex
			err := collectives.Run(n, func(c collectives.Comm) error {
				buf, err := Restore(c, parallel.cluster.Node(c.Rank()), "par")
				if err != nil {
					return err
				}
				mu.Lock()
				restored[c.Rank()] = buf
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < n; r++ {
				if !bytes.Equal(restored[r], parallel.buffers[r]) {
					t.Errorf("rank %d: parallel dump did not restore byte-exactly", r)
				}
			}
		})
	}
}

// TestConcurrentPutsRace is the race-focused satellite: N in-proc ranks
// with Parallelism > 1 drive concurrent partner puts (run under -race in
// CI), the restore must round-trip, and the per-peer byte counters must
// sum to exactly the serial run's totals — concurrency may reorder the
// traffic but never change it.
func TestConcurrentPutsRace(t *testing.T) {
	const n, k = 8, 4
	base := Options{K: k, Approach: CollDedup, ChunkSize: testPage, Name: "race", F: 1 << 10}
	serialOpts := base
	serialOpts.Parallelism = 1
	parOpts := base
	parOpts.Parallelism = 4

	serial := runDumpWithStats(t, n, serialOpts)
	parallel := runDumpWithStats(t, n, parOpts)

	var serialSent, parSent, serialMsgs, parMsgs int64
	for r := 0; r < n; r++ {
		for p := 0; p < n; p++ {
			serialSent += serial.stats[r].Peers[p].BytesSent
			parSent += parallel.stats[r].Peers[p].BytesSent
			serialMsgs += serial.stats[r].Peers[p].MsgsSent
			parMsgs += parallel.stats[r].Peers[p].MsgsSent
		}
		if serial.stats[r].BytesSent != parallel.stats[r].BytesSent {
			t.Errorf("rank %d: total BytesSent %d serial vs %d parallel",
				r, serial.stats[r].BytesSent, parallel.stats[r].BytesSent)
		}
	}
	if serialSent != parSent {
		t.Errorf("per-peer BytesSent sum: %d serial vs %d parallel", serialSent, parSent)
	}
	if serialMsgs != parMsgs {
		t.Errorf("per-peer MsgsSent sum: %d serial vs %d parallel", serialMsgs, parMsgs)
	}
	for r := 0; r < n; r++ {
		if got := len(parallel.results[r].Metrics.Phases.PutWorkers); got != k-1 {
			t.Errorf("rank %d: expected %d put-worker durations, got %d", r, k-1, got)
		}
	}

	restored := make([][]byte, n)
	var mu sync.Mutex
	err := collectives.Run(n, func(c collectives.Comm) error {
		buf, err := Restore(c, parallel.cluster.Node(c.Rank()), "race")
		if err != nil {
			return err
		}
		mu.Lock()
		restored[c.Rank()] = buf
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		if !bytes.Equal(restored[r], parallel.buffers[r]) {
			t.Errorf("rank %d: restore after concurrent puts not byte-exact", r)
		}
	}
}

// TestParallelismDefault pins the normalization rule: 0 selects
// GOMAXPROCS (>= 1), explicit values pass through.
func TestParallelismDefault(t *testing.T) {
	o, err := Options{K: 1}.normalized(4)
	if err != nil {
		t.Fatal(err)
	}
	if o.Parallelism < 1 {
		t.Fatalf("default Parallelism = %d, want >= 1", o.Parallelism)
	}
	o, err = Options{K: 1, Parallelism: 7}.normalized(4)
	if err != nil {
		t.Fatal(err)
	}
	if o.Parallelism != 7 {
		t.Fatalf("explicit Parallelism not preserved: %d", o.Parallelism)
	}
}

// TestParallelDumpContentDefined covers the CDC chunker under the
// parallel pipeline: boundaries come from the serial scan, hashing is
// parallel, and the restore must still round-trip.
func TestParallelDumpContentDefined(t *testing.T) {
	const n = 4
	o := Options{K: 2, Approach: CollDedup, ChunkSize: testPage, ContentDefined: true,
		Name: "cdc-par", F: 1 << 10, Parallelism: 4}
	run := runDumpWithStats(t, n, o)
	restored := make([][]byte, n)
	var mu sync.Mutex
	err := collectives.Run(n, func(c collectives.Comm) error {
		buf, err := Restore(c, run.cluster.Node(c.Rank()), "cdc-par")
		if err != nil {
			return err
		}
		mu.Lock()
		restored[c.Rank()] = buf
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		if !bytes.Equal(restored[r], run.buffers[r]) {
			t.Errorf("rank %d: CDC parallel dump did not restore byte-exactly", r)
		}
	}
}
