package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dedupcr/internal/fingerprint"
	"dedupcr/internal/obs"
	"dedupcr/internal/storage"
)

// Checkpoint garbage collection. Every dump records, per node, the exact
// multiset of chunk references it added to the local store (own kept
// chunks plus chunks received for partners), so an old dataset can later
// be forgotten with reference-counting precision: chunks shared with a
// newer checkpoint — the common case, since consecutive checkpoints
// overlap heavily — survive, everything else is reclaimed.

// gcName names the blob holding a dataset's local reference list.
func gcName(dataset string, rank int) string {
	return fmt.Sprintf("%s/gc-rank%06d", dataset, rank)
}

// marshalFPs encodes a fingerprint list: u32 count | fingerprints. The
// header distinguishes an empty dataset's list from a tombstone.
func marshalFPs(fps []fingerprint.FP) []byte {
	buf := make([]byte, 0, 4+len(fps)*fingerprint.Size)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(fps)))
	for _, fp := range fps {
		buf = append(buf, fp[:]...)
	}
	return buf
}

// unmarshalFPs decodes a fingerprint list.
func unmarshalFPs(data []byte) ([]fingerprint.FP, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("core: gc list header truncated")
	}
	n := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	if len(data) != n*fingerprint.Size {
		return nil, fmt.Errorf("core: gc list has %d bytes for %d entries", len(data), n)
	}
	fps := make([]fingerprint.FP, n)
	for i := range fps {
		copy(fps[i][:], data[i*fingerprint.Size:])
	}
	return fps, nil
}

// rollbackDump undoes a partially committed dump on this node: every
// chunk reference the failed dump stored is released, and the dataset's
// blobs — reference list, own restore metadata, and the K-1 neighbour
// metadata replicas this rank may have received — are tombstoned. The
// store ends up as if the dump never ran here, so a later Forget of the
// failed dataset reports storage.ErrNotFound like any unknown name.
// Best-effort by design: it runs on error paths where the store itself
// may be failing, and a missed release only leaks a refcount, never
// corrupts a committed dataset.
func rollbackDump(store storage.Store, name string, rank, n, k int, refs []fingerprint.FP) {
	obs.Logf(obs.KindRollback, rank, "", 0, "rolling back dump %q (%d refs)", name, len(refs))
	obs.Trigger(obs.Failure{
		Kind: "rollback", Rank: rank,
		Cause: fmt.Sprintf("dump %q rolled back after failure", name),
	})
	for _, fp := range refs {
		_ = store.ReleaseChunk(fp)
	}
	_ = store.PutBlob(gcName(name, rank), nil)
	_ = store.PutBlob(metaName(name, rank), nil)
	for d := 1; d < k; d++ {
		_ = store.PutBlob(metaName(name, (rank-d+n)%n), nil)
	}
	// Make the rollback itself durable on commit-aware engines, so a
	// crash right after an aborted dump does not resurrect its refs.
	_ = storage.Commit(store)
}

// Forget releases this node's storage for a dataset dumped earlier under
// name: every chunk reference the dump added is dropped, deleting chunks
// whose count reaches zero, and the dataset's metadata blobs are
// overwritten with tombstones. Local and non-collective — each node
// forgets independently; a dataset is fully reclaimed once every node has
// forgotten it.
//
// Forgetting a dataset that was never dumped (or was already forgotten)
// on this node returns storage.ErrNotFound.
func Forget(store storage.Store, name string, rank int) error {
	blob, err := store.GetBlob(gcName(name, rank))
	if err != nil {
		return err
	}
	if len(blob) == 0 {
		return fmt.Errorf("forget %q: %w", name, storage.ErrNotFound)
	}
	fps, err := unmarshalFPs(blob)
	if err != nil {
		return err
	}
	for _, fp := range fps {
		if err := store.ReleaseChunk(fp); err != nil && !errors.Is(err, storage.ErrNotFound) {
			return fmt.Errorf("forget %q: %w", name, err)
		}
	}
	// Tombstone the reference list and the restore metadata so repeated
	// forgets fail cleanly and restores stop finding the dataset.
	if err := store.PutBlob(gcName(name, rank), nil); err != nil {
		return err
	}
	if err := store.PutBlob(metaName(name, rank), nil); err != nil {
		return err
	}
	// Persist the releases and tombstones as one durable step on
	// commit-aware engines; this is also what turns the released chunks
	// into compactable garbage in the segment store.
	return storage.Commit(store)
}
