package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"dedupcr/internal/chunk"
	// Register the gear chunker so Options.Chunker can name it.
	_ "dedupcr/internal/chunk/gear"
	"dedupcr/internal/collectives"
	"dedupcr/internal/fingerprint"
	"dedupcr/internal/metrics"
	"dedupcr/internal/obs"
	"dedupcr/internal/storage"
	"dedupcr/internal/trace"
)

// tagMeta carries the RestoreMeta replicas between naive neighbours.
const tagMeta collectives.Tag = 17

// Result is the outcome of one collective dump on one rank.
type Result struct {
	// Metrics is the rank's instrumentation for the dump.
	Metrics metrics.Dump
	// Plan is the communication schedule that was executed; experiments
	// read receive-size distributions and partner maps from it. It is
	// identical on every rank.
	Plan *Plan
	// Global is the broadcast global fingerprint view (GHashes); nil for
	// the baselines, which never build one.
	Global *fingerprint.Table
}

// item is one chunk this rank keeps: it is stored locally and sent to
// the partners whose indices (1..K-1) appear in partners, in ascending
// order. An empty set means store-only.
type item struct {
	ch       chunk.Chunk
	partners []int
	// entry is the chunk's global-view entry when it has designated
	// ranks and fewer than K of them (coll-dedup only): its replica
	// targets are refined after partner identities are known.
	entry *fingerprint.Entry
}

// prefix returns the partner indices 1..p.
func prefix(p int) []int {
	out := make([]int, 0, p)
	for d := 1; d <= p; d++ {
		out = append(out, d)
	}
	return out
}

// beginPhase opens one pipeline phase: a trace span named after it plus a
// wall-clock measurement accumulated into dst when the returned function
// is called. Both sides are nil-safe, so uninstrumented runs pay only two
// clock reads per phase.
func beginPhase(rec *trace.Recorder, name string, dst *time.Duration) func() {
	sp := rec.Begin(name)
	start := time.Now()
	return func() {
		*dst += time.Since(start)
		sp.End()
	}
}

// DumpOutput is the paper's collective write primitive: every rank of c
// calls it simultaneously with its local dataset buf; on return the
// dataset is stored on the rank's local store and protected by o.K-1
// additional replicas spread across partner nodes — with coll-dedup,
// counting naturally distributed duplicates toward the replication
// factor.
//
// DumpOutput is collective and synchronizing: all ranks must call it with
// the same Options (except buf, whose size may differ per rank). It is
// equivalent to DumpOutputCtx with a background context.
//
//dedupvet:compat context-less convenience wrapper over DumpOutputCtx
func DumpOutput(c collectives.Comm, store storage.Store, buf []byte, o Options) (*Result, error) {
	return DumpOutputCtx(context.Background(), c, store, buf, o)
}

// DumpOutputCtx is DumpOutput under a context: cancelling ctx (or passing
// its deadline) aborts the collective on this rank and disseminates the
// abort through the transport, so every rank of the group unblocks
// promptly instead of deadlocking on the missing participant.
//
// Any mid-dump failure — a cancelled context, a dead rank, a store error —
// likewise aborts the group: survivors return a *collectives.CollectiveError
// naming the failed ranks, the pipeline phase, and the cause (match it
// with errors.As, or errors.Is against collectives.ErrAborted and
// collectives.ErrRankFailed). The local store is left consistent: either
// the dump committed fully, or every partial effect was rolled back so
// the dataset name stays Forget-clean. After an abort the communicator is
// poisoned and must be recreated; previously committed datasets remain
// restorable.
func DumpOutputCtx(ctx context.Context, c collectives.Comm, store storage.Store, buf []byte, o Options) (*Result, error) {
	o, err := o.normalized(c.Size())
	if err != nil {
		return nil, err
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	stop := collectives.WatchContext(ctx, c)
	defer stop()
	var phase string
	res, err := dumpOutput(c, store, buf, o, &phase)
	if err != nil {
		return nil, failCollective(c, err, phase)
	}
	return res, nil
}

// failCollective terminates a collective operation that failed on this
// rank: the communicator is aborted so every blocked peer unblocks and
// observes the failure on its next collective step, and the error is
// wrapped into a *collectives.CollectiveError carrying the pipeline phase.
// The wrap always allocates a fresh CollectiveError: in-proc groups share
// one instance across all ranks, so decorating it in place would race.
func failCollective(c collectives.Comm, err error, phase string) error {
	collectives.Abort(c, err)
	var out error
	var ce *collectives.CollectiveError
	switch {
	case errors.As(err, &ce) && ce.Phase != "":
		out = err
		phase = ce.Phase
	case ce != nil:
		ce = &collectives.CollectiveError{Ranks: ce.Ranks, Phase: phase, Cause: err}
		out = ce
	default:
		ce = &collectives.CollectiveError{Ranks: []int{c.Rank()}, Phase: phase, Cause: err}
		out = ce
	}
	// Black-box the failure: stamp the taxonomy record in the flight
	// recorder and write a post-mortem bundle (no-op without a configured
	// bundle directory; cascades within the suppression window collapse
	// into the first bundle).
	obs.Logf(obs.KindError, c.Rank(), phase, 0, "%v", out)
	obs.Trigger(obs.Failure{
		Kind: "collective-error", Rank: c.Rank(), Ranks: ce.Ranks,
		Phase: phase, Cause: out.Error(),
	})
	return out
}

// dumpOutput runs the dump pipeline with already-normalized options,
// recording the currently running phase into curPhase for error
// attribution.
func dumpOutput(c collectives.Comm, store storage.Store, buf []byte, o Options, curPhase *string) (*Result, error) {
	me, n := c.Rank(), c.Size()
	m := metrics.Dump{Rank: me, DatasetBytes: int64(len(buf))}
	dumpStart := time.Now()
	dumpSpan := o.Trace.Begin("dump").
		Arg("approach", o.Approach.String()).
		Arg("bytes", fmt.Sprint(len(buf)))
	defer dumpSpan.End()
	// NotePhase labels the goroutine per phase for CPU profiles; drop the
	// last label once the pipeline is done.
	defer obs.ClearPhaseLabel()

	// begin opens a pipeline phase and additionally publishes its name to
	// the error-attribution slot and to the transport (NotePhase), which
	// phase-scoped fault injection keys on.
	begin := func(name string, dst *time.Duration) func() {
		*curPhase = name
		collectives.NotePhase(c, name)
		return beginPhase(o.Trace, name, dst)
	}

	// Phase 1 — chunking and fingerprinting (every byte is hashed once).
	// Every registered chunker (fixed, Rabin CDC, gear) exposes its
	// boundary scan separately from hashing (chunk.CutChunker), so the two
	// costs are attributed to their own phases regardless of which spec
	// Options.Chunker selected. Hashing runs in cache-friendly batches
	// (fingerprint.BatchOf). With Parallelism > 1 it fans out over a bounded
	// worker pool and phase 2 (plus the reduction's leaf-table build, for
	// coll-dedup) overlaps it: finished chunks stream to the dedup filter
	// in dataset order while later chunks are still being hashed, so the
	// combined cost collapses into the fingerprint wall time. Both paths
	// produce identical chunks, identical uniq order and an identical leaf
	// table — the serial path is the reference the parallel one must match
	// byte for byte.
	cc, err := chunk.New(o.Chunker)
	if err != nil {
		// Unreachable after normalization validated the spec; fail loudly
		// rather than silently substituting a default chunker.
		return nil, fmt.Errorf("rank %d chunker: %w", me, err)
	}
	var chunks, uniq []chunk.Chunk
	// leaf is the prebuilt reduction input (parallel coll-dedup only);
	// reduceGlobal builds its own when nil.
	var leaf *fingerprint.Table
	var done func()
	switch {
	case o.Parallelism > 1:
		done = begin("chunking", &m.Phases.Chunking)
		cuts := cc.Cuts(buf)
		done()
		done = begin("fingerprint", &m.Phases.Fingerprint)
		if o.Approach == CollDedup {
			leaf = fingerprint.NewTable(o.F, o.K)
		}
		seen := make(map[fingerprint.FP]struct{}, len(cuts))
		uniq = make([]chunk.Chunk, 0, len(cuts))
		var busy []time.Duration
		chunks, busy = chunk.FromCutsStream(buf, cuts, o.Parallelism, func(span []chunk.Chunk) {
			for _, ch := range span {
				if _, ok := seen[ch.FP]; ok {
					continue
				}
				seen[ch.FP] = struct{}{}
				uniq = append(uniq, ch)
				if leaf != nil {
					leaf.AddLocal(ch.FP, int32(me))
				}
			}
		})
		done()
		m.Phases.FingerprintWorkers = busy
		// The dedup filter ran inside the fingerprint wall time; only the
		// leaf table's top-F trim remains.
		done = begin("local-dedup", &m.Phases.LocalDedup)
		if leaf != nil {
			leaf.Trim()
		}
		done()
	default:
		done = begin("chunking", &m.Phases.Chunking)
		cuts := cc.Cuts(buf)
		done()
		done = begin("fingerprint", &m.Phases.Fingerprint)
		chunks = chunk.FromCuts(buf, cuts)
		done()
		done = begin("local-dedup", &m.Phases.LocalDedup)
		uniq = localDedup(chunks)
		done()
	}
	m.TotalChunks = len(chunks)
	m.HashedBytes = int64(len(buf))
	m.LocalUniqueChunks = len(uniq)

	// Phase 3 — classification. For coll-dedup this runs the collective
	// fingerprint reduction and decides, per chunk: discard (enough
	// natural replicas elsewhere), store only, or store and replicate;
	// replica targets of designated chunks stay provisional until the
	// partner identities are known (phase 5). Its cost files under the
	// reduction phase for coll-dedup (the global view drives it) and
	// under planning for the baselines (plain partner assignment).
	classifyDst, classifyName := &m.Phases.Planning, "planning"
	if o.Approach == CollDedup {
		classifyDst, classifyName = &m.Phases.Reduction, "reduction"
	}
	done = begin(classifyName, classifyDst)
	items, hints, global, err := classify(c, chunks, uniq, leaf, o, &m)
	done()
	if err != nil {
		return nil, fmt.Errorf("rank %d classify: %w", me, err)
	}

	// Phase 4 — provisional load vectors and their allgather (Algorithm
	// 1, l. 4-10). These drive the rank shuffle; per-partner splits may
	// still shift in phase 5, totals cannot.
	load := sendLoads(items, o.K)
	pre := c.Stats()
	done = begin("load-exchange", &m.Phases.LoadExchange)
	sendLoad, err := collectives.AllgatherInt64(c, load)
	done()
	if err != nil {
		return nil, fmt.Errorf("rank %d load allgather: %w", me, err)
	}
	m.LoadExchangeBytes = c.Stats().BytesSent - pre.BytesSent

	// Phase 5 — partner selection (Algorithm 2) from the provisional
	// totals, then replica-target refinement: designated ranks re-aim
	// their extra copies at partners that are not already natural
	// holders (a correctness refinement over the paper; see DESIGN.md).
	// The refined per-partner loads are allgathered again so the offset
	// planning (Algorithm 3) stays exact.
	totals := make([]int64, n)
	for r, row := range sendLoad {
		for d := 1; d < o.K; d++ {
			totals[r] += row[d]
		}
	}
	done = begin("planning", &m.Phases.Planning)
	shuffle := SelectShuffle(totals, o)
	if o.Approach == CollDedup {
		refineTargets(items, shuffle, o.K, me)
		load = sendLoads(items, o.K)
	}
	done()
	if o.Approach == CollDedup {
		pre = c.Stats()
		done = begin("load-exchange", &m.Phases.LoadExchange)
		sendLoad, err = collectives.AllgatherInt64(c, load)
		done()
		if err != nil {
			return nil, fmt.Errorf("rank %d refined load allgather: %w", me, err)
		}
		m.LoadExchangeBytes += c.Stats().BytesSent - pre.BytesSent
	}
	done = begin("planning", &m.Phases.Planning)
	plan, err := NewPlan(shuffle, sendLoad, o.K)
	done()
	if err != nil {
		return nil, fmt.Errorf("rank %d plan: %w", me, err)
	}

	// Phase 6 — single-sided exchange: open an exactly-sized window, put
	// each replicated chunk into the partner windows at the planned
	// offsets, then drain the own window until full.
	winSize := plan.WindowSize(me)
	m.WindowBytes = winSize
	done = begin("window-open", &m.Phases.WindowOpen)
	win := collectives.OpenWindow(c, winSize, c.NextSeq())
	done()
	m.PutLatency = metrics.NewHistogram()
	win.OnPut = func(bytes int, d time.Duration) {
		m.PutLatency.Record(d.Nanoseconds())
	}
	win.PutTimeout = o.Retry.PutTimeout
	var putRetries atomic.Int64
	offs := plan.Offsets(me)
	done = begin("put", &m.Phases.Put)
	if o.Parallelism > 1 && o.K > 2 {
		err = putParallel(win, plan, items, offs, o, me, &m, &putRetries)
	} else {
		err = putSerial(win, plan, items, offs, o, me, &m, &putRetries)
	}
	done()
	m.PutRetries = putRetries.Load()
	if err != nil {
		return nil, fmt.Errorf("rank %d %w", me, err)
	}
	done = begin("window-wait", &m.Phases.WindowWait)
	recvBuf, err := win.Wait()
	done()
	if err != nil {
		return nil, fmt.Errorf("rank %d window: %w", me, err)
	}

	// Phase 7 — commit: own chunks, received chunks, restore metadata
	// (with the recipe built here, where it is consumed), and the
	// reference list that lets Forget reclaim this dataset. Every stored
	// reference is tracked so a failure anywhere from here on rolls the
	// local store back to its pre-dump state (see rollbackDump) — the
	// consistency half of the abort protocol.
	done = begin("commit", &m.Phases.Commit)
	recipe := chunk.BuildRecipe(chunks)
	refs := make([]fingerprint.FP, 0, len(items))
	commitErr := func() error {
		for _, it := range items {
			if err := store.PutChunk(it.ch.FP, it.ch.Data); err != nil {
				return fmt.Errorf("rank %d store chunk: %w", me, err)
			}
			refs = append(refs, it.ch.FP)
			m.StoredChunks++
			m.StoredBytes += int64(len(it.ch.Data))
		}
		recvRefs, err := commitReceived(store, recvBuf, &m)
		refs = append(refs, recvRefs...)
		if err != nil {
			return fmt.Errorf("rank %d commit received: %w", me, err)
		}
		if err := store.PutBlob(gcName(o.Name, me), marshalFPs(refs)); err != nil {
			return fmt.Errorf("rank %d gc list: %w", me, err)
		}
		if err := persistMeta(c, store, o, recipe, hints); err != nil {
			return fmt.Errorf("rank %d persist meta: %w", me, err)
		}
		// Checkpoint-grained durability point: on commit-aware engines
		// (the segment store) this seals the active segment and publishes
		// the manifest atomically, so the whole dump becomes durable as
		// one unit — a crash after this line reopens to this checkpoint, a
		// crash before it to the previous one, never to a torn mix.
		if err := storage.Commit(store); err != nil {
			return fmt.Errorf("rank %d store commit: %w", me, err)
		}
		return nil
	}()
	done()
	if commitErr != nil {
		rollbackDump(store, o.Name, me, n, o.K, refs)
		return nil, commitErr
	}

	// The dump completes collectively once everyone has committed. The
	// barrier's dissemination structure gives the consistency argument its
	// other half: no rank exits the barrier before every rank has entered
	// it, i.e. before every rank has committed. So if the barrier fails,
	// no rank can have completed the dump — every survivor rolls back and
	// the dataset is globally absent, as if the dump never ran.
	done = begin("barrier", &m.Phases.Barrier)
	err = collectives.Barrier(c)
	done()
	if err != nil {
		rollbackDump(store, o.Name, me, n, o.K, refs)
		return nil, fmt.Errorf("rank %d final barrier: %w", me, err)
	}
	// The completion barrier's exit stamp doubles as this rank's wall-clock
	// anchor for cross-rank clock-offset estimation (telemetry plane).
	if st := c.Stats(); !st.LastBarrierExit.IsZero() {
		m.BarrierExit = st.LastBarrierExit
	} else {
		m.BarrierExit = time.Now()
	}
	m.Phases.Total = time.Since(dumpStart)
	return &Result{Metrics: m, Plan: plan, Global: global}, nil
}

// putRetry drives one window put under the dump's retry policy: transient
// transport failures (refused dials, timed-out puts, injected faults) are
// retried up to rp.Attempts times with doubling backoff, counting each
// retry; aborts, rank failures and cancellations are final and returned
// immediately. Re-putting is idempotent at the receiver — the planned
// offset region is fixed, so a retried record lands on the same bytes.
func putRetry(win *collectives.Window, me, target int, off int64, rec []byte, rp RetryPolicy, retries *atomic.Int64) error {
	backoff := rp.Backoff
	for attempt := 1; ; attempt++ {
		err := win.Put(target, off, rec)
		if err == nil || attempt >= rp.Attempts || !collectives.IsTransient(err) {
			return err
		}
		retries.Add(1)
		obs.Logf(obs.KindRetry, me, "put", 0, "put to rank %d retry %d/%d: %v", target, attempt, rp.Attempts, err)
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
}

// putPartner pushes every item destined for partner index d into the
// target's window, records starting at off. The per-partner offset
// regions are disjoint by construction (Algorithm 3), so putPartner calls
// for different d never touch the same window bytes — which is what makes
// them safe to run concurrently. Returns chunks and payload bytes sent.
func putPartner(win *collectives.Window, me, target int, off int64, items []item, d int, rp RetryPolicy, retries *atomic.Int64) (int, int64, error) {
	var chunks int
	var bytes int64
	for _, it := range items {
		if !sendsTo(it, d) {
			continue
		}
		rec := encodeRecord(it.ch.Data)
		if err := putRetry(win, me, target, off, rec, rp, retries); err != nil {
			return chunks, bytes, fmt.Errorf("put to %d: %w", target, err)
		}
		off += int64(len(rec))
		chunks++
		bytes += int64(len(it.ch.Data))
	}
	return chunks, bytes, nil
}

// putSerial is the reference put phase: partner windows filled one after
// the other, in partner-index order.
func putSerial(win *collectives.Window, plan *Plan, items []item, offs []int64, o Options, me int, m *metrics.Dump, retries *atomic.Int64) error {
	for d := 1; d < o.K; d++ {
		chunks, bytes, err := putPartner(win, me, plan.Partner(me, d), offs[d], items, d, o.Retry, retries)
		m.SentChunks += chunks
		m.SentBytes += bytes
		if err != nil {
			return err
		}
	}
	return nil
}

// putParallel drives one goroutine per partner window, bounded by
// o.Parallelism. Each partner's record stream stays on a single goroutine
// in item order and lands at the same planned offsets as the serial path,
// so the windows every peer drains are byte-identical — only the
// interleaving across partners changes. Per-partner counters are
// accumulated in partner order after the join, keeping the metrics
// deterministic too; each worker records its own trace span, attributed
// via the partner arg.
func putParallel(win *collectives.Window, plan *Plan, items []item, offs []int64, o Options, me int, m *metrics.Dump, retries *atomic.Int64) error {
	type putResult struct {
		chunks int
		bytes  int64
		busy   time.Duration
		err    error
	}
	results := make([]putResult, o.K-1)
	sem := make(chan struct{}, o.Parallelism)
	var wg sync.WaitGroup
	for d := 1; d < o.K; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			sp := o.Trace.Begin("put-worker").
				Arg("partner", fmt.Sprint(d)).
				Arg("target", fmt.Sprint(plan.Partner(me, d)))
			chunks, bytes, err := putPartner(win, me, plan.Partner(me, d), offs[d], items, d, o.Retry, retries)
			sp.End()
			results[d-1] = putResult{chunks, bytes, time.Since(start), err}
		}(d)
	}
	wg.Wait()
	m.Phases.PutWorkers = make([]time.Duration, o.K-1)
	var firstErr error
	for d := 1; d < o.K; d++ {
		r := results[d-1]
		m.SentChunks += r.chunks
		m.SentBytes += r.bytes
		m.Phases.PutWorkers[d-1] = r.busy
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	return firstErr
}

// localDedup keeps the first occurrence of every distinct fingerprint,
// preserving dataset order.
func localDedup(chunks []chunk.Chunk) []chunk.Chunk {
	seen := make(map[fingerprint.FP]struct{}, len(chunks))
	out := make([]chunk.Chunk, 0, len(chunks))
	for _, ch := range chunks {
		if _, ok := seen[ch.FP]; ok {
			continue
		}
		seen[ch.FP] = struct{}{}
		out = append(out, ch)
	}
	return out
}

// classify decides the fate of every chunk under the selected approach.
// It returns the chunks to keep (with their replication depth), the
// location hints for discarded chunks, and the global view (coll-dedup
// only). leaf, when non-nil, is the prebuilt (and trimmed) reduction leaf
// table of this rank's unique fingerprints, produced by the parallel
// pipeline overlapping its construction with hashing.
func classify(c collectives.Comm, all, uniq []chunk.Chunk, leaf *fingerprint.Table, o Options, m *metrics.Dump) ([]item, map[fingerprint.FP][]int32, *fingerprint.Table, error) {
	switch o.Approach {
	case NoDedup:
		// Full replication: every chunk, duplicates included, is stored
		// and pushed to all K-1 partners. No redundancy is identified,
		// so the whole dataset counts as unique content.
		items := make([]item, len(all))
		for i, ch := range all {
			items[i] = item{ch: ch, partners: prefix(o.K - 1)}
		}
		m.UniqueContentBytes = m.DatasetBytes
		return items, nil, nil, nil

	case LocalDedup:
		items := make([]item, len(uniq))
		for i, ch := range uniq {
			items[i] = item{ch: ch, partners: prefix(o.K - 1)}
			m.UniqueContentBytes += int64(len(ch.Data))
		}
		return items, nil, nil, nil

	case CollDedup:
		global, err := reduceGlobal(c, uniq, leaf, o, m)
		if err != nil {
			return nil, nil, nil, err
		}
		me := int32(c.Rank())
		items := make([]item, 0, len(uniq))
		hints := make(map[fingerprint.FP][]int32)
		for _, ch := range uniq {
			e := global.Lookup(ch.FP)
			if e == nil {
				// Treated as globally unique: classic replication.
				items = append(items, item{ch: ch, partners: prefix(o.K - 1)})
				m.UniqueContentBytes += int64(len(ch.Data))
				continue
			}
			// Chunks in the global view are counted once group-wide: by
			// their first designated rank.
			if len(e.Ranks) > 0 && e.Ranks[0] == me {
				m.UniqueContentBytes += int64(len(ch.Data))
			}
			idx := e.RankIndex(me)
			if idx < 0 {
				// Other ranks are designated: the desired replication
				// factor is (or will be made) satisfied without us.
				hints[ch.FP] = append([]int32(nil), e.Ranks...)
				continue
			}
			d := len(e.Ranks)
			if d >= o.K {
				// Enough natural replicas: store locally, send nothing.
				items = append(items, item{ch: ch})
				continue
			}
			// K-D missing replicas, distributed round-robin over the D
			// designated ranks; we serve the slots congruent to our
			// index in the designated list.
			p := roundRobinShare(o.K, d, idx)
			items = append(items, item{ch: ch, partners: prefix(p), entry: e})
		}
		return items, hints, global, nil

	default:
		return nil, nil, nil, fmt.Errorf("core: unknown approach %v", o.Approach)
	}
}

// sendsTo reports whether the item is sent to partner index d.
func sendsTo(it item, d int) bool {
	for _, p := range it.partners {
		if p == d {
			return true
		}
	}
	return false
}

// refineTargets re-aims the extra replicas of designated chunks once
// partner identities are fixed by the shuffle. The paper sends the K-D
// missing copies to the designated ranks' first partners, which can land
// a copy on a rank that is itself a natural holder, silently lowering
// the distinct-node count below K. Because every rank shares the global
// view and the shuffle, all designated ranks can deterministically agree
// on targets that avoid holders and each other, falling back to the
// paper's behaviour only when the partner sets leave no choice.
//
// Only this rank's items are rewritten, but the slot walk below evolves
// identically on every designated rank of a fingerprint, so their target
// choices are consistent without communication.
func refineTargets(items []item, shuffle []int, k int, me int) {
	n := len(shuffle)
	pos := make([]int, n)
	for p, r := range shuffle {
		pos[r] = p
	}
	partnerOf := func(rank, d int) int { return shuffle[(pos[rank]+d)%n] }

	for i := range items {
		e := items[i].entry
		if e == nil || len(items[i].partners) == 0 {
			continue
		}
		d := len(e.Ranks)
		missing := k - d
		// Walk the round-robin slots exactly as every designated rank
		// does, tracking covered nodes; record the choices made by me.
		taken := make(map[int]bool, k)
		for _, r := range e.Ranks {
			taken[int(r)] = true
		}
		used := make(map[int32]map[int]bool, d) // sender -> used partner idx
		// Rotate the partner-index search start per fingerprint so
		// copies spread evenly over partner slots group-wide; a fixed
		// start would funnel every first copy at partner 1, breaking
		// the even per-partner split Algorithm 2's balancing assumes.
		start := 1 + int(e.FP[0])%(k-1)
		var mine []int
		for j := 0; j < missing; j++ {
			sender := e.Ranks[j%d]
			if used[sender] == nil {
				used[sender] = make(map[int]bool, k)
			}
			chosen := -1
			// First choice: first unused partner index (scanning from
			// the rotated start) whose rank is not already a holder or
			// target.
			for o := 0; o < k-1; o++ {
				di := 1 + (start-1+o)%(k-1)
				if used[sender][di] {
					continue
				}
				if !taken[partnerOf(int(sender), di)] {
					chosen = di
					break
				}
			}
			if chosen < 0 {
				// Fallback (paper behaviour): first unused index.
				for o := 0; o < k-1; o++ {
					di := 1 + (start-1+o)%(k-1)
					if !used[sender][di] {
						chosen = di
						break
					}
				}
			}
			if chosen < 0 {
				continue // sender exhausted all partners
			}
			used[sender][chosen] = true
			taken[partnerOf(int(sender), chosen)] = true
			if int(sender) == me {
				mine = append(mine, chosen)
			}
		}
		sortInts(mine)
		items[i].partners = mine
	}
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// roundRobinShare returns how many of the k-d missing replicas fall to
// the designated rank with index idx among d designated ranks: the count
// of slots j in [0, k-d) with j mod d == idx.
func roundRobinShare(k, d, idx int) int {
	missing := k - d
	if missing <= 0 || idx >= d {
		return 0
	}
	// Slots idx, idx+d, idx+2d, ... below missing.
	if idx >= missing {
		return 0
	}
	return (missing - idx + d - 1) / d
}

// reduceGlobal runs the collective fingerprint reduction: local leaf
// tables merged pairwise up a binomial tree (HMERGE) and the surviving
// top-F view broadcast to everyone. A non-nil prebuilt leaf table (from
// the parallel pipeline) enters the tree directly; otherwise the leaf is
// built here from the unique chunks — both constructions are identical.
//
// The caller (classify, under dumpOutput's begin helper) has already
// published the reduction phase before this helper blocks.
//
//dedupvet:phased
func reduceGlobal(c collectives.Comm, uniq []chunk.Chunk, leaf *fingerprint.Table, o Options, m *metrics.Dump) (*fingerprint.Table, error) {
	local := leaf
	if local == nil {
		fps := make([]fingerprint.FP, len(uniq))
		for i, ch := range uniq {
			fps[i] = ch.FP
		}
		local = fingerprint.Local(fps, int32(c.Rank()), o.F, o.K)
	}
	blob, err := local.MarshalBinary()
	if err != nil {
		return nil, err
	}
	pre := c.Stats()
	out, err := collectives.Allreduce(c, blob, mergeTables)
	if err != nil {
		return nil, fmt.Errorf("fingerprint allreduce: %w", err)
	}
	m.ReductionBytes = c.Stats().BytesSent - pre.BytesSent
	m.ReductionRounds = ceilLog2(c.Size())
	// The transport timed each level of the HMERGE tree this rank took
	// part in; surface them so the reduction cost can be read round by
	// round (the paper's hierarchic-merge analysis).
	m.Phases.ReductionRoundTimes = c.Stats().ReduceRounds
	global := new(fingerprint.Table)
	if err := global.UnmarshalBinary(out); err != nil {
		return nil, fmt.Errorf("decode global view: %w", err)
	}
	return global, nil
}

// mergeTables is the MergeFunc wrapping fingerprint.Table.Merge for the
// byte-oriented Allreduce.
func mergeTables(acc, other []byte) ([]byte, error) {
	var a, b fingerprint.Table
	if err := a.UnmarshalBinary(acc); err != nil {
		return nil, err
	}
	if err := b.UnmarshalBinary(other); err != nil {
		return nil, err
	}
	a.Merge(&b)
	return a.MarshalBinary()
}

// sendLoads builds the paper's Load vector in bytes: Load[0] is the local
// store load, Load[d] the record bytes sent to partner d. Record framing
// (4 bytes per chunk) is included so offsets line up with the wire.
func sendLoads(items []item, k int) []int64 {
	load := make([]int64, k)
	for _, it := range items {
		load[0] += int64(len(it.ch.Data))
		rec := int64(4 + len(it.ch.Data))
		for _, d := range it.partners {
			load[d] += rec
		}
	}
	return load
}

// encodeRecord frames a chunk for the window: u32 length | payload.
// Self-describing records let the receiver parse its window sequentially
// regardless of how sender regions tile it.
func encodeRecord(data []byte) []byte {
	rec := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(rec, uint32(len(data)))
	copy(rec[4:], data)
	return rec
}

// commitReceived parses the filled window and stores every chunk,
// fingerprinting it on arrival (the receiver indexes partner chunks by
// content, exactly like its own). It returns the stored references for
// the dataset's reclamation list — including, on error, the references
// already committed, so the caller can roll them back.
func commitReceived(store storage.Store, recvBuf []byte, m *metrics.Dump) ([]fingerprint.FP, error) {
	var refs []fingerprint.FP
	for cur := 0; cur < len(recvBuf); {
		if cur+4 > len(recvBuf) {
			return refs, fmt.Errorf("window record header truncated at offset %d", cur)
		}
		size := int(binary.BigEndian.Uint32(recvBuf[cur:]))
		cur += 4
		if cur+size > len(recvBuf) {
			return refs, fmt.Errorf("window record of %d bytes overruns window at offset %d", size, cur)
		}
		data := recvBuf[cur : cur+size]
		cur += size
		fp := fingerprint.Of(data)
		if err := store.PutChunk(fp, data); err != nil {
			return refs, err
		}
		refs = append(refs, fp)
		m.RecvChunks++
		m.RecvBytes += int64(size)
	}
	return refs, nil
}

// persistMeta stores this rank's RestoreMeta locally and exchanges
// replicas with the K-1 naive neighbours (rank±d), making the metadata as
// resilient as the data. Neighbour metadata is stored verbatim.
func persistMeta(c collectives.Comm, store storage.Store, o Options, recipe chunk.Recipe, hints map[fingerprint.FP][]int32) error {
	me, n := c.Rank(), c.Size()
	meta := RestoreMeta{Rank: int32(me), K: int32(o.K), Recipe: recipe, Hints: hints}
	blob, err := meta.MarshalBinary()
	if err != nil {
		return err
	}
	if err := store.PutBlob(metaName(o.Name, me), blob); err != nil {
		return err
	}
	for d := 1; d < o.K; d++ {
		if err := c.Send((me+d)%n, tagMeta, blob); err != nil {
			return err
		}
	}
	for d := 1; d < o.K; d++ {
		from := (me - d + n) % n
		peerBlob, err := c.Recv(from, tagMeta)
		if err != nil {
			return err
		}
		if err := store.PutBlob(metaName(o.Name, from), peerBlob); err != nil {
			return err
		}
	}
	return nil
}

// ceilLog2 returns ceil(log2 n) for n >= 1.
func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
