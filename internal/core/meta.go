package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"dedupcr/internal/chunk"
	"dedupcr/internal/fingerprint"
)

// RestoreMeta is everything a rank needs to rebuild its dataset after a
// restart: the recipe (ordered fingerprints) and, for chunks that were
// discarded because other ranks were designated to store them, location
// hints naming those designated ranks. It is persisted locally and
// replicated to the K-1 naive neighbour ranks so it survives node loss.
type RestoreMeta struct {
	// Rank is the dataset owner.
	Rank int32
	// K is the replication factor the dataset was dumped with.
	K int32
	// Recipe reassembles the dataset.
	Recipe chunk.Recipe
	// Hints maps fingerprints this rank did NOT store locally to the
	// ranks designated to store them.
	Hints map[fingerprint.FP][]int32
}

// metaName is the blob name RestoreMeta is persisted under: one per
// dataset per owning rank, so a node can hold its own metadata plus the
// replicas of its neighbours'.
func metaName(dataset string, rank int) string {
	return fmt.Sprintf("%s/meta-rank%06d", dataset, rank)
}

// MarshalBinary encodes the metadata blob (big endian):
//
//	u32 rank | u32 K | recipe | u32 nHints | nHints × (FP | u16 n | ranks)
func (m *RestoreMeta) MarshalBinary() ([]byte, error) {
	rec, err := m.Recipe.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 8+len(rec)+4+len(m.Hints)*(fingerprint.Size+2+8))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Rank))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.K))
	buf = append(buf, rec...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Hints)))
	// Deterministic hint order keeps the encoding reproducible.
	fps := make([]fingerprint.FP, 0, len(m.Hints))
	for fp := range m.Hints {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i].Less(fps[j]) })
	for _, fp := range fps {
		ranks := m.Hints[fp]
		buf = append(buf, fp[:]...)
		if len(ranks) > 0xFFFF {
			return nil, fmt.Errorf("core: hint for %s has %d ranks", fp.Short(), len(ranks))
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(ranks)))
		for _, r := range ranks {
			buf = binary.BigEndian.AppendUint32(buf, uint32(r))
		}
	}
	return buf, nil
}

// UnmarshalBinary decodes a blob written by MarshalBinary.
func (m *RestoreMeta) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("core: restore meta truncated (%d bytes)", len(data))
	}
	m.Rank = int32(binary.BigEndian.Uint32(data))
	m.K = int32(binary.BigEndian.Uint32(data[4:]))
	rec, rest, err := chunk.DecodeRecipe(data[8:])
	if err != nil {
		return err
	}
	m.Recipe = rec
	if len(rest) < 4 {
		return fmt.Errorf("core: restore meta hint header truncated")
	}
	n := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	// Hint counts ride peer-replicated blobs: every hint occupies at
	// least Size+2 bytes, so reject counts the payload cannot hold before
	// they size the map allocation.
	if n > len(rest)/(fingerprint.Size+2) {
		return fmt.Errorf("core: restore meta claims %d hints in %d bytes", n, len(rest))
	}
	m.Hints = make(map[fingerprint.FP][]int32, n)
	for i := 0; i < n; i++ {
		if len(rest) < fingerprint.Size+2 {
			return fmt.Errorf("core: hint %d truncated", i)
		}
		var fp fingerprint.FP
		copy(fp[:], rest[:fingerprint.Size])
		nr := int(binary.BigEndian.Uint16(rest[fingerprint.Size:]))
		rest = rest[fingerprint.Size+2:]
		if len(rest) < 4*nr {
			return fmt.Errorf("core: hint %d rank list truncated", i)
		}
		ranks := make([]int32, nr)
		for j := range ranks {
			ranks[j] = int32(binary.BigEndian.Uint32(rest[4*j:]))
		}
		rest = rest[4*nr:]
		m.Hints[fp] = ranks
	}
	if len(rest) != 0 {
		return fmt.Errorf("core: %d trailing bytes after restore meta", len(rest))
	}
	return nil
}
