package core

import (
	"encoding/binary"
	"testing"

	"dedupcr/internal/chunk"
	"dedupcr/internal/fingerprint"
)

// fuzzMetaSeed builds one well-formed RestoreMeta encoding.
func fuzzMetaSeed(f *testing.F) []byte {
	var fp1, fp2 fingerprint.FP
	fp1[0], fp2[0] = 1, 2
	m := &RestoreMeta{
		Rank:   2,
		K:      3,
		Recipe: chunk.Recipe{FPs: []fingerprint.FP{fp1, fp2, fp1}, Sizes: []int32{4096, 4096, 100}},
		Hints:  map[fingerprint.FP][]int32{fp2: {0, 1}},
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	return blob
}

// FuzzRestoreMetaUnmarshal drives the restore-metadata decoder with
// arbitrary bytes: hint counts are peer-controlled and must be bounded
// before they size the hint map.
func FuzzRestoreMetaUnmarshal(f *testing.F) {
	valid := fuzzMetaSeed(f)
	f.Add(valid)
	f.Add(valid[:6])
	f.Add(append(valid, 1, 2, 3))
	// Corrupt the trailing hint count upward.
	hostile := append([]byte(nil), valid...)
	if len(hostile) > 4 {
		binary.BigEndian.PutUint32(hostile[len(hostile)-4:], 0x0FFFFFFF)
	}
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		m := new(RestoreMeta)
		if err := m.UnmarshalBinary(data); err != nil {
			return
		}
		enc, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode of decoded meta failed: %v", err)
		}
		m2 := new(RestoreMeta)
		if err := m2.UnmarshalBinary(enc); err != nil {
			t.Fatalf("re-decode of re-encoded meta failed: %v", err)
		}
	})
}
