package core

import (
	"fmt"
	"testing"

	"dedupcr/internal/collectives"
	"dedupcr/internal/storage"
)

// benchDump runs one full collective dump per iteration on a fresh
// cluster and reports dataset throughput.
func benchDump(b *testing.B, n int, o Options, mkBuf func(rank int) []byte) {
	b.Helper()
	var total int64
	for r := 0; r < n; r++ {
		total += int64(len(mkBuf(r)))
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster := storage.NewCluster(n)
		err := collectives.Run(n, func(c collectives.Comm) error {
			_, err := DumpOutput(c, cluster.Node(c.Rank()), mkBuf(c.Rank()), o)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchWorkload(rank int) []byte {
	return testBuffer(rank, 24, 12, 8, 4+rank%5)
}

// BenchmarkDumpOutput compares the three approaches end to end on the
// same redundant workload — the library-level ablation behind Table I.
func BenchmarkDumpOutput(b *testing.B) {
	const n, k = 32, 3
	for _, ap := range []Approach{NoDedup, LocalDedup, CollDedup} {
		b.Run(ap.String(), func(b *testing.B) {
			o := Options{K: k, Approach: ap, ChunkSize: testPage, Name: "bench"}
			benchDump(b, n, o, benchWorkload)
		})
	}
}

// BenchmarkDumpShuffleAblation isolates the cost/benefit of the
// load-aware rank shuffling (Algorithm 2).
func BenchmarkDumpShuffleAblation(b *testing.B) {
	const n, k = 32, 4
	for _, shuffle := range []bool{false, true} {
		b.Run(fmt.Sprintf("shuffle=%t", shuffle), func(b *testing.B) {
			o := Options{K: k, Approach: CollDedup, ChunkSize: testPage,
				Shuffle: Bool(shuffle), Name: "bench"}
			benchDump(b, n, o, benchWorkload)
		})
	}
}

// BenchmarkDumpFThreshold sweeps the top-F bound of the fingerprint
// reduction, the paper's accuracy/cost knob.
func BenchmarkDumpFThreshold(b *testing.B) {
	const n, k = 32, 3
	for _, f := range []int{64, 512, 1 << 20} {
		b.Run(fmt.Sprintf("F=%d", f), func(b *testing.B) {
			o := Options{K: k, Approach: CollDedup, ChunkSize: testPage,
				F: f, Name: "bench"}
			benchDump(b, n, o, benchWorkload)
		})
	}
}

// BenchmarkDumpChunkSize sweeps the chunk size, trading dedup granularity
// against hashing and table overhead.
func BenchmarkDumpChunkSize(b *testing.B) {
	const n, k = 16, 3
	for _, cs := range []int{128, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("chunk=%d", cs), func(b *testing.B) {
			o := Options{K: k, Approach: CollDedup, ChunkSize: cs, Name: "bench"}
			benchDump(b, n, o, benchWorkload)
		})
	}
}

// BenchmarkDumpTopology compares plain and rack-aware partner selection.
func BenchmarkDumpTopology(b *testing.B) {
	const n, k = 32, 3
	topo := NewUniformTopology(n, 4)
	cases := map[string]*Topology{"flat": nil, "rack-aware": &topo}
	for name, tp := range cases {
		b.Run(name, func(b *testing.B) {
			o := Options{K: k, Approach: CollDedup, ChunkSize: testPage,
				Name: "bench", Topology: tp}
			benchDump(b, n, o, benchWorkload)
		})
	}
}

// BenchmarkRestore measures the collective restore path, without and
// with a failed node forcing remote chunk recovery.
func BenchmarkRestore(b *testing.B) {
	const n, k = 16, 3
	for _, failures := range []int{0, 1} {
		b.Run(fmt.Sprintf("failures=%d", failures), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cluster := storage.NewCluster(n)
				o := Options{K: k, Approach: CollDedup, ChunkSize: testPage, Name: "bench"}
				err := collectives.Run(n, func(c collectives.Comm) error {
					_, err := DumpOutput(c, cluster.Node(c.Rank()), benchWorkload(c.Rank()), o)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
				if failures > 0 {
					cluster.FailNodes(3)
					cluster.Replace(3)
				}
				b.StartTimer()
				err = collectives.Run(n, func(c collectives.Comm) error {
					_, err := Restore(c, cluster.Node(c.Rank()), "bench")
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
