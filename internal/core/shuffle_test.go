package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dedupcr/internal/metrics"
)

// fig2SendLoad builds the SendLoad matrix of the paper's Figure 2: six
// ranks, K=3, the first two send 100 chunks to each partner, the rest 10.
func fig2SendLoad() [][]int64 {
	loads := []int64{100, 100, 10, 10, 10, 10}
	m := make([][]int64, len(loads))
	for r, l := range loads {
		m[r] = []int64{0, l, l}
	}
	return m
}

func totalsOf(sendLoad [][]int64, k int) []int64 {
	out := make([]int64, len(sendLoad))
	for r, row := range sendLoad {
		for d := 1; d < k; d++ {
			out[r] += row[d]
		}
	}
	return out
}

// TestFigure2Example reproduces the worked example of Figure 2: naive
// partner selection yields a maximal receive size of 200 chunks, the
// load-aware shuffle lowers it to 110.
func TestFigure2Example(t *testing.T) {
	const k = 3
	sendLoad := fig2SendLoad()

	naive, err := NewPlan(IdentityShuffle(6), sendLoad, k)
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics.Max(naive.RecvBytesByRank()); got != 200 {
		t.Errorf("naive max receive = %d, paper says 200", got)
	}

	shuffled, err := NewPlan(RankShuffle(totalsOf(sendLoad, k), k), sendLoad, k)
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics.Max(shuffled.RecvBytesByRank()); got != 110 {
		t.Errorf("shuffled max receive = %d, paper says 110", got)
	}
}

func TestRankShuffleIsPermutation(t *testing.T) {
	check := func(seed int64, kRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		k := int(kRaw)%n + 1
		totals := make([]int64, n)
		for i := range totals {
			totals[i] = int64(rng.Intn(1000))
		}
		s := RankShuffle(totals, k)
		if len(s) != n {
			return false
		}
		seen := make([]bool, n)
		for _, r := range s {
			if r < 0 || r >= n || seen[r] {
				return false
			}
			seen[r] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRankShuffleInterleavesHeavyAndLight(t *testing.T) {
	// With loads 100,100,...,1,1,... and K=2 the heavy ranks must occupy
	// alternating positions.
	totals := []int64{100, 100, 100, 1, 1, 1}
	s := RankShuffle(totals, 2)
	for i := 0; i < len(s); i += 2 {
		if totals[s[i]] != 100 {
			t.Errorf("position %d holds light rank %d; want heavy", i, s[i])
		}
	}
	for i := 1; i < len(s); i += 2 {
		if totals[s[i]] != 1 {
			t.Errorf("position %d holds heavy rank %d; want light", i, s[i])
		}
	}
}

// TestStripedBeatsHeadTailOnTopHeavyLoads pins down why the default
// shuffle deviates from Algorithm 2's emission order: with many heavy and
// few light senders, head/tail emission bunches heavies at the end of the
// permutation while tier striping keeps every receiver's window mixed.
func TestStripedBeatsHeadTailOnTopHeavyLoads(t *testing.T) {
	const n, k = 24, 4
	totals := make([]int64, n)
	for i := range totals {
		totals[i] = 100 // heavy majority
	}
	for i := 0; i < n/6; i++ {
		totals[i] = 1 // few lights
	}
	sendLoad := make([][]int64, n)
	for r := range sendLoad {
		sendLoad[r] = make([]int64, k)
		for d := 1; d < k; d++ {
			sendLoad[r][d] = totals[r]
		}
	}
	maxOf := func(shuffle []int) int64 {
		plan, err := NewPlan(shuffle, sendLoad, k)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Max(plan.RecvBytesByRank())
	}
	striped := maxOf(RankShuffle(totals, k))
	headTail := maxOf(RankShuffleHeadTail(totals, k))
	if striped > headTail {
		t.Fatalf("striped shuffle (%d) worse than head/tail (%d) on top-heavy loads", striped, headTail)
	}
	// Head/tail must exhibit the bunching pathology here (all-heavy
	// windows), otherwise this test guards nothing.
	if headTail != 3*100 {
		t.Logf("note: head/tail max = %d (expected a 3-heavy window of 300)", headTail)
	}
}

func TestHeadTailMatchesFigure2(t *testing.T) {
	// The literal Algorithm 2 variant must also reproduce the paper's
	// worked example.
	sendLoad := fig2SendLoad()
	plan, err := NewPlan(RankShuffleHeadTail(totalsOf(sendLoad, 3), 3), sendLoad, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics.Max(plan.RecvBytesByRank()); got != 110 {
		t.Errorf("head/tail shuffled max receive = %d, paper says 110", got)
	}
}

func TestRankShuffleDeterministicUnderTies(t *testing.T) {
	totals := []int64{5, 5, 5, 5, 5}
	a := RankShuffle(totals, 3)
	b := RankShuffle(totals, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("shuffle not deterministic under ties")
		}
	}
}

// TestPlanWindowsTileExactly is the key invariant behind single-sided
// planning: for every receiver, the sender regions (offset, load) are
// disjoint and cover the window exactly.
func TestPlanWindowsTileExactly(t *testing.T) {
	check := func(seed int64, kRaw, nRaw uint8, shuffleOn bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 1
		k := int(kRaw)%n + 1
		sendLoad := make([][]int64, n)
		for r := range sendLoad {
			sendLoad[r] = make([]int64, k)
			for d := 1; d < k; d++ {
				sendLoad[r][d] = int64(rng.Intn(500))
			}
		}
		var shuffle []int
		if shuffleOn {
			shuffle = RankShuffle(totalsOf(sendLoad, k), k)
		} else {
			shuffle = IdentityShuffle(n)
		}
		plan, err := NewPlan(shuffle, sendLoad, k)
		if err != nil {
			return false
		}
		// Collect every region each sender writes into each receiver.
		type region struct{ start, end int64 }
		regions := make(map[int][]region)
		for r := 0; r < n; r++ {
			offs := plan.Offsets(r)
			for d := 1; d < k; d++ {
				target := plan.Partner(r, d)
				load := sendLoad[r][d]
				if load == 0 {
					continue // empty regions occupy no window space
				}
				regions[target] = append(regions[target], region{offs[d], offs[d] + load})
			}
		}
		for recv := 0; recv < n; recv++ {
			rs := regions[recv]
			sort.Slice(rs, func(i, j int) bool { return rs[i].start < rs[j].start })
			var cursor int64
			for _, reg := range rs {
				if reg.start != cursor {
					return false // gap or overlap
				}
				cursor = reg.end
			}
			if cursor != plan.WindowSize(recv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanPartnersAreDistinct(t *testing.T) {
	check := func(kRaw, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		k := int(kRaw)%n + 1
		sendLoad := make([][]int64, n)
		for r := range sendLoad {
			sendLoad[r] = make([]int64, k)
		}
		plan, err := NewPlan(IdentityShuffle(n), sendLoad, k)
		if err != nil {
			return false
		}
		for r := 0; r < n; r++ {
			seen := map[int]bool{r: true}
			for _, p := range plan.Partners(r) {
				if seen[p] {
					return false
				}
				seen[p] = true
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPlanRejectsBadInput(t *testing.T) {
	good := [][]int64{{0, 1}, {0, 2}}
	if _, err := NewPlan([]int{0, 0}, good, 2); err == nil {
		t.Error("accepted non-permutation shuffle")
	}
	if _, err := NewPlan([]int{0, 1}, good, 3); err == nil {
		t.Error("accepted K > N")
	}
	if _, err := NewPlan([]int{0, 1}, good, 0); err == nil {
		t.Error("accepted K = 0")
	}
	if _, err := NewPlan([]int{0, 1}, [][]int64{{0, 1}}, 2); err == nil {
		t.Error("accepted short SendLoad")
	}
	if _, err := NewPlan([]int{0, 1}, [][]int64{{0}, {0, 1}}, 2); err == nil {
		t.Error("accepted ragged SendLoad row")
	}
}

func TestRoundRobinShare(t *testing.T) {
	for k := 1; k <= 8; k++ {
		for d := 1; d <= k; d++ {
			var sum, maxShare, minShare int
			minShare = 1 << 30
			for idx := 0; idx < d; idx++ {
				s := roundRobinShare(k, d, idx)
				sum += s
				if s > maxShare {
					maxShare = s
				}
				if s < minShare {
					minShare = s
				}
			}
			if sum != k-d {
				t.Errorf("K=%d D=%d: shares sum to %d, want %d", k, d, sum, k-d)
			}
			if maxShare-minShare > 1 {
				t.Errorf("K=%d D=%d: shares spread %d..%d, want near-even", k, d, minShare, maxShare)
			}
		}
	}
}
