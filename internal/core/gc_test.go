package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"dedupcr/internal/collectives"
	"dedupcr/internal/storage"
)

func TestForgetReclaimsStorage(t *testing.T) {
	const n, k = 8, 3
	cluster := storage.NewCluster(n)
	buffers := make(map[string][][]byte)

	// Two checkpoints sharing their structural content (epoch-varying
	// private part), like consecutive real checkpoints.
	err := collectives.Run(n, func(c collectives.Comm) error {
		for epoch, name := range []string{"e0", "e1"} {
			// The +100*epoch offset changes the private pages between
			// epochs while the shared/structural pages stay identical —
			// the overlap profile of consecutive real checkpoints.
			buf := testBuffer(c.Rank()+100*epoch, 6, 4, 3, 2)
			o := Options{K: k, Approach: CollDedup, ChunkSize: testPage, Name: name}
			if _, err := DumpOutput(c, cluster.Node(c.Rank()), buf, o); err != nil {
				return err
			}
			if c.Rank() == 0 {
				buffers[name] = append(buffers[name], nil)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	afterBoth, _ := cluster.TotalUsage()

	// Forget the first checkpoint on every node.
	for r := 0; r < n; r++ {
		if err := Forget(cluster.Node(r), "e0", r); err != nil {
			t.Fatalf("node %d forget: %v", r, err)
		}
	}
	afterForget, _ := cluster.TotalUsage()
	if afterForget >= afterBoth {
		t.Fatalf("forget reclaimed nothing: %d -> %d bytes", afterBoth, afterForget)
	}

	// The second checkpoint must still restore byte-exactly.
	restored := make([][]byte, n)
	err = collectives.Run(n, func(c collectives.Comm) error {
		got, err := Restore(c, cluster.Node(c.Rank()), "e1")
		if err != nil {
			return err
		}
		restored[c.Rank()] = got
		want := testBuffer(c.Rank()+100, 6, 4, 3, 2)
		if !bytes.Equal(got, want) {
			return fmt.Errorf("rank %d: e1 corrupted by forgetting e0", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Double forget fails cleanly.
	if err := Forget(cluster.Node(0), "e0", 0); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("second forget = %v, want ErrNotFound", err)
	}
	// Forgetting an unknown dataset fails cleanly.
	if err := Forget(cluster.Node(0), "never-dumped", 0); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("unknown forget = %v, want ErrNotFound", err)
	}
}

func TestForgetAllCheckpointsEmptiesStores(t *testing.T) {
	const n, k = 6, 2
	cluster := storage.NewCluster(n)
	err := collectives.Run(n, func(c collectives.Comm) error {
		buf := testBuffer(c.Rank(), 4, 2, 1, 1)
		o := Options{K: k, Approach: CollDedup, ChunkSize: testPage, Name: "only"}
		_, err := DumpOutput(c, cluster.Node(c.Rank()), buf, o)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		if err := Forget(cluster.Node(r), "only", r); err != nil {
			t.Fatal(err)
		}
	}
	if bytes, chunks := cluster.TotalUsage(); chunks != 0 || bytes != 0 {
		t.Fatalf("stores still hold %d bytes in %d chunks after forgetting everything", bytes, chunks)
	}
}

func TestGCListRoundTrip(t *testing.T) {
	list := marshalFPs(nil)
	got, err := unmarshalFPs(list)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty list round trip: %v %v", got, err)
	}
	if _, err := unmarshalFPs([]byte{1, 2}); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := unmarshalFPs(append(marshalFPs(nil), 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
