package core

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"dedupcr/internal/collectives"
	"dedupcr/internal/obs"
	"dedupcr/internal/storage"
)

// TestKillBundleEndToEnd is the post-mortem acceptance path: a rank
// killed mid-reduction (the HMERGE collective) must leave a failure
// bundle on disk whose record names the failing rank and phase, whose
// timeline carries the last collective round, and which dedupstat's
// renderer (obs.RenderBundle) prints with all three.
func TestKillBundleEndToEnd(t *testing.T) {
	const n, victim = 4, 2
	prevRec := obs.SetDefault(obs.New(obs.DefaultRingSize))
	defer obs.SetDefault(prevRec)
	dir := t.TempDir()
	prevDir := obs.SetBundleDir(dir)
	defer obs.SetBundleDir(prevDir)

	cluster := storage.NewCluster(n)
	cleanDump(t, n, cluster, "ckpt-0")

	plan := collectives.FaultPlan{Faults: []collectives.Fault{
		{Kind: collectives.FaultKill, Rank: victim, Phase: "reduction", Peer: collectives.AnyRank},
	}}
	errs := runRanks(t, n, 5*time.Second, func(c collectives.Comm) error {
		fc := collectives.InjectFaults(c, plan)
		buf := testBuffer(c.Rank(), 6, 4, 3, 5)
		_, err := DumpOutputCtx(context.Background(), fc, cluster.Node(c.Rank()), buf, faultOpts("ckpt-1"))
		return err
	})
	for r := 0; r < n; r++ {
		if errs[r] == nil {
			t.Fatalf("rank %d reported success with rank %d killed in reduction", r, victim)
		}
	}

	bundles, err := obs.FindBundles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) == 0 {
		t.Fatal("no bundle written for the killed dump")
	}
	// The injected kill fires the first trigger; the survivors' own
	// collective-error and rollback triggers land inside the suppression
	// window, so the first bundle is the authoritative one.
	f, err := obs.ReadBundleFailure(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != "kill" {
		t.Errorf("failure kind %q, want %q", f.Kind, "kill")
	}
	if f.Rank != victim {
		t.Errorf("failure rank %d, want %d", f.Rank, victim)
	}
	if f.Phase != "reduction" {
		t.Errorf("failure phase %q, want %q", f.Phase, "reduction")
	}

	events, err := obs.ReadBundleEvents(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	haveColl := false
	for _, e := range events {
		if e.Kind == obs.KindColl {
			haveColl = true
			break
		}
	}
	if !haveColl {
		t.Error("bundle timeline carries no collective-round events")
	}

	var out bytes.Buffer
	if err := obs.RenderBundle(&out, bundles[0]); err != nil {
		t.Fatal(err)
	}
	rendered := out.String()
	for _, want := range []string{
		"failure:  kill",
		fmt.Sprintf("rank:     %d", victim),
		"phase:    reduction",
		"last collective round:",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered bundle missing %q:\n%s", want, rendered)
		}
	}
}
