package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dedupcr/internal/chunk"
	"dedupcr/internal/collectives"
	"dedupcr/internal/fingerprint"
	"dedupcr/internal/metrics"
	"dedupcr/internal/storage"
)

const testPage = 256 // small chunk size keeps tests fast

// page builds one deterministic page of content from a label.
func page(label string) []byte {
	seed := int64(0)
	for _, b := range []byte(label) {
		seed = seed*131 + int64(b)
	}
	buf := make([]byte, testPage)
	rand.New(rand.NewSource(seed)).Read(buf)
	return buf
}

// testBuffer builds a rank's dataset with controlled redundancy:
// `shared` pages identical on every rank, `group` pages shared within
// groups of 4 consecutive ranks, `localdup` pages each appearing twice
// within the rank, and `unique` rank-private pages.
func testBuffer(rank, shared, group, localdup, unique int) []byte {
	var buf []byte
	for i := 0; i < shared; i++ {
		buf = append(buf, page(fmt.Sprintf("shared-%d", i))...)
	}
	for i := 0; i < group; i++ {
		buf = append(buf, page(fmt.Sprintf("group-%d-%d", rank/4, i))...)
	}
	for i := 0; i < localdup; i++ {
		p := page(fmt.Sprintf("ldup-%d-%d", rank, i))
		buf = append(buf, p...)
		buf = append(buf, p...)
	}
	for i := 0; i < unique; i++ {
		buf = append(buf, page(fmt.Sprintf("uniq-%d-%d", rank, i))...)
	}
	return buf
}

// runDump executes a collective dump of the standard test workload on a
// fresh in-proc group + cluster and returns everything the assertions
// need.
func runDump(t *testing.T, n int, o Options) (*storage.Cluster, []*Result, [][]byte) {
	t.Helper()
	cluster := storage.NewCluster(n)
	results := make([]*Result, n)
	buffers := make([][]byte, n)
	var mu sync.Mutex
	err := collectives.Run(n, func(c collectives.Comm) error {
		buf := testBuffer(c.Rank(), 6, 4, 3, 2+c.Rank()%3)
		res, err := DumpOutput(c, cluster.Node(c.Rank()), buf, o)
		if err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = res
		buffers[c.Rank()] = buf
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster, results, buffers
}

func TestDumpRestoreRoundTrip(t *testing.T) {
	for _, approach := range []Approach{NoDedup, LocalDedup, CollDedup} {
		for _, k := range []int{1, 2, 3} {
			approach, k := approach, k
			t.Run(fmt.Sprintf("%v/K=%d", approach, k), func(t *testing.T) {
				const n = 8
				o := Options{K: k, Approach: approach, ChunkSize: testPage, Name: "ck"}
				cluster, _, buffers := runDump(t, n, o)
				err := collectives.Run(n, func(c collectives.Comm) error {
					got, err := Restore(c, cluster.Node(c.Rank()), "ck")
					if err != nil {
						return err
					}
					if !bytes.Equal(got, buffers[c.Rank()]) {
						return fmt.Errorf("rank %d restored %d bytes != original %d",
							c.Rank(), len(got), len(buffers[c.Rank()]))
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestDumpRejectsBadK(t *testing.T) {
	err := collectives.Run(2, func(c collectives.Comm) error {
		_, err := DumpOutput(c, storage.NewMem(), []byte("x"), Options{K: 3})
		if err == nil {
			return fmt.Errorf("K > N accepted")
		}
		_, err = DumpOutput(c, storage.NewMem(), []byte("x"), Options{K: 0})
		if err == nil {
			return fmt.Errorf("K = 0 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// holderCount maps every fingerprint of every dataset to the number of
// distinct surviving nodes storing it.
func holderCount(t *testing.T, cluster *storage.Cluster, buffers [][]byte) map[fingerprint.FP]int {
	t.Helper()
	fps := make(map[fingerprint.FP]bool)
	for _, buf := range buffers {
		for _, ch := range chunk.NewFixed(testPage).Split(buf) {
			fps[ch.FP] = true
		}
	}
	holders := make(map[fingerprint.FP]int)
	for fp := range fps {
		for r := 0; r < cluster.Size(); r++ {
			if cluster.Node(r).Failed() {
				continue
			}
			if ok, err := cluster.Node(r).HasChunk(fp); err == nil && ok {
				holders[fp]++
			}
		}
	}
	return holders
}

func TestReplicationFactorMaintained(t *testing.T) {
	const n, k = 10, 3
	for _, approach := range []Approach{NoDedup, LocalDedup, CollDedup} {
		approach := approach
		t.Run(approach.String(), func(t *testing.T) {
			o := Options{K: k, Approach: approach, ChunkSize: testPage, Name: "ck"}
			cluster, _, buffers := runDump(t, n, o)
			for fp, h := range holderCount(t, cluster, buffers) {
				switch approach {
				case NoDedup, LocalDedup:
					// Self + K-1 distinct partners; widely shared chunks
					// accumulate more holders.
					if h < k {
						t.Errorf("%v: chunk %s on %d nodes, want >= %d", approach, fp.Short(), h, k)
					}
				case CollDedup:
					// Target refinement steers extra replicas away from
					// natural holders, so the distinct-node count reaches
					// K whenever the partner sets allow it — and at this
					// group size they always do.
					if h < k {
						t.Errorf("coll-dedup: chunk %s on %d nodes, want >= %d", fp.Short(), h, k)
					}
				}
			}
		})
	}
}

func TestCollDedupStoresLess(t *testing.T) {
	const n, k = 12, 3
	usage := make(map[Approach]int64)   // physical bytes on the stores
	uniqueC := make(map[Approach]int64) // identified unique content (Fig 3a)
	rawTotal := int64(0)
	for _, approach := range []Approach{NoDedup, LocalDedup, CollDedup} {
		o := Options{K: k, Approach: approach, ChunkSize: testPage, Name: "ck"}
		cluster, results, buffers := runDump(t, n, o)
		bytes, _ := cluster.TotalUsage()
		usage[approach] = bytes
		for _, res := range results {
			uniqueC[approach] += res.Metrics.UniqueContentBytes
		}
		if approach == NoDedup {
			for _, b := range buffers {
				rawTotal += int64(len(b))
			}
		}
	}
	// Identified unique content shrinks strictly along the paper's axis.
	if uniqueC[NoDedup] != rawTotal {
		t.Errorf("no-dedup unique content = %d, want raw total %d", uniqueC[NoDedup], rawTotal)
	}
	if !(uniqueC[CollDedup] < uniqueC[LocalDedup] && uniqueC[LocalDedup] < uniqueC[NoDedup]) {
		t.Errorf("unique content ordering violated: coll=%d local=%d no=%d",
			uniqueC[CollDedup], uniqueC[LocalDedup], uniqueC[NoDedup])
	}
	// Physical usage: our stores are content addressed, so no-dedup's
	// intra-node duplicates collapse to local-dedup levels; coll-dedup
	// still strictly wins by dropping cross-node duplicates.
	if !(usage[CollDedup] < usage[LocalDedup] && usage[LocalDedup] <= usage[NoDedup]) {
		t.Fatalf("storage usage ordering violated: coll=%d local=%d no=%d",
			usage[CollDedup], usage[LocalDedup], usage[NoDedup])
	}
}

func TestDumpMetricsConservation(t *testing.T) {
	const n, k = 9, 3
	o := Options{K: k, Approach: CollDedup, ChunkSize: testPage, Name: "ck"}
	_, results, buffers := runDump(t, n, o)

	var sent, recv, sentChunks, recvChunks int64
	for r, res := range results {
		m := res.Metrics
		if m.DatasetBytes != int64(len(buffers[r])) {
			t.Errorf("rank %d DatasetBytes = %d, want %d", r, m.DatasetBytes, len(buffers[r]))
		}
		if m.HashedBytes != m.DatasetBytes {
			t.Errorf("rank %d hashed %d of %d bytes", r, m.HashedBytes, m.DatasetBytes)
		}
		if m.LocalUniqueChunks > m.TotalChunks {
			t.Errorf("rank %d more unique than total chunks", r)
		}
		// Window = received payload + 4-byte record headers.
		if m.WindowBytes != m.RecvBytes+4*int64(m.RecvChunks) {
			t.Errorf("rank %d window %d != recv %d + headers %d",
				r, m.WindowBytes, m.RecvBytes, 4*m.RecvChunks)
		}
		sent += m.SentBytes
		recv += m.RecvBytes
		sentChunks += int64(m.SentChunks)
		recvChunks += int64(m.RecvChunks)
	}
	if sent != recv {
		t.Errorf("sent %d bytes but received %d", sent, recv)
	}
	if sentChunks != recvChunks {
		t.Errorf("sent %d chunks but received %d", sentChunks, recvChunks)
	}
}

func TestPlanIdenticalOnAllRanks(t *testing.T) {
	const n, k = 7, 3
	o := Options{K: k, Approach: CollDedup, ChunkSize: testPage, Name: "ck"}
	_, results, _ := runDump(t, n, o)
	ref := results[0].Plan
	for r := 1; r < n; r++ {
		p := results[r].Plan
		for i := range ref.Shuffle {
			if p.Shuffle[i] != ref.Shuffle[i] {
				t.Fatalf("rank %d computed different shuffle", r)
			}
		}
		for i := range ref.SendLoad {
			for d := range ref.SendLoad[i] {
				if p.SendLoad[i][d] != ref.SendLoad[i][d] {
					t.Fatalf("rank %d computed different SendLoad", r)
				}
			}
		}
	}
}

func TestHintsPointToActualHolders(t *testing.T) {
	const n, k = 10, 3
	o := Options{K: k, Approach: CollDedup, ChunkSize: testPage, Name: "ck"}
	cluster, _, _ := runDump(t, n, o)
	for r := 0; r < n; r++ {
		blob, err := cluster.Node(r).GetBlob(metaName("ck", r))
		if err != nil {
			t.Fatalf("rank %d metadata missing: %v", r, err)
		}
		var meta RestoreMeta
		if err := meta.UnmarshalBinary(blob); err != nil {
			t.Fatal(err)
		}
		for fp, ranks := range meta.Hints {
			if len(ranks) == 0 {
				t.Errorf("rank %d: empty hint for %s", r, fp.Short())
			}
			for _, hr := range ranks {
				ok, err := cluster.Node(int(hr)).HasChunk(fp)
				if err != nil || !ok {
					t.Errorf("rank %d: hint says rank %d holds %s, but it does not", r, hr, fp.Short())
				}
			}
		}
	}
}

func TestRestoreAfterNodeFailure(t *testing.T) {
	const n, k = 10, 3
	o := Options{K: k, Approach: CollDedup, ChunkSize: testPage, Name: "ck"}
	cluster, _, buffers := runDump(t, n, o)

	// Lose one node (K=3 tolerates up to 2 in theory; see DESIGN.md on
	// designated/partner overlap), replace it with blank storage, and
	// restore everywhere — including on the replaced node.
	failed := 4
	cluster.FailNodes(failed)
	cluster.Replace(failed)

	err := collectives.Run(n, func(c collectives.Comm) error {
		got, err := Restore(c, cluster.Node(c.Rank()), "ck")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, buffers[c.Rank()]) {
			return fmt.Errorf("rank %d restored wrong content after failure", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// The replaced node must have been re-provisioned with its chunks.
	bytesUsed, chunks := cluster.Node(failed).Usage()
	if bytesUsed == 0 || chunks == 0 {
		t.Error("replaced node was not re-provisioned during restore")
	}
}

func TestRestoreAfterFailureAllApproaches(t *testing.T) {
	for _, approach := range []Approach{NoDedup, LocalDedup, CollDedup} {
		approach := approach
		t.Run(approach.String(), func(t *testing.T) {
			const n, k = 8, 3
			o := Options{K: k, Approach: approach, ChunkSize: testPage, Name: "ck"}
			cluster, _, buffers := runDump(t, n, o)
			cluster.FailNodes(2)
			cluster.Replace(2)
			err := collectives.Run(n, func(c collectives.Comm) error {
				got, err := Restore(c, cluster.Node(c.Rank()), "ck")
				if err != nil {
					return err
				}
				if !bytes.Equal(got, buffers[c.Rank()]) {
					return fmt.Errorf("rank %d restored wrong content", c.Rank())
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConsecutiveDumps(t *testing.T) {
	const n, k = 6, 2
	cluster := storage.NewCluster(n)
	var mu sync.Mutex
	buffers := make(map[string][][]byte)
	err := collectives.Run(n, func(c collectives.Comm) error {
		for step := 0; step < 3; step++ {
			name := fmt.Sprintf("ck-%d", step)
			buf := testBuffer(c.Rank()+step*100, 4, 2, 1, 2)
			o := Options{K: k, Approach: CollDedup, ChunkSize: testPage, Name: name}
			if _, err := DumpOutput(c, cluster.Node(c.Rank()), buf, o); err != nil {
				return err
			}
			mu.Lock()
			if buffers[name] == nil {
				buffers[name] = make([][]byte, n)
			}
			buffers[name][c.Rank()] = buf
			mu.Unlock()
		}
		// Restore both an old and the newest checkpoint.
		for _, name := range []string{"ck-0", "ck-2"} {
			got, err := Restore(c, cluster.Node(c.Rank()), name)
			if err != nil {
				return err
			}
			mu.Lock()
			want := buffers[name][c.Rank()]
			mu.Unlock()
			if !bytes.Equal(got, want) {
				return fmt.Errorf("rank %d: %s restored wrong content", c.Rank(), name)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDumpUnevenBufferSizes(t *testing.T) {
	// Ranks write different amounts, including one empty dataset and one
	// not a multiple of the chunk size — all allowed by the paper.
	const n, k = 5, 3
	cluster := storage.NewCluster(n)
	sizes := []int{0, testPage*3 + 17, testPage, testPage * 10, 1}
	buffers := make([][]byte, n)
	var mu sync.Mutex
	err := collectives.Run(n, func(c collectives.Comm) error {
		buf := make([]byte, sizes[c.Rank()])
		rand.New(rand.NewSource(int64(c.Rank()))).Read(buf)
		o := Options{K: k, Approach: CollDedup, ChunkSize: testPage, Name: "ck"}
		if _, err := DumpOutput(c, cluster.Node(c.Rank()), buf, o); err != nil {
			return err
		}
		mu.Lock()
		buffers[c.Rank()] = buf
		mu.Unlock()
		got, err := Restore(c, cluster.Node(c.Rank()), "ck")
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if !bytes.Equal(got, buffers[c.Rank()]) {
			return fmt.Errorf("rank %d round trip failed for %d bytes", c.Rank(), sizes[c.Rank()])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDumpContentDefinedChunking(t *testing.T) {
	// The CDC alternative must round-trip and still deduplicate the
	// shared content (cut points are content-derived, so shared regions
	// produce identical chunks regardless of their offset per rank).
	const n, k = 6, 3
	cluster := storage.NewCluster(n)
	buffers := make([][]byte, n)
	results := make([]*Result, n)
	var mu sync.Mutex
	err := collectives.Run(n, func(c collectives.Comm) error {
		// Shared content preceded by a rank-specific prefix of varying
		// length: fixed-size chunking would see no cross-rank duplicates
		// at all; CDC must.
		prefix := bytes.Repeat([]byte{byte(c.Rank())}, 37*(c.Rank()+1))
		buf := append(prefix, testBuffer(0, 12, 0, 0, 0)...)
		o := Options{K: k, Approach: CollDedup, ChunkSize: 128,
			ContentDefined: true, Name: "cdc"}
		res, err := DumpOutput(c, cluster.Node(c.Rank()), buf, o)
		if err != nil {
			return err
		}
		mu.Lock()
		buffers[c.Rank()] = buf
		results[c.Rank()] = res
		mu.Unlock()
		got, err := Restore(c, cluster.Node(c.Rank()), "cdc")
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if !bytes.Equal(got, buffers[c.Rank()]) {
			return fmt.Errorf("rank %d CDC round trip failed", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-rank dedup must have fired despite the shifted offsets.
	var unique int64
	var raw int64
	for r, res := range results {
		unique += res.Metrics.UniqueContentBytes
		raw += int64(len(buffers[r]))
	}
	if unique*2 > raw {
		t.Errorf("CDC identified only %d of %d bytes as shared; shift resistance broken", raw-unique, raw)
	}
}

func TestShuffleReducesMaxReceive(t *testing.T) {
	// With an imbalanced workload, the shuffled plan's max receive size
	// must not exceed the naive plan's.
	const n, k = 12, 4
	imbalancedBuffer := func(rank int) []byte {
		unique := 1
		if rank < 2 {
			unique = 20 // two heavy ranks
		}
		return testBuffer(rank, 8, 0, 0, unique)
	}
	maxRecv := make(map[bool]int64)
	for _, shuffleOn := range []bool{false, true} {
		cluster := storage.NewCluster(n)
		var mu sync.Mutex
		var plan *Plan
		err := collectives.Run(n, func(c collectives.Comm) error {
			o := Options{K: k, Approach: CollDedup, ChunkSize: testPage,
				Shuffle: Bool(shuffleOn), Name: "ck"}
			res, err := DumpOutput(c, cluster.Node(c.Rank()), imbalancedBuffer(c.Rank()), o)
			if err != nil {
				return err
			}
			mu.Lock()
			plan = res.Plan
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		maxRecv[shuffleOn] = metrics.Max(plan.RecvBytesByRank())
	}
	if maxRecv[true] > maxRecv[false] {
		t.Fatalf("shuffle increased max receive: %d > %d", maxRecv[true], maxRecv[false])
	}
}
