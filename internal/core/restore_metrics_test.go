package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dedupcr/internal/collectives"
	"dedupcr/internal/storage"
)

// runRestoreOutput restores "name" on every rank of an existing cluster
// and returns the per-rank results, failing on any content mismatch.
func runRestoreOutput(t *testing.T, cluster *storage.Cluster, n int, name string, buffers [][]byte) []*RestoreResult {
	t.Helper()
	results := make([]*RestoreResult, n)
	var mu sync.Mutex
	err := collectives.Run(n, func(c collectives.Comm) error {
		res, err := RestoreOutput(c, cluster.Node(c.Rank()), name, nil)
		if err != nil {
			return err
		}
		if !bytes.Equal(res.Data, buffers[c.Rank()]) {
			return fmt.Errorf("rank %d restored wrong content", c.Rank())
		}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// TestRestoreMetricsAccounting pins the restore instrumentation's
// internal consistency on a healthy cluster: every recipe position is
// accounted to exactly one source, byte totals reconcile, and the
// run-length walk covers the whole recipe. (Even without failures,
// coll-dedup restores fetch the shared chunks designated to other
// holders — the accounting must hold on both sides of that split.)
func TestRestoreMetricsAccounting(t *testing.T) {
	const n, k = 8, 3
	o := Options{K: k, Approach: CollDedup, ChunkSize: testPage, Name: "ck"}
	cluster, _, buffers := runDump(t, n, o)

	for r, res := range runRestoreOutput(t, cluster, n, "ck", buffers) {
		m := res.Metrics
		if m.Rank != r {
			t.Errorf("rank %d: metrics carry rank %d", r, m.Rank)
		}
		if m.LogicalBytes != int64(len(buffers[r])) {
			t.Errorf("rank %d: logical bytes %d, want %d", r, m.LogicalBytes, len(buffers[r]))
		}
		if m.LocalChunks+m.FetchedChunks != m.TotalChunks {
			t.Errorf("rank %d: %d local + %d fetched != %d total chunks",
				r, m.LocalChunks, m.FetchedChunks, m.TotalChunks)
		}
		if m.LocalBytes+m.FetchedBytes != m.LogicalBytes {
			t.Errorf("rank %d: %d local + %d fetched bytes != %d logical",
				r, m.LocalBytes, m.FetchedBytes, m.LogicalBytes)
		}
		if m.UniqueChunks <= 0 || m.UniqueChunks > m.TotalChunks {
			t.Errorf("rank %d: unique chunks %d out of range (total %d)", r, m.UniqueChunks, m.TotalChunks)
		}
		// Runs partition the recipe walk: their lengths sum to TotalChunks.
		if got := m.RunLengths.Sum(); got != int64(m.TotalChunks) {
			t.Errorf("rank %d: run lengths sum to %d, want %d", r, got, m.TotalChunks)
		}
		if m.LargestRun <= 0 || m.LargestRun > int64(m.TotalChunks) {
			t.Errorf("rank %d: largest run %d out of range", r, m.LargestRun)
		}
		var peerSum int64
		for _, b := range m.PeerFetchBytes {
			peerSum += b
		}
		if peerSum != m.FetchedBytes {
			t.Errorf("rank %d: peer matrix sums to %d, fetched %d", r, peerSum, m.FetchedBytes)
		}
		if m.ObjectsTouched <= 0 {
			t.Errorf("rank %d: no objects touched", r)
		}
		if m.Phases.Total <= 0 || m.Phases.Assemble <= 0 {
			t.Errorf("rank %d: phases not measured: %+v", r, m.Phases)
		}
		if m.Phases.Fetch > m.Phases.Assemble {
			t.Errorf("rank %d: fetch %v exceeds containing assemble %v", r, m.Phases.Fetch, m.Phases.Assemble)
		}
		if m.BarrierExit.IsZero() {
			t.Errorf("rank %d: barrier exit not stamped", r)
		}
		if m.StoreReadLatency.Count() == 0 {
			t.Errorf("rank %d: local reads happened but read-latency histogram is empty", r)
		}
	}
}

// TestRestoreMetricsAfterNodeFailure drives the fetch path: a wiped node
// restores everything remotely, so its metrics must show fetches, a
// recovered metadata blob, distinct sources and latency samples, while
// its read amplification reaches 1.0.
func TestRestoreMetricsAfterNodeFailure(t *testing.T) {
	const n, k = 10, 3
	o := Options{K: k, Approach: CollDedup, ChunkSize: testPage, Name: "ck"}
	cluster, _, buffers := runDump(t, n, o)
	failed := 4
	cluster.FailNodes(failed)
	cluster.Replace(failed)

	results := runRestoreOutput(t, cluster, n, "ck", buffers)
	m := results[failed].Metrics
	if m.MetaFetches != 1 {
		t.Errorf("replaced node: %d meta fetches, want 1", m.MetaFetches)
	}
	if m.LocalChunks != 0 {
		// The wiped store starts empty, but duplicate recipe positions may
		// hit chunks re-provisioned earlier in this same walk.
		t.Logf("replaced node: %d local chunk reads (re-provisioned duplicates)", m.LocalChunks)
	}
	if m.FetchedChunks == 0 || m.FetchedBytes == 0 {
		t.Fatalf("replaced node shows no fetches: %+v", m)
	}
	// Every unique chunk must travel once; duplicate recipe positions
	// then hit the re-provisioned local copy, so amplification lands
	// below 1.0 exactly by the intra-rank duplicate share.
	if m.FetchedChunks < m.UniqueChunks {
		t.Errorf("replaced node: fetched %d < %d unique chunks", m.FetchedChunks, m.UniqueChunks)
	}
	if got := m.ReadAmplificationBytes(); got <= 0.5 {
		t.Errorf("replaced node: read amplification %.3f, want near 1.0", got)
	}
	if m.SourceRanks == 0 {
		t.Error("replaced node: no source ranks recorded")
	}
	if m.FetchRequests < int64(m.FetchedChunks) {
		t.Errorf("fetch requests %d < fetched chunks %d", m.FetchRequests, m.FetchedChunks)
	}
	if m.FetchLatency.Count() == 0 {
		t.Error("fetches happened but fetch-latency histogram is empty")
	}
	if m.Phases.Fetch == 0 {
		t.Error("fetch phase time not attributed")
	}

	// Surviving ranks kept their metadata, and while coll-dedup makes
	// them fetch the shared chunks designated to other holders, none
	// should come close to the wiped node's fetch-everything cost.
	for r, res := range results {
		if r == failed {
			continue
		}
		sm := res.Metrics
		if sm.MetaFetches != 0 {
			t.Errorf("surviving rank %d fetched metadata — local copy intact", r)
		}
		if got := sm.ReadAmplificationBytes(); got >= m.ReadAmplificationBytes() {
			t.Errorf("surviving rank %d: read amplification %.3f not below wiped node's %.3f",
				r, got, m.ReadAmplificationBytes())
		}
	}
}
