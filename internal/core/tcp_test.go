package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dedupcr/internal/collectives"
	"dedupcr/internal/storage"
)

// TestDumpRestoreOverTCP runs the full coll-dedup pipeline — fingerprint
// allreduce, load allgathers, window puts, restore RPCs — over the real
// socket transport.
func TestDumpRestoreOverTCP(t *testing.T) {
	const n, k = 5, 3
	comms, err := collectives.StartLocalTCP(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	cluster := storage.NewCluster(n)

	run := func(body func(c collectives.Comm) error) {
		t.Helper()
		errs := make([]error, n)
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				errs[rank] = body(comms[rank])
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
	}

	buffers := make([][]byte, n)
	var mu sync.Mutex
	run(func(c collectives.Comm) error {
		buf := testBuffer(c.Rank(), 6, 4, 3, 2)
		o := Options{K: k, Approach: CollDedup, ChunkSize: testPage, Name: "tcp-ck"}
		if _, err := DumpOutput(c, cluster.Node(c.Rank()), buf, o); err != nil {
			return err
		}
		mu.Lock()
		buffers[c.Rank()] = buf
		mu.Unlock()
		return nil
	})

	// Fail a node, then restore everything over sockets.
	cluster.FailNodes(2)
	cluster.Replace(2)
	run(func(c collectives.Comm) error {
		got, err := Restore(c, cluster.Node(c.Rank()), "tcp-ck")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, buffers[c.Rank()]) {
			return fmt.Errorf("restore mismatch over TCP")
		}
		return nil
	})
}
