// Package core implements the paper's contribution: the DUMP_OUTPUT
// collective write primitive that co-optimizes interprocess deduplication
// and partner replication (coll-dedup), plus the two baselines it is
// evaluated against (no-dedup and local-dedup) and the restore path.
package core

import "fmt"

// RankShuffle computes the load-aware rank permutation of Algorithm 2's
// goal: interleave heavy senders with light ones so the per-node receive
// load evens out. Ranks are sorted by descending total send load, split
// into K load tiers, and laid out column-major, so every window of K
// consecutive shuffled positions — exactly the partner neighbourhood of
// one receiver — contains one rank of each tier. All ranks compute the
// same shuffle from the allgathered SendLoad matrix, so no extra
// agreement round is needed.
//
// totals[r] is rank r's total send load (bytes); the returned permutation
// maps shuffled position -> rank.
//
// This tier-striped interleave reproduces the paper's Figure 2 worked
// example (max receive 200 -> 110, see TestFigure2Example) and, unlike
// the literal head/tail emission of Algorithm 2 (kept as
// RankShuffleHeadTail), does not bunch leftover heavy ranks together when
// heavies outnumber lights — see DESIGN.md §5.
func RankShuffle(totals []int64, k int) []int {
	n := len(totals)
	idx := sortRanksByLoad(totals)
	if k < 2 {
		return idx
	}
	stride := (n + k - 1) / k
	shuffle := make([]int, 0, n)
	for r := 0; r < stride; r++ {
		for c := 0; c < k; c++ {
			if i := c*stride + r; i < n {
				shuffle = append(shuffle, idx[i])
			}
		}
	}
	return shuffle
}

// RankShuffleHeadTail is the literal emission order of the paper's
// Algorithm 2 (with the intended tail-cursor semantics; the printed
// pseudocode never advances it): one heaviest sender followed by up to
// K-1 lightest, repeated. It balances well when a few heavy ranks stand
// out but degrades when heavy ranks are the majority; RankShuffle is the
// default, this variant backs the ablation benchmark.
func RankShuffleHeadTail(totals []int64, k int) []int {
	n := len(totals)
	// Descending by load; ties by rank for determinism across ranks.
	idx := sortRanksByLoad(totals)
	shuffle := make([]int, 0, n)
	head, tail := 0, n-1
	for head <= tail {
		shuffle = append(shuffle, idx[head])
		head++
		for j := 1; j < k && head <= tail; j++ {
			shuffle = append(shuffle, idx[tail])
			tail--
		}
	}
	return shuffle
}

// SelectShuffle picks the rank permutation a dump uses, from normalized
// options: rack-aware when a topology is given, the load-aware tier
// interleave of Algorithm 2 when shuffling is on, identity otherwise.
// totals[r] is rank r's total send load in bytes.
func SelectShuffle(totals []int64, o Options) []int {
	switch {
	case *o.Shuffle && o.Topology != nil:
		return RackAwareShuffle(totals, o.K, *o.Topology)
	case *o.Shuffle:
		return RankShuffle(totals, o.K)
	default:
		return IdentityShuffle(len(totals))
	}
}

// IdentityShuffle returns the identity permutation, used when load-aware
// partner selection is disabled (the paper's coll-no-shuffle setting and
// both baselines).
func IdentityShuffle(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// Plan is the fully determined communication schedule of one collective
// dump, derived from globally shared knowledge only (the shuffle and the
// SendLoad matrix), so every rank computes identical plans without any
// extra negotiation — the property that enables single-sided puts.
type Plan struct {
	// K is the replication factor; each rank has K-1 partners.
	K int
	// Shuffle maps shuffled position -> rank.
	Shuffle []int
	// Pos maps rank -> shuffled position (inverse of Shuffle).
	Pos []int
	// SendLoad[r][d] is the byte load rank r pushes to its d-th partner
	// (d=0 is rank r's local store load and takes no network transfer).
	SendLoad [][]int64
}

// NewPlan validates and assembles a plan. Every row of sendLoad must have
// exactly k entries.
func NewPlan(shuffle []int, sendLoad [][]int64, k int) (*Plan, error) {
	n := len(shuffle)
	if len(sendLoad) != n {
		return nil, fmt.Errorf("core: SendLoad has %d rows for %d ranks", len(sendLoad), n)
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("core: replication factor %d out of range [1,%d]", k, n)
	}
	pos := make([]int, n)
	seen := make([]bool, n)
	for p, r := range shuffle {
		if r < 0 || r >= n || seen[r] {
			return nil, fmt.Errorf("core: shuffle is not a permutation at position %d (rank %d)", p, r)
		}
		seen[r] = true
		pos[r] = p
	}
	for r, row := range sendLoad {
		if len(row) != k {
			return nil, fmt.Errorf("core: SendLoad row %d has %d entries, want %d", r, len(row), k)
		}
	}
	return &Plan{K: k, Shuffle: shuffle, Pos: pos, SendLoad: sendLoad}, nil
}

// Partner returns the rank of the d-th partner (1 <= d <= K-1) of rank r:
// the rank d positions after r in the shuffled order.
func (p *Plan) Partner(r, d int) int {
	n := len(p.Shuffle)
	return p.Shuffle[(p.Pos[r]+d)%n]
}

// Partners returns all K-1 partner ranks of r in order.
func (p *Plan) Partners(r int) []int {
	out := make([]int, 0, p.K-1)
	for d := 1; d < p.K; d++ {
		out = append(out, p.Partner(r, d))
	}
	return out
}

// Offsets implements Algorithm 3 generalized to any K: the byte offset of
// rank r's region inside the receive window of each of its partners.
//
// The window of the receiver at shuffled position q is laid out as the
// concatenation of the regions of its senders in distance order: first
// the sender one position behind (its partner-1 traffic), then two
// behind, and so on — so rank r, which is j positions behind partner j,
// starts after the regions of the j-1 ranks between them.
func (p *Plan) Offsets(r int) []int64 {
	n := len(p.Shuffle)
	out := make([]int64, p.K) // out[0] unused (local store)
	for j := 1; j < p.K; j++ {
		q := (p.Pos[r] + j) % n // partner position
		var off int64
		for m := 1; m < j; m++ {
			sender := p.Shuffle[(q-m+n)%n]
			off += p.SendLoad[sender][m]
		}
		out[j] = off
	}
	return out
}

// WindowSize returns the number of bytes rank r will receive: the sum of
// the loads its K-1 senders direct at it.
func (p *Plan) WindowSize(r int) int64 {
	n := len(p.Shuffle)
	var size int64
	for m := 1; m < p.K; m++ {
		sender := p.Shuffle[(p.Pos[r]-m+n)%n]
		size += p.SendLoad[sender][m]
	}
	return size
}

// RecvBytesByRank returns the expected receive size of every rank, the
// quantity Figures 4(c)/5(c) compare with and without shuffling.
func (p *Plan) RecvBytesByRank() []int64 {
	out := make([]int64, len(p.Shuffle))
	for r := range out {
		out[r] = p.WindowSize(r)
	}
	return out
}

// TotalSend returns rank r's total outgoing bytes.
func (p *Plan) TotalSend(r int) int64 {
	var s int64
	for d := 1; d < p.K; d++ {
		s += p.SendLoad[r][d]
	}
	return s
}
