package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dedupcr/internal/collectives"
	"dedupcr/internal/fetch"
	"dedupcr/internal/fingerprint"
	"dedupcr/internal/metrics"
	"dedupcr/internal/obs"
	"dedupcr/internal/storage"
	"dedupcr/internal/trace"
)

// fetchClass is the fetch-service protocol class of plain restores.
const fetchClass fetch.Class = 0

// RestoreResult carries the reassembled buffer and the rank's restore
// instrumentation — the read-side twin of Result.
type RestoreResult struct {
	Data    []byte
	Metrics metrics.Restore
}

// Restore is the collective inverse of DumpOutput: every rank calls it
// and receives back the byte-exact buffer it dumped under name. Chunks or
// metadata missing from the local store (after a node failure and
// replacement) are pulled from peers: first the designated ranks recorded
// in the restore hints, then the neighbour metadata replicas, then a
// linear sweep as a last resort. Recovered chunks are re-stored locally,
// so a restore also re-provisions a replaced node.
//
// Restore succeeds as long as at most K-1 nodes were lost, the guarantee
// the replication factor buys.
func Restore(c collectives.Comm, store storage.Store, name string) ([]byte, error) {
	return RestoreWithTrace(c, store, name, nil)
}

// RestoreCtx is Restore under a context: cancelling ctx aborts the
// collective restore on this rank and disseminates the abort, unblocking
// every rank (the fetch service and completion barrier otherwise wait for
// the whole group). Like DumpOutputCtx, any mid-restore failure aborts
// the group and surfaces on every survivor as a *collectives.CollectiveError;
// the restore only reads and re-provisions, so no rollback is needed.
func RestoreCtx(ctx context.Context, c collectives.Comm, store storage.Store, name string) ([]byte, error) {
	return RestoreCtxWithTrace(ctx, c, store, name, nil)
}

// RestoreCtxWithTrace is RestoreCtx with per-phase span recording.
func RestoreCtxWithTrace(ctx context.Context, c collectives.Comm, store storage.Store, name string, rec *trace.Recorder) ([]byte, error) {
	res, err := RestoreOutputCtx(ctx, c, store, name, rec)
	if err != nil {
		return nil, err
	}
	return res.Data, nil
}

// RestoreWithTrace is Restore with per-phase span recording. A nil
// recorder behaves exactly like Restore.
func RestoreWithTrace(c collectives.Comm, store storage.Store, name string, rec *trace.Recorder) ([]byte, error) {
	res, err := RestoreOutput(c, store, name, rec)
	if err != nil {
		return nil, err
	}
	return res.Data, nil
}

// RestoreOutputCtx is RestoreOutput under a context (see RestoreCtx for
// the abort semantics).
func RestoreOutputCtx(ctx context.Context, c collectives.Comm, store storage.Store, name string, rec *trace.Recorder) (*RestoreResult, error) {
	if ctx != nil && ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	stop := collectives.WatchContext(ctx, c)
	defer stop()
	res, err := RestoreOutput(c, store, name, rec)
	if err != nil {
		return nil, failCollective(c, err, "restore")
	}
	return res, nil
}

// RestoreOutput is the fully instrumented collective restore: it returns
// the reassembled buffer together with the rank's metrics.Restore —
// per-phase wall times, read amplification, fragmentation and locality
// statistics, per-peer fetch traffic and read-latency histograms. The
// legacy Restore* entry points are thin wrappers discarding the metrics.
func RestoreOutput(c collectives.Comm, store storage.Store, name string, rec *trace.Recorder) (*RestoreResult, error) {
	me, n := c.Rank(), c.Size()
	restoreStart := time.Now()
	m := metrics.Restore{Rank: me, RunLengths: metrics.NewHistogram()}
	restoreSpan := rec.Begin("restore").Arg("dataset", name)
	defer restoreSpan.End()
	// NotePhase labels the goroutine per phase for CPU profiles; drop the
	// last label once the pipeline is done.
	defer obs.ClearPhaseLabel()

	// Local reads go through a fresh Timed wrapper so the restore's
	// read-latency histogram covers exactly this restore. The fetch
	// server answers peers from the raw store: peer-serving reads are the
	// peers' fetch cost, not this rank's local read path.
	timed := storage.NewTimed(store)
	fs := fetch.NewStats(n)
	srv := fetch.Serve(c, store, fetchClass)

	// Publish each restore phase to the transport, mirroring the dump
	// pipeline: failures get attributed to the phase they surfaced in and
	// phase-scoped fault injection can target restores too.
	collectives.NotePhase(c, "restore-meta")
	metaSpan := rec.Begin("load-meta")
	phaseStart := time.Now()
	meta, metaFetched, err := loadMeta(c, timed, fs, name)
	m.Phases.Meta = time.Since(phaseStart)
	metaSpan.End()
	if err != nil {
		srv.Stop()
		return nil, fmt.Errorf("rank %d: %w", me, err)
	}
	localBlobReads := 0 // successful local blob reads (meta, gc list)
	if metaFetched {
		m.MetaFetches = 1
	} else {
		localBlobReads++
	}
	m.TotalChunks = meta.Recipe.Len()
	m.UniqueChunks = len(meta.Recipe.Unique())

	// The recipe walk is sequential (Assemble calls lookup per position
	// on one goroutine), so a running same-source counter measures
	// sequential locality exactly: a run ends whenever the serving source
	// changes (local store vs. one particular peer).
	localFPs := make(map[fingerprint.FP]bool)
	const noSource = -2 // distinct from local (-1) and any peer rank
	curSource, curRun := noSource, int64(0)
	endRun := func() {
		if curRun > 0 {
			m.RunLengths.Record(curRun)
			if curRun > m.LargestRun {
				m.LargestRun = curRun
			}
		}
		curRun = 0
	}
	note := func(source int) {
		if source != curSource {
			endRun()
			curSource = source
		}
		curRun++
	}

	var cached []fingerprint.FP
	collectives.NotePhase(c, "assemble")
	assembleSpan := rec.Begin("assemble")
	phaseStart = time.Now()
	buf, err := meta.Recipe.Assemble(func(fp fingerprint.FP) ([]byte, error) {
		if data, err := timed.GetChunk(fp); err == nil {
			m.LocalChunks++
			m.LocalBytes += int64(len(data))
			localFPs[fp] = true
			note(-1)
			return data, nil
		}
		data, peer, err := fetchChunk(c, meta, fs, fp)
		if err != nil {
			return nil, err
		}
		m.FetchedChunks++
		m.FetchedBytes += int64(len(data))
		note(peer)
		// Re-provision the local store with the recovered chunk.
		if err := timed.PutChunk(fp, data); err != nil && !errors.Is(err, storage.ErrFailed) {
			return nil, err
		}
		cached = append(cached, fp)
		return data, nil
	})
	endRun()
	m.Phases.Assemble = time.Since(phaseStart)
	assembleSpan.Arg("fetched-chunks", fmt.Sprint(len(cached))).End()
	if err != nil {
		srv.Stop()
		return nil, fmt.Errorf("rank %d assemble %q: %w", me, name, err)
	}
	m.LogicalBytes = int64(len(buf))

	collectives.NotePhase(c, "restore-commit")
	commitSpan := rec.Begin("commit")
	phaseStart = time.Now()
	// The re-provisioned references belong to this dataset: fold them
	// into its reclamation list so a later Forget releases them too.
	if len(cached) > 0 {
		refs := cached
		if blob, gerr := timed.GetBlob(gcName(name, me)); gerr == nil {
			localBlobReads++
			if prev, perr := unmarshalFPs(blob); perr == nil {
				refs = append(prev, cached...)
			}
		}
		if err := timed.PutBlob(gcName(name, me), marshalFPs(refs)); err != nil && !errors.Is(err, storage.ErrFailed) {
			srv.Stop()
			return nil, err
		}
	}
	// Re-persist the metadata locally so future restores are local again.
	if blob, merr := meta.MarshalBinary(); merr == nil {
		if err := timed.PutBlob(metaName(name, me), blob); err != nil && !errors.Is(err, storage.ErrFailed) {
			srv.Stop()
			return nil, err
		}
	}
	// Best-effort durability for the re-provisioned chunks and metadata
	// on commit-aware engines: losing them to a crash only costs a
	// re-fetch on the next restore, so errors don't fail the restore.
	_ = storage.Commit(timed)
	m.Phases.Commit = time.Since(phaseStart)
	commitSpan.End()

	// All ranks keep serving until everyone has finished assembling.
	collectives.NotePhase(c, "restore-barrier")
	barrierSpan := rec.Begin("barrier")
	phaseStart = time.Now()
	err = collectives.Barrier(c)
	m.Phases.Barrier = time.Since(phaseStart)
	barrierSpan.End()
	if err != nil {
		srv.Stop()
		return nil, fmt.Errorf("rank %d restore barrier: %w", me, err)
	}
	srv.Stop()

	// The completion barrier's exit stamp doubles as this rank's wall-clock
	// anchor for cross-rank clock-offset estimation (telemetry plane).
	if st := c.Stats(); !st.LastBarrierExit.IsZero() {
		m.BarrierExit = st.LastBarrierExit
	} else {
		m.BarrierExit = time.Now()
	}
	m.Phases.Total = time.Since(restoreStart)
	finishRestoreMetrics(&m, fs, timed, len(localFPs)+localBlobReads)
	restoreSpan.Arg("read-amp-bytes", fmt.Sprintf("%.3f", m.ReadAmplificationBytes()))
	return &RestoreResult{Data: buf, Metrics: m}, nil
}

// finishRestoreMetrics folds the fetch-client and timed-store
// instrumentation into m: per-peer traffic, request/miss counts, fetch
// latency (whose sum is the Fetch phase — time spent inside remote RPCs
// during assembly), the local read-latency histogram and the
// distinct-objects count. Shared by the plain and hybrid restore paths.
func finishRestoreMetrics(m *metrics.Restore, fs *fetch.Stats, timed *storage.Timed, objectsTouched int) {
	m.ObjectsTouched = objectsTouched
	m.FetchRequests = fs.Requests()
	m.FetchMisses = fs.Misses()
	m.PeerFetchChunks = fs.PeerChunks()
	m.PeerFetchBytes = fs.PeerBytes()
	m.SourceRanks = fs.SourceRanks()
	m.FetchLatency = fs.Latency()
	m.Phases.Fetch = time.Duration(m.FetchLatency.Sum())
	if timed.ReadLatency().Count() > 0 {
		m.StoreReadLatency = timed.ReadLatency()
	}
}

// loadMeta retrieves this rank's RestoreMeta: locally if possible,
// otherwise from the peers holding a replica (the naive neighbours at
// dump time; unknown K means we sweep outward until found). The bool
// reports whether the blob had to come from a peer.
func loadMeta(c collectives.Comm, store storage.Store, fs *fetch.Stats, name string) (*RestoreMeta, bool, error) {
	me, n := c.Rank(), c.Size()
	blobName := metaName(name, me)
	fetched := false
	blob, err := store.GetBlob(blobName)
	if err != nil {
		for d := 1; d < n; d++ {
			peer := (me + d) % n
			data, ok, rerr := fs.Blob(c, fetchClass, peer, blobName)
			if rerr != nil {
				return nil, false, rerr
			}
			if ok {
				blob, fetched = data, true
				break
			}
		}
		if blob == nil {
			return nil, false, fmt.Errorf("restore metadata %q unrecoverable", blobName)
		}
	}
	meta := new(RestoreMeta)
	if err := meta.UnmarshalBinary(blob); err != nil {
		return nil, false, fmt.Errorf("decode restore metadata %q: %w", blobName, err)
	}
	return meta, fetched, nil
}

// fetchChunk pulls fp from peers: designated ranks first (the hint path),
// then every other rank. It reports which peer served the chunk.
func fetchChunk(c collectives.Comm, meta *RestoreMeta, fs *fetch.Stats, fp fingerprint.FP) ([]byte, int, error) {
	me, n := c.Rank(), c.Size()
	tried := make(map[int]bool, n)
	tried[me] = true
	try := func(peer int) ([]byte, bool, error) {
		if tried[peer] {
			return nil, false, nil
		}
		tried[peer] = true
		return fs.Chunk(c, fetchClass, peer, fp)
	}
	for _, r := range meta.Hints[fp] {
		data, ok, err := try(int(r))
		if err != nil {
			return nil, -1, err
		}
		if ok {
			return data, int(r), nil
		}
	}
	for d := 1; d < n; d++ {
		peer := (me + d) % n
		data, ok, err := try(peer)
		if err != nil {
			return nil, -1, err
		}
		if ok {
			return data, peer, nil
		}
	}
	return nil, -1, fmt.Errorf("chunk %s lost on all surviving nodes", fp.Short())
}
