package core

import (
	"context"
	"errors"
	"fmt"

	"dedupcr/internal/collectives"
	"dedupcr/internal/fetch"
	"dedupcr/internal/fingerprint"
	"dedupcr/internal/storage"
	"dedupcr/internal/trace"
)

// fetchClass is the fetch-service protocol class of plain restores.
const fetchClass fetch.Class = 0

// Restore is the collective inverse of DumpOutput: every rank calls it
// and receives back the byte-exact buffer it dumped under name. Chunks or
// metadata missing from the local store (after a node failure and
// replacement) are pulled from peers: first the designated ranks recorded
// in the restore hints, then the neighbour metadata replicas, then a
// linear sweep as a last resort. Recovered chunks are re-stored locally,
// so a restore also re-provisions a replaced node.
//
// Restore succeeds as long as at most K-1 nodes were lost, the guarantee
// the replication factor buys.
func Restore(c collectives.Comm, store storage.Store, name string) ([]byte, error) {
	return RestoreWithTrace(c, store, name, nil)
}

// RestoreCtx is Restore under a context: cancelling ctx aborts the
// collective restore on this rank and disseminates the abort, unblocking
// every rank (the fetch service and completion barrier otherwise wait for
// the whole group). Like DumpOutputCtx, any mid-restore failure aborts
// the group and surfaces on every survivor as a *collectives.CollectiveError;
// the restore only reads and re-provisions, so no rollback is needed.
func RestoreCtx(ctx context.Context, c collectives.Comm, store storage.Store, name string) ([]byte, error) {
	return RestoreCtxWithTrace(ctx, c, store, name, nil)
}

// RestoreCtxWithTrace is RestoreCtx with per-phase span recording.
func RestoreCtxWithTrace(ctx context.Context, c collectives.Comm, store storage.Store, name string, rec *trace.Recorder) ([]byte, error) {
	if ctx != nil && ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	stop := collectives.WatchContext(ctx, c)
	defer stop()
	buf, err := RestoreWithTrace(c, store, name, rec)
	if err != nil {
		return nil, failCollective(c, err, "restore")
	}
	return buf, nil
}

// RestoreWithTrace is Restore with per-phase span recording: metadata
// load, assembly (with one counted arg for remotely fetched chunks), and
// the completion barrier. A nil recorder behaves exactly like Restore.
func RestoreWithTrace(c collectives.Comm, store storage.Store, name string, rec *trace.Recorder) ([]byte, error) {
	me := c.Rank()
	restoreSpan := rec.Begin("restore").Arg("dataset", name)
	defer restoreSpan.End()
	srv := fetch.Serve(c, store, fetchClass)

	// Publish each restore phase to the transport, mirroring the dump
	// pipeline: failures get attributed to the phase they surfaced in and
	// phase-scoped fault injection can target restores too.
	collectives.NotePhase(c, "restore-meta")
	metaSpan := rec.Begin("load-meta")
	meta, err := loadMeta(c, store, name)
	metaSpan.End()
	if err != nil {
		srv.Stop()
		return nil, fmt.Errorf("rank %d: %w", me, err)
	}

	var cached []fingerprint.FP
	collectives.NotePhase(c, "assemble")
	assembleSpan := rec.Begin("assemble")
	buf, err := meta.Recipe.Assemble(func(fp fingerprint.FP) ([]byte, error) {
		if data, err := store.GetChunk(fp); err == nil {
			return data, nil
		}
		data, err := fetchChunk(c, meta, fp)
		if err != nil {
			return nil, err
		}
		// Re-provision the local store with the recovered chunk.
		if err := store.PutChunk(fp, data); err != nil && !errors.Is(err, storage.ErrFailed) {
			return nil, err
		}
		cached = append(cached, fp)
		return data, nil
	})
	assembleSpan.Arg("fetched-chunks", fmt.Sprint(len(cached))).End()
	if err != nil {
		srv.Stop()
		return nil, fmt.Errorf("rank %d assemble %q: %w", me, name, err)
	}
	// The re-provisioned references belong to this dataset: fold them
	// into its reclamation list so a later Forget releases them too.
	if len(cached) > 0 {
		refs := cached
		if blob, gerr := store.GetBlob(gcName(name, me)); gerr == nil {
			if prev, perr := unmarshalFPs(blob); perr == nil {
				refs = append(prev, cached...)
			}
		}
		if err := store.PutBlob(gcName(name, me), marshalFPs(refs)); err != nil && !errors.Is(err, storage.ErrFailed) {
			srv.Stop()
			return nil, err
		}
	}
	// Re-persist the metadata locally so future restores are local again.
	if blob, merr := meta.MarshalBinary(); merr == nil {
		if err := store.PutBlob(metaName(name, me), blob); err != nil && !errors.Is(err, storage.ErrFailed) {
			srv.Stop()
			return nil, err
		}
	}

	// All ranks keep serving until everyone has finished assembling.
	collectives.NotePhase(c, "restore-barrier")
	barrierSpan := rec.Begin("barrier")
	err = collectives.Barrier(c)
	barrierSpan.End()
	if err != nil {
		srv.Stop()
		return nil, fmt.Errorf("rank %d restore barrier: %w", me, err)
	}
	srv.Stop()
	return buf, nil
}

// loadMeta retrieves this rank's RestoreMeta: locally if possible,
// otherwise from the peers holding a replica (the naive neighbours at
// dump time; unknown K means we sweep outward until found).
func loadMeta(c collectives.Comm, store storage.Store, name string) (*RestoreMeta, error) {
	me, n := c.Rank(), c.Size()
	blobName := metaName(name, me)
	blob, err := store.GetBlob(blobName)
	if err != nil {
		for d := 1; d < n; d++ {
			peer := (me + d) % n
			data, ok, rerr := fetch.Blob(c, fetchClass, peer, blobName)
			if rerr != nil {
				return nil, rerr
			}
			if ok {
				blob = data
				break
			}
		}
		if blob == nil {
			return nil, fmt.Errorf("restore metadata %q unrecoverable", blobName)
		}
	}
	meta := new(RestoreMeta)
	if err := meta.UnmarshalBinary(blob); err != nil {
		return nil, fmt.Errorf("decode restore metadata %q: %w", blobName, err)
	}
	return meta, nil
}

// fetchChunk pulls fp from peers: designated ranks first (the hint path),
// then every other rank.
func fetchChunk(c collectives.Comm, meta *RestoreMeta, fp fingerprint.FP) ([]byte, error) {
	me, n := c.Rank(), c.Size()
	tried := make(map[int]bool, n)
	tried[me] = true
	try := func(peer int) ([]byte, bool, error) {
		if tried[peer] {
			return nil, false, nil
		}
		tried[peer] = true
		return fetch.Chunk(c, fetchClass, peer, fp)
	}
	for _, r := range meta.Hints[fp] {
		data, ok, err := try(int(r))
		if err != nil {
			return nil, err
		}
		if ok {
			return data, nil
		}
	}
	for d := 1; d < n; d++ {
		data, ok, err := try((me + d) % n)
		if err != nil {
			return nil, err
		}
		if ok {
			return data, nil
		}
	}
	return nil, fmt.Errorf("chunk %s lost on all surviving nodes", fp.Short())
}
