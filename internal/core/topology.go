package core

import (
	"fmt"
	"sort"
)

// Topology describes where ranks live, for the rack-aware partner
// selection the paper's conclusion names as future work: replicas are
// worth more when they land on distinct racks (or failure domains), since
// rack-level outages then cannot erase all copies of a chunk.
type Topology struct {
	// RackOf maps rank -> rack id.
	RackOf []int
}

// NewUniformTopology spreads n ranks over racks round-robin style in
// contiguous blocks, the usual physical placement.
func NewUniformTopology(n, racks int) Topology {
	if racks < 1 {
		racks = 1
	}
	per := (n + racks - 1) / racks
	t := Topology{RackOf: make([]int, n)}
	for r := 0; r < n; r++ {
		t.RackOf[r] = r / per
	}
	return t
}

// Racks returns the number of distinct racks.
func (t Topology) Racks() int {
	seen := make(map[int]bool)
	for _, r := range t.RackOf {
		seen[r] = true
	}
	return len(seen)
}

// Validate checks the topology against a group size.
func (t Topology) Validate(n int) error {
	if len(t.RackOf) != n {
		return fmt.Errorf("core: topology covers %d ranks, group has %d", len(t.RackOf), n)
	}
	return nil
}

// RackAwareShuffle computes a rank permutation that balances receive load
// like RankShuffle and additionally interleaves racks, so that the K-1
// partners of each rank (its successors in shuffled order) span as many
// racks as possible. Determinism: the result is a pure function of the
// inputs, so all ranks agree without communication.
//
// The algorithm processes ranks in the same heavy/light interleaving as
// Algorithm 2, but at each position prefers, among the next candidates of
// similar load, one whose rack differs from the previous K-1 placements.
func RackAwareShuffle(totals []int64, k int, topo Topology) []int {
	n := len(totals)
	if topo.Validate(n) != nil || topo.Racks() <= 1 {
		return RankShuffle(totals, k)
	}
	// Candidate order: the plain load-aware shuffle.
	order := RankShuffle(totals, k)
	used := make([]bool, n)
	shuffle := make([]int, 0, n)
	remaining := make(map[int]int) // rack -> unplaced ranks
	for _, rack := range topo.RackOf {
		remaining[rack]++
	}

	conflicts := func(rank int) bool {
		// Does rank share a rack with any of the previous k-1 picks?
		from := len(shuffle) - (k - 1)
		if from < 0 {
			from = 0
		}
		for _, prev := range shuffle[from:] {
			if topo.RackOf[prev] == topo.RackOf[rank] {
				return true
			}
		}
		return false
	}

	for len(shuffle) < n {
		// Among conflict-free candidates, take one from the rack with
		// the most unplaced ranks (ties: load order); draining racks
		// evenly prevents a single rack's ranks from bunching up at the
		// end of the permutation. Fall back to plain load order when
		// every candidate conflicts.
		picked := -1
		for _, r := range order {
			if used[r] || conflicts(r) {
				continue
			}
			if picked < 0 || remaining[topo.RackOf[r]] > remaining[topo.RackOf[picked]] {
				picked = r
			}
		}
		if picked < 0 {
			for _, r := range order {
				if !used[r] {
					picked = r
					break
				}
			}
		}
		used[picked] = true
		remaining[topo.RackOf[picked]]--
		shuffle = append(shuffle, picked)
	}
	return shuffle
}

// RackSpread evaluates a plan against a topology: for every rank it
// counts the distinct racks covered by the rank and its K-1 partners,
// returning the minimum and mean. Higher is better; a minimum of K means
// every replica set is fully rack-diverse.
func RackSpread(p *Plan, topo Topology) (min int, mean float64) {
	n := len(p.Shuffle)
	if topo.Validate(n) != nil {
		return 0, 0
	}
	var sum int
	for r := 0; r < n; r++ {
		racks := map[int]bool{topo.RackOf[r]: true}
		for _, partner := range p.Partners(r) {
			racks[topo.RackOf[partner]] = true
		}
		if r == 0 || len(racks) < min {
			min = len(racks)
		}
		sum += len(racks)
	}
	return min, float64(sum) / float64(n)
}

// sortRanksByLoad returns rank ids ordered by descending load with rank
// id as the deterministic tie-breaker (shared helper for shuffles).
func sortRanksByLoad(totals []int64) []int {
	idx := make([]int, len(totals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if totals[idx[a]] != totals[idx[b]] {
			return totals[idx[a]] > totals[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}
