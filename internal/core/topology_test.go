package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"dedupcr/internal/collectives"
	"dedupcr/internal/storage"
)

func TestUniformTopology(t *testing.T) {
	topo := NewUniformTopology(12, 4)
	if got := topo.Racks(); got != 4 {
		t.Fatalf("Racks = %d, want 4", got)
	}
	if topo.RackOf[0] != 0 || topo.RackOf[11] != 3 {
		t.Fatalf("rack layout %v", topo.RackOf)
	}
	if err := topo.Validate(12); err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(13); err == nil {
		t.Fatal("validated wrong group size")
	}
}

func TestRackAwareShuffleIsPermutation(t *testing.T) {
	check := func(seed int64, kRaw, nRaw, racksRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 1
		k := int(kRaw)%n + 1
		racks := int(racksRaw%6) + 1
		totals := make([]int64, n)
		for i := range totals {
			totals[i] = int64(rng.Intn(100))
		}
		s := RackAwareShuffle(totals, k, NewUniformTopology(n, racks))
		seen := make([]bool, n)
		for _, r := range s {
			if r < 0 || r >= n || seen[r] {
				return false
			}
			seen[r] = true
		}
		return len(s) == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRackAwareShuffleSpreadsRacks(t *testing.T) {
	// 16 ranks over 4 racks, K=3: every replica set should span 3
	// distinct racks, which the plain shuffle does not guarantee.
	const n, k, racks = 16, 3, 4
	topo := NewUniformTopology(n, racks)
	totals := make([]int64, n) // uniform loads: pure rack effect
	sendLoad := make([][]int64, n)
	for r := range sendLoad {
		sendLoad[r] = make([]int64, k)
		sendLoad[r][1], sendLoad[r][2] = 10, 10
	}

	aware, err := NewPlan(RackAwareShuffle(totals, k, topo), sendLoad, k)
	if err != nil {
		t.Fatal(err)
	}
	minSpread, meanSpread := RackSpread(aware, topo)
	if minSpread < k {
		t.Errorf("rack-aware: min rack spread = %d, want %d", minSpread, k)
	}
	if meanSpread < float64(k) {
		t.Errorf("rack-aware: mean rack spread = %.2f, want %d", meanSpread, k)
	}

	// The identity plan keeps neighbours (same rack) as partners: spread
	// must be visibly worse.
	naive, err := NewPlan(IdentityShuffle(n), sendLoad, k)
	if err != nil {
		t.Fatal(err)
	}
	naiveMin, _ := RackSpread(naive, topo)
	if naiveMin >= k {
		t.Skip("identity plan accidentally rack-diverse; cannot compare")
	}
	if minSpread <= naiveMin {
		t.Errorf("rack-aware min spread %d not better than naive %d", minSpread, naiveMin)
	}
}

func TestRackAwareFallsBackToLoadShuffle(t *testing.T) {
	totals := []int64{100, 100, 10, 10, 10, 10}
	single := NewUniformTopology(6, 1)
	a := RackAwareShuffle(totals, 3, single)
	b := RankShuffle(totals, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("single-rack topology must reduce to the plain shuffle")
		}
	}
}

func TestRackAwareShuffleDeterministic(t *testing.T) {
	totals := []int64{5, 9, 1, 7, 3, 3, 9, 2}
	topo := NewUniformTopology(8, 3)
	a := RackAwareShuffle(totals, 3, topo)
	b := RackAwareShuffle(totals, 3, topo)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("rack-aware shuffle not deterministic")
		}
	}
}

func TestDumpWithTopologyEndToEnd(t *testing.T) {
	const n, k = 12, 3
	topo := NewUniformTopology(n, 4)
	cluster := storage.NewCluster(n)
	buffers := make([][]byte, n)
	plans := make([]*Plan, n)
	var mu sync.Mutex
	err := collectives.Run(n, func(c collectives.Comm) error {
		buf := testBuffer(c.Rank(), 6, 4, 3, 2)
		o := Options{K: k, Approach: CollDedup, ChunkSize: testPage,
			Name: "ck", Topology: &topo}
		res, err := DumpOutput(c, cluster.Node(c.Rank()), buf, o)
		if err != nil {
			return err
		}
		mu.Lock()
		buffers[c.Rank()] = buf
		plans[c.Rank()] = res.Plan
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// All ranks agreed on one plan, and it is rack diverse.
	for r := 1; r < n; r++ {
		for i := range plans[0].Shuffle {
			if plans[r].Shuffle[i] != plans[0].Shuffle[i] {
				t.Fatalf("rank %d disagrees on the rack-aware shuffle", r)
			}
		}
	}
	minSpread, _ := RackSpread(plans[0], topo)
	if minSpread < k {
		t.Errorf("min rack spread = %d, want %d", minSpread, k)
	}
	// Restore still works.
	err = collectives.Run(n, func(c collectives.Comm) error {
		got, err := Restore(c, cluster.Node(c.Rank()), "ck")
		if err != nil {
			return err
		}
		if !bytes.Equal(got, buffers[c.Rank()]) {
			return fmt.Errorf("rank %d restore mismatch", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
