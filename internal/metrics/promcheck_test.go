package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// sampleDump builds a fully populated Dump for exposition tests.
func sampleDump() Dump {
	h := NewHistogram()
	for _, v := range []int64{900, 12_000, 47_000, 2_000_000, 150_000_000} {
		h.Record(v)
	}
	return Dump{
		Rank: 3, DatasetBytes: 1 << 20, TotalChunks: 256, LocalUniqueChunks: 200,
		HashedBytes: 1 << 20, StoredChunks: 210, StoredBytes: 860_000,
		SentChunks: 120, SentBytes: 490_000, RecvChunks: 118, RecvBytes: 480_000,
		ReductionBytes: 65_000, ReductionRounds: 3, LoadExchangeBytes: 2_048,
		WindowBytes: 500_000, UniqueContentBytes: 820_000,
		Phases: Phases{
			Chunking: time.Millisecond, Fingerprint: 2 * time.Millisecond,
			LocalDedup: 300 * time.Microsecond, Reduction: 4 * time.Millisecond,
			ReductionRoundTimes: []time.Duration{2 * time.Millisecond, 1500 * time.Microsecond, 500 * time.Microsecond},
			LoadExchange:        time.Millisecond, Planning: 200 * time.Microsecond,
			WindowOpen: 50 * time.Microsecond, Put: 3 * time.Millisecond,
			WindowWait: 2 * time.Millisecond, Commit: time.Millisecond,
			Barrier: 400 * time.Microsecond, Total: 16 * time.Millisecond,
		},
		PutLatency:  h,
		BarrierExit: time.Unix(1700000000, 0),
	}
}

// TestExpositionWellFormed runs the strict checker over both exposition
// modes of a populated dump: the default bucketed-histogram output and
// the legacy summary kept behind the flag.
func TestExpositionWellFormed(t *testing.T) {
	d := sampleDump()
	for _, tc := range []struct {
		name string
		opts PromOptions
	}{
		{"histogram", PromOptions{}},
		{"legacy-summary", PromOptions{LegacyPutSummary: true}},
	} {
		var buf bytes.Buffer
		d.WritePrometheusOpts(&buf, tc.opts)
		if err := CheckExposition(bytes.NewReader(buf.Bytes())); err != nil {
			t.Errorf("%s: %v\n%s", tc.name, err, buf.String())
		}
	}
}

// TestExpositionHistogramShape pins the put-latency family to the
// explicit-bucket histogram form: _bucket series with the shared ladder,
// an +Inf bucket equal to _count, and no quantile series unless the
// legacy flag is set.
func TestExpositionHistogramShape(t *testing.T) {
	d := sampleDump()
	var buf bytes.Buffer
	d.WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, "# TYPE dedupcr_put_latency_seconds histogram") {
		t.Fatalf("put latency not exposed as histogram:\n%s", out)
	}
	if strings.Contains(out, "quantile=") {
		t.Errorf("default exposition still carries summary quantiles")
	}
	if !strings.Contains(out, `dedupcr_put_latency_seconds_bucket{rank="3",le="+Inf"} 5`) {
		t.Errorf("+Inf bucket missing or wrong count:\n%s", out)
	}
	if !strings.Contains(out, `dedupcr_reduction_round_seconds{rank="3",round="0"} 0.002000000`) {
		t.Errorf("reduction round times not exposed:\n%s", out)
	}

	buf.Reset()
	d.WritePrometheusOpts(&buf, PromOptions{LegacyPutSummary: true})
	if !strings.Contains(buf.String(), "# TYPE dedupcr_put_latency_seconds summary") {
		t.Errorf("legacy flag lost the summary form:\n%s", buf.String())
	}
}

// TestCheckExpositionRejects feeds the checker deliberately malformed
// expositions and expects each to be caught.
func TestCheckExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":            "# HELP m x\nm 1\n",
		"no HELP":            "# TYPE m counter\nm 1\n",
		"bad type":           "# HELP m x\n# TYPE m chart\nm 1\n",
		"duplicate TYPE":     "# HELP m x\n# TYPE m counter\n# TYPE m counter\nm 1\n",
		"negative counter":   "# HELP m x\n# TYPE m counter\nm -1\n",
		"bad escape":         "# HELP m x\n# TYPE m counter\nm{a=\"\\q\"} 1\n",
		"unterminated label": "# HELP m x\n# TYPE m counter\nm{a=\"v} 1\n",
		"bad label name":     "# HELP m x\n# TYPE m counter\nm{0a=\"v\"} 1\n",
		"duplicate sample":   "# HELP m x\n# TYPE m counter\nm{a=\"v\"} 1\nm{a=\"v\"} 2\n",
		"non-monotone buckets": "# HELP m x\n# TYPE m histogram\n" +
			"m_bucket{le=\"0.1\"} 5\nm_bucket{le=\"1\"} 3\nm_bucket{le=\"+Inf\"} 5\nm_count 5\n",
		"unsorted bucket bounds": "# HELP m x\n# TYPE m histogram\n" +
			"m_bucket{le=\"1\"} 2\nm_bucket{le=\"0.1\"} 3\nm_bucket{le=\"+Inf\"} 3\nm_count 3\n",
		"missing +Inf": "# HELP m x\n# TYPE m histogram\nm_bucket{le=\"1\"} 2\nm_count 2\n",
		"+Inf != count": "# HELP m x\n# TYPE m histogram\n" +
			"m_bucket{le=\"1\"} 2\nm_bucket{le=\"+Inf\"} 2\nm_count 3\n",
		"bare histogram sample": "# HELP m x\n# TYPE m histogram\nm 1\n",
		"quantile out of range": "# HELP m x\n# TYPE m summary\nm{quantile=\"1.5\"} 2\n",
		"unparseable value":     "# HELP m x\n# TYPE m gauge\nm fast\n",
	}
	for name, in := range cases {
		if err := CheckExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: checker accepted malformed exposition:\n%s", name, in)
		}
	}
}

// TestCheckExpositionAccepts covers well-formed corner cases the strict
// checker must not reject.
func TestCheckExpositionAccepts(t *testing.T) {
	cases := map[string]string{
		"escapes":   "# HELP m x\n# TYPE m gauge\nm{a=\"q\\\"u\\\\o\\nte\"} 1\n",
		"timestamp": "# HELP m x\n# TYPE m counter\nm 1 1700000000000\n",
		"inf gauge": "# HELP m x\n# TYPE m gauge\nm +Inf\n",
		"summary": "# HELP m x\n# TYPE m summary\n" +
			"m{quantile=\"0.5\"} 1\nm{quantile=\"0.99\"} 2\nm_sum 3\nm_count 4\n",
		"histogram": "# HELP m x\n# TYPE m histogram\n" +
			"m_bucket{le=\"0.1\"} 1\nm_bucket{le=\"+Inf\"} 2\nm_sum 0.5\nm_count 2\n",
	}
	for name, in := range cases {
		if err := CheckExposition(strings.NewReader(in)); err != nil {
			t.Errorf("%s: checker rejected well-formed exposition: %v", name, err)
		}
	}
}
