package metrics

import (
	"fmt"
	"io"
	"time"
)

// Restore is the instrumentation of one rank for one collective restore —
// the read-side twin of Dump. Dedup trades write volume for read
// fragmentation: a restore of a heavily dedup'd checkpoint chases chunks
// scattered across designated ranks, and these counters make that cost
// measurable. Everything is measured, never estimated.
type Restore struct {
	Rank int
	// LogicalBytes is the byte size of the reassembled image — the
	// denominator of the read-amplification ratios.
	LogicalBytes int64
	// TotalChunks is the recipe length (duplicate occurrences included);
	// UniqueChunks counts distinct fingerprints in the recipe.
	TotalChunks  int
	UniqueChunks int
	// LocalChunks / LocalBytes count recipe lookups served by the local
	// store, one per occurrence: duplicates are re-read per position, so
	// these already include the dedup-induced re-read amplification.
	LocalChunks int
	LocalBytes  int64
	// FetchedChunks / FetchedBytes count chunks pulled from peers over
	// the fetch service (the network component of read amplification).
	FetchedChunks int
	FetchedBytes  int64
	// FetchRequests counts fetch RPCs issued, misses included;
	// FetchMisses counts "not found" replies (a miss means the hint path
	// failed and the sweep went one peer further).
	FetchRequests int64
	FetchMisses   int64
	// MetaFetches counts restore-metadata blobs that had to come from a
	// peer replica because the local copy was lost.
	MetaFetches int
	// RecoveredChunks counts chunks rebuilt by erasure reconstruction
	// instead of fetched whole (hybrid restores only).
	RecoveredChunks int
	// SourceRanks is the number of distinct peer ranks that served at
	// least one chunk — the rank-level scatter of this rank's image.
	SourceRanks int
	// ObjectsTouched counts distinct local store objects read: unique
	// chunks served locally plus metadata/GC blobs.
	ObjectsTouched int
	// PeerFetchChunks / PeerFetchBytes are this rank's row of the
	// per-peer fetch traffic matrix, indexed by peer rank (own slot 0).
	PeerFetchChunks []int64
	PeerFetchBytes  []int64
	// RunLengths is the sequential-locality histogram: walking the recipe
	// in order, a run is a maximal stretch of consecutive chunks served
	// by the same source (local store, or one particular peer). One
	// sample per run, in chunks. Heavily fragmented restores show many
	// short runs; LargestRun is the longest observed.
	RunLengths *Histogram
	LargestRun int64
	// Phases is the measured wall-clock decomposition of the restore.
	Phases RestorePhases
	// BarrierExit is the wall-clock instant this rank left the restore's
	// completion barrier (same clock-offset anchor as Dump.BarrierExit).
	BarrierExit time.Time
	// FetchLatency is the per-RPC remote fetch latency histogram
	// (nanoseconds); nil when nothing was fetched.
	FetchLatency *Histogram
	// StoreReadLatency is the local store read latency histogram
	// (nanoseconds) recorded through the read-side storage.Timed path.
	StoreReadLatency *Histogram
}

// ReadBytes is the total bytes read to reassemble the image: local store
// reads plus network fetches.
func (r Restore) ReadBytes() int64 { return r.LocalBytes + r.FetchedBytes }

// ReadAmplificationBytes is bytes fetched from peers / logical image
// bytes: the share of the image that had to travel over the network
// because dedup designated its chunks to other ranks. 0 is a fully local
// restore; 1.0 means every byte was fetched.
func (r Restore) ReadAmplificationBytes() float64 {
	if r.LogicalBytes == 0 {
		return 0
	}
	return float64(r.FetchedBytes) / float64(r.LogicalBytes)
}

// ReadAmplificationChunks is chunks fetched from peers / unique chunks
// in the recipe — the chunk-granular twin of ReadAmplificationBytes.
// It can exceed 1.0 when duplicate occurrences of a chunk are fetched
// before the re-provisioned copy lands locally.
func (r Restore) ReadAmplificationChunks() float64 {
	if r.UniqueChunks == 0 {
		return 0
	}
	return float64(r.FetchedChunks) / float64(r.UniqueChunks)
}

// RestorePhases is the wall-clock decomposition of one collective restore
// on one rank. Meta, Assemble, Recover, Commit and Barrier are disjoint
// and sum to (almost) Total; Fetch is the cumulative remote-fetch time
// and is attributed INSIDE Assemble (a fetch happens mid-assembly), so it
// is excluded from Sum.
type RestorePhases struct {
	// Meta is the restore-metadata load (local read or peer fetch).
	Meta time.Duration
	// Assemble is the recipe walk: local reads, remote fetches and
	// re-provisioning writes.
	Assemble time.Duration
	// Fetch is the cumulative time spent inside remote chunk/blob
	// fetches during assembly (contained in Assemble).
	Fetch time.Duration
	// Recover is erasure-coded shard reconstruction (hybrid restores
	// only; zero for plain restores).
	Recover time.Duration
	// Commit covers post-assembly persistence: the reclamation-list
	// update and metadata re-replication.
	Commit time.Duration
	// Barrier is the completion barrier (all ranks keep serving fetches
	// until everyone assembled).
	Barrier time.Duration
	// Total is the end-to-end restore duration on this rank.
	Total time.Duration
}

// Sum adds the disjoint phases (excluding Fetch, which Assemble already
// contains, and Total).
func (p RestorePhases) Sum() time.Duration {
	return p.Meta + p.Assemble + p.Recover + p.Commit + p.Barrier
}

// Other returns the unattributed remainder Total - Sum (clamped at 0).
func (p RestorePhases) Other() time.Duration {
	if o := p.Total - p.Sum(); o > 0 {
		return o
	}
	return 0
}

// Add accumulates q's durations into p field-wise.
func (p *RestorePhases) Add(q RestorePhases) {
	p.Meta += q.Meta
	p.Assemble += q.Assemble
	p.Fetch += q.Fetch
	p.Recover += q.Recover
	p.Commit += q.Commit
	p.Barrier += q.Barrier
	p.Total += q.Total
}

// RestorePhaseNames lists the restore phase labels in pipeline order,
// matching the span names recorded by internal/core and internal/hybrid.
var RestorePhaseNames = []string{
	"restore-meta", "assemble", "fetch", "shard-recover",
	"restore-commit", "restore-barrier",
}

// ByName returns the duration of the named phase (one of
// RestorePhaseNames).
func (p RestorePhases) ByName(name string) time.Duration {
	switch name {
	case "restore-meta":
		return p.Meta
	case "assemble":
		return p.Assemble
	case "fetch":
		return p.Fetch
	case "shard-recover":
		return p.Recover
	case "restore-commit":
		return p.Commit
	case "restore-barrier":
		return p.Barrier
	default:
		return 0
	}
}

// RunLengthBuckets is the explicit bucket ladder (run length in chunks)
// of the sequential-locality histogram exposition: powers of two up to
// 64Ki chunks. Fixed buckets keep the family aggregable across ranks.
var RunLengthBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536}

// WriteCountHistogram emits a histogram of dimensionless counts (run
// lengths, sizes) as a Prometheus histogram family over an explicit
// integer `le` ladder. Cumulative counts come from Histogram.CountLE, so
// monotonicity holds by construction.
func WriteCountHistogram(w io.Writer, name, help, labels string, ladder []int64, h *Histogram) {
	if h.Count() == 0 {
		return
	}
	sep := ""
	if labels != "" {
		sep = ","
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, le := range ladder {
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%d\"} %d\n", name, labels, sep, le, h.CountLE(le))
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.Count())
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %d\n", name, labels, h.Sum())
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count())
	}
}

// WritePrometheus emits the restore's counters, ratios, phase timings and
// latency/locality histograms as the dedupcr_restore_* families, labelled
// with the rank.
func (r Restore) WritePrometheus(w io.Writer) {
	rank := fmt.Sprintf(`rank="%d"`, r.Rank)
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s{%s} %d\n", name, help, name, name, rank, v)
	}
	gauge := func(name, help string, format string, args ...any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n"+format, append([]any{name, help, name}, args...)...)
	}
	counter("dedupcr_restore_logical_bytes_total", "Bytes of the reassembled image.", r.LogicalBytes)
	counter("dedupcr_restore_chunks_total", "Recipe chunk occurrences assembled.", int64(r.TotalChunks))
	counter("dedupcr_restore_unique_chunks_total", "Distinct fingerprints in the recipe.", int64(r.UniqueChunks))
	counter("dedupcr_restore_local_chunks_total", "Chunk reads served by the local store.", int64(r.LocalChunks))
	counter("dedupcr_restore_local_bytes_total", "Bytes served by the local store.", r.LocalBytes)
	counter("dedupcr_restore_fetched_chunks_total", "Chunks pulled from peers.", int64(r.FetchedChunks))
	counter("dedupcr_restore_fetched_bytes_total", "Bytes pulled from peers.", r.FetchedBytes)
	counter("dedupcr_restore_fetch_requests_total", "Fetch RPCs issued, misses included.", r.FetchRequests)
	counter("dedupcr_restore_fetch_misses_total", "Fetch RPCs answered not-found.", r.FetchMisses)
	counter("dedupcr_restore_meta_fetches_total", "Restore-metadata blobs recovered from peer replicas.", int64(r.MetaFetches))
	counter("dedupcr_restore_recovered_chunks_total", "Chunks rebuilt by erasure reconstruction.", int64(r.RecoveredChunks))
	counter("dedupcr_restore_source_ranks", "Distinct peer ranks that served at least one chunk.", int64(r.SourceRanks))
	counter("dedupcr_restore_objects_touched", "Distinct local store objects read (chunks + blobs).", int64(r.ObjectsTouched))
	counter("dedupcr_restore_largest_run_chunks", "Longest same-source sequential run in the recipe walk.", r.LargestRun)

	gauge("dedupcr_restore_read_amplification_bytes",
		"Bytes fetched from peers over logical image bytes.",
		"dedupcr_restore_read_amplification_bytes{%s} %.6f\n", rank, r.ReadAmplificationBytes())
	gauge("dedupcr_restore_read_amplification_chunks",
		"Chunks fetched from peers over unique chunks.",
		"dedupcr_restore_read_amplification_chunks{%s} %.6f\n", rank, r.ReadAmplificationChunks())

	fmt.Fprintf(w, "# HELP dedupcr_restore_phase_seconds Wall-clock time of one restore pipeline phase.\n")
	fmt.Fprintf(w, "# TYPE dedupcr_restore_phase_seconds gauge\n")
	for _, name := range RestorePhaseNames {
		fmt.Fprintf(w, "dedupcr_restore_phase_seconds{%s,phase=%q} %.9f\n", rank, name, r.Phases.ByName(name).Seconds())
	}
	fmt.Fprintf(w, "dedupcr_restore_phase_seconds{%s,phase=\"total\"} %.9f\n", rank, r.Phases.Total.Seconds())

	if nonZero(r.PeerFetchBytes) {
		fmt.Fprintf(w, "# HELP dedupcr_restore_peer_fetched_bytes_total Bytes this rank fetched from one peer.\n")
		fmt.Fprintf(w, "# TYPE dedupcr_restore_peer_fetched_bytes_total counter\n")
		for peer, b := range r.PeerFetchBytes {
			if b != 0 {
				fmt.Fprintf(w, "dedupcr_restore_peer_fetched_bytes_total{%s,peer=\"%d\"} %d\n", rank, peer, b)
			}
		}
	}

	WriteCountHistogram(w, "dedupcr_restore_run_length_chunks",
		"Length (chunks) of maximal same-source sequential runs in the recipe walk.",
		rank, RunLengthBuckets, r.RunLengths)
	WriteLatencyHistogram(w, "dedupcr_restore_fetch_latency_seconds",
		"Per-RPC remote chunk/blob fetch latency.", rank, r.FetchLatency)
	WriteLatencyHistogram(w, "dedupcr_restore_store_read_latency_seconds",
		"Local store read latency during the restore.", rank, r.StoreReadLatency)
}

func nonZero(v []int64) bool {
	for _, x := range v {
		if x != 0 {
			return true
		}
	}
	return false
}
