package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's upper bound must map back into that bucket, and
	// bucket boundaries must be monotonic.
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		u := bucketUpper(i)
		if u <= prev && u != math.MaxInt64 {
			t.Fatalf("bucketUpper(%d) = %d not > bucketUpper(%d) = %d", i, u, i-1, prev)
		}
		if u != math.MaxInt64 {
			if got := bucketOf(u); got != i {
				t.Fatalf("bucketOf(bucketUpper(%d)=%d) = %d", i, u, got)
			}
		}
		prev = u
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 500500 {
		t.Fatalf("Sum = %d", h.Sum())
	}
	if h.Max() != 1000 {
		t.Fatalf("Max = %d", h.Max())
	}
	// Quantiles are bucket upper bounds: within ~6% above the exact
	// value, never below it.
	for _, tc := range []struct {
		q     float64
		exact int64
	}{{0.5, 500}, {0.95, 950}, {0.99, 990}, {1.0, 1000}} {
		got := h.Quantile(tc.q)
		if got < tc.exact {
			t.Errorf("Quantile(%g) = %d, below exact %d", tc.q, got, tc.exact)
		}
		if float64(got) > float64(tc.exact)*1.08 {
			t.Errorf("Quantile(%g) = %d, more than 8%% above exact %d", tc.q, got, tc.exact)
		}
	}
	if got := NewHistogram().Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d", got)
	}
}

func TestHistogramQuantileNeverExceedsMax(t *testing.T) {
	h := NewHistogram()
	h.Record(1_000_003) // lands mid-bucket; upper bound is above it
	if got := h.Quantile(1); got != 1_000_003 {
		t.Errorf("Quantile(1) = %d, want the exact max 1000003", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const writers, each = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < each; i++ {
				h.Record(seed*each + i)
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != writers*each {
		t.Fatalf("Count = %d, want %d", h.Count(), writers*each)
	}
	if h.Max() != writers*each-1 {
		t.Fatalf("Max = %d, want %d", h.Max(), writers*each-1)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for v := int64(0); v < 100; v++ {
		a.Record(v)
		b.Record(v + 1000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Errorf("merged Count = %d", a.Count())
	}
	if a.Max() != 1099 {
		t.Errorf("merged Max = %d", a.Max())
	}
	if got := a.Quantile(0.25); got > 60 {
		t.Errorf("merged p25 = %d, expected low half", got)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Record(5)
	h.Merge(NewHistogram())
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram not inert")
	}
}

func TestQuantileSlice(t *testing.T) {
	v := []int64{9, 1, 8, 2, 7, 3, 6, 4, 5, 10}
	cases := []struct {
		q    float64
		want int64
	}{{0, 1}, {0.1, 1}, {0.5, 5}, {0.95, 10}, {0.99, 10}, {1, 10}}
	for _, tc := range cases {
		if got := Quantile(v, tc.q); got != tc.want {
			t.Errorf("Quantile(v, %g) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %d", got)
	}
	// Input must not be mutated.
	if v[0] != 9 {
		t.Error("Quantile sorted its input in place")
	}
}

func TestBytesNegative(t *testing.T) {
	cases := map[int64]string{
		-1:               "-1 B",
		-1023:            "-1023 B",
		-1537:            "-1.50 KiB",
		-5 << 20:         "-5.00 MiB",
		-(3 << 30):       "-3.00 GiB",
		math.MinInt64:    "-8.00 EiB",
		-(1<<40 + 1<<39): "-1.50 TiB",
		1536:             "1.50 KiB", // positives unchanged
		0:                "0 B",
		math.MaxInt64:    "8.00 EiB",
	}
	for n, want := range cases {
		if got := Bytes(n); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestPhasesSumOtherByName(t *testing.T) {
	p := Phases{
		Chunking: 1 * time.Millisecond, Fingerprint: 2 * time.Millisecond,
		LocalDedup: 3 * time.Millisecond, Reduction: 4 * time.Millisecond,
		LoadExchange: 5 * time.Millisecond, Planning: 6 * time.Millisecond,
		WindowOpen: 7 * time.Millisecond, Put: 8 * time.Millisecond,
		WindowWait: 9 * time.Millisecond, Commit: 10 * time.Millisecond,
		Barrier: 11 * time.Millisecond, Total: 70 * time.Millisecond,
	}
	if got := p.Sum(); got != 66*time.Millisecond {
		t.Errorf("Sum = %v", got)
	}
	if got := p.Other(); got != 4*time.Millisecond {
		t.Errorf("Other = %v", got)
	}
	var byName time.Duration
	for _, name := range PhaseNames {
		byName += p.ByName(name)
	}
	if byName != p.Sum() {
		t.Errorf("sum over PhaseNames = %v, Sum() = %v", byName, p.Sum())
	}
	q := Phases{}
	q.Add(p)
	q.Add(p)
	if q.Total != 140*time.Millisecond || q.Chunking != 2*time.Millisecond {
		t.Errorf("Add: Total=%v Chunking=%v", q.Total, q.Chunking)
	}
}

func TestWritePrometheus(t *testing.T) {
	h := NewHistogram()
	h.Record(int64(2 * time.Millisecond))
	d := Dump{
		Rank: 3, DatasetBytes: 1 << 20, TotalChunks: 256,
		Phases:     Phases{Chunking: time.Millisecond, Total: 10 * time.Millisecond},
		PutLatency: h,
	}
	var b strings.Builder
	d.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`dedupcr_dataset_bytes_total{rank="3"} 1048576`,
		`dedupcr_chunks_total{rank="3"} 256`,
		`dedupcr_phase_seconds{rank="3",phase="chunking"} 0.001000000`,
		`dedupcr_phase_seconds{rank="3",phase="total"} 0.010000000`,
		`dedupcr_put_latency_seconds_count{rank="3"} 1`,
		"# TYPE dedupcr_dataset_bytes_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
}

func TestDurationFormat(t *testing.T) {
	cases := map[time.Duration]string{
		0:                       "0",
		500 * time.Microsecond:  "500µs",
		2500 * time.Microsecond: "2.50ms",
		1500 * time.Millisecond: "1.500s",
	}
	for d, want := range cases {
		if got := Duration(d); got != want {
			t.Errorf("Duration(%v) = %q, want %q", d, got, want)
		}
	}
}
