package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// sampleRestore builds a fully populated Restore for exposition tests.
func sampleRestore() Restore {
	runs := NewHistogram()
	for _, v := range []int64{1, 1, 3, 8, 120} {
		runs.Record(v)
	}
	fetch := NewHistogram()
	for _, v := range []int64{30_000, 80_000, 900_000} {
		fetch.Record(v)
	}
	reads := NewHistogram()
	for _, v := range []int64{600, 2_500} {
		reads.Record(v)
	}
	return Restore{
		Rank: 2, LogicalBytes: 1 << 20, TotalChunks: 256, UniqueChunks: 240,
		LocalChunks: 150, LocalBytes: 614_400, FetchedChunks: 106, FetchedBytes: 434_176,
		FetchRequests: 110, FetchMisses: 4, MetaFetches: 1, RecoveredChunks: 8,
		SourceRanks: 3, ObjectsTouched: 151, LargestRun: 120,
		PeerFetchChunks: []int64{0, 40, 0, 66}, PeerFetchBytes: []int64{0, 163_840, 0, 270_336},
		Phases: RestorePhases{
			Meta: 200 * time.Microsecond, Assemble: 8 * time.Millisecond,
			Fetch: 5 * time.Millisecond, Recover: time.Millisecond,
			Commit: 500 * time.Microsecond, Barrier: 300 * time.Microsecond,
			Total: 10 * time.Millisecond,
		},
		BarrierExit:      time.Unix(1700000000, 0),
		RunLengths:       runs,
		FetchLatency:     fetch,
		StoreReadLatency: reads,
	}
}

// TestRestoreExpositionWellFormed runs the strict checker over the
// dedupcr_restore_* families, populated and empty.
func TestRestoreExpositionWellFormed(t *testing.T) {
	for _, tc := range []struct {
		name string
		r    Restore
	}{
		{"populated", sampleRestore()},
		{"empty", Restore{Rank: 0}},
	} {
		var buf bytes.Buffer
		tc.r.WritePrometheus(&buf)
		if err := CheckExposition(bytes.NewReader(buf.Bytes())); err != nil {
			t.Errorf("%s: %v\n%s", tc.name, err, buf.String())
		}
	}
}

// TestRestoreExpositionShape pins the family shapes: the run-length
// histogram on the integer ladder with a +Inf bucket equal to _count,
// the per-peer matrix omitting zero slots, and the amplification gauges.
func TestRestoreExpositionShape(t *testing.T) {
	r := sampleRestore()
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE dedupcr_restore_run_length_chunks histogram",
		`dedupcr_restore_run_length_chunks_bucket{rank="2",le="1"} 2`,
		`dedupcr_restore_run_length_chunks_bucket{rank="2",le="+Inf"} 5`,
		`dedupcr_restore_run_length_chunks_count{rank="2"} 5`,
		`dedupcr_restore_peer_fetched_bytes_total{rank="2",peer="1"} 163840`,
		`dedupcr_restore_peer_fetched_bytes_total{rank="2",peer="3"} 270336`,
		`dedupcr_restore_read_amplification_bytes{rank="2"} 0.414062`,
		`dedupcr_restore_phase_seconds{rank="2",phase="assemble"} 0.008000000`,
		`dedupcr_restore_phase_seconds{rank="2",phase="total"} 0.010000000`,
		"# TYPE dedupcr_restore_fetch_latency_seconds histogram",
		"# TYPE dedupcr_restore_store_read_latency_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `peer="0"`) || strings.Contains(out, `peer="2"`) {
		t.Errorf("zero peer slots exposed:\n%s", out)
	}
}

func TestReadAmplification(t *testing.T) {
	r := Restore{LogicalBytes: 1000, FetchedBytes: 250, UniqueChunks: 100, FetchedChunks: 150}
	if got := r.ReadAmplificationBytes(); got != 0.25 {
		t.Errorf("bytes amplification: got %g, want 0.25", got)
	}
	if got := r.ReadAmplificationChunks(); got != 1.5 {
		t.Errorf("chunks amplification: got %g, want 1.5", got)
	}
	var zero Restore
	if zero.ReadAmplificationBytes() != 0 || zero.ReadAmplificationChunks() != 0 {
		t.Error("zero restore must have zero amplification, not NaN")
	}
	if got := (Restore{LocalBytes: 3, FetchedBytes: 4}).ReadBytes(); got != 7 {
		t.Errorf("ReadBytes: got %d, want 7", got)
	}
}

// TestRestorePhasesDecomposition checks the Sum/Other contract: Fetch is
// contained in Assemble and excluded from Sum; Other never goes negative.
func TestRestorePhasesDecomposition(t *testing.T) {
	p := RestorePhases{
		Meta: 1 * time.Millisecond, Assemble: 8 * time.Millisecond,
		Fetch: 5 * time.Millisecond, Recover: 2 * time.Millisecond,
		Commit: 1 * time.Millisecond, Barrier: 1 * time.Millisecond,
		Total: 14 * time.Millisecond,
	}
	if got, want := p.Sum(), 13*time.Millisecond; got != want {
		t.Errorf("Sum: got %v, want %v (Fetch must not double-count)", got, want)
	}
	if got, want := p.Other(), time.Millisecond; got != want {
		t.Errorf("Other: got %v, want %v", got, want)
	}
	if (RestorePhases{Total: time.Millisecond, Assemble: 2 * time.Millisecond}).Other() != 0 {
		t.Error("Other must clamp at 0")
	}
	var q RestorePhases
	q.Add(p)
	q.Add(p)
	if q.Assemble != 16*time.Millisecond || q.Fetch != 10*time.Millisecond || q.Total != 28*time.Millisecond {
		t.Errorf("Add accumulation wrong: %+v", q)
	}
	for _, name := range RestorePhaseNames {
		if name == "fetch" || name == "shard-recover" {
			continue
		}
		if p.ByName(name) == 0 {
			t.Errorf("ByName(%q) returned 0 for populated phases", name)
		}
	}
	if p.ByName("no-such-phase") != 0 {
		t.Error("unknown phase name must return 0")
	}
}
