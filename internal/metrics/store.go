package metrics

import (
	"fmt"
	"io"
)

// StoreStats is the segment store's observability snapshot: the current
// shape of the log (segments, live vs garbage bytes) plus monotonic
// counters for seals, manifest commits and compaction work. The zero
// value is what a rank running a non-segment engine reports, so
// cluster-wide gathers can run unconditionally.
type StoreStats struct {
	Rank int
	// Gauges: the store's state at snapshot time.
	Segments       int64 // sealed segments plus the active one
	SealedSegments int64
	LiveChunks     int64
	LiveBytes      int64 // payload bytes reachable through live references
	DataBytes      int64 // payload bytes occupied on disk (live + garbage)
	GarbageBytes   int64 // tombstoned payload bytes awaiting compaction
	Gen            int64 // committed manifest generation
	// Counters: monotonic over the store's lifetime (in-process).
	Seals             int64 // segments sealed
	Commits           int64 // durable checkpoint commits
	Compactions       int64 // compaction sweeps that rewrote at least one segment
	SegmentsCompacted int64 // victim segments rewritten away
	TombstonedBytes   int64 // payload bytes whose refcount reached zero
	ReclaimedBytes    int64 // tombstoned bytes physically reclaimed by compaction
	CopiedBytes       int64 // live payload bytes rewritten during compaction
	CopiedChunks      int64 // live chunks rewritten during compaction
}

// GarbageRatio is the tombstoned fraction of the on-disk payload, the
// signal the compactor triggers on. Zero for an empty store.
func (s StoreStats) GarbageRatio() float64 {
	if s.DataBytes == 0 {
		return 0
	}
	return float64(s.GarbageBytes) / float64(s.DataBytes)
}

// ReclaimRatio is the fraction of all tombstoned bytes that compaction
// has physically reclaimed — the GC test asserts it stays ≥0.9 under a
// churn workload. 1 when nothing was ever tombstoned.
func (s StoreStats) ReclaimRatio() float64 {
	if s.TombstonedBytes == 0 {
		return 1
	}
	return float64(s.ReclaimedBytes) / float64(s.TombstonedBytes)
}

// WritePrometheus emits the dedupcr_store_* families labelled with the
// rank, mirroring Dump.WritePrometheus.
func (s StoreStats) WritePrometheus(w io.Writer) {
	rank := fmt.Sprintf(`rank="%d"`, s.Rank)
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s{%s} %d\n", name, help, name, name, rank, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s{%s} %d\n", name, help, name, name, rank, v)
	}
	gauge("dedupcr_store_segments", "Segments in the local store (sealed plus active).", s.Segments)
	gauge("dedupcr_store_sealed_segments", "Sealed, immutable segments in the local store.", s.SealedSegments)
	gauge("dedupcr_store_live_chunks", "Live chunks in the local store.", s.LiveChunks)
	gauge("dedupcr_store_live_bytes", "Payload bytes reachable through live references.", s.LiveBytes)
	gauge("dedupcr_store_data_bytes", "Payload bytes occupied on disk, garbage included.", s.DataBytes)
	gauge("dedupcr_store_garbage_bytes", "Tombstoned payload bytes awaiting compaction.", s.GarbageBytes)
	gauge("dedupcr_store_manifest_generation", "Committed manifest generation.", s.Gen)
	counter("dedupcr_store_seals_total", "Segments sealed.", s.Seals)
	counter("dedupcr_store_commits_total", "Durable checkpoint commits.", s.Commits)
	counter("dedupcr_store_compactions_total", "Compaction sweeps that rewrote at least one segment.", s.Compactions)
	counter("dedupcr_store_segments_compacted_total", "Victim segments rewritten away by compaction.", s.SegmentsCompacted)
	counter("dedupcr_store_tombstoned_bytes_total", "Payload bytes whose reference count reached zero.", s.TombstonedBytes)
	counter("dedupcr_store_reclaimed_bytes_total", "Tombstoned bytes physically reclaimed by compaction.", s.ReclaimedBytes)
	counter("dedupcr_store_compaction_copied_bytes_total", "Live payload bytes rewritten during compaction.", s.CopiedBytes)
	counter("dedupcr_store_compaction_copied_chunks_total", "Live chunks rewritten during compaction.", s.CopiedChunks)
}

// WriteText renders a compact human-readable summary.
func (s StoreStats) WriteText(w io.Writer) {
	fmt.Fprintf(w, "store rank %d: gen %d, %d segments (%d sealed), %d live chunks\n",
		s.Rank, s.Gen, s.Segments, s.SealedSegments, s.LiveChunks)
	fmt.Fprintf(w, "  bytes: live %s, on-disk %s, garbage %s (%.1f%%)\n",
		Bytes(s.LiveBytes), Bytes(s.DataBytes), Bytes(s.GarbageBytes), 100*s.GarbageRatio())
	fmt.Fprintf(w, "  lifecycle: %d seals, %d commits, %d compactions (%d segments, copied %s, reclaimed %s of %s tombstoned)\n",
		s.Seals, s.Commits, s.Compactions, s.SegmentsCompacted,
		Bytes(s.CopiedBytes), Bytes(s.ReclaimedBytes), Bytes(s.TombstonedBytes))
}

// Add accumulates o into s field-by-field (Rank is left alone), the
// reduction the cluster-wide store gather uses.
func (s *StoreStats) Add(o StoreStats) {
	s.Segments += o.Segments
	s.SealedSegments += o.SealedSegments
	s.LiveChunks += o.LiveChunks
	s.LiveBytes += o.LiveBytes
	s.DataBytes += o.DataBytes
	s.GarbageBytes += o.GarbageBytes
	if o.Gen > s.Gen {
		s.Gen = o.Gen
	}
	s.Seals += o.Seals
	s.Commits += o.Commits
	s.Compactions += o.Compactions
	s.SegmentsCompacted += o.SegmentsCompacted
	s.TombstonedBytes += o.TombstonedBytes
	s.ReclaimedBytes += o.ReclaimedBytes
	s.CopiedBytes += o.CopiedBytes
	s.CopiedChunks += o.CopiedChunks
}
