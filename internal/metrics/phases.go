package metrics

import (
	"fmt"
	"time"
)

// Phases is the measured wall-clock decomposition of one collective dump
// on one rank, one field per pipeline phase in execution order. Fields
// are measured with the monotonic clock around each phase, so their sum
// accounts for (almost) all of Total; the small remainder is loop
// bookkeeping between phases.
//
// The mapping to the paper's pipeline: Chunking+Fingerprint are the local
// hashing cost of Figure 3(b)/(c), Reduction is the HMERGE collective of
// Algorithm 1 (l. 1-3), LoadExchange the allgather of l. 4-10, Planning
// covers Algorithm 2 (shuffle) and Algorithm 3 (offsets), Put/WindowWait
// the single-sided window exchange, Commit the local store writes.
type Phases struct {
	// Chunking is the boundary scan (fixed-size or content-defined).
	Chunking time.Duration
	// Fingerprint is hashing every chunk.
	Fingerprint time.Duration
	// LocalDedup is the first-occurrence filter over fingerprints.
	LocalDedup time.Duration
	// Reduction is the collective fingerprint reduction + broadcast
	// (coll-dedup only), including classification of every chunk.
	Reduction time.Duration
	// ReductionRoundTimes holds this rank's per-round durations of the
	// reduction tree, when the transport recorded them.
	ReductionRoundTimes []time.Duration
	// FingerprintWorkers holds the per-worker busy durations of the
	// parallel hashing pool (index = worker id); empty for serial dumps
	// (Parallelism = 1). The wall-clock cost stays in Fingerprint; these
	// attribute it to workers.
	FingerprintWorkers []time.Duration
	// PutWorkers holds the per-worker busy durations of the concurrent
	// partner-put phase (index = partner index - 1); empty for serial
	// dumps. The wall-clock cost stays in Put.
	PutWorkers []time.Duration
	// LoadExchange covers the load-vector allgathers (both rounds).
	LoadExchange time.Duration
	// Planning covers shuffle computation, replica-target refinement and
	// offset planning; for the no-dedup and local-dedup baselines it also
	// absorbs chunk classification (plain partner assignment).
	Planning time.Duration
	// WindowOpen is the receive-window allocation.
	WindowOpen time.Duration
	// Put is the cumulative time spent pushing chunks into partner
	// windows.
	Put time.Duration
	// WindowWait is the drain of the own window until full.
	WindowWait time.Duration
	// Commit covers local chunk stores, received-chunk commits, the GC
	// list and restore-metadata persistence.
	Commit time.Duration
	// Barrier is the final completion barrier.
	Barrier time.Duration
	// Total is the end-to-end DumpOutput duration on this rank.
	Total time.Duration
}

// Sum adds up the per-phase fields (excluding Total). For a correctly
// instrumented dump, Sum is within a few percent of Total.
func (p Phases) Sum() time.Duration {
	return p.Chunking + p.Fingerprint + p.LocalDedup + p.Reduction +
		p.LoadExchange + p.Planning + p.WindowOpen + p.Put +
		p.WindowWait + p.Commit + p.Barrier
}

// Other returns the unattributed remainder Total - Sum (clamped at 0).
func (p Phases) Other() time.Duration {
	if o := p.Total - p.Sum(); o > 0 {
		return o
	}
	return 0
}

// Add accumulates q's durations into p field-wise (round times append),
// for aggregating several dumps of one run.
func (p *Phases) Add(q Phases) {
	p.Chunking += q.Chunking
	p.Fingerprint += q.Fingerprint
	p.LocalDedup += q.LocalDedup
	p.Reduction += q.Reduction
	p.ReductionRoundTimes = append(p.ReductionRoundTimes, q.ReductionRoundTimes...)
	p.FingerprintWorkers = append(p.FingerprintWorkers, q.FingerprintWorkers...)
	p.PutWorkers = append(p.PutWorkers, q.PutWorkers...)
	p.LoadExchange += q.LoadExchange
	p.Planning += q.Planning
	p.WindowOpen += q.WindowOpen
	p.Put += q.Put
	p.WindowWait += q.WindowWait
	p.Commit += q.Commit
	p.Barrier += q.Barrier
	p.Total += q.Total
}

// Scale multiplies every duration by f (per-round and per-worker
// attributions dropped), turning an Add-accumulated Phases into a mean.
func (p Phases) Scale(f float64) Phases {
	s := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * f)
	}
	return Phases{
		Chunking:     s(p.Chunking),
		Fingerprint:  s(p.Fingerprint),
		LocalDedup:   s(p.LocalDedup),
		Reduction:    s(p.Reduction),
		LoadExchange: s(p.LoadExchange),
		Planning:     s(p.Planning),
		WindowOpen:   s(p.WindowOpen),
		Put:          s(p.Put),
		WindowWait:   s(p.WindowWait),
		Commit:       s(p.Commit),
		Barrier:      s(p.Barrier),
		Total:        s(p.Total),
	}
}

// PhaseNames lists the phase labels in pipeline order, matching the span
// names recorded by internal/core and the rows of the phase tables.
var PhaseNames = []string{
	"chunking", "fingerprint", "local-dedup", "reduction",
	"load-exchange", "planning", "window-open", "put", "window-wait",
	"commit", "barrier",
}

// ByName returns the duration of the named phase (one of PhaseNames).
func (p Phases) ByName(name string) time.Duration {
	switch name {
	case "chunking":
		return p.Chunking
	case "fingerprint":
		return p.Fingerprint
	case "local-dedup":
		return p.LocalDedup
	case "reduction":
		return p.Reduction
	case "load-exchange":
		return p.LoadExchange
	case "planning":
		return p.Planning
	case "window-open":
		return p.WindowOpen
	case "put":
		return p.Put
	case "window-wait":
		return p.WindowWait
	case "commit":
		return p.Commit
	case "barrier":
		return p.Barrier
	default:
		return 0
	}
}

// Duration renders d for tables: sub-millisecond values keep microsecond
// resolution, larger ones millisecond resolution.
func Duration(d time.Duration) string {
	switch {
	case d <= 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
