package metrics

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
)

// Histogram bucket geometry: values below 2^histLinearBits are recorded
// exactly in their own bucket; above that, each power-of-two octave is
// subdivided into 2^histLinearBits linear sub-buckets (HDR-histogram
// style), bounding the relative quantile error at 1/2^histLinearBits
// (~6%) while keeping the bucket array small and fixed-size.
const (
	histLinearBits = 4
	histSub        = 1 << histLinearBits // sub-buckets per octave
	// 64-bit values span octaves histLinearBits..63, each contributing
	// histSub buckets on top of the histSub exact low buckets.
	histBuckets = histSub + (64-histLinearBits)*histSub
)

// Histogram is a lock-free HDR-style histogram of non-negative int64
// samples (latencies in nanoseconds, message sizes, ...). All methods are
// safe for concurrent use; Record is a single atomic add on the hot path.
// The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return new(Histogram) }

// bucketOf maps a sample to its bucket index. Negative samples clamp to
// bucket 0 (durations and sizes cannot meaningfully be negative).
func bucketOf(v int64) int {
	if v < histSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // position of the top bit, >= histLinearBits
	sub := int((v >> (uint(exp) - histLinearBits)) & (histSub - 1))
	return histSub + (exp-histLinearBits)*histSub + sub
}

// bucketUpper returns the largest value mapping into bucket i — what
// Quantile reports, so quantiles never under-estimate.
func bucketUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	exp := histLinearBits + (i-histSub)/histSub
	sub := (i - histSub) % histSub
	width := int64(1) << (uint(exp) - histLinearBits)
	base := int64(1) << uint(exp)
	upper := base + int64(sub+1)*width - 1
	if upper < 0 { // top octave overflows; clamp
		return math.MaxInt64
	}
	return upper
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest recorded sample, exactly (not bucket-rounded).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.Count() == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(h.Count())
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) of the
// recorded samples, accurate to the bucket width (~6% relative error).
// It returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank: the smallest bucket whose cumulative count reaches
	// ceil(q * total), with at least one sample.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			u := bucketUpper(i)
			if m := h.max.Load(); u > m {
				return m // never report beyond the observed maximum
			}
			return u
		}
	}
	return h.max.Load()
}

// CountLE returns how many recorded samples are known to be <= v: the
// cumulative count of every bucket whose upper bound is at most v.
// Samples sharing the bucket that contains v are not counted, so the
// result may undercount by up to one bucket width (~6% of v) — the same
// resolution bound Quantile carries, in the opposite direction. The
// counts are monotone in v, which is what the Prometheus histogram
// exposition requires of its cumulative buckets.
func (h *Histogram) CountLE(v int64) int64 {
	if h == nil || v < 0 {
		return 0
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		if bucketUpper(i) > v {
			break
		}
		cum += h.counts[i].Load()
	}
	return cum
}

// Histogram wire format (all integers big endian):
//
//	u8 version=1 | i64 count | i64 sum | i64 max | u32 nNonZero
//	nNonZero × (u32 bucketIndex, i64 bucketCount)
//
// Only non-zero buckets travel: put-latency histograms of one dump touch
// a handful of octaves out of the ~976 fixed buckets.
const histWireVersion = 1

// MarshalBinary encodes the histogram for transmission between ranks
// (the telemetry gather). Safe to call concurrently with Record; the
// snapshot is per-bucket atomic, not globally consistent.
func (h *Histogram) MarshalBinary() ([]byte, error) {
	buf := []byte{histWireVersion}
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.Count()))
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.Sum()))
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.Max()))
	var idx []int
	if h != nil {
		for i := 0; i < histBuckets; i++ {
			if h.counts[i].Load() != 0 {
				idx = append(idx, i)
			}
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(idx)))
	for _, i := range idx {
		buf = binary.BigEndian.AppendUint32(buf, uint32(i))
		buf = binary.BigEndian.AppendUint64(buf, uint64(h.counts[i].Load()))
	}
	return buf, nil
}

// UnmarshalBinary decodes a histogram encoded by MarshalBinary,
// replacing h's contents.
func (h *Histogram) UnmarshalBinary(data []byte) error {
	if len(data) < 29 {
		return fmt.Errorf("metrics: histogram header truncated (%d bytes)", len(data))
	}
	if data[0] != histWireVersion {
		return fmt.Errorf("metrics: histogram wire version %d, want %d", data[0], histWireVersion)
	}
	*h = Histogram{}
	h.count.Store(int64(binary.BigEndian.Uint64(data[1:])))
	h.sum.Store(int64(binary.BigEndian.Uint64(data[9:])))
	h.max.Store(int64(binary.BigEndian.Uint64(data[17:])))
	n := int(binary.BigEndian.Uint32(data[25:]))
	data = data[29:]
	if len(data) != 12*n {
		return fmt.Errorf("metrics: histogram wants %d bucket bytes, has %d", 12*n, len(data))
	}
	for j := 0; j < n; j++ {
		i := int(binary.BigEndian.Uint32(data[12*j:]))
		if i < 0 || i >= histBuckets {
			return fmt.Errorf("metrics: histogram bucket index %d out of range", i)
		}
		h.counts[i].Store(int64(binary.BigEndian.Uint64(data[12*j+4:])))
	}
	return nil
}

// Merge folds other's samples into h. Max merges exactly; buckets add.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	for i := range other.counts {
		if n := other.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	for {
		cur, o := h.max.Load(), other.max.Load()
		if o <= cur || h.max.CompareAndSwap(cur, o) {
			return
		}
	}
}

// Quantile returns the exact q-quantile (0 <= q <= 1, nearest-rank) of v,
// or 0 for an empty slice. v is not modified.
func Quantile(v []int64, q float64) int64 {
	if len(v) == 0 {
		return 0
	}
	sorted := append([]int64(nil), v...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
