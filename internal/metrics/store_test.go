package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestStoreStatsRatios(t *testing.T) {
	var zero StoreStats
	if zero.GarbageRatio() != 0 {
		t.Errorf("empty store GarbageRatio = %v", zero.GarbageRatio())
	}
	if zero.ReclaimRatio() != 1 {
		t.Errorf("never-tombstoned store ReclaimRatio = %v, want 1", zero.ReclaimRatio())
	}
	s := StoreStats{DataBytes: 4000, GarbageBytes: 1000, TombstonedBytes: 2000, ReclaimedBytes: 1800}
	if s.GarbageRatio() != 0.25 {
		t.Errorf("GarbageRatio = %v, want 0.25", s.GarbageRatio())
	}
	if s.ReclaimRatio() != 0.9 {
		t.Errorf("ReclaimRatio = %v, want 0.9", s.ReclaimRatio())
	}
}

func TestStoreStatsAdd(t *testing.T) {
	a := StoreStats{Rank: 0, Segments: 2, LiveBytes: 100, Gen: 7, Commits: 3, TombstonedBytes: 10}
	b := StoreStats{Rank: 1, Segments: 3, LiveBytes: 50, Gen: 4, Commits: 1, TombstonedBytes: 5}
	a.Add(b)
	if a.Rank != 0 {
		t.Errorf("Add changed Rank to %d", a.Rank)
	}
	if a.Segments != 5 || a.LiveBytes != 150 || a.Commits != 4 || a.TombstonedBytes != 15 {
		t.Errorf("sums wrong: %+v", a)
	}
	// Gen is a high-water mark, not a sum: the cluster's committed
	// generation is the newest any rank has reached.
	if a.Gen != 7 {
		t.Errorf("Gen = %d, want max 7", a.Gen)
	}
	a.Add(StoreStats{Gen: 9})
	if a.Gen != 9 {
		t.Errorf("Gen = %d after newer peer, want 9", a.Gen)
	}
}

func TestStoreStatsExpositionWellFormed(t *testing.T) {
	s := StoreStats{
		Rank: 3, Segments: 5, SealedSegments: 4, LiveChunks: 120, LiveBytes: 480_000,
		DataBytes: 520_000, GarbageBytes: 40_000, Gen: 6,
		Seals: 9, Commits: 6, Compactions: 2, SegmentsCompacted: 3,
		TombstonedBytes: 60_000, ReclaimedBytes: 20_000, CopiedBytes: 8_192, CopiedChunks: 2,
	}
	var buf bytes.Buffer
	s.WritePrometheus(&buf)
	if err := CheckExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("store exposition malformed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		`dedupcr_store_segments{rank="3"} 5`,
		`dedupcr_store_garbage_bytes{rank="3"} 40000`,
		`dedupcr_store_manifest_generation{rank="3"} 6`,
		`dedupcr_store_commits_total{rank="3"} 6`,
		`dedupcr_store_reclaimed_bytes_total{rank="3"} 20000`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	s.WriteText(&buf)
	for _, want := range []string{"store rank 3", "5 segments (4 sealed)", "2 compactions"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, buf.String())
		}
	}
}
