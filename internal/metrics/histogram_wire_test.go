package metrics

import (
	"math"
	"testing"
)

// TestHistogramWireRoundTrip checks that a marshalled histogram decodes
// to an identical distribution: count, sum, max, quantiles and the
// cumulative bucket counts the exposition relies on.
func TestHistogramWireRoundTrip(t *testing.T) {
	h := NewHistogram()
	for i := int64(0); i < 1000; i++ {
		h.Record(i * i * 37)
	}
	h.Record(math.MaxInt64 / 2)

	blob, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := got.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if got.Count() != h.Count() || got.Sum() != h.Sum() || got.Max() != h.Max() {
		t.Fatalf("count/sum/max mismatch: got %d/%d/%d want %d/%d/%d",
			got.Count(), got.Sum(), got.Max(), h.Count(), h.Sum(), h.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got.Quantile(q) != h.Quantile(q) {
			t.Errorf("q=%g: got %d want %d", q, got.Quantile(q), h.Quantile(q))
		}
	}
	for _, v := range []int64{0, 100, 10_000, 1 << 30, math.MaxInt64} {
		if got.CountLE(v) != h.CountLE(v) {
			t.Errorf("CountLE(%d): got %d want %d", v, got.CountLE(v), h.CountLE(v))
		}
	}
}

// TestHistogramWireRejects exercises the decoder's validation.
func TestHistogramWireRejects(t *testing.T) {
	var h Histogram
	if err := h.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Error("truncated header accepted")
	}
	blob, _ := NewHistogram().MarshalBinary()
	blob[0] = 99
	if err := h.UnmarshalBinary(blob); err == nil {
		t.Error("wrong version accepted")
	}
	good, _ := NewHistogram().MarshalBinary()
	if err := h.UnmarshalBinary(append(good, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// TestCountLE pins the cumulative-count semantics: monotone in v, never
// counting past the total, and exact at bucket boundaries.
func TestCountLE(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 2, 3, 1000, 2000, 1 << 40} {
		h.Record(v)
	}
	if got := h.CountLE(-1); got != 0 {
		t.Errorf("CountLE(-1) = %d", got)
	}
	// Values below histSub are exact buckets: CountLE(3) counts 1,2,3.
	if got := h.CountLE(3); got != 3 {
		t.Errorf("CountLE(3) = %d, want 3", got)
	}
	var prev int64
	for v := int64(1); v < 1<<45; v *= 4 {
		c := h.CountLE(v)
		if c < prev {
			t.Fatalf("CountLE not monotone at %d: %d < %d", v, c, prev)
		}
		prev = c
	}
	if got := h.CountLE(math.MaxInt64); got != h.Count() {
		t.Errorf("CountLE(max) = %d, want %d", got, h.Count())
	}
	var nilH *Histogram
	if got := nilH.CountLE(10); got != 0 {
		t.Errorf("nil CountLE = %d", got)
	}
}
