package metrics

import (
	"fmt"
	"io"
)

// PromOptions tunes the exposition output.
type PromOptions struct {
	// LegacyPutSummary emits dedupcr_put_latency_seconds as the
	// quantile summary of PR 1 instead of the bucketed histogram.
	// Summaries cannot be aggregated across ranks (quantiles of
	// quantiles are meaningless), which is why the histogram is now the
	// default; the flag keeps old dashboards alive.
	LegacyPutSummary bool
}

// LatencyBuckets is the explicit `le` ladder (in seconds) of every
// latency histogram family this package exposes: a 1-2.5-5 decade scan
// from 1µs to 10s. Fixed, identical buckets on every rank are what make
// cross-rank aggregation (sum of _bucket series) well-defined.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// WriteLatencyHistogram emits one nanosecond-sample histogram as a
// Prometheus histogram family in seconds, with the LatencyBuckets
// ladder. labels is the shared label set of every sample ("" for none).
// Bucket counts come from Histogram.CountLE, so they are monotone by
// construction; +Inf always equals the total count.
func WriteLatencyHistogram(w io.Writer, name, help, labels string, h *Histogram) {
	if h.Count() == 0 {
		return
	}
	sep := ""
	if labels != "" {
		sep = ","
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, le := range LatencyBuckets {
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, le, h.CountLE(int64(le*1e9)))
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.Count())
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %.9f\n", name, float64(h.Sum())/1e9)
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %.9f\n", name, labels, float64(h.Sum())/1e9)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count())
	}
}

// WritePrometheus emits the dump's counters and phase timings in the
// Prometheus plain-text exposition format, labelled with the rank — the
// counter dump replicad prints on exit so a scrape-less deployment still
// leaves machine-readable numbers behind. Equivalent to
// WritePrometheusOpts with the zero options.
func (d Dump) WritePrometheus(w io.Writer) {
	d.WritePrometheusOpts(w, PromOptions{})
}

// WritePrometheusOpts is WritePrometheus with explicit options.
func (d Dump) WritePrometheusOpts(w io.Writer, o PromOptions) {
	rank := fmt.Sprintf(`rank="%d"`, d.Rank)
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s{%s} %d\n", name, help, name, name, rank, v)
	}
	counter("dedupcr_dataset_bytes_total", "Raw bytes of the rank's dumped buffer.", d.DatasetBytes)
	counter("dedupcr_chunks_total", "Chunks in the rank's dataset, duplicates included.", int64(d.TotalChunks))
	counter("dedupcr_local_unique_chunks_total", "Distinct fingerprints after local dedup.", int64(d.LocalUniqueChunks))
	counter("dedupcr_hashed_bytes_total", "Bytes run through the fingerprint function.", d.HashedBytes)
	counter("dedupcr_stored_chunks_total", "Chunks committed to the local store.", int64(d.StoredChunks))
	counter("dedupcr_stored_bytes_total", "Bytes committed to the local store.", d.StoredBytes)
	counter("dedupcr_sent_chunks_total", "Replication chunks pushed to partners.", int64(d.SentChunks))
	counter("dedupcr_sent_bytes_total", "Replication bytes pushed to partners.", d.SentBytes)
	counter("dedupcr_recv_chunks_total", "Replication chunks received from partners.", int64(d.RecvChunks))
	counter("dedupcr_recv_bytes_total", "Replication bytes received from partners.", d.RecvBytes)
	counter("dedupcr_reduction_bytes_total", "Bytes sent during the collective fingerprint reduction.", d.ReductionBytes)
	counter("dedupcr_reduction_rounds_total", "Depth of the reduction tree.", int64(d.ReductionRounds))
	counter("dedupcr_load_exchange_bytes_total", "Bytes sent for the load allgathers.", d.LoadExchangeBytes)
	counter("dedupcr_window_bytes_total", "Size of the receive window this rank opened.", d.WindowBytes)
	counter("dedupcr_unique_content_bytes_total", "Bytes of content the approach identified as unique.", d.UniqueContentBytes)
	counter("dedupcr_put_retries_total", "Window puts retried after a transient transport failure.", d.PutRetries)

	fmt.Fprintf(w, "# HELP dedupcr_phase_seconds Wall-clock time of one dump pipeline phase.\n")
	fmt.Fprintf(w, "# TYPE dedupcr_phase_seconds gauge\n")
	for _, name := range PhaseNames {
		fmt.Fprintf(w, "dedupcr_phase_seconds{%s,phase=%q} %.9f\n", rank, name, d.Phases.ByName(name).Seconds())
	}
	fmt.Fprintf(w, "dedupcr_phase_seconds{%s,phase=\"total\"} %.9f\n", rank, d.Phases.Total.Seconds())

	if len(d.Phases.ReductionRoundTimes) > 0 {
		fmt.Fprintf(w, "# HELP dedupcr_reduction_round_seconds Duration of one level of the HMERGE reduction tree on this rank.\n")
		fmt.Fprintf(w, "# TYPE dedupcr_reduction_round_seconds gauge\n")
		for i, rt := range d.Phases.ReductionRoundTimes {
			fmt.Fprintf(w, "dedupcr_reduction_round_seconds{%s,round=\"%d\"} %.9f\n", rank, i, rt.Seconds())
		}
	}

	if d.PutLatency.Count() > 0 {
		if o.LegacyPutSummary {
			fmt.Fprintf(w, "# HELP dedupcr_put_latency_seconds Per-chunk window put latency.\n")
			fmt.Fprintf(w, "# TYPE dedupcr_put_latency_seconds summary\n")
			for _, q := range []float64{0.5, 0.95, 0.99} {
				fmt.Fprintf(w, "dedupcr_put_latency_seconds{%s,quantile=\"%g\"} %.9f\n",
					rank, q, float64(d.PutLatency.Quantile(q))/1e9)
			}
			fmt.Fprintf(w, "dedupcr_put_latency_seconds_sum{%s} %.9f\n", rank, float64(d.PutLatency.Sum())/1e9)
			fmt.Fprintf(w, "dedupcr_put_latency_seconds_count{%s} %d\n", rank, d.PutLatency.Count())
		} else {
			WriteLatencyHistogram(w, "dedupcr_put_latency_seconds",
				"Per-chunk window put latency.", rank, d.PutLatency)
		}
	}
}
