package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CheckExposition is a strict validator of the Prometheus plain-text
// exposition format, used by CI to catch malformed families before a
// scraper does. It enforces more than a scraper strictly needs:
//
//   - every sample's family carries both # HELP and # TYPE, declared
//     before the first sample, each at most once;
//   - metric and label names are well-formed and label values use only
//     the \\, \" and \n escapes;
//   - values parse as Go floats (+Inf/-Inf/NaN allowed), counters are
//     non-negative and finite-or-+Inf;
//   - histogram families expose _bucket series with `le` labels in
//     increasing order, cumulative counts monotone nondecreasing, an
//     +Inf bucket present and equal to the family's _count;
//   - summary quantile labels parse into [0, 1];
//   - no sample (name + label set) appears twice.
//
// It returns the first violation found, or nil for a clean exposition.
func CheckExposition(r io.Reader) error {
	types := make(map[string]string)
	helps := make(map[string]bool)
	seen := make(map[string]bool) // full sample identity -> emitted
	type bucketSeries struct {
		les    []float64
		counts []float64
		inf    float64
		hasInf bool
	}
	buckets := make(map[string]*bucketSeries) // family + labels-minus-le
	counts := make(map[string]float64)        // histogram _count per label set
	hasCount := make(map[string]bool)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		fail := func(format string, args ...any) error {
			return fmt.Errorf("exposition line %d: %s: %q", lineNo, fmt.Sprintf(format, args...), line)
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 2 {
				continue // free-form comment
			}
			switch fields[1] {
			case "HELP":
				if len(fields) < 3 || !validMetricName(fields[2]) {
					return fail("malformed HELP")
				}
				if helps[fields[2]] {
					return fail("duplicate HELP for %s", fields[2])
				}
				helps[fields[2]] = true
			case "TYPE":
				if len(fields) != 4 || !validMetricName(fields[2]) {
					return fail("malformed TYPE")
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fail("unknown metric type %q", fields[3])
				}
				if _, dup := types[fields[2]]; dup {
					return fail("duplicate TYPE for %s", fields[2])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fail("%v", err)
		}
		family, suffix := name, ""
		if _, ok := types[name]; !ok {
			for _, s := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, s)
				if base != name {
					if _, ok := types[base]; ok {
						family, suffix = base, s
						break
					}
				}
			}
		}
		typ, ok := types[family]
		if !ok {
			return fail("sample for family with no # TYPE")
		}
		if !helps[family] {
			return fail("sample for family with no # HELP")
		}
		switch {
		case suffix == "_bucket" && typ != "histogram":
			return fail("_bucket sample on %s family", typ)
		case suffix == "_sum" || suffix == "_count":
			if typ != "histogram" && typ != "summary" {
				return fail("%s sample on %s family", suffix, typ)
			}
		case suffix == "" && typ == "histogram":
			return fail("histogram family exposes a bare sample (want _bucket/_sum/_count)")
		}
		if typ == "counter" && (value < 0 || math.IsNaN(value)) {
			return fail("counter value %g not a non-negative number", value)
		}
		if q, ok := labels["quantile"]; ok && typ == "summary" && suffix == "" {
			f, err := strconv.ParseFloat(q, 64)
			if err != nil || f < 0 || f > 1 {
				return fail("summary quantile %q outside [0,1]", q)
			}
		}

		id := name + "{" + canonicalLabels(labels, "") + "}"
		if seen[id] {
			return fail("duplicate sample %s", id)
		}
		seen[id] = true

		if typ == "histogram" {
			key := family + "{" + canonicalLabels(labels, "le") + "}"
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					return fail("histogram bucket without le label")
				}
				bs := buckets[key]
				if bs == nil {
					bs = &bucketSeries{}
					buckets[key] = bs
				}
				if le == "+Inf" {
					if bs.hasInf {
						return fail("duplicate +Inf bucket")
					}
					bs.hasInf, bs.inf = true, value
					break
				}
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fail("unparseable le %q", le)
				}
				if bs.hasInf {
					return fail("bucket le=%q after the +Inf bucket", le)
				}
				if n := len(bs.les); n > 0 && bound <= bs.les[n-1] {
					return fail("bucket bounds not increasing (le=%q)", le)
				}
				if n := len(bs.counts); n > 0 && value < bs.counts[n-1] {
					return fail("bucket counts not monotone (le=%q)", le)
				}
				bs.les = append(bs.les, bound)
				bs.counts = append(bs.counts, value)
			case "_count":
				counts[key] = value
				hasCount[key] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, bs := range buckets {
		if !bs.hasInf {
			return fmt.Errorf("exposition: histogram series %s has no +Inf bucket", key)
		}
		if n := len(bs.counts); n > 0 && bs.inf < bs.counts[n-1] {
			return fmt.Errorf("exposition: histogram series %s +Inf bucket below last bucket", key)
		}
		if hasCount[key] && bs.inf != counts[key] {
			return fmt.Errorf("exposition: histogram series %s +Inf bucket %g != _count %g", key, bs.inf, counts[key])
		}
	}
	return nil
}

// parseSample splits one sample line into name, labels and value. The
// optional trailing timestamp is accepted and ignored.
func parseSample(line string) (string, map[string]string, float64, error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("no value")
	}
	name := rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	labels := map[string]string{}
	if rest[i] == '{' {
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("label without '='")
			}
			key := strings.TrimSpace(rest[:eq])
			if !validLabelName(key) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", key)
			}
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				return "", nil, 0, fmt.Errorf("label value of %q not quoted", key)
			}
			val, remainder, err := parseQuoted(rest)
			if err != nil {
				return "", nil, 0, fmt.Errorf("label %q: %w", key, err)
			}
			if _, dup := labels[key]; dup {
				return "", nil, 0, fmt.Errorf("duplicate label %q", key)
			}
			labels[key] = val
			rest = strings.TrimLeft(remainder, " ")
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	} else {
		rest = rest[i:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("want value [timestamp], got %q", rest)
	}
	value, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("unparseable timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// parseQuoted consumes a quoted label value from the front of s,
// enforcing the exposition format's escapes (\\, \", \n only).
func parseQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\', '"':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// canonicalLabels renders a label set sorted by key, dropping `skip`,
// so series identity is independent of emission order.
func canonicalLabels(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return strings.Join(parts, ",")
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
