package metrics

import (
	"testing"
	"testing/quick"
)

func TestSumMaxAvg(t *testing.T) {
	v := []int64{3, 1, 4, 1, 5}
	if got := Sum(v); got != 14 {
		t.Errorf("Sum = %d", got)
	}
	if got := Max(v); got != 5 {
		t.Errorf("Max = %d", got)
	}
	if got := Avg(v); got != 2.8 {
		t.Errorf("Avg = %g", got)
	}
}

func TestEmptySlices(t *testing.T) {
	if Sum(nil) != 0 || Max(nil) != 0 || Avg(nil) != 0 {
		t.Fatal("empty-slice aggregates must be zero")
	}
}

func TestMaxWithNegatives(t *testing.T) {
	if got := Max([]int64{-5, -2, -9}); got != -2 {
		t.Errorf("Max of negatives = %d, want -2", got)
	}
}

func TestMaxIsUpperBound(t *testing.T) {
	check := func(v []int64) bool {
		if len(v) == 0 {
			return true
		}
		m := Max(v)
		for _, x := range v {
			if x > m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytes(t *testing.T) {
	cases := map[int64]string{
		0:                "0 B",
		512:              "512 B",
		1024:             "1.00 KiB",
		1536:             "1.50 KiB",
		1 << 20:          "1.00 MiB",
		3 << 30:          "3.00 GiB",
		1536 << 20 * 408: "612.00 GiB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(33, 100); got != "33.0%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(1, 0); got != "n/a" {
		t.Errorf("Pct with zero whole = %q", got)
	}
}

func TestCollect(t *testing.T) {
	dumps := []Dump{{SentBytes: 10}, {SentBytes: 20}}
	got := Collect(dumps, func(d Dump) int64 { return d.SentBytes })
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("Collect = %v", got)
	}
}
