// Package metrics holds the per-rank instrumentation collected during a
// collective dump and small aggregation/formatting helpers used by the
// experiment harness.
package metrics

import (
	"fmt"
	"math"
	"time"
)

// Dump is the instrumentation of one rank for one collective dump. Byte
// and chunk counters are what the performance model consumes; they are
// measured, never estimated.
type Dump struct {
	Rank int
	// DatasetBytes is the raw size of the rank's buffer.
	DatasetBytes int64
	// TotalChunks is the number of chunks in the rank's dataset
	// (duplicates included).
	TotalChunks int
	// LocalUniqueChunks counts distinct fingerprints after the local
	// deduplication phase.
	LocalUniqueChunks int
	// HashedBytes counts bytes run through the fingerprint function.
	HashedBytes int64
	// StoredChunks / StoredBytes count chunks committed to the local
	// store (own data + designated + received from partners).
	StoredChunks int
	StoredBytes  int64
	// SentChunks / SentBytes count replication traffic pushed to
	// partners (window puts, excluding self).
	SentChunks int
	SentBytes  int64
	// RecvChunks / RecvBytes count replication traffic received into the
	// local window from partners.
	RecvChunks int
	RecvBytes  int64
	// ReductionBytes counts bytes this rank sent during the collective
	// fingerprint reduction and broadcast (coll-dedup only).
	ReductionBytes int64
	// ReductionRounds is the depth of the reduction tree.
	ReductionRounds int
	// LoadExchangeBytes counts bytes sent for the load allgather.
	LoadExchangeBytes int64
	// WindowBytes is the size of the receive window this rank opened.
	WindowBytes int64
	// UniqueContentBytes is this rank's contribution to the "total size
	// of unique content" metric of Figure 3(a): the bytes of content the
	// approach identified as unique. Every globally distinct chunk is
	// counted exactly once across the whole group under coll-dedup, once
	// per holding rank under local-dedup, and once per occurrence under
	// no-dedup (which identifies no redundancy at all).
	UniqueContentBytes int64
	// PutRetries counts window puts that were retried under the dump's
	// RetryPolicy after a transient transport failure. Zero when no
	// policy was set or no put needed a second attempt.
	PutRetries int64
	// Phases is the measured wall-clock decomposition of the dump on
	// this rank, one duration per pipeline phase.
	Phases Phases
	// BarrierExit is the wall-clock instant this rank left the dump's
	// completion barrier. All ranks leave the barrier within one
	// dissemination sweep of each other, so the spread of these stamps
	// across ranks estimates inter-node clock offsets (the anchor the
	// cluster telemetry plane aligns merged traces with). Zero when the
	// transport did not record it.
	BarrierExit time.Time
	// PutLatency is the per-chunk window-put latency histogram
	// (nanoseconds); nil when the dump recorded no puts.
	PutLatency *Histogram
}

// Sum aggregates int64 values.
func Sum(v []int64) int64 {
	var s int64
	for _, x := range v {
		s += x
	}
	return s
}

// Max returns the maximum of v, or 0 for an empty slice.
func Max(v []int64) int64 {
	var m int64
	for i, x := range v {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Avg returns the mean of v, or 0 for an empty slice.
func Avg(v []int64) float64 {
	if len(v) == 0 {
		return 0
	}
	return float64(Sum(v)) / float64(len(v))
}

// Bytes renders a byte count with binary units, e.g. "1.50 GiB".
// Negative counts (byte deltas, savings) render with the same units,
// e.g. "-1.50 GiB".
func Bytes(n int64) string {
	const unit = 1024
	if n < 0 {
		if n == math.MinInt64 {
			return "-8.00 EiB"
		}
		return "-" + Bytes(-n)
	}
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// Pct renders part/whole as a percentage.
func Pct(part, whole int64) string {
	if whole == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}

// Collect extracts one int64 field from each dump via sel.
func Collect(dumps []Dump, sel func(Dump) int64) []int64 {
	out := make([]int64, len(dumps))
	for i, d := range dumps {
		out[i] = sel(d)
	}
	return out
}
