// Package trace records per-rank, per-phase spans of the collective dump
// pipeline with low overhead and exports them as Chrome trace-event JSON
// (the format chrome://tracing, Perfetto and speedscope all open), so a
// full N-rank collective dump renders as one timeline — one process/track
// group per scenario, one thread track per rank.
//
// Recording is designed for the hot path:
//
//   - A nil *Recorder is valid and every operation on it is a no-op, so
//     instrumented code never branches on "is tracing enabled".
//   - Appends are lock-free: completed spans are pushed onto a linked
//     list of fixed-size blocks with an atomic cursor, so multiple
//     goroutines of one rank may record concurrently without contending
//     on a mutex (verified under the race detector).
//   - Timestamps come from one shared monotonic clock (time.Since of the
//     trace origin), so spans of different ranks align on a single
//     timeline without any cross-rank clock agreement.
//
// Usage:
//
//	tr := trace.New()
//	rec := tr.Recorder(0, rank, fmt.Sprintf("rank %d", rank))
//	sp := rec.Begin("chunking")
//	... work ...
//	sp.End()
//	_ = tr.WriteJSON(f) // after all recording goroutines are done
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one completed span on one rank's timeline.
type Event struct {
	// Name is the phase name shown on the timeline slice.
	Name string
	// Pid and Tid place the event: Chrome renders one group per Pid with
	// one track per Tid. The convention here is Pid = scenario, Tid = rank.
	Pid, Tid int
	// Start is the span's begin time relative to the trace origin.
	Start time.Duration
	// Dur is the span's duration.
	Dur time.Duration
	// Args are optional key/value annotations shown when the slice is
	// selected in the viewer.
	Args map[string]string
	// FlowID links this event into a cross-track causal flow (a wire
	// send/receive pair); 0 with FlowNone means no flow. The viewer draws
	// an arrow from the FlowStart event to the FlowFinish event sharing
	// the id.
	FlowID uint64
	// FlowOp is the event's role in its flow.
	FlowOp FlowOp
}

// FlowOp marks an event's role in a cross-track causal flow.
type FlowOp byte

const (
	// FlowNone is the zero value: not part of a flow.
	FlowNone FlowOp = 0
	// FlowStart begins a flow (the sending side of a wire frame).
	FlowStart FlowOp = 's'
	// FlowFinish ends a flow (the receiving side of a wire frame).
	FlowFinish FlowOp = 'f'
)

// End returns the span's end time relative to the trace origin.
func (e Event) End() time.Duration { return e.Start + e.Dur }

// Trace is one shared timeline: a monotonic origin plus the recorders
// writing onto it. All methods are safe for concurrent use; Events and
// WriteJSON may run while spans are still being recorded (they snapshot
// the committed prefix), but only capture everything once every recorded
// span has ended.
type Trace struct {
	start time.Time
	clock func() time.Duration

	mu       sync.Mutex
	recs     []*Recorder    // guarded by mu
	pidNames map[int]string // guarded by mu
	nextPid  int            // guarded by mu
}

// New creates a trace whose origin is now.
func New() *Trace {
	t := &Trace{start: time.Now(), pidNames: make(map[int]string)}
	t.clock = func() time.Duration { return time.Since(t.start) }
	return t
}

// NewWithClock creates a trace driven by an explicit monotonic clock
// (elapsed time since the origin). Used by tests that need deterministic
// timestamps; everything else should use New.
func NewWithClock(clock func() time.Duration) *Trace {
	return &Trace{clock: clock, pidNames: make(map[int]string)}
}

// Recorder registers and returns a recorder for one timeline track.
// name labels the track (the thread name in the viewer). Multiple calls
// with the same (pid, tid) are allowed; their events land on one track.
func (t *Trace) Recorder(pid, tid int, name string) *Recorder {
	r := &Recorder{trace: t, pid: pid, tid: tid, name: name, maxBlocks: defaultMaxBlocks}
	b := new(block)
	r.head.Store(b)
	r.tail.Store(b)
	r.blocks.Store(1)
	t.mu.Lock()
	t.recs = append(t.recs, r)
	if pid >= t.nextPid {
		t.nextPid = pid + 1
	}
	t.mu.Unlock()
	return r
}

// NextPid reserves the next unused process id, letting independent
// scenarios traced into one file claim disjoint track groups.
func (t *Trace) NextPid() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	pid := t.nextPid
	t.nextPid++
	return pid
}

// NamePid labels a process group in the viewer (e.g. the scenario name).
func (t *Trace) NamePid(pid int, name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pidNames[pid] = name
}

// Events returns a snapshot of every completed span of every recorder,
// sorted by start time. It is safe to call while other goroutines are
// still recording: appends whose slot write has not committed yet are
// skipped, so a concurrent snapshot sees a consistent prefix of each
// recorder's history rather than torn events. For a complete view, call
// it after all recorded spans have ended.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	recs := append([]*Recorder(nil), t.recs...)
	t.mu.Unlock()
	var out []Event
	for _, r := range recs {
		out = append(out, r.events()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		// Longer spans first so parents precede children at equal start.
		return out[i].Dur > out[j].Dur
	})
	return out
}

// Dropped returns how many events the trace's recorders discarded after
// exhausting their block caps (see Recorder.Dropped). Non-zero drops
// mean Events, Coverage and every export are computed over an incomplete
// span set — check this next to Coverage when validating a trace.
func (t *Trace) Dropped() int64 {
	t.mu.Lock()
	recs := append([]*Recorder(nil), t.recs...)
	t.mu.Unlock()
	var n int64
	for _, r := range recs {
		n += r.Dropped()
	}
	return n
}

// Coverage reports how much of the trace's wall time is covered by at
// least one span: the union of all span intervals divided by the extent
// from the first span begin to the last span end. An empty trace covers 1
// (there is no wall time to attribute). The acceptance bar for dump
// traces is that spans cover >= 95% of wall time. Coverage only sees
// recorded spans: when Dropped reports a non-zero count, the cap-evicted
// events are missing from the union and the figure under-estimates true
// coverage — report Dropped alongside it.
func (t *Trace) Coverage() float64 {
	evs := t.Events()
	if len(evs) == 0 {
		return 1
	}
	lo, hi := evs[0].Start, evs[0].End()
	for _, e := range evs {
		if e.Start < lo {
			lo = e.Start
		}
		if e.End() > hi {
			hi = e.End()
		}
	}
	if hi == lo {
		return 1
	}
	// Events are sorted by start: one sweep merges the interval union.
	var covered, cur time.Duration
	curStart := evs[0].Start
	cur = evs[0].End()
	for _, e := range evs[1:] {
		if e.Start > cur {
			covered += cur - curStart
			curStart = e.Start
			cur = e.End()
			continue
		}
		if e.End() > cur {
			cur = e.End()
		}
	}
	covered += cur - curStart
	return float64(covered) / float64(hi-lo)
}

// blockSize is the span capacity of one append block. 256 events cover a
// whole collective dump without a second allocation.
const blockSize = 256

// defaultMaxBlocks bounds one recorder's append list: a runaway span
// loop stops allocating after blockSize*defaultMaxBlocks events (~1M,
// roughly 100 MiB) and further events are counted as dropped instead.
const defaultMaxBlocks = 4096

// block is one fixed-size segment of a recorder's lock-free append list.
// done marks slots whose Event write has completed: a reservation (n)
// happens before the slot write, so snapshot readers consult done — an
// acquire/release pair per slot — to skip in-flight appends instead of
// racing them.
type block struct {
	n    atomic.Int64
	next atomic.Pointer[block]
	ev   [blockSize]Event
	done [blockSize]atomic.Bool
}

// Recorder writes spans onto one (pid, tid) track of a Trace. The zero
// value is not usable — obtain recorders from Trace.Recorder — but a nil
// *Recorder is: every method no-ops, making disabled tracing free of
// conditionals at call sites.
type Recorder struct {
	trace *Trace
	pid   int
	tid   int
	name  string

	head atomic.Pointer[block]
	tail atomic.Pointer[block]
	// blocks counts installed blocks; once it reaches maxBlocks further
	// events are dropped (and counted) rather than allocated.
	blocks    atomic.Int64
	dropped   atomic.Int64
	maxBlocks int64
}

// Begin opens a span. The returned span must be closed with End on the
// same goroutine for the viewer's nesting to render correctly (Chrome
// infers nesting from interval containment per track). Begin on a nil
// recorder returns a nil span whose End is a no-op.
func (r *Recorder) Begin(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{rec: r, name: name, start: r.trace.clock()}
}

// Instant records a zero-duration marker event.
func (r *Recorder) Instant(name string) {
	if r == nil {
		return
	}
	now := r.trace.clock()
	r.append(Event{Name: name, Pid: r.pid, Tid: r.tid, Start: now})
}

// FlowInstant records a zero-duration marker that participates in the
// cross-track flow id (the causal arrows of the merged cluster trace).
// The wire layer records a FlowStart on the sending rank and a FlowFinish
// with the same id on the receiving rank.
func (r *Recorder) FlowInstant(name string, id uint64, op FlowOp, args map[string]string) {
	if r == nil {
		return
	}
	now := r.trace.clock()
	r.append(Event{
		Name: name, Pid: r.pid, Tid: r.tid, Start: now,
		Args: args, FlowID: id, FlowOp: op,
	})
}

// append pushes a completed event, lock-free: reserve a slot with an
// atomic add; on overflow install (or adopt) the next block and retry.
// Once the block cap is reached the event is dropped and counted — a
// memory backstop for runaway recording, not an expected path.
func (r *Recorder) append(e Event) {
	for {
		b := r.tail.Load()
		i := b.n.Add(1) - 1
		if i < blockSize {
			b.ev[i] = e
			b.done[i].Store(true)
			return
		}
		// Block full (the cursor may overshoot; length is clamped when
		// reading). Install a fresh next block if nobody else has, unless
		// the cap is exhausted.
		if b.next.Load() == nil {
			if r.blocks.Load() >= r.maxBlocks {
				r.dropped.Add(1)
				return
			}
			if b.next.CompareAndSwap(nil, new(block)) {
				r.blocks.Add(1)
			}
		}
		if nb := b.next.Load(); nb != nil {
			r.tail.CompareAndSwap(b, nb)
		}
	}
}

// Dropped returns how many events this recorder discarded after hitting
// its block cap. Zero in any healthy run.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// events collects the recorder's completed spans in append order,
// skipping slots whose write is still in flight (safe concurrent
// snapshot; see block.done).
func (r *Recorder) events() []Event {
	var out []Event
	for b := r.head.Load(); b != nil; b = b.next.Load() {
		n := b.n.Load()
		if n > blockSize {
			n = blockSize
		}
		for i := int64(0); i < n; i++ {
			if b.done[i].Load() {
				out = append(out, b.ev[i])
			}
		}
	}
	return out
}

// Span is one open phase interval. Spans nest: a span begun while another
// is open renders as its child on the timeline.
type Span struct {
	rec   *Recorder
	name  string
	start time.Duration
	args  map[string]string
}

// Arg annotates the span with a key/value pair shown in the viewer.
// It returns the span for chaining and is a no-op on nil.
func (s *Span) Arg(key, value string) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = make(map[string]string, 2)
	}
	s.args[key] = value
	return s
}

// End closes the span and records it. End on a nil span is a no-op; End
// must be called at most once.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.rec.trace.clock()
	s.rec.append(Event{
		Name: s.name, Pid: s.rec.pid, Tid: s.rec.tid,
		Start: s.start, Dur: end - s.start, Args: s.args,
	})
}
