package trace

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// chromeEvent is the wire form of one trace-event, matching the Chrome
// trace-event format's "JSON object format": complete events (ph "X")
// with microsecond timestamps, plus metadata events (ph "M") naming the
// process and thread tracks.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeFile is the top-level JSON object format document.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteJSON exports the trace as Chrome trace-event JSON. Open the file
// at chrome://tracing or https://ui.perfetto.dev. It must only be called
// once all recorded spans have ended.
func (t *Trace) WriteJSON(w io.Writer) error {
	doc := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}

	// Metadata: name the process groups and thread tracks.
	t.mu.Lock()
	pids := make([]int, 0, len(t.pidNames))
	for pid := range t.pidNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]string{"name": t.pidNames[pid]},
		})
	}
	type track struct{ pid, tid int }
	named := make(map[track]bool)
	var threads []chromeEvent
	for _, r := range t.recs {
		k := track{r.pid, r.tid}
		if r.name == "" || named[k] {
			continue
		}
		named[k] = true
		threads = append(threads, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: r.pid, Tid: r.tid,
			Args: map[string]string{"name": r.name},
		})
	}
	t.mu.Unlock()
	sort.Slice(threads, func(i, j int) bool {
		if threads[i].Pid != threads[j].Pid {
			return threads[i].Pid < threads[j].Pid
		}
		return threads[i].Tid < threads[j].Tid
	})
	doc.TraceEvents = append(doc.TraceEvents, threads...)

	for _, e := range t.Events() {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: e.Name, Cat: "dump", Ph: "X",
			Ts:  float64(e.Start.Nanoseconds()) / 1e3,
			Dur: float64(e.Dur.Nanoseconds()) / 1e3,
			Pid: e.Pid, Tid: e.Tid, Args: e.Args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteFile exports the trace to path as Chrome trace-event JSON.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
