package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// chromeEvent is the wire form of one trace-event, matching the Chrome
// trace-event format's "JSON object format": complete events (ph "X")
// with microsecond timestamps, plus metadata events (ph "M") naming the
// process and thread tracks.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	ID   string            `json:"id,omitempty"`
	BP   string            `json:"bp,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeFile is the top-level JSON object format document.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Track identifies one (pid, tid) timeline track for thread naming.
type Track struct{ Pid, Tid int }

// WriteChrome writes an arbitrary event set as a Chrome trace-event JSON
// document: metadata events naming the process groups and thread tracks
// first, then the events in the given order (callers sort; Trace.Events
// already does). It is the export shared by Trace.WriteJSON and the
// cluster telemetry plane's merged cross-rank traces, which synthesize
// their own pid-per-rank layout.
func WriteChrome(w io.Writer, events []Event, pidNames map[int]string, threadNames map[Track]string) error {
	doc := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}

	pids := make([]int, 0, len(pidNames))
	for pid := range pidNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]string{"name": pidNames[pid]},
		})
	}
	tracks := make([]Track, 0, len(threadNames))
	for tr := range threadNames {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].Pid != tracks[j].Pid {
			return tracks[i].Pid < tracks[j].Pid
		}
		return tracks[i].Tid < tracks[j].Tid
	})
	for _, tr := range tracks {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: tr.Pid, Tid: tr.Tid,
			Args: map[string]string{"name": threadNames[tr]},
		})
	}

	for _, e := range events {
		ph, dur := "X", float64(e.Dur.Nanoseconds())/1e3
		if e.Dur == 0 {
			ph, dur = "i", 0
		}
		ts := float64(e.Start.Nanoseconds()) / 1e3
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: e.Name, Cat: "dump", Ph: ph,
			Ts:  ts,
			Dur: dur,
			Pid: e.Pid, Tid: e.Tid, Args: e.Args,
		})
		// Flow-linked events additionally emit a Chrome flow event
		// (ph "s"/"f" sharing an id), which the viewer renders as a
		// causal arrow between tracks — the sending rank's wire-send to
		// the receiving rank's wire-recv.
		if e.FlowOp == FlowStart || e.FlowOp == FlowFinish {
			fe := chromeEvent{
				Name: e.Name, Cat: "wire", Ph: string(rune(e.FlowOp)),
				Ts: ts, Pid: e.Pid, Tid: e.Tid,
				ID: fmt.Sprintf("0x%x", e.FlowID),
			}
			if e.FlowOp == FlowFinish {
				// Bind to the enclosing slice so arrows land on phase
				// spans rather than floating instants.
				fe.BP = "e"
			}
			doc.TraceEvents = append(doc.TraceEvents, fe)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteJSON exports the trace as Chrome trace-event JSON. Open the file
// at chrome://tracing or https://ui.perfetto.dev. It must only be called
// once all recorded spans have ended.
func (t *Trace) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	pidNames := make(map[int]string, len(t.pidNames))
	for pid, name := range t.pidNames {
		pidNames[pid] = name
	}
	threadNames := make(map[Track]string)
	for _, r := range t.recs {
		k := Track{r.pid, r.tid}
		if r.name == "" {
			continue
		}
		if _, named := threadNames[k]; !named {
			threadNames[k] = r.name
		}
	}
	t.mu.Unlock()
	return WriteChrome(w, t.Events(), pidNames, threadNames)
}

// WriteFile exports the trace to path as Chrome trace-event JSON.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
