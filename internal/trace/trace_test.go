package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic monotonic clock advanced by the test.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.now += d
	f.mu.Unlock()
}

func (f *fakeClock) read() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func TestNestedSpans(t *testing.T) {
	clk := &fakeClock{}
	tr := NewWithClock(clk.read)
	rec := tr.Recorder(0, 0, "rank 0")

	outer := rec.Begin("dump")
	clk.advance(time.Millisecond)
	inner := rec.Begin("chunking")
	clk.advance(2 * time.Millisecond)
	inner.End()
	clk.advance(time.Millisecond)
	outer.End()

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// Sorted by start: outer first.
	if evs[0].Name != "dump" || evs[1].Name != "chunking" {
		t.Fatalf("order = %q, %q", evs[0].Name, evs[1].Name)
	}
	if evs[0].Start != 0 || evs[0].Dur != 4*time.Millisecond {
		t.Errorf("outer = [%v +%v], want [0s +4ms]", evs[0].Start, evs[0].Dur)
	}
	if evs[1].Start != time.Millisecond || evs[1].Dur != 2*time.Millisecond {
		t.Errorf("inner = [%v +%v], want [1ms +2ms]", evs[1].Start, evs[1].Dur)
	}
	// The child interval must be contained in the parent's (what the
	// Chrome viewer uses to infer nesting).
	if evs[1].Start < evs[0].Start || evs[1].End() > evs[0].End() {
		t.Errorf("child [%v,%v] escapes parent [%v,%v]",
			evs[1].Start, evs[1].End(), evs[0].Start, evs[0].End())
	}
}

func TestConcurrentRanks(t *testing.T) {
	tr := New()
	const ranks, spansPerRank = 16, 300 // > blockSize to cross a block boundary
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		rec := tr.Recorder(0, r, fmt.Sprintf("rank %d", r))
		wg.Add(1)
		go func(rec *Recorder) {
			defer wg.Done()
			for i := 0; i < spansPerRank; i++ {
				sp := rec.Begin("phase")
				sp.End()
			}
		}(rec)
	}
	wg.Wait()
	evs := tr.Events()
	if len(evs) != ranks*spansPerRank {
		t.Fatalf("got %d events, want %d", len(evs), ranks*spansPerRank)
	}
	byTid := make(map[int]int)
	for _, e := range evs {
		byTid[e.Tid]++
	}
	for r := 0; r < ranks; r++ {
		if byTid[r] != spansPerRank {
			t.Errorf("tid %d has %d events, want %d", r, byTid[r], spansPerRank)
		}
	}
}

// TestConcurrentAppendOneRecorder exercises the lock-free append from
// many goroutines sharing one recorder (the race detector validates the
// block hand-off).
func TestConcurrentAppendOneRecorder(t *testing.T) {
	tr := New()
	rec := tr.Recorder(0, 0, "shared")
	const writers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				rec.Instant("tick")
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Events()); got != writers*each {
		t.Fatalf("got %d events, want %d", got, writers*each)
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var rec *Recorder
	sp := rec.Begin("anything")
	sp.Arg("k", "v")
	sp.End()
	rec.Instant("marker")
	// Reaching here without a panic is the assertion.
}

func TestChromeJSONGolden(t *testing.T) {
	clk := &fakeClock{}
	tr := NewWithClock(clk.read)
	tr.NamePid(0, "HPCCG N=4")
	rec := tr.Recorder(0, 3, "rank 3")

	outer := rec.Begin("dump").Arg("approach", "coll-dedup")
	clk.advance(1500 * time.Microsecond)
	in := rec.Begin("reduction")
	clk.advance(500 * time.Microsecond)
	in.End()
	outer.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(buf.String())
	want := `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"HPCCG N=4"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":3,"args":{"name":"rank 3"}},` +
		`{"name":"dump","cat":"dump","ph":"X","ts":0,"dur":2000,"pid":0,"tid":3,"args":{"approach":"coll-dedup"}},` +
		`{"name":"reduction","cat":"dump","ph":"X","ts":1500,"dur":500,"pid":0,"tid":3}` +
		`],"displayTimeUnit":"ms"}`
	if got != want {
		t.Errorf("golden mismatch\n got: %s\nwant: %s", got, want)
	}

	// The output must round-trip as valid trace-event JSON.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Errorf("got %d traceEvents, want 4", len(doc.TraceEvents))
	}
}

func TestCoverage(t *testing.T) {
	clk := &fakeClock{}
	tr := NewWithClock(clk.read)
	rec := tr.Recorder(0, 0, "rank 0")

	// [0,4ms] covered, [4,5ms] gap, [5,6ms] covered => 5/6 coverage.
	a := rec.Begin("a")
	clk.advance(2 * time.Millisecond)
	b := rec.Begin("b") // overlaps a: union must not double count
	clk.advance(2 * time.Millisecond)
	a.End()
	b.End()
	clk.advance(time.Millisecond)
	c := rec.Begin("c")
	clk.advance(time.Millisecond)
	c.End()

	got := tr.Coverage()
	want := 5.0 / 6.0
	if diff := got - want; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("Coverage() = %v, want %v", got, want)
	}

	empty := New()
	if c := empty.Coverage(); c != 1 {
		t.Errorf("empty trace coverage = %v, want 1", c)
	}
}

func TestNextPid(t *testing.T) {
	tr := New()
	if p := tr.NextPid(); p != 0 {
		t.Errorf("first pid = %d, want 0", p)
	}
	tr.Recorder(5, 0, "r")
	if p := tr.NextPid(); p != 6 {
		t.Errorf("pid after Recorder(5,...) = %d, want 6", p)
	}
}

// TestEventsSnapshotDuringRecording takes Events() snapshots while many
// goroutines across several recorders are still appending — the race
// detector validates the per-slot commit protocol, and every snapshot
// must be a consistent set of fully written events.
func TestEventsSnapshotDuringRecording(t *testing.T) {
	tr := New()
	const recorders, writersPer, each = 4, 4, 500 // crosses block boundaries
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < recorders; r++ {
		rec := tr.Recorder(0, r, fmt.Sprintf("rank %d", r))
		for w := 0; w < writersPer; w++ {
			wg.Add(1)
			go func(rec *Recorder, w int) {
				defer wg.Done()
				for i := 0; i < each; i++ {
					sp := rec.Begin("phase")
					sp.Arg("writer", fmt.Sprint(w))
					sp.End()
				}
			}(rec, w)
		}
	}
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		prev := 0
		for {
			evs := tr.Events()
			for _, e := range evs {
				// A torn event would surface as a zero Name (Event zero
				// value) — committed slots are always fully written.
				if e.Name == "" {
					t.Error("snapshot returned an uncommitted event")
					return
				}
			}
			if len(evs) < prev {
				t.Errorf("snapshot shrank: %d -> %d", prev, len(evs))
				return
			}
			prev = len(evs)
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	snaps.Wait()
	if got, want := len(tr.Events()), recorders*writersPer*each; got != want {
		t.Fatalf("final snapshot has %d events, want %d", got, want)
	}
	if d := tr.Dropped(); d != 0 {
		t.Errorf("healthy run dropped %d events", d)
	}
}

// TestDroppedCounter caps a recorder at two blocks and checks that the
// overflow is counted, the retained events are intact, and the trace
// aggregate surfaces the drop.
func TestDroppedCounter(t *testing.T) {
	tr := New()
	rec := tr.Recorder(0, 0, "capped")
	rec.maxBlocks = 2
	const total = 3 * blockSize
	for i := 0; i < total; i++ {
		rec.Instant("tick")
	}
	if got, want := len(tr.Events()), 2*blockSize; got != want {
		t.Fatalf("retained %d events, want %d", got, want)
	}
	if got, want := rec.Dropped(), int64(total-2*blockSize); got != want {
		t.Errorf("recorder dropped %d, want %d", got, want)
	}
	if got := tr.Dropped(); got != rec.Dropped() {
		t.Errorf("trace dropped %d, recorder %d", got, rec.Dropped())
	}
	// Recording past the cap keeps counting without allocating.
	rec.Instant("late")
	if got, want := rec.Dropped(), int64(total-2*blockSize+1); got != want {
		t.Errorf("post-cap drop count %d, want %d", got, want)
	}
	var nilRec *Recorder
	if nilRec.Dropped() != 0 {
		t.Error("nil recorder reports drops")
	}
}

// TestInstantRendersAsInstant pins the Chrome export of zero-duration
// events to instant ("i") phase records.
func TestInstantRendersAsInstant(t *testing.T) {
	clk := &fakeClock{}
	tr := NewWithClock(clk.read)
	rec := tr.Recorder(0, 0, "rank 0")
	rec.Instant("straggler")
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ph":"i"`) {
		t.Errorf("instant not exported with ph \"i\": %s", buf.String())
	}
}
