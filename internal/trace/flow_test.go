package trace_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"dedupcr/internal/metrics"
	"dedupcr/internal/trace"
)

func TestFlowInstantChromeExport(t *testing.T) {
	var tick time.Duration
	tr := trace.NewWithClock(func() time.Duration { tick += time.Millisecond; return tick })
	send := tr.Recorder(0, 0, "rank 0")
	recv := tr.Recorder(0, 1, "rank 1")
	send.FlowInstant("wire-send", 0xABC, trace.FlowStart, map[string]string{"to": "1"})
	recv.FlowInstant("wire-recv", 0xABC, trace.FlowFinish, map[string]string{"from": "0"})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Cat  string `json:"cat"`
			ID   string `json:"id"`
			BP   string `json:"bp"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var flowStart, flowFinish bool
	for _, e := range doc.TraceEvents {
		if e.Cat != "wire" {
			continue
		}
		switch e.Ph {
		case "s":
			flowStart = true
			if e.ID != "0xabc" || e.Tid != 0 {
				t.Errorf("flow start wrong: %+v", e)
			}
			if e.BP != "" {
				t.Errorf("flow start must not carry bp: %+v", e)
			}
		case "f":
			flowFinish = true
			if e.ID != "0xabc" || e.Tid != 1 || e.BP != "e" {
				t.Errorf("flow finish wrong: %+v", e)
			}
		}
	}
	if !flowStart || !flowFinish {
		t.Fatalf("flow events missing from export (start %v finish %v):\n%s",
			flowStart, flowFinish, buf.String())
	}
	// The plain instants are still exported alongside the flow events.
	if !strings.Contains(buf.String(), `"wire-send"`) {
		t.Fatal("wire-send instant missing")
	}
}

func TestTracePrometheusExposition(t *testing.T) {
	tr := trace.New()
	rec := tr.Recorder(0, 3, "rank 3")
	rec.Instant("x")
	var buf bytes.Buffer
	tr.WritePrometheus(&buf, 3)
	if err := metrics.CheckExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), `dedupcr_trace_dropped_total{rank="3"} 0`) {
		t.Fatalf("dropped counter missing:\n%s", buf.String())
	}
}
