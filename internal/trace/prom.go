package trace

import (
	"fmt"
	"io"
)

// WritePrometheus emits the trace plane's health counter for rank in
// Prometheus text exposition format. A non-zero drop count means every
// export and coverage figure is computed over an incomplete span set
// (see Dropped), so the counter belongs next to the phase metrics on
// every scrape.
func (t *Trace) WritePrometheus(w io.Writer, rank int) {
	fmt.Fprintf(w, "# HELP dedupcr_trace_dropped_total Trace spans discarded after a recorder hit its block cap.\n")
	fmt.Fprintf(w, "# TYPE dedupcr_trace_dropped_total counter\n")
	fmt.Fprintf(w, "dedupcr_trace_dropped_total{rank=\"%d\"} %d\n", rank, t.Dropped())
}
