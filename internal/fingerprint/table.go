package fingerprint

import (
	"fmt"
	"sort"
)

// Entry is one row of the global fingerprint view: a fingerprint, the
// number of distinct ranks on which it occurs (its frequency), and the at
// most K ranks designated to store its chunk (the "designated ranks").
//
// Ranks is kept sorted ascending; the position of a rank inside Ranks
// drives the round-robin assignment of missing replicas, so a shared
// deterministic order matters.
type Entry struct {
	FP    FP
	Freq  uint32
	Ranks []int32
}

// clone returns a deep copy of e.
func (e *Entry) clone() *Entry {
	c := &Entry{FP: e.FP, Freq: e.Freq, Ranks: make([]int32, len(e.Ranks))}
	copy(c.Ranks, e.Ranks)
	return c
}

// HasRank reports whether rank is among the designated ranks of e.
func (e *Entry) HasRank(rank int32) bool {
	i := sort.Search(len(e.Ranks), func(i int) bool { return e.Ranks[i] >= rank })
	return i < len(e.Ranks) && e.Ranks[i] == rank
}

// RankIndex returns the position of rank inside the sorted designated
// list, or -1 when rank is not designated.
func (e *Entry) RankIndex(rank int32) int {
	i := sort.Search(len(e.Ranks), func(i int) bool { return e.Ranks[i] >= rank })
	if i < len(e.Ranks) && e.Ranks[i] == rank {
		return i
	}
	return -1
}

// Table is the HMERGE reduction state: a bounded set of at most F
// fingerprint entries (the most frequent seen so far) plus the
// designation-load bookkeeping used to balance rank assignment.
//
// The zero Table is not usable; construct with NewTable or Local.
type Table struct {
	// F is the maximum number of entries retained (the paper's threshold,
	// 2^17 in the evaluation). F <= 0 means unbounded.
	F int
	// K is the replication factor: at most K designated ranks per entry.
	K int

	entries map[FP]*Entry
	// load counts, per rank, how many entries currently designate it.
	// It is the quantity minimized by the truncation rule.
	load map[int32]int32
}

// NewTable returns an empty table with the given bounds.
func NewTable(f, k int) *Table {
	if k < 1 {
		k = 1
	}
	return &Table{
		F:       f,
		K:       k,
		entries: make(map[FP]*Entry),
		load:    make(map[int32]int32),
	}
}

// Local builds the leaf table of a reduction: every locally unique
// fingerprint of rank appears with frequency 1 and a single designated
// rank. The input need not be deduplicated; duplicates are collapsed.
func Local(fps []FP, rank int32, f, k int) *Table {
	t := NewTable(f, k)
	for _, fp := range fps {
		t.AddLocal(fp, rank)
	}
	t.Trim()
	return t
}

// AddLocal inserts one locally observed fingerprint into a leaf table
// under construction: frequency 1, the calling rank designated. Repeated
// fingerprints are collapsed, so callers may feed the raw chunk stream.
// The parallel dump pipeline builds its leaf table incrementally through
// AddLocal while later chunks are still being hashed; callers must invoke
// Trim once the stream ends to restore the top-F bound before the table
// enters a reduction.
func (t *Table) AddLocal(fp FP, rank int32) {
	if _, ok := t.entries[fp]; ok {
		return
	}
	t.entries[fp] = &Entry{FP: fp, Freq: 1, Ranks: []int32{rank}}
	t.load[rank]++
}

// Trim enforces the top-F bound, the closing step of incremental leaf
// construction via AddLocal. Merge applies it automatically.
func (t *Table) Trim() { t.trim() }

// Len returns the number of entries currently held.
func (t *Table) Len() int { return len(t.entries) }

// Lookup returns the entry for fp, or nil.
func (t *Table) Lookup(fp FP) *Entry { return t.entries[fp] }

// Load returns the designation load of rank.
func (t *Table) Load(rank int32) int32 { return t.load[rank] }

// Entries returns all entries sorted by fingerprint. The returned slice
// aliases the table's entries; callers must not mutate them.
func (t *Table) Entries() []*Entry {
	out := make([]*Entry, 0, len(t.entries))
	// Collection order is irrelevant: the sort below imposes the shared
	// fingerprint order every rank agrees on.
	//dedupvet:ordered
	for _, e := range t.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FP.Less(out[j].FP) })
	return out
}

// Merge folds other into t, implementing the paper's HMERGE step:
//
//  1. frequencies of common fingerprints add up (frequency in the union),
//  2. designated rank lists are unioned and, when longer than K,
//     truncated by dropping the most designation-loaded ranks first,
//  3. only the F most frequent fingerprints of the union are retained
//     (ties broken by fingerprint order so all ranks agree).
//
// Merge mutates t and leaves other untouched. It is deterministic: merging
// the same pair of tables always yields the same result, which the
// reduction relies on.
func (t *Table) Merge(other *Table) {
	if other == nil {
		return
	}
	// Deterministic processing order: fingerprints ascending.
	for _, oe := range other.Entries() {
		e, ok := t.entries[oe.FP]
		if !ok {
			c := oe.clone()
			t.entries[oe.FP] = c
			for _, r := range c.Ranks {
				t.load[r]++
			}
			t.truncateRanks(c)
			continue
		}
		e.Freq += oe.Freq
		for _, r := range oe.Ranks {
			if !e.HasRank(r) {
				e.Ranks = insertSorted(e.Ranks, r)
				t.load[r]++
			}
		}
		t.truncateRanks(e)
	}
	t.trim()
}

// truncateRanks enforces |Ranks| <= K by evicting the most loaded ranks
// first, shifting designation toward less loaded processes.
func (t *Table) truncateRanks(e *Entry) {
	for len(e.Ranks) > t.K {
		// Pick the rank with the highest current load; break ties by the
		// larger rank id so the choice is deterministic.
		worst := 0
		for i := 1; i < len(e.Ranks); i++ {
			li, lw := t.load[e.Ranks[i]], t.load[e.Ranks[worst]]
			if li > lw || (li == lw && e.Ranks[i] > e.Ranks[worst]) {
				worst = i
			}
		}
		t.load[e.Ranks[worst]]--
		e.Ranks = append(e.Ranks[:worst], e.Ranks[worst+1:]...)
	}
}

// trim enforces the top-F bound, releasing designations of evicted
// entries. Entries are ranked by frequency descending, fingerprint
// ascending.
func (t *Table) trim() {
	if t.F <= 0 || len(t.entries) <= t.F {
		return
	}
	all := t.Entries()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Freq != all[j].Freq {
			return all[i].Freq > all[j].Freq
		}
		return all[i].FP.Less(all[j].FP)
	})
	for _, e := range all[t.F:] {
		for _, r := range e.Ranks {
			t.load[r]--
		}
		delete(t.entries, e.FP)
	}
}

// insertSorted inserts r into the ascending slice s, keeping it sorted.
func insertSorted(s []int32, r int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= r })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = r
	return s
}

// Validate checks internal invariants; used by tests and debug builds.
func (t *Table) Validate() error {
	want := make(map[int32]int32)
	// Validation is order-insensitive: each entry is checked in
	// isolation and the load recount is commutative.
	//dedupvet:ordered
	for _, e := range t.entries {
		if len(e.Ranks) == 0 {
			return fmt.Errorf("fingerprint %s has no designated ranks", e.FP.Short())
		}
		if len(e.Ranks) > t.K {
			return fmt.Errorf("fingerprint %s has %d > K=%d designated ranks", e.FP.Short(), len(e.Ranks), t.K)
		}
		if !sort.SliceIsSorted(e.Ranks, func(i, j int) bool { return e.Ranks[i] < e.Ranks[j] }) {
			return fmt.Errorf("fingerprint %s ranks not sorted: %v", e.FP.Short(), e.Ranks)
		}
		for i := 1; i < len(e.Ranks); i++ {
			if e.Ranks[i] == e.Ranks[i-1] {
				return fmt.Errorf("fingerprint %s duplicate rank %d", e.FP.Short(), e.Ranks[i])
			}
		}
		if e.Freq == 0 {
			return fmt.Errorf("fingerprint %s has zero frequency", e.FP.Short())
		}
		for _, r := range e.Ranks {
			want[r]++
		}
	}
	if t.F > 0 && len(t.entries) > t.F {
		return fmt.Errorf("table holds %d entries > F=%d", len(t.entries), t.F)
	}
	//dedupvet:ordered — order-insensitive comparison of two load maps.
	for r, n := range want {
		if t.load[r] != n {
			return fmt.Errorf("rank %d load=%d, recount=%d", r, t.load[r], n)
		}
	}
	//dedupvet:ordered
	for r, n := range t.load {
		if n != 0 && want[r] == 0 {
			return fmt.Errorf("rank %d load=%d but designates nothing", r, n)
		}
		if n < 0 {
			return fmt.Errorf("rank %d negative load %d", r, n)
		}
	}
	return nil
}
